#!/bin/bash
# Runs every bench binary, as the final deliverable loop does.
for b in build/bench/*; do
  [ -f "$b" ] && [ -x "$b" ] || continue
  echo "===== $b ====="
  "$b"
  echo
done
