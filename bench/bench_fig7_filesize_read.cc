// Figure 7: synthetic-benchmark read throughput vs file size at P=64,
// TCIO vs OCIO.
//
// Paper shape: TCIO reads faster than OCIO across sizes, and OCIO again
// fails at the 48 GB point (its read path needs the same combine +
// aggregator buffers).
#include <cstdio>
#include <iostream>

#include "bench/bench_common.h"
#include "common/error.h"
#include "workload/synthetic.h"

namespace tcio::bench {
namespace {

constexpr int kProcs = 64;

workload::BenchmarkConfig cfgForLen(workload::Method m, std::int64_t len) {
  workload::BenchmarkConfig c;
  c.method = m;
  c.array_elem_sizes = {4, 8};
  c.len_array = len;
  c.size_access = 1;
  c.tcio = paperTcio();
  return c;
}

std::string measureRead(workload::Method m, std::int64_t len) {
  try {
    fs::Filesystem fsys(paperFs());
    double mbps = 0;
    mpi::runJob(paperJob(kProcs), [&](mpi::Comm& comm) {
      // The snapshot is always produced with TCIO (it fits in memory at
      // every size); only the read method under test varies.
      auto wcfg = cfgForLen(workload::Method::kTcio, len);
      workload::runWritePhase(comm, fsys, wcfg);
      const auto r = workload::runReadPhase(comm, fsys, cfgForLen(m, len));
      if (comm.rank() == 0) mbps = r.throughput_mbps;
    });
    return formatDouble(mbps, 1);
  } catch (const OutOfMemoryBudget& e) {
    return std::string("FAILED (out of memory: ") +
           formatBytes(e.requested_bytes) + " over budget)";
  }
}

}  // namespace
}  // namespace tcio::bench

int main() {
  using namespace tcio;
  using namespace tcio::bench;

  printHeader(
      "Figure 7: read throughput vs file size (P=64)",
      "TCIO reads ahead of OCIO; OCIO fails at the 48 GB-equivalent point");

  Table t("fig7.read");
  t.header({"file size (paper-equiv)", "LENarray", "TCIO MB/s", "OCIO MB/s"});
  const std::int64_t lens[] = {(1LL << 20) / kScale, (4LL << 20) / kScale,
                               (16LL << 20) / kScale, (64LL << 20) / kScale};
  const char* labels[] = {"768 MB", "3 GB", "12 GB", "48 GB"};
  for (int i = 0; i < 4; ++i) {
    if (envInt64("TCIO_BENCH_FAST", 0) != 0 && i >= 2) break;
    t.row({labels[i], std::to_string(lens[i]),
           measureRead(workload::Method::kTcio, lens[i]),
           measureRead(workload::Method::kOcio, lens[i])});
    std::printf("  %s done\n", labels[i]);
    std::fflush(stdout);
  }
  t.print(std::cout);
  return 0;
}
