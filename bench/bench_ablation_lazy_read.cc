// Ablation (paper §IV.A): lazy read materialization (record, then one
// collective fetch) vs eager per-call materialization.
//
// Eager reads pay a full independent one-sided epoch per read call; lazy
// reads batch everything into one coalesced get per owner at fetch() —
// "instead of using a preloading technique, TCIO uses a lazy-loading
// strategy for read operations".
#include <cstdio>
#include <iostream>

#include "bench/bench_common.h"
#include "workload/synthetic.h"

int main() {
  using namespace tcio;
  using namespace tcio::bench;

  printHeader("Ablation: lazy vs eager TCIO reads",
              "lazy fetch batches one-sided gets and wins decisively");

  Table t("ablation.lazy_read");
  t.header({"procs", "lazy MB/s", "eager MB/s", "lazy/eager"});
  for (int P : {16, 64}) {
    double mbps[2] = {0, 0};
    for (int mode = 0; mode < 2; ++mode) {
      fs::Filesystem fsys(paperFs());
      mpi::runJob(paperJob(P), [&](mpi::Comm& comm) {
        workload::BenchmarkConfig cfg;
        cfg.method = workload::Method::kTcio;
        cfg.array_elem_sizes = {4, 8};
        cfg.len_array = 1024;  // eager is slow; keep the point small
        cfg.tcio = paperTcio();
        cfg.tcio.lazy_reads = (mode == 0);
        workload::runWritePhase(comm, fsys, cfg);
        const auto r = workload::runReadPhase(comm, fsys, cfg);
        if (comm.rank() == 0) mbps[mode] = r.throughput_mbps;
      });
    }
    t.row({std::to_string(P), formatDouble(mbps[0], 1),
           formatDouble(mbps[1], 1),
           formatDouble(mbps[0] / mbps[1], 1) + "x"});
  }
  t.print(std::cout);
  return 0;
}
