// Extension ablation: collective buffering (aggregator subsets) for the
// two-phase OCIO path — the optimization the paper's §II mentions and its
// experiments disable ("we do not enable collective buffering").
//
// Fewer aggregators mean fewer, larger file-system requests and a smaller
// exchange fan-in, at the price of larger per-aggregator buffers — the
// trade-off this sweep quantifies.
#include <cstdio>
#include <iostream>

#include "bench/bench_common.h"
#include "mpiio/file.h"
#include "workload/synthetic.h"

int main() {
  using namespace tcio;
  using namespace tcio::bench;

  printHeader("Ablation: OCIO collective buffering (cb_nodes)",
              "fewer aggregators trade FS request count against aggregator "
              "memory and exchange fan-in");

  const int P = 64;
  Table t("ablation.cb_nodes");
  t.header({"aggregators", "write MB/s", "aggregator buffer", "fs requests"});
  for (const int cb : {0, 32, 16, 8, 4}) {
    fs::Filesystem fsys(paperFs());
    mpi::JobConfig job = paperJob(P);
    job.memory_budget_per_rank = 0;
    double mbps = 0;
    Bytes agg_buffer = 0;
    mpi::runJob(job, [&](mpi::Comm& comm) {
      // The Table II pattern, driven directly through MpioFile so cb_nodes
      // can be set.
      const std::int64_t len = 4096;
      const Bytes block = 12;
      io::MpioConfig mc;
      mc.cb_nodes = cb;
      comm.barrier();
      const SimTime t0 = comm.proc().now();
      io::MpioFile f = io::MpioFile::open(comm, fsys, "cb.dat",
                                          fs::kWrite | fs::kCreate, mc);
      auto e = mpi::Datatype::contiguous(block, mpi::Datatype::byte()).commit();
      auto ft = mpi::Datatype::vector(len, 1, P, e).commit();
      f.setView(comm.rank() * block, e, ft);
      std::vector<std::byte> buf(static_cast<std::size_t>(len * block),
                                 static_cast<std::byte>(comm.rank()));
      const io::TwoPhaseStats st =
          f.writeAtAll(0, buf.data(), static_cast<Bytes>(buf.size()));
      f.close();
      comm.barrier();
      double dt = comm.proc().now() - t0;
      comm.allreduce(&dt, 1, mpi::ReduceOp::kMax);
      if (comm.rank() == 0) {
        mbps = static_cast<double>(len * block) * P / dt / 1e6;
        agg_buffer = st.aggregator_buffer;
      }
    });
    t.row({cb == 0 ? "all (paper)" : std::to_string(cb),
           formatDouble(mbps, 1), formatBytes(agg_buffer),
           std::to_string(fsys.stats().write_requests)});
  }
  t.print(std::cout);
  return 0;
}
