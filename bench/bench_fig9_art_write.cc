// Figure 9: ART checkpoint (dump) throughput vs process count, TCIO vs
// vanilla MPI-IO — strong scaling over a fixed set of 1024 FTT segments
// whose lengths follow the paper's Table IV draw: Normal(mu=2048,
// sigma=128), seed 5, assigned round-robin.
//
// Paper shape: TCIO orders of magnitude above vanilla per-datum MPI-IO
// (paper: up to ~100x; vanilla was not even run beyond 256 because a single
// point took >90 minutes); TCIO rises with P, then dips once the file
// system saturates.
#include <cstdio>
#include <iostream>

#include "art/checkpoint.h"
#include "bench/bench_common.h"

namespace tcio::bench {
namespace {

constexpr std::int64_t kNumTrees = 1024;
constexpr int kNumVars = 2;

/// Table IV: segment lengths ~ Normal(2048, 128), seed 5.
std::vector<std::int64_t> segmentLengths() {
  Rng rng(5);
  std::vector<std::int64_t> lens;
  lens.reserve(kNumTrees);
  for (std::int64_t i = 0; i < kNumTrees; ++i) {
    const double v = rng.normal(2048.0, 128.0);
    lens.push_back(std::max<std::int64_t>(64, static_cast<std::int64_t>(v)));
  }
  return lens;
}

std::vector<art::FttTree> myTrees(int rank, int size,
                                  const std::vector<std::int64_t>& lens) {
  std::vector<art::FttTree> trees;
  for (std::int64_t id : art::treesOfRank(kNumTrees, rank, size)) {
    trees.push_back(art::generateTreeWithCells(
        /*seed=*/5, id, kNumVars, lens[static_cast<std::size_t>(id)]));
  }
  return trees;
}

struct ArtPoint {
  double mbps = 0;
  SimTime seconds = 0;
};

ArtPoint measureDump(art::Backend backend, int P) {
  fs::Filesystem fsys(paperFs());
  const auto lens = segmentLengths();
  ArtPoint pt;
  mpi::runJob(paperJob(P), [&](mpi::Comm& comm) {
    art::CheckpointConfig cfg;
    cfg.backend = backend;
    cfg.tcio = paperTcio();
    const auto trees = myTrees(comm.rank(), P, lens);
    comm.barrier();
    const SimTime t0 = comm.proc().now();
    art::dumpCheckpoint(comm, fsys, "art_fig9.chk", trees, kNumTrees, cfg);
    comm.barrier();
    double dt = comm.proc().now() - t0;
    comm.allreduce(&dt, 1, mpi::ReduceOp::kMax);
    if (comm.rank() == 0) pt.seconds = dt;
  });
  pt.mbps = static_cast<double>(fsys.peekSize("art_fig9.chk")) / pt.seconds /
            1e6;
  return pt;
}

}  // namespace
}  // namespace tcio::bench

int main() {
  using namespace tcio;
  using namespace tcio::bench;

  printHeader(
      "Figure 9: ART dump throughput vs process count",
      "TCIO far above vanilla MPI-IO (paper: up to ~100x); TCIO rises then "
      "dips as the file system saturates");

  Table t("fig9.art_write");
  t.header({"procs", "TCIO MB/s", "vanilla MB/s", "speedup"});
  for (int P : processLadder()) {
    const ArtPoint tcio_pt = measureDump(art::Backend::kTcio, P);
    const ArtPoint van_pt = measureDump(art::Backend::kVanillaMpiio, P);
    t.row({std::to_string(P), formatDouble(tcio_pt.mbps, 1),
           formatDouble(van_pt.mbps, 2),
           formatDouble(tcio_pt.mbps / van_pt.mbps, 1) + "x"});
    std::printf("  P=%d done\n", P);
    std::fflush(stdout);
  }
  t.print(std::cout);
  return 0;
}
