// Ablation: I/O delegate ranks (src/delegate/, DESIGN.md §10) vs the
// every-rank-hits-the-file-system baseline.
//
// Three legs:
//   1. Ratio sweep on the fig-5 interleaved write pattern: W writers with
//      D ∈ {0, W/16, W/8, W/4} delegate ranks stacked in front (total ranks
//      W + D, so the written file is byte-identical across the sweep). The
//      delegate legs must reach CRC parity with the D=0 baseline while the
//      set of ranks issuing FS calls collapses to exactly {0..D-1}.
//   2. Delegate crash: the same pattern with a fail-stop crash scheduled
//      mid-journal on delegate 0. Shard adoption plus WAL replay and client
//      resubmission must reproduce the baseline CRC exactly.
//   3. Open/write/close churn (workload/churn.h) at P >= 4096 clients
//      against a handful of delegates with a tiny queue: admission control
//      must reject (kBusy) and the clients' backoff/retry path must carry
//      the traffic to a byte-correct file regardless.
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "common/crc32.h"
#include "delegate/client.h"
#include "delegate/session.h"
#include "workload/churn.h"

namespace tcio::bench {
namespace {

constexpr Bytes kBlock = 4096;
constexpr int kBlocksPerClient = 8;

/// Deterministic content byte of writer `c`'s block `b` at index `j`.
std::byte blockByte(int c, int b, std::int64_t j) {
  const std::uint64_t h = static_cast<std::uint64_t>(c) * 1000003ULL +
                          static_cast<std::uint64_t>(b) * 8191ULL +
                          static_cast<std::uint64_t>(j);
  return static_cast<std::byte>(h * 2654435761ULL >> 24);
}

std::vector<std::byte> blockPayload(int c, int b) {
  std::vector<std::byte> data(static_cast<std::size_t>(kBlock));
  for (std::int64_t j = 0; j < kBlock; ++j) {
    data[static_cast<std::size_t>(j)] = blockByte(c, b, j);
  }
  return data;
}

/// CRC32 of file `name` as the simulated FS holds it.
std::uint32_t fileCrc(fs::Filesystem& fsys, const std::string& name) {
  const Bytes size = fsys.peekSize(name);
  std::uint32_t crc = 0;
  std::vector<std::byte> chunk(64 * 1024);
  for (Offset off = 0; off < size;) {
    const Bytes n = std::min<Bytes>(static_cast<Bytes>(chunk.size()),
                                    size - off);
    fsys.peek(name, off, std::span<std::byte>(chunk.data(),
                                              static_cast<std::size_t>(n)));
    crc = crc32(std::span<const std::byte>(chunk.data(),
                                           static_cast<std::size_t>(n)),
                crc);
    off += n;
  }
  return crc;
}

struct Sample {
  SimTime makespan = 0;
  std::uint32_t crc = 0;
  Bytes file_size = 0;
  int fs_clients = 0;        // distinct ranks that issued FS requests
  bool fs_clients_exact = false;  // delegate legs: keys == {0..D-1}
  core::TcioDelegateStats del;
};

/// Fig-5 interleaved write: W writers, writer c's block i at file offset
/// (i*W + c) * kBlock. `D` delegate ranks are stacked in front (total ranks
/// W + D); D == 0 runs the core::File baseline on W ranks.
Sample measureFig5(int W, int D, bool crash) {
  fs::Filesystem fsys(paperFs());
  mpi::JobConfig job = paperJob(W + D, /*seed=*/3);
  applyUnscaledMessageCost(job);  // all legs (incl. D=0): same cost model
  const std::string name = "fig5_delegates.dat";
  const Bytes file_size = static_cast<Bytes>(W) * kBlocksPerClient * kBlock;
  Sample s;
  core::TcioConfig tc = paperTcio();
  const std::int64_t total_segs =
      (file_size + tc.segment_size - 1) / tc.segment_size;
  const auto res = mpi::runJob(job, [&](mpi::Comm& comm) {
    if (D == 0) {
      core::TcioConfig base = tc;
      base.delegate_ranks = -1;  // explicit baseline pin, beats TCIO_DELEGATES
      base.segments_per_rank = (total_segs + W - 1) / W;
      core::File f(comm, fsys, name,
                   fs::kWrite | fs::kCreate | fs::kTruncate, base);
      for (int i = 0; i < kBlocksPerClient; ++i) {
        const std::vector<std::byte> data = blockPayload(comm.rank(), i);
        f.writeAt((static_cast<Offset>(i) * W + comm.rank()) * kBlock,
                  data.data(), kBlock);
      }
      f.close();
      return;
    }
    core::TcioConfig cfg = tc;
    cfg.delegate_ranks = D;
    cfg.segments_per_rank = (total_segs + D - 1) / D;
    if (crash) {
      cfg.crash.enabled = true;
      cfg.crash.journal = true;
      // Wide liveness window: at ~200 ranks the default 250ms suspects
      // busy-but-alive delegates, and the false positives self-fence. That
      // path also recovers (deterministically), but this leg demonstrates
      // the scheduled crash, not the failure detector's trigger finger.
      cfg.crash.liveness_window = 2.0;
      cfg.faults.seed = 3;
      // Delegate 0 dies mid journal append, leaving a torn record behind.
      cfg.faults.crashes.push_back(
          {/*rank=*/0, CrashPoint::kMidJournal, /*after=*/3});
    }
    delegate::Session session(comm, fsys, cfg);
    if (session.isDelegate()) {
      session.serve();
      return;
    }
    delegate::Channel ch(session);
    const int c = session.clientComm().rank();
    delegate::DFile f(ch, name, fs::kWrite | fs::kCreate | fs::kTruncate);
    for (int i = 0; i < kBlocksPerClient; ++i) {
      f.writeAt((static_cast<Offset>(i) * W + c) * kBlock, blockPayload(c, i));
    }
    f.close();
    const core::TcioDelegateStats& merged = session.finish();
    if (c == 0) s.del = merged;
  });
  s.makespan = res.makespan;
  s.crc = fileCrc(fsys, name);
  s.file_size = fsys.peekSize(name);
  const auto& ops = fsys.opsByClient();
  s.fs_clients = static_cast<int>(ops.size());
  // The delegate invariant: only ranks 0..D-1 ever touch the FS. (The
  // baseline has no such bound — every rank drains its own segments.)
  s.fs_clients_exact = D == 0 || s.fs_clients == D;
  for (const auto& [rank, n] : ops) {
    if (D > 0 && rank >= D) s.fs_clients_exact = false;
  }
  return s;
}

struct ChurnSample {
  SimTime makespan = 0;
  workload::ChurnResult res;
  bool bytes_ok = false;
};

/// Churn at `P` total ranks: D delegates with a small queue against P - D
/// clients opening, writing, and closing a shared file every round. The
/// queue stays ~16x oversubscribed, so admission control must reject; the
/// capacity scales with P only to keep the retry-storm message count (and
/// the bench's wall-clock) linear rather than quadratic in the client count.
ChurnSample measureChurn(int P, int D, std::int64_t queue_capacity) {
  fs::Filesystem fsys(paperFs());
  workload::ChurnConfig cfg;
  cfg.rounds = 2;
  cfg.block_bytes = 512;
  cfg.blocks_per_round = 1;
  cfg.tcio = paperTcio();
  cfg.tcio.delegate_ranks = D > 0 ? D : -1;
  cfg.tcio.delegate.queue_capacity = queue_capacity;
  ChurnSample s;
  mpi::JobConfig job = paperJob(P, /*seed=*/5);
  applyUnscaledMessageCost(job);
  const auto res = mpi::runJob(job, [&](mpi::Comm& comm) {
    const workload::ChurnResult r = workload::runChurn(comm, fsys, cfg);
    if (comm.rank() == comm.size() - 1) s.res = r;
  });
  s.makespan = res.makespan;
  // Verify every round file byte-for-byte against the generator.
  const int clients = D > 0 ? P - D : P;
  s.bytes_ok = true;
  std::vector<std::byte> expect(
      static_cast<std::size_t>(clients) * cfg.block_bytes);
  for (int r = 0; r < cfg.rounds; ++r) {
    for (int c = 0; c < clients; ++c) {
      for (std::int64_t j = 0; j < cfg.block_bytes; ++j) {
        expect[static_cast<std::size_t>(c) * cfg.block_bytes +
               static_cast<std::size_t>(j)] = workload::churnByte(r, c, 0, j);
      }
    }
    const std::string name = workload::churnFileName(cfg, r);
    if (fsys.peekSize(name) != static_cast<Bytes>(expect.size()) ||
        fileCrc(fsys, name) != crc32(expect)) {
      s.bytes_ok = false;
    }
  }
  return s;
}

}  // namespace
}  // namespace tcio::bench

int main() {
  using namespace tcio;
  using namespace tcio::bench;

  printHeader(
      "Ablation: I/O delegate ranks (client:delegate ratio sweep + churn)",
      "delegate legs reach CRC parity with the baseline while only ranks "
      "0..D-1 issue FS calls; adjacent-extent batching cuts FS requests; "
      "a mid-journal delegate crash recovers to the identical CRC; churn "
      "with a tiny queue reports nonzero admission rejections absorbed by "
      "client busy-retries");

  const bool fast = envInt64("TCIO_BENCH_FAST", 0) != 0;
  const int W = fast ? 48 : 192;
  bool ok = true;

  // -- Leg 1: ratio sweep ----------------------------------------------------
  Table sweep("ablation.delegates.sweep");
  sweep.header({"delegates", "FS ranks", "exact", "crc", "submissions",
                "batches", "busy retries", "makespan s", "speedup"});
  const Sample base = measureFig5(W, 0, /*crash=*/false);
  std::uint32_t base_crc = base.crc;
  std::fprintf(stderr, "[sweep] baseline done\n");
  for (int D : {0, W / 16, W / 8, W / 4}) {
    const Sample s = D == 0 ? base : measureFig5(W, D, /*crash=*/false);
    std::fprintf(stderr, "[sweep] D=%d done\n", D);
    const bool parity = s.crc == base_crc && s.fs_clients_exact;
    if (!parity) ok = false;
    sweep.row({std::to_string(D), std::to_string(s.fs_clients),
               D == 0 ? "-" : (s.fs_clients_exact ? "yes" : "NO"),
               s.crc == base_crc ? "parity" : "MISMATCH",
               std::to_string(s.del.submissions),
               std::to_string(s.del.batches),
               std::to_string(s.del.busy_retries),
               formatDouble(s.makespan, 4),
               formatDouble(base.makespan / s.makespan, 2)});
  }
  sweep.print(std::cout);

  // -- Leg 2: delegate crash -------------------------------------------------
  const Sample crash = measureFig5(W, W / 8, /*crash=*/true);
  std::fprintf(stderr, "[crash] done\n");
  const bool crash_ok = crash.crc == base_crc && crash.del.delegates_crashed &&
                        crash.del.shards_adopted > 0;
  if (!crash_ok) ok = false;
  std::printf(
      "crash leg (D=%d, mid-journal): crashed=%lld adopted=%lld replayed=%lld "
      "resubmitted=%lld crc %s\n",
      W / 8, static_cast<long long>(crash.del.delegates_crashed),
      static_cast<long long>(crash.del.shards_adopted),
      static_cast<long long>(crash.del.journal_records_replayed),
      static_cast<long long>(crash.del.deferred_resubmissions),
      crash.crc == base_crc ? "parity" : "MISMATCH");

  // -- Leg 3: churn at scale -------------------------------------------------
  const int churn_P = fast ? 256 : 4096;
  const int churn_D = fast ? 8 : 4;
  const std::int64_t churn_queue = fast ? 8 : 64;
  const ChurnSample churn = measureChurn(churn_P, churn_D, churn_queue);
  const bool churn_ok = churn.bytes_ok && churn.res.delegate.rejections > 0 &&
                        churn.res.delegate.busy_retries > 0;
  if (!churn_ok) ok = false;
  std::printf(
      "churn leg (P=%d, D=%d, queue=%lld): submissions=%lld rejections=%lld "
      "busy_retries=%lld high_watermark=%lld bytes %s makespan %.4fs\n",
      churn_P, churn_D, static_cast<long long>(churn_queue),
      static_cast<long long>(churn.res.delegate.submissions),
      static_cast<long long>(churn.res.delegate.rejections),
      static_cast<long long>(churn.res.delegate.busy_retries),
      static_cast<long long>(churn.res.delegate.queue_high_watermark),
      churn.bytes_ok ? "verified" : "MISMATCH", churn.makespan);

  std::printf("acceptance (CRC parity, FS ranks == {0..D-1}, crash recovery, "
              "churn rejections absorbed): %s\n",
              ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}
