// Ablation: topology-aware intra-node aggregation (src/topo/) vs the
// per-rank level-1 -> level-2 shuffle, on the Fig. 5 interleaved write
// pattern.
//
// The per-rank shuffle issues one RMA epoch per (rank, destination) pair;
// with 12 ranks per node nearly all of them cross the NIC. Node aggregation
// funnels same-destination-node blocks through per-node leaders over the
// memory bus and issues one coalesced epoch per (source node, destination
// node) pair, so the NIC payload message count must drop sharply as
// ranks-per-node grows — and degenerate gracefully to (roughly) the
// baseline at 1 rank per node, where there is nothing to aggregate.
#include <cstdio>
#include <iostream>

#include "bench/bench_common.h"
#include "workload/synthetic.h"

namespace tcio::bench {
namespace {

struct Sample {
  std::int64_t nic_payload_msgs = 0;
  Bytes nic_bytes = 0;
  Bytes membus_bytes = 0;
  SimTime makespan = 0;
};

Sample measure(int P, int ranks_per_node, bool node_agg) {
  fs::Filesystem fsys(paperFs());
  mpi::JobConfig job = paperJob(P);
  applyUnscaledMessageCost(job);  // both legs: message-dominated ablation
  job.net.ranks_per_node = ranks_per_node;
  Sample s;
  const auto res = mpi::runJob(job, [&](mpi::Comm& comm) {
    workload::BenchmarkConfig cfg;
    cfg.method = workload::Method::kTcio;
    cfg.array_elem_sizes = {4, 8};  // Table II: i,d
    cfg.len_array = 4096;
    cfg.size_access = 1;
    cfg.tcio = paperTcio();
    cfg.tcio.node_aggregation = node_agg;
    workload::runWritePhase(comm, fsys, cfg);
    comm.barrier();  // all traffic accounted before counters are sampled
    if (comm.rank() == 0) {
      const net::Network& net = comm.world().network();
      s.nic_payload_msgs = net.internodePayloadMessages();
      s.nic_bytes = net.internodeBytes();
      s.membus_bytes = net.intranodeBytes();
    }
  });
  s.makespan = res.makespan;
  return s;
}

}  // namespace
}  // namespace tcio::bench

int main() {
  using namespace tcio;
  using namespace tcio::bench;

  printHeader("Ablation: topology-aware intra-node aggregation",
              "NIC payload message count collapses (~20x at 12 ranks/node) "
              "at byte parity; the geometric 1/64 scaling inflates per-byte "
              "costs relative to the unscaled per-message overhead, so the "
              "virtual-time ratio here is a lower bound on the real win");

  const int P = 48;
  Table t("ablation.node_agg");
  t.header({"ranks/node", "NIC msgs base", "NIC msgs agg", "NIC MB base",
            "NIC MB agg", "membus MB agg", "speedup"});
  bool strictly_fewer_at_12 = false;
  for (int rpn : {1, 4, 12}) {
    const Sample base = measure(P, rpn, /*node_agg=*/false);
    const Sample agg = measure(P, rpn, /*node_agg=*/true);
    if (rpn == 12) {
      strictly_fewer_at_12 = agg.nic_payload_msgs < base.nic_payload_msgs;
    }
    t.row({std::to_string(rpn), std::to_string(base.nic_payload_msgs),
           std::to_string(agg.nic_payload_msgs),
           formatDouble(static_cast<double>(base.nic_bytes) / 1e6, 2),
           formatDouble(static_cast<double>(agg.nic_bytes) / 1e6, 2),
           formatDouble(static_cast<double>(agg.membus_bytes) / 1e6, 2),
           formatDouble(base.makespan / agg.makespan, 2)});
  }
  t.print(std::cout);
  std::printf("acceptance (rpn=12, strictly fewer NIC payload msgs): %s\n",
              strictly_fewer_at_12 ? "PASS" : "FAIL");
  return strictly_fewer_at_12 ? 0 : 1;
}
