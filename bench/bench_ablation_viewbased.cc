// Extension ablation: two-phase (OCIO) vs view-based collective I/O
// (Blas et al., the paper's related work §II). View-based exchanges view
// metadata once at set_view; every subsequent collective moves payload only.
// The benefit grows with the number of collective calls amortizing the
// exchange — exactly the claim of the original view-based paper.
#include <cstdio>
#include <iostream>

#include "bench/bench_common.h"
#include "mpiio/file.h"

int main() {
  using namespace tcio;
  using namespace tcio::bench;

  printHeader("Ablation: two-phase (OCIO) vs view-based collective I/O",
              "view-based moves less metadata; advantage grows with the "
              "number of collective calls per view");

  const int P = 64;
  const std::int64_t len = 2048;
  const Bytes block = 12;
  Table t("ablation.viewbased");
  t.header({"calls per view", "two-phase MB/s", "view-based MB/s",
            "msg ratio (vb/tp)"});
  for (const int calls : {1, 4, 16}) {
    double mbps[2] = {0, 0};
    std::int64_t msgs[2] = {0, 0};
    for (int mode = 0; mode < 2; ++mode) {
      fs::Filesystem fsys(paperFs());
      mpi::JobConfig jc = paperJob(P);
      sim::Engine::Config ec;
      ec.num_ranks = jc.num_ranks;
      ec.seed = jc.seed;
      sim::Engine engine(ec);
      jc.net.num_ranks = jc.num_ranks;
      net::Network network(jc.net);
      mpi::World world(engine, network, jc.mpi);
      engine.run([&](sim::Proc& proc) {
        mpi::Comm comm(world, proc);
        io::MpioConfig mc;
        mc.view_based = (mode == 1);
        comm.barrier();
        const SimTime t0 = comm.proc().now();
        io::MpioFile f = io::MpioFile::open(comm, fsys, "vb.dat",
                                            fs::kWrite | fs::kCreate, mc);
        auto e =
            mpi::Datatype::contiguous(block, mpi::Datatype::byte()).commit();
        auto ft = mpi::Datatype::vector(len, 1, P, e).commit();
        f.setView(comm.rank() * block, e, ft);
        std::vector<std::byte> buf(static_cast<std::size_t>(len * block),
                                   static_cast<std::byte>(comm.rank()));
        for (int c = 0; c < calls; ++c) {
          f.writeAtAll(0, buf.data(), static_cast<Bytes>(buf.size()));
        }
        f.close();
        comm.barrier();
        double dt = comm.proc().now() - t0;
        comm.allreduce(&dt, 1, mpi::ReduceOp::kMax);
        if (comm.rank() == 0) {
          mbps[mode] =
              static_cast<double>(len * block) * P * calls / dt / 1e6;
          msgs[mode] = network.messageCount();
        }
      });
    }
    t.row({std::to_string(calls), formatDouble(mbps[0], 1),
           formatDouble(mbps[1], 1),
           formatDouble(static_cast<double>(msgs[1]) /
                            static_cast<double>(msgs[0]),
                        2)});
  }
  t.print(std::cout);
  return 0;
}
