// Calibration probe 2: phase-by-phase decomposition of the TCIO read path.
#include <cstdio>

#include "bench/bench_common.h"
#include "tcio/file.h"
#include "workload/synthetic.h"

using namespace tcio;
using namespace tcio::bench;

int main(int argc, char** argv) {
  const int P = argc > 1 ? std::atoi(argv[1]) : 64;
  fs::Filesystem fsys(paperFs());
  mpi::runJob(paperJob(P), [&](mpi::Comm& comm) {
    workload::BenchmarkConfig cfg;
    cfg.method = workload::Method::kTcio;
    cfg.array_elem_sizes = {4, 8};
    cfg.len_array = 4096;
    cfg.tcio = paperTcio();
    // Manual write phase with timestamps.
    {
      const Bytes fsz = workload::totalFileSize(cfg, P);
      core::TcioConfig tc = cfg.tcio;
      tc.segments_per_rank =
          (fsz + tc.segment_size * P - 1) / (tc.segment_size * P);
      comm.barrier();
      const SimTime w0 = comm.proc().now();
      core::File f(comm, fsys, cfg.file_name,
                   fs::kWrite | fs::kCreate, tc);
      const SimTime w1 = comm.proc().now();
      std::vector<std::byte> src(12, std::byte{7});
      for (std::int64_t i = 0; i < cfg.len_array; ++i) {
        f.writeAt(comm.rank() * 12 + i * 12 * P, src.data(), 12);
      }
      const SimTime w2 = comm.proc().now();
      f.close();
      const SimTime w3 = comm.proc().now();
      comm.barrier();
      if (comm.rank() == 0) {
        std::printf("write: open %.4f loop %.4f close %.4f\n", w1 - w0,
                    w2 - w1, w3 - w2);
      }
    }
    workload::runWritePhase(comm, fsys, cfg);
    comm.barrier();

    // Manual read phase with timestamps.
    const Bytes file_size = workload::totalFileSize(cfg, P);
    core::TcioConfig tc = cfg.tcio;
    tc.segments_per_rank =
        (file_size + tc.segment_size * P - 1) / (tc.segment_size * P);
    const SimTime t0 = comm.proc().now();
    core::File f(comm, fsys, cfg.file_name, fs::kRead, tc);
    const SimTime t1 = comm.proc().now();
    std::vector<std::byte> sink(12u * 4096);
    const Bytes block = 12;
    for (std::int64_t i = 0; i < cfg.len_array; ++i) {
      const Offset pos = comm.rank() * block + i * block * P;
      f.readAt(pos, sink.data() + i * block, block);
    }
    const SimTime t2 = comm.proc().now();
    f.fetch();
    const SimTime t3 = comm.proc().now();
    const auto st = f.stats();
    f.close();
    const SimTime t4 = comm.proc().now();
    if (comm.rank() == 0) {
      std::printf(
          "P=%d open %.4f loop %.4f fetch %.4f close %.4f | indep=%lld "
          "coll=%lld\n",
          P, t1 - t0, t2 - t1, t3 - t2, t4 - t3,
          static_cast<long long>(st.independent_fetches),
          static_cast<long long>(st.collective_fetches));
    }
  });
  return 0;
}
