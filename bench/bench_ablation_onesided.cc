// Ablation (paper §IV.A): one-sided lock/put/unlock exchange vs a two-sided
// collective (alltoallv) exchange under the same TCIO API.
//
// The paper argues one-sided communication is essential: it removes the
// matching-pair requirement (processes issue different numbers of I/O calls)
// and avoids the synchronized exchange burst. The two-sided variant must
// also stage every write locally until the next collective flush — extra
// memory the one-sided design never needs.
#include <cstdio>
#include <iostream>

#include "bench/bench_common.h"
#include "workload/synthetic.h"

int main() {
  using namespace tcio;
  using namespace tcio::bench;

  printHeader("Ablation: one-sided vs two-sided level-2 exchange",
              "one-sided wins at scale (no synchronized burst) and uses "
              "less memory (no staging)");

  Table t("ablation.onesided");
  t.header({"procs", "one-sided MB/s", "two-sided MB/s", "one-sided peak mem",
            "two-sided peak mem"});
  for (int P : {16, 64, 256}) {
    double mbps[2] = {0, 0};
    Bytes peak[2] = {0, 0};
    for (int mode = 0; mode < 2; ++mode) {
      fs::Filesystem fsys(paperFs());
      mpi::JobConfig job = paperJob(P);
      job.memory_budget_per_rank = 0;
      mpi::runJob(job, [&](mpi::Comm& comm) {
        workload::BenchmarkConfig cfg;
        cfg.method = workload::Method::kTcio;
        cfg.array_elem_sizes = {4, 8};
        cfg.len_array = 4096;
        cfg.tcio = paperTcio();
        cfg.tcio.use_onesided = (mode == 0);
        const auto r = workload::runWritePhase(comm, fsys, cfg);
        if (comm.rank() == 0) {
          mbps[mode] = r.throughput_mbps;
          peak[mode] = comm.memory().peak();
        }
      });
    }
    t.row({std::to_string(P), formatDouble(mbps[0], 1),
           formatDouble(mbps[1], 1), formatBytes(peak[0]),
           formatBytes(peak[1])});
  }
  t.print(std::cout);
  return 0;
}
