// Ablation: end-to-end integrity (checksum domains + verified hops +
// close-time scrub) vs checksums off, on the Fig. 5 interleaved pattern.
//
// Every hop digest is priced at hardware-folded CRC32 speed
// (IntegrityConfig::checksum_bandwidth, ~50 GB/s), so the protection tax
// must stay in the noise next to disk and NIC time: the acceptance gate is
// <= 5% virtual-time overhead on both the write and the read phase, in the
// per-rank shuffle and the node-aggregated exchange alike.
#include <cstdio>
#include <iostream>

#include "bench/bench_common.h"
#include "workload/synthetic.h"

namespace tcio::bench {
namespace {

struct Sample {
  SimTime write_s = 0;
  SimTime read_s = 0;
};

Sample measure(int P, bool node_agg, bool integrity) {
  fs::FsConfig fcfg = paperFs();
  fcfg.integrity = integrity ? 1 : -1;
  fs::Filesystem fsys(fcfg);
  mpi::JobConfig job = paperJob(P);
  job.net.ranks_per_node = 12;
  Sample s;
  mpi::runJob(job, [&](mpi::Comm& comm) {
    workload::BenchmarkConfig cfg;
    cfg.method = workload::Method::kTcio;
    cfg.array_elem_sizes = {4, 8};  // Table II: i,d
    cfg.len_array = 4096;
    cfg.size_access = 1;
    cfg.tcio = paperTcio();
    cfg.tcio.node_aggregation = node_agg;
    cfg.tcio.integrity.enabled = integrity ? 1 : -1;
    const auto w = workload::runWritePhase(comm, fsys, cfg);
    const auto r = workload::runReadPhase(comm, fsys, cfg);
    if (comm.rank() == 0) {
      s.write_s = w.seconds;
      s.read_s = r.seconds;
    }
  });
  return s;
}

double pct(SimTime with, SimTime without) {
  return (with / without - 1.0) * 100.0;
}

}  // namespace
}  // namespace tcio::bench

int main() {
  using namespace tcio;
  using namespace tcio::bench;

  printHeader("Ablation: end-to-end integrity overhead",
              "per-extent CRCs verified at every domain crossing plus the "
              "close-time scrub cost <= 5% of phase time: checksums run at "
              "memory speed while the phases are disk- and NIC-bound");

  const int P = 48;
  Table t("ablation.integrity");
  t.header({"mode", "write off (s)", "write on (s)", "write ovh %",
            "read off (s)", "read on (s)", "read ovh %"});
  double worst = 0.0;
  for (const bool node_agg : {false, true}) {
    const Sample off = measure(P, node_agg, /*integrity=*/false);
    const Sample on = measure(P, node_agg, /*integrity=*/true);
    const double w_ovh = pct(on.write_s, off.write_s);
    const double r_ovh = pct(on.read_s, off.read_s);
    worst = std::max({worst, w_ovh, r_ovh});
    t.row({node_agg ? "node-agg" : "per-rank", formatDouble(off.write_s, 4),
           formatDouble(on.write_s, 4), formatDouble(w_ovh, 2),
           formatDouble(off.read_s, 4), formatDouble(on.read_s, 4),
           formatDouble(r_ovh, 2)});
  }
  t.print(std::cout);
  std::printf("acceptance (integrity overhead <= 5%% on every phase): %s "
              "(worst %.2f%%)\n",
              worst <= 5.0 ? "PASS" : "FAIL", worst);
  return worst <= 5.0 ? 0 : 1;
}
