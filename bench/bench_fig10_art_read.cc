// Figure 10: ART restart (read) throughput vs process count, TCIO vs
// vanilla MPI-IO — the snapshot produced in the dump phase is read back and
// every tree verified.
//
// Paper shape: TCIO far ahead of vanilla per-datum reads; TCIO rises with P
// then flattens/dips at file-system saturation.
#include <cstdio>
#include <iostream>

#include "art/checkpoint.h"
#include "bench/bench_common.h"

namespace tcio::bench {
namespace {

constexpr std::int64_t kNumTrees = 1024;
constexpr int kNumVars = 2;

std::vector<std::int64_t> segmentLengths() {
  Rng rng(5);
  std::vector<std::int64_t> lens;
  lens.reserve(kNumTrees);
  for (std::int64_t i = 0; i < kNumTrees; ++i) {
    const double v = rng.normal(2048.0, 128.0);
    lens.push_back(std::max<std::int64_t>(64, static_cast<std::int64_t>(v)));
  }
  return lens;
}

double measureRestart(art::Backend backend, int P) {
  fs::Filesystem fsys(paperFs());
  const auto lens = segmentLengths();
  SimTime seconds = 0;
  mpi::runJob(paperJob(P), [&](mpi::Comm& comm) {
    art::CheckpointConfig cfg;
    cfg.backend = backend;
    cfg.tcio = paperTcio();
    std::vector<art::FttTree> trees;
    for (std::int64_t id : art::treesOfRank(kNumTrees, comm.rank(), P)) {
      trees.push_back(art::generateTreeWithCells(
          5, id, kNumVars, lens[static_cast<std::size_t>(id)]));
    }
    // Snapshot via TCIO (fast), restart via the backend under test.
    art::CheckpointConfig wcfg = cfg;
    wcfg.backend = art::Backend::kTcio;
    art::dumpCheckpoint(comm, fsys, "art_fig10.chk", trees, kNumTrees, wcfg);
    comm.barrier();
    const SimTime t0 = comm.proc().now();
    const auto loaded = art::loadCheckpoint(comm, fsys, "art_fig10.chk", cfg);
    comm.barrier();
    double dt = comm.proc().now() - t0;
    comm.allreduce(&dt, 1, mpi::ReduceOp::kMax);
    TCIO_CHECK_MSG(loaded.size() == trees.size(), "restart lost trees");
    for (std::size_t i = 0; i < trees.size(); ++i) {
      TCIO_CHECK_MSG(loaded[i] == trees[i], "restart corrupted a tree");
    }
    if (comm.rank() == 0) seconds = dt;
  });
  return static_cast<double>(fsys.peekSize("art_fig10.chk")) / seconds / 1e6;
}

}  // namespace
}  // namespace tcio::bench

int main() {
  using namespace tcio;
  using namespace tcio::bench;

  printHeader(
      "Figure 10: ART restart throughput vs process count",
      "TCIO far above vanilla per-datum MPI-IO reads; rises then flattens");

  Table t("fig10.art_read");
  t.header({"procs", "TCIO MB/s", "vanilla MB/s", "speedup"});
  for (int P : processLadder()) {
    const double tcio_mbps = measureRestart(art::Backend::kTcio, P);
    const double van_mbps = measureRestart(art::Backend::kVanillaMpiio, P);
    t.row({std::to_string(P), formatDouble(tcio_mbps, 1),
           formatDouble(van_mbps, 2),
           formatDouble(tcio_mbps / van_mbps, 1) + "x"});
    std::printf("  P=%d done\n", P);
    std::fflush(stdout);
  }
  t.print(std::cout);
  return 0;
}
