// Tables I & III and the Program 2 / Program 3 comparison (§V.B.1):
// the qualitative OCIO-vs-TCIO comparison, backed by measured evidence from
// this repository's implementations — source lines, API calls, and peak
// simulated memory per rank on the same workload.
#include <cstdio>
#include <iostream>

#include "bench/bench_common.h"
#include "workload/synthetic.h"

int main() {
  using namespace tcio;
  using namespace tcio::bench;

  printHeader("Table III: OCIO vs TCIO comparison (measured evidence)",
              "TCIO: no app-level buffer, no file view, fewer LoC, better "
              "memory efficiency, fewer access-pattern restrictions");

  // Measure peak memory per rank for both methods on the Table II workload.
  const int P = 16;
  Bytes peak_tcio = 0, peak_ocio = 0;
  for (auto method : {workload::Method::kTcio, workload::Method::kOcio}) {
    fs::Filesystem fsys(paperFs());
    mpi::JobConfig job = paperJob(P);
    job.memory_budget_per_rank = 0;  // measuring, not enforcing
    Bytes peak = 0;
    mpi::runJob(job, [&](mpi::Comm& comm) {
      workload::BenchmarkConfig cfg;
      cfg.method = method;
      cfg.array_elem_sizes = {4, 8};
      cfg.len_array = 16384;
      cfg.tcio = paperTcio();
      workload::runWritePhase(comm, fsys, cfg);
      if (comm.rank() == 0) peak = comm.memory().peak();
    });
    (method == workload::Method::kTcio ? peak_tcio : peak_ocio) = peak;
  }

  const auto effort = workload::measureProgrammingEffort();

  Table t("table3");
  t.header({"aspect", "OCIO", "TCIO"});
  t.row({"application-level buffer", "yes (combine before one call)", "no"});
  t.row({"file view / derived datatypes", "yes", "no"});
  t.row({"lines of code (this repo's write path)",
         std::to_string(effort.ocio_lines), std::to_string(effort.tcio_lines)});
  t.row({"distinct I/O-stack API calls", std::to_string(effort.ocio_api_calls),
         std::to_string(effort.tcio_api_calls)});
  t.row({"peak memory/rank (Table II workload)", formatBytes(peak_ocio),
         formatBytes(peak_tcio)});
  t.row({"access-pattern restriction",
         "patterns describable by derived datatypes",
         "any POSIX-like pattern (incl. dynamic sizes)"});
  t.print(std::cout);

  std::printf(
      "\nTable I configuration parameters exercised by this harness:\n"
      "  method (0 OCIO / 1 TCIO / 2 MPI-IO), NUMarray, TYPEarray\n"
      "  (c,s,i,f,d), LENarray, SIZEaccess — see workload::BenchmarkConfig.\n");
  return 0;
}
