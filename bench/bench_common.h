// Shared configuration for the figure-reproduction benches.
//
// Scaling: the paper's runs use 4 Mi-element arrays and 768 MB–48 GB files
// on a 1,888-node machine. The simulator moves real bytes, so the benches
// run a geometrically faithful 1/kScale model: every per-rank byte count,
// buffer, segment, stripe, cache, and memory budget shrinks by the same
// factor, which preserves every ratio the paper's arguments depend on
// (bytes per segment per rank, buffers vs budget, requests per OST).
// Process counts (the x axes) are NOT scaled. See EXPERIMENTS.md.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "common/env.h"
#include "common/table.h"
#include "common/types.h"
#include "fs/filesystem.h"
#include "mpi/runtime.h"
#include "tcio/config.h"

namespace tcio::bench {

/// Geometric down-scale factor for data sizes (1/64 of the paper).
constexpr std::int64_t kScale = 64;

/// Lonestar: 24 GB/node, 12 cores -> 2 GB per process, scaled.
constexpr Bytes kMemoryBudgetPerRank = 2_GiB / kScale;

/// Lustre stripe (= lock granularity = TCIO segment size), scaled from 1 MiB.
constexpr Bytes kStripe = 1_MiB / kScale;

inline fs::FsConfig paperFs() {
  fs::FsConfig c;
  c.num_osts = 30;
  c.stripe_size = kStripe;
  c.default_stripe_count = 1;  // Lonestar default: one OST per file
  // Per-byte rates scale with the data (geometric model); per-request
  // overheads do not — they are per-operation costs.
  c.ost_write_bandwidth = 1.2e9 / kScale;   // OSS ingest (write-back cache)
  c.ost_read_bandwidth = 2.0e9 / kScale;
  c.cache_read_bandwidth = 8.0e9 / kScale;  // server-cache hits
  c.cache_capacity_per_ost = 8_GiB / kScale;
  c.ost_request_overhead = 0.7e-3;
  c.cache_hit_overhead = 0.1e-3;
  c.rpc_latency = 30.0e-6;
  c.mds_open = 0.1e-3;
  // Misaligned/sub-page writes trigger server-side page read-modify-write.
  c.page_size = 4096;
  c.small_write_penalty = 1.5e-3;
  return c;
}

inline mpi::JobConfig paperJob(int P, std::uint64_t seed = 1) {
  mpi::JobConfig c;
  c.num_ranks = P;
  c.seed = seed;
  c.memory_budget_per_rank = kMemoryBudgetPerRank;
  c.net.ranks_per_node = 12;
  // Per-byte rates scale with the data; latencies/overheads do not.
  c.net.nic_bandwidth = 5.0e9 / kScale;
  c.net.membus_bandwidth = 20.0e9 / kScale;
  c.mpi.memcpy_bandwidth = 6.0e9 / kScale;
  c.net.per_message_overhead = 0.1e-6;
  // Outstanding-transmit (burst) model: fully-posted all-to-all exchanges
  // overflow the NIC TX queue and pay a quadratic aggregate penalty.
  c.net.tx_queue_depth = 192;
  c.net.tx_overflow_penalty = 0.2e-3;
  // Production-mode noise (paper §V.A: "experiments were conducted during
  // the production mode, meaning other applications coexist").
  c.net.jitter_mean = 0.5e-6;
  c.net.heavy_tail_prob = 1e-4;
  c.net.heavy_tail_mean = 0.8e-3;
  c.net.jitter_seed = seed * 7919 + 11;
  return c;
}

/// Message-cost correction for message-dominated ablations. Under the
/// geometric model message counts stay at paper levels while bytes shrink:
/// the scaled 0.1 us term keeps the bandwidth and message-count cost classes
/// in proportion for byte-dominated phases, but a real NIC's per-message
/// cost does not shrink with the payload — the remainder of the testbed's
/// 0.7 us is charged through the unscaled term. Benches whose treatment cuts
/// message counts (node aggregation, delegate batching) would otherwise
/// understate the savings by up to kScale. Opt-in, NOT part of paperJob():
/// the figure benches keep the historical calibration their recorded
/// baselines were measured under, and an ablation that applies the
/// correction applies it to base and treatment legs alike, so its ratios
/// isolate the feature rather than the testbed change.
inline void applyUnscaledMessageCost(mpi::JobConfig& c) {
  c.net.per_message_overhead_unscaled = 0.6e-6;
}

inline core::TcioConfig paperTcio() {
  core::TcioConfig c;
  c.segment_size = kStripe;  // paper: segment size = lock granularity
  c.segments_per_rank = 1;   // sized up automatically per workload
  return c;
}

/// Process-count ladder; TCIO_BENCH_FAST=1 trims it for smoke runs.
inline std::vector<int> processLadder() {
  if (envInt64("TCIO_BENCH_FAST", 0) != 0) return {16, 32, 64};
  return {64, 128, 256, 512, 1024};
}

/// The paper averages >= 3 runs per point; the simulator is deterministic
/// given a seed, so the default is one run per point (each extra repeat
/// re-rolls the noise seed). Override with TCIO_BENCH_REPEATS.
inline int repeats() {
  return static_cast<int>(envInt64("TCIO_BENCH_REPEATS", 1));
}

inline void printHeader(const char* what, const char* paper_expectation) {
  std::printf("\n%s\n", what);
  std::printf("paper expectation: %s\n", paper_expectation);
}

}  // namespace tcio::bench
