// Microbenchmarks (google-benchmark) of the simulated parallel file system:
// per-request costs, cache effect, striping effect, lock ping-pong — the
// FS-side constants behind the paper's arguments.
#include <benchmark/benchmark.h>

#include "bench/bench_common.h"
#include "fs/client.h"
#include "mpi/runtime.h"

namespace tcio::bench {
namespace {

void BM_ContiguousWriteVirtualCost(benchmark::State& state) {
  const Bytes n = state.range(0);
  SimTime virtual_cost = 0;
  for (auto _ : state) {
    fs::Filesystem fsys(paperFs());
    SimTime t = 0;
    mpi::runJob(paperJob(1), [&](mpi::Comm& comm) {
      fs::FsClient fc(fsys, comm.proc());
      fs::FsFile f = fc.open("m.dat", fs::kWrite | fs::kCreate);
      std::vector<std::byte> buf(static_cast<std::size_t>(n), std::byte{1});
      const SimTime t0 = comm.proc().now();
      fc.pwrite(f, 0, buf.data(), n);
      t = comm.proc().now() - t0;
      fc.close(f);
    });
    virtual_cost = t;
  }
  state.counters["virtual_ms"] = virtual_cost * 1e3;
  state.counters["virtual_MBps"] =
      static_cast<double>(n) / virtual_cost / 1e6;
}
BENCHMARK(BM_ContiguousWriteVirtualCost)->Arg(4096)->Arg(1 << 14)->Arg(1 << 20);

void BM_CachedVsColdRead(benchmark::State& state) {
  const bool cached = state.range(0) != 0;
  SimTime virtual_cost = 0;
  for (auto _ : state) {
    fs::FsConfig fcfg = paperFs();
    if (!cached) fcfg.cache_capacity_per_ost = 0;
    fs::Filesystem fsys(fcfg);
    SimTime t = 0;
    mpi::runJob(paperJob(1), [&](mpi::Comm& comm) {
      fs::FsClient fc(fsys, comm.proc());
      fs::FsFile f = fc.open("c.dat", fs::kRead | fs::kWrite | fs::kCreate);
      std::vector<std::byte> buf(1 << 18, std::byte{1});
      fc.pwrite(f, 0, buf.data(), 1 << 18);
      const SimTime t0 = comm.proc().now();
      fc.pread(f, 0, buf.data(), 1 << 18);
      t = comm.proc().now() - t0;
      fc.close(f);
    });
    virtual_cost = t;
  }
  state.counters["virtual_ms"] = virtual_cost * 1e3;
}
BENCHMARK(BM_CachedVsColdRead)->Arg(1)->Arg(0);

void BM_LockPingPongPenalty(benchmark::State& state) {
  const int writers = static_cast<int>(state.range(0));
  SimTime virtual_cost = 0;
  for (auto _ : state) {
    fs::Filesystem fsys(paperFs());
    SimTime t = 0;
    mpi::runJob(paperJob(writers), [&](mpi::Comm& comm) {
      fs::FsClient fc(fsys, comm.proc());
      fs::FsFile f = fc.open("p.dat", fs::kWrite | fs::kCreate);
      comm.barrier();
      const SimTime t0 = comm.proc().now();
      // Everyone hammers the same lock unit.
      for (int i = 0; i < 8; ++i) {
        const std::int64_t v = i;
        fc.pwrite(f, comm.rank() * 8 + i * 256, &v, 8);
      }
      comm.barrier();
      double dt = comm.proc().now() - t0;
      comm.allreduce(&dt, 1, mpi::ReduceOp::kMax);
      if (comm.rank() == 0) t = dt;
      fc.close(f);
    });
    virtual_cost = t;
  }
  state.counters["virtual_ms"] = virtual_cost * 1e3;
}
BENCHMARK(BM_LockPingPongPenalty)->Arg(1)->Arg(4)->Arg(16);

void BM_StripingParallelism(benchmark::State& state) {
  const int stripes = static_cast<int>(state.range(0));
  SimTime virtual_cost = 0;
  for (auto _ : state) {
    fs::FsConfig fcfg = paperFs();
    fcfg.default_stripe_count = stripes;
    fs::Filesystem fsys(fcfg);
    SimTime t = 0;
    mpi::runJob(paperJob(1), [&](mpi::Comm& comm) {
      fs::FsClient fc(fsys, comm.proc());
      fs::FsFile f = fc.open("s.dat", fs::kWrite | fs::kCreate);
      std::vector<std::byte> buf(1 << 20, std::byte{1});
      const SimTime t0 = comm.proc().now();
      fc.pwrite(f, 0, buf.data(), 1 << 20);
      t = comm.proc().now() - t0;
      fc.close(f);
    });
    virtual_cost = t;
  }
  state.counters["virtual_ms"] = virtual_cost * 1e3;
}
BENCHMARK(BM_StripingParallelism)->Arg(1)->Arg(4)->Arg(30);

}  // namespace
}  // namespace tcio::bench

BENCHMARK_MAIN();
