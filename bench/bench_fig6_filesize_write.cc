// Figure 6: synthetic-benchmark write throughput vs file size at P=64
// (LENarray swept 1M..64M in the paper — geometrically scaled here), TCIO
// vs OCIO.
//
// Paper shape: comparable throughput across sizes, and at the 48 GB point
// OCIO *fails* — each process would need application data + combine buffer
// + two-phase aggregator buffer, exceeding the ~2 GB/process budget —
// while TCIO (application data + level-2 window + one level-1 segment)
// still fits.
#include <cstdio>
#include <iostream>

#include "bench/bench_common.h"
#include "common/error.h"
#include "workload/synthetic.h"

namespace tcio::bench {
namespace {

constexpr int kProcs = 64;

workload::BenchmarkConfig cfgForLen(workload::Method m, std::int64_t len) {
  workload::BenchmarkConfig c;
  c.method = m;
  c.array_elem_sizes = {4, 8};
  c.len_array = len;
  c.size_access = 1;
  c.tcio = paperTcio();
  return c;
}

/// Runs one point; returns throughput or a failure marker string.
std::string measureWrite(workload::Method m, std::int64_t len) {
  try {
    fs::Filesystem fsys(paperFs());
    double mbps = 0;
    mpi::runJob(paperJob(kProcs), [&](mpi::Comm& comm) {
      const auto r =
          workload::runWritePhase(comm, fsys, cfgForLen(m, len));
      if (comm.rank() == 0) mbps = r.throughput_mbps;
    });
    return formatDouble(mbps, 1);
  } catch (const OutOfMemoryBudget& e) {
    return std::string("FAILED (out of memory: ") +
           formatBytes(e.requested_bytes) + " over budget)";
  }
}

}  // namespace
}  // namespace tcio::bench

int main() {
  using namespace tcio;
  using namespace tcio::bench;

  printHeader(
      "Figure 6: write throughput vs file size (P=64)",
      "OCIO fails at the 48 GB-equivalent point (memory); TCIO completes "
      "every size");

  Table t("fig6.write");
  t.header({"file size (paper-equiv)", "LENarray", "TCIO MB/s", "OCIO MB/s"});
  // Paper: LEN 1M..64M -> 768 MB..48 GB. Scaled: LEN/kScale.
  const std::int64_t lens[] = {(1LL << 20) / kScale, (4LL << 20) / kScale,
                               (16LL << 20) / kScale, (64LL << 20) / kScale};
  const char* labels[] = {"768 MB", "3 GB", "12 GB", "48 GB"};
  for (int i = 0; i < 4; ++i) {
    if (envInt64("TCIO_BENCH_FAST", 0) != 0 && i >= 2) break;
    t.row({labels[i], std::to_string(lens[i]),
           measureWrite(workload::Method::kTcio, lens[i]),
           measureWrite(workload::Method::kOcio, lens[i])});
    std::printf("  %s done\n", labels[i]);
    std::fflush(stdout);
  }
  t.print(std::cout);
  return 0;
}
