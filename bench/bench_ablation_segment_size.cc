// Ablation (DESIGN.md §IV.A design choice): level-2 segment size vs the
// file-system lock granularity.
//
// The paper sets SIZEsegment = lock granularity (the Lustre stripe size):
// smaller segments make processes "compete for the privilege to access a
// locked region" (more FS requests per lock unit, plus more epochs);
// larger segments imbalance the level-2 distribution and coarsen transfers.
// This sweep shows throughput peaking at 1x the lock granularity.
#include <cstdio>
#include <iostream>

#include "bench/bench_common.h"
#include "workload/synthetic.h"

int main() {
  using namespace tcio;
  using namespace tcio::bench;

  printHeader("Ablation: TCIO segment size (x lock granularity)",
              "best throughput at segment size == lock granularity (1x)");

  const int P = 64;
  Table t("ablation.segment_size");
  t.header({"segment", "x lock unit", "write MB/s", "segments",
            "idle ranks (imbalance)"});
  for (const double factor : {0.25, 0.5, 1.0, 2.0, 4.0, 16.0}) {
    fs::Filesystem fsys(paperFs());
    double mbps = 0;
    std::int64_t flushes = 0;
    mpi::runJob(paperJob(P), [&](mpi::Comm& comm) {
      workload::BenchmarkConfig cfg;
      cfg.method = workload::Method::kTcio;
      cfg.array_elem_sizes = {4, 8};
      cfg.len_array = 4096;
      cfg.tcio = paperTcio();
      cfg.tcio.segment_size = static_cast<Bytes>(
          static_cast<double>(kStripe) * factor);
      const auto r = workload::runWritePhase(comm, fsys, cfg);
      if (comm.rank() == 0) {
        mbps = r.throughput_mbps;
        flushes = (workload::totalFileSize(cfg, P) +
                   cfg.tcio.segment_size - 1) /
                  cfg.tcio.segment_size;
      }
    });
    const std::int64_t idle = std::max<std::int64_t>(0, P - flushes);
    t.row({formatBytes(static_cast<Bytes>(static_cast<double>(kStripe) *
                                          factor)),
           formatDouble(factor, 2), formatDouble(mbps, 1),
           std::to_string(flushes), std::to_string(idle)});
  }
  t.print(std::cout);
  std::printf(
      "note: below 1x, FS lock-unit contention dominates; above 1x the\n"
      "single-OST ceiling hides the level-2 imbalance cost (idle ranks),\n"
      "which is why the paper pins the segment to the lock granularity.\n");
  return 0;
}
