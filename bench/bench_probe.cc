// Calibration probe (not a paper figure): decomposes phase times for one
// configuration so the cost-model constants can be tuned intelligently.
#include <cstdio>
#include <iostream>

#include "bench/bench_common.h"
#include "workload/synthetic.h"

using namespace tcio;
using namespace tcio::bench;

int main(int argc, char** argv) {
  const int P = argc > 1 ? std::atoi(argv[1]) : 64;
  const int knob = argc > 2 ? std::atoi(argv[2]) : 0;  // bitmask of disables

  for (auto method : {workload::Method::kTcio, workload::Method::kOcio}) {
    fs::Filesystem fsys(paperFs());
    mpi::JobConfig job = paperJob(P);
    if (knob & 1) job.net.tx_queue_depth = 0;
    if (knob & 2) {
      job.net.jitter_mean = 0;
      job.net.heavy_tail_prob = 0;
    }
    if (knob & 4) job.net.fabric_congestion_gamma = 0;
    double w = 0, r = 0;
    SimTime wt = 0, rt = 0;
    mpi::runJob(job, [&](mpi::Comm& comm) {
      workload::BenchmarkConfig cfg;
      cfg.method = method;
      cfg.array_elem_sizes = {4, 8};
      cfg.len_array = 4096;
      cfg.tcio = paperTcio();
      const auto wres = workload::runWritePhase(comm, fsys, cfg);
      const auto rres = workload::runReadPhase(comm, fsys, cfg);
      if (comm.rank() == 0) {
        w = wres.throughput_mbps;
        r = rres.throughput_mbps;
        wt = wres.seconds;
        rt = rres.seconds;
      }
    });
    const auto st = fsys.stats();
    std::printf(
        "%s P=%d knob=%d: write %.4fs (%.1f MB/s) read %.4fs (%.1f MB/s) "
        "fs[w=%lld r=%lld cache=%lld%% revoke=%lld]\n",
        method == workload::Method::kTcio ? "TCIO" : "OCIO", P, knob, wt, w,
        rt, r, static_cast<long long>(st.write_requests),
        static_cast<long long>(st.read_requests),
        st.bytes_read > 0
            ? static_cast<long long>(100 * st.bytes_read_from_cache /
                                     st.bytes_read)
            : 0,
        static_cast<long long>(st.lock_revocations));
  }
  return 0;
}
