// Figure 5: synthetic-benchmark write and read throughput vs process count,
// TCIO vs OCIO (Table II configuration, geometrically scaled — see
// bench_common.h).
//
// Paper shapes to reproduce:
//   * write (left):  OCIO ahead at P <= 256, TCIO ahead at P >= 512, with
//     OCIO degrading beyond its peak;
//   * read (right):  TCIO ahead everywhere, gap widening with P.
#include <cstdio>
#include <iostream>

#include "bench/bench_common.h"
#include "common/stats.h"
#include "workload/synthetic.h"

namespace tcio::bench {
namespace {

// Table II: NUMarray=2, TYPEarray=i,d, LENarray=4M (scaled), SIZEaccess=1.
workload::BenchmarkConfig tableII(workload::Method m) {
  workload::BenchmarkConfig c;
  c.method = m;
  c.array_elem_sizes = {4, 8};
  // Paper: 4 Mi elements/array. Beyond the global 1/kScale, Fig. 5 shrinks
  // per-rank data further (to 4 Ki elements) to keep the discrete-event
  // count tractable at P=1024; segment count per rank and the
  // every-rank-touches-every-segment structure are preserved.
  c.len_array = 4096;
  c.size_access = 1;
  c.tcio = paperTcio();
  return c;
}

struct Point {
  double write_mbps = 0;
  double read_mbps = 0;
};

Point measure(workload::Method m, int P) {
  RunningStats wr, rd;
  for (int rep = 0; rep < repeats(); ++rep) {
    fs::Filesystem fsys(paperFs());
    double w = 0, r = 0;
    mpi::runJob(paperJob(P, static_cast<std::uint64_t>(rep) + 1),
                [&](mpi::Comm& comm) {
                  const auto cfg = tableII(m);
                  const auto wres = workload::runWritePhase(comm, fsys, cfg);
                  const auto rres = workload::runReadPhase(comm, fsys, cfg);
                  if (comm.rank() == 0) {
                    w = wres.throughput_mbps;
                    r = rres.throughput_mbps;
                  }
                });
    wr.add(w);
    rd.add(r);
  }
  return {wr.mean(), rd.mean()};
}

}  // namespace
}  // namespace tcio::bench

int main() {
  using namespace tcio;
  using namespace tcio::bench;

  printHeader("Figure 5: synthetic benchmark throughput vs process count",
              "write: OCIO ahead at small P, TCIO ahead at P>=512; "
              "read: TCIO ahead everywhere, gap widening");

  Table w("fig5.write"), r("fig5.read");
  w.header({"procs", "TCIO MB/s", "OCIO MB/s"});
  r.header({"procs", "TCIO MB/s", "OCIO MB/s"});
  for (int P : processLadder()) {
    const Point tcio_pt = measure(workload::Method::kTcio, P);
    const Point ocio_pt = measure(workload::Method::kOcio, P);
    w.row({std::to_string(P), formatDouble(tcio_pt.write_mbps, 1),
           formatDouble(ocio_pt.write_mbps, 1)});
    r.row({std::to_string(P), formatDouble(tcio_pt.read_mbps, 1),
           formatDouble(ocio_pt.read_mbps, 1)});
    std::printf("  P=%d done\n", P);
    std::fflush(stdout);
  }
  w.print(std::cout);
  r.print(std::cout);
  return 0;
}
