// Microbenchmarks (google-benchmark) of the simulated MPI substrate:
// reports *simulated* cost of the primitives the TCIO design arguments rest
// on (lock RTTs, collective scaling, message overheads), plus the real
// wall-time cost of the discrete-event engine itself.
#include <benchmark/benchmark.h>

#include "bench/bench_common.h"
#include "mpi/mpi.h"

namespace tcio::bench {
namespace {

/// Simulated seconds of a barrier at P ranks (virtual time, reported as a
/// counter; wall time measures the engine).
void BM_BarrierVirtualCost(benchmark::State& state) {
  const int P = static_cast<int>(state.range(0));
  SimTime virtual_cost = 0;
  for (auto _ : state) {
    mpi::JobConfig job = paperJob(P);
    SimTime t = 0;
    mpi::runJob(job, [&](mpi::Comm& comm) {
      comm.barrier();
      if (comm.rank() == 0) t = comm.proc().now();
    });
    virtual_cost = t;
  }
  state.counters["virtual_us"] = virtual_cost * 1e6;
}
BENCHMARK(BM_BarrierVirtualCost)->Arg(16)->Arg(64)->Arg(256);

void BM_LockUnlockRoundTrip(benchmark::State& state) {
  SimTime virtual_cost = 0;
  for (auto _ : state) {
    mpi::JobConfig job = paperJob(2);
    SimTime t = 0;
    mpi::runJob(job, [&](mpi::Comm& comm) {
      mpi::Window win = mpi::Window::create(comm, 64);
      if (comm.rank() == 0) {
        const SimTime t0 = comm.proc().now();
        for (int i = 0; i < 100; ++i) {
          win.lock(mpi::LockType::kShared, 1);
          win.unlock(1);
        }
        t = (comm.proc().now() - t0) / 100;
      }
    });
    virtual_cost = t;
  }
  state.counters["virtual_us_per_epoch"] = virtual_cost * 1e6;
}
BENCHMARK(BM_LockUnlockRoundTrip);

void BM_PutIndexedCoalescing(benchmark::State& state) {
  const int blocks = static_cast<int>(state.range(0));
  SimTime virtual_cost = 0;
  for (auto _ : state) {
    mpi::JobConfig job = paperJob(2);
    SimTime t = 0;
    mpi::runJob(job, [&](mpi::Comm& comm) {
      mpi::Window win = mpi::Window::create(comm, 1 << 16);
      if (comm.rank() == 0) {
        std::vector<std::byte> data(1 << 16, std::byte{1});
        std::vector<mpi::Window::PutBlock> pb;
        for (int i = 0; i < blocks; ++i) {
          pb.push_back({i * 128, data.data() + i * 128, 64});
        }
        const SimTime t0 = comm.proc().now();
        win.lock(mpi::LockType::kShared, 1);
        win.putIndexed(1, pb);
        win.unlock(1);
        t = comm.proc().now() - t0;
      }
    });
    virtual_cost = t;
  }
  state.counters["virtual_us"] = virtual_cost * 1e6;
}
BENCHMARK(BM_PutIndexedCoalescing)->Arg(1)->Arg(16)->Arg(256);

/// Raw engine throughput: wall time per simulation event.
void BM_EngineEventThroughput(benchmark::State& state) {
  const int P = static_cast<int>(state.range(0));
  std::int64_t events = 0;
  for (auto _ : state) {
    sim::Engine::Config cfg;
    cfg.num_ranks = P;
    sim::Engine eng(cfg);
    eng.run([](sim::Proc& p) {
      for (int i = 0; i < 2000; ++i) {
        p.advance(1e-6);
        p.atomic([] {});
      }
    });
    events += eng.eventCount();
  }
  state.SetItemsProcessed(events);
}
BENCHMARK(BM_EngineEventThroughput)->Arg(4)->Arg(64)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace tcio::bench

BENCHMARK_MAIN();
