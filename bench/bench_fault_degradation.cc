// Degraded-mode overhead: Fig. 5-style interleaved write phase under
// increasing transient FS fault rates (0 / 0.1% / 1% of FS requests), with
// the retry policy absorbing every fault (bounded exponential backoff in
// virtual time).
//
// Reported per rate: write bandwidth, overhead vs the healthy run, injected
// faults, retry cycles, and giveups — plus the same run under the crash-
// tolerance protocol with the write-ahead journal on and off, isolating
// what the journal device costs. Acceptance: every rate produces a
// byte-identical file (CRC equal to the healthy run's) with zero retry
// giveups — degradation costs time, never correctness — and the journal
// adds < 10% to the healthy (0% fault) makespan.
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "common/crc32.h"
#include "tcio/file.h"

namespace tcio::bench {
namespace {

struct Sample {
  SimTime makespan = 0;
  double bandwidth_mbs = 0;
  std::uint32_t crc = 0;
  std::int64_t transient_faults = 0;
  std::int64_t retries = 0;
  std::int64_t giveups = 0;
};

std::byte pattern(Offset off, int rank) {
  return static_cast<std::byte>((rank * 31 + off * 5) % 251);
}

enum class Protocol {
  kPlain,       // no crash tolerance (the PR-2 behavior)
  kCrashNoWal,  // liveness agreement at collectives, journal off
  kCrashWal,    // liveness agreement + write-ahead journal (full protocol)
};

Sample measure(int P, double rate, std::uint64_t seed, Protocol proto) {
  fs::Filesystem fsys(paperFs());
  mpi::JobConfig job = paperJob(P);

  core::TcioConfig cfg = paperTcio();
  cfg.segments_per_rank = 16;
  if (proto != Protocol::kPlain) {
    cfg.crash.enabled = true;
    cfg.crash.journal = proto == Protocol::kCrashWal;
  }
  if (rate > 0) {
    cfg.faults.enabled = true;
    cfg.faults.seed = seed;
    cfg.faults.fs_transient_write_rate = rate;
    cfg.retry.max_attempts = 6;
  }
  const Bytes per_rank = cfg.segment_size * cfg.segments_per_rank;
  const Bytes block = 4096;

  std::vector<std::int64_t> faults(static_cast<std::size_t>(P));
  std::vector<std::int64_t> retries(static_cast<std::size_t>(P));
  std::vector<std::int64_t> giveups(static_cast<std::size_t>(P));
  const auto res = mpi::runJob(job, [&](mpi::Comm& comm) {
    const int r = comm.rank();
    core::File f(comm, fsys, "degraded.dat", fs::kWrite | fs::kCreate, cfg);
    std::vector<std::byte> buf(static_cast<std::size_t>(block));
    // Fig. 5 pattern: globally interleaved fixed-size blocks.
    for (Bytes i = 0; i < per_rank; i += block) {
      const Offset off = (i / block) * block * comm.size() + r * block;
      for (Bytes j = 0; j < block; ++j) {
        buf[static_cast<std::size_t>(j)] = pattern(off + j, r);
      }
      f.writeAt(off, buf.data(), block);
    }
    f.close();
    const auto sr = static_cast<std::size_t>(r);
    faults[sr] = f.stats().degraded.fs_transient_faults;
    retries[sr] = f.stats().degraded.fs_retries;
    giveups[sr] = f.stats().degraded.fs_retry_giveups;
  });

  Sample s;
  s.makespan = res.makespan;
  const Bytes total = per_rank * P;
  s.bandwidth_mbs = static_cast<double>(total) / s.makespan / 1e6;
  std::vector<std::byte> contents(static_cast<std::size_t>(total));
  fsys.peek("degraded.dat", 0, contents);
  s.crc = crc32(contents);
  for (int r = 0; r < P; ++r) {
    const auto sr = static_cast<std::size_t>(r);
    s.transient_faults += faults[sr];
    s.retries += retries[sr];
    s.giveups += giveups[sr];
  }
  return s;
}

}  // namespace
}  // namespace tcio::bench

int main() {
  using namespace tcio;
  using namespace tcio::bench;

  printHeader("Fault degradation: write bandwidth vs transient FS fault rate",
              "bandwidth degrades gracefully with the fault rate (backoff is "
              "charged to virtual time) while the file stays byte-identical "
              "and no retry budget is exhausted");

  const int P = envInt64("TCIO_BENCH_FAST", 0) != 0 ? 16 : 64;
  const auto seed = static_cast<std::uint64_t>(envInt64("TCIO_FAULT_SEED", 1));

  Table t("fault.degradation");
  t.header({"fault rate", "BW MB/s", "overhead %", "BW wal-off", "BW wal-on",
            "wal ovh %", "faults", "retries", "giveups"});
  bool crc_ok = true;
  bool no_giveups = true;
  double wal_overhead_at_zero = 0;
  SimTime healthy = 0;
  std::uint32_t healthy_crc = 0;
  for (const double rate : {0.0, 0.001, 0.01}) {
    const Sample s = measure(P, rate, seed, Protocol::kPlain);
    const Sample nw = measure(P, rate, seed, Protocol::kCrashNoWal);
    const Sample w = measure(P, rate, seed, Protocol::kCrashWal);
    if (rate == 0.0) {
      healthy = s.makespan;
      healthy_crc = s.crc;
    }
    crc_ok = crc_ok && s.crc == healthy_crc && nw.crc == healthy_crc &&
             w.crc == healthy_crc;
    no_giveups = no_giveups && s.giveups == 0 && w.giveups == 0;
    // Journal overhead: WAL on vs off under the same (crash-tolerant)
    // protocol, so the liveness rounds cancel out of the comparison.
    const double wal_ovh = (w.makespan / nw.makespan - 1.0) * 100.0;
    if (rate == 0.0) wal_overhead_at_zero = wal_ovh;
    t.row({formatDouble(rate * 100.0, 1) + "%",
           formatDouble(s.bandwidth_mbs, 2),
           formatDouble((s.makespan / healthy - 1.0) * 100.0, 3),
           formatDouble(nw.bandwidth_mbs, 2), formatDouble(w.bandwidth_mbs, 2),
           formatDouble(wal_ovh, 3), std::to_string(s.transient_faults),
           std::to_string(s.retries), std::to_string(s.giveups)});
  }
  t.print(std::cout);
  const bool wal_cheap = wal_overhead_at_zero < 10.0;
  const bool pass = crc_ok && no_giveups && wal_cheap;
  std::printf(
      "acceptance (byte-identical at every fault rate, zero giveups, "
      "journal overhead %.3f%% < 10%% at 0%% faults): %s\n",
      wal_overhead_at_zero, pass ? "PASS" : "FAIL");
  return pass ? 0 : 1;
}
