#!/bin/bash
# Correctness-checking CI tier: clang-tidy static analysis over src/ plus the
# full test suite with the runtime checker attached (TCIO_CHECK=1, see
# src/check/ and DESIGN.md §9). The clang-tidy pass is STRICT — findings fail
# the job — when the pinned major version (TCIO_TIDY_VERSION) is what runs:
# check sets drift across majors, so only the pinned toolchain's verdict is
# authoritative. A runner with a different clang-tidy runs it advisory; a
# runner with none skips the pass (the runtime tier below is always the
# gate). TCIO_TIDY_STRICT=0/1 force-overrides the version-derived default.
#
#   TCIO_CHECK_BUILD    build directory (default build-check)
#   TCIO_TIDY_VERSION   pinned clang-tidy major version (default 18)
#   TCIO_TIDY_STRICT    0/1 = force advisory/strict (default: auto by pin)
#   TCIO_TIDY_JOBS      parallel tidy processes (default nproc)
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD=${TCIO_CHECK_BUILD:-build-check}
TIDY_PIN=${TCIO_TIDY_VERSION:-18}
STRICT=${TCIO_TIDY_STRICT:-auto}
JOBS=${TCIO_TIDY_JOBS:-$(nproc)}

# Compile commands for clang-tidy + a checker-default build for the tests.
cmake -B "$BUILD" -S . \
  -DCMAKE_EXPORT_COMPILE_COMMANDS=ON \
  -DTCIO_CHECK=ON >/dev/null
cmake --build "$BUILD" -j "$(nproc)"

# -- Project static analysis (tcio-lint) --------------------------------------
# Unlike clang-tidy below, tcio-lint has no toolchain pin — it is built from
# this tree and its verdict is authoritative on every runner. The src sweep
# must be clean and the fixture corpus must match its annotations exactly.
echo "== tcio-lint (project invariants) =="
cmake --build "$BUILD" -j "$(nproc)" --target tcio-lint >/dev/null
"$BUILD/src/lint/tcio-lint" --root . src
"$BUILD/src/lint/tcio-lint" --root . --expect tests/lint/fixtures

# -- Static analysis ----------------------------------------------------------
if [ ! -f "$BUILD/compile_commands.json" ]; then
  echo "error: $BUILD/compile_commands.json missing — the configure step" \
    "above must run with -DCMAKE_EXPORT_COMPILE_COMMANDS=ON for clang-tidy" \
    "to resolve includes; refusing to continue with a silently skipped pass" >&2
  exit 2
fi

TIDY_BIN=""
if command -v "clang-tidy-$TIDY_PIN" >/dev/null 2>&1; then
  TIDY_BIN="clang-tidy-$TIDY_PIN"
elif command -v clang-tidy >/dev/null 2>&1; then
  TIDY_BIN=clang-tidy
fi

tidy_rc=0
if [ -n "$TIDY_BIN" ]; then
  tidy_major=$("$TIDY_BIN" --version | sed -n 's/.*version \([0-9]*\).*/\1/p' |
    head -n1)
  strict=$STRICT
  if [ "$strict" = "auto" ]; then
    if [ "$tidy_major" = "$TIDY_PIN" ]; then
      strict=1
    else
      strict=0
      echo "clang-tidy major $tidy_major != pinned $TIDY_PIN — advisory run"
    fi
  fi
  echo "== clang-tidy $tidy_major (profile: .clang-tidy, strict=$strict) =="
  mapfile -t sources < <(find src -name '*.cc' | sort)
  printf '%s\n' "${sources[@]}" |
    xargs -P "$JOBS" -I{} "$TIDY_BIN" -quiet -p "$BUILD" {} || tidy_rc=$?
  if [ "$tidy_rc" -ne 0 ]; then
    echo "clang-tidy reported findings (rc=$tidy_rc)"
    [ "$strict" = "1" ] && exit "$tidy_rc"
  fi

  # Tests and benches: always advisory. They use test-local idioms (fixtures,
  # macros, intentional misuse) that the src/ profile over-flags, but the
  # output is still worth a scan in the CI log.
  echo "== clang-tidy over tests/ and bench/ (advisory) =="
  tests_rc=0
  find tests bench -name '*.cc' | sort |
    xargs -P "$JOBS" -I{} "$TIDY_BIN" -quiet -p "$BUILD" {} || tests_rc=$?
  [ "$tests_rc" -ne 0 ] &&
    echo "clang-tidy (tests/bench, advisory) reported findings (rc=$tests_rc)"
else
  echo "clang-tidy not found — skipping the static-analysis pass"
fi

# -- Runtime verification tier ------------------------------------------------
# The whole suite must stay green with every verifier attached: collective
# matching, RMA epochs, segment ownership, and wait-for-graph detection.
echo "== test suite under TCIO_CHECK=1 =="
TCIO_CHECK=1 ctest --test-dir "$BUILD" --output-on-failure -j "$(nproc)"

# The open/write/close churn workload again, but with delegates resolved
# from the environment: ownership verification must hold when the level-2
# map is sharded across delegate ranks (DESIGN.md §10).
echo "== delegate churn under TCIO_CHECK=1, TCIO_DELEGATES=2 =="
TCIO_CHECK=1 TCIO_DELEGATES=2 ctest --test-dir "$BUILD" \
  --output-on-failure -R 'DelegateChurnTest|DelegateQueueTest'

echo "ci_check: OK (tidy rc=$tidy_rc, checker-enabled suite green)"
