#!/bin/bash
# Correctness-checking CI tier: clang-tidy static analysis over src/ plus the
# full test suite with the runtime checker attached (TCIO_CHECK=1, see
# src/check/ and DESIGN.md §9). The runtime tier is the gate; the clang-tidy
# pass is advisory-by-default because toolchain availability varies across
# runners (set TCIO_TIDY_STRICT=1 to make tidy findings fail the job).
#
#   TCIO_CHECK_BUILD    build directory (default build-check)
#   TCIO_TIDY_STRICT    1 = clang-tidy findings fail the job (default 0)
#   TCIO_TIDY_JOBS      parallel tidy processes (default nproc)
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD=${TCIO_CHECK_BUILD:-build-check}
STRICT=${TCIO_TIDY_STRICT:-0}
JOBS=${TCIO_TIDY_JOBS:-$(nproc)}

# Compile commands for clang-tidy + a checker-default build for the tests.
cmake -B "$BUILD" -S . \
  -DCMAKE_EXPORT_COMPILE_COMMANDS=ON \
  -DTCIO_CHECK=ON >/dev/null
cmake --build "$BUILD" -j "$(nproc)"

# -- Static analysis ----------------------------------------------------------
tidy_rc=0
if command -v clang-tidy >/dev/null 2>&1; then
  echo "== clang-tidy (profile: .clang-tidy) =="
  mapfile -t sources < <(find src -name '*.cc' | sort)
  if command -v run-clang-tidy >/dev/null 2>&1; then
    run-clang-tidy -quiet -j "$JOBS" -p "$BUILD" "${sources[@]}" || tidy_rc=$?
  else
    for f in "${sources[@]}"; do
      clang-tidy -quiet -p "$BUILD" "$f" || tidy_rc=$?
    done
  fi
  if [ "$tidy_rc" -ne 0 ]; then
    echo "clang-tidy reported findings (rc=$tidy_rc)"
    [ "$STRICT" = "1" ] && exit "$tidy_rc"
  fi
else
  echo "clang-tidy not found — skipping the static-analysis pass"
fi

# -- Runtime verification tier ------------------------------------------------
# The whole suite must stay green with every verifier attached: collective
# matching, RMA epochs, segment ownership, and wait-for-graph detection.
echo "== test suite under TCIO_CHECK=1 =="
TCIO_CHECK=1 ctest --test-dir "$BUILD" --output-on-failure -j "$(nproc)"

# The open/write/close churn workload again, but with delegates resolved
# from the environment: ownership verification must hold when the level-2
# map is sharded across delegate ranks (DESIGN.md §10).
echo "== delegate churn under TCIO_CHECK=1, TCIO_DELEGATES=2 =="
TCIO_CHECK=1 TCIO_DELEGATES=2 ctest --test-dir "$BUILD" \
  --output-on-failure -R 'DelegateChurnTest|DelegateQueueTest'

echo "ci_check: OK (tidy rc=$tidy_rc, checker-enabled suite green)"
