#!/bin/bash
# Tier-1 test run under AddressSanitizer + UndefinedBehaviorSanitizer.
# Uses a separate build tree so the regular build/ stays fast.
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD=build-asan
cmake -B "$BUILD" -S . -DTCIO_SANITIZE=ON >/dev/null
cmake --build "$BUILD" -j "$(nproc)"
ASAN_OPTIONS=detect_leaks=1 UBSAN_OPTIONS=halt_on_error=1 \
  ctest --test-dir "$BUILD" --output-on-failure -j "$(nproc)" "$@"

# The fault and crash matrices exercise the error-recovery paths (retry
# loops, chunk remapping, collective agreement, two-sided fallback, liveness
# detection, communicator shrink, journal replay) that the healthy tier-1
# run never enters; run them explicitly so a leak or UB in a catch block or
# an unwound (crashed) rank cannot hide behind the happy path. The crash
# seed is pinned so the sanitized run covers a known-interesting schedule.
ASAN_OPTIONS=detect_leaks=1 UBSAN_OPTIONS=halt_on_error=1 \
TCIO_FAULT_SEED=7 \
  ctest --test-dir "$BUILD" --output-on-failure -j "$(nproc)" \
  -R 'TcioFault|FaultPlan|TcioCrash|CrashPlan|Journal|Liveness'
