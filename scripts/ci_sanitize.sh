#!/bin/bash
# Sanitizer CI tier: the full suite under AddressSanitizer + UBSan, the
# fault/crash matrices under the same, then the concurrency-heavy suites
# under ThreadSanitizer. Each family uses its own build tree so the regular
# build/ stays fast and the trees never mix instrumentation.
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD=build-asan
cmake -B "$BUILD" -S . -DTCIO_SANITIZE=ON >/dev/null
cmake --build "$BUILD" -j "$(nproc)"
ASAN_OPTIONS=detect_leaks=1 UBSAN_OPTIONS=halt_on_error=1 \
  ctest --test-dir "$BUILD" --output-on-failure -j "$(nproc)" "$@"

# The fault and crash matrices exercise the error-recovery paths (retry
# loops, chunk remapping, collective agreement, two-sided fallback, liveness
# detection, communicator shrink, journal replay) that the healthy tier-1
# run never enters; run them explicitly so a leak or UB in a catch block or
# an unwound (crashed) rank cannot hide behind the happy path. The crash
# seed is pinned so the sanitized run covers a known-interesting schedule.
ASAN_OPTIONS=detect_leaks=1 UBSAN_OPTIONS=halt_on_error=1 \
TCIO_FAULT_SEED=7 \
  ctest --test-dir "$BUILD" --output-on-failure -j "$(nproc)" \
  -R 'TcioFault|FaultPlan|TcioCrash|CrashPlan|Journal|Liveness'

# -- ThreadSanitizer ----------------------------------------------------------
# The engine runs one OS thread per rank with a strict one-active-rank
# handoff, and the delegate server core multiplexes 10k+ client queues over
# it; TSan on the delegate and chaos suites checks that discipline where it
# is busiest. Currently clean with no suppressions — if the engine handoff
# ever needs one, drop it in scripts/tsan.supp and it is picked up here.
TSAN_BUILD=build-tsan
cmake -B "$TSAN_BUILD" -S . -DTCIO_SANITIZE=thread >/dev/null
cmake --build "$TSAN_BUILD" -j "$(nproc)" --target test_delegate test_chaos
TSAN_OPTIONS="halt_on_error=1"
if [ -f scripts/tsan.supp ]; then
  TSAN_OPTIONS="$TSAN_OPTIONS suppressions=$(pwd)/scripts/tsan.supp"
fi
echo "== delegate + chaos suites under TSan =="
TSAN_OPTIONS="$TSAN_OPTIONS" \
  ctest --test-dir "$TSAN_BUILD" --output-on-failure -j "$(nproc)" \
  -R 'Delegate|Chaos'
