#!/bin/bash
# Fault-schedule soak: runs the cross-layer fault matrix AND the fail-stop
# crash matrix across many fault seeds. Every schedule must converge (same
# outcome on every rank, byte-identical completions, survivors complete
# around crashed peers) — a hang on any seed is a collective-agreement or
# liveness-protocol bug, so each ctest invocation runs under a wall-clock
# timeout and a timeout is reported as HANG, not lumped in with assertion
# failures.
#
# Every seed runs with the runtime correctness checker attached
# (TCIO_CHECK=1): crash seeds must not only converge, they must do so without
# tripping collective-matching, RMA-epoch, or segment-ownership verification.
#
# A second leg per seed soaks the I/O delegate subsystem (src/delegate/,
# DESIGN.md §10) with TCIO_DELEGATES>0 in the environment: delegate crash
# adoption, in-delegate fault retry, and the open/write/close churn must all
# converge under the checker as well.
#
# A third leg per seed soaks the silent-corruption matrix (DESIGN.md §11) —
# seeded bit-flips at the staging-frame / window / stored-block / journal-body
# sites — in an ASan+UBSan build: the detect-and-repair paths shuffle frames,
# replay journals, and unwind through typed IntegrityErrors, exactly where a
# lifetime bug would hide from the healthy-path suite.
#
# A fourth leg per seed runs the composed chaos harness (DESIGN.md §8.2):
# TCIO_CHAOS_SEEDS drawn ChaosPlans — crash cascades (incl. mid-recovery),
# transient EIO, stragglers, corruption, node aggregation, composed — each
# checked against the shadow-run invariant oracle. The seed window advances
# with the soak seed so the whole sweep covers SEEDS×TCIO_CHAOS_SEEDS distinct
# plans. A red plan is greedily minimized and the one-line reproducer is in
# the log. One extra ASan+UBSan chaos pass runs after the loop, because the
# composition is exactly where cross-feature lifetime bugs hide (it caught
# the node-agg × crash-shrink teardown use-after-free).
#
#   TCIO_FAULT_SEEDS    number of seeds to sweep (default 20)
#   TCIO_SOAK_TIMEOUT   per-seed wall-clock limit in seconds (default 300)
#   TCIO_SOAK_DELEGATES delegate count for the delegate leg (default 2)
#   TCIO_SOAK_CHAOS     chaos plans per soak seed (default 10)
set -euo pipefail
cd "$(dirname "$0")/.."

SEEDS=${TCIO_FAULT_SEEDS:-20}
LIMIT=${TCIO_SOAK_TIMEOUT:-300}
BUILD=${TCIO_SOAK_BUILD:-build}
SAN_BUILD=${TCIO_SOAK_SAN_BUILD:-build-asan}
DELEGATES=${TCIO_SOAK_DELEGATES:-2}
CHAOS=${TCIO_SOAK_CHAOS:-10}

cmake -B "$BUILD" -S . >/dev/null
cmake --build "$BUILD" -j "$(nproc)" --target test_tcio test_delegate test_chaos
cmake -B "$SAN_BUILD" -S . -DTCIO_SANITIZE=ON >/dev/null
cmake --build "$SAN_BUILD" -j "$(nproc)" --target test_tcio test_chaos

fails=0
hangs=0
run_leg() {  # run_leg <name> <seed> <log> <build dir> <ctest -R pattern> [env...]
  local name=$1 seed=$2 log=$3 tree=$4 pattern=$5 rc=0
  shift 5
  env "$@" timeout "$LIMIT" \
    ctest --test-dir "$tree" --output-on-failure -R "$pattern" \
    >"$log" 2>&1 || rc=$?
  if [ "$rc" -eq 0 ]; then
    echo "seed $seed ($name): PASS"
  elif [ "$rc" -eq 124 ]; then
    hangs=$((hangs + 1))
    echo "seed $seed ($name): HANG (exceeded ${LIMIT}s — suspected lost collective agreement)"
  else
    fails=$((fails + 1))
    echo "seed $seed ($name): FAIL (see $log)"
  fi
}

for ((seed = 1; seed <= SEEDS; seed++)); do
  run_leg core "$seed" "/tmp/fault_soak_$seed.log" "$BUILD" \
    'TcioFaultMatrix|TcioCrashMatrix|TcioCrashRecovery' \
    TCIO_FAULT_SEED="$seed" TCIO_CHECK=1
  run_leg delegate "$seed" "/tmp/fault_soak_delegate_$seed.log" "$BUILD" \
    'DelegateCrashTest|DelegateFaultTest|DelegateChurnTest' \
    TCIO_FAULT_SEED="$seed" TCIO_CHECK=1 TCIO_DELEGATES="$DELEGATES"
  run_leg corruption "$seed" "/tmp/fault_soak_corruption_$seed.log" \
    "$SAN_BUILD" \
    'TcioIntegrity|TcioStoredBlock|TcioJournalBody|DelegateIntegrity' \
    TCIO_FAULT_SEED="$seed" TCIO_CHECK=1 TCIO_INTEGRITY=1 \
    ASAN_OPTIONS=detect_leaks=1 UBSAN_OPTIONS=halt_on_error=1
  run_leg chaos "$seed" "/tmp/fault_soak_chaos_$seed.log" "$BUILD" \
    'ChaosSoakTest' \
    TCIO_CHAOS_SEEDS="$CHAOS" TCIO_CHAOS_SEED_BASE="$(( (seed - 1) * CHAOS + 1 ))" \
    TCIO_CHAOS_INTEGRITY="$((seed % 2))"
done

# One sanitizer pass over the full chaos suite (plan round-trip, oracle,
# minimizer, soak) — composed fault schedules are where teardown-ordering
# and lifetime bugs live.
run_leg chaos-asan san "/tmp/fault_soak_chaos_asan.log" "$SAN_BUILD" \
  'Chaos' \
  TCIO_CHAOS_SEEDS="$CHAOS" TCIO_CHAOS_INTEGRITY=1 \
  ASAN_OPTIONS=detect_leaks=1 UBSAN_OPTIONS=halt_on_error=1

echo "fault soak: $SEEDS seeds, $fails failures, $hangs hangs"
[ "$fails" -eq 0 ] && [ "$hangs" -eq 0 ]
