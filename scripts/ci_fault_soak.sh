#!/bin/bash
# Fault-schedule soak: runs the cross-layer fault matrix AND the fail-stop
# crash matrix across many fault seeds. Every schedule must converge (same
# outcome on every rank, byte-identical completions, survivors complete
# around crashed peers) — a hang on any seed is a collective-agreement or
# liveness-protocol bug, so each ctest invocation runs under a wall-clock
# timeout and a timeout is reported as HANG, not lumped in with assertion
# failures.
#
# Every seed runs with the runtime correctness checker attached
# (TCIO_CHECK=1): crash seeds must not only converge, they must do so without
# tripping collective-matching, RMA-epoch, or segment-ownership verification.
#
#   TCIO_FAULT_SEEDS    number of seeds to sweep (default 20)
#   TCIO_SOAK_TIMEOUT   per-seed wall-clock limit in seconds (default 300)
set -euo pipefail
cd "$(dirname "$0")/.."

SEEDS=${TCIO_FAULT_SEEDS:-20}
LIMIT=${TCIO_SOAK_TIMEOUT:-300}
BUILD=${TCIO_SOAK_BUILD:-build}

cmake -B "$BUILD" -S . >/dev/null
cmake --build "$BUILD" -j "$(nproc)" --target test_tcio

fails=0
hangs=0
for ((seed = 1; seed <= SEEDS; seed++)); do
  rc=0
  TCIO_FAULT_SEED=$seed TCIO_CHECK=1 timeout "$LIMIT" \
    ctest --test-dir "$BUILD" --output-on-failure \
    -R 'TcioFaultMatrix|TcioCrashMatrix|TcioCrashRecovery' \
    >"/tmp/fault_soak_$seed.log" 2>&1 || rc=$?
  if [ "$rc" -eq 0 ]; then
    echo "seed $seed: PASS"
  elif [ "$rc" -eq 124 ]; then
    hangs=$((hangs + 1))
    echo "seed $seed: HANG (exceeded ${LIMIT}s — suspected lost collective agreement)"
  else
    fails=$((fails + 1))
    echo "seed $seed: FAIL (see /tmp/fault_soak_$seed.log)"
  fi
done

echo "fault soak: $SEEDS seeds, $fails failures, $hangs hangs"
[ "$fails" -eq 0 ] && [ "$hangs" -eq 0 ]
