#include "common/error.h"

#include <sstream>

namespace tcio::detail {

void failCheck(const char* expr, const char* file, int line,
               const std::string& msg) {
  std::ostringstream os;
  os << "TCIO_CHECK failed: (" << expr << ") at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw Error(os.str());
}

}  // namespace tcio::detail
