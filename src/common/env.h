// Environment-variable knobs for the benchmark harness.
#pragma once

#include <cstdint>
#include <string>

namespace tcio {

/// Reads an integer environment variable; returns `fallback` when unset or
/// unparsable.
std::int64_t envInt64(const char* name, std::int64_t fallback);

/// Reads a double environment variable; returns `fallback` when unset.
double envDouble(const char* name, double fallback);

/// Reads a string environment variable; returns `fallback` when unset.
std::string envString(const char* name, const std::string& fallback);

}  // namespace tcio
