// Error handling for TCIO.
//
// Policy (follows the C++ Core Guidelines split between programming errors
// and recoverable conditions):
//   * Precondition violations and simulator invariant breaches throw
//     `tcio::Error` (or a subclass) — they indicate a bug in the caller or in
//     the simulator and are not meant to be caught in normal control flow.
//   * Recoverable conditions that real I/O stacks report through error codes
//     (out-of-memory-budget, file-not-found, ...) are surfaced as typed
//     subclasses so tests can assert on them precisely.
#pragma once

#include <stdexcept>
#include <string>

namespace tcio {

/// Root of the TCIO error hierarchy.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// A simulated rank exceeded its per-process memory budget (models the
/// paper's Fig. 6/7 failure of OCIO at the 48 GB configuration).
class OutOfMemoryBudget : public Error {
 public:
  OutOfMemoryBudget(const std::string& what, std::int64_t requested,
                    std::int64_t available)
      : Error(what), requested_bytes(requested), available_bytes(available) {}

  std::int64_t requested_bytes;
  std::int64_t available_bytes;
};

/// File-system level failure (missing file, bad mode, ...).
class FsError : public Error {
 public:
  using Error::Error;
};

/// Open of a nonexistent file without kCreate (ENOENT). Carries the path so
/// callers can report which file was missing without parsing the message.
class FileNotFound : public FsError {
 public:
  explicit FileNotFound(const std::string& p)
      : FsError("open: no such file: " + p), path(p) {}

  /// Tag for rebuilding from an already-formatted message (collective error
  /// agreement transports only the message, not the path).
  struct Formatted {};
  FileNotFound(Formatted, const std::string& what) : FsError(what) {}

  std::string path;
};

/// EIO-like transient OST failure (media hiccup, dropped RPC). Retrying the
/// request is expected to succeed; FsClient's RetryPolicy absorbs these.
class TransientFsError : public FsError {
 public:
  using FsError::FsError;
};

/// A transient fault survived every configured retry attempt. Derives from
/// TransientFsError so callers that treat "still transient after retry" the
/// same as "transient without retry" keep working, while carrying the
/// attempt count for precise assertions.
class RetryExhaustedError : public TransientFsError {
 public:
  RetryExhaustedError(const std::string& what, int attempts_made)
      : TransientFsError(what), attempts(attempts_made) {}

  int attempts;
};

/// ENOSPC-like failure: the OST rejected a write for lack of space. Permanent
/// for the purposes of retry — surfacing it to the application is the only
/// correct move.
class NoSpaceError : public FsError {
 public:
  using FsError::FsError;
};

/// An OST failed permanently (dead server / unreachable failover pair).
/// Requests routed to it keep failing until the affected chunks are remapped
/// to surviving OSTs (degraded mode).
class OstFailedError : public FsError {
 public:
  OstFailedError(const std::string& what, int failed_ost)
      : FsError(what), ost(failed_ost) {}

  int ost;
};

/// Silent data corruption that survived every repair path: a checksum-domain
/// crossing found bytes that disagree with their recorded digest and neither
/// the WAL, the source staging frame, nor a surviving OST replica could
/// reconstruct them. Surfacing it (via collective agreement) is the only
/// correct move — propagating the bytes would be silent data loss.
class IntegrityError : public Error {
 public:
  using Error::Error;
};

/// An I/O delegate's bounded request queue is at its admission watermark (or
/// its staging-frame pool is exhausted): the request was rejected before any
/// payload moved. Transient by construction — the client backs off in
/// simulated time and resubmits; applications never see it through the
/// transparent API. Carries the rejecting delegate for queue diagnostics.
class DelegateBusyError : public Error {
 public:
  DelegateBusyError(const std::string& what, int busy_delegate)
      : Error(what), delegate(busy_delegate) {}

  int delegate;
};

/// Misuse of the simulated MPI layer (rank out of range, uncommitted
/// datatype, window access outside bounds, ...).
class MpiError : public Error {
 public:
  using Error::Error;
};

/// A fail-stop rank crash. Thrown inside the crashing rank to unwind it out
/// of the user program (the rank stops participating entirely), and on
/// surviving ranks when liveness agreement declares a peer dead but local
/// work cannot continue without it. Carries the crashed rank.
class RankCrashedError : public Error {
 public:
  RankCrashedError(const std::string& what, int crashed_rank)
      : Error(what), rank(crashed_rank) {}

  int rank;
};

/// The discrete-event engine detected that every rank is blocked — the
/// simulated program deadlocked. The message lists each rank's wait reason.
class DeadlockError : public Error {
 public:
  using Error::Error;
};

namespace detail {
[[noreturn]] void failCheck(const char* expr, const char* file, int line,
                            const std::string& msg);
}  // namespace detail

/// Invariant check that is active in all build types (simulation correctness
/// matters more than the nanoseconds a disabled assert would save).
#define TCIO_CHECK(expr)                                                \
  do {                                                                  \
    if (!(expr)) {                                                      \
      ::tcio::detail::failCheck(#expr, __FILE__, __LINE__, {});         \
    }                                                                   \
  } while (false)

/// Like TCIO_CHECK but with a contextual message.
#define TCIO_CHECK_MSG(expr, msg)                                       \
  do {                                                                  \
    if (!(expr)) {                                                      \
      ::tcio::detail::failCheck(#expr, __FILE__, __LINE__, (msg));      \
    }                                                                   \
  } while (false)

}  // namespace tcio
