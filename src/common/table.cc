#include "common/table.h"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace tcio {

void Table::header(std::vector<std::string> cells) {
  header_ = std::move(cells);
}

void Table::row(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

void Table::rowf(const std::vector<double>& values, int precision) {
  std::vector<std::string> cells;
  cells.reserve(values.size());
  for (double v : values) cells.push_back(formatDouble(v, precision));
  rows_.push_back(std::move(cells));
}

void Table::print(std::ostream& os) const {
  // Column widths across header and all rows.
  std::vector<std::size_t> widths;
  auto absorb = [&widths](const std::vector<std::string>& cells) {
    if (cells.size() > widths.size()) widths.resize(cells.size(), 0);
    for (std::size_t i = 0; i < cells.size(); ++i) {
      widths[i] = std::max(widths[i], cells[i].size());
    }
  };
  absorb(header_);
  for (const auto& r : rows_) absorb(r);

  os << "== " << title_ << " ==\n";
  auto emit = [&](const std::vector<std::string>& cells) {
    os << title_ << " |";
    for (std::size_t i = 0; i < widths.size(); ++i) {
      const std::string& cell = i < cells.size() ? cells[i] : std::string{};
      os << ' ' << std::left << std::setw(static_cast<int>(widths[i])) << cell
         << " |";
    }
    os << '\n';
  };
  if (!header_.empty()) emit(header_);
  for (const auto& r : rows_) emit(r);
  os.flush();
}

std::string formatBytes(std::int64_t bytes) {
  const char* units[] = {"B", "KiB", "MiB", "GiB", "TiB"};
  double v = static_cast<double>(bytes);
  int u = 0;
  while (v >= 1024.0 && u < 4) {
    v /= 1024.0;
    ++u;
  }
  std::ostringstream os;
  os << std::fixed << std::setprecision(v < 10 && u > 0 ? 1 : 0) << v << ' '
     << units[u];
  return os.str();
}

std::string formatDouble(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

}  // namespace tcio
