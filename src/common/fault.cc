#include "common/fault.h"

#include "common/error.h"

namespace tcio {

FaultPlan::FaultPlan(const FaultConfig& cfg, std::uint64_t salt)
    : cfg_(cfg), rng_(cfg.seed ^ salt) {
  TCIO_CHECK(cfg_.fs_transient_write_rate >= 0 &&
             cfg_.fs_transient_write_rate <= 1);
  TCIO_CHECK(cfg_.fs_transient_read_rate >= 0 &&
             cfg_.fs_transient_read_rate <= 1);
  TCIO_CHECK(cfg_.fs_no_space_rate >= 0 && cfg_.fs_no_space_rate <= 1);
  TCIO_CHECK(cfg_.rma_drop_rate >= 0 && cfg_.rma_drop_rate <= 1);
  TCIO_CHECK(cfg_.rma_drop_delay >= 0);
}

FaultPlan::FsOutcome FaultPlan::nextFsRequest(FsVerb verb, int ost,
                                              SimTime t) {
  ++fs_requests_;
  // Permanent failure dominates: a dead OST serves nothing, rates included.
  if (ostFailed(ost)) return FsOutcome::kOstFailed;
  if (t < cfg_.active_after) return FsOutcome::kNone;
  if (verb == FsVerb::kWrite && cfg_.fs_no_space_rate > 0 &&
      rng_.uniform() < cfg_.fs_no_space_rate) {
    ++no_space_;
    return FsOutcome::kNoSpace;
  }
  const double rate = verb == FsVerb::kWrite ? cfg_.fs_transient_write_rate
                                             : cfg_.fs_transient_read_rate;
  if (rate > 0 && fs_requests_ > cfg_.fs_transient_after_requests &&
      rng_.uniform() < rate) {
    ++transients_;
    return FsOutcome::kTransient;
  }
  return FsOutcome::kNone;
}

SimTime FaultPlan::nextRmaPayload() {
  if (cfg_.rma_drop_rate <= 0) return 0;
  if (rng_.uniform() >= cfg_.rma_drop_rate) return 0;
  ++rma_drops_;
  return cfg_.rma_drop_delay;
}

}  // namespace tcio
