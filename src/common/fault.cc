#include "common/fault.h"

#include "common/error.h"

namespace tcio {

FaultPlan::FaultPlan(const FaultConfig& cfg, std::uint64_t salt)
    : cfg_(cfg), rng_(cfg.seed ^ salt), corruption_(cfg, /*rank=*/-1) {
  TCIO_CHECK(cfg_.fs_transient_write_rate >= 0 &&
             cfg_.fs_transient_write_rate <= 1);
  TCIO_CHECK(cfg_.fs_transient_read_rate >= 0 &&
             cfg_.fs_transient_read_rate <= 1);
  TCIO_CHECK(cfg_.fs_no_space_rate >= 0 && cfg_.fs_no_space_rate <= 1);
  TCIO_CHECK(cfg_.rma_drop_rate >= 0 && cfg_.rma_drop_rate <= 1);
  TCIO_CHECK(cfg_.rma_drop_delay >= 0);
  TCIO_CHECK(cfg_.mds_open_fail_rate >= 0 && cfg_.mds_open_fail_rate <= 1);
  TCIO_CHECK(cfg_.mds_close_fail_rate >= 0 && cfg_.mds_close_fail_rate <= 1);
}

FaultPlan::FsOutcome FaultPlan::nextFsRequest(FsVerb verb, int ost,
                                              SimTime t) {
  ++fs_requests_;
  // Permanent failure dominates: a dead OST serves nothing, rates included.
  if (ostFailed(ost)) return FsOutcome::kOstFailed;
  if (t < cfg_.active_after) return FsOutcome::kNone;
  if (verb == FsVerb::kWrite && cfg_.fs_no_space_rate > 0 &&
      rng_.uniform() < cfg_.fs_no_space_rate) {
    ++no_space_;
    return FsOutcome::kNoSpace;
  }
  const double rate = verb == FsVerb::kWrite ? cfg_.fs_transient_write_rate
                                             : cfg_.fs_transient_read_rate;
  if (rate > 0 && fs_requests_ > cfg_.fs_transient_after_requests &&
      rng_.uniform() < rate) {
    ++transients_;
    return FsOutcome::kTransient;
  }
  return FsOutcome::kNone;
}

SimTime FaultPlan::nextRmaPayload() {
  if (cfg_.rma_drop_rate <= 0) return 0;
  if (rng_.uniform() >= cfg_.rma_drop_rate) return 0;
  ++rma_drops_;
  return cfg_.rma_drop_delay;
}

bool FaultPlan::nextMdsOp(MdsVerb verb) {
  const double rate = verb == MdsVerb::kOpen ? cfg_.mds_open_fail_rate
                                             : cfg_.mds_close_fail_rate;
  if (rate <= 0) return false;
  if (rng_.uniform() >= rate) return false;
  ++mds_faults_;
  return true;
}

CorruptionPlan::CorruptionPlan(const FaultConfig& cfg, Rank rank)
    // Dedicated stream: byte/bit draws must not perturb the shared fault
    // RNG, or arming a corruption would change a clean run's fault schedule.
    : rng_(cfg.seed ^
           (kCorruptSalt + static_cast<std::uint64_t>(rank + 1))) {
  for (const CorruptionSchedule& s : cfg.corruptions) {
    if (s.rank != rank) continue;
    TCIO_CHECK_MSG(s.after >= 0,
                   "corruption schedule occurrence must be >= 0");
    arms_.push_back({s.site, s.after});
  }
}

bool CorruptionPlan::fires(CorruptSite site) {
  // Advance every unfired arm for this site so each one sees the same
  // occurrence counter — an early return here would stall later arms and
  // make multi-arm schedules fire at call-order-dependent occurrences.
  bool hit = false;
  for (Arm& a : arms_) {
    if (a.site != site || a.fired) continue;
    if (a.seen++ == a.after) {
      a.fired = true;
      hit = true;
    }
  }
  return hit;
}

std::int64_t CorruptionPlan::flipBit(std::span<std::byte> buf) {
  if (buf.empty()) return -1;
  const auto off = static_cast<std::int64_t>(
                       rng_.uniform() * static_cast<double>(buf.size())) %
                   static_cast<std::int64_t>(buf.size());
  const int bit = static_cast<int>(rng_.uniform() * 8.0) % 8;
  buf[static_cast<std::size_t>(off)] ^= std::byte{1} << bit;
  return off;
}

CrashPlan::CrashPlan(const FaultConfig& cfg, Rank rank)
    // Salt by rank so torn-byte draws differ across ranks but reproduce
    // exactly for a given (seed, rank).
    : rng_(cfg.seed ^ (0x6372617368ULL + static_cast<std::uint64_t>(rank))) {
  for (const CrashSchedule& s : cfg.crashes) {
    if (s.rank != rank) continue;
    TCIO_CHECK_MSG(s.after >= 0, "crash schedule occurrence must be >= 0");
    arms_.push_back({s.point, s.after});
  }
  armed_ = !arms_.empty();
}

bool CrashPlan::fires(CrashPoint point) {
  if (!armed_ || crashed_) return false;
  for (Arm& a : arms_) {
    if (a.point != point) continue;
    if (a.seen++ == a.after) {
      crashed_ = true;
      return true;
    }
  }
  return false;
}

std::int64_t CrashPlan::tornBytes(std::int64_t len) {
  if (len <= 0) return 0;
  return static_cast<std::int64_t>(rng_.uniform() * static_cast<double>(len)) %
         len;
}

}  // namespace tcio
