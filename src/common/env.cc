#include "common/env.h"

#include <cstdlib>

namespace tcio {

std::int64_t envInt64(const char* name, std::int64_t fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return fallback;
  char* end = nullptr;
  const long long v = std::strtoll(raw, &end, 10);
  return (end != nullptr && *end == '\0') ? v : fallback;
}

double envDouble(const char* name, double fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return fallback;
  char* end = nullptr;
  const double v = std::strtod(raw, &end);
  return (end != nullptr && *end == '\0') ? v : fallback;
}

std::string envString(const char* name, const std::string& fallback) {
  const char* raw = std::getenv(name);
  return raw != nullptr ? std::string(raw) : fallback;
}

}  // namespace tcio
