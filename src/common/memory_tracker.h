// Per-rank memory budget accounting.
//
// Lonestar nodes have 24 GB and 12 cores, i.e. ~2 GB per MPI process. The
// paper's Fig. 6/7 show OCIO failing at the 48 GB configuration because each
// process must hold its application data *plus* a combine buffer *plus* the
// two-phase aggregator buffer. We reproduce that as deterministic budget
// accounting: every simulated I/O-stack allocation is charged here, and
// exceeding the budget throws `OutOfMemoryBudget` (the simulated analogue of
// the job dying on the machine).
#pragma once

#include <algorithm>
#include <string>

#include "common/error.h"
#include "common/types.h"

namespace tcio {

/// Tracks one rank's simulated heap use against a budget.
/// Not thread-safe by design: each rank owns exactly one tracker and only
/// touches it from its own rank thread.
class MemoryTracker {
 public:
  /// `budget` <= 0 means "unlimited" (used by correctness tests).
  explicit MemoryTracker(Bytes budget = 0) : budget_(budget) {}

  /// Charge an allocation of `n` bytes attributed to `what`.
  /// Throws OutOfMemoryBudget when the budget would be exceeded.
  void allocate(Bytes n, const std::string& what) {
    TCIO_CHECK(n >= 0);
    if (budget_ > 0 && used_ + n > budget_) {
      throw OutOfMemoryBudget(
          "memory budget exceeded allocating " + std::to_string(n) +
              " bytes for " + what + " (used " + std::to_string(used_) +
              " of " + std::to_string(budget_) + ")",
          n, budget_ - used_);
    }
    used_ += n;
    peak_ = std::max(peak_, used_);
  }

  /// Release `n` bytes previously charged with allocate().
  void release(Bytes n) {
    TCIO_CHECK(n >= 0 && n <= used_);
    used_ -= n;
  }

  Bytes used() const { return used_; }
  Bytes peak() const { return peak_; }
  Bytes budget() const { return budget_; }

  void setBudget(Bytes budget) { budget_ = budget; }
  void resetPeak() { peak_ = used_; }

 private:
  Bytes budget_;
  Bytes used_ = 0;
  Bytes peak_ = 0;
};

/// RAII charge against a tracker; releases on destruction.
class ScopedAllocation {
 public:
  ScopedAllocation(MemoryTracker& tracker, Bytes n, const std::string& what)
      : tracker_(&tracker), bytes_(n) {
    tracker_->allocate(n, what);
  }
  ~ScopedAllocation() {
    if (tracker_ != nullptr) tracker_->release(bytes_);
  }
  ScopedAllocation(ScopedAllocation&& other) noexcept
      : tracker_(other.tracker_), bytes_(other.bytes_) {
    other.tracker_ = nullptr;
  }
  ScopedAllocation& operator=(ScopedAllocation&&) = delete;
  ScopedAllocation(const ScopedAllocation&) = delete;
  ScopedAllocation& operator=(const ScopedAllocation&) = delete;

 private:
  MemoryTracker* tracker_;
  Bytes bytes_;
};

}  // namespace tcio
