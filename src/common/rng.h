// Deterministic random number generation.
//
// The standard library's distributions are not guaranteed to produce the same
// sequence across implementations, so every stochastic piece of the simulator
// (workload generation, ART segment lengths, failure injection) uses this
// self-contained xoshiro256** generator plus hand-rolled distributions.
// Identical seeds therefore give bit-identical simulations on every platform,
// which the determinism property tests rely on.
#pragma once

#include <cmath>
#include <cstdint>

namespace tcio {

/// xoshiro256** 1.0 by Blackman & Vigna (public domain reference algorithm),
/// seeded via SplitMix64 as the authors recommend.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) {
    std::uint64_t x = seed;
    for (auto& word : state_) {
      // SplitMix64 step.
      x += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      word = z ^ (z >> 31);
    }
  }

  /// Next raw 64-bit value.
  std::uint64_t next() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform integer in [lo, hi] (inclusive); requires lo <= hi.
  std::int64_t uniformInt(std::int64_t lo, std::int64_t hi) {
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(next() % span);
  }

  /// Normal deviate via Box–Muller (deterministic; one value per call, the
  /// spare is cached).
  double normal(double mu, double sigma) {
    if (have_spare_) {
      have_spare_ = false;
      return mu + sigma * spare_;
    }
    double u1 = uniform();
    double u2 = uniform();
    // Guard against log(0).
    if (u1 < 1e-300) u1 = 1e-300;
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * 3.14159265358979323846 * u2;
    spare_ = r * std::sin(theta);
    have_spare_ = true;
    return mu + sigma * r * std::cos(theta);
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4] = {};
  bool have_spare_ = false;
  double spare_ = 0.0;
};

}  // namespace tcio
