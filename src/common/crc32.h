// CRC-32 (IEEE 802.3 polynomial, reflected) for checkpoint integrity.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <span>

namespace tcio {

namespace detail {
constexpr std::array<std::uint32_t, 256> makeCrcTable() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}
inline constexpr std::array<std::uint32_t, 256> kCrcTable = makeCrcTable();
}  // namespace detail

/// Incremental CRC-32: pass the previous return value as `seed` to chain.
constexpr std::uint32_t crc32(std::span<const std::byte> data,
                              std::uint32_t seed = 0) {
  std::uint32_t c = seed ^ 0xFFFFFFFFu;
  for (const std::byte b : data) {
    c = detail::kCrcTable[(c ^ static_cast<std::uint8_t>(b)) & 0xFFu] ^
        (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

}  // namespace tcio
