// Core value types shared by every TCIO module.
//
// All simulated quantities use explicit, self-documenting aliases instead of
// bare integers so that interfaces state whether they deal in file offsets,
// byte counts, ranks, or virtual seconds.
#pragma once

#include <cstddef>
#include <cstdint>

namespace tcio {

/// Absolute position inside a (simulated) file, in bytes.
using Offset = std::int64_t;

/// A byte count. Signed so that arithmetic on offsets stays in one domain.
using Bytes = std::int64_t;

/// MPI-style process identifier within a communicator, in [0, size).
using Rank = int;

/// Virtual simulation time in seconds. The discrete-event engine is the only
/// authority over values of this type.
using SimTime = double;

/// Identifier of a level-2 buffer segment (global, file-order index).
using SegmentId = std::int64_t;

// -- Byte-size literals ------------------------------------------------------

constexpr Bytes kKiB = 1024;
constexpr Bytes kMiB = 1024 * kKiB;
constexpr Bytes kGiB = 1024 * kMiB;

constexpr Bytes operator""_KiB(unsigned long long v) {
  return static_cast<Bytes>(v) * kKiB;
}
constexpr Bytes operator""_MiB(unsigned long long v) {
  return static_cast<Bytes>(v) * kMiB;
}
constexpr Bytes operator""_GiB(unsigned long long v) {
  return static_cast<Bytes>(v) * kGiB;
}

// -- Time literals ------------------------------------------------------------

constexpr SimTime operator""_us(long double v) {
  return static_cast<SimTime>(v) * 1e-6;
}
constexpr SimTime operator""_us(unsigned long long v) {
  return static_cast<SimTime>(v) * 1e-6;
}
constexpr SimTime operator""_ms(long double v) {
  return static_cast<SimTime>(v) * 1e-3;
}
constexpr SimTime operator""_ms(unsigned long long v) {
  return static_cast<SimTime>(v) * 1e-3;
}

/// A half-open byte range [begin, end) in a file. The workhorse of the access
/// pattern machinery: datatype flattening, file domains, lock extents, and
/// level-1 buffer bookkeeping all speak in `Extent`s.
struct Extent {
  Offset begin = 0;
  Offset end = 0;

  constexpr Bytes size() const { return end - begin; }
  constexpr bool empty() const { return end <= begin; }
  constexpr bool contains(Offset o) const { return o >= begin && o < end; }
  constexpr bool overlaps(const Extent& other) const {
    return begin < other.end && other.begin < end;
  }
  friend constexpr bool operator==(const Extent&, const Extent&) = default;
};

/// Intersection of two extents; empty extent when disjoint.
constexpr Extent intersect(const Extent& a, const Extent& b) {
  Extent r{a.begin > b.begin ? a.begin : b.begin,
           a.end < b.end ? a.end : b.end};
  if (r.end < r.begin) r.end = r.begin;
  return r;
}

}  // namespace tcio
