// Minimal aligned-table printer for benchmark output.
//
// The figure-reproduction benches print the same series the paper plots; this
// keeps their output readable and machine-greppable (every data row starts
// with the table name so EXPERIMENTS.md can quote it).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace tcio {

/// Collects rows of strings and prints them with aligned columns.
class Table {
 public:
  explicit Table(std::string title) : title_(std::move(title)) {}

  /// Sets the header row (printed once, above a separator).
  void header(std::vector<std::string> cells);

  /// Appends a data row. Missing cells print empty.
  void row(std::vector<std::string> cells);

  /// Convenience: formats each double with the given precision.
  void rowf(const std::vector<double>& values, int precision = 2);

  /// Renders the table to `os`.
  void print(std::ostream& os) const;

  const std::string& title() const { return title_; }

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a byte count as a human-readable string ("768 MiB", "48 GiB").
std::string formatBytes(std::int64_t bytes);

/// Formats a double with fixed precision.
std::string formatDouble(double v, int precision = 2);

}  // namespace tcio
