// Deterministic cross-layer fault injection.
//
// A `FaultPlan` is the single source of truth for every injected failure in a
// simulated job: transient and permanent file-system faults, straggling OSTs,
// and dropped RMA payloads. The plan draws from its own seeded xoshiro stream
// and is only ever consulted inside Proc::atomic() sections, so all fault
// decisions happen in global virtual-time order — two runs with the same
// `FaultConfig` inject byte-identical fault schedules, which the fault-matrix
// determinism tests rely on.
//
// The plan *schedules* faults; it never throws. Layers consult it and raise
// the matching typed error (`TransientFsError`, `NoSpaceError`,
// `OstFailedError` — see common/error.h); recovery (client retry, collective
// error agreement, degraded-mode remapping) lives above, in src/fs and
// src/tcio.
#pragma once

#include <cstdint>

#include "common/rng.h"
#include "common/types.h"

namespace tcio {

/// What faults to inject, and when. All rates are per-request probabilities
/// in [0, 1]; counters/times gate when a fault class becomes active.
struct FaultConfig {
  /// Master switch consulted by the layers that auto-install plans
  /// (core::File installs `TcioConfig::faults` into the shared Filesystem
  /// only when enabled; net::Network likewise).
  bool enabled = false;
  /// Seed of the plan's RNG stream. Layers holding separate plans (the
  /// Filesystem and the Network) salt it so their streams are independent.
  std::uint64_t seed = 1;

  // -- File-system layer ------------------------------------------------------
  /// Probability that one OST write/read request fails with an EIO-like
  /// `TransientFsError` (the request can be retried and will then succeed,
  /// unless it is unlucky again).
  double fs_transient_write_rate = 0.0;
  double fs_transient_read_rate = 0.0;
  /// OST requests to serve before transient faults may fire.
  std::int64_t fs_transient_after_requests = 0;
  /// Simulated time before any fault class may fire.
  SimTime active_after = 0.0;
  /// Probability that one OST write request fails with an ENOSPC-like
  /// `NoSpaceError` (permanent: retry does not absorb it).
  double fs_no_space_rate = 0.0;

  /// Permanent OST failure: after `fail_ost_after_requests` total OST
  /// requests, OST `fail_ost` stops serving — every request routed to it
  /// throws `OstFailedError` until the affected chunks are remapped to
  /// surviving OSTs (Filesystem::remapChunks). -1 disables.
  int fail_ost = -1;
  std::int64_t fail_ost_after_requests = 0;

  /// Straggler OST: service durations on `straggler_ost` are multiplied by
  /// `straggler_multiplier` (a slow disk / degraded RAID path, not an
  /// error). <= 1 or -1 disables.
  int straggler_ost = -1;
  double straggler_multiplier = 1.0;

  // -- Network / RMA layer ----------------------------------------------------
  /// Probability that one RMA payload (put payload / get reply) is dropped
  /// by the fabric and hardware-retransmitted after `rma_drop_delay`.
  /// Faulted transfers still complete — later, and counted — so one-sided
  /// code keeps working but degrades; TCIO can fall back to two-sided
  /// staging when drops pass `TcioConfig::rma_fault_fallback_threshold`.
  double rma_drop_rate = 0.0;
  SimTime rma_drop_delay = 200.0e-6;
};

/// Bounded exponential backoff for absorbing transient faults, advanced in
/// *simulated* time by the retrying client. `max_attempts == 1` disables
/// retry entirely (the default: faults surface unless a caller opts in).
struct RetryPolicy {
  int max_attempts = 1;
  SimTime base_backoff = 1.0e-3;
  double backoff_multiplier = 2.0;
  SimTime max_backoff = 64.0e-3;
  /// Backoff is multiplied by a factor drawn uniformly from
  /// [1 - jitter_fraction/2, 1 + jitter_fraction/2] out of a seeded stream.
  double jitter_fraction = 0.5;
};

/// Seeded, deterministic fault schedule. One instance per consulting layer;
/// must only be consulted inside atomic sections (virtual-time order).
class FaultPlan {
 public:
  /// Salt values for per-layer RNG stream separation.
  static constexpr std::uint64_t kFsSalt = 0x66735f6c61796572ULL;   // "fs_layer"
  static constexpr std::uint64_t kNetSalt = 0x6e65745f6c617965ULL;  // "net_laye"

  explicit FaultPlan(const FaultConfig& cfg, std::uint64_t salt = kFsSalt);

  const FaultConfig& config() const { return cfg_; }

  // -- File-system hooks ------------------------------------------------------

  enum class FsVerb { kWrite, kRead };
  enum class FsOutcome { kNone, kTransient, kNoSpace, kOstFailed };

  /// Called once per OST request (in virtual-time order); advances the
  /// request counter, draws the scheduled fault for this request, and
  /// reports what the OST does. `kOstFailed` is sticky per failed OST;
  /// the others are one-request events.
  FsOutcome nextFsRequest(FsVerb verb, int ost, SimTime t);

  /// True once `ost` has permanently failed (request counter crossed the
  /// configured threshold).
  bool ostFailed(int ost) const {
    return cfg_.fail_ost >= 0 && ost == cfg_.fail_ost &&
           fs_requests_ >= cfg_.fail_ost_after_requests;
  }

  /// Service-duration multiplier for `ost` (straggler model; 1.0 = nominal).
  double serviceMultiplier(int ost) const {
    return (cfg_.straggler_ost >= 0 && ost == cfg_.straggler_ost &&
            cfg_.straggler_multiplier > 1.0)
               ? cfg_.straggler_multiplier
               : 1.0;
  }

  // -- Legacy one-shot shim (Filesystem::injectWriteFault) --------------------

  /// Schedules exactly one transient fault on the N-th subsequent write
  /// *call* (not OST request), preserving the pre-FaultPlan injector's
  /// contract.
  void scheduleOneShotWrite(std::int64_t after_calls) {
    one_shot_write_in_ = after_calls;
  }
  /// Consumed once per Filesystem::write call; true when this call faults.
  bool consumeOneShotWrite() {
    return one_shot_write_in_ >= 0 && one_shot_write_in_-- == 0;
  }

  // -- Network hooks ----------------------------------------------------------

  /// Called once per RMA payload message; returns the extra retransmit
  /// delay (0 when the payload goes through cleanly).
  SimTime nextRmaPayload();

  // -- Counters (tests, stats) ------------------------------------------------

  std::int64_t fsRequestsSeen() const { return fs_requests_; }
  std::int64_t transientFaultsInjected() const { return transients_; }
  std::int64_t noSpaceFaultsInjected() const { return no_space_; }
  std::int64_t rmaDropsInjected() const { return rma_drops_; }

 private:
  FaultConfig cfg_;
  Rng rng_;
  std::int64_t fs_requests_ = 0;
  std::int64_t one_shot_write_in_ = -1;
  std::int64_t transients_ = 0;
  std::int64_t no_space_ = 0;
  std::int64_t rma_drops_ = 0;
};

}  // namespace tcio
