// Deterministic cross-layer fault injection.
//
// A `FaultPlan` is the single source of truth for every injected failure in a
// simulated job: transient and permanent file-system faults, straggling OSTs,
// and dropped RMA payloads. The plan draws from its own seeded xoshiro stream
// and is only ever consulted inside Proc::atomic() sections, so all fault
// decisions happen in global virtual-time order — two runs with the same
// `FaultConfig` inject byte-identical fault schedules, which the fault-matrix
// determinism tests rely on.
//
// The plan *schedules* faults; it never throws. Layers consult it and raise
// the matching typed error (`TransientFsError`, `NoSpaceError`,
// `OstFailedError` — see common/error.h); recovery (client retry, collective
// error agreement, degraded-mode remapping) lives above, in src/fs and
// src/tcio.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "common/rng.h"
#include "common/types.h"

namespace tcio {

/// Where in TCIO's collective life cycle a scheduled fail-stop crash fires.
/// The points are *semantic* (nth collective entry, mid-RMA flush, mid
/// journal append, mid drain at close) rather than wall-clock, so the same
/// schedule reproduces the same crash on every run.
enum class CrashPoint {
  kAtCollective,  // on entering the nth TCIO collective (flush/fetch/close)
  kMidRma,        // after level-1 state is built but before its RMA epoch
  kMidJournal,    // mid journal append: a torn record is left behind
  kMidClose,      // during the close-time drain, between segment writes
  kMidRecovery,   // inside recovery itself: an adopter dies mid-WAL-replay
                  // (per adopted segment in File::replayOrphans; per
                  // re-appended record — torn — in delegate adoptShard)
};

/// One scheduled fail-stop crash: rank `rank` dies at the `after`-th
/// occurrence (0-based) of `point` on that rank.
struct CrashSchedule {
  Rank rank = -1;
  CrashPoint point = CrashPoint::kAtCollective;
  std::int64_t after = 0;
};

/// Where a scheduled silent bit-flip lands. Sites name the *memory domain*
/// that goes bad, not the layer that detects it — detection happens at the
/// next checksum-domain crossing (DESIGN.md §11).
enum class CorruptSite : std::uint8_t {
  kStagingFrame,  // level-1 / RMA staging memory, after digests are taken
  kWindow,        // level-2 window (or delegate shard buffer) at rest
  kStoredBlock,   // an OST block already acknowledged by Filesystem::write
  kJournalBody,   // the payload of a committed WAL record on the journal device
};

/// One scheduled silent corruption: at the `after`-th opportunity (0-based)
/// of `site`, one seeded bit of the affected buffer flips. `rank` selects
/// the victim for the per-rank sites (kStagingFrame, kWindow; a delegate
/// server filters by its own delegate index); the shared file-system sites
/// (kStoredBlock, kJournalBody) leave it at -1.
struct CorruptionSchedule {
  Rank rank = -1;
  CorruptSite site = CorruptSite::kStagingFrame;
  std::int64_t after = 0;
};

/// What faults to inject, and when. All rates are per-request probabilities
/// in [0, 1]; counters/times gate when a fault class becomes active.
struct FaultConfig {
  /// Master switch consulted by the layers that auto-install plans
  /// (core::File installs `TcioConfig::faults` into the shared Filesystem
  /// only when enabled; net::Network likewise).
  bool enabled = false;
  /// Seed of the plan's RNG stream. Layers holding separate plans (the
  /// Filesystem and the Network) salt it so their streams are independent.
  std::uint64_t seed = 1;

  // -- File-system layer ------------------------------------------------------
  /// Probability that one OST write/read request fails with an EIO-like
  /// `TransientFsError` (the request can be retried and will then succeed,
  /// unless it is unlucky again).
  double fs_transient_write_rate = 0.0;
  double fs_transient_read_rate = 0.0;
  /// OST requests to serve before transient faults may fire.
  std::int64_t fs_transient_after_requests = 0;
  /// Simulated time before any fault class may fire.
  SimTime active_after = 0.0;
  /// Probability that one OST write request fails with an ENOSPC-like
  /// `NoSpaceError` (permanent: retry does not absorb it).
  double fs_no_space_rate = 0.0;

  /// Permanent OST failure: after `fail_ost_after_requests` total OST
  /// requests, OST `fail_ost` stops serving — every request routed to it
  /// throws `OstFailedError` until the affected chunks are remapped to
  /// surviving OSTs (Filesystem::remapChunks). -1 disables.
  int fail_ost = -1;
  std::int64_t fail_ost_after_requests = 0;

  /// OST recovery: once the plan has seen this many total OST requests, a
  /// permanently failed OST comes back (failover pair rejoined) and
  /// previously remapped chunks may be rebalanced home. -1 = never recovers.
  std::int64_t recover_ost_after_requests = -1;

  /// Straggler OST: service durations on `straggler_ost` are multiplied by
  /// `straggler_multiplier` (a slow disk / degraded RAID path, not an
  /// error). <= 1 or -1 disables.
  int straggler_ost = -1;
  double straggler_multiplier = 1.0;

  // -- Metadata server --------------------------------------------------------
  /// Probability that one MDS open/close RPC fails with a retriable
  /// `TransientFsError` (FsClient's open/close retry loops absorb these).
  double mds_open_fail_rate = 0.0;
  double mds_close_fail_rate = 0.0;

  // -- Fail-stop crashes ------------------------------------------------------
  /// Scheduled fail-stop rank crashes (see CrashSchedule). A crashed rank
  /// unwinds out of the user program via `RankCrashedError` and never calls
  /// another collective; survivors detect the silence through the liveness
  /// protocol (mpi/liveness.h) and shrink around it.
  std::vector<CrashSchedule> crashes;

  // -- Network / RMA layer ----------------------------------------------------
  /// Probability that one RMA payload (put payload / get reply) is dropped
  /// by the fabric and hardware-retransmitted after `rma_drop_delay`.
  /// Faulted transfers still complete — later, and counted — so one-sided
  /// code keeps working but degrades; TCIO can fall back to two-sided
  /// staging when drops pass `TcioConfig::rma_fault_fallback_threshold`.
  double rma_drop_rate = 0.0;
  SimTime rma_drop_delay = 200.0e-6;

  // -- Silent corruption ------------------------------------------------------
  /// Scheduled silent bit-flips (see CorruptionSchedule). Unlike every class
  /// above, these raise no error at injection time: the corrupted bytes flow
  /// on until an integrity check (TCIO_INTEGRITY) catches them — or, with
  /// integrity off, all the way into user buffers.
  std::vector<CorruptionSchedule> corruptions;
};

/// Bounded exponential backoff for absorbing transient faults, advanced in
/// *simulated* time by the retrying client. `max_attempts == 1` disables
/// retry entirely (the default: faults surface unless a caller opts in).
struct RetryPolicy {
  int max_attempts = 1;
  SimTime base_backoff = 1.0e-3;
  double backoff_multiplier = 2.0;
  SimTime max_backoff = 64.0e-3;
  /// Backoff is multiplied by a factor drawn uniformly from
  /// [1 - jitter_fraction/2, 1 + jitter_fraction/2] out of a seeded stream.
  double jitter_fraction = 0.5;
};

/// Per-domain view of the silent-corruption schedule. The per-rank sites
/// (kStagingFrame, kWindow) give each TCIO rank / delegate server its own
/// plan; the shared file-system sites (kStoredBlock, kJournalBody) live in
/// the Filesystem's FaultPlan under rank -1. Byte/bit choices come from a
/// dedicated seeded stream (kCorruptSalt) so arming a corruption never
/// perturbs the transient/no-space/RMA fault draws of a clean run.
class CorruptionPlan {
 public:
  static constexpr std::uint64_t kCorruptSalt = 0x626974666c697073ULL;  // "bitflips"

  CorruptionPlan(const FaultConfig& cfg, Rank rank);

  /// True when any corruption is scheduled for this rank (cheap gate).
  bool armed() const { return !arms_.empty(); }

  /// Advance the opportunity counter for `site`; returns true exactly once
  /// per matching arm, at its scheduled occurrence. The caller then flips
  /// one bit of the affected buffer (flipBit).
  bool fires(CorruptSite site);

  /// Flips one seeded bit of `buf` and returns the byte offset flipped
  /// (-1 for an empty buffer). Exactly one (offset, bit) pair is drawn per
  /// call, so injection stays deterministic per (seed, rank, fire index).
  std::int64_t flipBit(std::span<std::byte> buf);

 private:
  struct Arm {
    CorruptSite site;
    std::int64_t after;  // scheduled occurrence (0-based)
    std::int64_t seen = 0;
    bool fired = false;
  };
  std::vector<Arm> arms_;
  Rng rng_;
};

/// Seeded, deterministic fault schedule. One instance per consulting layer;
/// must only be consulted inside atomic sections (virtual-time order).
class FaultPlan {
 public:
  /// Salt values for per-layer RNG stream separation.
  static constexpr std::uint64_t kFsSalt = 0x66735f6c61796572ULL;   // "fs_layer"
  static constexpr std::uint64_t kNetSalt = 0x6e65745f6c617965ULL;  // "net_laye"

  explicit FaultPlan(const FaultConfig& cfg, std::uint64_t salt = kFsSalt);

  const FaultConfig& config() const { return cfg_; }

  // -- File-system hooks ------------------------------------------------------

  enum class FsVerb { kWrite, kRead };
  enum class FsOutcome { kNone, kTransient, kNoSpace, kOstFailed };
  enum class MdsVerb { kOpen, kClose };

  /// Called once per OST request (in virtual-time order); advances the
  /// request counter, draws the scheduled fault for this request, and
  /// reports what the OST does. `kOstFailed` is sticky per failed OST;
  /// the others are one-request events.
  FsOutcome nextFsRequest(FsVerb verb, int ost, SimTime t);

  /// True once `ost` has permanently failed (request counter crossed the
  /// configured threshold) and has not yet recovered.
  bool ostFailed(int ost) const {
    return cfg_.fail_ost >= 0 && ost == cfg_.fail_ost &&
           fs_requests_ >= cfg_.fail_ost_after_requests && !ostRecovered();
  }

  /// True once the failed OST has come back (recovery threshold crossed).
  bool ostRecovered() const {
    return cfg_.recover_ost_after_requests >= 0 &&
           fs_requests_ >= cfg_.recover_ost_after_requests;
  }

  /// Called once per MDS open/close RPC; true when this RPC faults with a
  /// retriable TransientFsError.
  bool nextMdsOp(MdsVerb verb);

  /// Service-duration multiplier for `ost` (straggler model; 1.0 = nominal).
  double serviceMultiplier(int ost) const {
    return (cfg_.straggler_ost >= 0 && ost == cfg_.straggler_ost &&
            cfg_.straggler_multiplier > 1.0)
               ? cfg_.straggler_multiplier
               : 1.0;
  }

  // -- Legacy one-shot shim (Filesystem::injectWriteFault) --------------------

  /// Schedules exactly one transient fault on the N-th subsequent write
  /// *call* (not OST request), preserving the pre-FaultPlan injector's
  /// contract.
  void scheduleOneShotWrite(std::int64_t after_calls) {
    one_shot_write_in_ = after_calls;
  }
  /// Consumed once per Filesystem::write call; true when this call faults.
  bool consumeOneShotWrite() {
    return one_shot_write_in_ >= 0 && one_shot_write_in_-- == 0;
  }

  // -- Network hooks ----------------------------------------------------------

  /// Called once per RMA payload message; returns the extra retransmit
  /// delay (0 when the payload goes through cleanly).
  SimTime nextRmaPayload();

  // -- Silent-corruption hooks (shared file-system sites) ---------------------

  /// The plan's view of the kStoredBlock / kJournalBody corruption arms
  /// (rank -1). The Filesystem advances it once per data write / journal
  /// append, in virtual-time order.
  CorruptionPlan& corruption() { return corruption_; }

  // -- Counters (tests, stats) ------------------------------------------------

  std::int64_t fsRequestsSeen() const { return fs_requests_; }
  std::int64_t transientFaultsInjected() const { return transients_; }
  std::int64_t noSpaceFaultsInjected() const { return no_space_; }
  std::int64_t rmaDropsInjected() const { return rma_drops_; }
  std::int64_t mdsFaultsInjected() const { return mds_faults_; }

 private:
  FaultConfig cfg_;
  Rng rng_;
  CorruptionPlan corruption_;
  std::int64_t fs_requests_ = 0;
  std::int64_t one_shot_write_in_ = -1;
  std::int64_t transients_ = 0;
  std::int64_t no_space_ = 0;
  std::int64_t rma_drops_ = 0;
  std::int64_t mds_faults_ = 0;
};

/// Per-rank view of the crash schedule. Each TCIO rank owns one; the File
/// layer advances the counters at the matching life-cycle points and raises
/// `RankCrashedError` when a scheduled crash fires. Separate from FaultPlan
/// because crash points are per-rank program positions, not shared
/// virtual-time events — no RNG, fully deterministic from the config.
class CrashPlan {
 public:
  CrashPlan(const FaultConfig& cfg, Rank rank);

  /// True when any crash is scheduled for this rank (cheap gate).
  bool armed() const { return armed_; }

  /// Advance the counter for `point`; returns true exactly once, when the
  /// scheduled occurrence is reached. The caller then unwinds the rank.
  bool fires(CrashPoint point);

  /// Torn-write model: how many bytes of an `len`-byte journal record make
  /// it to the platter when the rank dies mid-append. Drawn from a seeded
  /// stream (deterministic per rank); always in [0, len).
  std::int64_t tornBytes(std::int64_t len);

 private:
  struct Arm {
    CrashPoint point;
    std::int64_t after;   // scheduled occurrence (0-based)
    std::int64_t seen = 0;
  };
  std::vector<Arm> arms_;
  bool armed_ = false;
  bool crashed_ = false;
  Rng rng_;
};

}  // namespace tcio
