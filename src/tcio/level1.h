// Level-1 buffer: one segment-sized combine buffer per process.
//
// Sequential small writes that fall into the segment the buffer is aligned
// with are memcpy'd in and their in-segment extents recorded; when an access
// leaves the segment (or on flush) the whole buffer content moves to the
// owning rank's level-2 segment in a single coalesced transfer.
#pragma once

#include <cstring>
#include <vector>

#include "common/error.h"
#include "common/types.h"
#include "mpi/datatype.h"

namespace tcio::core {

class Level1Buffer {
 public:
  explicit Level1Buffer(Bytes segment_size)
      : segment_size_(segment_size),
        data_(static_cast<std::size_t>(segment_size)) {}

  bool empty() const { return extents_.empty(); }

  /// Global segment the buffer is currently aligned with (-1 = none).
  SegmentId alignedSegment() const { return segment_; }

  /// Aligns with a (new) segment; buffer must be empty.
  void align(SegmentId segment) {
    TCIO_CHECK_MSG(empty(), "realigning a non-empty level-1 buffer");
    segment_ = segment;
  }

  /// Copies `n` bytes at in-segment displacement `disp`; records the extent.
  void put(Offset disp, const void* src, Bytes n) {
    TCIO_CHECK(segment_ >= 0);
    TCIO_CHECK_MSG(disp >= 0 && disp + n <= segment_size_,
                   "level-1 write outside the aligned segment");
    std::memcpy(data_.data() + disp, src, static_cast<std::size_t>(n));
    extents_.push_back({disp, disp + n});
  }

  /// Sorted, merged extents currently buffered (in-segment displacements).
  std::vector<Extent> mergedExtents() const {
    return mpi::normalizeOverlapping(extents_);
  }

  const std::byte* data() const { return data_.data(); }
  /// Mutable view for the staging-frame corruption injector only — normal
  /// code paths must never write the buffer except through put().
  std::byte* mutableData() { return data_.data(); }
  Bytes size() const { return segment_size_; }

  /// Empties the buffer (after its content was shipped to level-2).
  void reset() {
    extents_.clear();
    segment_ = -1;
  }

 private:
  Bytes segment_size_;
  std::vector<std::byte> data_;
  std::vector<Extent> extents_;
  SegmentId segment_ = -1;
};

}  // namespace tcio::core
