// TCIO configuration.
//
// As the paper specifies, a user provides the level-2 segment size (set to
// the file system's lock granularity — the Lustre stripe size — by default)
// and the number of segments each process contributes. The level-1 buffer is
// exactly one segment (paper §IV.A: "we set them to be equal, and each
// level-1 buffer is aligned with one level-2 buffer segment").
#pragma once

#include "common/env.h"
#include "common/fault.h"
#include "common/types.h"

namespace tcio::core {

struct TcioConfig {
  /// Level-2 segment size; should equal the file system lock granularity.
  Bytes segment_size = 1_MiB;

  /// Segments per process. The file domain a job can address is
  /// segment_size * segments_per_rank * num_ranks.
  std::int64_t segments_per_rank = 64;

  /// Paper design: move level-1 data to level-2 with one-sided
  /// lock/put/unlock epochs. `false` switches to the two-sided ablation:
  /// writes are staged locally and exchanged with a collective alltoallv at
  /// flush/close (OCIO-style exchange under the TCIO API).
  bool use_onesided = true;

  /// Paper design: reads are recorded and materialized lazily at fetch (or
  /// when the read domain leaves the current segment). `false` switches to
  /// the eager ablation: every read_at materializes immediately.
  bool lazy_reads = true;

  /// Literal paper trigger: resolve the pending-read group independently as
  /// soon as a read leaves the segment the group is in. Off by default:
  /// for interleaved patterns every rank crosses segments in lockstep and
  /// the per-segment exclusive load epochs serialize all readers; explicit
  /// (collective) fetch() lets owners load their own segments in parallel.
  bool auto_fetch_on_segment_exit = false;

  /// Topology-aware intra-node aggregation (src/topo/): level-1 flushes are
  /// staged locally and shipped at collective points through per-node
  /// leaders, so the NIC carries one coalesced epoch per (source node,
  /// destination node) instead of one per (rank, destination rank). Requires
  /// use_onesided && lazy_reads && !auto_fetch_on_segment_exit, because
  /// staged data is only exchanged at collective calls.
  bool node_aggregation = false;

  /// Per-source-node partition of each leader's staging window. 0 = auto
  /// (one full segment per node-local rank per round, plus header slack).
  Bytes node_agg_slot_bytes = 0;

  /// Rotate node-aggregation leadership round-robin across each node's ranks
  /// at every exchange, so one rank's NIC/membus does not carry all staging
  /// traffic for the whole job. Costs a staging window on every rank instead
  /// of only on leaders; data and determinism are unaffected.
  bool node_agg_rotate_leaders = true;

  // -- I/O delegate ranks (src/delegate/, DESIGN.md §10) ---------------------

  /// When D > 0, the first D ranks of a delegate::Session become asynchronous
  /// I/O servers that exclusively own the level-2 segment map (round-robin
  /// shard: segment g is served by delegate g % D); the remaining P−D client
  /// ranks never touch FsClient. 0 disables; the environment variable
  /// TCIO_DELEGATES overrides a zero value. Negative disables explicitly,
  /// beating the environment (the knob ablation baselines pin).
  int delegate_ranks = 0;

  /// Tuning knobs for the delegate request-queue server core.
  struct DelegateConfig {
    /// Bounded per-delegate request queue: total queued requests across all
    /// clients at which admission stops (DelegateBusyError to the client).
    std::int64_t queue_capacity = 64;
    /// Admission watermark; 0 = use queue_capacity. Rejections begin here so
    /// the queue keeps headroom for control traffic under bursty arrival.
    std::int64_t queue_watermark = 0;
    /// RMA staging-frame size per in-flight data request. 0 = auto (one
    /// level-2 segment). The delegate's staging window holds queue_capacity
    /// frames; a request gets its frame at admission, so rejected requests
    /// never move payload.
    Bytes frame_bytes = 0;
    /// Maximum extent descriptors per wire request; clients split larger
    /// submissions.
    std::int64_t max_wire_extents = 1024;
  };
  DelegateConfig delegate;

  // -- Fault injection and recovery (see common/fault.h, DESIGN.md) ----------

  /// Cross-layer fault plan. When `faults.enabled`, the collective open
  /// installs it into the shared Filesystem (first open wins — every rank
  /// and file then shares one deterministic schedule). Network faults
  /// (rma_drop_*) are configured on NetworkConfig::faults instead: the
  /// network exists before any TCIO file is opened.
  FaultConfig faults;

  /// Retry policy the FS client uses to absorb TransientFsError (bounded
  /// exponential backoff charged to simulated time). Default: no retry —
  /// transients surface unless the application opts in.
  RetryPolicy retry;

  /// Fail-stop crash tolerance (see DESIGN.md §8). All off by default —
  /// zero behavior change for jobs that don't opt in.
  struct CrashToleranceConfig {
    /// Master switch: arm the crash schedule (faults.crashes), run every
    /// collective agreement through the liveness protocol, and double the
    /// level-2 window with spare slots for orphaned-segment takeover.
    bool enabled = false;
    /// Write-ahead journal: append each level-1 flush's extents to a
    /// per-rank CRC32-framed journal file before the level-2 transfer, so
    /// a dead rank's buffered segments can be replayed by their new owner.
    bool journal = true;
    /// Virtual-time window a liveness round waits for a peer before
    /// suspecting it. Must exceed the worst-case inter-rank skew at a
    /// collective point (straggler configs need more).
    SimTime liveness_window = 250.0e-3;
    /// Failure-detector poll quantum inside the window.
    SimTime liveness_poll = 2.0e-3;
  };
  CrashToleranceConfig crash;

  /// End-to-end data integrity (DESIGN.md §11). All checksum domains hang
  /// off one switch so a job opts into the whole pipeline at once: per-extent
  /// CRC32 digests at client put time, verification at every domain crossing
  /// (staging frame → window → store → journal), read-repair from the WAL or
  /// an OST replica, and a background scrubber over owned segments.
  struct IntegrityConfig {
    /// Tri-state: > 0 on; 0 defers to the TCIO_INTEGRITY environment
    /// variable; < 0 pinned off regardless of the environment.
    int enabled = 0;
    /// Owned segments re-verified per collective call by the background
    /// scrubber (round-robin cursor; 0 disables between-collective scrubs).
    std::int64_t scrub_segments_per_collective = 2;
    /// Verify every owned, digested segment once more at close, before the
    /// drain writes it back.
    bool scrub_at_close = true;
    /// Per-byte digest/verify throughput charged to virtual time (folded
    /// CRC32 runs near memory speed; see FsConfig::checksum_bandwidth).
    double checksum_bandwidth = 50.0e9;
  };
  IntegrityConfig integrity;

  /// Degradation ladder, RMA leg: once the network has dropped (and
  /// retransmitted) at least this many RMA payloads, the next collective
  /// point agrees to abandon one-sided epochs and run every remaining
  /// exchange through the two-sided staged path. Only meaningful for plain
  /// one-sided mode with lazy reads and no auto-fetch (the staged path only
  /// moves data at collective calls; node aggregation keeps its own leader
  /// funnel). 0 disables.
  std::int64_t rma_fault_fallback_threshold = 0;
};

/// Resolves IntegrityConfig::enabled's tri-state against TCIO_INTEGRITY.
inline bool integrityEnabled(const TcioConfig& cfg) {
  if (cfg.integrity.enabled > 0) return true;
  if (cfg.integrity.enabled < 0) return false;
  return envInt64("TCIO_INTEGRITY", 0) > 0;
}

}  // namespace tcio::core
