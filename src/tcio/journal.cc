#include "tcio/journal.h"

#include <cstring>

#include "common/crc32.h"
#include "common/error.h"

namespace tcio::core {

namespace {

/// CRC over the frame body: seg, disp, len, gen, payload (magic and the CRC
/// field itself excluded; the reserved word is excluded too so it stays
/// free for future use without a format bump).
std::uint32_t frameCrc(std::int64_t seg, std::int64_t disp, std::int64_t len,
                       std::uint32_t gen,
                       std::span<const std::byte> payload) {
  std::byte fields[28];
  std::memcpy(fields + 0, &seg, 8);
  std::memcpy(fields + 8, &disp, 8);
  std::memcpy(fields + 16, &len, 8);
  std::memcpy(fields + 24, &gen, 4);
  return crc32(payload, crc32({fields, sizeof(fields)}));
}

}  // namespace

std::string journalPath(const std::string& file, Rank rank) {
  return file + ".wal." + std::to_string(rank);
}

Journal::Journal(fs::FsClient& client, std::string path)
    : client_(&client), path_(std::move(path)) {
  file_ = client_->open(path_, fs::kCreate | fs::kTruncate | fs::kWrite);
}

Journal::~Journal() {
  try {
    close();
    // A crash mid-journal-teardown is absorbed: replay tolerates an
    // unclosed WAL by construction (CRC framing drops any torn tail).
    // NOLINT-TCIO(crash-unwind-swallow): destructor must not throw
  } catch (...) {
    // Destructor must not throw; an unclean journal handle only costs the
    // simulated MDS a close it never saw.
  }
}

void Journal::close() {
  if (file_.valid()) client_->close(file_);
}

void Journal::append(std::int64_t seg, Offset disp,
                     std::span<const std::byte> payload,
                     std::int64_t torn_prefix, std::uint32_t gen) {
  TCIO_CHECK_MSG(file_.valid(), "append on a closed journal");
  const auto len = static_cast<std::int64_t>(payload.size());
  std::vector<std::byte> frame(
      static_cast<std::size_t>(kHeaderBytes) + payload.size());
  const std::uint32_t magic = kMagic;
  const std::uint32_t crc = frameCrc(seg, disp, len, gen, payload);
  const std::uint32_t reserved = 0;
  std::memcpy(frame.data() + 0, &magic, 4);
  std::memcpy(frame.data() + 4, &crc, 4);
  std::memcpy(frame.data() + 8, &seg, 8);
  std::memcpy(frame.data() + 16, &disp, 8);
  std::memcpy(frame.data() + 24, &len, 8);
  std::memcpy(frame.data() + 32, &gen, 4);
  std::memcpy(frame.data() + 36, &reserved, 4);
  if (!payload.empty()) {
    std::memcpy(frame.data() + kHeaderBytes, payload.data(), payload.size());
  }
  ++records_;
  if (torn_prefix >= 0) {
    // Crash mid-append: only the prefix reaches the platter. The torn
    // record is unreadable (short frame or CRC mismatch) by design. Any
    // batched records ahead of it still make the device — they were
    // logically appended first.
    const auto torn = static_cast<std::size_t>(
        std::min<Bytes>(static_cast<Bytes>(frame.size()), torn_prefix));
    batch_.insert(batch_.end(), frame.begin(),
                  frame.begin() + static_cast<std::ptrdiff_t>(torn));
    flushBatch();
    return;
  }
  batch_.insert(batch_.end(), frame.begin(), frame.end());
  if (!batching_) flushBatch();
}

void Journal::batchBegin() { batching_ = true; }

void Journal::batchEnd() {
  batching_ = false;
  flushBatch();
}

void Journal::flushBatch() {
  if (batch_.empty()) return;
  client_->appendJournal(file_, cursor_, batch_.data(),
                         static_cast<Bytes>(batch_.size()));
  cursor_ += static_cast<Offset>(batch_.size());
  batch_.clear();
}

void Journal::commit() {
  TCIO_CHECK_MSG(file_.valid(), "commit on a closed journal");
  batch_.clear();  // committed bytes supersede anything still buffered
  batching_ = false;
  if (cursor_ == 0) return;
  // Truncating reopen: the journal's bytes are superseded by the committed
  // file contents. One MDS round-trip, no data movement.
  client_->close(file_);
  file_ = client_->open(path_, fs::kCreate | fs::kTruncate | fs::kWrite);
  cursor_ = 0;
  records_ = 0;
}

Journal::Parsed Journal::parse(std::span<const std::byte> raw) {
  Parsed out;
  std::size_t pos = 0;
  while (pos < raw.size()) {
    if (pos + static_cast<std::size_t>(kHeaderBytes) > raw.size()) {
      ++out.torn_records;
      break;
    }
    std::uint32_t magic = 0;
    std::uint32_t crc = 0;
    std::int64_t seg = 0;
    std::int64_t disp = 0;
    std::int64_t len = 0;
    std::uint32_t gen = 0;
    std::memcpy(&magic, raw.data() + pos + 0, 4);
    std::memcpy(&crc, raw.data() + pos + 4, 4);
    std::memcpy(&seg, raw.data() + pos + 8, 8);
    std::memcpy(&disp, raw.data() + pos + 16, 8);
    std::memcpy(&len, raw.data() + pos + 24, 8);
    std::memcpy(&gen, raw.data() + pos + 32, 4);
    if (magic != kMagic || len < 0 ||
        pos + static_cast<std::size_t>(kHeaderBytes) +
                static_cast<std::size_t>(len) >
            raw.size()) {
      ++out.torn_records;
      break;
    }
    const std::span<const std::byte> payload(
        raw.data() + pos + static_cast<std::size_t>(kHeaderBytes),
        static_cast<std::size_t>(len));
    if (frameCrc(seg, disp, len, gen, payload) != crc) {
      // Complete frame, valid magic, in-bounds length — the framing is
      // intact and only the body is corrupt (a flipped bit on the journal
      // device, not a torn append). Drop this record and keep scanning.
      ++out.corrupt_records;
      pos += static_cast<std::size_t>(kHeaderBytes) +
             static_cast<std::size_t>(len);
      continue;
    }
    Record rec;
    rec.seg = seg;
    rec.disp = disp;
    rec.gen = gen;
    rec.payload.assign(payload.begin(), payload.end());
    out.bytes_replayable += len;
    out.records.push_back(std::move(rec));
    pos += static_cast<std::size_t>(kHeaderBytes) +
           static_cast<std::size_t>(len);
  }
  return out;
}

Journal::Parsed Journal::readAndParse(fs::FsClient& client,
                                      const std::string& path) {
  fs::FsFile f;
  try {
    f = client.open(path, fs::kRead);
  } catch (const FileNotFound&) {
    return {};  // journaling was off, or the rank never flushed
  }
  const Bytes size = client.size(f);
  std::vector<std::byte> raw(static_cast<std::size_t>(size));
  if (size > 0) client.pread(f, 0, raw.data(), size);
  client.close(f);
  return parse(raw);
}

}  // namespace tcio::core
