#include "tcio/capi.h"

#include "common/error.h"
#include "tcio/file.h"

namespace {

struct ThreadContext {
  tcio::mpi::Comm* comm = nullptr;
  tcio::fs::Filesystem* fsys = nullptr;
  tcio::core::TcioConfig cfg;
};

// One context per rank thread — the simulation hosts every rank in one
// process, so process-global state would alias ranks.
thread_local ThreadContext g_ctx;

ThreadContext& ctx() {
  TCIO_CHECK_MSG(g_ctx.comm != nullptr,
                 "tcio_set_context() must be called before tcio_open()");
  return g_ctx;
}

}  // namespace

void tcio_set_context(tcio::mpi::Comm& comm, tcio::fs::Filesystem& fsys,
                      tcio::core::TcioConfig cfg) {
  g_ctx = {&comm, &fsys, cfg};
}

tcio_file* tcio_open(const char* fname, int mode) {
  ThreadContext& c = ctx();
  return new tcio::core::File(*c.comm, *c.fsys, fname,
                              static_cast<unsigned>(mode), c.cfg);
}

void tcio_write(tcio_file* fh, const void* data, int count,
                const tcio::mpi::Datatype& type) {
  fh->write(data, count, type);
}

void tcio_write_at(tcio_file* fh, tcio::Offset offset, const void* data,
                   int count, const tcio::mpi::Datatype& type) {
  fh->writeAt(offset, data, count, type);
}

void tcio_read(tcio_file* fh, void* data, int count,
               const tcio::mpi::Datatype& type) {
  fh->read(data, count, type);
}

void tcio_read_at(tcio_file* fh, tcio::Offset offset, void* data, int count,
                  const tcio::mpi::Datatype& type) {
  fh->readAt(offset, data, count, type);
}

void tcio_seek(tcio_file* fh, tcio::Offset offset, int whence) {
  using tcio::core::Whence;
  Whence w = Whence::kSet;
  if (whence == TCIO_SEEK_CUR) w = Whence::kCur;
  if (whence == TCIO_SEEK_END) w = Whence::kEnd;
  fh->seek(offset, w);
}

void tcio_flush(tcio_file* fh) { fh->flush(); }
void tcio_fetch(tcio_file* fh) { fh->fetch(); }

void tcio_close(tcio_file* fh) {
  fh->close();
  delete fh;
}
