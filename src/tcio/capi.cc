#include "tcio/capi.h"

#include "common/error.h"
#include "tcio/file.h"

namespace {

struct ThreadContext {
  tcio::mpi::Comm* comm = nullptr;
  tcio::fs::Filesystem* fsys = nullptr;
  tcio::core::TcioConfig cfg;
};

// One context per rank thread — the simulation hosts every rank in one
// process, so process-global state would alias ranks.
thread_local ThreadContext g_ctx;

ThreadContext& ctx() {
  TCIO_CHECK_MSG(g_ctx.comm != nullptr,
                 "tcio_set_context() must be called before tcio_open()");
  return g_ctx;
}

}  // namespace

void tcio_set_context(tcio::mpi::Comm& comm, tcio::fs::Filesystem& fsys,
                      tcio::core::TcioConfig cfg) {
  g_ctx = {&comm, &fsys, cfg};
}

tcio_file* tcio_open(const char* fname, int mode) {
  ThreadContext& c = ctx();
  return new tcio::core::File(*c.comm, *c.fsys, fname,
                              static_cast<unsigned>(mode), c.cfg);
}

void tcio_stats(tcio_file* fh, tcio_stats_t* out) {
  const tcio::core::TcioDegradedStats& d = fh->stats().degraded;
  *out = {};
  out->fs_transient_faults = d.fs_transient_faults;
  out->fs_retries = d.fs_retries;
  out->fs_retry_giveups = d.fs_retry_giveups;
  out->chunks_remapped = d.chunks_remapped;
  out->chunks_rebalanced = d.chunks_rebalanced;
  out->rma_drops = d.rma_drops;
  out->fallback_exchanges = d.fallback_exchanges;
  out->two_sided_fallback = d.two_sided_fallback ? 1 : 0;
  out->ranks_crashed = d.ranks_crashed;
  out->segments_taken_over = d.segments_taken_over;
  out->journal_records_replayed = d.journal_records_replayed;
  out->journal_bytes_replayed = static_cast<long long>(d.journal_bytes_replayed);
  out->journal_torn_records = d.journal_torn_records;
  out->unjournaled_segments_lost = d.unjournaled_segments_lost;
  out->degraded = d.any() ? 1 : 0;
}

void tcio_write(tcio_file* fh, const void* data, int count,
                const tcio::mpi::Datatype& type) {
  fh->write(data, count, type);
}

void tcio_write_at(tcio_file* fh, tcio::Offset offset, const void* data,
                   int count, const tcio::mpi::Datatype& type) {
  fh->writeAt(offset, data, count, type);
}

void tcio_read(tcio_file* fh, void* data, int count,
               const tcio::mpi::Datatype& type) {
  fh->read(data, count, type);
}

void tcio_read_at(tcio_file* fh, tcio::Offset offset, void* data, int count,
                  const tcio::mpi::Datatype& type) {
  fh->readAt(offset, data, count, type);
}

void tcio_seek(tcio_file* fh, tcio::Offset offset, int whence) {
  using tcio::core::Whence;
  Whence w = Whence::kSet;
  if (whence == TCIO_SEEK_CUR) w = Whence::kCur;
  if (whence == TCIO_SEEK_END) w = Whence::kEnd;
  fh->seek(offset, w);
}

void tcio_flush(tcio_file* fh) { fh->flush(); }
void tcio_fetch(tcio_file* fh) { fh->fetch(); }

void tcio_close(tcio_file* fh) {
  fh->close();
  delete fh;
}

void tcio_close_stats(tcio_file* fh, tcio_stats_t* out) {
  fh->close();
  tcio_stats(fh, out);
  delete fh;
}
