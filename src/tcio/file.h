// TCIO — Transparent Collective I/O (the paper's contribution).
//
// A TCIO file exposes POSIX-like per-datum operations; the library performs
// collective aggregation behind the scenes:
//
//   * writes are combined in a per-process level-1 buffer aligned to one
//     file segment; when an access leaves that segment the buffer content
//     moves to the distributed level-2 buffer (an MPI one-sided window,
//     segments mapped round-robin by the paper's equations (1)-(3)) in a
//     single coalesced lock/put/unlock epoch;
//   * reads are lazy: read_at records (address, length, offset); data is
//     materialized collectively at fetch() — owners load their needed
//     segments with large file reads, then every rank gets its blocks with
//     one coalesced one-sided transfer per owner — or independently when
//     the pending read domain leaves the current segment (the reader loads
//     the segment itself and publishes it through the owner's window, so no
//     remote progress is ever required);
//   * close() synchronizes, then each rank writes its own (dirty) level-2
//     segments — large, contiguous, mutually disjoint file regions.
//
// No application-level combine buffers, no derived-datatype file views, and
// arbitrary dynamically-sized blocks — the three OCIO pain points §I lists.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/fault.h"
#include "common/types.h"
#include "fs/client.h"
#include "mpi/agreement.h"
#include "mpi/comm.h"
#include "mpi/datatype.h"
#include "mpi/rma.h"
#include "tcio/config.h"
#include "tcio/journal.h"
#include "tcio/level1.h"
#include "tcio/segment_map.h"
#include "topo/node_aggregator.h"
#include "topo/node_map.h"

namespace tcio::core {

enum class Whence { kSet, kCur, kEnd };

/// Degraded-mode and recovery counters. Nonzero values mean the run survived
/// injected faults; `stats().degraded.any()` is the canonical "this job
/// limped" signal — degradation is always reported, never silent.
struct TcioDegradedStats {
  std::int64_t fs_transient_faults = 0;  // TransientFsErrors this rank saw
  std::int64_t fs_retries = 0;           // backoff-then-retry cycles
  std::int64_t fs_retry_giveups = 0;     // retry budget exhausted
  std::int64_t chunks_remapped = 0;      // failed-OST chunks failed over
  std::int64_t chunks_rebalanced = 0;    // remapped chunks moved home again
  std::int64_t rma_drops = 0;            // dropped RMA payloads (job-wide)
  std::int64_t fallback_exchanges = 0;   // staged exchanges run post-fallback
  bool two_sided_fallback = false;       // RMA degradation ladder engaged
  // Fail-stop crash tolerance (TcioConfig::crash; zero when disabled).
  std::int64_t ranks_crashed = 0;        // dead ranks agreed by liveness
  std::int64_t segments_taken_over = 0;  // orphaned segments this rank adopted
  std::int64_t journal_records_replayed = 0;  // WAL records replayed here
  Bytes journal_bytes_replayed = 0;           // payload bytes those carried
  std::int64_t journal_torn_records = 0;  // torn tails dropped during replay
  /// Segments adopted with journaling off (or after a torn tail): their
  /// buffered-but-unflushed bytes died with the rank. Never silent.
  std::int64_t unjournaled_segments_lost = 0;
  /// Takeover-capacity growth rounds: every survivor grew its window and
  /// relocated its data slots because a spare-slot budget was exhausted.
  std::int64_t window_remaps = 0;

  bool any() const {
    return fs_transient_faults != 0 || fs_retries != 0 ||
           fs_retry_giveups != 0 || chunks_remapped != 0 ||
           chunks_rebalanced != 0 || rma_drops != 0 || two_sided_fallback ||
           ranks_crashed != 0 || segments_taken_over != 0 ||
           journal_records_replayed != 0 || journal_torn_records != 0 ||
           unjournaled_segments_lost != 0 || window_remaps != 0;
  }
};

/// Per-delegate request-queue counters (src/delegate/; all zero unless the
/// job runs a delegate::Session). POD on purpose: delegates ship this blob
/// verbatim to the client leader at session teardown.
struct TcioDelegateStats {
  std::int64_t submissions = 0;      // requests admitted into the queue
  std::int64_t rejections = 0;       // admissions refused (queue/frames full)
  std::int64_t busy_retries = 0;     // client resubmits after DelegateBusy
  std::int64_t queue_high_watermark = 0;  // max total queued requests seen
  std::int64_t batches = 0;          // coalesced FS submissions at drain
  std::int64_t batched_extents = 0;  // raw extents those batches absorbed
  SimTime service_time = 0;          // virtual seconds spent servicing
  std::int64_t fs_transient_faults = 0;  // injected FS faults absorbed
  std::int64_t fs_retries = 0;           // FS retry attempts those cost
  std::int64_t delegates_crashed = 0;    // dead delegates agreed by liveness
  std::int64_t shards_adopted = 0;       // dead delegates whose shard moved here
  std::int64_t shards_readopted = 0;     // of those, inherited from a dead ADOPTER
  std::int64_t journal_records_replayed = 0;  // WAL records replayed on adopt
  std::int64_t deferred_resubmissions = 0;    // requests rerouted after a death
  // End-to-end integrity at the delegate (TcioConfig::integrity).
  std::int64_t crc_checks = 0;       // extent digests verified at the server
  std::int64_t crc_mismatches = 0;   // verifications that found corruption
  std::int64_t repaired = 0;         // healed (client re-stage / WAL replay)
  std::int64_t unrepairable = 0;     // surfaced as IntegrityError

  void merge(const TcioDelegateStats& o) {
    submissions += o.submissions;
    rejections += o.rejections;
    busy_retries += o.busy_retries;
    queue_high_watermark =
        queue_high_watermark > o.queue_high_watermark ? queue_high_watermark
                                                      : o.queue_high_watermark;
    batches += o.batches;
    batched_extents += o.batched_extents;
    service_time += o.service_time;
    fs_transient_faults += o.fs_transient_faults;
    fs_retries += o.fs_retries;
    delegates_crashed =
        delegates_crashed > o.delegates_crashed ? delegates_crashed
                                                : o.delegates_crashed;
    shards_adopted += o.shards_adopted;
    shards_readopted += o.shards_readopted;
    journal_records_replayed += o.journal_records_replayed;
    deferred_resubmissions += o.deferred_resubmissions;
    crc_checks += o.crc_checks;
    crc_mismatches += o.crc_mismatches;
    repaired += o.repaired;
    unrepairable += o.unrepairable;
  }
};

/// End-to-end integrity counters (TcioConfig::integrity; all zero unless the
/// checksum pipeline is on). `crc_mismatches` > 0 with `unrepairable` == 0
/// means every detected corruption was repaired before user data moved.
struct TcioIntegrityStats {
  std::int64_t crc_checks = 0;       // extent digests verified at crossings
  std::int64_t crc_mismatches = 0;   // verifications that found corruption
  std::int64_t repaired = 0;         // mismatches healed (WAL / source frame)
  std::int64_t unrepairable = 0;     // mismatches with no surviving copy
  std::int64_t scrub_passes = 0;     // background scrubber invocations
  std::int64_t segments_scrubbed = 0;  // segments the scrubber verified
  /// Stored-block (FS) checksum-domain counters, folded from the shared
  /// Filesystem at close — global across ranks, not per-rank.
  std::int64_t fs_page_checks = 0;
  std::int64_t fs_page_mismatches = 0;
  std::int64_t fs_pages_repaired = 0;
};

/// Runtime counters (also the evidence for the paper's Table III row on
/// memory efficiency).
struct TcioStats {
  std::int64_t writes = 0;
  std::int64_t reads = 0;
  std::int64_t level1_flushes = 0;
  std::int64_t collective_fetches = 0;
  std::int64_t independent_fetches = 0;
  Bytes bytes_written = 0;
  Bytes bytes_read = 0;
  // Node-aggregation counters (all zero unless TcioConfig::node_aggregation).
  std::int64_t node_exchanges = 0;  // collective leader exchanges performed
  /// Aggregation bytes this rank funneled over the intra-node memory bus as
  /// its node's leader (gather + scatter + window applies; leaders only).
  Bytes intranode_bytes = 0;
  /// Net NIC epochs removed by aggregation: epochs the per-rank shuffle
  /// would have issued to remote nodes, minus leader epochs actually
  /// issued. Meaningful summed across ranks; may be negative on leaders.
  std::int64_t internode_messages_saved = 0;
  /// Fault-recovery accounting (all zero in healthy runs).
  TcioDegradedStats degraded;
  /// Delegate request-queue accounting (all zero outside delegate sessions).
  TcioDelegateStats delegate;
  /// End-to-end checksum accounting (all zero with integrity off).
  TcioIntegrityStats integrity;
};

/// One rank's handle on a shared TCIO file. Open/flush/fetch/close are
/// collective; write/read/seek are independent, per the paper's Program 1.
class File {
 public:
  /// Collective open. `flags` are fs::OpenFlags.
  File(mpi::Comm& comm, fs::Filesystem& fsys, const std::string& name,
       unsigned flags, TcioConfig cfg = {});

  File(const File&) = delete;
  File& operator=(const File&) = delete;
  ~File();

  // -- Program 1 API ---------------------------------------------------------

  /// tcio_write: write at the current file pointer.
  void write(const void* data, std::int64_t count, const mpi::Datatype& type);
  /// tcio_write_at: write at an explicit offset (does not move the pointer).
  void writeAt(Offset off, const void* data, std::int64_t count,
               const mpi::Datatype& type);
  /// tcio_read / tcio_read_at (lazy: data lands at fetch()).
  void read(void* data, std::int64_t count, const mpi::Datatype& type);
  void readAt(Offset off, void* data, std::int64_t count,
              const mpi::Datatype& type);
  /// tcio_seek.
  void seek(Offset off, Whence whence);

  /// tcio_flush: collective; moves level-1 buffers to level-2 and
  /// synchronizes (MPI_Barrier, as the paper specifies).
  void flush();
  /// tcio_fetch: collective; materializes all recorded reads.
  void fetch();
  /// tcio_close: collective; synchronizes, drains level-2 to the file
  /// system, closes. Called automatically by the destructor if needed.
  void close();

  // Raw-byte conveniences used throughout tests and benches.
  void writeAt(Offset off, const void* data, Bytes n);
  void readAt(Offset off, void* data, Bytes n);

  /// Communicator contexts reserved per block for crash shrinks. Not a cap
  /// on total shrink events: when a block is spent, rank 0 of the surviving
  /// communicator reserves a fresh block (see File::handleDeaths).
  static constexpr int kMaxShrinks = 8;

  bool isOpen() const { return open_; }
  Offset tell() const { return pointer_; }
  const TcioStats& stats() const { return stats_; }
  const TcioConfig& config() const { return cfg_; }
  const SegmentMap& segmentMap() const { return map_; }
  /// The communicator collectives currently run over. With crash tolerance
  /// this is the *shrunk* communicator once peers have been declared dead;
  /// otherwise it is the communicator the file was opened on.
  mpi::Comm& comm() { return *comm_; }

  /// Addressable file-domain limit given the configuration. Defined over
  /// the communicator the file was opened on — a crash-shrunk job keeps the
  /// full file domain (orphaned segments are taken over, not dropped).
  Bytes capacity() const {
    return cfg_.segment_size * cfg_.segments_per_rank *
           static_cast<Bytes>(map_.numRanks());
  }

 private:
  // Per-slot metadata bytes at the front of each rank's window.
  static constexpr Offset kDirtyFlag = 0;
  static constexpr Offset kLoadedFlag = 1;
  static constexpr Bytes kFlagBytes = 2;

  Offset flagsDisp(std::int64_t slot, Offset which) const {
    return slot * kFlagBytes + which;
  }
  Offset dataDisp(std::int64_t slot, Offset in_seg) const {
    return flags_region_ + slot * cfg_.segment_size + in_seg;
  }

  struct PendingRead {
    Offset off = 0;
    Bytes len = 0;
    std::byte* dst = nullptr;
  };

  void writeBytes(Offset off, const std::byte* src, Bytes n);
  void recordRead(Offset off, std::byte* dst, Bytes n);

  /// Ships the level-1 buffer to its level-2 segment (one-sided path) or to
  /// the local staging area (two-sided ablation).
  void flushLevel1();

  /// Independent materialization of `reads` (all in one segment group).
  void independentFetch(std::vector<PendingRead> reads);
  /// Collective materialization of all pending reads.
  void collectiveFetch();
  /// One-sided gets for pending reads, grouped per owner (assumes segments
  /// are resident in level-2).
  void gatherPending(std::vector<PendingRead>& reads);

  /// Two-sided ablation: exchange staged writes via alltoallv (collective).
  void exchangeStagedWrites();

  /// Node-aggregation write path (collective): staged writes funnel through
  /// node leaders; destination leaders apply them into node-local owners'
  /// windows over the memory bus.
  void nodeExchangeStagedWrites();

  /// Node-aggregation read path (collective): pending-read requests and
  /// replies travel leader-to-leader; assumes the owner-load phase of
  /// collectiveFetch() made every needed segment resident.
  void nodeAggregatedGather(std::vector<PendingRead>& reads);

  /// Ensures the segment holding `off`..`off+n` is resident in its owner's
  /// window (independent path; reader loads from FS if needed). `scratch` is
  /// caller-owned storage for the published bytes: a put source must stay
  /// valid until the caller closes the epoch (MPI origin-buffer rule).
  void ensureLoadedIndependent(SegmentId seg, std::vector<std::byte>& scratch);

  /// Writes this rank's dirty slots to the file system.
  void drainToFs(Bytes file_size);

  // -- Fault recovery (see DESIGN.md "Failure model and recovery") -----------

  /// The collective agreement point: all ranks either continue or throw the
  /// same typed error. Plain mpi::agreeOnError without crash tolerance; the
  /// liveness protocol (shrink + takeover on deaths) with it. Must be called
  /// at aligned program points by every live rank.
  void collectiveAgreeOnError(const mpi::CapturedError& err);

  // -- Fail-stop crash tolerance (TcioConfig::crash, DESIGN.md §8) -----------

  /// Fires the rank's scheduled crash at this point, if armed: the rank
  /// marks itself closed and unwinds with RankCrashedError — it never
  /// touches the file, the window, or a collective again (fail-stop).
  void crashPoint(CrashPoint point);
  [[noreturn]] void die(const char* where);

  /// Appends one WAL record per merged level-1 extent ahead of the level-2
  /// transfer (the kMidJournal crash point lives here: a rank dying
  /// mid-append leaves a torn tail).
  void journalExtents(SegmentId seg, const std::vector<Extent>& extents);

  /// Liveness-tracking agreement: runs epochs of mpi::agreeWithLiveness
  /// until the dead set stops growing, handling each batch of deaths
  /// (shrink, takeover, replay) as it is agreed. Returns the max-reduced
  /// error outcome instead of throwing it, so close() can release resources
  /// first. Throws RankCrashedError if *this* rank is declared dead
  /// (self-fence). Falls back to plain agreeOnError when crash tolerance is
  /// off.
  std::pair<std::int32_t, std::string> agreeAndRecover(mpi::CapturedError err);

  /// Recovery for one agreed batch of deaths (ranks of the *current*
  /// communicator): shrink to the survivors, deterministically reassign the
  /// dead ranks' segments (and any orphans they had adopted) round-robin
  /// over the live original ranks into spare window slots, rebuild node
  /// aggregation over the shrunk communicator, and replay journals for the
  /// segments this rank adopted.
  void handleDeaths(const std::vector<Rank>& dead_cur);

  /// Replays every original rank's journal for the adopted segments:
  /// into spare window slots before the drain, directly into the file (whole
  /// reconstructed segments, matching healthy drain semantics) after it.
  void replayOrphans(
      const std::vector<std::pair<SegmentId, std::int64_t>>& mine);

  /// Current owner (original-communicator rank) / local slot of segment `g`,
  /// takeover overlay included.
  Rank ownerOf(SegmentId g) const;
  std::int64_t slotOnOwner(SegmentId g) const;
  /// Rank of `orig` in the current (possibly shrunk) communicator. Identity
  /// without crash tolerance; fails on a dead rank (routing must go through
  /// ownerOf first).
  Rank curOf(Rank orig) const;
  /// Current window slot count: starts at segments_per_rank (doubled with
  /// crash tolerance for spare takeover slots) and grows without bound via
  /// growTakeoverCapacity when a crash batch needs more spares.
  std::int64_t slotCount() const { return slot_cap_; }

  /// Window-remap round: grows every slot to `new_cap` on THIS rank — the
  /// window memory is resized in place, data slots are relocated to their
  /// new displacements (the flag region in front grows), and the freed flag
  /// bytes are cleared. Called identically by every survivor inside the same
  /// agreed recovery step, so all live ranks address the new layout from the
  /// first post-recovery RMA epoch on; dead ranks' windows keep the old
  /// layout but are never addressed again.
  void growTakeoverCapacity(std::int64_t new_cap);
  /// (segment, local slot) pairs this rank owns: its original slots plus
  /// adopted orphans.
  std::vector<std::pair<SegmentId, std::int64_t>> ownedSlots() const;

  /// True when exchanges run through the two-sided staged path — either by
  /// configuration or because the RMA degradation ladder tripped.
  bool twoSidedExchange() const {
    return !cfg_.use_onesided || fallback_two_sided_;
  }

  /// Collective: trips the one-sided -> two-sided fallback once the
  /// network's RMA drop count passes the configured threshold (agreed by
  /// allreduce so every rank switches at the same collective call).
  void maybeFallBackToTwoSided();

  /// FS access with permanent-OST degradation: on OstFailedError, remap the
  /// failed chunks to surviving OSTs and retry once. Transients are already
  /// absorbed below, in FsClient's retry loop.
  void pwriteDegraded(Offset off, const std::byte* src, Bytes n);
  void preadDegraded(Offset off, std::byte* dst, Bytes n);

  /// Copies the client/network recovery counters into stats_.degraded.
  void syncRecoveryStats();

  // -- End-to-end integrity (TcioConfig::integrity, DESIGN.md §11) -----------

  /// One digest *run* taken at client put time, in flight between a level-1
  /// flush and the next collective's digest exchange. A run covers `count`
  /// equal-length pieces spaced `stride` bytes apart (count == 1 for a plain
  /// contiguous extent) under ONE streamed CRC — the canonical interleaved
  /// pattern digests a whole flush's worth of tiny strided extents per
  /// record instead of paying 32 wire bytes for every 4-byte element.
  struct DigestRec {
    std::int64_t seg = 0;
    Offset disp = 0;           // first piece's in-segment displacement
    std::uint32_t len = 0;     // bytes per piece
    std::uint32_t stride = 0;  // spacing between piece starts (0: count == 1)
    std::uint32_t count = 1;   // pieces in the run
    std::uint32_t crc = 0;     // CRC32 over the pieces' bytes, concatenated
  };
  static_assert(sizeof(DigestRec) == 32);

  /// Owner-side digest ledger entry: one run of an owned segment.
  struct LedgerEntry {
    Bytes len = 0;            // bytes per piece
    Offset stride = 0;        // spacing between piece starts (count > 1 only)
    std::int64_t count = 1;   // pieces in the run
    std::uint32_t crc = 0;    // CRC32 over the pieces, concatenated in order
  };

  /// Records digests of the level-1 buffer's merged extents (client put
  /// time, before any hop can corrupt them), coalescing contiguous or
  /// constant-stride neighbours into runs.
  void digestLevel1(SegmentId seg, const std::vector<Extent>& extents);
  /// Collective: moves every rank's pending digests to the segment owners —
  /// routed point-to-point under static ownership, broadcast in crash mode
  /// (takeovers change ownership under the writers' feet). Aligned with the
  /// flush / fetch / close exchanges, so it works in every transfer mode.
  void exchangeDigests();
  /// Folds one run into this owner's ledger. An older entry is superseded
  /// whole when any of its pieces actually intersects the new run — CRCs are
  /// not splittable, but interlocking strided runs from different writers
  /// coexist because their pieces never touch.
  void ledgerInsert(SegmentId seg, Offset disp, Bytes len, Offset stride,
                    std::int64_t count, std::uint32_t crc);
  /// Streams the CRC of `entry`'s pieces out of owned slot `slot`.
  std::uint32_t ledgerCrc(const std::byte* local, std::int64_t slot,
                          Offset disp, const LedgerEntry& entry) const;
  /// Verifies every ledgered extent of owned slot `slot` (segment `g`)
  /// against the window bytes; repairs from the WAL on mismatch; throws
  /// IntegrityError when repair fails.
  void verifySlot(SegmentId g, std::int64_t slot);
  /// WAL repair: re-applies every journaled record of segment `g` into the
  /// window, then re-verifies the ledger. Throws IntegrityError on failure.
  void repairSegment(SegmentId g, std::int64_t slot);
  /// Background scrubber: verifies up to scrub_segments_per_collective owned
  /// segments per call, round-robin. Failures land in `err` for the caller's
  /// agreement round.
  void scrubTick(mpi::CapturedError& err);
  /// Charges the virtual-time cost of a digest/verify pass over n bytes.
  void chargeChecksum(Bytes n);
  /// Seeded kWindow corruption: flips one bit inside a ledgered extent of an
  /// owned slot (consumes the arm only when a candidate exists).
  void maybeCorruptWindow();

  /// Tells the runtime checker this file's session ended without a clean
  /// close (agreed error), so drain coverage is skipped and a reopen starts
  /// a fresh checker session. No-op when the checker is off.
  void noteSessionAborted();

  mpi::Comm* comm_;
  fs::FsClient client_;
  fs::FsFile fsfile_;
  std::string name_;
  unsigned flags_;
  TcioConfig cfg_;
  SegmentMap map_;
  /// Window slots this rank provides (uniform across ranks). Grows at a
  /// takeover-capacity remap round; flags_region_ tracks it.
  std::int64_t slot_cap_;
  Bytes flags_region_;
  std::unique_ptr<mpi::Window> window_;
  std::unique_ptr<topo::NodeMap> node_map_;
  std::unique_ptr<topo::NodeAggregator> node_agg_;
  Level1Buffer level1_;
  std::vector<PendingRead> pending_reads_;
  SegmentId pending_segment_ = -1;  // lazy-read segment group
  /// Two-sided ablation staging: (absolute offset, bytes).
  std::vector<std::pair<Offset, std::vector<std::byte>>> staged_;
  Bytes staged_bytes_ = 0;
  Offset pointer_ = 0;
  Bytes local_max_written_ = 0;
  bool open_ = false;
  bool fallback_two_sided_ = false;
  /// Flush ordinal, used as the checker user tag for phase attribution.
  std::int64_t flush_calls_ = 0;
  TcioStats stats_;

  // -- Integrity state (inert unless integrity_on_) --------------------------
  bool integrity_on_ = false;
  std::unique_ptr<CorruptionPlan> corruption_;  // seeded, rank-salted
  std::vector<DigestRec> pending_digests_;      // since the last exchange
  /// Owner-side ledger: segment -> (in-segment displacement -> entry).
  std::map<SegmentId, std::map<Offset, LedgerEntry>> ledger_;
  std::int64_t scrub_cursor_ = 0;  // round-robin over owned slots

  // -- Crash-tolerance state (inert unless cfg_.crash.enabled) ---------------

  /// This rank's identity in the communicator the file was opened on.
  /// Segment ownership, window targets, and journal names are all defined
  /// over the *original* communicator; only collectives move to the shrunk
  /// one.
  Rank orig_rank_ = 0;
  int orig_size_ = 1;
  std::unique_ptr<CrashPlan> crash_plan_;
  std::unique_ptr<Journal> journal_;
  /// Shrunk communicators, kept alive for the life of the file (the window
  /// stays on the original communicator; node maps point into these).
  std::vector<std::unique_ptr<mpi::Comm>> shrunk_comms_;
  int shrink_context_base_ = -1;  // reserved context block (rank-0 bcast)
  int shrinks_ = 0;
  int epoch_ = 0;  // liveness epochs consumed (aligned across live ranks)
  std::vector<Rank> orig_of_cur_;  // current comm rank -> original rank
  std::vector<Rank> cur_of_orig_;  // original rank -> current rank (-1 dead)
  std::vector<bool> dead_;         // original rank -> declared dead?

  /// Takeover overlay: orphaned segment -> (new owner, spare slot on it),
  /// computed identically on every survivor.
  struct Takeover {
    Rank owner = -1;         // original-communicator rank
    std::int64_t slot = -1;  // spare window slot on that rank
  };
  std::map<SegmentId, Takeover> orphans_;
  std::vector<std::int64_t> next_spare_;  // per original rank
  std::int64_t takeover_rr_ = 0;  // round-robin cursor over live ranks
  bool drained_ = false;          // close() drained level-2 already
  Bytes final_fsize_ = 0;         // agreed file size (post-drain replays)
};

}  // namespace tcio::core
