// Umbrella header for the TCIO library.
#pragma once

#include "tcio/capi.h"         // IWYU pragma: export
#include "tcio/config.h"       // IWYU pragma: export
#include "tcio/file.h"         // IWYU pragma: export
#include "tcio/segment_map.h"  // IWYU pragma: export
