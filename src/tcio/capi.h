// The paper's Program 1 API, verbatim:
//
//   tcio_file* tcio_open(char* fname, int mode)
//   tcio_write(tcio_file* fh, void* data, int count, MPI_Datatype type)
//   tcio_write_at(tcio_file* fh, MPI_Offset offset, void* data, int count,
//                 MPI_Datatype type)
//   tcio_read(tcio_file* fh, void* data, int count, MPI_Datatype type)
//   tcio_read_at(tcio_file* fh, MPI_Offset offset, void* data, int count,
//                MPI_Datatype type)
//   tcio_seek(tcio_file* fh, MPI_Offset offset, int whence)
//   tcio_flush(tcio_file* fh)
//   tcio_fetch(tcio_file* fh)
//   tcio_close(tcio_file* fh)
//
// Because the simulated MPI job carries its communicator explicitly (there
// is no process-global MPI_COMM_WORLD in a simulation hosting many ranks in
// one process), a rank binds its communicator, file system, and TCIO
// configuration to the calling thread once with tcio_set_context(); the
// Program 1 calls then look exactly like the paper's.
#pragma once

#include "fs/filesystem.h"
#include "mpi/comm.h"
#include "mpi/datatype.h"
#include "tcio/config.h"

namespace tcio::core {
class File;
}

/// Opaque file handle (Program 1's tcio_file).
using tcio_file = tcio::core::File;

// Seek whence values (POSIX-style).
constexpr int TCIO_SEEK_SET = 0;
constexpr int TCIO_SEEK_CUR = 1;
constexpr int TCIO_SEEK_END = 2;

// Open modes (combine with |). Aliases of fs::OpenFlags.
constexpr int TCIO_RDONLY = 1;   // fs::kRead
constexpr int TCIO_WRONLY = 2;   // fs::kWrite
constexpr int TCIO_RDWR = 3;
constexpr int TCIO_CREATE = 4;   // fs::kCreate
constexpr int TCIO_TRUNC = 8;    // fs::kTruncate

/// Binds this rank thread's context; call once per rank before tcio_open.
void tcio_set_context(tcio::mpi::Comm& comm, tcio::fs::Filesystem& fsys,
                      tcio::core::TcioConfig cfg = {});

/// Fault-recovery counters, mirrored from the C++ TcioStats so a Program 1
/// caller can check degraded-mode health without including the C++ types.
/// All fields are zero in a healthy run.
struct tcio_stats_t {
  long long fs_transient_faults;   // TransientFsErrors this rank saw
  long long fs_retries;            // backoff-then-retry cycles
  long long fs_retry_giveups;      // retry budget exhausted
  long long chunks_remapped;       // failed-OST chunks failed over
  long long chunks_rebalanced;     // remapped chunks moved home again
  long long rma_drops;             // dropped RMA payloads (job-wide)
  long long fallback_exchanges;    // staged exchanges run post-fallback
  int two_sided_fallback;          // 1 once the RMA degradation ladder fired
  long long ranks_crashed;         // dead ranks agreed by liveness
  long long segments_taken_over;   // orphaned segments this rank adopted
  long long journal_records_replayed;  // WAL records replayed here
  long long journal_bytes_replayed;    // payload bytes those carried
  long long journal_torn_records;      // torn tails dropped during replay
  long long unjournaled_segments_lost; // adopted segments with no journal
  int degraded;  // 1 when any field above is nonzero
};

tcio_file* tcio_open(const char* fname, int mode);
/// Fills `out` with the file's current fault-recovery counters. Valid any
/// time between tcio_open and tcio_close; counters are synchronized at
/// collective points (flush/fetch/close).
void tcio_stats(tcio_file* fh, tcio_stats_t* out);
void tcio_write(tcio_file* fh, const void* data, int count,
                const tcio::mpi::Datatype& type);
void tcio_write_at(tcio_file* fh, tcio::Offset offset, const void* data,
                   int count, const tcio::mpi::Datatype& type);
void tcio_read(tcio_file* fh, void* data, int count,
               const tcio::mpi::Datatype& type);
void tcio_read_at(tcio_file* fh, tcio::Offset offset, void* data, int count,
                  const tcio::mpi::Datatype& type);
void tcio_seek(tcio_file* fh, tcio::Offset offset, int whence);
void tcio_flush(tcio_file* fh);
void tcio_fetch(tcio_file* fh);
void tcio_close(tcio_file* fh);
/// Like tcio_close, but fills `out` with the FINAL counters first. Crash
/// recovery (liveness agreement, takeover, journal replay) happens inside
/// close, so its counters are only observable through this variant —
/// tcio_close frees the handle before they could be read.
void tcio_close_stats(tcio_file* fh, tcio_stats_t* out);
