// Crash-consistent per-rank segment journal (write-ahead log).
//
// TCIO's level-2 buffering holds every segment's bytes in exactly one
// owner's window (paper §IV); a fail-stop crash between buffering and close
// would lose all of them. Following the standard LSM write-ahead recipe,
// each rank appends a CRC32-framed record (segment id, displacement, length,
// payload) to its own journal file on every level-1 -> level-2 flush, BEFORE
// the bytes move into the level-2 window. After a crash, the new owner of an
// orphaned segment replays the dead rank's journal — dropping the torn tail
// a mid-append crash leaves behind — so every journaled byte survives.
// A successful close commits (truncates) the journal.
//
// Frame layout v2 (little-endian, 40-byte header + payload):
//   u32 magic 'TCJ2' | u32 crc32(seg, disp, len, gen, payload) |
//   i64 seg | i64 disp | i64 len | u32 gen | u32 reserved | payload[len]
//
// `gen` is the adoption generation: 0 for a record appended by the segment's
// original owner, and n+1 when an adopter re-appends a generation-n record
// into its OWN journal while taking over a dead peer's shard. Replay after a
// cascaded crash (the adopter itself dies mid-replay) can therefore tell a
// first-hand record from a re-appended copy and dedup idempotently.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/types.h"
#include "fs/client.h"

namespace tcio::core {

class Journal {
 public:
  static constexpr std::uint32_t kMagic = 0x324a4354;  // "TCJ2"
  static constexpr Bytes kHeaderBytes = 40;

  /// One replayable record.
  struct Record {
    std::int64_t seg = 0;  // global segment id
    Offset disp = 0;       // displacement within the segment
    std::uint32_t gen = 0;  // adoption generation (0 = original append)
    std::vector<std::byte> payload;
  };

  /// Result of scanning a journal image.
  struct Parsed {
    std::vector<Record> records;
    /// Trailing records cut by a crash (bad magic / short frame / truncated
    /// payload). The scan stops at the first torn frame — the framing is
    /// unrecoverable past it (appends are sequential).
    std::int64_t torn_records = 0;
    /// Structurally complete records whose body fails its CRC: a silent bit
    /// flip on the journal device, not a torn append. The frame boundaries
    /// are intact, so the scan DROPS the record and continues — later
    /// records are still replayable.
    std::int64_t corrupt_records = 0;
    Bytes bytes_replayable = 0;  // payload bytes across intact records
  };

  /// Opens (creates + truncates) this rank's journal file.
  Journal(fs::FsClient& client, std::string path);

  Journal(const Journal&) = delete;
  Journal& operator=(const Journal&) = delete;

  /// Appends one framed record ahead of the level-2 transfer. When
  /// `torn_prefix` is >= 0, only that many leading bytes of the frame reach
  /// the device — the torn-write model for a rank dying mid-append. `gen` is
  /// the adoption generation (0 for first-hand appends; adopters re-append
  /// with the source record's generation + 1).
  void append(std::int64_t seg, Offset disp,
              std::span<const std::byte> payload,
              std::int64_t torn_prefix = -1, std::uint32_t gen = 0);

  /// Group commit. Between batchBegin() and batchEnd(), append() buffers
  /// frames in memory and batchEnd() pushes them to the journal device as
  /// ONE write — one latency charge per flush instead of one per record,
  /// which is what keeps integrity journaling affordable for workloads with
  /// thousands of tiny strided extents. A torn append flushes immediately
  /// (everything pending plus the torn prefix): the crash model needs the
  /// bytes on the device at the instant the rank dies.
  void batchBegin();
  void batchEnd();

  /// Commit: every journaled byte is durably in the file proper, so the log
  /// is truncated to empty (one cheap journal-device write of a zero
  /// header... modeled as a truncating reopen).
  void commit();

  /// Closes the underlying handle (no commit).
  void close();
  ~Journal();

  const std::string& path() const { return path_; }
  Bytes bytesAppended() const { return cursor_; }
  std::int64_t recordsAppended() const { return records_; }

  /// Scans a raw journal image (see Parsed).
  static Parsed parse(std::span<const std::byte> raw);

  /// Reads `path` through `client` (costed reads — recovery pays real I/O
  /// time) and scans it. Returns an empty Parsed when the file is absent.
  static Parsed readAndParse(fs::FsClient& client, const std::string& path);

 private:
  void flushBatch();

  fs::FsClient* client_;
  std::string path_;
  fs::FsFile file_;
  Offset cursor_ = 0;
  std::int64_t records_ = 0;
  std::vector<std::byte> batch_;
  bool batching_ = false;
};

/// Journal file name for `rank`'s log of `file` (rank = rank within the
/// communicator the file was opened on — ownership is defined over the
/// original communicator, so takeover peers can reconstruct the name).
std::string journalPath(const std::string& file, Rank rank);

}  // namespace tcio::core
