// The paper's equations (1)-(3): round-robin mapping from file offsets to
// (owner rank, segment slot, in-segment displacement) in O(1).
//
//   ID_rank    = (offset / SIZE_segment) % NUM_processes          (1)
//   ID_segment = (offset / SIZE_segment) / NUM_processes          (2)
//   DISP_block = offset % SIZE_segment                            (3)
#pragma once

#include "common/error.h"
#include "common/types.h"

namespace tcio::core {

class SegmentMap {
 public:
  SegmentMap(Bytes segment_size, int num_ranks)
      : segment_size_(segment_size), num_ranks_(num_ranks) {
    TCIO_CHECK(segment_size_ > 0);
    TCIO_CHECK(num_ranks_ > 0);
  }

  Bytes segmentSize() const { return segment_size_; }
  int numRanks() const { return num_ranks_; }

  /// Global segment index of a file offset.
  SegmentId segmentOf(Offset off) const { return off / segment_size_; }

  /// Eq. (1): rank owning global segment `g`.
  Rank rankOf(SegmentId g) const {
    return static_cast<Rank>(g % num_ranks_);
  }

  /// Eq. (2): slot of `g` within its owner's level-2 buffer.
  std::int64_t slotOf(SegmentId g) const { return g / num_ranks_; }

  /// Eq. (3): displacement of `off` inside its segment.
  Offset dispOf(Offset off) const { return off % segment_size_; }

  /// File offset where global segment `g` starts.
  Offset baseOf(SegmentId g) const { return g * segment_size_; }

  /// Global segment index for (owner, slot) — inverse of (1)+(2).
  SegmentId segmentFor(Rank owner, std::int64_t slot) const {
    return slot * num_ranks_ + owner;
  }

 private:
  Bytes segment_size_;
  int num_ranks_;
};

}  // namespace tcio::core
