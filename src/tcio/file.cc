#include "tcio/file.h"

#include <algorithm>
#include <cstring>
#include <map>

namespace tcio::core {

namespace {
constexpr std::byte kFlagSet{1};

struct BlockMeta {
  Offset off = 0;
  Bytes len = 0;
};
}  // namespace

File::File(mpi::Comm& comm, fs::Filesystem& fsys, const std::string& name,
           unsigned flags, TcioConfig cfg)
    : comm_(&comm),
      client_(fsys, comm.proc()),
      name_(name),
      flags_(flags),
      cfg_(cfg),
      map_(cfg.segment_size, comm.size()),
      flags_region_(cfg.segments_per_rank * kFlagBytes),
      level1_(cfg.segment_size) {
  TCIO_CHECK(cfg_.segment_size > 0);
  TCIO_CHECK(cfg_.segments_per_rank > 0);
  TCIO_CHECK_MSG(cfg_.use_onesided || cfg_.lazy_reads,
                 "two-sided exchange requires lazy reads (no independent "
                 "materialization path exists without one-sided access)");
  // Collective open: rank 0 creates/truncates, everyone else opens after.
  if (comm_->rank() == 0) {
    fsfile_ = client_.open(name_, flags_);
    comm_->barrier();
  } else {
    comm_->barrier();
    fsfile_ = client_.open(name_, flags_ & ~(fs::kCreate | fs::kTruncate));
  }
  window_ = std::make_unique<mpi::Window>(mpi::Window::create(
      *comm_, flags_region_ + cfg_.segments_per_rank * cfg_.segment_size));
  comm_->memory().allocate(cfg_.segment_size, "TCIO level-1 buffer");
  open_ = true;
}

File::~File() {
  if (open_) {
    try {
      close();
    } catch (...) {
      // Destructor must not throw; an incomplete collective close at
      // unwind time is already a failed simulation.
    }
  }
}

// -- Writes -------------------------------------------------------------------

void File::write(const void* data, std::int64_t count,
                 const mpi::Datatype& type) {
  const Bytes n = count * type.size();
  writeBytes(pointer_, static_cast<const std::byte*>(data), n);
  pointer_ += n;
}

void File::writeAt(Offset off, const void* data, std::int64_t count,
                   const mpi::Datatype& type) {
  writeBytes(off, static_cast<const std::byte*>(data), count * type.size());
}

void File::writeAt(Offset off, const void* data, Bytes n) {
  writeBytes(off, static_cast<const std::byte*>(data), n);
}

void File::writeBytes(Offset off, const std::byte* src, Bytes n) {
  TCIO_CHECK_MSG(open_, "write on closed TCIO file");
  TCIO_CHECK_MSG((flags_ & fs::kWrite) != 0, "write on read-only TCIO file");
  TCIO_CHECK(off >= 0 && n >= 0);
  TCIO_CHECK_MSG(off + n <= capacity(),
                 "write beyond TCIO capacity — raise segments_per_rank");
  if (n == 0) return;
  ++stats_.writes;
  stats_.bytes_written += n;
  local_max_written_ = std::max(local_max_written_, off + n);
  comm_->chargeCopy(n);
  while (n > 0) {
    const SegmentId seg = map_.segmentOf(off);
    const Offset disp = map_.dispOf(off);
    const Bytes take = std::min(n, cfg_.segment_size - disp);
    if (level1_.alignedSegment() != seg) {
      flushLevel1();
      level1_.align(seg);
    }
    level1_.put(disp, src, take);
    off += take;
    src += take;
    n -= take;
  }
}

void File::flushLevel1() {
  if (level1_.empty()) {
    level1_.reset();
    return;
  }
  ++stats_.level1_flushes;
  const SegmentId seg = level1_.alignedSegment();
  const std::vector<Extent> extents = level1_.mergedExtents();
  const SimTime flush_begin = comm_->proc().now();
  if (cfg_.use_onesided) {
    const Rank owner = map_.rankOf(seg);
    const std::int64_t slot = map_.slotOf(seg);
    std::vector<mpi::Window::PutBlock> blocks;
    blocks.reserve(extents.size() + 1);
    blocks.push_back({flagsDisp(slot, kDirtyFlag), &kFlagSet, 1});
    for (const Extent& e : extents) {
      blocks.push_back(
          {dataDisp(slot, e.begin), level1_.data() + e.begin, e.size()});
    }
    // Shared lock: concurrent flushes from different ranks write disjoint
    // bytes of the segment (their own blocks), which MPI permits under
    // shared passive-target epochs — and it keeps flushes from convoying
    // behind one another when every rank walks the segments in file order.
    window_->lock(mpi::LockType::kShared, owner);
    window_->putIndexed(owner, blocks);
    window_->unlock(owner);
    if (comm_->world().trace().enabled()) {
      sim::Proc& p = comm_->proc();
      Bytes n = 0;
      for (const Extent& e : extents) n += e.size();
      p.atomic([&] {
        comm_->world().trace().record(p.rank(), flush_begin, p.now(),
                                      "tcio.flush", n);
      });
    }
  } else {
    // Two-sided ablation: stage locally until the next collective exchange.
    for (const Extent& e : extents) {
      staged_.emplace_back(
          map_.baseOf(seg) + e.begin,
          std::vector<std::byte>(level1_.data() + e.begin,
                                 level1_.data() + e.end));
      staged_bytes_ += e.size();
      comm_->memory().allocate(e.size(), "TCIO two-sided staging");
    }
  }
  level1_.reset();
}

// -- Reads --------------------------------------------------------------------

void File::read(void* data, std::int64_t count, const mpi::Datatype& type) {
  const Bytes n = count * type.size();
  recordRead(pointer_, static_cast<std::byte*>(data), n);
  pointer_ += n;
}

void File::readAt(Offset off, void* data, std::int64_t count,
                  const mpi::Datatype& type) {
  recordRead(off, static_cast<std::byte*>(data), count * type.size());
}

void File::readAt(Offset off, void* data, Bytes n) {
  recordRead(off, static_cast<std::byte*>(data), n);
}

void File::recordRead(Offset off, std::byte* dst, Bytes n) {
  TCIO_CHECK_MSG(open_, "read on closed TCIO file");
  TCIO_CHECK_MSG((flags_ & fs::kRead) != 0, "read on write-only TCIO file");
  TCIO_CHECK(off >= 0 && n >= 0);
  TCIO_CHECK_MSG(off + n <= capacity(),
                 "read beyond TCIO capacity — raise segments_per_rank");
  if (n == 0) return;
  ++stats_.reads;
  stats_.bytes_read += n;
  while (n > 0) {
    const SegmentId seg = map_.segmentOf(off);
    const Bytes take = std::min(n, cfg_.segment_size - map_.dispOf(off));
    // Session writes still sitting in level-1 must reach level-2 before any
    // read of the same segment resolves.
    if (level1_.alignedSegment() == seg && !level1_.empty()) {
      flushLevel1();
    }
    const PendingRead piece{off, take, dst};
    if (!cfg_.lazy_reads) {
      independentFetch({piece});
    } else if (cfg_.auto_fetch_on_segment_exit && cfg_.use_onesided &&
               pending_segment_ != -1 && seg != pending_segment_) {
      // The cached read domain left the level-1 window: resolve the
      // accumulated group independently (paper §IV.A trigger), then start a
      // new group.
      std::vector<PendingRead> group;
      group.swap(pending_reads_);
      independentFetch(std::move(group));
      pending_segment_ = seg;
      pending_reads_.push_back(piece);
    } else {
      pending_segment_ = seg;
      pending_reads_.push_back(piece);
    }
    off += take;
    dst += take;
    n -= take;
  }
}

void File::ensureLoadedIndependent(SegmentId seg) {
  const Rank owner = map_.rankOf(seg);
  const std::int64_t slot = map_.slotOf(seg);
  std::byte flags[2];
  window_->get(owner, flagsDisp(slot, 0), flags, kFlagBytes);
  if (flags[kDirtyFlag] != std::byte{0} || flags[kLoadedFlag] != std::byte{0}) {
    return;  // resident (session writes or a previous load)
  }
  // Load the segment from the file ourselves and publish it through the
  // owner's window — pure one-sided, no remote progress needed.
  const Offset base = map_.baseOf(seg);
  const Bytes fsize = client_.size(fsfile_);
  const Bytes len = std::clamp<Bytes>(fsize - base, 0, cfg_.segment_size);
  std::vector<std::byte> tmp(static_cast<std::size_t>(len));
  if (len > 0) client_.pread(fsfile_, base, tmp.data(), len);
  std::vector<mpi::Window::PutBlock> blocks;
  blocks.push_back({flagsDisp(slot, kLoadedFlag), &kFlagSet, 1});
  if (len > 0) blocks.push_back({dataDisp(slot, 0), tmp.data(), len});
  window_->putIndexed(owner, blocks);
}

void File::independentFetch(std::vector<PendingRead> reads) {
  TCIO_CHECK_MSG(cfg_.use_onesided,
                 "independent fetch requires one-sided mode");
  if (reads.empty()) return;
  ++stats_.independent_fetches;
  // Group by segment; each segment is handled under one exclusive lock of
  // its owner (exclusive because we may have to load-and-publish).
  std::map<SegmentId, std::vector<PendingRead>> by_seg;
  for (const PendingRead& r : reads) {
    by_seg[map_.segmentOf(r.off)].push_back(r);
  }
  for (auto& [seg, group] : by_seg) {
    const Rank owner = map_.rankOf(seg);
    const std::int64_t slot = map_.slotOf(seg);
    std::vector<mpi::Window::GetBlock> blocks;
    blocks.reserve(group.size());
    for (const PendingRead& r : group) {
      blocks.push_back({dataDisp(slot, map_.dispOf(r.off)), r.dst, r.len});
    }
    // Fast path: under a shared lock, check residency and gather. Only a
    // non-resident segment needs the exclusive load-and-publish epoch.
    std::byte flags[2];
    window_->lock(mpi::LockType::kShared, owner);
    window_->get(owner, flagsDisp(slot, 0), flags, kFlagBytes);
    const bool resident = flags[kDirtyFlag] != std::byte{0} ||
                          flags[kLoadedFlag] != std::byte{0};
    if (resident) {
      window_->getIndexed(owner, blocks);
      window_->unlock(owner);
      continue;
    }
    window_->unlock(owner);
    window_->lock(mpi::LockType::kExclusive, owner);
    ensureLoadedIndependent(seg);  // re-checks under the exclusive lock
    window_->getIndexed(owner, blocks);
    window_->unlock(owner);
  }
}

void File::gatherPending(std::vector<PendingRead>& reads) {
  // One shared-lock epoch and one coalesced get per owner.
  std::map<Rank, std::vector<mpi::Window::GetBlock>> by_owner;
  for (const PendingRead& r : reads) {
    const SegmentId seg = map_.segmentOf(r.off);
    by_owner[map_.rankOf(seg)].push_back(
        {dataDisp(map_.slotOf(seg), map_.dispOf(r.off)), r.dst, r.len});
  }
  for (auto& [owner, blocks] : by_owner) {
    window_->lock(mpi::LockType::kShared, owner);
    window_->getIndexed(owner, blocks);
    window_->unlock(owner);
  }
}

void File::collectiveFetch() {
  ++stats_.collective_fetches;
  const SimTime fetch_begin = comm_->proc().now();
  if (cfg_.use_onesided) {
    flushLevel1();
  } else {
    exchangeStagedWrites();
  }
  // Union of needed segments across ranks.
  const std::int64_t total_segs =
      cfg_.segments_per_rank * static_cast<std::int64_t>(comm_->size());
  std::vector<std::uint64_t> bitmap(
      static_cast<std::size_t>((total_segs + 63) / 64), 0);
  for (const PendingRead& r : pending_reads_) {
    // A pending piece never crosses a segment boundary (recordRead splits).
    const SegmentId g = map_.segmentOf(r.off);
    bitmap[static_cast<std::size_t>(g / 64)] |= 1ULL << (g % 64);
  }
  comm_->allreduce(bitmap.data(), static_cast<std::int64_t>(bitmap.size()),
                   mpi::ReduceOp::kBitOr);
  // Owners load their needed, non-resident segments with large file reads.
  const Bytes fsize = client_.size(fsfile_);
  std::byte* local = window_->localData();
  for (std::int64_t slot = 0; slot < cfg_.segments_per_rank; ++slot) {
    const SegmentId g = map_.segmentFor(comm_->rank(), slot);
    if ((bitmap[static_cast<std::size_t>(g / 64)] & (1ULL << (g % 64))) == 0) {
      continue;
    }
    std::byte& dirty = local[flagsDisp(slot, kDirtyFlag)];
    std::byte& loaded = local[flagsDisp(slot, kLoadedFlag)];
    if (dirty != std::byte{0} || loaded != std::byte{0}) continue;
    const Offset base = map_.baseOf(g);
    const Bytes len = std::clamp<Bytes>(fsize - base, 0, cfg_.segment_size);
    if (len > 0) {
      client_.pread(fsfile_, base, local + dataDisp(slot, 0), len);
    }
    loaded = kFlagSet;
  }
  comm_->barrier();
  if (cfg_.use_onesided) {
    gatherPending(pending_reads_);
  } else {
    // Two-sided reply exchange: ship requests to owners, owners answer from
    // their local windows.
    const int P = comm_->size();
    std::vector<std::vector<std::byte>> req_meta(static_cast<std::size_t>(P));
    for (const PendingRead& r : pending_reads_) {
      const BlockMeta m{r.off, r.len};
      const auto owner =
          static_cast<std::size_t>(map_.rankOf(map_.segmentOf(r.off)));
      const auto* raw = reinterpret_cast<const std::byte*>(&m);
      req_meta[owner].insert(req_meta[owner].end(), raw, raw + sizeof(m));
    }
    const auto exchangeBuffers =
        [&](const std::vector<std::vector<std::byte>>& per_dst,
            std::vector<Bytes>& rcounts, std::vector<Offset>& rdispls) {
          const auto sp = static_cast<std::size_t>(P);
          std::vector<Bytes> scnt(sp), szs(sp), szr(sp), c8(sp, 8);
          std::vector<Offset> sdsp(sp), d8(sp);
          for (std::size_t i = 0; i < sp; ++i) {
            szs[i] = static_cast<Bytes>(per_dst[i].size());
            d8[i] = static_cast<Offset>(i * 8);
          }
          comm_->alltoallv(szs.data(), c8, d8, szr.data(), c8, d8);
          Bytes stot = 0, rtot = 0;
          std::vector<std::byte> sendbuf;
          rcounts.assign(sp, 0);
          rdispls.assign(sp, 0);
          for (std::size_t i = 0; i < sp; ++i) {
            scnt[i] = szs[i];
            sdsp[i] = stot;
            stot += szs[i];
            rcounts[i] = szr[i];
            rdispls[i] = rtot;
            rtot += szr[i];
          }
          for (const auto& v : per_dst) {
            sendbuf.insert(sendbuf.end(), v.begin(), v.end());
          }
          std::vector<std::byte> recv(static_cast<std::size_t>(rtot));
          comm_->alltoallv(sendbuf.data(), scnt, sdsp, recv.data(), rcounts,
                           rdispls);
          return recv;
        };
    std::vector<Bytes> mcounts;
    std::vector<Offset> mdispls;
    const std::vector<std::byte> got_meta =
        exchangeBuffers(req_meta, mcounts, mdispls);
    // Answer each requester from the local window.
    std::vector<std::vector<std::byte>> replies(static_cast<std::size_t>(P));
    for (int src = 0; src < P; ++src) {
      const auto s = static_cast<std::size_t>(src);
      const auto* blocks =
          reinterpret_cast<const BlockMeta*>(got_meta.data() + mdispls[s]);
      const std::size_t nb =
          static_cast<std::size_t>(mcounts[s]) / sizeof(BlockMeta);
      for (std::size_t i = 0; i < nb; ++i) {
        const SegmentId g = map_.segmentOf(blocks[i].off);
        const std::byte* from =
            local + dataDisp(map_.slotOf(g), map_.dispOf(blocks[i].off));
        replies[s].insert(replies[s].end(), from, from + blocks[i].len);
      }
    }
    std::vector<Bytes> rcounts;
    std::vector<Offset> rdispls;
    const std::vector<std::byte> payload =
        exchangeBuffers(replies, rcounts, rdispls);
    // Scatter: replies from each owner arrive in my request order.
    std::vector<Offset> cursor(rdispls.begin(), rdispls.end());
    for (const PendingRead& r : pending_reads_) {
      const auto owner =
          static_cast<std::size_t>(map_.rankOf(map_.segmentOf(r.off)));
      std::memcpy(r.dst, payload.data() + cursor[owner],
                  static_cast<std::size_t>(r.len));
      cursor[owner] += r.len;
    }
    comm_->chargeCopy(static_cast<Bytes>(payload.size()));
  }
  if (comm_->world().trace().enabled()) {
    sim::Proc& p = comm_->proc();
    Bytes n = 0;
    for (const PendingRead& r : pending_reads_) n += r.len;
    p.atomic([&] {
      comm_->world().trace().record(p.rank(), fetch_begin, p.now(),
                                    "tcio.fetch", n);
    });
  }
  pending_reads_.clear();
  pending_segment_ = -1;
}

// -- Collectives --------------------------------------------------------------

void File::seek(Offset off, Whence whence) {
  switch (whence) {
    case Whence::kSet: pointer_ = off; break;
    case Whence::kCur: pointer_ += off; break;
    case Whence::kEnd:
      pointer_ = std::max(client_.size(fsfile_), local_max_written_) + off;
      break;
  }
  TCIO_CHECK(pointer_ >= 0);
}

void File::flush() {
  TCIO_CHECK_MSG(open_, "flush on closed TCIO file");
  if (cfg_.use_onesided) {
    flushLevel1();
  } else {
    exchangeStagedWrites();
  }
  comm_->barrier();  // tcio_flush is collective (paper §IV.B)
}

void File::fetch() {
  TCIO_CHECK_MSG(open_, "fetch on closed TCIO file");
  collectiveFetch();
}

void File::exchangeStagedWrites() {
  flushLevel1();  // move any level-1 residue into the staging area
  const int P = comm_->size();
  const auto sp = static_cast<std::size_t>(P);
  std::vector<std::vector<std::byte>> meta(sp), payload(sp);
  for (const auto& [off, bytes] : staged_) {
    const SegmentId g = map_.segmentOf(off);
    const auto owner = static_cast<std::size_t>(map_.rankOf(g));
    const BlockMeta m{off, static_cast<Bytes>(bytes.size())};
    const auto* raw = reinterpret_cast<const std::byte*>(&m);
    meta[owner].insert(meta[owner].end(), raw, raw + sizeof(m));
    payload[owner].insert(payload[owner].end(), bytes.begin(), bytes.end());
  }
  auto exchange = [&](const std::vector<std::vector<std::byte>>& per_dst,
                      std::vector<Bytes>& rcounts,
                      std::vector<Offset>& rdispls) {
    std::vector<Bytes> scnt(sp), szs(sp), szr(sp), c8(sp, 8);
    std::vector<Offset> sdsp(sp), d8(sp);
    for (std::size_t i = 0; i < sp; ++i) {
      szs[i] = static_cast<Bytes>(per_dst[i].size());
      d8[i] = static_cast<Offset>(i * 8);
    }
    comm_->alltoallv(szs.data(), c8, d8, szr.data(), c8, d8);
    Bytes stot = 0, rtot = 0;
    std::vector<std::byte> sendbuf;
    rcounts.assign(sp, 0);
    rdispls.assign(sp, 0);
    for (std::size_t i = 0; i < sp; ++i) {
      scnt[i] = szs[i];
      sdsp[i] = stot;
      stot += szs[i];
      rcounts[i] = szr[i];
      rdispls[i] = rtot;
      rtot += szr[i];
    }
    for (const auto& v : per_dst) {
      sendbuf.insert(sendbuf.end(), v.begin(), v.end());
    }
    std::vector<std::byte> recv(static_cast<std::size_t>(rtot));
    comm_->alltoallv(sendbuf.data(), scnt, sdsp, recv.data(), rcounts,
                     rdispls);
    return recv;
  };
  std::vector<Bytes> mcnt, pcnt;
  std::vector<Offset> mdsp, pdsp;
  const auto got_meta = exchange(meta, mcnt, mdsp);
  const auto got_payload = exchange(payload, pcnt, pdsp);
  // Apply received blocks into the local window.
  std::byte* local = window_->localData();
  for (int src = 0; src < P; ++src) {
    const auto s = static_cast<std::size_t>(src);
    const auto* blocks =
        reinterpret_cast<const BlockMeta*>(got_meta.data() + mdsp[s]);
    const std::size_t nb =
        static_cast<std::size_t>(mcnt[s]) / sizeof(BlockMeta);
    const std::byte* from = got_payload.data() + pdsp[s];
    for (std::size_t i = 0; i < nb; ++i) {
      const SegmentId g = map_.segmentOf(blocks[i].off);
      const std::int64_t slot = map_.slotOf(g);
      std::memcpy(local + dataDisp(slot, map_.dispOf(blocks[i].off)), from,
                  static_cast<std::size_t>(blocks[i].len));
      from += blocks[i].len;
      local[flagsDisp(slot, kDirtyFlag)] = kFlagSet;
    }
  }
  comm_->chargeCopy(static_cast<Bytes>(got_payload.size()));
  comm_->memory().release(staged_bytes_);
  staged_.clear();
  staged_bytes_ = 0;
}

void File::close() {
  if (!open_) return;
  // Mark closed up front: if any step below throws, the destructor must not
  // attempt the collective sequence again mid-unwind (the other ranks are no
  // longer at a matching program point).
  open_ = false;
  if ((flags_ & fs::kRead) != 0) {
    collectiveFetch();  // resolve any pending lazy reads
  }
  if (cfg_.use_onesided) {
    flushLevel1();
  } else {
    exchangeStagedWrites();
  }
  // Aggregate file size across ranks (pre-existing contents included).
  std::int64_t fsize = std::max(local_max_written_, client_.size(fsfile_));
  comm_->allreduce(&fsize, 1, mpi::ReduceOp::kMax);
  comm_->barrier();  // paper: synchronize before draining level-2
  if ((flags_ & fs::kWrite) != 0) {
    drainToFs(fsize);
  }
  comm_->barrier();
  client_.close(fsfile_);
  comm_->memory().release(cfg_.segment_size);  // level-1 buffer
  comm_->memory().release(window_->localSize());
  window_.reset();
  open_ = false;
}

void File::drainToFs(Bytes file_size) {
  const std::byte* local = window_->localData();
  for (std::int64_t slot = 0; slot < cfg_.segments_per_rank; ++slot) {
    if (local[flagsDisp(slot, kDirtyFlag)] == std::byte{0}) continue;
    const SegmentId g = map_.segmentFor(comm_->rank(), slot);
    const Offset base = map_.baseOf(g);
    if (base >= file_size) continue;
    const Bytes len = std::min(cfg_.segment_size, file_size - base);
    client_.pwrite(fsfile_, base, local + dataDisp(slot, 0), len);
  }
}

}  // namespace tcio::core
