#include "tcio/file.h"

#include <algorithm>
#include <cstring>
#include <map>
#include <set>

namespace tcio::core {

namespace {
constexpr std::byte kFlagSet{1};

struct BlockMeta {
  Offset off = 0;
  Bytes len = 0;
};

void appendBytes(std::vector<std::byte>& out, const void* src, std::size_t n) {
  const auto* p = static_cast<const std::byte*>(src);
  out.insert(out.end(), p, p + n);
}
}  // namespace

File::File(mpi::Comm& comm, fs::Filesystem& fsys, const std::string& name,
           unsigned flags, TcioConfig cfg)
    : comm_(&comm),
      client_(fsys, comm.proc()),
      name_(name),
      flags_(flags),
      cfg_(cfg),
      map_(cfg.segment_size, comm.size()),
      flags_region_(cfg.segments_per_rank * kFlagBytes),
      level1_(cfg.segment_size) {
  TCIO_CHECK(cfg_.segment_size > 0);
  TCIO_CHECK(cfg_.segments_per_rank > 0);
  TCIO_CHECK_MSG(cfg_.use_onesided || cfg_.lazy_reads,
                 "two-sided exchange requires lazy reads (no independent "
                 "materialization path exists without one-sided access)");
  TCIO_CHECK_MSG(!cfg_.node_aggregation ||
                     (cfg_.use_onesided && cfg_.lazy_reads &&
                      !cfg_.auto_fetch_on_segment_exit),
                 "node aggregation stages data until the next collective "
                 "call, so it requires one-sided mode with lazy reads and no "
                 "independent auto-fetch");
  // Fault plan and retry policy must be in place before the first FS
  // operation. The plan lands in the shared Filesystem (first open wins, so
  // all ranks share one deterministic schedule).
  if (cfg_.faults.enabled) client_.installFaultPlan(cfg_.faults);
  client_.setRetryPolicy(cfg_.retry);
  // Collective open: rank 0 creates/truncates, everyone else opens after.
  // Open failures (e.g. FileNotFound in read mode) are captured and agreed
  // so every rank reaches the barrier and throws the same typed error —
  // rank 0 must never abandon peers already waiting inside the barrier.
  mpi::CapturedError open_err;
  if (comm_->rank() == 0) {
    try {
      fsfile_ = client_.open(name_, flags_);
    } catch (const std::exception& e) {
      open_err.capture(e);
    }
  }
  comm_->barrier();
  if (comm_->rank() != 0) {
    try {
      fsfile_ = client_.open(name_, flags_ & ~(fs::kCreate | fs::kTruncate));
    } catch (const std::exception& e) {
      open_err.capture(e);
    }
  }
  mpi::agreeOnError(*comm_, open_err);
  window_ = std::make_unique<mpi::Window>(mpi::Window::create(
      *comm_, flags_region_ + cfg_.segments_per_rank * cfg_.segment_size));
  if (cfg_.node_aggregation) {
    node_map_ = std::make_unique<topo::NodeMap>(*comm_);
    Bytes slot = cfg_.node_agg_slot_bytes;
    if (slot == 0) {
      slot = static_cast<Bytes>(node_map_->maxNodeSize()) * cfg_.segment_size +
             4096;
    }
    node_agg_ = std::make_unique<topo::NodeAggregator>(*node_map_, slot);
  }
  comm_->memory().allocate(cfg_.segment_size, "TCIO level-1 buffer");
  open_ = true;
}

File::~File() {
  if (open_) {
    try {
      close();
    } catch (...) {
      // Destructor must not throw; an incomplete collective close at
      // unwind time is already a failed simulation.
    }
  }
}

// -- Writes -------------------------------------------------------------------

void File::write(const void* data, std::int64_t count,
                 const mpi::Datatype& type) {
  const Bytes n = count * type.size();
  writeBytes(pointer_, static_cast<const std::byte*>(data), n);
  pointer_ += n;
}

void File::writeAt(Offset off, const void* data, std::int64_t count,
                   const mpi::Datatype& type) {
  writeBytes(off, static_cast<const std::byte*>(data), count * type.size());
}

void File::writeAt(Offset off, const void* data, Bytes n) {
  writeBytes(off, static_cast<const std::byte*>(data), n);
}

void File::writeBytes(Offset off, const std::byte* src, Bytes n) {
  TCIO_CHECK_MSG(open_, "write on closed TCIO file");
  TCIO_CHECK_MSG((flags_ & fs::kWrite) != 0, "write on read-only TCIO file");
  TCIO_CHECK(off >= 0 && n >= 0);
  TCIO_CHECK_MSG(off + n <= capacity(),
                 "write beyond TCIO capacity — raise segments_per_rank");
  if (n == 0) return;
  ++stats_.writes;
  stats_.bytes_written += n;
  local_max_written_ = std::max(local_max_written_, off + n);
  comm_->chargeCopy(n);
  while (n > 0) {
    const SegmentId seg = map_.segmentOf(off);
    const Offset disp = map_.dispOf(off);
    const Bytes take = std::min(n, cfg_.segment_size - disp);
    if (level1_.alignedSegment() != seg) {
      flushLevel1();
      level1_.align(seg);
    }
    level1_.put(disp, src, take);
    off += take;
    src += take;
    n -= take;
  }
}

void File::flushLevel1() {
  if (level1_.empty()) {
    level1_.reset();
    return;
  }
  ++stats_.level1_flushes;
  const SegmentId seg = level1_.alignedSegment();
  const std::vector<Extent> extents = level1_.mergedExtents();
  const SimTime flush_begin = comm_->proc().now();
  if (!twoSidedExchange() && !cfg_.node_aggregation) {
    const Rank owner = map_.rankOf(seg);
    const std::int64_t slot = map_.slotOf(seg);
    std::vector<mpi::Window::PutBlock> blocks;
    blocks.reserve(extents.size() + 1);
    blocks.push_back({flagsDisp(slot, kDirtyFlag), &kFlagSet, 1});
    for (const Extent& e : extents) {
      blocks.push_back(
          {dataDisp(slot, e.begin), level1_.data() + e.begin, e.size()});
    }
    // Shared lock: concurrent flushes from different ranks write disjoint
    // bytes of the segment (their own blocks), which MPI permits under
    // shared passive-target epochs — and it keeps flushes from convoying
    // behind one another when every rank walks the segments in file order.
    window_->lock(mpi::LockType::kShared, owner);
    window_->putIndexed(owner, blocks);
    window_->unlock(owner);
    if (comm_->world().trace().enabled()) {
      sim::Proc& p = comm_->proc();
      Bytes n = 0;
      for (const Extent& e : extents) n += e.size();
      p.atomic([&] {
        comm_->world().trace().record(p.rank(), flush_begin, p.now(),
                                      "tcio.flush", n);
      });
    }
  } else {
    // Two-sided ablation / node aggregation: stage locally until the next
    // collective exchange.
    for (const Extent& e : extents) {
      staged_.emplace_back(
          map_.baseOf(seg) + e.begin,
          std::vector<std::byte>(level1_.data() + e.begin,
                                 level1_.data() + e.end));
      staged_bytes_ += e.size();
      comm_->memory().allocate(e.size(), "TCIO staged writes");
    }
    if (cfg_.node_aggregation &&
        node_map_->nodeOf(map_.rankOf(seg)) != node_map_->myNode()) {
      // The per-rank shuffle would have put one epoch for this flush on the
      // NIC; the leader exchange replaces it.
      ++stats_.internode_messages_saved;
    }
  }
  level1_.reset();
}

// -- Reads --------------------------------------------------------------------

void File::read(void* data, std::int64_t count, const mpi::Datatype& type) {
  const Bytes n = count * type.size();
  recordRead(pointer_, static_cast<std::byte*>(data), n);
  pointer_ += n;
}

void File::readAt(Offset off, void* data, std::int64_t count,
                  const mpi::Datatype& type) {
  recordRead(off, static_cast<std::byte*>(data), count * type.size());
}

void File::readAt(Offset off, void* data, Bytes n) {
  recordRead(off, static_cast<std::byte*>(data), n);
}

void File::recordRead(Offset off, std::byte* dst, Bytes n) {
  TCIO_CHECK_MSG(open_, "read on closed TCIO file");
  TCIO_CHECK_MSG((flags_ & fs::kRead) != 0, "read on write-only TCIO file");
  TCIO_CHECK(off >= 0 && n >= 0);
  TCIO_CHECK_MSG(off + n <= capacity(),
                 "read beyond TCIO capacity — raise segments_per_rank");
  if (n == 0) return;
  ++stats_.reads;
  stats_.bytes_read += n;
  while (n > 0) {
    const SegmentId seg = map_.segmentOf(off);
    const Bytes take = std::min(n, cfg_.segment_size - map_.dispOf(off));
    // Session writes still sitting in level-1 must reach level-2 before any
    // read of the same segment resolves.
    if (level1_.alignedSegment() == seg && !level1_.empty()) {
      flushLevel1();
    }
    const PendingRead piece{off, take, dst};
    if (!cfg_.lazy_reads) {
      independentFetch({piece});
    } else if (cfg_.auto_fetch_on_segment_exit && cfg_.use_onesided &&
               pending_segment_ != -1 && seg != pending_segment_) {
      // The cached read domain left the level-1 window: resolve the
      // accumulated group independently (paper §IV.A trigger), then start a
      // new group.
      std::vector<PendingRead> group;
      group.swap(pending_reads_);
      independentFetch(std::move(group));
      pending_segment_ = seg;
      pending_reads_.push_back(piece);
    } else {
      pending_segment_ = seg;
      pending_reads_.push_back(piece);
    }
    off += take;
    dst += take;
    n -= take;
  }
}

void File::ensureLoadedIndependent(SegmentId seg) {
  const Rank owner = map_.rankOf(seg);
  const std::int64_t slot = map_.slotOf(seg);
  std::byte flags[2];
  window_->get(owner, flagsDisp(slot, 0), flags, kFlagBytes);
  if (flags[kDirtyFlag] != std::byte{0} || flags[kLoadedFlag] != std::byte{0}) {
    return;  // resident (session writes or a previous load)
  }
  // Load the segment from the file ourselves and publish it through the
  // owner's window — pure one-sided, no remote progress needed.
  const Offset base = map_.baseOf(seg);
  const Bytes fsize = client_.size(fsfile_);
  const Bytes len = std::clamp<Bytes>(fsize - base, 0, cfg_.segment_size);
  std::vector<std::byte> tmp(static_cast<std::size_t>(len));
  if (len > 0) preadDegraded(base, tmp.data(), len);
  std::vector<mpi::Window::PutBlock> blocks;
  blocks.push_back({flagsDisp(slot, kLoadedFlag), &kFlagSet, 1});
  if (len > 0) blocks.push_back({dataDisp(slot, 0), tmp.data(), len});
  window_->putIndexed(owner, blocks);
}

void File::independentFetch(std::vector<PendingRead> reads) {
  TCIO_CHECK_MSG(cfg_.use_onesided,
                 "independent fetch requires one-sided mode");
  if (reads.empty()) return;
  ++stats_.independent_fetches;
  // Group by segment; each segment is handled under one exclusive lock of
  // its owner (exclusive because we may have to load-and-publish).
  std::map<SegmentId, std::vector<PendingRead>> by_seg;
  for (const PendingRead& r : reads) {
    by_seg[map_.segmentOf(r.off)].push_back(r);
  }
  for (auto& [seg, group] : by_seg) {
    const Rank owner = map_.rankOf(seg);
    const std::int64_t slot = map_.slotOf(seg);
    std::vector<mpi::Window::GetBlock> blocks;
    blocks.reserve(group.size());
    for (const PendingRead& r : group) {
      blocks.push_back({dataDisp(slot, map_.dispOf(r.off)), r.dst, r.len});
    }
    // Fast path: under a shared lock, check residency and gather. Only a
    // non-resident segment needs the exclusive load-and-publish epoch.
    std::byte flags[2];
    window_->lock(mpi::LockType::kShared, owner);
    window_->get(owner, flagsDisp(slot, 0), flags, kFlagBytes);
    const bool resident = flags[kDirtyFlag] != std::byte{0} ||
                          flags[kLoadedFlag] != std::byte{0};
    if (resident) {
      window_->getIndexed(owner, blocks);
      window_->unlock(owner);
      continue;
    }
    window_->unlock(owner);
    window_->lock(mpi::LockType::kExclusive, owner);
    ensureLoadedIndependent(seg);  // re-checks under the exclusive lock
    window_->getIndexed(owner, blocks);
    window_->unlock(owner);
  }
}

void File::gatherPending(std::vector<PendingRead>& reads) {
  // One shared-lock epoch and one coalesced get per owner.
  std::map<Rank, std::vector<mpi::Window::GetBlock>> by_owner;
  for (const PendingRead& r : reads) {
    const SegmentId seg = map_.segmentOf(r.off);
    by_owner[map_.rankOf(seg)].push_back(
        {dataDisp(map_.slotOf(seg), map_.dispOf(r.off)), r.dst, r.len});
  }
  for (auto& [owner, blocks] : by_owner) {
    window_->lock(mpi::LockType::kShared, owner);
    window_->getIndexed(owner, blocks);
    window_->unlock(owner);
  }
}

void File::collectiveFetch() {
  ++stats_.collective_fetches;
  const SimTime fetch_begin = comm_->proc().now();
  if (cfg_.node_aggregation) {
    nodeExchangeStagedWrites();
  } else if (twoSidedExchange()) {
    exchangeStagedWrites();
  } else {
    // One-sided flush is local + RMA only: capture and agree so a fault on
    // one rank cannot strand its peers in the bitmap allreduce below.
    mpi::CapturedError err;
    try {
      flushLevel1();
    } catch (const std::exception& e) {
      err.capture(e);
    }
    collectiveAgreeOnError(err);
  }
  // Union of needed segments across ranks.
  const std::int64_t total_segs =
      cfg_.segments_per_rank * static_cast<std::int64_t>(comm_->size());
  std::vector<std::uint64_t> bitmap(
      static_cast<std::size_t>((total_segs + 63) / 64), 0);
  for (const PendingRead& r : pending_reads_) {
    // A pending piece never crosses a segment boundary (recordRead splits).
    const SegmentId g = map_.segmentOf(r.off);
    bitmap[static_cast<std::size_t>(g / 64)] |= 1ULL << (g % 64);
  }
  comm_->allreduce(bitmap.data(), static_cast<std::int64_t>(bitmap.size()),
                   mpi::ReduceOp::kBitOr);
  // Owners load their needed, non-resident segments with large file reads.
  // The loads are purely local, so capture any FS failure and agree after
  // the existing barrier (an aligned point for every rank).
  mpi::CapturedError load_err;
  try {
    const Bytes fsize = client_.size(fsfile_);
    std::byte* local_win = window_->localData();
    for (std::int64_t slot = 0; slot < cfg_.segments_per_rank; ++slot) {
      const SegmentId g = map_.segmentFor(comm_->rank(), slot);
      if ((bitmap[static_cast<std::size_t>(g / 64)] & (1ULL << (g % 64))) ==
          0) {
        continue;
      }
      std::byte& dirty = local_win[flagsDisp(slot, kDirtyFlag)];
      std::byte& loaded = local_win[flagsDisp(slot, kLoadedFlag)];
      if (dirty != std::byte{0} || loaded != std::byte{0}) continue;
      const Offset base = map_.baseOf(g);
      const Bytes len = std::clamp<Bytes>(fsize - base, 0, cfg_.segment_size);
      if (len > 0) {
        preadDegraded(base, local_win + dataDisp(slot, 0), len);
      }
      loaded = kFlagSet;
    }
  } catch (const std::exception& e) {
    load_err.capture(e);
  }
  comm_->barrier();
  collectiveAgreeOnError(load_err);
  std::byte* local = window_->localData();
  if (cfg_.node_aggregation) {
    nodeAggregatedGather(pending_reads_);
  } else if (!twoSidedExchange()) {
    gatherPending(pending_reads_);
  } else {
    // Two-sided reply exchange: ship requests to owners, owners answer from
    // their local windows.
    const int P = comm_->size();
    std::vector<std::vector<std::byte>> req_meta(static_cast<std::size_t>(P));
    for (const PendingRead& r : pending_reads_) {
      const BlockMeta m{r.off, r.len};
      const auto owner =
          static_cast<std::size_t>(map_.rankOf(map_.segmentOf(r.off)));
      const auto* raw = reinterpret_cast<const std::byte*>(&m);
      req_meta[owner].insert(req_meta[owner].end(), raw, raw + sizeof(m));
    }
    const auto exchangeBuffers =
        [&](const std::vector<std::vector<std::byte>>& per_dst,
            std::vector<Bytes>& rcounts, std::vector<Offset>& rdispls) {
          const auto sp = static_cast<std::size_t>(P);
          std::vector<Bytes> scnt(sp), szs(sp), szr(sp), c8(sp, 8);
          std::vector<Offset> sdsp(sp), d8(sp);
          for (std::size_t i = 0; i < sp; ++i) {
            szs[i] = static_cast<Bytes>(per_dst[i].size());
            d8[i] = static_cast<Offset>(i * 8);
          }
          comm_->alltoallv(szs.data(), c8, d8, szr.data(), c8, d8);
          Bytes stot = 0, rtot = 0;
          std::vector<std::byte> sendbuf;
          rcounts.assign(sp, 0);
          rdispls.assign(sp, 0);
          for (std::size_t i = 0; i < sp; ++i) {
            scnt[i] = szs[i];
            sdsp[i] = stot;
            stot += szs[i];
            rcounts[i] = szr[i];
            rdispls[i] = rtot;
            rtot += szr[i];
          }
          for (const auto& v : per_dst) {
            sendbuf.insert(sendbuf.end(), v.begin(), v.end());
          }
          std::vector<std::byte> recv(static_cast<std::size_t>(rtot));
          comm_->alltoallv(sendbuf.data(), scnt, sdsp, recv.data(), rcounts,
                           rdispls);
          return recv;
        };
    std::vector<Bytes> mcounts;
    std::vector<Offset> mdispls;
    const std::vector<std::byte> got_meta =
        exchangeBuffers(req_meta, mcounts, mdispls);
    // Answer each requester from the local window.
    std::vector<std::vector<std::byte>> replies(static_cast<std::size_t>(P));
    for (int src = 0; src < P; ++src) {
      const auto s = static_cast<std::size_t>(src);
      const auto* blocks =
          reinterpret_cast<const BlockMeta*>(got_meta.data() + mdispls[s]);
      const std::size_t nb =
          static_cast<std::size_t>(mcounts[s]) / sizeof(BlockMeta);
      for (std::size_t i = 0; i < nb; ++i) {
        const SegmentId g = map_.segmentOf(blocks[i].off);
        const std::byte* from =
            local + dataDisp(map_.slotOf(g), map_.dispOf(blocks[i].off));
        replies[s].insert(replies[s].end(), from, from + blocks[i].len);
      }
    }
    std::vector<Bytes> rcounts;
    std::vector<Offset> rdispls;
    const std::vector<std::byte> payload =
        exchangeBuffers(replies, rcounts, rdispls);
    // Scatter: replies from each owner arrive in my request order.
    std::vector<Offset> cursor(rdispls.begin(), rdispls.end());
    for (const PendingRead& r : pending_reads_) {
      const auto owner =
          static_cast<std::size_t>(map_.rankOf(map_.segmentOf(r.off)));
      std::memcpy(r.dst, payload.data() + cursor[owner],
                  static_cast<std::size_t>(r.len));
      cursor[owner] += r.len;
    }
    comm_->chargeCopy(static_cast<Bytes>(payload.size()));
  }
  if (comm_->world().trace().enabled()) {
    sim::Proc& p = comm_->proc();
    Bytes n = 0;
    for (const PendingRead& r : pending_reads_) n += r.len;
    p.atomic([&] {
      comm_->world().trace().record(p.rank(), fetch_begin, p.now(),
                                    "tcio.fetch", n);
    });
  }
  pending_reads_.clear();
  pending_segment_ = -1;
}

// -- Collectives --------------------------------------------------------------

void File::seek(Offset off, Whence whence) {
  switch (whence) {
    case Whence::kSet: pointer_ = off; break;
    case Whence::kCur: pointer_ += off; break;
    case Whence::kEnd:
      pointer_ = std::max(client_.size(fsfile_), local_max_written_) + off;
      break;
  }
  TCIO_CHECK(pointer_ >= 0);
}

void File::flush() {
  TCIO_CHECK_MSG(open_, "flush on closed TCIO file");
  maybeFallBackToTwoSided();
  if (cfg_.node_aggregation) {
    nodeExchangeStagedWrites();
  } else if (twoSidedExchange()) {
    exchangeStagedWrites();
  } else {
    // One-sided flush is local + RMA only: capture and agree so a faulted
    // rank cannot strand its peers in the barrier below.
    mpi::CapturedError err;
    try {
      flushLevel1();
    } catch (const std::exception& e) {
      err.capture(e);
    }
    collectiveAgreeOnError(err);
  }
  comm_->barrier();  // tcio_flush is collective (paper §IV.B)
  syncRecoveryStats();
}

void File::fetch() {
  TCIO_CHECK_MSG(open_, "fetch on closed TCIO file");
  maybeFallBackToTwoSided();
  collectiveFetch();
  syncRecoveryStats();
}

void File::exchangeStagedWrites() {
  flushLevel1();  // move any level-1 residue into the staging area
  if (fallback_two_sided_) ++stats_.degraded.fallback_exchanges;
  const int P = comm_->size();
  const auto sp = static_cast<std::size_t>(P);
  std::vector<std::vector<std::byte>> meta(sp), payload(sp);
  for (const auto& [off, bytes] : staged_) {
    const SegmentId g = map_.segmentOf(off);
    const auto owner = static_cast<std::size_t>(map_.rankOf(g));
    const BlockMeta m{off, static_cast<Bytes>(bytes.size())};
    const auto* raw = reinterpret_cast<const std::byte*>(&m);
    meta[owner].insert(meta[owner].end(), raw, raw + sizeof(m));
    payload[owner].insert(payload[owner].end(), bytes.begin(), bytes.end());
  }
  auto exchange = [&](const std::vector<std::vector<std::byte>>& per_dst,
                      std::vector<Bytes>& rcounts,
                      std::vector<Offset>& rdispls) {
    std::vector<Bytes> scnt(sp), szs(sp), szr(sp), c8(sp, 8);
    std::vector<Offset> sdsp(sp), d8(sp);
    for (std::size_t i = 0; i < sp; ++i) {
      szs[i] = static_cast<Bytes>(per_dst[i].size());
      d8[i] = static_cast<Offset>(i * 8);
    }
    comm_->alltoallv(szs.data(), c8, d8, szr.data(), c8, d8);
    Bytes stot = 0, rtot = 0;
    std::vector<std::byte> sendbuf;
    rcounts.assign(sp, 0);
    rdispls.assign(sp, 0);
    for (std::size_t i = 0; i < sp; ++i) {
      scnt[i] = szs[i];
      sdsp[i] = stot;
      stot += szs[i];
      rcounts[i] = szr[i];
      rdispls[i] = rtot;
      rtot += szr[i];
    }
    for (const auto& v : per_dst) {
      sendbuf.insert(sendbuf.end(), v.begin(), v.end());
    }
    std::vector<std::byte> recv(static_cast<std::size_t>(rtot));
    comm_->alltoallv(sendbuf.data(), scnt, sdsp, recv.data(), rcounts,
                     rdispls);
    return recv;
  };
  std::vector<Bytes> mcnt, pcnt;
  std::vector<Offset> mdsp, pdsp;
  const auto got_meta = exchange(meta, mcnt, mdsp);
  const auto got_payload = exchange(payload, pcnt, pdsp);
  // Apply received blocks into the local window. Purely local work: capture
  // and agree (the segment-exchange agreement point) so a corrupt frame on
  // one rank surfaces on all of them instead of desynchronizing the job.
  mpi::CapturedError err;
  try {
    std::byte* local = window_->localData();
    for (int src = 0; src < P; ++src) {
      const auto s = static_cast<std::size_t>(src);
      const auto* blocks =
          reinterpret_cast<const BlockMeta*>(got_meta.data() + mdsp[s]);
      const std::size_t nb =
          static_cast<std::size_t>(mcnt[s]) / sizeof(BlockMeta);
      const std::byte* from = got_payload.data() + pdsp[s];
      for (std::size_t i = 0; i < nb; ++i) {
        const SegmentId g = map_.segmentOf(blocks[i].off);
        const std::int64_t slot = map_.slotOf(g);
        std::memcpy(local + dataDisp(slot, map_.dispOf(blocks[i].off)), from,
                    static_cast<std::size_t>(blocks[i].len));
        from += blocks[i].len;
        local[flagsDisp(slot, kDirtyFlag)] = kFlagSet;
      }
    }
    comm_->chargeCopy(static_cast<Bytes>(got_payload.size()));
  } catch (const std::exception& e) {
    err.capture(e);
  }
  comm_->memory().release(staged_bytes_);
  staged_.clear();
  staged_bytes_ = 0;
  collectiveAgreeOnError(err);
}

void File::nodeExchangeStagedWrites() {
  flushLevel1();  // move any level-1 residue into the staging area
  ++stats_.node_exchanges;
  const int N = node_map_->numNodes();
  // Stage records addressed to the *node* hosting each block's owner:
  // [BlockMeta][payload] back to back.
  std::vector<std::vector<std::byte>> per_node(static_cast<std::size_t>(N));
  for (const auto& [off, bytes] : staged_) {
    const auto dn = static_cast<std::size_t>(
        node_map_->nodeOf(map_.rankOf(map_.segmentOf(off))));
    const BlockMeta m{off, static_cast<Bytes>(bytes.size())};
    appendBytes(per_node[dn], &m, sizeof(m));
    appendBytes(per_node[dn], bytes.data(), bytes.size());
  }
  const std::int64_t puts_before = node_agg_->stats().internode_puts;
  const Bytes membus_before = node_agg_->stats().intranode_bytes;
  // Source-leader rewrite: merge adjacent same-segment extents contributed
  // by the node's ranks into single records. On interleaved patterns the
  // node's ranks own neighbouring stripes, so this collapses many tiny
  // per-rank extents into few large ones before they pay the NIC.
  const auto coalesce =
      [this](int, const std::vector<topo::NodeAggregator::RankBlob>& blobs) {
        struct Rec {
          Offset off = 0;
          Bytes len = 0;
          const std::byte* src = nullptr;
        };
        std::vector<Rec> recs;
        for (const auto& rb : blobs) {
          std::size_t pos = 0;
          while (pos < rb.data.size()) {
            BlockMeta m;
            TCIO_CHECK(pos + sizeof(m) <= rb.data.size());
            std::memcpy(&m, rb.data.data() + pos, sizeof(m));
            pos += sizeof(m);
            TCIO_CHECK(pos + static_cast<std::size_t>(m.len) <=
                       rb.data.size());
            recs.push_back({m.off, m.len, rb.data.data() + pos});
            pos += static_cast<std::size_t>(m.len);
          }
        }
        std::stable_sort(recs.begin(), recs.end(),
                         [](const Rec& a, const Rec& b) {
                           return a.off < b.off;
                         });
        std::vector<std::byte> out;
        out.reserve(recs.size() * sizeof(BlockMeta));
        std::size_t i = 0;
        while (i < recs.size()) {
          // A merged run must stay inside one segment: its owner and slot
          // are derived from the run's first offset at apply time.
          std::size_t j = i + 1;
          Bytes run = recs[i].len;
          while (j < recs.size() &&
                 recs[j].off == recs[j - 1].off + recs[j - 1].len &&
                 map_.segmentOf(recs[j].off) == map_.segmentOf(recs[i].off)) {
            run += recs[j].len;
            ++j;
          }
          const BlockMeta m{recs[i].off, run};
          appendBytes(out, &m, sizeof(m));
          for (std::size_t k = i; k < j; ++k) {
            appendBytes(out, recs[k].src, static_cast<std::size_t>(recs[k].len));
          }
          i = j;
        }
        return out;
      };
  const auto frames = node_agg_->exchange(per_node, coalesce);
  // Destination leaders apply the received blocks into node-local owners'
  // windows — membus epochs, one per owner. Leader-local work: capture and
  // agree after the barrier below so a leader-side fault becomes the same
  // typed error on every rank instead of a wedged job.
  mpi::CapturedError err;
  try {
    if (node_map_->isLeader()) {
      std::map<Rank, std::vector<mpi::Window::PutBlock>> by_owner;
      std::map<Rank, std::set<std::int64_t>> flagged;
      Bytes applied = 0;
      for (const auto& from_node : frames) {
        for (const auto& rb : from_node) {
          std::size_t pos = 0;
          while (pos < rb.data.size()) {
            BlockMeta m;
            TCIO_CHECK(pos + sizeof(m) <= rb.data.size());
            std::memcpy(&m, rb.data.data() + pos, sizeof(m));
            pos += sizeof(m);
            TCIO_CHECK(pos + static_cast<std::size_t>(m.len) <=
                       rb.data.size());
            const SegmentId g = map_.segmentOf(m.off);
            const Rank owner = map_.rankOf(g);
            const std::int64_t slot = map_.slotOf(g);
            auto& blocks = by_owner[owner];
            if (flagged[owner].insert(slot).second) {
              blocks.push_back({flagsDisp(slot, kDirtyFlag), &kFlagSet, 1});
            }
            blocks.push_back(
                {dataDisp(slot, map_.dispOf(m.off)), rb.data.data() + pos,
                 m.len});
            pos += static_cast<std::size_t>(m.len);
            applied += m.len;
          }
        }
      }
      for (auto& [owner, blocks] : by_owner) {
        window_->lock(mpi::LockType::kShared, owner);
        window_->putIndexed(owner, blocks);
        window_->unlock(owner);
      }
      stats_.intranode_bytes += applied;
    }
  } catch (const std::exception& e) {
    err.capture(e);
  }
  // The apply epochs above must land before any rank inspects or drains its
  // window (owner loads in collectiveFetch, drainToFs at close).
  comm_->barrier();
  stats_.internode_messages_saved -=
      node_agg_->stats().internode_puts - puts_before;
  stats_.intranode_bytes +=
      node_agg_->stats().intranode_bytes - membus_before;
  comm_->memory().release(staged_bytes_);
  staged_.clear();
  staged_bytes_ = 0;
  collectiveAgreeOnError(err);
}

void File::nodeAggregatedGather(std::vector<PendingRead>& reads) {
  const int N = node_map_->numNodes();
  const auto sn = static_cast<std::size_t>(N);
  const Bytes membus_before = node_agg_->stats().intranode_bytes;
  // Requests travel to the node hosting each block's owner. Replies come
  // back in request order, so remember the order per serving node.
  std::vector<std::vector<std::byte>> req(sn);
  std::vector<std::vector<PendingRead*>> order(sn);
  for (PendingRead& r : reads) {
    const auto dn = static_cast<std::size_t>(
        node_map_->nodeOf(map_.rankOf(map_.segmentOf(r.off))));
    const BlockMeta m{r.off, r.len};
    appendBytes(req[dn], &m, sizeof(m));
    order[dn].push_back(&r);
  }
  const auto requests = node_agg_->exchange(req);
  // Serving leaders answer from node-local owners' windows. Reply streams
  // are framed per requester: [i32 requester][u64 len][bytes].
  std::vector<std::vector<std::byte>> replies(sn);
  if (node_map_->isLeader()) {
    // Pass 1: lay out reply streams (headers + payload space) so the get
    // blocks can point into stable storage.
    struct Slice {
      std::size_t node = 0;
      std::size_t at = 0;  // payload start within replies[node]
    };
    std::vector<std::pair<BlockMeta, Slice>> wanted;
    for (std::size_t s = 0; s < sn; ++s) {
      for (const auto& rb : requests[s]) {
        const std::size_t nb = rb.data.size() / sizeof(BlockMeta);
        TCIO_CHECK(rb.data.size() == nb * sizeof(BlockMeta));
        Bytes total = 0;
        std::vector<BlockMeta> metas(nb);
        for (std::size_t i = 0; i < nb; ++i) {
          std::memcpy(&metas[i], rb.data.data() + i * sizeof(BlockMeta),
                      sizeof(BlockMeta));
          total += metas[i].len;
        }
        auto& stream = replies[s];
        const std::int32_t requester = rb.src;
        const auto len64 = static_cast<std::uint64_t>(total);
        appendBytes(stream, &requester, sizeof(requester));
        appendBytes(stream, &len64, sizeof(len64));
        std::size_t at = stream.size();
        stream.resize(stream.size() + static_cast<std::size_t>(total));
        for (const BlockMeta& m : metas) {
          wanted.push_back({m, {s, at}});
          at += static_cast<std::size_t>(m.len);
        }
      }
    }
    // Pass 2: one shared-lock membus epoch per node-local owner.
    std::map<Rank, std::vector<mpi::Window::GetBlock>> by_owner;
    Bytes served = 0;
    for (const auto& [m, slice] : wanted) {
      const SegmentId g = map_.segmentOf(m.off);
      by_owner[map_.rankOf(g)].push_back(
          {dataDisp(map_.slotOf(g), map_.dispOf(m.off)),
           replies[slice.node].data() + slice.at, m.len});
      served += m.len;
    }
    for (auto& [owner, blocks] : by_owner) {
      window_->lock(mpi::LockType::kShared, owner);
      window_->getIndexed(owner, blocks);
      window_->unlock(owner);
    }
    stats_.intranode_bytes += served;
  }
  const auto answers = node_agg_->exchange(replies);
  // Leaders demux replies per requester; each fragment is wrapped
  // [i32 serving node][u64 len][bytes] so the requester can route it to its
  // per-node request list.
  const std::vector<Rank>& members =
      node_map_->ranksOnNode(node_map_->myNode());
  std::vector<std::vector<std::byte>> per_rank(members.size());
  if (node_map_->isLeader()) {
    std::map<Rank, std::size_t> node_rank_of;
    for (std::size_t q = 0; q < members.size(); ++q) {
      node_rank_of[members[q]] = q;
    }
    for (std::size_t s = 0; s < sn; ++s) {
      for (const auto& rb : answers[s]) {
        std::size_t pos = 0;
        while (pos < rb.data.size()) {
          std::int32_t requester = 0;
          std::uint64_t len = 0;
          TCIO_CHECK(pos + sizeof(requester) + sizeof(len) <= rb.data.size());
          std::memcpy(&requester, rb.data.data() + pos, sizeof(requester));
          pos += sizeof(requester);
          std::memcpy(&len, rb.data.data() + pos, sizeof(len));
          pos += sizeof(len);
          TCIO_CHECK(pos + len <= rb.data.size());
          auto& blob = per_rank[node_rank_of.at(requester)];
          const auto sn32 = static_cast<std::int32_t>(s);
          appendBytes(blob, &sn32, sizeof(sn32));
          appendBytes(blob, &len, sizeof(len));
          appendBytes(blob, rb.data.data() + pos, static_cast<std::size_t>(len));
          pos += static_cast<std::size_t>(len);
        }
      }
    }
  }
  const std::vector<std::byte> mine =
      node_agg_->scatterToRanks(std::move(per_rank));
  // Route each serving node's answer bytes to the recorded reads in order.
  std::size_t pos = 0;
  std::vector<std::size_t> next(sn, 0);
  while (pos < mine.size()) {
    std::int32_t serving = 0;
    std::uint64_t len = 0;
    TCIO_CHECK(pos + sizeof(serving) + sizeof(len) <= mine.size());
    std::memcpy(&serving, mine.data() + pos, sizeof(serving));
    pos += sizeof(serving);
    std::memcpy(&len, mine.data() + pos, sizeof(len));
    pos += sizeof(len);
    TCIO_CHECK(pos + len <= mine.size());
    const auto s = static_cast<std::size_t>(serving);
    std::uint64_t used = 0;
    while (used < len) {
      TCIO_CHECK_MSG(next[s] < order[s].size(),
                     "node-aggregated reply exceeds recorded reads");
      PendingRead* r = order[s][next[s]++];
      TCIO_CHECK(used + static_cast<std::uint64_t>(r->len) <= len);
      std::memcpy(r->dst, mine.data() + pos + used,
                  static_cast<std::size_t>(r->len));
      used += static_cast<std::uint64_t>(r->len);
    }
    pos += static_cast<std::size_t>(len);
    comm_->chargeCopy(static_cast<Bytes>(len));
  }
  for (std::size_t s = 0; s < sn; ++s) {
    TCIO_CHECK_MSG(next[s] == order[s].size(),
                   "node-aggregated gather left reads unanswered");
  }
  stats_.intranode_bytes +=
      node_agg_->stats().intranode_bytes - membus_before;
}

void File::close() {
  if (!open_) return;
  // Mark closed up front: if any step below throws, the destructor must not
  // attempt the collective sequence again mid-unwind (the other ranks are no
  // longer at a matching program point).
  open_ = false;
  maybeFallBackToTwoSided();
  // Every agreement point below throws the *same* typed error on *all*
  // ranks, so catching locally and continuing the close sequence keeps the
  // ranks in lockstep — resources are released and the file handle closed
  // collectively before the agreed error finally surfaces.
  mpi::CapturedError err;
  if ((flags_ & fs::kRead) != 0) {
    try {
      collectiveFetch();  // resolve any pending lazy reads
    } catch (const std::exception& e) {
      err.capture(e);
    }
  }
  if (!err.set()) {
    try {
      if (cfg_.node_aggregation) {
        nodeExchangeStagedWrites();
      } else if (twoSidedExchange()) {
        exchangeStagedWrites();
      } else {
        flushLevel1();  // local + RMA only; agreement happens below
      }
    } catch (const std::exception& e) {
      err.capture(e);
    }
  }
  // Aggregate file size across ranks (pre-existing contents included).
  std::int64_t fsize = std::max(local_max_written_, client_.size(fsfile_));
  comm_->allreduce(&fsize, 1, mpi::ReduceOp::kMax);
  comm_->barrier();  // paper: synchronize before draining level-2
  // Drain under collective error agreement: a rank whose file-system writes
  // fail must not leave its peers blocked in the closing collectives, and a
  // rank whose own writes succeeded must still learn the file is damaged.
  // The drain is purely local, so skipping it on an already-failed rank (or
  // failing on some ranks only) cannot desynchronize the collectives.
  if (!err.set() && (flags_ & fs::kWrite) != 0) {
    try {
      drainToFs(fsize);
    } catch (const std::exception& e) {
      err.capture(e);
    }
  }
  client_.close(fsfile_);
  if (node_agg_ != nullptr) node_agg_->close();
  comm_->memory().release(cfg_.segment_size);  // level-1 buffer
  comm_->memory().release(window_->localSize());
  window_.reset();
  syncRecoveryStats();
  collectiveAgreeOnError(err);
}

void File::drainToFs(Bytes file_size) {
  const std::byte* local = window_->localData();
  for (std::int64_t slot = 0; slot < cfg_.segments_per_rank; ++slot) {
    if (local[flagsDisp(slot, kDirtyFlag)] == std::byte{0}) continue;
    const SegmentId g = map_.segmentFor(comm_->rank(), slot);
    const Offset base = map_.baseOf(g);
    if (base >= file_size) continue;
    const Bytes len = std::min(cfg_.segment_size, file_size - base);
    pwriteDegraded(base, local + dataDisp(slot, 0), len);
  }
}

// -- Fault recovery -----------------------------------------------------------

void File::collectiveAgreeOnError(const mpi::CapturedError& err) {
  mpi::agreeOnError(*comm_, err);
}

void File::maybeFallBackToTwoSided() {
  if (cfg_.rma_fault_fallback_threshold <= 0 || fallback_two_sided_) return;
  if (!cfg_.use_onesided || cfg_.node_aggregation || !cfg_.lazy_reads ||
      cfg_.auto_fetch_on_segment_exit) {
    return;  // no staged path to fall back to in these configurations
  }
  sim::Proc& p = comm_->proc();
  const std::int64_t drops =
      p.atomic([&] { return comm_->world().network().rmaDropCount(); });
  // The drop counter is global but read at rank-local times; agree on the
  // decision so every rank switches paths at the same collective call.
  std::uint8_t trip = drops >= cfg_.rma_fault_fallback_threshold ? 1 : 0;
  comm_->allreduce(&trip, 1, mpi::ReduceOp::kMax);
  if (trip != 0) {
    fallback_two_sided_ = true;
    stats_.degraded.two_sided_fallback = true;
  }
}

void File::pwriteDegraded(Offset off, const std::byte* src, Bytes n) {
  try {
    client_.pwrite(fsfile_, off, src, n);
  } catch (const OstFailedError&) {
    const std::int64_t moved = client_.remapFailedChunks(fsfile_, off, n);
    if (moved == 0) throw;  // nothing to fail over to — surface it
    stats_.degraded.chunks_remapped += moved;
    client_.pwrite(fsfile_, off, src, n);
  }
}

void File::preadDegraded(Offset off, std::byte* dst, Bytes n) {
  try {
    client_.pread(fsfile_, off, dst, n);
  } catch (const OstFailedError&) {
    const std::int64_t moved = client_.remapFailedChunks(fsfile_, off, n);
    if (moved == 0) throw;  // nothing to fail over to — surface it
    stats_.degraded.chunks_remapped += moved;
    client_.pread(fsfile_, off, dst, n);
  }
}

void File::syncRecoveryStats() {
  const fs::FsClient::RetryStats& rs = client_.retryStats();
  stats_.degraded.fs_transient_faults = rs.transient_faults;
  stats_.degraded.fs_retries = rs.retries;
  stats_.degraded.fs_retry_giveups = rs.giveups;
  sim::Proc& p = comm_->proc();
  stats_.degraded.rma_drops =
      p.atomic([&] { return comm_->world().network().rmaDropCount(); });
}

}  // namespace tcio::core
