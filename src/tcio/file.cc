#include "tcio/file.h"

#include <algorithm>
#include <cstring>
#include <map>
#include <numeric>
#include <set>
#include <span>

#include "check/checker.h"
#include "common/crc32.h"
#include "mpi/liveness.h"

namespace tcio::core {

namespace {
constexpr std::byte kFlagSet{1};

struct BlockMeta {
  Offset off = 0;
  Bytes len = 0;
  std::uint32_t crc = 0;      // CRC32 of the payload (integrity pipeline)
  std::uint32_t has_crc = 0;  // 1 = `crc` is valid; read requests carry none
};

void appendBytes(std::vector<std::byte>& out, const void* src, std::size_t n) {
  const auto* p = static_cast<const std::byte*>(src);
  out.insert(out.end(), p, p + n);
}
}  // namespace

File::File(mpi::Comm& comm, fs::Filesystem& fsys, const std::string& name,
           unsigned flags, TcioConfig cfg)
    : comm_(&comm),
      client_(fsys, comm.proc()),
      name_(name),
      flags_(flags),
      cfg_(cfg),
      map_(cfg.segment_size, comm.size()),
      slot_cap_((cfg.crash.enabled ? 2 : 1) * cfg.segments_per_rank),
      flags_region_(slot_cap_ * kFlagBytes),
      level1_(cfg.segment_size),
      orig_rank_(comm.rank()),
      orig_size_(comm.size()) {
  TCIO_CHECK(cfg_.segment_size > 0);
  TCIO_CHECK(cfg_.segments_per_rank > 0);
  TCIO_CHECK_MSG(cfg_.use_onesided || cfg_.lazy_reads,
                 "two-sided exchange requires lazy reads (no independent "
                 "materialization path exists without one-sided access)");
  TCIO_CHECK_MSG(!cfg_.node_aggregation ||
                     (cfg_.use_onesided && cfg_.lazy_reads &&
                      !cfg_.auto_fetch_on_segment_exit),
                 "node aggregation stages data until the next collective "
                 "call, so it requires one-sided mode with lazy reads and no "
                 "independent auto-fetch");
  // Fault plan and retry policy must be in place before the first FS
  // operation. The plan lands in the shared Filesystem (first open wins, so
  // all ranks share one deterministic schedule).
  if (cfg_.faults.enabled) client_.installFaultPlan(cfg_.faults);
  client_.setRetryPolicy(cfg_.retry);
  // Collective open: rank 0 creates/truncates, everyone else opens after.
  // Open failures (e.g. FileNotFound in read mode) are captured and agreed
  // so every rank reaches the barrier and throws the same typed error —
  // rank 0 must never abandon peers already waiting inside the barrier.
  mpi::CapturedError open_err;
  if (comm_->rank() == 0) {
    try {
      fsfile_ = client_.open(name_, flags_);
    } catch (const std::exception& e) {
      open_err.capture(e);
    }
  }
  comm_->barrier();
  if (comm_->rank() != 0) {
    try {
      fsfile_ = client_.open(name_, flags_ & ~(fs::kCreate | fs::kTruncate));
    } catch (const std::exception& e) {
      open_err.capture(e);
    }
  }
  mpi::agreeOnError(*comm_, open_err);
  if (cfg_.crash.enabled) {
    // The crash schedule, the per-rank journal, and a reserved block of
    // communicator contexts for post-death shrinks. The journal open is a
    // real MDS operation (it can fault), so it is captured and agreed like
    // the data-file open above.
    crash_plan_ = std::make_unique<CrashPlan>(cfg_.faults, orig_rank_);
    mpi::CapturedError jerr;
    if (cfg_.crash.journal) {
      try {
        journal_ =
            std::make_unique<Journal>(client_, journalPath(name_, orig_rank_));
      } catch (const std::exception& e) {
        jerr.capture(e);
      }
    }
    mpi::agreeOnError(*comm_, jerr);
    int base = 0;
    if (orig_rank_ == 0) base = comm_->reserveContexts(kMaxShrinks);
    comm_->bcast(&base, sizeof(base), 0);
    shrink_context_base_ = base;
    orig_of_cur_.resize(static_cast<std::size_t>(orig_size_));
    std::iota(orig_of_cur_.begin(), orig_of_cur_.end(), 0);
    cur_of_orig_ = orig_of_cur_;
    dead_.assign(static_cast<std::size_t>(orig_size_), false);
    next_spare_.assign(static_cast<std::size_t>(orig_size_),
                       cfg_.segments_per_rank);
  }
  // End-to-end integrity: resolve the tri-state once (config and environment
  // are identical on every rank, so the decision is collectively uniform)
  // and arm the silent-corruption injector. When integrity is on without
  // crash tolerance, the write-ahead journal is opened anyway — it is the
  // repair source for window corruption found by the scrubber.
  integrity_on_ = integrityEnabled(cfg_);
  corruption_ = std::make_unique<CorruptionPlan>(cfg_.faults, orig_rank_);
  if (!cfg_.crash.enabled && integrity_on_ && (flags_ & fs::kWrite) != 0) {
    mpi::CapturedError jerr;
    try {
      journal_ =
          std::make_unique<Journal>(client_, journalPath(name_, orig_rank_));
    } catch (const std::exception& e) {
      jerr.capture(e);
    }
    mpi::agreeOnError(*comm_, jerr);
  }
  window_ = std::make_unique<mpi::Window>(mpi::Window::create(
      *comm_, flags_region_ + slotCount() * cfg_.segment_size));
  if (cfg_.node_aggregation) {
    node_map_ = std::make_unique<topo::NodeMap>(*comm_);
    Bytes slot = cfg_.node_agg_slot_bytes;
    if (slot == 0) {
      slot = static_cast<Bytes>(node_map_->maxNodeSize()) * cfg_.segment_size +
             4096;
    }
    node_agg_ = std::make_unique<topo::NodeAggregator>(
        *node_map_, slot, cfg_.node_agg_rotate_leaders);
  }
  comm_->memory().allocate(cfg_.segment_size, "TCIO level-1 buffer");
  if (check::Checker* ck = comm_->world().checker()) {
    comm_->proc().atomic([&] {
      ck->registerFile(name_, orig_size_, cfg_.segment_size,
                       cfg_.segments_per_rank);
    });
  }
  open_ = true;
}

File::~File() {
  if (open_) {
    try {
      close();
      // A RankCrashedError here means the rank is already unwinding and
      // the survivors have agreed on the death — nothing is lost by eating
      // it, and a throwing destructor would terminate the process.
      // NOLINT-TCIO(crash-unwind-swallow): destructor must not throw
    } catch (...) {
      // Destructor must not throw; an incomplete collective close at
      // unwind time is already a failed simulation.
    }
  }
  // A crashed (or failed-close) rank unwinds with the node-aggregation layer
  // still built over a shrunk communicator owned by shrunk_comms_. Members
  // destroy in reverse declaration order, which would free those comms
  // before the aggregator's destructor releases its staging window through
  // them — tear the aggregation layer down explicitly while its
  // communicator is still alive.
  node_agg_.reset();
  node_map_.reset();
}

// -- Writes -------------------------------------------------------------------

void File::write(const void* data, std::int64_t count,
                 const mpi::Datatype& type) {
  const Bytes n = count * type.size();
  writeBytes(pointer_, static_cast<const std::byte*>(data), n);
  pointer_ += n;
}

void File::writeAt(Offset off, const void* data, std::int64_t count,
                   const mpi::Datatype& type) {
  writeBytes(off, static_cast<const std::byte*>(data), count * type.size());
}

void File::writeAt(Offset off, const void* data, Bytes n) {
  writeBytes(off, static_cast<const std::byte*>(data), n);
}

void File::writeBytes(Offset off, const std::byte* src, Bytes n) {
  TCIO_CHECK_MSG(open_, "write on closed TCIO file");
  TCIO_CHECK_MSG((flags_ & fs::kWrite) != 0, "write on read-only TCIO file");
  TCIO_CHECK(off >= 0 && n >= 0);
  TCIO_CHECK_MSG(off + n <= capacity(),
                 "write beyond TCIO capacity — raise segments_per_rank");
  if (n == 0) return;
  ++stats_.writes;
  stats_.bytes_written += n;
  local_max_written_ = std::max(local_max_written_, off + n);
  comm_->chargeCopy(n);
  while (n > 0) {
    const SegmentId seg = map_.segmentOf(off);
    const Offset disp = map_.dispOf(off);
    const Bytes take = std::min(n, cfg_.segment_size - disp);
    if (level1_.alignedSegment() != seg) {
      flushLevel1();
      level1_.align(seg);
    }
    level1_.put(disp, src, take);
    off += take;
    src += take;
    n -= take;
  }
}

void File::flushLevel1() {
  if (level1_.empty()) {
    level1_.reset();
    return;
  }
  ++stats_.level1_flushes;
  const SegmentId seg = level1_.alignedSegment();
  const std::vector<Extent> extents = level1_.mergedExtents();
  // Per-extent digests are taken from the level-1 buffer before the journal
  // append and the injection point below: the ledger and the journal both
  // hold the clean view, so any later hop that mangles the bytes is
  // detectable and repairable.
  if (integrity_on_) digestLevel1(seg, extents);
  // Write-ahead: the journal records must be durable before the bytes move
  // to the level-2 window (a one-sided put into a rank that later dies takes
  // the window copy with it; the journal copy survives in *this* rank's log).
  journalExtents(seg, extents);
  crashPoint(CrashPoint::kMidRma);
  // Silent-corruption injection, staging-frame site: flip one seeded bit in
  // the outgoing frame after the clean copies (digest + journal) are
  // secured — the corruption rides the RMA put / staged copy into level 2.
  if (corruption_ != nullptr && !extents.empty() &&
      corruption_->fires(CorruptSite::kStagingFrame)) {
    const Extent& e = extents.front();
    corruption_->flipBit(
        {level1_.mutableData() + e.begin, static_cast<std::size_t>(e.size())});
  }
  const SimTime flush_begin = comm_->proc().now();
  if (!twoSidedExchange() && !cfg_.node_aggregation) {
    const Rank owner = ownerOf(seg);
    const std::int64_t slot = slotOnOwner(seg);
    if (check::Checker* ck = comm_->world().checker()) {
      comm_->proc().atomic([&] {
        ck->onSegmentTransfer(name_, seg, owner, "File::flushLevel1");
        ck->noteDirty(name_, seg);
      });
    }
    std::vector<mpi::Window::PutBlock> blocks;
    blocks.reserve(extents.size() + 1);
    blocks.push_back({flagsDisp(slot, kDirtyFlag), &kFlagSet, 1});
    for (const Extent& e : extents) {
      blocks.push_back(
          {dataDisp(slot, e.begin), level1_.data() + e.begin, e.size()});
    }
    // Shared lock: concurrent flushes from different ranks write disjoint
    // bytes of the segment (their own blocks), which MPI permits under
    // shared passive-target epochs — and it keeps flushes from convoying
    // behind one another when every rank walks the segments in file order.
    window_->lock(mpi::LockType::kShared, owner);
    window_->putIndexed(owner, blocks);
    window_->unlock(owner);
    if (comm_->world().trace().enabled()) {
      sim::Proc& p = comm_->proc();
      Bytes n = 0;
      for (const Extent& e : extents) n += e.size();
      p.atomic([&] {
        comm_->world().trace().record(p.rank(), flush_begin, p.now(),
                                      "tcio.flush", n);
      });
    }
  } else {
    // Two-sided ablation / node aggregation: stage locally until the next
    // collective exchange.
    for (const Extent& e : extents) {
      staged_.emplace_back(
          map_.baseOf(seg) + e.begin,
          std::vector<std::byte>(level1_.data() + e.begin,
                                 level1_.data() + e.end));
      staged_bytes_ += e.size();
      comm_->memory().allocate(e.size(), "TCIO staged writes");
    }
    if (cfg_.node_aggregation &&
        node_map_->nodeOf(curOf(ownerOf(seg))) != node_map_->myNode()) {
      // The per-rank shuffle would have put one epoch for this flush on the
      // NIC; the leader exchange replaces it.
      ++stats_.internode_messages_saved;
    }
  }
  level1_.reset();
}

// -- Reads --------------------------------------------------------------------

void File::read(void* data, std::int64_t count, const mpi::Datatype& type) {
  const Bytes n = count * type.size();
  recordRead(pointer_, static_cast<std::byte*>(data), n);
  pointer_ += n;
}

void File::readAt(Offset off, void* data, std::int64_t count,
                  const mpi::Datatype& type) {
  recordRead(off, static_cast<std::byte*>(data), count * type.size());
}

void File::readAt(Offset off, void* data, Bytes n) {
  recordRead(off, static_cast<std::byte*>(data), n);
}

void File::recordRead(Offset off, std::byte* dst, Bytes n) {
  TCIO_CHECK_MSG(open_, "read on closed TCIO file");
  TCIO_CHECK_MSG((flags_ & fs::kRead) != 0, "read on write-only TCIO file");
  TCIO_CHECK(off >= 0 && n >= 0);
  TCIO_CHECK_MSG(off + n <= capacity(),
                 "read beyond TCIO capacity — raise segments_per_rank");
  if (n == 0) return;
  ++stats_.reads;
  stats_.bytes_read += n;
  while (n > 0) {
    const SegmentId seg = map_.segmentOf(off);
    const Bytes take = std::min(n, cfg_.segment_size - map_.dispOf(off));
    // Session writes still sitting in level-1 must reach level-2 before any
    // read of the same segment resolves.
    if (level1_.alignedSegment() == seg && !level1_.empty()) {
      flushLevel1();
    }
    const PendingRead piece{off, take, dst};
    if (!cfg_.lazy_reads) {
      independentFetch({piece});
    } else if (cfg_.auto_fetch_on_segment_exit && cfg_.use_onesided &&
               pending_segment_ != -1 && seg != pending_segment_) {
      // The cached read domain left the level-1 window: resolve the
      // accumulated group independently (paper §IV.A trigger), then start a
      // new group.
      std::vector<PendingRead> group;
      group.swap(pending_reads_);
      independentFetch(std::move(group));
      pending_segment_ = seg;
      pending_reads_.push_back(piece);
    } else {
      pending_segment_ = seg;
      pending_reads_.push_back(piece);
    }
    off += take;
    dst += take;
    n -= take;
  }
}

void File::ensureLoadedIndependent(SegmentId seg,
                                   std::vector<std::byte>& scratch) {
  const Rank owner = ownerOf(seg);
  const std::int64_t slot = slotOnOwner(seg);
  std::byte flags[2];
  window_->get(owner, flagsDisp(slot, 0), flags, kFlagBytes);
  if (flags[kDirtyFlag] != std::byte{0} || flags[kLoadedFlag] != std::byte{0}) {
    return;  // resident (session writes or a previous load)
  }
  // Load the segment from the file ourselves and publish it through the
  // owner's window — pure one-sided, no remote progress needed. The bytes go
  // through caller-owned scratch because a put source must stay untouched
  // until the caller's unlock closes the epoch.
  const Offset base = map_.baseOf(seg);
  const Bytes fsize = client_.size(fsfile_);
  const Bytes len = std::clamp<Bytes>(fsize - base, 0, cfg_.segment_size);
  scratch.assign(static_cast<std::size_t>(len), std::byte{0});
  if (len > 0) preadDegraded(base, scratch.data(), len);
  if (check::Checker* ck = comm_->world().checker()) {
    comm_->proc().atomic([&] {
      ck->onSegmentTransfer(name_, seg, owner, "File::ensureLoadedIndependent");
    });
  }
  std::vector<mpi::Window::PutBlock> blocks;
  blocks.push_back({flagsDisp(slot, kLoadedFlag), &kFlagSet, 1});
  if (len > 0) blocks.push_back({dataDisp(slot, 0), scratch.data(), len});
  window_->putIndexed(owner, blocks);
}

void File::independentFetch(std::vector<PendingRead> reads) {
  TCIO_CHECK_MSG(cfg_.use_onesided,
                 "independent fetch requires one-sided mode");
  if (reads.empty()) return;
  ++stats_.independent_fetches;
  // Group by segment; each segment is handled under one exclusive lock of
  // its owner (exclusive because we may have to load-and-publish).
  std::map<SegmentId, std::vector<PendingRead>> by_seg;
  for (const PendingRead& r : reads) {
    by_seg[map_.segmentOf(r.off)].push_back(r);
  }
  for (auto& [seg, group] : by_seg) {
    const Rank owner = ownerOf(seg);
    const std::int64_t slot = slotOnOwner(seg);
    std::vector<mpi::Window::GetBlock> blocks;
    blocks.reserve(group.size());
    for (const PendingRead& r : group) {
      blocks.push_back({dataDisp(slot, map_.dispOf(r.off)), r.dst, r.len});
    }
    if (check::Checker* ck = comm_->world().checker()) {
      comm_->proc().atomic([&] {
        ck->onSegmentTransfer(name_, seg, owner, "File::independentFetch");
      });
    }
    // Fast path: under a shared lock, check residency and gather. Only a
    // non-resident segment needs the exclusive load-and-publish epoch.
    std::byte flags[2];
    window_->lock(mpi::LockType::kShared, owner);
    window_->get(owner, flagsDisp(slot, 0), flags, kFlagBytes);
    const bool resident = flags[kDirtyFlag] != std::byte{0} ||
                          flags[kLoadedFlag] != std::byte{0};
    if (resident) {
      window_->getIndexed(owner, blocks);
      window_->unlock(owner);
      continue;
    }
    window_->unlock(owner);
    window_->lock(mpi::LockType::kExclusive, owner);
    std::vector<std::byte> scratch;  // outlives the unlock below (put source)
    ensureLoadedIndependent(seg, scratch);  // re-checks under the lock
    window_->getIndexed(owner, blocks);
    window_->unlock(owner);
  }
}

void File::gatherPending(std::vector<PendingRead>& reads) {
  check::Checker* ck = comm_->world().checker();
  // One shared-lock epoch and one coalesced get per owner.
  std::map<Rank, std::vector<mpi::Window::GetBlock>> by_owner;
  std::set<SegmentId> segs;
  for (const PendingRead& r : reads) {
    const SegmentId seg = map_.segmentOf(r.off);
    by_owner[ownerOf(seg)].push_back(
        {dataDisp(slotOnOwner(seg), map_.dispOf(r.off)), r.dst, r.len});
    if (ck != nullptr) segs.insert(seg);
  }
  if (ck != nullptr && !segs.empty()) {
    comm_->proc().atomic([&] {
      for (const SegmentId g : segs) {
        ck->onSegmentTransfer(name_, g, ownerOf(g), "File::gatherPending");
      }
    });
  }
  for (auto& [owner, blocks] : by_owner) {
    window_->lock(mpi::LockType::kShared, owner);
    window_->getIndexed(owner, blocks);
    window_->unlock(owner);
  }
}

void File::collectiveFetch() {
  ++stats_.collective_fetches;
  maybeCorruptWindow();
  const SimTime fetch_begin = comm_->proc().now();
  if (cfg_.crash.enabled) {
    // Liveness first: a peer that died since the last collective (or dies in
    // its own residue flush right here) must be agreed dead — and its
    // segments taken over — before any plain collective below is entered,
    // or the survivors hang in it. The residue flush carries crash points
    // (kMidJournal/kMidRma); a rank killed by one unwinds, uncaptured.
    mpi::CapturedError err;
    try {
      flushLevel1();
    } catch (const RankCrashedError&) {
      throw;
    } catch (const check::CheckFailure&) {
      throw;  // checker verdicts abort the job typed, never agreed-and-retyped
    } catch (const std::exception& e) {
      err.capture(e);
    }
    collectiveAgreeOnError(err);
    if (cfg_.node_aggregation) {
      nodeExchangeStagedWrites();
    } else if (twoSidedExchange()) {
      exchangeStagedWrites();
    }
  } else if (cfg_.node_aggregation) {
    nodeExchangeStagedWrites();
  } else if (twoSidedExchange()) {
    exchangeStagedWrites();
  } else {
    // One-sided flush is local + RMA only: capture and agree so a fault on
    // one rank cannot strand its peers in the bitmap allreduce below.
    mpi::CapturedError err;
    try {
      flushLevel1();
    } catch (const check::CheckFailure&) {
      throw;  // checker verdicts abort the job typed, never agreed-and-retyped
    } catch (const std::exception& e) {
      err.capture(e);
    }
    collectiveAgreeOnError(err);
  }
  // Every writer's pending digests reach the segment owners before any data
  // is served below (an allgatherv — collectively aligned: integrity is
  // uniform across ranks, and in crash mode the agreement above already
  // shrank the communicator around any dead peers).
  exchangeDigests();
  // Union of needed segments across ranks (segment ids span the original
  // communicator's domain even after a crash shrink).
  const std::int64_t total_segs =
      cfg_.segments_per_rank * static_cast<std::int64_t>(orig_size_);
  std::vector<std::uint64_t> bitmap(
      static_cast<std::size_t>((total_segs + 63) / 64), 0);
  for (const PendingRead& r : pending_reads_) {
    // A pending piece never crosses a segment boundary (recordRead splits).
    const SegmentId g = map_.segmentOf(r.off);
    bitmap[static_cast<std::size_t>(g / 64)] |= 1ULL << (g % 64);
  }
  comm_->allreduce(bitmap.data(), static_cast<std::int64_t>(bitmap.size()),
                   mpi::ReduceOp::kBitOr);
  // Owners load their needed, non-resident segments with large file reads.
  // The loads are purely local, so capture any FS failure and agree after
  // the existing barrier (an aligned point for every rank).
  if (check::Checker* ck = comm_->world().checker()) {
    // Every slot this rank is about to load (or serve) must be one the
    // checker's segment map assigns to it.
    comm_->proc().atomic([&] {
      for (const auto& [g, slot] : ownedSlots()) {
        if ((bitmap[static_cast<std::size_t>(g / 64)] &
             (1ULL << (g % 64))) != 0) {
          ck->onSegmentTransfer(name_, g, orig_rank_,
                                "File::collectiveFetch(owner load)");
        }
      }
    });
  }
  mpi::CapturedError load_err;
  try {
    const Bytes fsize = client_.size(fsfile_);
    std::byte* local_win = window_->localData();
    for (const auto& [g, slot] : ownedSlots()) {
      if ((bitmap[static_cast<std::size_t>(g / 64)] & (1ULL << (g % 64))) ==
          0) {
        continue;
      }
      std::byte& dirty = local_win[flagsDisp(slot, kDirtyFlag)];
      std::byte& loaded = local_win[flagsDisp(slot, kLoadedFlag)];
      if (dirty != std::byte{0} || loaded != std::byte{0}) continue;
      const Offset base = map_.baseOf(g);
      const Bytes len = std::clamp<Bytes>(fsize - base, 0, cfg_.segment_size);
      if (len > 0) {
        preadDegraded(base, local_win + dataDisp(slot, 0), len);
      }
      loaded = kFlagSet;
    }
    // Integrity gate on the read path: every needed segment this rank owns
    // is re-verified against its digest ledger *before* any byte of it is
    // served to a reader — a corrupted window region is repaired from the
    // journal (or surfaces as an agreed IntegrityError), never propagated
    // into a user read buffer.
    if (integrity_on_) {
      for (const auto& [g, slot] : ownedSlots()) {
        if ((bitmap[static_cast<std::size_t>(g / 64)] & (1ULL << (g % 64))) !=
            0) {
          verifySlot(g, slot);
        }
      }
    }
  } catch (const std::exception& e) {
    load_err.capture(e);
  }
  comm_->barrier();
  collectiveAgreeOnError(load_err);
  std::byte* local = window_->localData();
  if (cfg_.node_aggregation) {
    nodeAggregatedGather(pending_reads_);
  } else if (!twoSidedExchange()) {
    gatherPending(pending_reads_);
  } else {
    // Two-sided reply exchange: ship requests to owners, owners answer from
    // their local windows.
    const int P = comm_->size();
    std::vector<std::vector<std::byte>> req_meta(static_cast<std::size_t>(P));
    for (const PendingRead& r : pending_reads_) {
      const BlockMeta m{r.off, r.len};
      const auto owner =
          static_cast<std::size_t>(curOf(ownerOf(map_.segmentOf(r.off))));
      const auto* raw = reinterpret_cast<const std::byte*>(&m);
      req_meta[owner].insert(req_meta[owner].end(), raw, raw + sizeof(m));
    }
    const auto exchangeBuffers =
        [&](const std::vector<std::vector<std::byte>>& per_dst,
            std::vector<Bytes>& rcounts, std::vector<Offset>& rdispls) {
          const auto sp = static_cast<std::size_t>(P);
          std::vector<Bytes> scnt(sp), szs(sp), szr(sp), c8(sp, 8);
          std::vector<Offset> sdsp(sp), d8(sp);
          for (std::size_t i = 0; i < sp; ++i) {
            szs[i] = static_cast<Bytes>(per_dst[i].size());
            d8[i] = static_cast<Offset>(i * 8);
          }
          comm_->alltoallv(szs.data(), c8, d8, szr.data(), c8, d8);
          Bytes stot = 0, rtot = 0;
          std::vector<std::byte> sendbuf;
          rcounts.assign(sp, 0);
          rdispls.assign(sp, 0);
          for (std::size_t i = 0; i < sp; ++i) {
            scnt[i] = szs[i];
            sdsp[i] = stot;
            stot += szs[i];
            rcounts[i] = szr[i];
            rdispls[i] = rtot;
            rtot += szr[i];
          }
          for (const auto& v : per_dst) {
            sendbuf.insert(sendbuf.end(), v.begin(), v.end());
          }
          std::vector<std::byte> recv(static_cast<std::size_t>(rtot));
          comm_->alltoallv(sendbuf.data(), scnt, sdsp, recv.data(), rcounts,
                           rdispls);
          return recv;
        };
    std::vector<Bytes> mcounts;
    std::vector<Offset> mdispls;
    const std::vector<std::byte> got_meta =
        exchangeBuffers(req_meta, mcounts, mdispls);
    // Answer each requester from the local window.
    std::vector<std::vector<std::byte>> replies(static_cast<std::size_t>(P));
    std::set<SegmentId> served_segs;
    for (int src = 0; src < P; ++src) {
      const auto s = static_cast<std::size_t>(src);
      const auto* blocks =
          reinterpret_cast<const BlockMeta*>(got_meta.data() + mdispls[s]);
      const std::size_t nb =
          static_cast<std::size_t>(mcounts[s]) / sizeof(BlockMeta);
      for (std::size_t i = 0; i < nb; ++i) {
        const SegmentId g = map_.segmentOf(blocks[i].off);
        const std::byte* from =
            local + dataDisp(slotOnOwner(g), map_.dispOf(blocks[i].off));
        replies[s].insert(replies[s].end(), from, from + blocks[i].len);
        served_segs.insert(g);
      }
    }
    if (check::Checker* ck = comm_->world().checker();
        ck != nullptr && !served_segs.empty()) {
      // Requesters routed these reads here because this rank owns them.
      comm_->proc().atomic([&] {
        for (const SegmentId g : served_segs) {
          ck->onSegmentTransfer(name_, g, orig_rank_,
                                "File::collectiveFetch(two-sided reply)");
        }
      });
    }
    std::vector<Bytes> rcounts;
    std::vector<Offset> rdispls;
    const std::vector<std::byte> payload =
        exchangeBuffers(replies, rcounts, rdispls);
    // Scatter: replies from each owner arrive in my request order.
    std::vector<Offset> cursor(rdispls.begin(), rdispls.end());
    for (const PendingRead& r : pending_reads_) {
      const auto owner =
          static_cast<std::size_t>(curOf(ownerOf(map_.segmentOf(r.off))));
      std::memcpy(r.dst, payload.data() + cursor[owner],
                  static_cast<std::size_t>(r.len));
      cursor[owner] += r.len;
    }
    comm_->chargeCopy(static_cast<Bytes>(payload.size()));
  }
  if (comm_->world().trace().enabled()) {
    sim::Proc& p = comm_->proc();
    Bytes n = 0;
    for (const PendingRead& r : pending_reads_) n += r.len;
    p.atomic([&] {
      comm_->world().trace().record(p.rank(), fetch_begin, p.now(),
                                    "tcio.fetch", n);
    });
  }
  pending_reads_.clear();
  pending_segment_ = -1;
}

// -- Collectives --------------------------------------------------------------

void File::seek(Offset off, Whence whence) {
  switch (whence) {
    case Whence::kSet: pointer_ = off; break;
    case Whence::kCur: pointer_ += off; break;
    case Whence::kEnd:
      pointer_ = std::max(client_.size(fsfile_), local_max_written_) + off;
      break;
  }
  TCIO_CHECK(pointer_ >= 0);
}

void File::flush() {
  TCIO_CHECK_MSG(open_, "flush on closed TCIO file");
  check::ScopedLabel phase(comm_->world().checker(), comm_->proc().rank(),
                           "File::flush");
  // Tag every collective inside this flush with its ordinal: collective
  // matching then attributes a divergence to the application phase ("rank 3
  // is still in flush #4") even when the MPI signatures happen to line up.
  check::ScopedUserTag tag(comm_->world().checker(), comm_->proc().rank(),
                           flush_calls_++);
  maybeCorruptWindow();
  if (cfg_.crash.enabled) {
    crashPoint(CrashPoint::kAtCollective);
    // Crash-tolerant ordering: the level-1 flush (journal + RMA/stage, all
    // local work with crash points inside) runs first, then the liveness
    // agreement detects any rank that died at or before this collective and
    // shrinks around it — only then is a plain collective safe to enter.
    mpi::CapturedError err;
    try {
      flushLevel1();
    } catch (const RankCrashedError&) {
      throw;
    } catch (const check::CheckFailure&) {
      throw;  // checker verdicts abort the job typed, never agreed-and-retyped
    } catch (const std::exception& e) {
      err.capture(e);
    }
    collectiveAgreeOnError(err);
    maybeFallBackToTwoSided();
    if (cfg_.node_aggregation) {
      nodeExchangeStagedWrites();
    } else if (twoSidedExchange()) {
      exchangeStagedWrites();
    }
    if (integrity_on_) {
      exchangeDigests();
      mpi::CapturedError ierr;
      scrubTick(ierr);
      collectiveAgreeOnError(ierr);
    }
    comm_->barrier();
    syncRecoveryStats();
    return;
  }
  maybeFallBackToTwoSided();
  if (cfg_.node_aggregation) {
    nodeExchangeStagedWrites();
  } else if (twoSidedExchange()) {
    exchangeStagedWrites();
  } else {
    // One-sided flush is local + RMA only: capture and agree so a faulted
    // rank cannot strand its peers in the barrier below.
    mpi::CapturedError err;
    try {
      flushLevel1();
    } catch (const check::CheckFailure&) {
      throw;  // checker verdicts abort the job typed, never agreed-and-retyped
    } catch (const std::exception& e) {
      err.capture(e);
    }
    collectiveAgreeOnError(err);
  }
  if (integrity_on_) {
    // Digests from this flush reach their owners, then the background
    // scrubber spends its per-collective budget re-verifying owned segments.
    exchangeDigests();
    mpi::CapturedError ierr;
    scrubTick(ierr);
    collectiveAgreeOnError(ierr);
  }
  comm_->barrier();  // tcio_flush is collective (paper §IV.B)
  syncRecoveryStats();
}

void File::fetch() {
  TCIO_CHECK_MSG(open_, "fetch on closed TCIO file");
  check::ScopedLabel phase(comm_->world().checker(), comm_->proc().rank(),
                           "File::fetch");
  if (cfg_.crash.enabled) {
    crashPoint(CrashPoint::kAtCollective);
    // collectiveFetch leads with its own liveness round; the fallback
    // allreduce must come after that detection, so it lives inside the
    // crash-aware fetch path only for the legacy ordering below.
    collectiveFetch();
    maybeFallBackToTwoSided();
    if (integrity_on_) {
      mpi::CapturedError ierr;
      scrubTick(ierr);
      collectiveAgreeOnError(ierr);
    }
    syncRecoveryStats();
    return;
  }
  maybeFallBackToTwoSided();
  collectiveFetch();
  if (integrity_on_) {
    mpi::CapturedError ierr;
    scrubTick(ierr);
    collectiveAgreeOnError(ierr);
  }
  syncRecoveryStats();
}

void File::exchangeStagedWrites() {
  flushLevel1();  // move any level-1 residue into the staging area
  if (fallback_two_sided_) ++stats_.degraded.fallback_exchanges;
  const int P = comm_->size();
  const auto sp = static_cast<std::size_t>(P);
  std::vector<std::vector<std::byte>> meta(sp), payload(sp);
  for (const auto& [off, bytes] : staged_) {
    const SegmentId g = map_.segmentOf(off);
    const auto owner = static_cast<std::size_t>(curOf(ownerOf(g)));
    BlockMeta m{off, static_cast<Bytes>(bytes.size())};
    if (integrity_on_) {
      m.crc = crc32({bytes.data(), bytes.size()});
      m.has_crc = 1;
      chargeChecksum(m.len);
    }
    const auto* raw = reinterpret_cast<const std::byte*>(&m);
    meta[owner].insert(meta[owner].end(), raw, raw + sizeof(m));
    payload[owner].insert(payload[owner].end(), bytes.begin(), bytes.end());
  }
  auto exchange = [&](const std::vector<std::vector<std::byte>>& per_dst,
                      std::vector<Bytes>& rcounts,
                      std::vector<Offset>& rdispls) {
    std::vector<Bytes> scnt(sp), szs(sp), szr(sp), c8(sp, 8);
    std::vector<Offset> sdsp(sp), d8(sp);
    for (std::size_t i = 0; i < sp; ++i) {
      szs[i] = static_cast<Bytes>(per_dst[i].size());
      d8[i] = static_cast<Offset>(i * 8);
    }
    comm_->alltoallv(szs.data(), c8, d8, szr.data(), c8, d8);
    Bytes stot = 0, rtot = 0;
    std::vector<std::byte> sendbuf;
    rcounts.assign(sp, 0);
    rdispls.assign(sp, 0);
    for (std::size_t i = 0; i < sp; ++i) {
      scnt[i] = szs[i];
      sdsp[i] = stot;
      stot += szs[i];
      rcounts[i] = szr[i];
      rdispls[i] = rtot;
      rtot += szr[i];
    }
    for (const auto& v : per_dst) {
      sendbuf.insert(sendbuf.end(), v.begin(), v.end());
    }
    std::vector<std::byte> recv(static_cast<std::size_t>(rtot));
    comm_->alltoallv(sendbuf.data(), scnt, sdsp, recv.data(), rcounts,
                     rdispls);
    return recv;
  };
  std::vector<Bytes> mcnt, pcnt;
  std::vector<Offset> mdsp, pdsp;
  const auto got_meta = exchange(meta, mcnt, mdsp);
  const auto got_payload = exchange(payload, pcnt, pdsp);
  // Apply received blocks into the local window. Purely local work: capture
  // and agree (the segment-exchange agreement point) so a corrupt frame on
  // one rank surfaces on all of them instead of desynchronizing the job.
  mpi::CapturedError err;
  try {
    std::byte* local = window_->localData();
    std::set<SegmentId> applied_segs;
    for (int src = 0; src < P; ++src) {
      const auto s = static_cast<std::size_t>(src);
      const auto* blocks =
          reinterpret_cast<const BlockMeta*>(got_meta.data() + mdsp[s]);
      const std::size_t nb =
          static_cast<std::size_t>(mcnt[s]) / sizeof(BlockMeta);
      const std::byte* from = got_payload.data() + pdsp[s];
      for (std::size_t i = 0; i < nb; ++i) {
        const SegmentId g = map_.segmentOf(blocks[i].off);
        const std::int64_t slot = slotOnOwner(g);
        if (integrity_on_ && blocks[i].has_crc != 0) {
          // Verify the alltoallv hop. Count a mismatch and apply anyway:
          // the owner ledger (client-time digests, exchanged separately) is
          // the authoritative detect-and-repair point at the next pass.
          ++stats_.integrity.crc_checks;
          chargeChecksum(blocks[i].len);
          if (crc32({from, static_cast<std::size_t>(blocks[i].len)}) !=
              blocks[i].crc) {
            ++stats_.integrity.crc_mismatches;
          }
        }
        std::memcpy(local + dataDisp(slot, map_.dispOf(blocks[i].off)), from,
                    static_cast<std::size_t>(blocks[i].len));
        from += blocks[i].len;
        local[flagsDisp(slot, kDirtyFlag)] = kFlagSet;
        applied_segs.insert(g);
      }
    }
    if (check::Checker* ck = comm_->world().checker();
        ck != nullptr && !applied_segs.empty()) {
      // Peers routed these blocks here because this rank owns the segments.
      comm_->proc().atomic([&] {
        for (const SegmentId g : applied_segs) {
          ck->onSegmentTransfer(name_, g, orig_rank_,
                                "File::exchangeStagedWrites");
          ck->noteDirty(name_, g);
        }
      });
    }
    comm_->chargeCopy(static_cast<Bytes>(got_payload.size()));
  } catch (const check::CheckFailure&) {
    throw;  // checker verdicts abort the job typed, never agreed-and-retyped
  } catch (const std::exception& e) {
    err.capture(e);
  }
  comm_->memory().release(staged_bytes_);
  staged_.clear();
  staged_bytes_ = 0;
  collectiveAgreeOnError(err);
}

void File::nodeExchangeStagedWrites() {
  flushLevel1();  // move any level-1 residue into the staging area
  ++stats_.node_exchanges;
  const int N = node_map_->numNodes();
  // Stage records addressed to the *node* hosting each block's owner:
  // [BlockMeta][payload] back to back.
  std::vector<std::vector<std::byte>> per_node(static_cast<std::size_t>(N));
  for (const auto& [off, bytes] : staged_) {
    const auto dn = static_cast<std::size_t>(
        node_map_->nodeOf(curOf(ownerOf(map_.segmentOf(off)))));
    BlockMeta m{off, static_cast<Bytes>(bytes.size())};
    if (integrity_on_) {
      m.crc = crc32({bytes.data(), bytes.size()});
      m.has_crc = 1;
      chargeChecksum(m.len);
    }
    appendBytes(per_node[dn], &m, sizeof(m));
    appendBytes(per_node[dn], bytes.data(), bytes.size());
  }
  const std::int64_t puts_before = node_agg_->stats().internode_puts;
  const Bytes membus_before = node_agg_->stats().intranode_bytes;
  // Source-leader rewrite: merge adjacent same-segment extents contributed
  // by the node's ranks into single records. On interleaved patterns the
  // node's ranks own neighbouring stripes, so this collapses many tiny
  // per-rank extents into few large ones before they pay the NIC.
  const auto coalesce =
      [this](int, const std::vector<topo::NodeAggregator::RankBlob>& blobs) {
        struct Rec {
          Offset off = 0;
          Bytes len = 0;
          const std::byte* src = nullptr;
        };
        std::vector<Rec> recs;
        for (const auto& rb : blobs) {
          std::size_t pos = 0;
          while (pos < rb.data.size()) {
            BlockMeta m;
            TCIO_CHECK(pos + sizeof(m) <= rb.data.size());
            std::memcpy(&m, rb.data.data() + pos, sizeof(m));
            pos += sizeof(m);
            TCIO_CHECK(pos + static_cast<std::size_t>(m.len) <=
                       rb.data.size());
            if (integrity_on_ && m.has_crc != 0) {
              // Verify the rank -> source-leader hop before coalescing, so a
              // flip in one contribution cannot hide inside a merged run.
              ++stats_.integrity.crc_checks;
              chargeChecksum(m.len);
              if (crc32({rb.data.data() + pos,
                         static_cast<std::size_t>(m.len)}) != m.crc) {
                ++stats_.integrity.crc_mismatches;
              }
            }
            recs.push_back({m.off, m.len, rb.data.data() + pos});
            pos += static_cast<std::size_t>(m.len);
          }
        }
        std::stable_sort(recs.begin(), recs.end(),
                         [](const Rec& a, const Rec& b) {
                           return a.off < b.off;
                         });
        std::vector<std::byte> out;
        out.reserve(recs.size() * sizeof(BlockMeta));
        std::size_t i = 0;
        while (i < recs.size()) {
          // A merged run must stay inside one segment: its owner and slot
          // are derived from the run's first offset at apply time.
          std::size_t j = i + 1;
          Bytes run = recs[i].len;
          while (j < recs.size() &&
                 recs[j].off == recs[j - 1].off + recs[j - 1].len &&
                 map_.segmentOf(recs[j].off) == map_.segmentOf(recs[i].off)) {
            run += recs[j].len;
            ++j;
          }
          BlockMeta m{recs[i].off, run};
          if (integrity_on_) {
            // Re-digest the merged run (chained CRC over its pieces) so the
            // leader -> destination hop is covered end to end.
            std::uint32_t c = 0;
            for (std::size_t k = i; k < j; ++k) {
              c = crc32({recs[k].src, static_cast<std::size_t>(recs[k].len)},
                        c);
            }
            m.crc = c;
            m.has_crc = 1;
            chargeChecksum(run);
          }
          appendBytes(out, &m, sizeof(m));
          for (std::size_t k = i; k < j; ++k) {
            appendBytes(out, recs[k].src, static_cast<std::size_t>(recs[k].len));
          }
          i = j;
        }
        return out;
      };
  const auto frames = node_agg_->exchange(per_node, coalesce);
  // Destination leaders apply the received blocks into node-local owners'
  // windows — membus epochs, one per owner. Leader-local work: capture and
  // agree after the barrier below so a leader-side fault becomes the same
  // typed error on every rank instead of a wedged job.
  mpi::CapturedError err;
  try {
    if (node_agg_->isActiveLeader()) {
      std::map<Rank, std::vector<mpi::Window::PutBlock>> by_owner;
      std::map<Rank, std::set<std::int64_t>> flagged;
      std::set<SegmentId> applied_segs;
      Bytes applied = 0;
      for (const auto& from_node : frames) {
        for (const auto& rb : from_node) {
          std::size_t pos = 0;
          while (pos < rb.data.size()) {
            BlockMeta m;
            TCIO_CHECK(pos + sizeof(m) <= rb.data.size());
            std::memcpy(&m, rb.data.data() + pos, sizeof(m));
            pos += sizeof(m);
            TCIO_CHECK(pos + static_cast<std::size_t>(m.len) <=
                       rb.data.size());
            const SegmentId g = map_.segmentOf(m.off);
            const Rank owner = ownerOf(g);  // window target: original rank
            const std::int64_t slot = slotOnOwner(g);
            if (integrity_on_ && m.has_crc != 0) {
              // Verify the inter-node NIC hop at the destination leader;
              // count a mismatch and apply anyway (the owner ledger repairs
              // at the next verification pass).
              ++stats_.integrity.crc_checks;
              chargeChecksum(m.len);
              if (crc32({rb.data.data() + pos,
                         static_cast<std::size_t>(m.len)}) != m.crc) {
                ++stats_.integrity.crc_mismatches;
              }
            }
            auto& blocks = by_owner[owner];
            if (flagged[owner].insert(slot).second) {
              blocks.push_back({flagsDisp(slot, kDirtyFlag), &kFlagSet, 1});
            }
            blocks.push_back(
                {dataDisp(slot, map_.dispOf(m.off)), rb.data.data() + pos,
                 m.len});
            pos += static_cast<std::size_t>(m.len);
            applied += m.len;
            applied_segs.insert(g);
          }
        }
      }
      if (check::Checker* ck = comm_->world().checker();
          ck != nullptr && !applied_segs.empty()) {
        comm_->proc().atomic([&] {
          for (const SegmentId g : applied_segs) {
            ck->onSegmentTransfer(name_, g, ownerOf(g),
                                  "File::nodeExchangeStagedWrites");
            ck->noteDirty(name_, g);
          }
        });
      }
      for (auto& [owner, blocks] : by_owner) {
        window_->lock(mpi::LockType::kShared, owner);
        window_->putIndexed(owner, blocks);
        window_->unlock(owner);
      }
      stats_.intranode_bytes += applied;
    }
  } catch (const check::CheckFailure&) {
    throw;  // checker verdicts abort the job typed, never agreed-and-retyped
  } catch (const std::exception& e) {
    err.capture(e);
  }
  // The apply epochs above must land before any rank inspects or drains its
  // window (owner loads in collectiveFetch, drainToFs at close).
  comm_->barrier();
  stats_.internode_messages_saved -=
      node_agg_->stats().internode_puts - puts_before;
  stats_.intranode_bytes +=
      node_agg_->stats().intranode_bytes - membus_before;
  comm_->memory().release(staged_bytes_);
  staged_.clear();
  staged_bytes_ = 0;
  collectiveAgreeOnError(err);
}

void File::nodeAggregatedGather(std::vector<PendingRead>& reads) {
  const int N = node_map_->numNodes();
  const auto sn = static_cast<std::size_t>(N);
  const Bytes membus_before = node_agg_->stats().intranode_bytes;
  // Requests travel to the node hosting each block's owner. Replies come
  // back in request order, so remember the order per serving node.
  std::vector<std::vector<std::byte>> req(sn);
  std::vector<std::vector<PendingRead*>> order(sn);
  for (PendingRead& r : reads) {
    const auto dn = static_cast<std::size_t>(
        node_map_->nodeOf(curOf(ownerOf(map_.segmentOf(r.off)))));
    const BlockMeta m{r.off, r.len};
    appendBytes(req[dn], &m, sizeof(m));
    order[dn].push_back(&r);
  }
  const auto requests = node_agg_->exchange(req);
  // Serving leaders answer from node-local owners' windows. Reply streams
  // are framed per requester: [i32 requester][u64 len][bytes].
  std::vector<std::vector<std::byte>> replies(sn);
  if (node_agg_->isActiveLeader()) {
    // Pass 1: lay out reply streams (headers + payload space) so the get
    // blocks can point into stable storage.
    struct Slice {
      std::size_t node = 0;
      std::size_t at = 0;  // payload start within replies[node]
    };
    std::vector<std::pair<BlockMeta, Slice>> wanted;
    for (std::size_t s = 0; s < sn; ++s) {
      for (const auto& rb : requests[s]) {
        const std::size_t nb = rb.data.size() / sizeof(BlockMeta);
        TCIO_CHECK(rb.data.size() == nb * sizeof(BlockMeta));
        Bytes total = 0;
        std::vector<BlockMeta> metas(nb);
        for (std::size_t i = 0; i < nb; ++i) {
          std::memcpy(&metas[i], rb.data.data() + i * sizeof(BlockMeta),
                      sizeof(BlockMeta));
          total += metas[i].len;
        }
        auto& stream = replies[s];
        const std::int32_t requester = rb.src;
        const auto len64 = static_cast<std::uint64_t>(total);
        appendBytes(stream, &requester, sizeof(requester));
        appendBytes(stream, &len64, sizeof(len64));
        std::size_t at = stream.size();
        stream.resize(stream.size() + static_cast<std::size_t>(total));
        for (const BlockMeta& m : metas) {
          wanted.push_back({m, {s, at}});
          at += static_cast<std::size_t>(m.len);
        }
      }
    }
    // Pass 2: one shared-lock membus epoch per node-local owner.
    std::map<Rank, std::vector<mpi::Window::GetBlock>> by_owner;
    std::set<SegmentId> served_segs;
    Bytes served = 0;
    for (const auto& [m, slice] : wanted) {
      const SegmentId g = map_.segmentOf(m.off);
      by_owner[ownerOf(g)].push_back(
          {dataDisp(slotOnOwner(g), map_.dispOf(m.off)),
           replies[slice.node].data() + slice.at, m.len});
      served += m.len;
      served_segs.insert(g);
    }
    if (check::Checker* ck = comm_->world().checker();
        ck != nullptr && !served_segs.empty()) {
      comm_->proc().atomic([&] {
        for (const SegmentId g : served_segs) {
          ck->onSegmentTransfer(name_, g, ownerOf(g),
                                "File::nodeAggregatedGather");
        }
      });
    }
    for (auto& [owner, blocks] : by_owner) {
      window_->lock(mpi::LockType::kShared, owner);
      window_->getIndexed(owner, blocks);
      window_->unlock(owner);
    }
    stats_.intranode_bytes += served;
  }
  const auto answers = node_agg_->exchange(replies);
  // Leaders demux replies per requester; each fragment is wrapped
  // [i32 serving node][u64 len][bytes] so the requester can route it to its
  // per-node request list.
  const std::vector<Rank>& members =
      node_map_->ranksOnNode(node_map_->myNode());
  std::vector<std::vector<std::byte>> per_rank(members.size());
  if (node_agg_->isActiveLeader()) {
    std::map<Rank, std::size_t> node_rank_of;
    for (std::size_t q = 0; q < members.size(); ++q) {
      node_rank_of[members[q]] = q;
    }
    for (std::size_t s = 0; s < sn; ++s) {
      for (const auto& rb : answers[s]) {
        std::size_t pos = 0;
        while (pos < rb.data.size()) {
          std::int32_t requester = 0;
          std::uint64_t len = 0;
          TCIO_CHECK(pos + sizeof(requester) + sizeof(len) <= rb.data.size());
          std::memcpy(&requester, rb.data.data() + pos, sizeof(requester));
          pos += sizeof(requester);
          std::memcpy(&len, rb.data.data() + pos, sizeof(len));
          pos += sizeof(len);
          TCIO_CHECK(pos + len <= rb.data.size());
          auto& blob = per_rank[node_rank_of.at(requester)];
          const auto sn32 = static_cast<std::int32_t>(s);
          appendBytes(blob, &sn32, sizeof(sn32));
          appendBytes(blob, &len, sizeof(len));
          appendBytes(blob, rb.data.data() + pos, static_cast<std::size_t>(len));
          pos += static_cast<std::size_t>(len);
        }
      }
    }
  }
  const std::vector<std::byte> mine =
      node_agg_->scatterToRanks(std::move(per_rank));
  // Route each serving node's answer bytes to the recorded reads in order.
  std::size_t pos = 0;
  std::vector<std::size_t> next(sn, 0);
  while (pos < mine.size()) {
    std::int32_t serving = 0;
    std::uint64_t len = 0;
    TCIO_CHECK(pos + sizeof(serving) + sizeof(len) <= mine.size());
    std::memcpy(&serving, mine.data() + pos, sizeof(serving));
    pos += sizeof(serving);
    std::memcpy(&len, mine.data() + pos, sizeof(len));
    pos += sizeof(len);
    TCIO_CHECK(pos + len <= mine.size());
    const auto s = static_cast<std::size_t>(serving);
    std::uint64_t used = 0;
    while (used < len) {
      TCIO_CHECK_MSG(next[s] < order[s].size(),
                     "node-aggregated reply exceeds recorded reads");
      PendingRead* r = order[s][next[s]++];
      TCIO_CHECK(used + static_cast<std::uint64_t>(r->len) <= len);
      std::memcpy(r->dst, mine.data() + pos + used,
                  static_cast<std::size_t>(r->len));
      used += static_cast<std::uint64_t>(r->len);
    }
    pos += static_cast<std::size_t>(len);
    comm_->chargeCopy(static_cast<Bytes>(len));
  }
  for (std::size_t s = 0; s < sn; ++s) {
    TCIO_CHECK_MSG(next[s] == order[s].size(),
                   "node-aggregated gather left reads unanswered");
  }
  stats_.intranode_bytes +=
      node_agg_->stats().intranode_bytes - membus_before;
}

void File::close() {
  if (!open_) return;
  check::ScopedLabel phase(comm_->world().checker(), comm_->proc().rank(),
                           "File::close");
  // Mark closed up front: if any step below throws, the destructor must not
  // attempt the collective sequence again mid-unwind (the other ranks are no
  // longer at a matching program point).
  open_ = false;
  maybeCorruptWindow();
  // Deferred agreed outcome: with crash tolerance the agreement points
  // return their verdict instead of throwing, so resources are released and
  // the handle closed before the error finally surfaces.
  std::int32_t agreed_code = mpi::CapturedError::kNone;
  std::string agreed_what;
  const auto accumulate = [&](std::int32_t code, const std::string& what) {
    if (code != mpi::CapturedError::kNone &&
        (agreed_code == mpi::CapturedError::kNone || code > agreed_code)) {
      agreed_code = code;
      agreed_what = what;
    }
  };
  mpi::CapturedError err;
  if (cfg_.crash.enabled) {
    crashPoint(CrashPoint::kAtCollective);
    // Detection round before any plain collective: peers that died since the
    // last collective point (or die in this residue flush) are agreed dead,
    // the communicator shrinks, and their segments are adopted + replayed.
    try {
      flushLevel1();
    } catch (const RankCrashedError&) {
      throw;
    } catch (const check::CheckFailure&) {
      throw;  // checker verdicts abort the job typed, never agreed-and-retyped
    } catch (const std::exception& e) {
      err.capture(e);
    }
    auto [code, what] = agreeAndRecover(err);
    accumulate(code, what);
    err = {};
  }
  maybeFallBackToTwoSided();
  // Every agreement point below throws the *same* typed error on *all*
  // ranks, so catching locally and continuing the close sequence keeps the
  // ranks in lockstep.
  if ((flags_ & fs::kRead) != 0 && agreed_code == mpi::CapturedError::kNone) {
    try {
      collectiveFetch();  // resolve any pending lazy reads
    } catch (const RankCrashedError&) {
      throw;
    } catch (const check::CheckFailure&) {
      throw;  // checker verdicts abort the job typed, never agreed-and-retyped
    } catch (const std::exception& e) {
      err.capture(e);
    }
  }
  if (!err.set() && agreed_code == mpi::CapturedError::kNone) {
    try {
      if (cfg_.node_aggregation) {
        nodeExchangeStagedWrites();
      } else if (twoSidedExchange()) {
        exchangeStagedWrites();
      } else if (!cfg_.crash.enabled) {
        flushLevel1();  // local + RMA only; agreement happens below
      }
      // (crash mode already flushed the residue in the detection round)
    } catch (const RankCrashedError&) {
      throw;
    } catch (const check::CheckFailure&) {
      throw;  // checker verdicts abort the job typed, never agreed-and-retyped
    } catch (const std::exception& e) {
      err.capture(e);
    }
  }
  // The final exchange's digests reach their owners before the close-time
  // scrub below (aligned: agreed_code is collectively agreed, so every live
  // rank takes the same branch).
  if (integrity_on_ && agreed_code == mpi::CapturedError::kNone) {
    exchangeDigests();
  }
  // Aggregate file size across ranks (pre-existing contents included).
  // Journal replays above fold a dead rank's extents into the survivors'
  // local_max_written_, so its tail still counts toward the agreed size.
  std::int64_t fsize = std::max(local_max_written_, client_.size(fsfile_));
  comm_->allreduce(&fsize, 1, mpi::ReduceOp::kMax);
  comm_->barrier();  // paper: synchronize before draining level-2
  final_fsize_ = fsize;
  // Drain under collective error agreement: a rank whose file-system writes
  // fail must not leave its peers blocked in the closing collectives, and a
  // rank whose own writes succeeded must still learn the file is damaged.
  // The drain is purely local, so skipping it on an already-failed rank (or
  // failing on some ranks only) cannot desynchronize the collectives.
  if (!err.set() && agreed_code == mpi::CapturedError::kNone &&
      (flags_ & fs::kWrite) != 0) {
    try {
      // Close-time scrub: every owned, digested segment is verified once
      // more while the journal still exists to repair it — the drain below
      // is the last hop before the bytes become the file's truth.
      if (integrity_on_ && cfg_.integrity.scrub_at_close) {
        ++stats_.integrity.scrub_passes;
        for (const auto& [g, slot] : ownedSlots()) {
          if (ledger_.find(g) != ledger_.end()) {
            verifySlot(g, slot);
            ++stats_.integrity.segments_scrubbed;
          }
        }
      }
      drainToFs(fsize);
    } catch (const RankCrashedError&) {
      throw;
    } catch (const check::CheckFailure&) {
      throw;  // checker verdicts abort the job typed, never agreed-and-retyped
    } catch (const std::exception& e) {
      err.capture(e);
    }
  }
  drained_ = true;
  if (cfg_.crash.enabled) {
    // Post-drain agreement: a rank that died mid-drain (kMidClose) left some
    // of its dirty segments unwritten. agreeAndRecover loops until the dead
    // set stops growing; survivors reconstruct the orphaned segments from
    // the journals and write them directly to the file.
    auto [code, what] = agreeAndRecover(err);
    accumulate(code, what);
    err = {};
    // Commit: every journaled byte is durably in the file proper. On an
    // agreed failure the journal is left intact — the bytes it holds are
    // exactly what the damaged file may be missing.
    if (journal_ && agreed_code == mpi::CapturedError::kNone) {
      try {
        journal_->commit();
      } catch (const std::exception& e) {
        err.capture(e);
      }
    }
    // The commit is an MDS op pair and can fault; one more aligned round.
    auto [code2, what2] = agreeAndRecover(err);
    accumulate(code2, what2);
    err = {};
    journal_.reset();
  } else if (journal_ != nullptr) {
    // Integrity-only journaling: after a clean drain every journaled byte is
    // durably in the file proper, so the log is truncated. On a failure path
    // the journal stays — its frames are the only clean copy of the bytes
    // the damaged file may be missing.
    if (!err.set() && agreed_code == mpi::CapturedError::kNone) {
      try {
        journal_->commit();
      } catch (const std::exception& e) {
        err.capture(e);
      }
    }
    journal_.reset();
  }
  try {
    client_.close(fsfile_);
  } catch (const std::exception& e) {
    err.capture(e);
  }
  if (node_agg_ != nullptr) node_agg_->close();
  comm_->memory().release(cfg_.segment_size);  // level-1 buffer
  comm_->memory().release(window_->localSize());
  window_.reset();
  syncRecoveryStats();
  if (cfg_.crash.enabled) {
    auto [code, what] = agreeAndRecover(err);
    accumulate(code, what);
    if (agreed_code != mpi::CapturedError::kNone) {
      noteSessionAborted();
      mpi::throwTyped(agreed_code, agreed_what);
    }
  } else {
    try {
      collectiveAgreeOnError(err);
    } catch (...) {
      noteSessionAborted();
      throw;
    }
  }
  if (check::Checker* ck = comm_->world().checker()) {
    // Clean collective close: the last live rank to get here triggers the
    // drain-coverage verification over the agreed final file size.
    comm_->proc().atomic(
        [&] { ck->onFileClosed(name_, final_fsize_, orig_rank_); });
  }
}

void File::drainToFs(Bytes file_size) {
  check::Checker* ck = comm_->world().checker();
  const std::byte* local = window_->localData();
  for (const auto& [g, slot] : ownedSlots()) {
    if (local[flagsDisp(slot, kDirtyFlag)] == std::byte{0}) continue;
    const Offset base = map_.baseOf(g);
    if (base >= file_size) continue;
    crashPoint(CrashPoint::kMidClose);
    const Bytes len = std::min(cfg_.segment_size, file_size - base);
    pwriteDegraded(base, local + dataDisp(slot, 0), len);
    if (ck != nullptr) {
      comm_->proc().atomic(
          [&] { ck->onDrain(name_, g, orig_rank_, "File::drainToFs"); });
    }
  }
}

// -- Fault recovery -----------------------------------------------------------

void File::collectiveAgreeOnError(const mpi::CapturedError& err) {
  auto [code, what] = agreeAndRecover(err);
  if (code != mpi::CapturedError::kNone) mpi::throwTyped(code, what);
}

// -- Fail-stop crash tolerance ------------------------------------------------

Rank File::ownerOf(SegmentId g) const {
  const auto it = orphans_.find(g);
  return it == orphans_.end() ? map_.rankOf(g) : it->second.owner;
}

std::int64_t File::slotOnOwner(SegmentId g) const {
  const auto it = orphans_.find(g);
  return it == orphans_.end() ? map_.slotOf(g) : it->second.slot;
}

Rank File::curOf(Rank orig) const {
  if (cur_of_orig_.empty()) return orig;
  const Rank cur = cur_of_orig_[static_cast<std::size_t>(orig)];
  TCIO_CHECK_MSG(cur >= 0, "routing data to a rank agreed dead");
  return cur;
}

std::vector<std::pair<SegmentId, std::int64_t>> File::ownedSlots() const {
  std::vector<std::pair<SegmentId, std::int64_t>> out;
  out.reserve(static_cast<std::size_t>(cfg_.segments_per_rank) +
              orphans_.size());
  for (std::int64_t slot = 0; slot < cfg_.segments_per_rank; ++slot) {
    out.emplace_back(map_.segmentFor(orig_rank_, slot), slot);
  }
  for (const auto& [g, t] : orphans_) {
    if (t.owner == orig_rank_) out.emplace_back(g, t.slot);
  }
  return out;
}

void File::growTakeoverCapacity(std::int64_t new_cap) {
  TCIO_CHECK(new_cap > slot_cap_);
  const Bytes old_flags = flags_region_;
  const Bytes new_flags = new_cap * kFlagBytes;
  window_->resizeLocal(new_flags + new_cap * cfg_.segment_size);
  // Relocate the data slots to their new displacements, high to low: slot
  // s's new start (new_flags + s*S) is strictly above its old start
  // (old_flags + s*S) and strictly below slot s+1's old start once s+1 has
  // already moved, so the moves never clobber unmoved data. Flag bytes stay
  // put — flagsDisp is capacity-independent — and the region the growth
  // opened between the old and new flag boundaries is cleared (the new
  // slots' flags must read as clean/non-resident).
  comm_->proc().atomic([&] {
    std::byte* mem = window_->localData();
    for (std::int64_t s = slot_cap_ - 1; s >= 0; --s) {
      std::memmove(mem + new_flags + s * cfg_.segment_size,
                   mem + old_flags + s * cfg_.segment_size,
                   static_cast<std::size_t>(cfg_.segment_size));
    }
    std::memset(mem + old_flags, 0,
                static_cast<std::size_t>(new_flags - old_flags));
  });
  comm_->chargeCopy(slot_cap_ * cfg_.segment_size);  // the relocation pass
  slot_cap_ = new_cap;
  flags_region_ = new_flags;
  ++stats_.degraded.window_remaps;
}

void File::die(const char* where) {
  // Fail-stop: this rank is gone. Closing the handle here keeps the
  // destructor from attempting the collective close sequence mid-unwind;
  // everything else (window memory, journal handle, staged bytes) dies with
  // the process, exactly like a real crash.
  open_ = false;
  throw RankCrashedError("rank " + std::to_string(orig_rank_) +
                             " fail-stop crash (" + where + ")",
                         orig_rank_);
}

void File::crashPoint(CrashPoint point) {
  if (crash_plan_ == nullptr || !crash_plan_->fires(point)) return;
  switch (point) {
    case CrashPoint::kAtCollective: die("at collective entry");
    case CrashPoint::kMidRma: die("between journal append and RMA epoch");
    case CrashPoint::kMidJournal: die("mid journal append");
    case CrashPoint::kMidClose: die("mid close drain");
    case CrashPoint::kMidRecovery: die("mid recovery replay");
  }
  die("unknown crash point");
}

void File::journalExtents(SegmentId seg, const std::vector<Extent>& extents) {
  if (journal_ == nullptr) return;
  journal_->batchBegin();  // one device write per segment flush
  for (const Extent& e : extents) {
    const std::span<const std::byte> payload{
        level1_.data() + e.begin, static_cast<std::size_t>(e.size())};
    if (crash_plan_ != nullptr &&
        crash_plan_->fires(CrashPoint::kMidJournal)) {
      // Torn write: a deterministic prefix of the frame reaches the device,
      // then the rank dies. Replay later drops the torn tail via CRC.
      const std::int64_t frame =
          Journal::kHeaderBytes + static_cast<std::int64_t>(payload.size());
      journal_->append(seg, e.begin, payload, crash_plan_->tornBytes(frame));
      die("mid journal append");
    }
    journal_->append(seg, e.begin, payload);
  }
  journal_->batchEnd();
}

std::pair<std::int32_t, std::string> File::agreeAndRecover(
    mpi::CapturedError err) {
  if (!cfg_.crash.enabled) {
    mpi::agreeOnError(*comm_, err);  // throws on any agreed error
    return {mpi::CapturedError::kNone, std::string()};
  }
  std::int32_t code = mpi::CapturedError::kNone;
  std::string what;
  // Epochs loop until the dead set stops growing: recovering from one batch
  // of deaths (journal reads, file writes) can itself fail, and the verdict
  // for that failure must again be collective.
  for (;;) {
    const mpi::LivenessOutcome out =
        mpi::agreeWithLiveness(*comm_, err, epoch_++, cfg_.crash.liveness_window,
                               cfg_.crash.liveness_poll);
    if (out.self_dead) {
      // Peers unanimously missed this rank inside the liveness window and
      // have already agreed it dead; rejoining would desynchronize them.
      open_ = false;
      throw RankCrashedError(
          "rank " + std::to_string(orig_rank_) +
              " self-fenced: declared dead by liveness agreement",
          orig_rank_);
    }
    if (out.code != mpi::CapturedError::kNone &&
        (code == mpi::CapturedError::kNone || out.code > code)) {
      code = out.code;
      what = out.what;
    }
    if (out.dead.empty()) return {code, what};
    err = {};
    try {
      handleDeaths(out.dead);
    } catch (const RankCrashedError&) {
      throw;
    } catch (const check::CheckFailure&) {
      throw;  // checker verdicts abort the job typed, never agreed-and-retyped
    } catch (const std::exception& e) {
      err.capture(e);
    }
  }
}

void File::handleDeaths(const std::vector<Rank>& dead_cur) {
  // 1) Translate the agreed dead set (ranks of the current communicator) to
  //    original identities and record the deaths.
  std::vector<Rank> dead_orig;
  dead_orig.reserve(dead_cur.size());
  for (const Rank r : dead_cur) {
    dead_orig.push_back(orig_of_cur_[static_cast<std::size_t>(r)]);
  }
  std::sort(dead_orig.begin(), dead_orig.end());
  for (const Rank d : dead_orig) dead_[static_cast<std::size_t>(d)] = true;
  stats_.degraded.ranks_crashed +=
      static_cast<std::int64_t>(dead_orig.size());
  check::Checker* ck = comm_->world().checker();
  if (ck != nullptr) {
    comm_->proc().atomic([&] {
      for (const Rank d : dead_orig) ck->noteDeath(name_, d);
    });
  }
  // 2) Shrink: the survivors (every live rank reaches this point with the
  //    same dead set) move to a fresh communicator on a pre-reserved
  //    context. The level-2 window stays on the original communicator —
  //    passive-target RMA needs no progress from dead ranks.
  TCIO_CHECK_MSG(shrinks_ < kMaxShrinks,
                 "crash shrink budget exhausted (more shrink events than "
                 "reserved communicator contexts)");
  std::vector<Rank> surv_cur;
  for (Rank r = 0; r < comm_->size(); ++r) {
    if (std::find(dead_cur.begin(), dead_cur.end(), r) == dead_cur.end()) {
      surv_cur.push_back(r);
    }
  }
  auto next = std::make_unique<mpi::Comm>(
      comm_->shrink(surv_cur, shrink_context_base_ + shrinks_++));
  std::vector<Rank> new_orig_of_cur;
  new_orig_of_cur.reserve(surv_cur.size());
  for (const Rank r : surv_cur) {
    new_orig_of_cur.push_back(orig_of_cur_[static_cast<std::size_t>(r)]);
  }
  orig_of_cur_ = std::move(new_orig_of_cur);
  cur_of_orig_.assign(static_cast<std::size_t>(orig_size_), -1);
  for (std::size_t i = 0; i < orig_of_cur_.size(); ++i) {
    cur_of_orig_[static_cast<std::size_t>(orig_of_cur_[i])] =
        static_cast<Rank>(i);
  }
  comm_ = next.get();
  shrunk_comms_.push_back(std::move(next));
  // Renew the shrink budget from the survivor set: once the reserved block
  // of contexts is spent, rank 0 of the shrunk communicator reserves a fresh
  // block and broadcasts its base, so crash tolerance survives arbitrarily
  // many sequential shrink events — not just the first kMaxShrinks.
  if (shrinks_ == kMaxShrinks) {
    int base = 0;
    if (comm_->rank() == 0) base = comm_->reserveContexts(kMaxShrinks);
    comm_->bcast(&base, sizeof(base), 0);
    shrink_context_base_ = base;
    shrinks_ = 0;
  }
  // 3) Deterministic takeover: the dead ranks' native segments — plus any
  //    orphans they had previously adopted — are reassigned round-robin over
  //    the live original ranks, each into the new owner's next spare window
  //    slot. Every survivor computes the identical assignment.
  std::vector<Rank> live;
  for (Rank r = 0; r < static_cast<Rank>(orig_size_); ++r) {
    if (!dead_[static_cast<std::size_t>(r)]) live.push_back(r);
  }
  TCIO_CHECK_MSG(!live.empty(), "every rank of the TCIO job crashed");
  std::vector<SegmentId> orphan_segs;
  for (const Rank d : dead_orig) {
    for (std::int64_t slot = 0; slot < cfg_.segments_per_rank; ++slot) {
      orphan_segs.push_back(map_.segmentFor(d, slot));
    }
    for (const auto& [g, t] : orphans_) {
      if (t.owner == d) orphan_segs.push_back(g);  // transitive reassignment
    }
  }
  // Capacity pre-pass: simulate the round-robin assignment this batch is
  // about to make. When any survivor's spare slots would run out, every
  // survivor grows its window to the doubled capacity that fits — a
  // collective window-remap round computed from agreed state, so no rank
  // ever addresses a peer's old layout afterwards. Spare capacity is thus
  // elastic: crash tolerance survives arbitrarily many deaths, not just the
  // statically doubled slot budget.
  {
    std::vector<std::int64_t> spare = next_spare_;
    std::int64_t rr = takeover_rr_;
    std::int64_t needed = slot_cap_;
    for (std::size_t i = 0; i < orphan_segs.size(); ++i) {
      const Rank owner = live[static_cast<std::size_t>(
          rr++ % static_cast<std::int64_t>(live.size()))];
      needed = std::max(needed, ++spare[static_cast<std::size_t>(owner)]);
    }
    if (needed > slot_cap_) {
      std::int64_t cap = slot_cap_;
      while (cap < needed) cap *= 2;
      growTakeoverCapacity(cap);
    }
  }
  std::vector<std::pair<SegmentId, std::int64_t>> mine;
  for (const SegmentId g : orphan_segs) {
    const Rank owner =
        live[static_cast<std::size_t>(takeover_rr_++ %
                                      static_cast<std::int64_t>(live.size()))];
    const std::int64_t slot = next_spare_[static_cast<std::size_t>(owner)]++;
    TCIO_CHECK_MSG(slot < slotCount(),
                   "takeover slot past grown capacity (pre-pass bug)");
    orphans_[g] = {owner, slot};
    if (owner == orig_rank_) mine.emplace_back(g, slot);
  }
  if (ck != nullptr) {
    comm_->proc().atomic([&] {
      for (const SegmentId g : orphan_segs) {
        ck->noteRemap(name_, g, orphans_[g].owner);
      }
    });
  }
  stats_.degraded.segments_taken_over +=
      static_cast<std::int64_t>(mine.size());
  // 4) Node aggregation is rebuilt over the shrunk communicator; a dead
  //    leader's node promotes its next rank automatically (NodeMap's leader
  //    is the node's lowest surviving rank).
  if (cfg_.node_aggregation) {
    node_agg_->close();
    node_agg_.reset();
    node_map_ = std::make_unique<topo::NodeMap>(*comm_);
    Bytes slot_bytes = cfg_.node_agg_slot_bytes;
    if (slot_bytes == 0) {
      slot_bytes =
          static_cast<Bytes>(node_map_->maxNodeSize()) * cfg_.segment_size +
          4096;
    }
    node_agg_ = std::make_unique<topo::NodeAggregator>(
        *node_map_, slot_bytes, cfg_.node_agg_rotate_leaders);
  }
  // 5) Replay: the new owner reconstructs each adopted segment from the
  //    journals. A dead rank's window memory is *never* read — a real
  //    crashed process takes its memory with it; the journals are the only
  //    durable copy of bytes that were still buffered.
  if (!mine.empty()) replayOrphans(mine);
}

void File::replayOrphans(
    const std::vector<std::pair<SegmentId, std::int64_t>>& mine) {
  check::Checker* ck = comm_->world().checker();
  if (journal_ == nullptr) {
    // Journaling off: whatever the dead ranks had buffered for these
    // segments is gone. Reported, never silent.
    stats_.degraded.unjournaled_segments_lost +=
        static_cast<std::int64_t>(mine.size());
    if (ck != nullptr) {
      comm_->proc().atomic([&] {
        for (const auto& [g, slot] : mine) ck->noteSegmentLost(name_, g);
      });
    }
    return;
  }
  // Any original rank may have contributed extents to an orphaned segment
  // (writers journal before their one-sided put lands in the dead owner's
  // window), so recovery scans every rank's journal — costed reads.
  std::vector<Journal::Parsed> logs;
  logs.reserve(static_cast<std::size_t>(orig_size_));
  for (Rank r = 0; r < static_cast<Rank>(orig_size_); ++r) {
    logs.push_back(Journal::readAndParse(client_, journalPath(name_, r)));
    stats_.degraded.journal_torn_records += logs.back().torn_records;
    // A committed record whose body failed its frame CRC (silent corruption
    // on the journal device) was dropped by the parser: the write it held is
    // lost to replay exactly as if it had never been journaled. Reported,
    // never silently re-applied.
    stats_.degraded.unjournaled_segments_lost += logs.back().corrupt_records;
  }
  std::byte* local = drained_ ? nullptr : window_->localData();
  std::vector<std::byte> scratch;
  for (const auto& [g, slot] : mine) {
    // Cascade point: an adopter can die while replaying the very segments
    // it just adopted. Recovery stays purely rank-local here (the shrink /
    // context-renewal / node-agg collectives all completed above), so the
    // survivors' next liveness epoch simply agrees on this death too and
    // reassigns the orphans transitively — replay re-sources from the
    // ORIGINAL ranks' journals, so a half-replayed window dies harmlessly
    // with its adopter and the re-replay is idempotent.
    crashPoint(CrashPoint::kMidRecovery);
    if (drained_) {
      scratch.assign(static_cast<std::size_t>(cfg_.segment_size),
                     std::byte{0});
    }
    bool any = false;
    for (const Journal::Parsed& log : logs) {
      for (const Journal::Record& rec : log.records) {
        if (rec.seg != g) continue;
        std::byte* dst = drained_ ? scratch.data() + rec.disp
                                  : local + dataDisp(slot, rec.disp);
        std::memcpy(dst, rec.payload.data(), rec.payload.size());
        if (integrity_on_ && !drained_) {
          // The adopted segment joins this rank's checksum domain: the dead
          // owner's ledger died with it, so rebuild digests from the clean
          // journal payloads just replayed.
          ledgerInsert(g, rec.disp, static_cast<Bytes>(rec.payload.size()), 0,
                       1, crc32(rec.payload));
        }
        any = true;
        ++stats_.degraded.journal_records_replayed;
        stats_.degraded.journal_bytes_replayed +=
            static_cast<Bytes>(rec.payload.size());
        local_max_written_ = std::max(
            local_max_written_,
            map_.baseOf(g) + rec.disp +
                static_cast<Bytes>(rec.payload.size()));
      }
    }
    if (!any) {
      // Nothing in any journal for this segment (clean, or a torn tail
      // dropped every record): its buffered bytes, if any, are gone.
      if (ck != nullptr) {
        comm_->proc().atomic([&] { ck->noteSegmentLost(name_, g); });
      }
      continue;
    }
    if (drained_) {
      // The drain already ran: write the reconstructed segment straight to
      // the file (whole clamped segment — identical to what the healthy
      // drain of a dirty slot would have written).
      const Offset base = map_.baseOf(g);
      if (base >= static_cast<Offset>(final_fsize_)) continue;
      const Bytes len = std::min(cfg_.segment_size, final_fsize_ - base);
      pwriteDegraded(base, scratch.data(), len);
      if (ck != nullptr) {
        comm_->proc().atomic(
            [&] { ck->onDrain(name_, g, orig_rank_, "File::replayOrphans"); });
      }
    } else {
      local[flagsDisp(slot, kDirtyFlag)] = kFlagSet;
      if (ck != nullptr) {
        comm_->proc().atomic([&] {
          ck->onSegmentTransfer(name_, g, orig_rank_, "File::replayOrphans");
          ck->noteDirty(name_, g);
        });
      }
    }
  }
}

// -- End-to-end data integrity (DESIGN.md §11) --------------------------------

void File::chargeChecksum(Bytes n) {
  if (n <= 0) return;
  comm_->proc().advance(static_cast<double>(n) /
                        cfg_.integrity.checksum_bandwidth);
}

void File::digestLevel1(SegmentId seg, const std::vector<Extent>& extents) {
  // One DigestRec per *run*, not per extent: a contiguous neighbour extends
  // the piece, an equal-length neighbour at a constant stride joins the run,
  // and the CRC streams across the pieces either way. Fine-grained
  // interleaved patterns (Fig. 5) would otherwise ship a 32-byte record for
  // every 4-byte element — more digest than data on the NIC.
  Bytes total = 0;
  DigestRec run;
  bool open = false;
  for (const Extent& e : extents) {
    const std::span<const std::byte> bytes{
        level1_.data() + e.begin, static_cast<std::size_t>(e.size())};
    total += e.size();
    if (open && run.count == 1 && run.stride == 0 &&
        e.begin == run.disp + static_cast<Offset>(run.len)) {
      run.len += static_cast<std::uint32_t>(e.size());
      run.crc = crc32(bytes, run.crc);
      continue;
    }
    if (open && e.size() == static_cast<Bytes>(run.len)) {
      if (run.count == 1 && e.begin > run.disp &&
          e.begin - run.disp <= 0xffffffff) {
        run.stride = static_cast<std::uint32_t>(e.begin - run.disp);
        run.count = 2;
        run.crc = crc32(bytes, run.crc);
        continue;
      }
      if (run.count >= 2 &&
          e.begin == run.disp + static_cast<Offset>(run.stride) *
                                    static_cast<Offset>(run.count)) {
        ++run.count;
        run.crc = crc32(bytes, run.crc);
        continue;
      }
    }
    if (open) pending_digests_.push_back(run);
    run = {seg, e.begin, static_cast<std::uint32_t>(e.size()), 0, 1,
           crc32(bytes)};
    open = true;
  }
  if (open) pending_digests_.push_back(run);
  chargeChecksum(total);
}

void File::exchangeDigests() {
  if (!integrity_on_) return;
  if (cfg_.crash.enabled) {
    // Crash mode ships every rank's pending digests to every rank; each
    // keeps the records for segments it owns. The broadcast survives crash
    // takeovers, where ownership just changed under the writers' feet —
    // whoever ends up owning a segment has its records.
    static const std::byte dummy{};
    const void* mine = pending_digests_.empty()
                           ? static_cast<const void*>(&dummy)
                           : static_cast<const void*>(pending_digests_.data());
    std::vector<std::vector<std::byte>> all;
    comm_->allgatherv(
        mine,
        static_cast<Bytes>(pending_digests_.size() * sizeof(DigestRec)), all);
    pending_digests_.clear();
    for (const auto& blob : all) {
      const auto* recs = reinterpret_cast<const DigestRec*>(blob.data());
      const std::size_t n = blob.size() / sizeof(DigestRec);
      for (std::size_t i = 0; i < n; ++i) {
        if (ownerOf(recs[i].seg) == orig_rank_) {
          ledgerInsert(recs[i].seg, recs[i].disp,
                       static_cast<Bytes>(recs[i].len),
                       static_cast<Offset>(recs[i].stride),
                       static_cast<std::int64_t>(recs[i].count), recs[i].crc);
        }
      }
    }
    return;
  }
  // Static ownership: route every record straight to its segment's owner.
  // Fine-grained workloads produce one record per tiny strided extent, so a
  // broadcast would put P copies of an already metadata-heavy stream on the
  // NIC — the routed exchange is what keeps the integrity tax inside the
  // bench_ablation_integrity budget.
  const int P = comm_->size();
  std::vector<Bytes> sendcounts(static_cast<std::size_t>(P), 0);
  for (const DigestRec& r : pending_digests_) {
    sendcounts[static_cast<std::size_t>(curOf(ownerOf(r.seg)))] +=
        static_cast<Bytes>(sizeof(DigestRec));
  }
  std::vector<Offset> senddispls(static_cast<std::size_t>(P), 0);
  for (int d = 1; d < P; ++d) {
    senddispls[static_cast<std::size_t>(d)] =
        senddispls[static_cast<std::size_t>(d - 1)] +
        sendcounts[static_cast<std::size_t>(d - 1)];
  }
  std::vector<std::byte> sendbuf(
      pending_digests_.size() * sizeof(DigestRec));
  {
    std::vector<Offset> cursor = senddispls;
    for (const DigestRec& r : pending_digests_) {
      Offset& at = cursor[static_cast<std::size_t>(curOf(ownerOf(r.seg)))];
      std::memcpy(sendbuf.data() + at, &r, sizeof(DigestRec));
      at += static_cast<Offset>(sizeof(DigestRec));
    }
  }
  pending_digests_.clear();
  // Count exchange first (the usual two-phase recipe): every rank learns
  // how many bytes arrive from each peer.
  std::vector<Bytes> matrix(static_cast<std::size_t>(P) *
                            static_cast<std::size_t>(P));
  comm_->allgather(sendcounts.data(),
                   static_cast<Bytes>(P * sizeof(Bytes)), matrix.data());
  std::vector<Bytes> recvcounts(static_cast<std::size_t>(P), 0);
  std::vector<Offset> recvdispls(static_cast<std::size_t>(P), 0);
  Bytes total = 0;
  for (int s = 0; s < P; ++s) {
    recvcounts[static_cast<std::size_t>(s)] =
        matrix[static_cast<std::size_t>(s) * static_cast<std::size_t>(P) +
               static_cast<std::size_t>(comm_->rank())];
    recvdispls[static_cast<std::size_t>(s)] = total;
    total += recvcounts[static_cast<std::size_t>(s)];
  }
  std::vector<std::byte> recvbuf(static_cast<std::size_t>(total));
  comm_->alltoallv(sendbuf.data(), sendcounts, senddispls, recvbuf.data(),
                   recvcounts, recvdispls);
  const auto* recs = reinterpret_cast<const DigestRec*>(recvbuf.data());
  for (std::size_t i = 0; i < recvbuf.size() / sizeof(DigestRec); ++i) {
    ledgerInsert(recs[i].seg, recs[i].disp, static_cast<Bytes>(recs[i].len),
                 static_cast<Offset>(recs[i].stride),
                 static_cast<std::int64_t>(recs[i].count), recs[i].crc);
  }
}

namespace {

/// True when any piece of run 1 intersects any piece of run 2 (two-pointer
/// walk over the sorted piece starts).
bool runsOverlap(Offset d1, Bytes l1, Offset s1, std::int64_t c1, Offset d2,
                 Bytes l2, Offset s2, std::int64_t c2) {
  std::int64_t i = 0;
  std::int64_t j = 0;
  while (i < c1 && j < c2) {
    const Offset b1 = d1 + i * s1;
    const Offset b2 = d2 + j * s2;
    if (b1 < b2 + l2 && b2 < b1 + l1) return true;
    if (b1 + l1 <= b2) {
      ++i;
    } else {
      ++j;
    }
  }
  return false;
}

}  // namespace

void File::ledgerInsert(SegmentId seg, Offset disp, Bytes len, Offset stride,
                        std::int64_t count, std::uint32_t crc) {
  auto& entries = ledger_[seg];
  // A new digest supersedes any older entry it actually touches — the same
  // last-writer-wins order the byte-level puts resolved to in the window,
  // and superseded WHOLE because a run's CRC is not splittable. Span overlap
  // alone is not enough to evict: interleaved writers' strided runs cover
  // interlocking spans whose pieces never intersect.
  const Offset span_end = disp + (count - 1) * stride + len;
  for (auto it = entries.begin(); it != entries.end();) {
    const Offset b = it->first;
    const LedgerEntry& e = it->second;
    const Offset b_end = b + (e.count - 1) * e.stride + e.len;
    if (b < span_end && disp < b_end &&
        runsOverlap(disp, len, stride, count, b, e.len, e.stride, e.count)) {
      it = entries.erase(it);
    } else {
      ++it;
    }
  }
  entries[disp] = {len, stride, count, crc};
}

std::uint32_t File::ledgerCrc(const std::byte* local, std::int64_t slot,
                              Offset disp, const LedgerEntry& entry) const {
  std::uint32_t c = 0;
  for (std::int64_t k = 0; k < entry.count; ++k) {
    c = crc32({local + dataDisp(slot, disp + k * entry.stride),
               static_cast<std::size_t>(entry.len)},
              c);
  }
  return c;
}

void File::verifySlot(SegmentId g, std::int64_t slot) {
  const auto it = ledger_.find(g);
  if (it == ledger_.end() || it->second.empty()) return;
  std::byte* local = window_->localData();
  if (local[flagsDisp(slot, kDirtyFlag)] == std::byte{0} &&
      local[flagsDisp(slot, kLoadedFlag)] == std::byte{0}) {
    return;  // not resident — nothing the ledger describes is in the window
  }
  Bytes total = 0;
  bool mismatch = false;
  for (const auto& [disp, entry] : it->second) {
    ++stats_.integrity.crc_checks;
    total += entry.len * entry.count;
    if (ledgerCrc(local, slot, disp, entry) != entry.crc) {
      ++stats_.integrity.crc_mismatches;
      mismatch = true;
    }
  }
  chargeChecksum(total);
  if (mismatch) repairSegment(g, slot);
}

void File::repairSegment(SegmentId g, std::int64_t slot) {
  if (journal_ == nullptr) {
    ++stats_.integrity.unrepairable;
    throw IntegrityError("segment " + std::to_string(g) + " of " + name_ +
                         " failed its window CRC and no journal exists to "
                         "repair it");
  }
  // Any rank may have contributed extents to this segment, so the repair
  // replays every rank's journal records for it, in rank order — costed
  // reads, same discipline as crash recovery.
  std::byte* local = window_->localData();
  for (Rank r = 0; r < static_cast<Rank>(orig_size_); ++r) {
    const Journal::Parsed log =
        Journal::readAndParse(client_, journalPath(name_, r));
    for (const Journal::Record& rec : log.records) {
      if (rec.seg != g) continue;
      std::memcpy(local + dataDisp(slot, rec.disp), rec.payload.data(),
                  rec.payload.size());
    }
  }
  // The replay must reproduce every ledgered digest exactly; otherwise the
  // corruption predates the clean copies and nothing can prove the bytes.
  for (const auto& [disp, entry] : ledger_[g]) {
    if (ledgerCrc(local, slot, disp, entry) != entry.crc) {
      ++stats_.integrity.unrepairable;
      throw IntegrityError("segment " + std::to_string(g) + " of " + name_ +
                           " still fails its CRC after journal replay");
    }
  }
  ++stats_.integrity.repaired;
  local[flagsDisp(slot, kDirtyFlag)] = kFlagSet;
}

void File::scrubTick(mpi::CapturedError& err) {
  if (!integrity_on_ || cfg_.integrity.scrub_segments_per_collective <= 0) {
    return;
  }
  if (err.set()) return;  // this collective already has a verdict to agree
  try {
    const auto owned = ownedSlots();
    if (owned.empty()) return;
    ++stats_.integrity.scrub_passes;
    const std::int64_t budget =
        std::min(cfg_.integrity.scrub_segments_per_collective,
                 static_cast<std::int64_t>(owned.size()));
    for (std::int64_t i = 0; i < budget; ++i) {
      const auto& [g, slot] = owned[static_cast<std::size_t>(
          scrub_cursor_++ % static_cast<std::int64_t>(owned.size()))];
      if (ledger_.find(g) != ledger_.end()) {
        verifySlot(g, slot);
        ++stats_.integrity.segments_scrubbed;
      }
    }
  } catch (const check::CheckFailure&) {
    throw;  // checker verdicts abort the job typed, never agreed-and-retyped
  } catch (const std::exception& e) {
    err.capture(e);
  }
}

void File::maybeCorruptWindow() {
  if (corruption_ == nullptr || window_ == nullptr) return;
  // The injector flips a bit inside a *digested* extent of an owned slot, so
  // the flip is guaranteed to land in a checksum domain (a flip in
  // never-written window memory would be invisible and meaningless). The arm
  // is consumed only once such a target exists.
  for (const auto& [g, slot] : ownedSlots()) {
    const auto it = ledger_.find(g);
    if (it == ledger_.end() || it->second.empty()) continue;
    if (!corruption_->fires(CorruptSite::kWindow)) return;
    const auto& [disp, entry] = *it->second.begin();
    corruption_->flipBit({window_->localData() + dataDisp(slot, disp),
                          static_cast<std::size_t>(entry.len)});
    return;
  }
}

void File::maybeFallBackToTwoSided() {
  if (cfg_.rma_fault_fallback_threshold <= 0 || fallback_two_sided_) return;
  if (!cfg_.use_onesided || cfg_.node_aggregation || !cfg_.lazy_reads ||
      cfg_.auto_fetch_on_segment_exit) {
    return;  // no staged path to fall back to in these configurations
  }
  sim::Proc& p = comm_->proc();
  const std::int64_t drops =
      p.atomic([&] { return comm_->world().network().rmaDropCount(); });
  // The drop counter is global but read at rank-local times; agree on the
  // decision so every rank switches paths at the same collective call.
  std::uint8_t trip = drops >= cfg_.rma_fault_fallback_threshold ? 1 : 0;
  comm_->allreduce(&trip, 1, mpi::ReduceOp::kMax);
  if (trip != 0) {
    fallback_two_sided_ = true;
    stats_.degraded.two_sided_fallback = true;
  }
}

void File::pwriteDegraded(Offset off, const std::byte* src, Bytes n) {
  try {
    client_.pwrite(fsfile_, off, src, n);
  } catch (const OstFailedError&) {
    const std::int64_t moved = client_.remapFailedChunks(fsfile_, off, n);
    if (moved == 0) throw;  // nothing to fail over to — surface it
    stats_.degraded.chunks_remapped += moved;
    client_.pwrite(fsfile_, off, src, n);
  }
}

void File::preadDegraded(Offset off, std::byte* dst, Bytes n) {
  try {
    client_.pread(fsfile_, off, dst, n);
  } catch (const OstFailedError&) {
    const std::int64_t moved = client_.remapFailedChunks(fsfile_, off, n);
    if (moved == 0) throw;  // nothing to fail over to — surface it
    stats_.degraded.chunks_remapped += moved;
    client_.pread(fsfile_, off, dst, n);
  }
}

void File::noteSessionAborted() {
  if (check::Checker* ck = comm_->world().checker()) {
    comm_->proc().atomic([&] { ck->noteSessionAborted(name_); });
  }
}

void File::syncRecoveryStats() {
  const fs::FsClient::RetryStats& rs = client_.retryStats();
  stats_.degraded.fs_transient_faults = rs.transient_faults;
  stats_.degraded.fs_retries = rs.retries;
  stats_.degraded.fs_retry_giveups = rs.giveups;
  sim::Proc& p = comm_->proc();
  stats_.degraded.rma_drops =
      p.atomic([&] { return comm_->world().network().rmaDropCount(); });
  const fs::FsStats fstats =
      p.atomic([&] { return client_.filesystem().stats(); });
  stats_.degraded.chunks_rebalanced = fstats.chunks_rebalanced;
  stats_.integrity.fs_page_checks = fstats.integrity_page_checks;
  stats_.integrity.fs_page_mismatches = fstats.integrity_page_mismatches;
  stats_.integrity.fs_pages_repaired = fstats.integrity_pages_repaired;
}

}  // namespace tcio::core
