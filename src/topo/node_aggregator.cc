#include "topo/node_aggregator.h"

#include <algorithm>
#include <cstring>

#include "common/error.h"
#include "mpi/agreement.h"

namespace tcio::topo {

namespace {

/// Per-slot header: bytes of stream data following in this round.
constexpr Bytes kSlotHeader = static_cast<Bytes>(sizeof(std::uint64_t));

void appendRaw(std::vector<std::byte>& out, const void* src, std::size_t n) {
  const auto* p = static_cast<const std::byte*>(src);
  out.insert(out.end(), p, p + n);
}

template <typename T>
void appendValue(std::vector<std::byte>& out, T v) {
  appendRaw(out, &v, sizeof(T));
}

template <typename T>
T readValue(const std::byte* p) {
  T v;
  std::memcpy(&v, p, sizeof(T));
  return v;
}

}  // namespace

NodeAggregator::NodeAggregator(NodeMap& map, Bytes slot_bytes,
                               bool rotate_leaders)
    : map_(&map), slot_bytes_(slot_bytes), rotate_(rotate_leaders) {
  TCIO_CHECK_MSG(slot_bytes_ > kSlotHeader,
                 "node-aggregation staging slot must exceed its header");
  // Under rotation any rank may lead a round, so every rank needs a window.
  const Bytes local = (rotate_ || map_->isLeader())
                          ? static_cast<Bytes>(map_->numNodes()) * slot_bytes_
                          : 0;
  staging_ = std::make_unique<mpi::Window>(
      mpi::Window::create(map_->comm(), local));
}

void NodeAggregator::close() {
  if (staging_ == nullptr) return;
  map_->comm().memory().release(staging_->localSize());
  staging_.reset();
}

std::vector<std::vector<std::byte>> NodeAggregator::gatherToLeader(
    const std::vector<std::vector<std::byte>>& per_node) {
  mpi::Comm& node = map_->nodeComm();
  const int N = map_->numNodes();
  const auto sn = static_cast<std::size_t>(N);
  TCIO_CHECK(per_node.size() == sn);

  // Fixed-size size table per rank, gathered to the leader.
  std::vector<Bytes> my_sizes(sn);
  Bytes my_total = 0;
  for (std::size_t d = 0; d < sn; ++d) {
    my_sizes[d] = static_cast<Bytes>(per_node[d].size());
    my_total += my_sizes[d];
  }
  const Bytes table_bytes = static_cast<Bytes>(sn * sizeof(Bytes));
  std::vector<Bytes> all_sizes(
      static_cast<std::size_t>(node.size()) * sn);
  const Rank root = leaderNodeRank();
  node.gather(my_sizes.data(), table_bytes, all_sizes.data(), root);

  // Payload: one concatenated membus message per non-leader rank.
  const int tag = node.nextCollectiveTag();
  std::vector<std::vector<std::byte>> streams(sn);
  if (node.rank() != root) {
    std::vector<std::byte> flat;
    flat.reserve(static_cast<std::size_t>(my_total));
    for (const auto& blob : per_node) {
      flat.insert(flat.end(), blob.begin(), blob.end());
    }
    if (my_total > 0) {
      node.send(flat.data(), my_total, root, tag);
    }
    return streams;  // non-leaders hold no outgoing streams
  }

  // Leader: assemble per-destination streams framed per contributing rank.
  const std::vector<Rank>& members = map_->ranksOnNode(map_->myNode());
  std::vector<std::byte> incoming;
  for (int q = 0; q < node.size(); ++q) {
    const Bytes* sizes = all_sizes.data() + static_cast<std::size_t>(q) * sn;
    Bytes total = 0;
    for (std::size_t d = 0; d < sn; ++d) total += sizes[d];
    const std::byte* cursor = nullptr;
    if (q == root) {
      cursor = nullptr;  // own blobs are read from per_node directly
    } else if (total > 0) {
      incoming.resize(static_cast<std::size_t>(total));
      node.recv(incoming.data(), total, q, tag);
      stats_.intranode_bytes += total;
      cursor = incoming.data();
    }
    const Rank src = members[static_cast<std::size_t>(q)];
    for (std::size_t d = 0; d < sn; ++d) {
      const Bytes len = sizes[d];
      if (len == 0) continue;
      auto& stream = streams[d];
      appendValue<std::int32_t>(stream, src);
      appendValue<std::uint64_t>(stream, static_cast<std::uint64_t>(len));
      if (q == root) {
        appendRaw(stream, per_node[d].data(),
                  static_cast<std::size_t>(len));
      } else {
        appendRaw(stream, cursor, static_cast<std::size_t>(len));
        cursor += len;
      }
    }
  }
  return streams;
}

namespace {

/// Parses a per-rank framed stream into (src, blob) frames.
std::vector<NodeAggregator::RankBlob> parseFrames(
    const std::vector<std::byte>& stream) {
  std::vector<NodeAggregator::RankBlob> frames;
  std::size_t pos = 0;
  while (pos < stream.size()) {
    TCIO_CHECK_MSG(pos + sizeof(std::int32_t) + sizeof(std::uint64_t) <=
                       stream.size(),
                   "truncated node-aggregation frame header");
    NodeAggregator::RankBlob frame;
    frame.src = readValue<std::int32_t>(stream.data() + pos);
    pos += sizeof(std::int32_t);
    const auto len = readValue<std::uint64_t>(stream.data() + pos);
    pos += sizeof(std::uint64_t);
    TCIO_CHECK_MSG(pos + len <= stream.size(),
                   "truncated node-aggregation frame payload");
    frame.data.assign(stream.data() + pos, stream.data() + pos + len);
    pos += len;
    frames.push_back(std::move(frame));
  }
  return frames;
}

}  // namespace

std::vector<std::vector<NodeAggregator::RankBlob>> NodeAggregator::exchange(
    const std::vector<std::vector<std::byte>>& per_node,
    const Rewrite& rewrite) {
  TCIO_CHECK_MSG(staging_ != nullptr, "exchange on a closed NodeAggregator");
  mpi::Comm& comm = map_->comm();
  const int N = map_->numNodes();
  const auto sn = static_cast<std::size_t>(N);
  const int me = map_->myNode();
  ++stats_.exchanges;
  // Advance the leadership round in lockstep (exchange is collective), so
  // every rank agrees on who leads each node before any traffic moves.
  if (rotate_) ++round_;

  // Phase 1: funnel to the leader (membus traffic only).
  std::vector<std::vector<std::byte>> out = gatherToLeader(per_node);
  // Cross-rank coalescing happens here, before any byte pays the NIC.
  if (rewrite && isActiveLeader()) {
    for (int d = 0; d < N; ++d) {
      auto& stream = out[static_cast<std::size_t>(d)];
      if (stream.empty()) continue;
      stream = rewrite(d, parseFrames(stream));
    }
  }

  // Phase 2: leader-to-leader staging rounds. Each round moves at most one
  // slot's worth of each stream with a single RMA epoch per destination
  // node; slots are disjoint per source node, so shared locks suffice.
  std::vector<std::vector<std::byte>> in(sn);
  if (isActiveLeader()) {
    in[static_cast<std::size_t>(me)] =
        std::move(out[static_cast<std::size_t>(me)]);
    out[static_cast<std::size_t>(me)].clear();
  }
  std::vector<Bytes> cursor(sn, 0);
  const Bytes slot_data = slot_bytes_ - kSlotHeader;
  // Leader-local failures (a bad put, a corrupt slot) are captured and
  // piggybacked on the round allreduce: every rank learns the error class
  // and throws the same typed error, instead of the survivors spinning in
  // the round loop waiting for a dead leader's data.
  mpi::CapturedError err;
  bool more = true;
  while (more) {
    ++stats_.rounds;
    try {
      if (isActiveLeader() && !err.set()) {
        for (int d = 0; d < N; ++d) {
          if (d == me) continue;
          const auto& stream = out[static_cast<std::size_t>(d)];
          const Bytes remaining = static_cast<Bytes>(stream.size()) -
                                  cursor[static_cast<std::size_t>(d)];
          if (remaining <= 0) continue;
          const Bytes chunk = std::min(remaining, slot_data);
          const std::uint64_t header = static_cast<std::uint64_t>(chunk);
          const Offset slot_base = static_cast<Offset>(me) * slot_bytes_;
          const mpi::Window::PutBlock blocks[2] = {
              {slot_base, &header, kSlotHeader},
              {slot_base + kSlotHeader,
               stream.data() + cursor[static_cast<std::size_t>(d)], chunk}};
          const Rank target = activeLeaderOf(d);
          staging_->lock(mpi::LockType::kShared, target);
          staging_->putIndexed(target, blocks);
          staging_->unlock(target);
          cursor[static_cast<std::size_t>(d)] += chunk;
          ++stats_.internode_puts;
          stats_.internode_bytes += chunk;
        }
      }
    } catch (const std::exception& e) {
      err.capture(e);
    }
    comm.barrier();
    bool local_more = false;
    try {
      if (isActiveLeader() && !err.set()) {
        std::byte* local = staging_->localData();
        for (int s = 0; s < N; ++s) {
          if (s == me) continue;
          std::byte* slot = local + static_cast<Offset>(s) * slot_bytes_;
          const auto got = readValue<std::uint64_t>(slot);
          if (got == 0) continue;
          appendRaw(in[static_cast<std::size_t>(s)], slot + kSlotHeader,
                    static_cast<std::size_t>(got));
          std::memset(slot, 0, static_cast<std::size_t>(kSlotHeader));
        }
        for (int d = 0; d < N && !local_more; ++d) {
          if (d == me) continue;
          local_more =
              cursor[static_cast<std::size_t>(d)] <
              static_cast<Bytes>(out[static_cast<std::size_t>(d)].size());
        }
      }
    } catch (const std::exception& e) {
      err.capture(e);
    }
    std::int32_t flags[2] = {local_more ? 1 : 0, err.code};
    comm.allreduce(flags, 2, mpi::ReduceOp::kMax);
    if (flags[1] != mpi::CapturedError::kNone) {
      mpi::throwTyped(
          flags[1],
          err.code == flags[1] && !err.what.empty()
              ? err.what
              : "node-aggregation leader exchange failed on a peer rank");
    }
    more = flags[0] != 0;
  }

  // Phase 3: parse accumulated streams. Under a rewrite the stream is one
  // raw leader-attributed blob; otherwise it carries per-rank frames.
  std::vector<std::vector<RankBlob>> result(sn);
  for (std::size_t s = 0; s < sn; ++s) {
    if (in[s].empty()) continue;
    if (rewrite) {
      result[s].push_back(
          {activeLeaderOf(static_cast<int>(s)), std::move(in[s])});
    } else {
      result[s] = parseFrames(in[s]);
    }
  }
  return result;
}

std::vector<std::byte> NodeAggregator::scatterToRanks(
    std::vector<std::vector<std::byte>> per_rank) {
  mpi::Comm& node = map_->nodeComm();
  const int Q = node.size();
  const int tag = node.nextCollectiveTag();
  // Scatter from the round's active leader (the rank exchange() left the
  // leader-held data on), not from a fixed node root.
  const Rank root = leaderNodeRank();
  std::vector<Bytes> sizes(static_cast<std::size_t>(Q), 0);
  Bytes my_size = 0;
  if (node.rank() == root) {
    TCIO_CHECK(static_cast<int>(per_rank.size()) == Q);
    for (int q = 0; q < Q; ++q) {
      sizes[static_cast<std::size_t>(q)] =
          static_cast<Bytes>(per_rank[static_cast<std::size_t>(q)].size());
    }
  }
  node.scatter(sizes.data(), sizeof(Bytes), &my_size, root);
  if (node.rank() == root) {
    std::vector<mpi::Request> reqs;
    for (int q = 0; q < Q; ++q) {
      if (q == root) continue;
      const auto& blob = per_rank[static_cast<std::size_t>(q)];
      if (blob.empty()) continue;
      reqs.push_back(node.isend(blob.data(),
                                static_cast<Bytes>(blob.size()), q, tag));
      stats_.intranode_bytes += static_cast<Bytes>(blob.size());
    }
    node.waitAll(reqs);
    return std::move(per_rank[static_cast<std::size_t>(root)]);
  }
  std::vector<std::byte> mine(static_cast<std::size_t>(my_size));
  if (my_size > 0) {
    node.recv(mine.data(), my_size, root, tag);
  }
  return mine;
}

}  // namespace tcio::topo
