// Topology-aware intra-node aggregation (after Kang et al., "Improving MPI
// Collective I/O Performance With Intra-node Request Aggregation", and the
// request-coalescing argument of Thakur et al.).
//
// The primitive this file provides is a *node-level* collective exchange:
// every rank contributes payload addressed to destination nodes; payloads
// first funnel to the source node's leader over the intra-node memory bus,
// then exactly one coalesced RMA epoch crosses the NIC per (source node,
// destination node) pair per round — instead of one epoch per (rank,
// destination) as the per-rank shuffle issues. On a 12-ranks/node machine
// that removes up to 12x of the small cross-node messages.
//
// Mechanics: each leader owns a staging window partitioned into one
// fixed-size slot per source node. A round is: leaders put the next chunk of
// each outgoing stream into the destination leader's slot (shared lock —
// slots are disjoint), a barrier, destination leaders drain their slots, and
// an allreduce decides whether any stream has bytes left. Streams are framed
// per contributing rank, so receivers get back (source rank, blob) pairs.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "common/types.h"
#include "mpi/rma.h"
#include "topo/node_map.h"

namespace tcio::topo {

/// Counters for TcioStats and the ablation bench.
struct NodeAggStats {
  std::int64_t exchanges = 0;       // collective exchange() calls
  std::int64_t internode_puts = 0;  // leader->leader NIC epochs issued
  std::int64_t rounds = 0;          // staging rounds across all exchanges
  /// Aggregation bytes funneled through this rank as node leader (gathered
  /// from and scattered to node-local ranks over the membus; leaders only).
  Bytes intranode_bytes = 0;
  Bytes internode_bytes = 0;        // leader->leader payload bytes sent
};

class NodeAggregator {
 public:
  /// Collective over `map.comm()`: creates the leader staging window
  /// (num_nodes * slot_bytes on leaders, nothing elsewhere). `slot_bytes`
  /// is the per-source-node staging partition; payloads larger than a slot
  /// move in multiple rounds.
  ///
  /// `rotate_leaders` rotates which rank of each node acts as leader: every
  /// exchange() advances a round counter (collective, so lockstep on all
  /// ranks) and round k's leader on node n is ranksOnNode(n)[k % size].
  /// Without rotation one rank's NIC and membus carry ALL of its node's
  /// staging traffic for the whole job. Rotation costs a staging window on
  /// every rank (any rank may lead), not only on the static leaders.
  NodeAggregator(NodeMap& map, Bytes slot_bytes, bool rotate_leaders = false);

  NodeAggregator(const NodeAggregator&) = delete;
  NodeAggregator& operator=(const NodeAggregator&) = delete;

  /// One contributing rank's payload, as received by a destination leader.
  struct RankBlob {
    Rank src = -1;  // rank within map.comm()
    std::vector<std::byte> data;
  };

  /// Source-leader rewrite hook: receives the destination node index and
  /// the per-rank frames headed there, returns the raw stream to ship
  /// instead. This is where cross-rank coalescing happens (e.g. merging
  /// adjacent write extents from the node's ranks) BEFORE the bytes pay the
  /// NIC. When a rewrite is used, per-rank attribution is gone: receivers
  /// get one blob per source node, attributed to that node's leader.
  using Rewrite = std::function<std::vector<std::byte>(
      int dst_node, const std::vector<RankBlob>&)>;

  /// Collective over map.comm(). `per_node[d]` is this rank's payload for
  /// node `d`. On each node's leader, returns result[s] = frames received
  /// from source node `s` ordered by contributing rank (or one leader-
  /// attributed blob per source node under a rewrite); on non-leaders,
  /// returns empty frames. `rewrite` must be passed uniformly (all ranks
  /// null or all non-null) — it changes the wire format.
  std::vector<std::vector<RankBlob>> exchange(
      const std::vector<std::vector<std::byte>>& per_node,
      const Rewrite& rewrite = {});

  /// Collective over map.nodeComm(): the leader passes one blob per
  /// node-local rank (indexed by node rank); every rank returns its own.
  std::vector<std::byte> scatterToRanks(
      std::vector<std::vector<std::byte>> per_rank);

  /// Releases the staging window and its memory accounting. Safe to call
  /// more than once; the destructor calls it too.
  void close();
  ~NodeAggregator() { close(); }

  const NodeAggStats& stats() const { return stats_; }
  NodeMap& map() { return *map_; }
  Bytes slotBytes() const { return slot_bytes_; }

  /// Rank leading node `n` in the current round (the static leader when
  /// rotation is off). scatterToRanks() uses the round of the last
  /// exchange(), so callers can keep leader-held data across the pair.
  Rank activeLeaderOf(int n) const {
    const std::vector<Rank>& rs = map_->ranksOnNode(n);
    if (!rotate_) return rs.front();
    return rs[static_cast<std::size_t>(round_ % static_cast<std::int64_t>(
                                                    rs.size()))];
  }
  bool isActiveLeader() const {
    return activeLeaderOf(map_->myNode()) == map_->comm().rank();
  }
  std::int64_t round() const { return round_; }
  bool rotatesLeaders() const { return rotate_; }

 private:
  /// Gathers every node rank's per-destination payloads to the leader;
  /// returns (on the leader) one framed outgoing stream per destination
  /// node.
  std::vector<std::vector<std::byte>> gatherToLeader(
      const std::vector<std::vector<std::byte>>& per_node);

  /// Node rank of the active leader within this rank's node.
  Rank leaderNodeRank() const {
    if (!rotate_) return 0;
    return static_cast<Rank>(round_ %
                             static_cast<std::int64_t>(map_->nodeSize()));
  }

  NodeMap* map_;
  Bytes slot_bytes_;
  bool rotate_ = false;
  std::int64_t round_ = 0;
  std::unique_ptr<mpi::Window> staging_;
  NodeAggStats stats_;
};

}  // namespace tcio::topo
