#include "topo/node_map.h"

#include <algorithm>

#include "common/error.h"

namespace tcio::topo {

NodeMap::NodeMap(mpi::Comm& comm)
    : comm_(&comm), node_comm_(comm.splitByNode(/*key=*/0)) {
  const int P = comm.size();
  node_of_.resize(static_cast<std::size_t>(P));
  // Physical node ids can be sparse over a sub-communicator; compress them
  // to dense indices ordered by each node's lowest communicator rank.
  std::vector<int> phys(static_cast<std::size_t>(P));
  for (Rank r = 0; r < P; ++r) {
    phys[static_cast<std::size_t>(r)] = comm.nodeOf(r);
  }
  std::vector<int> seen;  // physical id -> dense index by first appearance
  for (Rank r = 0; r < P; ++r) {
    const int p = phys[static_cast<std::size_t>(r)];
    auto it = std::find(seen.begin(), seen.end(), p);
    if (it == seen.end()) {
      seen.push_back(p);
      it = seen.end() - 1;
    }
    const int dense = static_cast<int>(it - seen.begin());
    node_of_[static_cast<std::size_t>(r)] = dense;
    if (dense == static_cast<int>(ranks_on_node_.size())) {
      ranks_on_node_.emplace_back();
    }
    ranks_on_node_[static_cast<std::size_t>(dense)].push_back(r);
  }
  my_node_ = node_of_[static_cast<std::size_t>(comm.rank())];
  for (const auto& ranks : ranks_on_node_) {
    max_node_size_ = std::max(max_node_size_, static_cast<int>(ranks.size()));
  }
  TCIO_CHECK(node_comm_.size() ==
             static_cast<int>(ranksOnNode(my_node_).size()));
}

}  // namespace tcio::topo
