// Topology map of a communicator: which physical node hosts each rank, and
// the node-local sub-communicator derived from it.
//
// TCIO's level-1 -> level-2 shuffle is rank-to-rank; on a multicore node
// (12 ranks/node on the paper's testbed) that puts up to ranks_per_node
// times more small messages on the NIC than the data requires. The NodeMap
// is the ground truth the aggregation layer (node_aggregator.h) builds on:
// it derives, collectively, an intra-node communicator (MPI_Comm_split by
// node) and designates the lowest rank of each node as its *leader*.
#pragma once

#include <vector>

#include "common/types.h"
#include "mpi/comm.h"

namespace tcio::topo {

class NodeMap {
 public:
  /// Collective over `comm` (performs a split). The map indexes nodes
  /// densely in order of their lowest communicator rank.
  explicit NodeMap(mpi::Comm& comm);

  int numNodes() const { return static_cast<int>(ranks_on_node_.size()); }
  int myNode() const { return my_node_; }
  /// Dense node index hosting communicator rank `r`.
  int nodeOf(Rank r) const {
    return node_of_[static_cast<std::size_t>(r)];
  }
  /// Communicator rank of node `n`'s leader (its lowest rank).
  Rank leaderOf(int n) const {
    return ranks_on_node_[static_cast<std::size_t>(n)].front();
  }
  bool isLeader() const { return leaderOf(my_node_) == comm_->rank(); }
  /// Communicator ranks hosted on node `n`, ascending.
  const std::vector<Rank>& ranksOnNode(int n) const {
    return ranks_on_node_[static_cast<std::size_t>(n)];
  }
  /// Largest rank count on any node (sizes aggregation buffers).
  int maxNodeSize() const { return max_node_size_; }

  /// The intra-node sub-communicator (every transfer inside it rides the
  /// node's memory bus, never the NIC).
  mpi::Comm& nodeComm() { return node_comm_; }
  /// This rank's position within its node (leader == 0).
  Rank nodeRank() const { return node_comm_.rank(); }
  int nodeSize() const { return node_comm_.size(); }

  mpi::Comm& comm() { return *comm_; }

 private:
  mpi::Comm* comm_;
  std::vector<int> node_of_;                  // comm rank -> dense node id
  std::vector<std::vector<Rank>> ranks_on_node_;
  int my_node_ = 0;
  int max_node_size_ = 0;
  mpi::Comm node_comm_;
};

}  // namespace tcio::topo
