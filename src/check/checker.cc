#include "check/checker.h"

#include <algorithm>
#include <cstring>
#include <sstream>

#include "common/crc32.h"
#include "common/env.h"

namespace tcio::check {

namespace {

/// Keep at most this many un-retired collective signatures per context
/// before dropping the prefix every rank has passed.
constexpr std::int64_t kSigCompactionThreshold = 1024;

std::uint32_t blockCrc(const void* src, Bytes len) {
  return crc32(std::span<const std::byte>(static_cast<const std::byte*>(src),
                                          static_cast<std::size_t>(len)));
}

}  // namespace

const char* collOpName(CollOp op) {
  switch (op) {
    case CollOp::kBarrier: return "barrier";
    case CollOp::kBcast: return "bcast";
    case CollOp::kReduce: return "reduce";
    case CollOp::kGather: return "gather";
    case CollOp::kScatter: return "scatter";
    case CollOp::kAllgather: return "allgather";
    case CollOp::kAlltoallv: return "alltoallv";
    case CollOp::kWinCreate: return "win_create";
    case CollOp::kAgree: return "agree";
  }
  return "?";
}

bool Checker::enabled() {
#ifdef TCIO_CHECK_DEFAULT_ON
  constexpr std::int64_t kDefault = 1;
#else
  constexpr std::int64_t kDefault = 0;
#endif
  static const bool on = envInt64("TCIO_CHECK", kDefault) != 0;
  return on;
}

Checker::Checker(int world_size)
    : world_size_(world_size),
      labels_(static_cast<std::size_t>(world_size)),
      user_tags_(static_cast<std::size_t>(world_size)),
      waits_(static_cast<std::size_t>(world_size)) {
  for (auto& l : labels_) l.store(nullptr, std::memory_order_relaxed);
  for (auto& t : user_tags_) t.store(kNoUserTag, std::memory_order_relaxed);
  registerComm(/*context=*/0, world_size);
}

void Checker::setLabel(Rank world_rank, const char* label) {
  labels_[static_cast<std::size_t>(world_rank)].store(
      label, std::memory_order_relaxed);
}

const char* Checker::label(Rank world_rank) const {
  return labels_[static_cast<std::size_t>(world_rank)].load(
      std::memory_order_relaxed);
}

void Checker::setUserTag(Rank world_rank, std::int64_t tag) {
  user_tags_[static_cast<std::size_t>(world_rank)].store(
      tag, std::memory_order_relaxed);
}

std::int64_t Checker::userTag(Rank world_rank) const {
  return user_tags_[static_cast<std::size_t>(world_rank)].load(
      std::memory_order_relaxed);
}

void Checker::fail(const std::string& msg) {
  violations_.fetch_add(1, std::memory_order_relaxed);
  throw CheckFailure("checker: " + msg);
}

namespace {

void appendLabel(std::ostringstream& os, const char* label) {
  if (label != nullptr) os << " [" << label << "]";
}

}  // namespace

// -- Collective matching ------------------------------------------------------

void Checker::registerComm(int context, int size) {
  CommRec& c = comms_[context];
  if (c.size == 0) {
    c.size = size;
    c.next_call.assign(static_cast<std::size_t>(size), 0);
    return;
  }
  if (c.size != size) {
    std::ostringstream os;
    os << "communicator context " << context << " registered with size "
       << c.size << " but re-registered with size " << size
       << " (split/shrink groups disagree)";
    fail(os.str());
  }
}

void Checker::onCollective(int context, Rank comm_rank, Rank world_rank,
                           CollOp op, Rank root, Bytes bytes,
                           const char* site) {
  auto it = comms_.find(context);
  if (it == comms_.end()) {
    // A context created outside registerComm's call paths; track it with the
    // world size as a safe upper bound on the group.
    registerComm(context, world_size_);
    it = comms_.find(context);
  }
  CommRec& c = it->second;
  if (comm_rank < 0 || comm_rank >= static_cast<Rank>(c.next_call.size())) {
    std::ostringstream os;
    os << "collective on context " << context << " from rank " << comm_rank
       << " outside the registered group size " << c.size;
    fail(os.str());
  }
  const std::int64_t k = c.next_call[static_cast<std::size_t>(comm_rank)]++;
  const std::int64_t idx = k - c.base;
  const std::int64_t tag = userTag(world_rank);
  ++stats_.collectives_checked;
  if (idx == static_cast<std::int64_t>(c.sigs.size())) {
    c.sigs.push_back(CollSig{op, root, bytes, tag, site, label(world_rank),
                             world_rank});
    // Retire the prefix every rank has passed.
    if (idx >= kSigCompactionThreshold) {
      const std::int64_t min_next =
          *std::min_element(c.next_call.begin(), c.next_call.end());
      if (min_next > c.base) {
        c.sigs.erase(c.sigs.begin(),
                     c.sigs.begin() + (min_next - c.base));
        c.base = min_next;
      }
    }
    return;
  }
  const CollSig& ref = c.sigs[static_cast<std::size_t>(idx)];
  if (ref.op == op && ref.root == root && ref.bytes == bytes) {
    // MPI-level signature matches; verify the application phase too. An
    // untagged side matches anything (legacy callers, MPI-internal paths).
    if (ref.tag == kNoUserTag || tag == kNoUserTag) return;
    ++stats_.tags_checked;
    if (ref.tag == tag) return;
    std::ostringstream os;
    os << "user tag mismatch on context " << context << ", call #" << k
       << ": rank " << comm_rank << " (world " << world_rank << ") entered "
       << collOpName(op) << " tagged " << tag << " (actual) at " << site;
    appendLabel(os, label(world_rank));
    os << ", but world rank " << ref.first_world_rank << " recorded tag "
       << ref.tag << " (expected) at " << ref.site;
    appendLabel(os, ref.label);
    fail(os.str());
  }
  std::ostringstream os;
  os << "collective mismatch on context " << context << ", call #" << k
     << ": rank " << comm_rank << " (world " << world_rank << ") called "
     << collOpName(op);
  if (root >= 0) os << " root=" << root;
  if (bytes >= 0) os << " " << bytes << "B";
  os << " at " << site;
  appendLabel(os, label(world_rank));
  os << ", but world rank " << ref.first_world_rank << " called "
     << collOpName(ref.op);
  if (ref.root >= 0) os << " root=" << ref.root;
  if (ref.bytes >= 0) os << " " << ref.bytes << "B";
  os << " at " << ref.site;
  appendLabel(os, ref.label);
  fail(os.str());
}

// -- RMA epoch state machine --------------------------------------------------

void Checker::onEpochOpen(const void* win, Rank origin_world,
                          Rank target_world, bool exclusive,
                          const char* site) {
  auto& by_origin = epochs_[{win, target_world}];
  // The lock protocol must never co-schedule an exclusive epoch with any
  // other epoch on the same (window, target).
  if (exclusive && !by_origin.empty()) {
    std::ostringstream os;
    os << "exclusive lock granted to rank " << origin_world << " on target "
       << target_world << " at " << site << " while rank "
       << by_origin.begin()->first << "'s epoch is still open (from "
       << by_origin.begin()->second.site << ")";
    fail(os.str());
  }
  if (!by_origin.empty() && by_origin.begin()->second.exclusive) {
    std::ostringstream os;
    os << "shared lock granted to rank " << origin_world << " on target "
       << target_world << " at " << site << " while rank "
       << by_origin.begin()->first << " holds it exclusively";
    fail(os.str());
  }
  EpochRec& e = by_origin[origin_world];
  e.exclusive = exclusive;
  e.site = site;
  e.puts.clear();
  ++stats_.epochs_opened;
}

void Checker::onPut(const void* win, Rank origin_world, Rank target_world,
                    std::span<const PutBlockRef> blocks, const char* site) {
  auto& by_origin = epochs_[{win, target_world}];
  auto self = by_origin.find(origin_world);
  if (self == by_origin.end()) {
    failOutsideEpoch(origin_world, target_world, site);
  }
  for (const PutBlockRef& b : blocks) {
    if (b.len <= 0) continue;
    const auto* src = static_cast<const std::byte*>(b.src);
    // Conflict scan: an overlapping put from a *concurrently open* epoch of
    // another origin is undefined behavior under MPI unless the bytes agree
    // (TCIO's flag bytes overlap by design with identical values).
    for (const auto& [other_rank, other] : by_origin) {
      if (other_rank == origin_world) continue;
      for (const PutRecord& pr : other.puts) {
        const Offset lo = std::max(b.disp, pr.disp);
        const Offset hi = std::min(b.disp + b.len, pr.disp + pr.len);
        if (lo >= hi) continue;
        const bool same = std::memcmp(src + (lo - b.disp),
                                      pr.bytes.data() + (lo - pr.disp),
                                      static_cast<std::size_t>(hi - lo)) == 0;
        if (same) {
          ++stats_.benign_overlaps;
          continue;
        }
        std::ostringstream os;
        os << "conflicting overlapping RMA puts on target " << target_world
           << " bytes [" << lo << ", " << hi << "): rank " << origin_world
           << " at " << site;
        appendLabel(os, label(origin_world));
        os << " vs rank " << other_rank << " at " << pr.site;
        appendLabel(os, label(other_rank));
        os << " (concurrent epochs, differing contents)";
        fail(os.str());
      }
    }
    PutRecord rec;
    rec.disp = b.disp;
    rec.len = b.len;
    rec.src = b.src;
    rec.crc = blockCrc(b.src, b.len);
    rec.bytes.assign(src, src + b.len);
    rec.site = site;
    self->second.puts.push_back(std::move(rec));
    ++stats_.puts_checked;
  }
}

void Checker::onEpochClose(const void* win, Rank origin_world,
                           Rank target_world, const char* site) {
  auto& by_origin = epochs_[{win, target_world}];
  auto self = by_origin.find(origin_world);
  if (self == by_origin.end()) {
    std::ostringstream os;
    os << "rank " << origin_world << " unlocked target " << target_world
       << " at " << site << " without an open epoch";
    fail(os.str());
  }
  for (const PutRecord& pr : self->second.puts) {
    if (blockCrc(pr.src, pr.len) != pr.crc) {
      std::ostringstream os;
      os << "rank " << origin_world << " modified (or freed) a put source "
         << "buffer before closing the epoch on target " << target_world
         << ": " << pr.len << "B put at " << pr.site
         << ", detected at " << site;
      appendLabel(os, label(origin_world));
      fail(os.str());
    }
  }
  by_origin.erase(self);
}

void Checker::failOutsideEpoch(Rank origin_world, Rank target,
                               const char* site) {
  std::ostringstream os;
  os << "rank " << origin_world
     << " issued a one-sided access outside a lock epoch on target " << target
     << " at " << site;
  appendLabel(os, label(origin_world));
  fail(os.str());
}

// -- TCIO segment ownership and drain coverage --------------------------------

Rank Checker::expectedOwner(const FileRec& fr, SegmentId g) const {
  const auto it = fr.remap.find(g);
  if (it != fr.remap.end()) return it->second;
  return static_cast<Rank>(g % fr.num_ranks);
}

Checker::FileRec& Checker::fileRec(const std::string& name, const char* site) {
  auto it = files_.find(name);
  if (it == files_.end()) {
    std::ostringstream os;
    os << "TCIO hook at " << site << " for unregistered file '" << name << "'";
    fail(os.str());
  }
  return it->second;
}

void Checker::registerFile(const std::string& name, int num_ranks,
                           Bytes segment_size,
                           std::int64_t segments_per_rank) {
  FileRec& fr = files_[name];
  if (fr.session_done || fr.num_ranks == 0) {
    fr = FileRec{};
    fr.num_ranks = num_ranks;
    fr.segment_size = segment_size;
    fr.segments_per_rank = segments_per_rank;
  } else if (fr.num_ranks != num_ranks || fr.segment_size != segment_size ||
             fr.segments_per_rank != segments_per_rank) {
    std::ostringstream os;
    os << "file '" << name << "' opened with divergent segment geometry: ("
       << fr.num_ranks << " ranks, " << fr.segment_size << "B segments, "
       << fr.segments_per_rank << "/rank) vs (" << num_ranks << ", "
       << segment_size << "B, " << segments_per_rank << "/rank)";
    fail(os.str());
  }
  ++fr.registered;
}

void Checker::noteSessionAborted(const std::string& name) {
  const auto it = files_.find(name);
  if (it != files_.end()) it->second.session_done = true;
}

void Checker::noteRemap(const std::string& name, SegmentId g, Rank new_owner) {
  fileRec(name, "noteRemap").remap[g] = new_owner;
}

void Checker::noteDeath(const std::string& name, Rank orig_rank) {
  fileRec(name, "noteDeath").dead.insert(orig_rank);
}

void Checker::noteSegmentLost(const std::string& name, SegmentId g) {
  fileRec(name, "noteSegmentLost").lost.insert(g);
}

void Checker::noteDirty(const std::string& name, SegmentId g) {
  fileRec(name, "noteDirty").dirty.insert(g);
}

void Checker::onSegmentTransfer(const std::string& name, SegmentId g,
                                Rank dest_orig, const char* site) {
  FileRec& fr = fileRec(name, site);
  const Rank want = expectedOwner(fr, g);
  ++stats_.transfers_checked;
  if (dest_orig == want) return;
  std::ostringstream os;
  os << "file '" << name << "': level-2 transfer for segment " << g
     << " landed on rank " << dest_orig << " but the segment map owns it to "
     << "rank " << want << " (g % P = " << (g % fr.num_ranks)
     << (fr.remap.count(g) != 0 ? ", remapped after takeover" : "")
     << ") at " << site;
  fail(os.str());
}

void Checker::onDrain(const std::string& name, SegmentId g, Rank rank_orig,
                      const char* site) {
  FileRec& fr = fileRec(name, site);
  const Rank want = expectedOwner(fr, g);
  ++stats_.drains_checked;
  if (rank_orig != want) {
    std::ostringstream os;
    os << "file '" << name << "': close-time write of segment " << g
       << " performed by rank " << rank_orig << " which does not own it "
       << "(owner is rank " << want << ") at " << site;
    fail(os.str());
  }
  const auto it = fr.drained.find(g);
  if (it != fr.drained.end() && it->second == rank_orig) {
    std::ostringstream os;
    os << "file '" << name << "': segment " << g << " drained twice by rank "
       << rank_orig << " at " << site
       << " — close-time writes must be disjoint";
    fail(os.str());
  }
  fr.drained[g] = rank_orig;
}

void Checker::onFileClosed(const std::string& name, Bytes final_size,
                           Rank rank_orig) {
  FileRec& fr = fileRec(name, "onFileClosed");
  (void)rank_orig;
  ++fr.closed;
  fr.final_size = std::max(fr.final_size, final_size);
  const int live = fr.num_ranks - static_cast<int>(fr.dead.size());
  if (fr.closed < live) return;
  fr.session_done = true;
  ++stats_.files_closed;
  for (const SegmentId g : fr.dirty) {
    if (fr.lost.count(g) != 0) continue;
    if (g * fr.segment_size >= fr.final_size) continue;  // truncated away
    if (fr.drained.count(g) != 0) continue;
    std::ostringstream os;
    os << "file '" << name << "': dirty segment " << g << " (bytes ["
       << g * fr.segment_size << ", " << (g + 1) * fr.segment_size
       << ")) was never written back at close — close-time writes do not "
       << "cover the dirty extent (file size " << fr.final_size << ")";
    fail(os.str());
  }
}

// -- Wait-for-graph deadlock detection ----------------------------------------

namespace {
bool edgePending(const Checker::WaitEdge& e) {
  return e.ev == nullptr || !e.ev->ready();
}
}  // namespace

void Checker::beginWait(Rank waiter_world,
                        std::function<std::vector<Rank>()> targets,
                        const sim::Event* ev, const char* site) {
  if (ev != nullptr && ev->ready()) return;  // already satisfied; no edge
  WaitInfo& w = waits_[static_cast<std::size_t>(waiter_world)];
  w.active = true;
  w.targets = std::move(targets);
  w.ev = ev;
  w.edges.clear();
  w.site = site;
  ++stats_.waits_tracked;
  detectCycle(waiter_world);
}

void Checker::beginWaitAll(Rank waiter_world, std::vector<WaitEdge> edges,
                           const char* site) {
  // An AND-wait only blocks on legs whose event has not fired; satisfied
  // legs must not appear in the graph or an already-arrived message would
  // manufacture a cycle.
  std::erase_if(edges, [](const WaitEdge& e) { return !edgePending(e); });
  if (edges.empty()) return;
  WaitInfo& w = waits_[static_cast<std::size_t>(waiter_world)];
  w.active = true;
  w.targets = nullptr;
  w.ev = nullptr;
  w.edges = std::move(edges);
  w.site = site;
  ++stats_.waits_tracked;
  detectCycle(waiter_world);
}

void Checker::detectCycle(Rank waiter_world) {
  // DFS over currently-blocked ranks; edges are re-evaluated through each
  // waiter's target closure (or per-edge events) so lock handoffs and
  // partially-completed AND-waits never leave stale edges.
  const auto blocked = [&](Rank r) {
    const WaitInfo& wi = waits_[static_cast<std::size_t>(r)];
    if (!wi.active) return false;
    if (!wi.edges.empty()) {
      return std::any_of(wi.edges.begin(), wi.edges.end(), edgePending);
    }
    return wi.ev == nullptr || !wi.ev->ready();
  };
  const auto targetsOf = [&](Rank r) {
    const WaitInfo& wi = waits_[static_cast<std::size_t>(r)];
    if (!wi.edges.empty()) {
      std::vector<Rank> out;
      for (const WaitEdge& e : wi.edges) {
        if (edgePending(e)) out.push_back(e.target);
      }
      return out;
    }
    return wi.targets();
  };
  std::vector<Rank> path{waiter_world};
  std::set<Rank> visited{waiter_world};
  const std::function<bool(Rank)> dfs = [&](Rank n) {
    for (const Rank t : targetsOf(n)) {
      if (t == waiter_world) return true;  // cycle closed
      if (t < 0 || t >= world_size_ || visited.count(t) != 0 || !blocked(t)) {
        continue;
      }
      visited.insert(t);
      path.push_back(t);
      if (dfs(t)) return true;
      path.pop_back();
    }
    return false;
  };
  if (!dfs(waiter_world)) return;

  std::ostringstream os;
  os << "wait-for cycle among blocked ranks (deadlock): ";
  for (const Rank r : path) {
    const WaitInfo& wi = waits_[static_cast<std::size_t>(r)];
    os << "rank " << r << " waiting at " << wi.site;
    appendLabel(os, label(r));
    os << " -> ";
  }
  os << "rank " << waiter_world;
  WaitInfo& w = waits_[static_cast<std::size_t>(waiter_world)];
  w.active = false;  // this rank will not block; it throws instead
  fail(os.str());
}

void Checker::endWait(Rank waiter_world) {
  WaitInfo& w = waits_[static_cast<std::size_t>(waiter_world)];
  w.active = false;
  w.targets = nullptr;
  w.ev = nullptr;
  w.edges.clear();
}

}  // namespace tcio::check
