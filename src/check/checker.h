// Runtime correctness checker for the simulated MPI + TCIO stack.
//
// TCIO's transparency rests on a discipline the paper states only
// informally: every rank must reach the same collective points in the same
// order, one-sided accesses must stay inside lock epochs, and level-2 data
// must land exactly in the owner computed by eq. (1)-(3). Because our MPI is
// simulated in-process (all shared-state mutation happens inside
// Proc::atomic sections, globally ordered by virtual time), the checker can
// keep one *consistent global* view of every rank's protocol state and
// diagnose the first divergent operation exactly — something distributed
// tools like MUST can only approximate with message piggybacking.
//
// Four verifiers, all behind one `TCIO_CHECK=1` switch (env var, or default
// via the TCIO_CHECK CMake option):
//
//   1. Collective matching: per communicator context, call #k must carry the
//      same (op, root, byte-count) signature on every rank. The first rank
//      whose signature diverges is reported with both call sites.
//   2. RMA epoch machine: per (window, target) it tracks open shared /
//      exclusive epochs, flags overlapping conflicting puts from concurrent
//      epochs (byte-identical overlaps are benign and only counted), and
//      re-CRCs every put's source buffer at unlock to catch reuse before the
//      epoch closed.
//   3. TCIO ownership: every level-2 segment transfer must land in the
//      segment-map owner (`g % P`, or the takeover remap after a crash), and
//      at close every dirty segment inside the final file extent must have
//      been drained by its owner exactly once (or noted as lost when
//      journaling is off).
//   4. Wait-for-graph deadlock detection: blocked receives and lock waits
//      form a directed graph; a rank about to close a cycle throws a
//      diagnostic listing the cycle instead of letting the engine time out
//      on its global all-blocked detector.
//
// Violations throw `CheckFailure` (a `tcio::Error`) inside the offending
// rank; the engine then aborts the job, so tests can assert on the message.
// When the checker is disabled, the hooks cost one pointer null-check.
//
// Thread-safety: every mutating hook must be called from inside a
// Proc::atomic section (the engine serializes those); `setLabel` and the
// enablement query are lock-free.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <limits>
#include <map>
#include <memory>
#include <set>
#include <span>
#include <string>
#include <vector>

#include "common/error.h"
#include "common/types.h"
#include "sim/engine.h"

namespace tcio::check {

/// A correctness-protocol violation detected by the runtime checker.
class CheckFailure : public Error {
 public:
  using Error::Error;
};

/// Collective operation kinds for the matching verifier. Composed
/// collectives (allreduce, allgatherv) are checked through the primitives
/// they are built from.
enum class CollOp : std::uint8_t {
  kBarrier,
  kBcast,
  kReduce,
  kGather,
  kScatter,
  kAllgather,
  kAlltoallv,
  kWinCreate,
  kAgree,
};

const char* collOpName(CollOp op);

/// Byte-count sentinel for collectives whose payload legitimately differs
/// per rank (alltoallv) or is not part of the signature (barrier).
inline constexpr Bytes kUncheckedBytes = -1;

/// Hook-coverage counters; green runs assert these advanced (proving the
/// hooks actually fired) while `violations` stayed zero.
struct CheckerStats {
  std::int64_t collectives_checked = 0;
  std::int64_t tags_checked = 0;  // collectives where both ranks were tagged
  std::int64_t epochs_opened = 0;
  std::int64_t puts_checked = 0;
  std::int64_t benign_overlaps = 0;
  std::int64_t transfers_checked = 0;
  std::int64_t drains_checked = 0;
  std::int64_t files_closed = 0;
  std::int64_t waits_tracked = 0;
};

/// One checker instance per simulated job (owned by mpi::World).
class Checker {
 public:
  /// True when the job should run with the checker attached: env var
  /// `TCIO_CHECK` (0/1), defaulting to on when built with -DTCIO_CHECK=ON.
  static bool enabled();

  explicit Checker(int world_size);

  // -- Per-rank phase labels (diagnostic context) -----------------------------

  /// Sets rank `r`'s current high-level phase label (e.g. "File::flush").
  /// Pointer must outlive the scope; use ScopedLabel. Lock-free.
  void setLabel(Rank world_rank, const char* label);
  const char* label(Rank world_rank) const;

  // -- Per-rank user tags (application-phase collective verification) ---------

  /// No-tag sentinel: an untagged rank matches any tag.
  static constexpr std::int64_t kNoUserTag =
      std::numeric_limits<std::int64_t>::min();

  /// Sets rank `r`'s current application tag (e.g. a timestep or flush
  /// ordinal). Collective matching then verifies call #k carries the same
  /// tag on every tagged rank — catching desynchronized application phases
  /// whose MPI-level signatures (op/root/bytes) still happen to line up.
  /// Use ScopedUserTag. Lock-free.
  void setUserTag(Rank world_rank, std::int64_t tag);
  std::int64_t userTag(Rank world_rank) const;

  // -- Collective matching ----------------------------------------------------

  /// Declares a communicator context and its group size. First caller
  /// records, later callers verify. Safe to call repeatedly.
  void registerComm(int context, int size);

  /// Records collective call #k of `context` on `comm_rank` and verifies it
  /// against the signature recorded by the first rank to reach call #k.
  void onCollective(int context, Rank comm_rank, Rank world_rank, CollOp op,
                    Rank root, Bytes bytes, const char* site);

  // -- RMA epoch state machine ------------------------------------------------

  void onEpochOpen(const void* win, Rank origin_world, Rank target_world,
                   bool exclusive, const char* site);

  /// One coalesced put: target displacements/lengths plus the source
  /// pointers (CRC'd now, re-verified at epoch close).
  struct PutBlockRef {
    Offset disp = 0;
    Bytes len = 0;
    const void* src = nullptr;
  };
  void onPut(const void* win, Rank origin_world, Rank target_world,
             std::span<const PutBlockRef> blocks, const char* site);

  /// Closes the epoch: verifies every put source buffer is unchanged since
  /// the put (MPI forbids reuse before unlock), then drops the epoch.
  void onEpochClose(const void* win, Rank origin_world, Rank target_world,
                    const char* site);

  /// Rank-attributed diagnostic for a one-sided access outside any epoch
  /// (routed here from Window::requireLocked when the checker is enabled).
  [[noreturn]] void failOutsideEpoch(Rank origin_world, Rank target,
                                     const char* site);

  // -- TCIO segment ownership and drain coverage ------------------------------

  /// Declares a TCIO file session. A new session for a name whose previous
  /// session closed resets that file's state (reopen patterns).
  void registerFile(const std::string& name, int num_ranks, Bytes segment_size,
                    std::int64_t segments_per_rank);

  /// Marks `name`'s session aborted (close surfaced an agreed error): drain
  /// coverage is not evaluated and a later reopen starts a fresh session.
  void noteSessionAborted(const std::string& name);

  /// Crash takeover: segment `g`'s owner is now `new_owner` (original rank).
  void noteRemap(const std::string& name, SegmentId g, Rank new_owner);
  void noteDeath(const std::string& name, Rank orig_rank);
  /// Journaling off: an orphaned dirty segment's data died with its owner.
  void noteSegmentLost(const std::string& name, SegmentId g);
  void noteDirty(const std::string& name, SegmentId g);

  /// Verifies a level-2 transfer (write-side put, read-side load/gather) for
  /// segment `g` touches the rank the segment map owns it to.
  void onSegmentTransfer(const std::string& name, SegmentId g, Rank dest_orig,
                         const char* site);

  /// Verifies the close-time write of segment `g` is performed by its
  /// current owner and not duplicated by the same owner.
  void onDrain(const std::string& name, SegmentId g, Rank rank_orig,
               const char* site);

  /// Called by each rank completing a successful close; once every live
  /// registered rank has closed, verifies drain coverage: every dirty
  /// segment below `final_size` was drained or noted lost.
  void onFileClosed(const std::string& name, Bytes final_size, Rank rank_orig);

  // -- Wait-for-graph deadlock detection --------------------------------------

  /// Declares that `waiter_world` is about to block on `ev`; `targets`
  /// returns the ranks it currently waits on (re-evaluated during cycle
  /// search so lock handoffs don't leave stale edges). Runs cycle detection
  /// and throws CheckFailure when this wait closes a cycle of blocked ranks.
  void beginWait(Rank waiter_world, std::function<std::vector<Rank>()> targets,
                 const sim::Event* ev, const char* site);

  /// One leg of an AND-wait: the waiter needs `target` to act, and `ev`
  /// (non-owning; kept alive by `keepalive`) signals that leg done. A leg
  /// whose event is already ready contributes no wait-for edge.
  struct WaitEdge {
    Rank target = -1;                       // world rank waited on
    const sim::Event* ev = nullptr;         // completion event of this leg
    std::shared_ptr<const void> keepalive;  // owns whatever `ev` lives in
  };

  /// Declares an AND-wait (MPI_Waitall): `waiter_world` blocks until EVERY
  /// edge's event fires, so it is blocked while ANY edge is pending — and
  /// only pending edges are wait-for edges. Modeling the whole waitAll as a
  /// single wait on one event would false-cycle a rank whose remaining legs
  /// are already satisfied (e.g. a client blocked on a delegate reply plus a
  /// collective whose message already arrived). Edges with ready events are
  /// dropped on entry; if none remain, nothing is registered.
  void beginWaitAll(Rank waiter_world, std::vector<WaitEdge> edges,
                    const char* site);
  void endWait(Rank waiter_world);

  const CheckerStats& stats() const { return stats_; }
  std::int64_t violations() const { return violations_.load(); }

 private:
  [[noreturn]] void fail(const std::string& msg);

  struct CollSig {
    CollOp op;
    Rank root;
    Bytes bytes;
    std::int64_t tag;  // recorder's user tag (kNoUserTag when untagged)
    const char* site;
    const char* label;
    Rank first_world_rank;
  };
  struct CommRec {
    int size = 0;
    std::vector<std::int64_t> next_call;  // per comm rank
    std::vector<CollSig> sigs;            // calls [base, base + sigs.size())
    std::int64_t base = 0;
  };

  struct PutRecord {
    Offset disp;
    Bytes len;
    const void* src;
    std::uint32_t crc;
    std::vector<std::byte> bytes;  // copy of the written data
    const char* site;
  };
  struct EpochRec {
    bool exclusive = false;
    const char* site = nullptr;
    std::vector<PutRecord> puts;
  };

  struct FileRec {
    int num_ranks = 0;
    Bytes segment_size = 0;
    std::int64_t segments_per_rank = 0;
    int registered = 0;
    int closed = 0;
    /// Largest close-reported size. Sharded backends (delegates) report each
    /// rank's local high-water mark; the file extent is their maximum.
    Bytes final_size = 0;
    bool session_done = false;
    std::map<SegmentId, Rank> remap;
    std::set<Rank> dead;
    std::set<SegmentId> dirty;
    std::set<SegmentId> lost;
    std::map<SegmentId, Rank> drained;
  };
  Rank expectedOwner(const FileRec& fr, SegmentId g) const;
  FileRec& fileRec(const std::string& name, const char* site);

  struct WaitInfo {
    bool active = false;
    std::function<std::vector<Rank>()> targets;
    const sim::Event* ev = nullptr;
    /// Non-empty for AND-waits; then `targets`/`ev` are unused and the rank
    /// is blocked exactly while any edge's event is pending.
    std::vector<WaitEdge> edges;
    const char* site = nullptr;
  };

  /// Shared cycle search for beginWait/beginWaitAll; `waits_[waiter]` must
  /// already be populated. Throws on a cycle (after deactivating the waiter).
  void detectCycle(Rank waiter_world);

  int world_size_;
  std::vector<std::atomic<const char*>> labels_;
  std::vector<std::atomic<std::int64_t>> user_tags_;
  std::map<int, CommRec> comms_;
  std::map<std::pair<const void*, Rank>, std::map<Rank, EpochRec>> epochs_;
  std::map<std::string, FileRec> files_;
  std::vector<WaitInfo> waits_;
  CheckerStats stats_;
  std::atomic<std::int64_t> violations_{0};
};

/// RAII phase label: names the high-level operation a rank is inside so
/// collective-mismatch diagnostics can say "File::close" instead of only the
/// MPI primitive. Null checker is a no-op.
class ScopedLabel {
 public:
  ScopedLabel(Checker* ck, Rank world_rank, const char* label)
      : ck_(ck), rank_(world_rank) {
    if (ck_ != nullptr) {
      prev_ = ck_->label(rank_);
      ck_->setLabel(rank_, label);
    }
  }
  ~ScopedLabel() {
    if (ck_ != nullptr) ck_->setLabel(rank_, prev_);
  }
  ScopedLabel(const ScopedLabel&) = delete;
  ScopedLabel& operator=(const ScopedLabel&) = delete;

 private:
  Checker* ck_;
  Rank rank_;
  const char* prev_ = nullptr;
};

/// RAII user tag: stamps every collective a rank enters inside the scope
/// with an application-level phase id (timestep, flush ordinal, ...) so the
/// matching verifier can attribute a divergence to the application phase,
/// not just the MPI primitive. Null checker is a no-op.
class ScopedUserTag {
 public:
  ScopedUserTag(Checker* ck, Rank world_rank, std::int64_t tag)
      : ck_(ck), rank_(world_rank) {
    if (ck_ != nullptr) {
      prev_ = ck_->userTag(rank_);
      ck_->setUserTag(rank_, tag);
    }
  }
  ~ScopedUserTag() {
    if (ck_ != nullptr) ck_->setUserTag(rank_, prev_);
  }
  ScopedUserTag(const ScopedUserTag&) = delete;
  ScopedUserTag& operator=(const ScopedUserTag&) = delete;

 private:
  Checker* ck_;
  Rank rank_;
  std::int64_t prev_ = Checker::kNoUserTag;
};

}  // namespace tcio::check
