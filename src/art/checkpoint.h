// ART checkpoint (dump) and restart (load) over the shared snapshot file.
//
// Shared-file (N-1) layout:
//   [int64 magic][int64 num_trees]
//   [num_trees x {int64 offset, int64 size, u32 crc, u32 pad}] — tree table
//   tree blobs in tree-id order (variable sizes, adjacent — paper Fig. 8)
//
// File-per-process (N-N) layout: a meta file [magic][num_trees][writer_P]
// plus one "<name>.<rank>" file per writer with its own table and blobs.
//
// Every tree blob carries a CRC-32; restart verifies it and rejects
// corrupted snapshots. Trees are assigned to ranks round-robin for load
// balance (paper §V.C). Backends:
//   * TCIO: one tcio write per on-disk array — the library aggregates;
//   * vanilla MPI-IO: one independent write per array — each tiny write
//     goes straight to the (simulated) file system;
//   * file-per-process: the classic N-N POSIX baseline (no shared-file
//     contention, but num_ranks files and re-decomposition pain).
#pragma once

#include <string>
#include <vector>

#include "art/ftt.h"
#include "fs/filesystem.h"
#include "mpi/comm.h"
#include "tcio/config.h"

namespace tcio::art {

enum class Backend {
  kTcio,            // through the TCIO library (shared file, N-1)
  kVanillaMpiio,    // independent per-array MPI-IO writes (shared file, N-1)
  kFilePerProcess,  // one file per rank (N-N), classic POSIX baseline
};

struct CheckpointConfig {
  Backend backend = Backend::kTcio;
  core::TcioConfig tcio;  // used when backend == kTcio
};

/// Which tree ids rank `rank` owns (round-robin).
std::vector<std::int64_t> treesOfRank(std::int64_t num_trees, int rank,
                                      int size);

/// Collective dump: every rank writes its trees; rank 0 writes the header
/// and table. `trees` are this rank's trees ordered by treesOfRank().
void dumpCheckpoint(mpi::Comm& comm, fs::Filesystem& fsys,
                    const std::string& name,
                    const std::vector<FttTree>& trees,
                    std::int64_t num_trees_global,
                    const CheckpointConfig& cfg);

/// Collective restart: loads this rank's trees back.
std::vector<FttTree> loadCheckpoint(mpi::Comm& comm, fs::Filesystem& fsys,
                                    const std::string& name,
                                    const CheckpointConfig& cfg);

}  // namespace tcio::art
