// Fully Threaded Tree (FTT) — the cell-based AMR structure of the ART
// cosmology code (Kravtsov et al. 1997; Khokhlov 1998).
//
// A tree starts from one root cell; any cell may refine into 8 children
// (octree). Refinement evolves during the run, so trees differ in depth and
// per-level cell counts — the dynamic, variable-size data that defeats
// OCIO's derived-datatype file views (paper §V.C).
//
// On disk a tree is self-describing (paper Fig. 8): a header, then per level
// the refinement-flag array and one value array per physics variable — many
// small arrays of different types and sizes, adjacent in the file.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/types.h"

namespace tcio::art {

/// One refinement level of a tree.
struct FttLevel {
  /// 1 = cell is refined (has 8 children on the next level), 0 = leaf.
  std::vector<std::int32_t> refine;
  /// Per-variable cell values: vars[v][cell].
  std::vector<std::vector<double>> vars;

  std::int64_t numCells() const {
    return static_cast<std::int64_t>(refine.size());
  }
  friend bool operator==(const FttLevel&, const FttLevel&) = default;
};

/// A fully threaded tree rooted at one root cell.
struct FttTree {
  std::int64_t id = 0;
  std::vector<FttLevel> levels;

  int depth() const { return static_cast<int>(levels.size()); }
  int numVars() const {
    return levels.empty() ? 0 : static_cast<int>(levels[0].vars.size());
  }
  std::int64_t totalCells() const {
    std::int64_t n = 0;
    for (const auto& l : levels) n += l.numCells();
    return n;
  }
  friend bool operator==(const FttTree&, const FttTree&) = default;
};

/// Parameters for random tree generation.
struct TreeGenConfig {
  int num_vars = 2;
  int max_depth = 6;
  /// Probability that a cell refines, multiplied by decay^level.
  double refine_prob = 0.5;
  double refine_decay = 0.7;
};

/// Deterministically generates tree `id` (same seed + id = same tree on any
/// rank — no communication needed to agree on tree shapes).
FttTree generateTree(std::uint64_t seed, std::int64_t id,
                     const TreeGenConfig& cfg);

/// Generates a tree with approximately `target_cells` total cells (levels
/// fill as 1, 8, 64, ... until the target is reached). Used by the Fig. 9/10
/// benchmark, which sizes segments from the paper's N(2048, 128) draw.
FttTree generateTreeWithCells(std::uint64_t seed, std::int64_t id,
                              int num_vars, std::int64_t target_cells);

/// One coarse "simulation step": diffuse variable values toward the parent's
/// value and occasionally re-refine leaves / coarsen refined cells. Keeps
/// the example app honest about trees changing between checkpoints.
void advanceTree(FttTree& tree, Rng& rng, const TreeGenConfig& cfg);

/// Serialized size of the tree in the on-disk format.
Bytes treeSerializedSize(const FttTree& tree);

/// Visits every on-disk array of the tree in file order:
/// fn(data, bytes) — first the header array, then per level the refinement
/// array and each variable array. Writers emit one I/O call per array.
void forEachArray(const FttTree& tree,
                  const std::function<void(const void*, Bytes)>& fn);

/// Parses a serialized tree (inverse of forEachArray's concatenation).
FttTree parseTree(const std::byte* data, Bytes size);

/// Total number of on-disk arrays:
/// 1 header + depth * (cell count + refinement flags + one per variable).
std::int64_t arrayCount(const FttTree& tree);

/// Structural invariants of a fully threaded tree:
///   * every level's cell count equals 8 x the refined cells above it;
///   * every level carries the same number of variables;
///   * the deepest level refines nothing.
/// Returns an empty string when valid, else a description of the violation.
std::string validateTree(const FttTree& tree);

}  // namespace tcio::art
