#include "art/checkpoint.h"

#include <cstring>
#include <map>

#include "common/crc32.h"
#include "common/error.h"
#include "mpiio/file.h"
#include "tcio/file.h"

namespace tcio::art {

namespace {

constexpr std::int64_t kMagic = 0x41525443;      // "ARTC" (shared file)
constexpr std::int64_t kMagicNN = 0x4152544E;    // "ARTN" (file-per-process)

struct TableEntry {
  Offset offset = 0;
  Bytes size = 0;
  std::uint32_t crc = 0;
  std::uint32_t pad = 0;
};
static_assert(sizeof(TableEntry) == 24);

Bytes headerBytes(std::int64_t num_trees) { return 16 + num_trees * 24; }

std::uint32_t treeCrc(const FttTree& t) {
  std::uint32_t crc = 0;
  forEachArray(t, [&crc](const void* data, Bytes len) {
    crc = crc32({static_cast<const std::byte*>(data),
                 static_cast<std::size_t>(len)},
                crc);
  });
  return crc;
}

/// All ranks learn every tree's size and checksum: each contributes its own
/// trees' values into zero-initialized vectors, then max-allreduces merge.
struct SharedMeta {
  std::vector<Bytes> sizes;
  std::vector<std::int64_t> crcs;
};

SharedMeta shareMeta(mpi::Comm& comm, const std::vector<FttTree>& trees,
                     std::int64_t num_trees_global) {
  SharedMeta meta;
  meta.sizes.assign(static_cast<std::size_t>(num_trees_global), 0);
  meta.crcs.assign(static_cast<std::size_t>(num_trees_global), 0);
  for (const FttTree& t : trees) {
    TCIO_CHECK(t.id >= 0 && t.id < num_trees_global);
    meta.sizes[static_cast<std::size_t>(t.id)] = treeSerializedSize(t);
    meta.crcs[static_cast<std::size_t>(t.id)] = treeCrc(t);
  }
  comm.allreduce(meta.sizes.data(), num_trees_global, mpi::ReduceOp::kMax);
  comm.allreduce(meta.crcs.data(), num_trees_global, mpi::ReduceOp::kMax);
  return meta;
}

std::vector<TableEntry> buildTable(const SharedMeta& meta) {
  std::vector<TableEntry> table(meta.sizes.size());
  Offset cursor = headerBytes(static_cast<std::int64_t>(meta.sizes.size()));
  for (std::size_t i = 0; i < meta.sizes.size(); ++i) {
    table[i] = {cursor, meta.sizes[i],
                static_cast<std::uint32_t>(meta.crcs[i]), 0};
    cursor += meta.sizes[i];
  }
  return table;
}

/// Writer abstraction shared by the N-1 backends: one call per on-disk
/// array, exactly the paper's per-datum access pattern.
template <typename WriteAt>
void writeTrees(const std::vector<FttTree>& trees,
                const std::vector<TableEntry>& table, const WriteAt& write) {
  for (const FttTree& t : trees) {
    Offset cursor = table[static_cast<std::size_t>(t.id)].offset;
    forEachArray(t, [&](const void* data, Bytes len) {
      write(cursor, data, len);
      cursor += len;
    });
    TCIO_CHECK(cursor == table[static_cast<std::size_t>(t.id)].offset +
                             table[static_cast<std::size_t>(t.id)].size);
  }
}

template <typename WriteAt>
void writeHeader(std::int64_t num_trees,
                 const std::vector<TableEntry>& table, const WriteAt& write) {
  write(0, &kMagic, 8);
  write(8, &num_trees, 8);
  for (std::size_t i = 0; i < table.size(); ++i) {
    write(16 + static_cast<Offset>(i) * 24, &table[i], 24);
  }
}

core::TcioConfig sizedTcio(core::TcioConfig cfg, Bytes file_size, int P) {
  // Level-2 buffer sized to exactly the file domain / P (paper §V.B.2.b).
  cfg.segments_per_rank = std::max<std::int64_t>(
      1, (file_size + cfg.segment_size * P - 1) / (cfg.segment_size * P));
  return cfg;
}

std::string rankFileName(const std::string& base, int rank) {
  return base + "." + std::to_string(rank);
}

FttTree parseAndVerify(const std::vector<std::byte>& blob,
                       std::uint32_t want_crc, const std::string& name) {
  const std::uint32_t got = crc32(blob);
  if (got != want_crc) {
    throw FsError("checkpoint corruption detected in " + name +
                  " (CRC mismatch)");
  }
  return parseTree(blob.data(), static_cast<Bytes>(blob.size()));
}

// ---------------------------------------------------------------------------
// File-per-process (N-N) backend
// ---------------------------------------------------------------------------

void dumpFilePerProcess(mpi::Comm& comm, fs::Filesystem& fsys,
                        const std::string& name,
                        const std::vector<FttTree>& trees,
                        std::int64_t num_trees_global) {
  fs::FsClient fc(fsys, comm.proc());
  // Meta file by rank 0: magic, tree count, writer count.
  if (comm.rank() == 0) {
    fs::FsFile meta = fc.open(name, fs::kWrite | fs::kCreate | fs::kTruncate);
    const std::int64_t P = comm.size();
    fc.pwrite(meta, 0, &kMagicNN, 8);
    fc.pwrite(meta, 8, &num_trees_global, 8);
    fc.pwrite(meta, 16, &P, 8);
    fc.close(meta);
  }
  // Per-rank file: local table + blobs, no communication at all.
  fs::FsFile f = fc.open(rankFileName(name, comm.rank()),
                         fs::kWrite | fs::kCreate | fs::kTruncate);
  const auto ntrees = static_cast<std::int64_t>(trees.size());
  std::vector<TableEntry> table(trees.size());
  Offset cursor = 8 + ntrees * 24;
  for (std::size_t i = 0; i < trees.size(); ++i) {
    table[i] = {cursor, treeSerializedSize(trees[i]), treeCrc(trees[i]), 0};
    cursor += table[i].size;
  }
  fc.pwrite(f, 0, &ntrees, 8);
  if (ntrees > 0) fc.pwrite(f, 8, table.data(), ntrees * 24);
  for (std::size_t i = 0; i < trees.size(); ++i) {
    Offset pos = table[i].offset;
    forEachArray(trees[i], [&](const void* data, Bytes len) {
      fc.pwrite(f, pos, data, len);
      pos += len;
    });
  }
  fc.close(f);
  comm.barrier();  // dump complete on every rank
}

std::vector<FttTree> loadFilePerProcess(mpi::Comm& comm, fs::Filesystem& fsys,
                                        const std::string& name) {
  fs::FsClient fc(fsys, comm.proc());
  fs::FsFile meta = fc.open(name, fs::kRead);
  std::int64_t magic = 0, num_trees = 0, writer_p = 0;
  fc.pread(meta, 0, &magic, 8);
  fc.pread(meta, 8, &num_trees, 8);
  fc.pread(meta, 16, &writer_p, 8);
  fc.close(meta);
  TCIO_CHECK_MSG(magic == kMagicNN,
                 "not a file-per-process ART checkpoint: " + name);
  // Cache per-writer tables as needed (re-decomposition may read several).
  std::map<int, std::vector<TableEntry>> tables;
  auto tableOf = [&](int writer) -> const std::vector<TableEntry>& {
    auto it = tables.find(writer);
    if (it == tables.end()) {
      fs::FsFile f = fc.open(rankFileName(name, writer), fs::kRead);
      std::int64_t n = 0;
      fc.pread(f, 0, &n, 8);
      std::vector<TableEntry> table(static_cast<std::size_t>(n));
      if (n > 0) fc.pread(f, 8, table.data(), n * 24);
      fc.close(f);
      it = tables.emplace(writer, std::move(table)).first;
    }
    return it->second;
  };
  std::vector<FttTree> out;
  for (std::int64_t id : treesOfRank(num_trees, comm.rank(), comm.size())) {
    const int writer = static_cast<int>(id % writer_p);
    const auto index = static_cast<std::size_t>(id / writer_p);
    const auto& table = tableOf(writer);
    TCIO_CHECK(index < table.size());
    fs::FsFile f = fc.open(rankFileName(name, writer), fs::kRead);
    std::vector<std::byte> blob(static_cast<std::size_t>(table[index].size));
    fc.pread(f, table[index].offset, blob.data(),
             static_cast<Bytes>(blob.size()));
    fc.close(f);
    out.push_back(parseAndVerify(blob, table[index].crc, name));
  }
  return out;
}

}  // namespace

std::vector<std::int64_t> treesOfRank(std::int64_t num_trees, int rank,
                                      int size) {
  std::vector<std::int64_t> ids;
  for (std::int64_t id = rank; id < num_trees; id += size) ids.push_back(id);
  return ids;
}

void dumpCheckpoint(mpi::Comm& comm, fs::Filesystem& fsys,
                    const std::string& name,
                    const std::vector<FttTree>& trees,
                    std::int64_t num_trees_global,
                    const CheckpointConfig& cfg) {
  if (cfg.backend == Backend::kFilePerProcess) {
    dumpFilePerProcess(comm, fsys, name, trees, num_trees_global);
    return;
  }
  const SharedMeta meta = shareMeta(comm, trees, num_trees_global);
  const std::vector<TableEntry> table = buildTable(meta);
  const Bytes file_size =
      table.empty() ? headerBytes(0) : table.back().offset + table.back().size;

  if (cfg.backend == Backend::kTcio) {
    core::File f(comm, fsys, name, fs::kWrite | fs::kCreate | fs::kTruncate,
                 sizedTcio(cfg.tcio, file_size, comm.size()));
    auto write = [&f](Offset off, const void* data, Bytes len) {
      f.writeAt(off, data, len);
    };
    if (comm.rank() == 0) writeHeader(num_trees_global, table, write);
    writeTrees(trees, table, write);
    f.close();
  } else {
    io::MpioFile f = io::MpioFile::open(
        comm, fsys, name, fs::kWrite | fs::kCreate | fs::kTruncate);
    auto write = [&f](Offset off, const void* data, Bytes len) {
      f.writeAt(off, data, len);
    };
    if (comm.rank() == 0) writeHeader(num_trees_global, table, write);
    writeTrees(trees, table, write);
    f.close();
  }
}

std::vector<FttTree> loadCheckpoint(mpi::Comm& comm, fs::Filesystem& fsys,
                                    const std::string& name,
                                    const CheckpointConfig& cfg) {
  if (cfg.backend == Backend::kFilePerProcess) {
    return loadFilePerProcess(comm, fsys, name);
  }
  const Bytes file_size = fsys.peekSize(name);  // metadata query
  std::vector<FttTree> out;

  auto parseMine = [&](const auto& readAt, const auto& finish) {
    std::int64_t magic = 0, num_trees = 0;
    readAt(0, &magic, 8);
    readAt(8, &num_trees, 8);
    finish();
    TCIO_CHECK_MSG(magic == kMagic, "not an ART checkpoint: " + name);
    std::vector<TableEntry> table(static_cast<std::size_t>(num_trees));
    if (num_trees > 0) readAt(16, table.data(), num_trees * 24);
    finish();
    const auto mine = treesOfRank(num_trees, comm.rank(), comm.size());
    std::vector<std::vector<std::byte>> blobs;
    blobs.reserve(mine.size());
    for (std::int64_t id : mine) {
      const TableEntry& e = table[static_cast<std::size_t>(id)];
      blobs.emplace_back(static_cast<std::size_t>(e.size));
      readAt(e.offset, blobs.back().data(), e.size);
    }
    finish();
    for (std::size_t i = 0; i < blobs.size(); ++i) {
      const TableEntry& e = table[static_cast<std::size_t>(mine[i])];
      out.push_back(parseAndVerify(blobs[i], e.crc, name));
    }
  };

  if (cfg.backend == Backend::kTcio) {
    core::File f(comm, fsys, name, fs::kRead,
                 sizedTcio(cfg.tcio, file_size, comm.size()));
    parseMine(
        [&f](Offset off, void* data, Bytes len) { f.readAt(off, data, len); },
        [&f] { f.fetch(); });
    f.close();
  } else {
    io::MpioFile f = io::MpioFile::open(comm, fsys, name, fs::kRead);
    parseMine(
        [&f](Offset off, void* data, Bytes len) { f.readAt(off, data, len); },
        [] {});
    f.close();
  }
  return out;
}

}  // namespace tcio::art
