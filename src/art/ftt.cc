#include "art/ftt.h"

#include <cstring>

#include "common/error.h"

namespace tcio::art {

namespace {

/// On-disk header: magic, id, depth, num_vars.
struct TreeHeader {
  std::int64_t magic = 0x46545431;  // "FTT1"
  std::int64_t id = 0;
  std::int64_t depth = 0;
  std::int64_t num_vars = 0;
};

}  // namespace

FttTree generateTree(std::uint64_t seed, std::int64_t id,
                     const TreeGenConfig& cfg) {
  // Per-tree stream: mixing the id keeps trees independent and makes any
  // rank able to regenerate any tree.
  Rng rng(seed * 0x9e3779b97f4a7c15ULL + static_cast<std::uint64_t>(id) + 17);
  FttTree tree;
  tree.id = id;
  std::int64_t cells = 1;
  double prob = cfg.refine_prob;
  for (int level = 0; level < cfg.max_depth && cells > 0; ++level) {
    FttLevel lvl;
    lvl.refine.resize(static_cast<std::size_t>(cells), 0);
    lvl.vars.assign(static_cast<std::size_t>(cfg.num_vars),
                    std::vector<double>(static_cast<std::size_t>(cells)));
    std::int64_t refined = 0;
    for (std::int64_t c = 0; c < cells; ++c) {
      const bool refine =
          level + 1 < cfg.max_depth && rng.uniform() < prob;
      lvl.refine[static_cast<std::size_t>(c)] = refine ? 1 : 0;
      refined += refine ? 1 : 0;
      for (int v = 0; v < cfg.num_vars; ++v) {
        lvl.vars[static_cast<std::size_t>(v)][static_cast<std::size_t>(c)] =
            rng.normal(static_cast<double>(v + 1), 0.25);
      }
    }
    tree.levels.push_back(std::move(lvl));
    cells = refined * 8;
    prob *= cfg.refine_decay;
  }
  return tree;
}

FttTree generateTreeWithCells(std::uint64_t seed, std::int64_t id,
                              int num_vars, std::int64_t target_cells) {
  Rng rng(seed * 0x9e3779b97f4a7c15ULL + static_cast<std::uint64_t>(id) + 31);
  FttTree tree;
  tree.id = id;
  auto appendLevel = [&](std::int64_t cells) {
    FttLevel lvl;
    lvl.refine.assign(static_cast<std::size_t>(cells), 0);
    lvl.vars.resize(static_cast<std::size_t>(num_vars));
    for (auto& var : lvl.vars) {
      var.resize(static_cast<std::size_t>(cells));
      for (double& x : var) x = rng.normal(1.0, 0.25);
    }
    tree.levels.push_back(std::move(lvl));
  };
  appendLevel(1);
  std::int64_t produced = 1;
  while (produced < target_cells) {
    FttLevel& prev = tree.levels.back();
    const std::int64_t remaining = target_cells - produced;
    // Children come in eights (octree invariant), so round the last level
    // up; the total lands within 7 cells of the target.
    const std::int64_t children =
        std::min(prev.numCells() * 8, (remaining + 7) / 8 * 8);
    const std::int64_t refined = children / 8;
    for (std::int64_t c = 0; c < refined; ++c) {
      prev.refine[static_cast<std::size_t>(c)] = 1;
    }
    appendLevel(children);
    produced += children;
  }
  return tree;
}

void advanceTree(FttTree& tree, Rng& rng, const TreeGenConfig& cfg) {
  // Diffuse values slightly and randomly flip a few refinement decisions on
  // the deepest populated level, rebuilding the levels below it.
  for (auto& lvl : tree.levels) {
    for (auto& var : lvl.vars) {
      for (double& x : var) x += rng.normal(0.0, 0.01);
    }
  }
  if (tree.levels.size() < 2) return;
  const std::size_t last = tree.levels.size() - 2;
  FttLevel& lvl = tree.levels[last];
  std::int64_t refined = 0;
  for (auto& flag : lvl.refine) {
    if (rng.uniform() < 0.05) flag ^= 1;
    refined += flag;
  }
  // Rebuild the final level to match the new refinement count.
  const std::int64_t cells = refined * 8;
  FttLevel& leaf = tree.levels[last + 1];
  leaf.refine.assign(static_cast<std::size_t>(cells), 0);
  for (int v = 0; v < cfg.num_vars && v < static_cast<int>(leaf.vars.size());
       ++v) {
    leaf.vars[static_cast<std::size_t>(v)].assign(
        static_cast<std::size_t>(cells), static_cast<double>(v + 1));
  }
  if (cells == 0) tree.levels.pop_back();
}

Bytes treeSerializedSize(const FttTree& tree) {
  Bytes n = sizeof(TreeHeader);
  for (const auto& lvl : tree.levels) {
    n += 8;                                    // int64 cell count
    n += lvl.numCells() * 4;                   // refine flags
    n += static_cast<Bytes>(lvl.vars.size()) * lvl.numCells() * 8;
  }
  return n;
}

void forEachArray(const FttTree& tree,
                  const std::function<void(const void*, Bytes)>& fn) {
  const TreeHeader hdr{0x46545431, tree.id, tree.depth(), tree.numVars()};
  fn(&hdr, sizeof(hdr));
  for (const auto& lvl : tree.levels) {
    const std::int64_t cells = lvl.numCells();
    fn(&cells, 8);
    fn(lvl.refine.data(), cells * 4);
    for (const auto& var : lvl.vars) {
      fn(var.data(), cells * 8);
    }
  }
}

FttTree parseTree(const std::byte* data, Bytes size) {
  const std::byte* p = data;
  const std::byte* end = data + size;
  auto take = [&](void* dst, Bytes n) {
    TCIO_CHECK_MSG(p + n <= end, "truncated FTT record");
    std::memcpy(dst, p, static_cast<std::size_t>(n));
    p += n;
  };
  TreeHeader hdr;
  take(&hdr, sizeof(hdr));
  TCIO_CHECK_MSG(hdr.magic == 0x46545431, "bad FTT magic");
  FttTree tree;
  tree.id = hdr.id;
  for (std::int64_t level = 0; level < hdr.depth; ++level) {
    std::int64_t cells = 0;
    take(&cells, 8);
    FttLevel lvl;
    lvl.refine.resize(static_cast<std::size_t>(cells));
    take(lvl.refine.data(), cells * 4);
    lvl.vars.resize(static_cast<std::size_t>(hdr.num_vars));
    for (auto& var : lvl.vars) {
      var.resize(static_cast<std::size_t>(cells));
      take(var.data(), cells * 8);
    }
    tree.levels.push_back(std::move(lvl));
  }
  return tree;
}

std::string validateTree(const FttTree& tree) {
  if (tree.levels.empty()) return "tree has no levels";
  const auto vars = tree.levels.front().vars.size();
  for (std::size_t l = 0; l < tree.levels.size(); ++l) {
    const FttLevel& lvl = tree.levels[l];
    if (lvl.vars.size() != vars) {
      return "level " + std::to_string(l) + " has " +
             std::to_string(lvl.vars.size()) + " variables, expected " +
             std::to_string(vars);
    }
    for (const auto& var : lvl.vars) {
      if (static_cast<std::int64_t>(var.size()) != lvl.numCells()) {
        return "level " + std::to_string(l) +
               " variable array size mismatch";
      }
    }
    for (const auto flag : lvl.refine) {
      if (flag != 0 && flag != 1) {
        return "level " + std::to_string(l) + " has a non-boolean flag";
      }
    }
    if (l + 1 < tree.levels.size()) {
      std::int64_t refined = 0;
      for (const auto flag : lvl.refine) refined += flag;
      if (tree.levels[l + 1].numCells() != refined * 8) {
        return "level " + std::to_string(l + 1) + " has " +
               std::to_string(tree.levels[l + 1].numCells()) +
               " cells, expected " + std::to_string(refined * 8);
      }
    } else {
      for (const auto flag : lvl.refine) {
        if (flag != 0) return "deepest level refines a cell";
      }
    }
  }
  return {};
}

std::int64_t arrayCount(const FttTree& tree) {
  // Header + per level: cell count, refinement flags, one array per var.
  return 1 + static_cast<std::int64_t>(tree.depth()) * (2 + tree.numVars());
}

}  // namespace tcio::art
