// Deterministic backoff timers for retry loops running in simulated time.
//
// A retrying client does not spin: it charges the backoff interval to its
// own virtual clock (Proc::advance), which models the wall-clock wait of a
// real exponential-backoff loop. Jitter is drawn from the caller's seeded
// stream, so the same seed reproduces the same backoff schedule — a hard
// requirement of the fault-matrix determinism tests.
#pragma once

#include <algorithm>

#include "common/error.h"
#include "common/fault.h"
#include "common/rng.h"
#include "common/types.h"

namespace tcio::sim {

/// Backoff interval before retry attempt `attempt` (1-based: the delay
/// charged after the attempt-th try failed). Exponential in the attempt
/// number, capped at `policy.max_backoff`, jittered multiplicatively from
/// `rng` to de-synchronize retrying ranks.
inline SimTime backoffDelay(const RetryPolicy& policy, int attempt, Rng& rng) {
  TCIO_CHECK_MSG(attempt >= 1, "backoff attempt numbers are 1-based");
  TCIO_CHECK_MSG(policy.base_backoff >= 0 && policy.max_backoff >= 0 &&
                     policy.backoff_multiplier >= 1.0 &&
                     policy.jitter_fraction >= 0 &&
                     policy.jitter_fraction <= 2.0,
                 "invalid RetryPolicy");
  double delay = policy.base_backoff;
  for (int i = 1; i < attempt; ++i) delay *= policy.backoff_multiplier;
  delay = std::min(delay, policy.max_backoff);
  if (policy.jitter_fraction > 0) {
    delay *= 1.0 + policy.jitter_fraction * (rng.uniform() - 0.5);
  }
  return delay;
}

}  // namespace tcio::sim
