// FCFS resource timelines — the cost-model primitive shared by the network
// and file-system models.
//
// A `Timeline` models a serial resource (a NIC, an OST disk stream, the
// fabric core) as an availability horizon: a request of `n` bytes arriving at
// virtual time `t` begins service at max(t, horizon), takes
// `overhead + n / rate` seconds, and pushes the horizon to its completion
// time. Because the engine executes all shared-state operations in virtual
// time order, arrival order equals virtual-time order and FCFS is exact.
//
// Optional congestion models the collapse real fabrics exhibit under bursts
// (the paper's "heavy traffic bursting" for OCIO's all-to-all exchange):
// the effective service rate degrades with the backlog already queued,
//     rate_eff = rate / (1 + gamma * backlog_seconds / tau)
// so a large synchronized burst serves its tail superlinearly slowly, while
// staggered traffic (TCIO's per-segment one-sided puts) stays near nominal.
#pragma once

#include <algorithm>

#include "common/error.h"
#include "common/types.h"

namespace tcio::sim {

/// Serial FCFS resource with optional backlog-dependent congestion.
/// Must only be mutated inside Proc::atomic() sections.
class Timeline {
 public:
  /// `rate` in bytes/second; `overhead` charged per request.
  explicit Timeline(double rate, SimTime overhead = 0.0)
      : rate_(rate), overhead_(overhead) {
    TCIO_CHECK(rate_ > 0);
    TCIO_CHECK(overhead_ >= 0);
  }

  /// Enable congestion: service slows by (1 + gamma * backlog / tau),
  /// bounded by `max_slowdown` (an uncapped factor is a positive-feedback
  /// runaway: slower service grows the backlog which slows service further).
  void setCongestion(double gamma, SimTime tau, double max_slowdown = 4.0) {
    TCIO_CHECK(gamma >= 0 && tau > 0 && max_slowdown >= 1.0);
    gamma_ = gamma;
    tau_ = tau;
    max_slowdown_ = max_slowdown;
  }

  /// Reserve service for `n` bytes arriving at `start`; returns completion
  /// time and advances the availability horizon.
  SimTime serve(SimTime start, Bytes n) {
    TCIO_CHECK(n >= 0);
    const SimTime begin = std::max(start, horizon_);
    const SimTime backlog = std::max(0.0, horizon_ - start);
    const double slowdown =
        gamma_ > 0
            ? std::min(max_slowdown_, 1.0 + gamma_ * backlog / tau_)
            : 1.0;
    const SimTime end =
        begin + overhead_ + static_cast<double>(n) / (rate_ / slowdown);
    horizon_ = end;
    total_bytes_ += n;
    ++total_requests_;
    busy_ += end - begin;
    return end;
  }

  /// Reserve the resource for a fixed service duration (callers that price
  /// the work themselves, e.g. an OST mixing disk- and cache-speed bytes in
  /// one request). Congestion applies the same way as for serve().
  SimTime serveDuration(SimTime start, SimTime duration) {
    TCIO_CHECK(duration >= 0);
    const SimTime begin = std::max(start, horizon_);
    const SimTime backlog = std::max(0.0, horizon_ - start);
    const double slowdown =
        gamma_ > 0
            ? std::min(max_slowdown_, 1.0 + gamma_ * backlog / tau_)
            : 1.0;
    const SimTime end = begin + duration * slowdown;
    horizon_ = end;
    ++total_requests_;
    busy_ += end - begin;
    return end;
  }

  /// Queued-but-unserved work, in seconds, as seen by an arrival at `at`.
  SimTime backlog(SimTime at) const { return std::max(0.0, horizon_ - at); }

  SimTime horizon() const { return horizon_; }
  double rate() const { return rate_; }
  Bytes totalBytes() const { return total_bytes_; }
  std::int64_t totalRequests() const { return total_requests_; }
  /// Total busy (serving) time — utilization numerator for reports.
  SimTime busyTime() const { return busy_; }

 private:
  double rate_;
  SimTime overhead_;
  double gamma_ = 0.0;
  SimTime tau_ = 1e-3;
  double max_slowdown_ = 4.0;
  SimTime horizon_ = 0.0;
  Bytes total_bytes_ = 0;
  std::int64_t total_requests_ = 0;
  SimTime busy_ = 0.0;
};

}  // namespace tcio::sim
