// Optional event tracing for debugging and for tests that assert on
// operation ordering. Disabled by default; recording is cheap (one vector
// push inside an already-atomic section).
#pragma once

#include <string>
#include <vector>

#include "common/types.h"

namespace tcio::sim {

/// One recorded simulation event.
struct TraceEvent {
  Rank rank = -1;
  SimTime begin = 0;
  SimTime end = 0;
  /// Category, e.g. "net.send", "fs.write", "rma.put", "tcio.flush".
  std::string category;
  Bytes bytes = 0;
};

/// Append-only trace buffer. Must only be mutated inside Proc::atomic().
class Trace {
 public:
  void enable(bool on) { enabled_ = on; }
  bool enabled() const { return enabled_; }

  void record(Rank rank, SimTime begin, SimTime end, std::string category,
              Bytes bytes = 0) {
    if (!enabled_) return;
    events_.push_back({rank, begin, end, std::move(category), bytes});
  }

  const std::vector<TraceEvent>& events() const { return events_; }
  void clear() { events_.clear(); }

  /// Number of events whose category starts with `prefix`.
  std::int64_t countWithPrefix(const std::string& prefix) const {
    std::int64_t n = 0;
    for (const auto& e : events_) {
      if (e.category.rfind(prefix, 0) == 0) ++n;
    }
    return n;
  }

 private:
  bool enabled_ = false;
  std::vector<TraceEvent> events_;
};

}  // namespace tcio::sim
