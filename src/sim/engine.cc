#include "sim/engine.h"

#include <algorithm>
#include <sstream>

namespace tcio::sim {

// ---------------------------------------------------------------------------
// Proc
// ---------------------------------------------------------------------------

int Proc::size() const { return engine_->numRanks(); }

Proc::AtomicSection::AtomicSection(Proc& p) : lk_(p.engine_->lock_) {
  p.engine_->gateLocked(lk_, p);
}

void Proc::complete(Event& e, SimTime t) {
  Engine& eng = *engine_;
  // The engine lock is held by this thread's enclosing AtomicSection.
  TCIO_CHECK_MSG(eng.active_ == rank_, "complete() outside atomic()");
  TCIO_CHECK_MSG(!e.ready_, "event completed twice");
  e.ready_ = true;
  e.time_ = t;
  for (Rank w : e.waiters_) {
    Engine::RankRecord& rec = eng.records_[w];
    TCIO_CHECK(rec.state == Engine::State::kBlocked);
    rec.state = Engine::State::kGated;
    rec.wait_what = nullptr;
    --eng.blocked_count_;
    Proc& pw = *eng.procs_[w];
    pw.now_ = std::max(pw.now_, t);
    eng.gated_.insert({pw.now_, w});
  }
  e.waiters_.clear();
}

void Proc::wait(Event& e, const char* what) {
  Engine& eng = *engine_;
  std::unique_lock<std::mutex> lk(eng.lock_);
  eng.checkAbortLocked();
  if (e.ready_) {
    advanceTo(e.time_);
    return;
  }
  TCIO_CHECK_MSG(eng.active_ == rank_, "wait() by a non-active rank");
  Engine::RankRecord& rec = eng.records_[rank_];
  rec.state = Engine::State::kBlocked;
  rec.wait_what = what;
  ++eng.blocked_count_;
  e.waiters_.push_back(rank_);
  eng.releaseActiveLocked(rank_);
  eng.dispatchLocked();
  rec.cv.wait(lk, [&] { return eng.active_ == rank_ || eng.abort_; });
  if (eng.abort_) throw Aborted{};
  // complete() already advanced our clock and re-gated us; we are active now.
}

// ---------------------------------------------------------------------------
// Engine
// ---------------------------------------------------------------------------

Engine::Engine(Config cfg) : cfg_(cfg) {
  TCIO_CHECK(cfg_.num_ranks >= 1);
  records_ = std::vector<RankRecord>(static_cast<std::size_t>(cfg_.num_ranks));
  final_times_.assign(static_cast<std::size_t>(cfg_.num_ranks), 0.0);
  procs_.reserve(static_cast<std::size_t>(cfg_.num_ranks));
  for (Rank r = 0; r < cfg_.num_ranks; ++r) {
    // Mix the rank into the seed so streams are independent.
    const std::uint64_t seed =
        cfg_.seed * 0x9e3779b97f4a7c15ULL + static_cast<std::uint64_t>(r) + 1;
    procs_.emplace_back(std::unique_ptr<Proc>(new Proc(*this, r, seed)));
  }
}

Engine::~Engine() = default;

void Engine::run(const std::function<void(Proc&)>& body) {
  TCIO_CHECK_MSG(!ran_, "Engine::run may only be called once");
  ran_ = true;

  const int P = cfg_.num_ranks;
  int init_count = 0;

  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(P));
  for (Rank r = 0; r < P; ++r) {
    threads.emplace_back([&, r] {
      Proc& proc = *procs_[r];
      // Startup: register at time 0 and wait to be scheduled. The last rank
      // to register kicks off the first dispatch so the min-time pick sees
      // the complete gated set.
      {
        std::unique_lock<std::mutex> lk(lock_);
        gated_.insert({0.0, r});
        if (++init_count == P) dispatchLocked();
        records_[r].cv.wait(lk, [&] { return active_ == r || abort_; });
        if (abort_) {
          lk.unlock();
          finishRank(r, /*was_active=*/false);
          return;
        }
      }
      try {
        body(proc);
        finishRank(r, /*was_active=*/true);
      } catch (const Aborted&) {
        finishRank(r, /*was_active=*/false);
      } catch (...) {
        std::unique_lock<std::mutex> lk(lock_);
        failLocked(std::current_exception());
        lk.unlock();
        finishRank(r, /*was_active=*/false);
      }
    });
  }
  for (auto& t : threads) t.join();
  if (failure_) std::rethrow_exception(failure_);
}

void Engine::finishRank(Rank r, bool was_active) {
  std::unique_lock<std::mutex> lk(lock_);
  RankRecord& rec = records_[r];
  rec.state = State::kDone;
  ++done_count_;
  final_times_[r] = procs_[r]->now_;
  if (was_active) {
    TCIO_CHECK(active_ == r);
    releaseActiveLocked(r);
    dispatchLocked();
  } else if (active_ == r) {
    // Failure path: the failing rank may still be marked active.
    releaseActiveLocked(r);
    if (!abort_) dispatchLocked();
  }
}

SimTime Engine::makespan() const {
  std::unique_lock<std::mutex> lk(lock_);
  SimTime m = 0;
  for (SimTime t : final_times_) m = std::max(m, t);
  return m;
}

void Engine::gateLocked(std::unique_lock<std::mutex>& lk, Proc& p) {
  const Rank r = p.rank_;
  checkAbortLocked();
  TCIO_CHECK_MSG(active_ == r, "atomic() by a non-active rank");
  ++event_count_;
  const GateKey key{p.now_, r};
  // Fast path: we are already the minimum runnable rank — keep running.
  if (gated_.empty() || key < *gated_.begin()) return;
  // Hand off to the earlier rank and queue ourselves.
  records_[r].state = State::kGated;
  gated_.insert(key);
  releaseActiveLocked(r);
  dispatchLocked();
  records_[r].cv.wait(lk, [&] { return active_ == r || abort_; });
  if (abort_) throw Aborted{};
}

void Engine::releaseActiveLocked(Rank r) {
  TCIO_CHECK(active_ == r);
  active_ = -1;
}

void Engine::dispatchLocked() {
  if (abort_) return;
  TCIO_CHECK(active_ == -1);
  if (!gated_.empty()) {
    const auto it = gated_.begin();
    const Rank r = it->second;
    gated_.erase(it);
    records_[r].state = State::kActive;
    active_ = r;
    records_[r].cv.notify_one();
    return;
  }
  if (done_count_ == cfg_.num_ranks) return;  // everyone finished
  // No runnable rank and somebody is still alive: they are all blocked.
  std::ostringstream os;
  os << "simulated deadlock: all live ranks are blocked —";
  for (Rank r = 0; r < cfg_.num_ranks; ++r) {
    if (records_[r].state == State::kBlocked) {
      os << " rank " << r << " waiting on "
         << (records_[r].wait_what != nullptr ? records_[r].wait_what : "?")
         << ";";
    }
  }
  failLocked(std::make_exception_ptr(DeadlockError(os.str())));
}

void Engine::failLocked(std::exception_ptr ep) {
  if (!failure_) failure_ = std::move(ep);
  abort_ = true;
  for (auto& rec : records_) rec.cv.notify_all();
}

void Engine::checkAbortLocked() const {
  if (abort_) throw Aborted{};
}

}  // namespace tcio::sim
