// Deterministic discrete-event engine with one OS thread per simulated rank.
//
// Execution model
// ---------------
// Every simulated MPI rank runs as its own thread, but the engine admits
// exactly one thread at a time ("the active rank"). All interaction with
// shared simulation state (mailboxes, RMA windows, file-system queues, ...)
// must happen inside `Proc::atomic(fn)`. `atomic` first *gates*: the calling
// rank is suspended until it holds the minimum (virtual time, rank) key among
// all runnable ranks. Because shared state is only ever touched inside a
// gated section, every observable event executes in global virtual-time
// order — a conservative discrete-event simulation that is bit-deterministic
// regardless of OS scheduling.
//
// Between engine calls a rank may freely run real computation and advance its
// own clock with `advance()`; that is safe because local work cannot touch
// shared state.
//
// Blocking is expressed with `Event`: a module (inside `atomic`) registers
// the calling rank as a waiter, and some later rank (inside its own `atomic`)
// calls `Proc::complete(event, time)`. `Proc::wait` suspends until then and
// advances the waiter's clock to the completion time.
//
// If every live rank ends up blocked, the engine raises `DeadlockError`
// naming each rank's wait reason — simulated programs cannot hang silently.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/error.h"
#include "common/rng.h"
#include "common/types.h"

namespace tcio::sim {

class Engine;
class Proc;

/// One-shot completion token connecting a blocked rank to the rank that will
/// unblock it. Owned by module data structures (message envelopes, lock
/// requests, ...). All fields are engine-lock protected; user code only
/// passes Events to Proc::wait / Proc::complete.
class Event {
 public:
  bool ready() const { return ready_; }
  SimTime time() const { return time_; }

 private:
  friend class Engine;
  friend class Proc;
  bool ready_ = false;
  SimTime time_ = 0;
  std::vector<Rank> waiters_;
};

/// Per-rank facade handed to the rank body. All members must be called from
/// the owning rank's thread only.
class Proc {
 public:
  Rank rank() const { return rank_; }
  int size() const;

  /// This rank's virtual clock, in seconds.
  SimTime now() const { return now_; }

  /// Charge `dt` seconds of local work (computation, memcpy, ...).
  void advance(SimTime dt) {
    TCIO_CHECK(dt >= 0);
    now_ += dt;
  }

  /// Move the clock forward to at least `t` (no-op if already past).
  void advanceTo(SimTime t) {
    if (t > now_) now_ = t;
  }

  /// Execute `fn` atomically at this rank's current virtual time, in global
  /// virtual-time order. `fn` runs with the engine lock held; it must not
  /// call atomic/wait itself. Returns fn's result.
  template <typename F>
  auto atomic(F&& fn) -> decltype(fn()) {
    AtomicSection section(*this);
    return fn();
  }

  /// Mark `e` complete at time `t` and make its waiters runnable. Must be
  /// called inside atomic(). `t` must be >= the caller's gated time.
  void complete(Event& e, SimTime t);

  /// Block until `e` completes; advances this rank's clock to the completion
  /// time. `what` names the wait for deadlock diagnostics. Must NOT be
  /// called inside atomic().
  void wait(Event& e, const char* what);

  /// Deterministic per-rank random stream.
  Rng& rng() { return rng_; }

  Engine& engine() { return *engine_; }

 private:
  friend class Engine;
  Proc(Engine& engine, Rank rank, std::uint64_t seed)
      : engine_(&engine), rank_(rank), rng_(seed) {}

  /// RAII helper: gates on construction (acquiring the engine lock and
  /// waiting for virtual-time order), releases the lock on destruction.
  class AtomicSection {
   public:
    explicit AtomicSection(Proc& p);
    ~AtomicSection() = default;  // lk_ releases the engine lock
    AtomicSection(const AtomicSection&) = delete;
    AtomicSection& operator=(const AtomicSection&) = delete;

   private:
    std::unique_lock<std::mutex> lk_;
  };

  Engine* engine_;
  Rank rank_;
  SimTime now_ = 0;
  Rng rng_;
};

/// The engine itself. Construct with the rank count, then `run(body)`;
/// `body(proc)` is executed once per rank on its own thread. `run` returns
/// when every rank finished and rethrows the first failure, if any.
class Engine {
 public:
  struct Config {
    int num_ranks = 1;
    /// Seed mixed into each rank's Rng.
    std::uint64_t seed = 1;
  };

  explicit Engine(Config cfg);
  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Runs `body` on every rank. May be called once per Engine.
  void run(const std::function<void(Proc&)>& body);

  int numRanks() const { return cfg_.num_ranks; }

  /// Maximum virtual time over all ranks after run() finished — the
  /// simulated makespan.
  SimTime makespan() const;

  /// Total number of gated sections executed (simulation event count).
  std::int64_t eventCount() const { return event_count_; }

 private:
  friend class Proc;

  enum class State : std::uint8_t { kGated, kActive, kBlocked, kDone };

  struct RankRecord {
    State state = State::kGated;
    const char* wait_what = nullptr;
    std::condition_variable cv;
  };

  using GateKey = std::pair<SimTime, Rank>;

  // All of the below require lock_ held.
  void gateLocked(std::unique_lock<std::mutex>& lk, Proc& p);
  void finishRank(Rank r, bool was_active);
  void releaseActiveLocked(Rank r);
  void dispatchLocked();
  void failLocked(std::exception_ptr ep);
  void checkAbortLocked() const;

  Config cfg_;
  mutable std::mutex lock_;
  std::vector<RankRecord> records_;
  std::vector<std::unique_ptr<Proc>> procs_;
  std::set<GateKey> gated_;
  Rank active_ = -1;
  int done_count_ = 0;
  int blocked_count_ = 0;
  bool abort_ = false;
  std::exception_ptr failure_;
  std::vector<SimTime> final_times_;
  std::int64_t event_count_ = 0;
  bool ran_ = false;
};

/// Thrown into rank threads to unwind them after another rank failed. User
/// code should not catch it (catch-all handlers in rank bodies must rethrow).
struct Aborted {};

}  // namespace tcio::sim
