// Token scanner for tcio-lint (DESIGN.md §12).
//
// tcio-lint deliberately does NOT parse C++: a full frontend (libclang)
// would tie the always-on lint tier to a pinned toolchain, which is exactly
// the failure mode that made the clang-tidy leg skippable. Instead the
// rules work over a faithful *token* stream — identifiers, literals,
// punctuation, each with a line number — plus the comment stream (where
// `NOLINT-TCIO(...)` suppressions and `LINT-EXPECT[...]` fixture
// annotations live). The lexer handles everything that would otherwise
// corrupt a token-level view: line/block comments, string/char literals
// (including raw strings), digit separators, and preprocessor directives
// with continuations.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace tcio::lint {

enum class Tok {
  kIdent,   // identifiers and keywords (rules tell them apart by text)
  kNumber,  // numeric literal, text preserved
  kString,  // string literal, contents collapsed to ""
  kChar,    // char literal, contents collapsed to ''
  kPunct,   // one multi-char operator or single punctuation character
};

struct Token {
  Tok kind = Tok::kPunct;
  std::string text;
  int line = 0;
};

struct Comment {
  int line = 0;       // line the comment starts on
  std::string text;   // contents without the // or /* */ fencing
};

struct LexedFile {
  std::vector<Token> tokens;
  std::vector<Comment> comments;
};

/// Tokenizes `src`. Never fails: unterminated constructs lex as best-effort
/// up to end of input (a lint over a file that does not even compile should
/// degrade, not crash).
LexedFile lex(std::string_view src);

}  // namespace tcio::lint
