// tcio-lint: an always-on, dependency-free static analyzer for the
// TCIO-specific invariants that the runtime checker (src/check/) and the
// chaos harness (src/chaos/) can only catch when a workload happens to
// execute them. See DESIGN.md §12 for the rule rationale; every rule is
// grounded in a real past bug or a standing project discipline.
//
// Rules (names are stable — suppressions and fixtures key on them):
//   rma-source-lifetime    a block-local buffer's address escapes into an
//                          asynchronous sink (Rma put/putIndexed, isend) or
//                          a longer-lived object, and the scope closes
//                          before the epoch does (the PR 5
//                          ensureLoadedIndependent bug; the PR 8 ~File
//                          teardown bug is the member-order variant)
//   collective-divergence  a collective call inside a rank-conditional
//                          branch without a matching call on the other path
//   raii-temporary         an unbound RAII temporary (ScopedUserTag,
//                          lock_guard, ...) that destructs immediately
//   journal-batch-pairing  Journal::batchBegin without batchEnd on every
//                          exit path of the function
//   crash-unwind-swallow   a broad catch ((...) / std::exception / Error)
//                          that can swallow RankCrashedError without
//                          rethrowing or capturing it
//   banned-api             wall-clock time anywhere; raw std::mutex /
//                          sleeps outside src/sim; raw MPI_* outside
//                          src/mpi (the simulation runs on virtual time and
//                          owns its threading in exactly one place)
//
// Suppression: `// NOLINT-TCIO(rule): reason` on the finding's line or the
// line directly above. The reason is mandatory — a bare suppression is
// itself a finding (rule `lint-suppression`), so every waiver in the tree
// carries its justification.
//
// Fixtures: `// LINT-EXPECT[rule]` marks the line a red fixture expects a
// finding on. checkExpectations() passes iff findings and expectations
// match exactly, so a fixture pins both that a rule fires and *where*.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "lint/lexer.h"

namespace tcio::lint {

struct Finding {
  std::string path;
  int line = 0;
  std::string rule;
  std::string message;

  /// Machine-readable one-liner: "path:line: rule: message".
  std::string str() const;
};

/// All rule names, in reporting order.
std::vector<std::string> ruleNames();

/// Lints one file's contents. `path` should be repo-relative with forward
/// slashes — the banned-api rule's src/sim and src/mpi carve-outs key on
/// it. NOLINT-TCIO suppressions are applied; malformed ones are reported.
std::vector<Finding> lintText(const std::string& path,
                              std::string_view content);

/// Reads and lints a file on disk. `display_path` is what findings carry
/// (pass the repo-relative form); the file is read from `fs_path`.
std::vector<Finding> lintFile(const std::string& fs_path,
                              const std::string& display_path);

/// Fixture verdict: every LINT-EXPECT[rule] line produced that finding and
/// no unexpected finding appeared. `problems` lists each mismatch.
struct ExpectResult {
  bool ok = true;
  std::vector<std::string> problems;
};
ExpectResult checkExpectations(const std::string& path,
                               std::string_view content);

namespace detail {

// One rule pass: appends raw (pre-suppression) findings.
using RuleFn = void (*)(const LexedFile&, const std::string& path,
                        std::vector<Finding>*);

void ruleRmaSourceLifetime(const LexedFile&, const std::string&,
                           std::vector<Finding>*);
void ruleCollectiveDivergence(const LexedFile&, const std::string&,
                              std::vector<Finding>*);
void ruleRaiiTemporary(const LexedFile&, const std::string&,
                       std::vector<Finding>*);
void ruleJournalBatchPairing(const LexedFile&, const std::string&,
                             std::vector<Finding>*);
void ruleCrashUnwindSwallow(const LexedFile&, const std::string&,
                            std::vector<Finding>*);
void ruleBannedApi(const LexedFile&, const std::string&,
                   std::vector<Finding>*);

}  // namespace detail

}  // namespace tcio::lint
