#include "lint/lint.h"

#include <algorithm>
#include <fstream>
#include <map>
#include <set>
#include <sstream>

namespace tcio::lint {

namespace {

const std::vector<std::pair<std::string, detail::RuleFn>>& ruleTable() {
  static const std::vector<std::pair<std::string, detail::RuleFn>> kRules = {
      {"rma-source-lifetime", detail::ruleRmaSourceLifetime},
      {"collective-divergence", detail::ruleCollectiveDivergence},
      {"raii-temporary", detail::ruleRaiiTemporary},
      {"journal-batch-pairing", detail::ruleJournalBatchPairing},
      {"crash-unwind-swallow", detail::ruleCrashUnwindSwallow},
      {"banned-api", detail::ruleBannedApi},
  };
  return kRules;
}

bool knownRule(const std::string& name) {
  const auto& table = ruleTable();
  return std::any_of(table.begin(), table.end(),
                     [&](const auto& r) { return r.first == name; });
}

std::string trim(const std::string& s) {
  std::size_t b = s.find_first_not_of(" \t");
  if (b == std::string::npos) return std::string();
  std::size_t e = s.find_last_not_of(" \t");
  return s.substr(b, e - b + 1);
}

/// Suppressions keyed by the source line they cover. A `NOLINT-TCIO`
/// comment covers its own line and the next one, so both trailing and
/// line-above placements work.
struct Suppressions {
  std::map<int, std::set<std::string>> by_line;
  std::vector<Finding> errors;  // malformed suppressions are findings
};

Suppressions parseSuppressions(const std::vector<Comment>& comments) {
  Suppressions out;
  for (const Comment& c : comments) {
    // Only a comment that *begins* with the marker is a suppression; prose
    // that mentions NOLINT-TCIO mid-sentence (docs, this file) is not.
    const std::string head = trim(c.text);
    if (head.rfind("NOLINT-TCIO", 0) != 0) continue;
    std::size_t at = c.text.find("NOLINT-TCIO");
    const auto bad = [&](const std::string& why) {
      out.errors.push_back(
          {std::string(), c.line, "lint-suppression",
           "malformed NOLINT-TCIO suppression: " + why +
               " (expected `NOLINT-TCIO(rule): reason`)"});
    };
    at += std::string("NOLINT-TCIO").size();
    if (at >= c.text.size() || c.text[at] != '(') {
      bad("missing (rule) list");
      continue;
    }
    const std::size_t close = c.text.find(')', at);
    if (close == std::string::npos) {
      bad("unterminated (rule) list");
      continue;
    }
    // Comma-separated rule names.
    std::vector<std::string> rules;
    std::stringstream list(c.text.substr(at + 1, close - at - 1));
    std::string name;
    bool names_ok = true;
    while (std::getline(list, name, ',')) {
      name = trim(name);
      if (name.empty() || !knownRule(name)) {
        bad("unknown rule '" + name + "'");
        names_ok = false;
        break;
      }
      rules.push_back(name);
    }
    if (!names_ok) continue;
    if (rules.empty()) {
      bad("empty rule list");
      continue;
    }
    // The reason is mandatory: a waiver must say why it is sound.
    std::size_t reason_at = close + 1;
    if (reason_at >= c.text.size() || c.text[reason_at] != ':' ||
        trim(c.text.substr(reason_at + 1)).empty()) {
      bad("missing reason after the rule list");
      continue;
    }
    for (const std::string& r : rules) {
      out.by_line[c.line].insert(r);
      out.by_line[c.line + 1].insert(r);
    }
  }
  return out;
}

std::vector<Finding> lintLexed(const std::string& path, const LexedFile& lf) {
  std::vector<Finding> raw;
  for (const auto& [name, fn] : ruleTable()) {
    (void)name;
    fn(lf, path, &raw);
  }
  const Suppressions sup = parseSuppressions(lf.comments);
  std::vector<Finding> out;
  for (Finding& f : raw) {
    const auto it = sup.by_line.find(f.line);
    if (it != sup.by_line.end() && it->second.count(f.rule) > 0) continue;
    f.path = path;
    out.push_back(std::move(f));
  }
  for (Finding f : sup.errors) {
    f.path = path;
    out.push_back(std::move(f));
  }
  std::sort(out.begin(), out.end(), [](const Finding& a, const Finding& b) {
    return std::tie(a.line, a.rule) < std::tie(b.line, b.rule);
  });
  return out;
}

}  // namespace

std::string Finding::str() const {
  return path + ":" + std::to_string(line) + ": " + rule + ": " + message;
}

std::vector<std::string> ruleNames() {
  std::vector<std::string> out;
  for (const auto& [name, fn] : ruleTable()) {
    (void)fn;
    out.push_back(name);
  }
  return out;
}

std::vector<Finding> lintText(const std::string& path,
                              std::string_view content) {
  return lintLexed(path, lex(content));
}

std::vector<Finding> lintFile(const std::string& fs_path,
                              const std::string& display_path) {
  std::ifstream in(fs_path, std::ios::binary);
  if (!in) {
    return {{display_path, 0, "lint-io", "cannot read file"}};
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return lintText(display_path, buf.str());
}

ExpectResult checkExpectations(const std::string& path,
                               std::string_view content) {
  const LexedFile lf = lex(content);
  // (line, rule) expectations from LINT-EXPECT[rule] annotations.
  std::multiset<std::pair<int, std::string>> expected;
  for (const Comment& c : lf.comments) {
    std::size_t at = 0;
    while ((at = c.text.find("LINT-EXPECT[", at)) != std::string::npos) {
      at += std::string("LINT-EXPECT[").size();
      const std::size_t close = c.text.find(']', at);
      if (close == std::string::npos) break;
      expected.insert({c.line, trim(c.text.substr(at, close - at))});
      at = close + 1;
    }
  }
  ExpectResult res;
  std::multiset<std::pair<int, std::string>> got;
  for (const Finding& f : lintLexed(path, lf)) {
    got.insert({f.line, f.rule});
    if (expected.count({f.line, f.rule}) == 0) {
      res.ok = false;
      res.problems.push_back("unexpected finding: " + f.str());
    }
  }
  for (const auto& [line, rule] : expected) {
    if (got.count({line, rule}) < expected.count({line, rule})) {
      res.ok = false;
      res.problems.push_back("missing expected finding: " + path + ":" +
                             std::to_string(line) + ": " + rule);
      break;  // one message per (line, rule) is enough
    }
  }
  return res;
}

}  // namespace tcio::lint
