// Statement- and token-local rules: raii-temporary, crash-unwind-swallow,
// banned-api. These need no scope model — only the token stream and, for
// banned-api, the file's repo-relative path.
#include <array>
#include <string_view>

#include "lint/lint.h"
#include "lint/token_cursor.h"

namespace tcio::lint::detail {

namespace {

bool pathUnder(const std::string& path, std::string_view prefix) {
  return path.rfind(prefix, 0) == 0;
}

/// RAII types whose whole point is their destructor running *later*. An
/// unbound temporary of one of these destructs at the end of the full
/// expression — the tag/lock covers nothing (the PR 8 satellite's
/// `check::ScopedUserTag{...};` hazard).
constexpr std::array<std::string_view, 6> kRaiiTypes = {
    "ScopedUserTag", "lock_guard", "unique_lock",
    "scoped_lock",   "shared_lock", "ScopedTimeline",
};

bool isRaiiType(const std::string& name) {
  for (std::string_view t : kRaiiTypes) {
    if (name == t) return true;
  }
  return false;
}

/// Skips a balanced `<...>` template-argument span starting at `i` (which
/// points at `<`). Returns the index one past the closing `>`, or `i` when
/// the span does not look like template arguments (comparison operator).
std::size_t skipAngles(const std::vector<Token>& t, std::size_t i) {
  int depth = 0;
  for (std::size_t k = i; k < t.size(); ++k) {
    if (is(t[k], "<")) ++depth;
    if (is(t[k], ">") && --depth == 0) return k + 1;
    if (is(t[k], ";") || is(t[k], "{")) break;  // not template args
  }
  return i;
}

}  // namespace

void ruleRaiiTemporary(const LexedFile& lf, const std::string& path,
                       std::vector<Finding>* out) {
  (void)path;
  const std::vector<Token>& t = lf.tokens;
  for (std::size_t i = 0; i < t.size(); ++i) {
    // Statement starts only: an expression-statement beginning with a RAII
    // type name is a construction, not a call.
    if (i != 0 && !is(t[i - 1], ";") && !is(t[i - 1], "{") &&
        !is(t[i - 1], "}")) {
      continue;
    }
    // Qualified-id: [::] ident (:: ident)*.
    std::size_t j = i;
    if (is(t[j], "::")) ++j;
    if (j >= t.size() || t[j].kind != Tok::kIdent) continue;
    std::string last = t[j].text;
    ++j;
    while (j + 1 < t.size() && is(t[j], "::") &&
           t[j + 1].kind == Tok::kIdent) {
      last = t[j + 1].text;
      j += 2;
    }
    if (!isRaiiType(last) || j >= t.size()) continue;
    const int line = t[j - 1].line;
    if (is(t[j], "<")) j = skipAngles(t, j);
    if (j >= t.size()) continue;
    if (t[j].kind == Tok::kIdent) continue;  // bound: `ScopedUserTag tag(...)`
    if (!is(t[j], "(") && !is(t[j], "{")) continue;
    const std::size_t close = matchDelim(t, j);
    if (close + 1 < t.size() && is(t[close + 1], ";")) {
      out->push_back({std::string(), line, "raii-temporary",
                      "unbound " + last +
                          " temporary destructs immediately at the end of "
                          "this statement; bind it to a named local"});
    }
  }
}

void ruleCrashUnwindSwallow(const LexedFile& lf, const std::string& path,
                            std::vector<Finding>* out) {
  (void)path;
  const std::vector<Token>& t = lf.tokens;
  for (std::size_t i = 0; i + 1 < t.size(); ++i) {
    if (!isIdent(t[i], "catch") || !is(t[i + 1], "(")) continue;
    // Walk the whole catch chain of this try so an earlier
    // `catch (const RankCrashedError&)` clause legitimizes a later broad
    // clause — the crash is already routed before the broad arm runs.
    bool crash_handled_earlier = false;
    std::size_t k = i;
    while (k + 1 < t.size() && isIdent(t[k], "catch") && is(t[k + 1], "(")) {
      const std::size_t popen = k + 1;
      const std::size_t pclose = matchDelim(t, popen);
      bool broad = false;
      bool crash_typed = false;
      for (std::size_t p = popen + 1; p < pclose && p < t.size(); ++p) {
        if (is(t[p], "...") || isIdent(t[p], "exception") ||
            isIdent(t[p], "runtime_error") || isIdent(t[p], "Error")) {
          broad = true;
        }
        if (isIdent(t[p], "RankCrashedError")) crash_typed = true;
      }
      std::size_t bopen = pclose + 1;
      if (bopen >= t.size() || !is(t[bopen], "{")) break;
      const std::size_t bclose = matchDelim(t, bopen);
      if (crash_typed) {
        crash_handled_earlier = true;  // typed arm precedes any broad arm
      } else if (broad && !crash_handled_earlier) {
        // The body must visibly route the exception onward: a rethrow, a
        // current_exception/rethrow_exception capture, or the collective
        // `CapturedError::capture` idiom (which preserves kRankCrashed for
        // agreement).
        bool routed = false;
        for (std::size_t p = bopen + 1; p < bclose && p < t.size(); ++p) {
          if (isIdent(t[p], "throw") || isIdent(t[p], "capture") ||
              isIdent(t[p], "current_exception") ||
              isIdent(t[p], "rethrow_exception")) {
            routed = true;
            break;
          }
        }
        if (!routed) {
          out->push_back(
              {std::string(), t[k].line, "crash-unwind-swallow",
               "broad catch can swallow RankCrashedError without rethrow "
               "or capture; a crashed rank must keep unwinding (rethrow, "
               "capture into CapturedError, or catch RankCrashedError "
               "first)"});
        }
      }
      // Advance to the token after this clause's body; stop unless the
      // next token begins another catch of the same try.
      k = bclose + 1;
      if (k >= t.size() || !isIdent(t[k], "catch")) break;
    }
    // Skip past the chain we just processed (the outer loop would
    // otherwise re-enter at each sibling clause).
    i = k > i ? k - 1 : i;
  }
}

void ruleBannedApi(const LexedFile& lf, const std::string& path,
                   std::vector<Finding>* out) {
  const std::vector<Token>& t = lf.tokens;
  const bool in_sim = pathUnder(path, "src/sim/");
  const bool in_mpi = pathUnder(path, "src/mpi/");
  const auto flag = [&](int line, const std::string& msg) {
    out->push_back({std::string(), line, "banned-api", msg});
  };
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != Tok::kIdent) continue;
    const std::string& s = t[i].text;
    // Wall-clock time is banned everywhere: the simulation is virtual-time
    // and a single wall-clock read silently breaks replay determinism.
    if (s == "system_clock" || s == "steady_clock" ||
        s == "high_resolution_clock" || s == "gettimeofday" ||
        s == "clock_gettime" || s == "timespec_get") {
      flag(t[i].line, "wall-clock time source '" + s +
                          "' — use the simulated clock (sim::Engine::now)");
      continue;
    }
    // Raw MPI: everything outside src/mpi goes through the simulated
    // tcio::mpi layer, or faults/crashes/liveness cannot be injected.
    if (!in_mpi && s.size() > 4 && s.rfind("MPI_", 0) == 0) {
      flag(t[i].line,
           "raw MPI call '" + s + "' outside src/mpi — use tcio::mpi");
      continue;
    }
    // Raw threading/sleep primitives: src/sim owns the one real-thread
    // handoff; anywhere else they bypass virtual time and the engine's
    // one-active-rank discipline.
    if (in_sim) continue;
    const bool std_qualified =
        i >= 2 && is(t[i - 1], "::") && isIdent(t[i - 2], "std");
    if (std_qualified &&
        (s == "mutex" || s == "recursive_mutex" || s == "shared_mutex" ||
         s == "timed_mutex" || s == "condition_variable" || s == "thread" ||
         s == "jthread")) {
      flag(t[i].line, "raw std::" + s +
                          " outside src/sim — rank scheduling and blocking "
                          "belong to the engine");
      continue;
    }
    if (s == "sleep_for" || s == "sleep_until" || s == "usleep" ||
        s == "nanosleep" ||
        (s == "sleep" && i + 1 < t.size() && is(t[i + 1], "("))) {
      flag(t[i].line, "real sleep '" + s +
                          "' outside src/sim — advance simulated time "
                          "instead (sim::Engine::advance)");
    }
  }
}

}  // namespace tcio::lint::detail
