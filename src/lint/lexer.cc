#include "lint/lexer.h"

#include <cctype>

namespace tcio::lint {

namespace {

bool identStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool identChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

// Multi-character operators that must stay one token so rules can match
// them (`->`, `::`, `...`). Longest match first.
const char* kOperators[] = {
    "...", "->*", "<<=", ">>=", "<=>", "::", "->", "++", "--", "<<", ">>",
    "<=", ">=", "==", "!=", "&&", "||", "+=", "-=", "*=", "/=", "%=",
    "&=", "|=", "^=",
};

}  // namespace

LexedFile lex(std::string_view src) {
  LexedFile out;
  std::size_t i = 0;
  int line = 1;
  const std::size_t n = src.size();

  const auto peek = [&](std::size_t ahead) -> char {
    return i + ahead < n ? src[i + ahead] : '\0';
  };

  while (i < n) {
    const char c = src[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // Line comment.
    if (c == '/' && peek(1) == '/') {
      const int at = line;
      i += 2;
      std::size_t begin = i;
      while (i < n && src[i] != '\n') ++i;
      out.comments.push_back({at, std::string(src.substr(begin, i - begin))});
      continue;
    }
    // Block comment (may span lines; line counter must keep up).
    if (c == '/' && peek(1) == '*') {
      const int at = line;
      i += 2;
      std::size_t begin = i;
      while (i < n && !(src[i] == '*' && peek(1) == '/')) {
        if (src[i] == '\n') ++line;
        ++i;
      }
      out.comments.push_back({at, std::string(src.substr(begin, i - begin))});
      if (i < n) i += 2;  // closing */
      continue;
    }
    // Preprocessor directive: skip the whole logical line (continuations
    // included). Rules see source-level uses, not macro definitions.
    if (c == '#') {
      while (i < n && src[i] != '\n') {
        if (src[i] == '\\' && peek(1) == '\n') {
          ++line;
          i += 2;
          continue;
        }
        ++i;
      }
      continue;
    }
    // Raw string literal R"delim( ... )delim".
    if (c == 'R' && peek(1) == '"') {
      std::size_t d = i + 2;
      std::string delim;
      while (d < n && src[d] != '(' && src[d] != '\n') delim += src[d++];
      const std::string closer = ")" + delim + "\"";
      std::size_t end = src.find(closer, d);
      out.tokens.push_back({Tok::kString, "\"\"", line});
      if (end == std::string_view::npos) {
        i = n;
      } else {
        for (std::size_t k = i; k < end; ++k) {
          if (src[k] == '\n') ++line;
        }
        i = end + closer.size();
      }
      continue;
    }
    // String / char literal. Contents are collapsed so nothing inside a
    // literal can masquerade as a token.
    if (c == '"' || c == '\'') {
      const char quote = c;
      ++i;
      while (i < n && src[i] != quote) {
        if (src[i] == '\\' && i + 1 < n) ++i;
        if (src[i] == '\n') ++line;  // unterminated; keep the count honest
        ++i;
      }
      if (i < n) ++i;  // closing quote
      out.tokens.push_back(
          {quote == '"' ? Tok::kString : Tok::kChar,
           quote == '"' ? std::string("\"\"") : std::string("''"), line});
      continue;
    }
    if (identStart(c)) {
      std::size_t begin = i;
      while (i < n && identChar(src[i])) ++i;
      out.tokens.push_back(
          {Tok::kIdent, std::string(src.substr(begin, i - begin)), line});
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::size_t begin = i;
      // Good enough for a lint: digits, hex, separators, suffixes, and the
      // exponent sign (1.5e-3).
      while (i < n && (identChar(src[i]) || src[i] == '.' || src[i] == '\'' ||
                       ((src[i] == '+' || src[i] == '-') && i > begin &&
                        (src[i - 1] == 'e' || src[i - 1] == 'E' ||
                         src[i - 1] == 'p' || src[i - 1] == 'P')))) {
        ++i;
      }
      out.tokens.push_back(
          {Tok::kNumber, std::string(src.substr(begin, i - begin)), line});
      continue;
    }
    // Punctuation: longest operator match, else a single character.
    bool matched = false;
    for (const char* op : kOperators) {
      const std::string_view sv(op);
      if (src.substr(i, sv.size()) == sv) {
        out.tokens.push_back({Tok::kPunct, std::string(sv), line});
        i += sv.size();
        matched = true;
        break;
      }
    }
    if (!matched) {
      out.tokens.push_back({Tok::kPunct, std::string(1, c), line});
      ++i;
    }
  }
  return out;
}

}  // namespace tcio::lint
