// Flow rules that need a scope/call model: rma-source-lifetime,
// collective-divergence, journal-batch-pairing.
#include <algorithm>
#include <array>
#include <map>
#include <set>
#include <string_view>

#include "lint/lint.h"
#include "lint/token_cursor.h"

namespace tcio::lint::detail {

namespace {

bool isKeyword(const std::string& s) {
  static const std::set<std::string_view> kKw = {
      "return", "throw",  "delete", "new",      "if",     "while",
      "for",    "switch", "case",   "break",    "continue", "goto",
      "else",   "do",     "using",  "typedef",  "sizeof", "static_assert",
      "public", "private", "protected", "template", "typename", "operator",
      "co_return", "co_await", "co_yield", "default", "try", "catch",
  };
  return kKw.count(s) > 0;
}

/// Skips a balanced `<...>` span starting at `<`; returns the index one
/// past `>`, or `i` unchanged when it does not close before `;`/`{`.
std::size_t skipAngles(const std::vector<Token>& t, std::size_t i) {
  int depth = 0;
  for (std::size_t k = i; k < t.size(); ++k) {
    if (is(t[k], "<")) ++depth;
    if (is(t[k], ">") && --depth == 0) return k + 1;
    if (is(t[k], ">>") && (depth -= 2) <= 0) return k + 1;
    if (is(t[k], ";") || is(t[k], "{")) break;
  }
  return i;
}

/// Tries to parse a local-variable declaration at statement-start `i`:
/// `[const|static] Type[::Type]*[<...>][*&]* NAME (;|=|(|{)`. On success
/// sets *name/*name_idx (and *is_ref for reference bindings) and returns
/// true.
bool parseDecl(const std::vector<Token>& t, std::size_t i, std::string* name,
               std::size_t* name_idx, bool* is_ref) {
  *is_ref = false;
  std::size_t j = i;
  while (j < t.size() && t[j].kind == Tok::kIdent &&
         (t[j].text == "const" || t[j].text == "static" ||
          t[j].text == "constexpr")) {
    ++j;
  }
  if (j >= t.size() || t[j].kind != Tok::kIdent || isKeyword(t[j].text)) {
    return false;
  }
  ++j;  // first type token
  while (j + 1 < t.size() && is(t[j], "::") && t[j + 1].kind == Tok::kIdent) {
    j += 2;
  }
  if (j < t.size() && is(t[j], "<")) j = skipAngles(t, j);
  while (j < t.size() &&
         (is(t[j], "*") || is(t[j], "&") || is(t[j], "&&") ||
          isIdent(t[j], "const"))) {
    if (is(t[j], "&") || is(t[j], "&&")) *is_ref = true;
    ++j;
  }
  if (j + 1 >= t.size() || t[j].kind != Tok::kIdent || isKeyword(t[j].text)) {
    return false;
  }
  const std::string& delim = t[j + 1].text;
  if (delim != ";" && delim != "=" && delim != "(" && delim != "{" &&
      delim != "[") {
    return false;
  }
  *name = t[j].text;
  *name_idx = j;
  return true;
}

// ---------------------------------------------------------------------------
// rma-source-lifetime
// ---------------------------------------------------------------------------

/// Sinks whose source buffer must stay alive until the epoch closes: the
/// transfer is asynchronous, so the call returning proves nothing.
bool isAsyncSink(const std::string& callee) {
  return callee == "put" || callee == "putIndexed" || callee == "isend";
}

/// Tokens that close the epoch the sink queued into: passive-target unlock,
/// request completion, or a fence.
bool isEpochClose(const std::string& s) {
  return s == "unlock" || s == "waitAll" || s == "wait" || s == "fence";
}

/// Calls that copy an element into a container (the `blocks.push_back({...,
/// scratch.data(), ...})` idiom): the container inherits the source's
/// lifetime obligation.
bool isContainerInsert(const std::string& callee) {
  return callee == "push_back" || callee == "emplace_back" ||
         callee == "insert" || callee == "assign" || callee == "push";
}

/// Calls that visibly end a receiver's interest in what was handed to it
/// (the teardown-shape release: `agg.reset()` before the comm dies).
bool isReceiverRelease(const std::string& callee) {
  return callee == "reset" || callee == "clear" || callee == "close" ||
         callee == "detach" || callee == "release";
}

/// Method names that suggest the receiver *retains* the pointer beyond the
/// call (the PR 8 teardown shape needs retention; synchronous verbs like
/// send/writeAt/allreduce consume their arguments before returning and are
/// not lifetime hazards).
bool isRetainingCallee(const std::string& callee) {
  static constexpr std::array<std::string_view, 10> kPrefixes = {
      "set",    "attach", "bind",  "adopt",   "install",
      "observe", "register", "connect", "retain", "track",
  };
  for (std::string_view p : kPrefixes) {
    if (callee.rfind(p, 0) == 0) return true;
  }
  return false;
}

struct Local {
  std::string name;
  int depth = 0;        // scope depth at declaration (function body = 1)
  int line = 0;
};

/// A pending lifetime obligation: the address of `local` escaped at
/// `token_idx` and something must happen before the local's scope closes.
struct Obligation {
  std::string local;
  int local_depth = 0;
  std::size_t token_idx = 0;  // index of the escaping call's `(`
  int line = 0;
  // Either an epoch close (async sink) or a release on `receiver`
  // (longer-lived receiver).
  bool wants_epoch_close = false;
  std::string receiver;
};

void scanRmaInFunction(const std::vector<Token>& t, const FnBody& fn,
                       std::vector<Finding>* out) {
  // Scope stack of locals; the function body `{` pushes the first entry.
  std::vector<std::vector<Local>> scopes;
  std::vector<Obligation> pending;
  // Container locals -> source locals whose address they hold.
  std::map<std::string, std::set<std::string>> taint;

  const auto findLocal = [&](const std::string& name) -> const Local* {
    for (auto it = scopes.rbegin(); it != scopes.rend(); ++it) {
      for (const Local& l : *it) {
        if (l.name == name) return &l;
      }
    }
    return nullptr;
  };

  // Escaped-source extraction inside one call's argument span: `&x` (x a
  // tracked local, address-of position) or `x.data()`.
  const auto escapesIn = [&](std::size_t open, std::size_t close) {
    std::vector<const Local*> found;
    for (std::size_t p = open + 1; p < close; ++p) {
      if (is(t[p], "&") && p + 1 < close && t[p + 1].kind == Tok::kIdent &&
          (is(t[p - 1], "(") || is(t[p - 1], ",") || is(t[p - 1], "{"))) {
        if (const Local* l = findLocal(t[p + 1].text)) found.push_back(l);
      }
      if (t[p].kind == Tok::kIdent && p + 3 < close && is(t[p + 1], ".") &&
          isIdent(t[p + 2], "data") && is(t[p + 3], "(")) {
        if (const Local* l = findLocal(t[p].text)) found.push_back(l);
      }
    }
    return found;
  };

  const auto resolveScopeClose = [&](int dying_depth, std::size_t at) {
    // Obligations on locals of the dying scope are now due.
    for (auto it = pending.begin(); it != pending.end();) {
      if (it->local_depth != dying_depth) {
        ++it;
        continue;
      }
      bool satisfied = false;
      for (std::size_t p = it->token_idx; p < at; ++p) {
        if (t[p].kind != Tok::kIdent) continue;
        if (it->wants_epoch_close) {
          if (isEpochClose(t[p].text) && p + 1 < at && is(t[p + 1], "(")) {
            satisfied = true;
            break;
          }
        } else if (isReceiverRelease(t[p].text) && p >= 2 &&
                   (is(t[p - 1], ".") || is(t[p - 1], "->")) &&
                   t[p - 2].text == it->receiver) {
          satisfied = true;
          break;
        }
      }
      if (!satisfied) {
        if (it->wants_epoch_close) {
          out->push_back(
              {std::string(), it->line, "rma-source-lifetime",
               "'" + it->local +
                   "' is scope-local but feeds an asynchronous transfer; no "
                   "epoch close (unlock/waitAll/fence) before its scope ends "
                   "— the transfer may read freed memory"});
        } else {
          out->push_back(
              {std::string(), it->line, "rma-source-lifetime",
               "address of block-local '" + it->local +
                   "' escapes into longer-lived '" + it->receiver +
                   "', which outlives it — release or reset '" +
                   it->receiver + "' before the scope ends"});
        }
      }
      it = pending.erase(it);
    }
  };

  int depth = 0;  // 0 until the body `{` pushes to 1
  for (std::size_t i = fn.open; i <= fn.close && i < t.size(); ++i) {
    if (is(t[i], "{")) {
      ++depth;
      scopes.emplace_back();
      continue;
    }
    if (is(t[i], "}")) {
      if (scopes.empty()) break;  // unbalanced input; degrade quietly
      resolveScopeClose(depth, i);
      // Drop taint entries whose container or sources die with the scope.
      for (const Local& l : scopes.back()) {
        taint.erase(l.name);
        for (auto& [c, srcs] : taint) srcs.erase(l.name);
      }
      scopes.pop_back();
      --depth;
      continue;
    }
    // Declarations at statement starts.
    const bool stmt_start = i == fn.open + 1 || is(t[i - 1], ";") ||
                            is(t[i - 1], "{") || is(t[i - 1], "}");
    if (stmt_start && t[i].kind == Tok::kIdent && !scopes.empty()) {
      std::string name;
      std::size_t name_idx = 0;
      bool is_ref = false;
      if (parseDecl(t, i, &name, &name_idx, &is_ref) && !is_ref) {
        // Reference bindings are not tracked: the referenced storage does
        // not die with the reference's scope.
        scopes.back().push_back({name, depth, t[name_idx].line});
      }
    }
    // Call expressions: IDENT '(' with optional receiver IDENT '.'/'->'.
    if (t[i].kind == Tok::kIdent && i + 1 <= fn.close && is(t[i + 1], "(") &&
        !isKeyword(t[i].text)) {
      const std::string& callee = t[i].text;
      std::string receiver;
      if (i >= 2 && (is(t[i - 1], ".") || is(t[i - 1], "->")) &&
          t[i - 2].kind == Tok::kIdent) {
        receiver = t[i - 2].text;
      }
      const std::size_t open = i + 1;
      const std::size_t close = std::min(matchDelim(t, open), fn.close);
      const std::vector<const Local*> escaped = escapesIn(open, close);

      if (isAsyncSink(callee) && !receiver.empty()) {
        // Receiver required: the hazardous sinks are method calls
        // (window->put, comm.isend); a bare `put(...)` is a local helper.
        for (const Local* l : escaped) {
          pending.push_back({l->name, l->depth, close, t[i].line,
                             /*wants_epoch_close=*/true, std::string()});
        }
        // Tainted containers passed whole (`putIndexed(owner, blocks)`).
        for (std::size_t p = open + 1; p < close; ++p) {
          if (t[p].kind != Tok::kIdent) continue;
          const auto it = taint.find(t[p].text);
          if (it == taint.end()) continue;
          for (const std::string& src : it->second) {
            if (const Local* l = findLocal(src)) {
              pending.push_back({l->name, l->depth, close, t[i].line,
                                 /*wants_epoch_close=*/true, std::string()});
            }
          }
        }
      } else if (isContainerInsert(callee) && !receiver.empty() &&
                 findLocal(receiver) != nullptr) {
        for (const Local* l : escaped) taint[receiver].insert(l->name);
      } else if (!receiver.empty() && isRetainingCallee(callee)) {
        // The teardown shape: a strictly longer-lived local *retains* the
        // address of a block-local (the PR 8 `~File` member-order bug,
        // translated to scopes: declaration order IS destruction order).
        const Local* recv = findLocal(receiver);
        if (recv != nullptr) {
          for (const Local* l : escaped) {
            if (recv->depth < l->depth) {
              pending.push_back({l->name, l->depth, close, t[i].line,
                                 /*wants_epoch_close=*/false, receiver});
            }
          }
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// collective-divergence
// ---------------------------------------------------------------------------

/// Collective operations every live rank must reach in the same order.
bool isCollective(const std::string& s) {
  static const std::set<std::string_view> kColl = {
      "barrier",        "allreduce",       "bcast",
      "allgather",      "allgatherv",      "alltoall",
      "alltoallv",      "agreeOnError",    "agreeWithLiveness",
      "exchangeDigests", "shrink",         "fence",
  };
  return kColl.count(s) > 0;
}

/// Does this condition span compare *rank identity*? Matches the project's
/// naming: `rank()`, `myRank()`, rank-identity members, and leader tests.
bool isRankConditional(const std::vector<Token>& t, std::size_t open,
                       std::size_t close) {
  for (std::size_t p = open + 1; p < close; ++p) {
    if (t[p].kind != Tok::kIdent) continue;
    const std::string& s = t[p].text;
    const bool call = p + 1 < close && is(t[p + 1], "(");
    if (call && (s == "rank" || s == "myRank" || s == "isLeader" ||
                 s == "origRank")) {
      return true;
    }
    if (s == "rank_" || s == "orig_rank_" || s == "my_rank" || s == "me_" ||
        s == "world_rank" || s == "is_leader") {
      return true;
    }
  }
  return false;
}

/// Collects collective callee names (with counts) in [begin, end).
std::map<std::string, int> collectivesIn(const std::vector<Token>& t,
                                         std::size_t begin, std::size_t end,
                                         std::map<std::string, std::size_t>*
                                             first_at) {
  std::map<std::string, int> out;
  for (std::size_t p = begin; p < end && p < t.size(); ++p) {
    if (t[p].kind == Tok::kIdent && p + 1 < end && is(t[p + 1], "(") &&
        isCollective(t[p].text)) {
      if (out[t[p].text]++ == 0) (*first_at)[t[p].text] = p;
    }
  }
  return out;
}

/// Span of the statement starting at `i`: a balanced brace block, or a
/// single statement up to its `;` (nested parens/braces respected). For
/// `if` the span covers the full if/else cascade.
std::size_t statementEnd(const std::vector<Token>& t, std::size_t i) {
  if (i >= t.size()) return i;
  if (is(t[i], "{")) return matchDelim(t, i) + 1;
  if (isIdent(t[i], "if")) {
    std::size_t j = i + 1;
    if (j < t.size() && is(t[j], "(")) j = matchDelim(t, j) + 1;
    j = statementEnd(t, j);
    if (j < t.size() && isIdent(t[j], "else")) j = statementEnd(t, j + 1);
    return j;
  }
  if (isIdent(t[i], "for") || isIdent(t[i], "while") ||
      isIdent(t[i], "switch")) {
    std::size_t j = i + 1;
    if (j < t.size() && is(t[j], "(")) j = matchDelim(t, j) + 1;
    return statementEnd(t, j);
  }
  if (isIdent(t[i], "do")) {
    std::size_t j = statementEnd(t, i + 1);        // body
    while (j < t.size() && !is(t[j], ";")) ++j;    // while(...)
    return j + 1;
  }
  int pd = 0, bd = 0;
  for (std::size_t j = i; j < t.size(); ++j) {
    if (is(t[j], "(") || is(t[j], "[")) ++pd;
    if (is(t[j], ")") || is(t[j], "]")) --pd;
    if (is(t[j], "{")) ++bd;
    if (is(t[j], "}")) {
      if (bd == 0) return j;  // ran into the enclosing scope's close
      --bd;
    }
    if (is(t[j], ";") && pd == 0 && bd == 0) return j + 1;
  }
  return t.size();
}

}  // namespace

void ruleRmaSourceLifetime(const LexedFile& lf, const std::string& path,
                           std::vector<Finding>* out) {
  (void)path;
  for (const FnBody& fn : findFunctionBodies(lf.tokens)) {
    if (fn.lambda) continue;  // scanned as scopes of their enclosing body
    scanRmaInFunction(lf.tokens, fn, out);
  }
}

void ruleCollectiveDivergence(const LexedFile& lf, const std::string& path,
                              std::vector<Finding>* out) {
  (void)path;
  const std::vector<Token>& t = lf.tokens;
  for (std::size_t i = 0; i + 1 < t.size(); ++i) {
    if (!isIdent(t[i], "if") || !is(t[i + 1], "(")) continue;
    // `else if` is handled as part of its parent cascade.
    if (i > 0 && isIdent(t[i - 1], "else")) continue;
    const std::size_t copen = i + 1;
    const std::size_t cclose = matchDelim(t, copen);
    if (!isRankConditional(t, copen, cclose)) continue;
    const std::size_t then_begin = cclose + 1;
    const std::size_t then_end = statementEnd(t, then_begin);
    std::size_t else_begin = then_end;
    std::size_t else_end = then_end;
    if (then_end < t.size() && isIdent(t[then_end], "else")) {
      else_begin = then_end + 1;
      else_end = statementEnd(t, else_begin);
    }
    std::map<std::string, std::size_t> then_at, else_at;
    const std::map<std::string, int> then_c =
        collectivesIn(t, then_begin, then_end, &then_at);
    const std::map<std::string, int> else_c =
        collectivesIn(t, else_begin, else_end, &else_at);
    const auto report = [&](const std::string& name, std::size_t at) {
      out->push_back(
          {std::string(), t[at].line, "collective-divergence",
           "collective '" + name +
               "' is called on a rank-dependent path without a matching "
               "call on the other path — non-participating ranks hang or "
               "desynchronize the schedule"});
    };
    for (const auto& [name, count] : then_c) {
      const auto it = else_c.find(name);
      if (it == else_c.end() || it->second < count) {
        report(name, then_at[name]);
      }
    }
    for (const auto& [name, count] : else_c) {
      const auto it = then_c.find(name);
      if (it == then_c.end() || it->second < count) {
        report(name, else_at[name]);
      }
    }
  }
}

void ruleJournalBatchPairing(const LexedFile& lf, const std::string& path,
                             std::vector<Finding>* out) {
  (void)path;
  const std::vector<Token>& t = lf.tokens;
  const std::vector<FnBody> fns = findFunctionBodies(t);
  for (const FnBody& fn : fns) {
    // Lambda bodies inside this function are separate exit domains: a
    // `return` inside one does not leave *this* function.
    std::vector<FnBody> nested;
    for (const FnBody& g : fns) {
      if (g.open > fn.open && g.close < fn.close) nested.push_back(g);
    }
    const auto inNested = [&](std::size_t p) {
      return std::any_of(nested.begin(), nested.end(), [&](const FnBody& g) {
        return p > g.open && p < g.close;
      });
    };
    std::vector<std::pair<std::size_t, int>> open_batches;  // idx, line
    for (std::size_t p = fn.open + 1; p < fn.close && p < t.size(); ++p) {
      if (inNested(p) || t[p].kind != Tok::kIdent) continue;
      if (t[p].text == "batchBegin") {
        open_batches.emplace_back(p, t[p].line);
      } else if (t[p].text == "batchEnd") {
        if (!open_batches.empty()) open_batches.pop_back();
      } else if ((t[p].text == "return" || t[p].text == "throw") &&
                 !open_batches.empty()) {
        out->push_back(
            {std::string(), t[p].line, "journal-batch-pairing",
             std::string(t[p].text == "return" ? "return" : "throw") +
                 " leaves the function with a journal batch still open "
                 "(batchBegin at line " +
                 std::to_string(open_batches.back().second) +
                 ") — buffered frames would never reach the device"});
      }
    }
    for (const auto& [idx, line] : open_batches) {
      (void)idx;
      out->push_back({std::string(), line, "journal-batch-pairing",
                      "batchBegin without a batchEnd on this path — "
                      "buffered journal frames are lost at scope exit"});
    }
  }
}

}  // namespace tcio::lint::detail
