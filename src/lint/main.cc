// tcio-lint command-line driver.
//
//   tcio-lint [--root DIR] [--expect] [--list-rules] PATH...
//
// PATHs are files or directories (directories recurse over *.cc / *.h).
// Findings print machine-readably, one per line: `file:line: rule: message`
// with file repo-relative to --root. Exit status: 0 clean, 1 findings,
// 2 usage/IO error.
//
// --expect flips fixture mode: every file must produce exactly the findings
// its `LINT-EXPECT[rule]` annotations declare (tests/lint/fixtures).
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "lint/lint.h"

namespace fs = std::filesystem;

namespace {

bool lintable(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cc" || ext == ".h" || ext == ".cpp" || ext == ".hpp";
}

std::string displayPath(const fs::path& p, const fs::path& root) {
  std::error_code ec;
  const fs::path rel = fs::relative(p, root, ec);
  const fs::path chosen =
      (ec || rel.empty() || *rel.begin() == "..") ? p : rel;
  return chosen.generic_string();  // forward slashes on every platform
}

}  // namespace

int main(int argc, char** argv) {
  fs::path root = fs::current_path();
  bool expect_mode = false;
  std::vector<std::string> inputs;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--root" && i + 1 < argc) {
      root = argv[++i];
    } else if (arg == "--expect") {
      expect_mode = true;
    } else if (arg == "--list-rules") {
      for (const std::string& r : tcio::lint::ruleNames()) {
        std::printf("%s\n", r.c_str());
      }
      return 0;
    } else if (arg == "--help" || arg == "-h" || arg.rfind("--", 0) == 0) {
      std::fprintf(stderr,
                   "usage: tcio-lint [--root DIR] [--expect] [--list-rules] "
                   "PATH...\n");
      return arg == "--help" || arg == "-h" ? 0 : 2;
    } else {
      inputs.push_back(arg);
    }
  }
  if (inputs.empty()) {
    std::fprintf(stderr, "tcio-lint: no inputs (see --help)\n");
    return 2;
  }

  std::vector<fs::path> files;
  for (const std::string& in : inputs) {
    fs::path p(in);
    if (p.is_relative() && !fs::exists(p)) p = root / in;
    if (fs::is_directory(p)) {
      for (const auto& e : fs::recursive_directory_iterator(p)) {
        if (e.is_regular_file() && lintable(e.path())) {
          files.push_back(e.path());
        }
      }
    } else if (fs::is_regular_file(p)) {
      files.push_back(p);
    } else {
      std::fprintf(stderr, "tcio-lint: no such input: %s\n", in.c_str());
      return 2;
    }
  }
  std::sort(files.begin(), files.end());

  int findings = 0;
  for (const fs::path& f : files) {
    const std::string display = displayPath(f, root);
    if (expect_mode) {
      std::ifstream is(f, std::ios::binary);
      std::string content((std::istreambuf_iterator<char>(is)),
                          std::istreambuf_iterator<char>());
      const tcio::lint::ExpectResult res =
          tcio::lint::checkExpectations(display, content);
      if (!res.ok) {
        for (const std::string& p : res.problems) {
          std::printf("%s\n", p.c_str());
          ++findings;
        }
      }
    } else {
      for (const tcio::lint::Finding& fd :
           tcio::lint::lintFile(f.string(), display)) {
        std::printf("%s\n", fd.str().c_str());
        ++findings;
      }
    }
  }
  std::fprintf(stderr, "tcio-lint: %d finding%s over %zu file%s%s\n",
               findings, findings == 1 ? "" : "s", files.size(),
               files.size() == 1 ? "" : "s",
               expect_mode ? " (fixture mode)" : "");
  return findings == 0 ? 0 : 1;
}
