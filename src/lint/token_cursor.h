// Shared token-walking helpers for the tcio-lint rules: balanced-delimiter
// matching and function-body discovery over the lexer's token stream.
// Internal to src/lint.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "lint/lexer.h"

namespace tcio::lint::detail {

inline bool is(const Token& t, const char* text) { return t.text == text; }

inline bool isIdent(const Token& t, const char* text) {
  return t.kind == Tok::kIdent && t.text == text;
}

/// Index of the token matching the opener at `open` ("(", "{", or "[").
/// Returns tokens.size() when unbalanced (truncated file) — callers treat
/// that as "spans to end of file".
inline std::size_t matchDelim(const std::vector<Token>& toks,
                              std::size_t open) {
  const std::string& o = toks[open].text;
  const char* close = o == "(" ? ")" : o == "{" ? "}" : "]";
  int depth = 0;
  for (std::size_t i = open; i < toks.size(); ++i) {
    if (toks[i].text == o) {
      ++depth;
    } else if (toks[i].text == close) {
      if (--depth == 0) return i;
    }
  }
  return toks.size();
}

/// A top-level function (or lambda) body: tokens (open..close) are the
/// braces. Control-flow braces (if/for/while/switch/catch), class bodies,
/// and initializer lists are excluded.
struct FnBody {
  std::size_t open = 0;
  std::size_t close = 0;
  bool lambda = false;
};

/// Heuristic body finder. A `{` opens a function body when, after skipping
/// trailing qualifiers (const/noexcept/override/final/mutable, a noexcept
/// argument, or a `-> Type` trailing return), the preceding token is the
/// `)` of a parameter list whose opener is NOT preceded by a control-flow
/// keyword. A parameter list preceded by `]` marks a lambda. Bodies nested
/// inside a found body (lambdas) are reported as their own entries too.
inline std::vector<FnBody> findFunctionBodies(const std::vector<Token>& t) {
  std::vector<FnBody> out;
  // Matching close-paren index -> open-paren index, built in one pass.
  std::vector<std::size_t> open_of(t.size(), 0);
  {
    std::vector<std::size_t> stack;
    for (std::size_t i = 0; i < t.size(); ++i) {
      if (is(t[i], "(")) stack.push_back(i);
      if (is(t[i], ")") && !stack.empty()) {
        open_of[i] = stack.back();
        stack.pop_back();
      }
    }
  }
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (!is(t[i], "{") || i == 0) continue;
    // Walk back over trailing qualifiers to the candidate `)`.
    std::size_t j = i - 1;
    bool walked = true;
    while (walked && j > 0) {
      walked = false;
      const Token& b = t[j];
      if (b.kind == Tok::kIdent &&
          (b.text == "const" || b.text == "noexcept" || b.text == "override" ||
           b.text == "final" || b.text == "mutable" || b.text == "try")) {
        --j;
        walked = true;
      } else if (is(b, ")")) {
        // Could be a noexcept(...) clause; peek before its opener.
        const std::size_t op = open_of[j];
        if (op > 0 && isIdent(t[op - 1], "noexcept")) {
          j = op >= 2 ? op - 2 : 0;  // token before "noexcept"
          walked = true;
        }
      } else if (b.kind == Tok::kIdent || is(b, ">") || is(b, "*") ||
                 is(b, "&") || is(b, "::")) {
        // Possibly a trailing return type `-> Type`; scan back for `->`
        // within a short window.
        std::size_t k = j;
        bool arrow = false;
        for (int steps = 0; k > 0 && steps < 8; --k, ++steps) {
          if (is(t[k], "->")) {
            arrow = true;
            break;
          }
          if (is(t[k], ")") || is(t[k], ";") || is(t[k], "}")) break;
        }
        if (arrow && k >= 1) {
          j = k - 1;
          walked = true;
        }
      }
    }
    if (j == 0 || !is(t[j], ")")) continue;
    const std::size_t op = open_of[j];
    if (op == 0) continue;
    const Token& before = t[op - 1];
    if (before.kind == Tok::kIdent &&
        (before.text == "if" || before.text == "for" ||
         before.text == "while" || before.text == "switch" ||
         before.text == "catch" || before.text == "return")) {
      continue;
    }
    FnBody body;
    body.open = i;
    body.close = matchDelim(t, i);
    body.lambda = is(before, "]");
    // A constructor init list (`: a_(x), b_(y) {`) still ends in `)` before
    // `{` — that IS the function body, so no special case needed.
    out.push_back(body);
  }
  return out;
}

}  // namespace tcio::lint::detail
