// Client side of the delegate protocol (DESIGN.md §10).
//
// `Channel` is one client rank's connection to the delegate set: it frames
// descriptors, moves payload through the staging windows, retries kBusy
// rejections with simulated-time backoff, and — in crash mode — turns reply
// timeouts into the suspicion/agreement/adoption protocol. `DFile` layers
// the byte-offset file API on top: it splits accesses on segment boundaries,
// routes each piece to its shard owner, and (in node-forwarding mode) stages
// writes locally so the node leader can funnel them to the delegates in one
// coalesced burst per segment.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/types.h"
#include "delegate/protocol.h"
#include "delegate/session.h"

namespace tcio::delegate {

class Channel {
 public:
  /// Client ranks only.
  explicit Channel(Session& session);

  Session& session() { return *s_; }

  // -- Synchronous operations -------------------------------------------------

  /// Opens `name` at every live delegate (each owns a shard of the file).
  void open(const std::string& name, unsigned flags);

  /// Writes `payload` (extents packed back to back) into one segment at its
  /// current owner. Chunks the request to honour the frame size and the
  /// descriptor extent cap. A dead/suspected owner defers the pieces for
  /// resubmission at the next resolveFailures().
  void put(std::uint64_t key, std::vector<WireExtent> extents,
           std::vector<std::byte> payload);

  /// Reads one segment's extents (packed) from its owner.
  void get(std::uint64_t key, const std::vector<WireExtent>& extents,
           std::byte* out);

  /// Per-delegate queue barrier: returns once every earlier request this
  /// client queued is serviced.
  void flushDelegates(std::uint64_t key);

  /// Sends kClose to every live delegate and collects the kCloseDone
  /// verdicts; returns the max delegate-local written extent seen. NOT
  /// collective — DFile::close wraps it into the collective protocol.
  Bytes closeFile(std::uint64_t key);

  // -- Asynchronous primitives (multi-outstanding pressure in tests) ----------

  /// Sends the put descriptor and returns its sequence number without
  /// waiting for admission — the way to pile N requests onto one queue.
  std::int64_t postPut(std::uint64_t key, std::vector<WireExtent> extents,
                       std::vector<std::byte> payload);
  /// Drives the posted put to completion (admission retry loop, payload
  /// stage, kPutDone). Returns false when the owner died and the put was
  /// deferred instead.
  bool finishPut(std::int64_t seq);

  std::int64_t postGet(std::uint64_t key, std::vector<WireExtent> extents,
                       Bytes payload_bytes);
  void finishGet(std::int64_t seq, std::byte* out);

  // -- Crash protocol ---------------------------------------------------------

  /// Collective over clientComm: agree on the suspected-dead set (kBitOr of
  /// suspicion bitmaps), drive shard adoption on the survivors, resubmit
  /// every deferred put to the new owners, and repeat until a round adds no
  /// new deaths. No-op outside crash mode.
  void resolveFailures();

  bool anySuspected() const { return suspected_ != 0; }

 private:
  struct PendingOp {
    Op op = Op::kPut;
    std::uint64_t key = 0;
    int owner = -1;
    std::vector<WireExtent> extents;
    std::vector<std::byte> payload;  // puts: bytes to stage; gets: unused
    Bytes payload_bytes = 0;
    bool deferred = false;
  };

  /// Serializes and sends one descriptor on kReqTag.
  void sendDescriptor(int delegate, const RequestHeader& h,
                      const std::vector<WireExtent>& extents,
                      const std::string& name = {});
  /// Awaits the reply carrying `seq` from `delegate`, stashing out-of-order
  /// replies. Returns false on a liveness timeout (crash mode only), after
  /// marking the delegate suspected. kError replies rethrow typed.
  bool awaitReply(int delegate, std::int64_t seq, ReplyMsg* out,
                  std::vector<std::byte>* extra = nullptr);
  /// Admission loop: resends the descriptor after each kBusy with
  /// exponential simulated-time backoff until kAccepted (or a timeout).
  bool awaitAdmission(PendingOp& op, std::int64_t seq, std::int64_t* frame);
  void suspect(int delegate);
  void resubmitDeferred();

  Session* s_;
  mpi::Comm* comm_;
  bool integrity_on_ = false;
  std::int64_t next_seq_ = 1;
  std::map<std::int64_t, PendingOp> pending_;
  std::vector<PendingOp> deferred_;
  /// Replies received while awaiting a different sequence number, per
  /// delegate, in arrival order.
  std::map<int, std::deque<std::vector<std::byte>>> stash_;
  std::uint64_t suspected_ = 0;  // local suspicion bitmap (bit d)
  std::uint64_t agreed_dead_ = 0;
  RetryPolicy busy_policy_;
};

/// One open file in delegate mode: the Program-1 byte API routed through a
/// Channel. open/close are collective over the session's client ranks.
class DFile {
 public:
  DFile(Channel& ch, std::string name, unsigned flags);

  /// Writes [off, off+data.size()). Direct mode sends one put per touched
  /// segment; node-forwarding mode stages locally until flush/close.
  void writeAt(Offset off, std::span<const std::byte> data);
  /// Reads [off, off+out.size()) from the shard owners (flushes local
  /// staging first in forwarding mode).
  void readAt(Offset off, std::span<std::byte> out);

  /// Forwarding mode: funnels the staged segments to the node leader, which
  /// coalesces them and submits to the delegates. Collective over the node.
  /// Direct mode: a per-delegate queue barrier (plus failure resolution in
  /// crash mode).
  void flush();

  /// Collective over the session's clients. Drains every shard, closes the
  /// delegate-side file, and returns the agreed final size.
  Bytes close();

  const std::string& name() const { return name_; }

 private:
  struct StagedSeg {
    std::vector<std::byte> data;
    std::vector<Extent> extents;
  };

  void putSpan(SegmentId g, Offset begin_in_seg,
               std::span<const std::byte> bytes);
  void funnelToLeader();

  Channel* ch_;
  Session* s_;
  std::string name_;
  std::uint64_t key_;
  bool forwarding_;
  std::unique_ptr<mpi::Comm> node_comm_;  // forwarding mode only
  std::map<SegmentId, StagedSeg> staged_;
  Bytes local_max_ = 0;
  bool closed_ = false;
};

}  // namespace tcio::delegate
