// I/O delegate session: carves the first D ranks of a communicator out as
// asynchronous I/O servers (DESIGN.md §10).
//
// With `TcioConfig::delegate_ranks = D` (or TCIO_DELEGATES=D in the
// environment), session ranks 0..D-1 run the request-queue server core
// (server.h) and *exclusively* own the level-2 segment map — segment g is
// served by delegate g % D, the same round-robin the paper's eq. (1) uses
// over ranks, so the crash-takeover remap logic transfers unchanged. The
// remaining P−D client ranks never touch fs::FsClient: they submit
// open/put/get/flush/close descriptors into a bounded per-delegate request
// queue and move payload through the delegate's RMA staging window
// (protocol.h). At 10k+ clients this turns the file system's client
// population from P into D while the queue's admission control (watermark ->
// DelegateBusyError -> client backoff) bounds each delegate's memory.
#pragma once

#include <memory>
#include <vector>

#include "common/types.h"
#include "fs/filesystem.h"
#include "mpi/comm.h"
#include "mpi/rma.h"
#include "tcio/config.h"
#include "tcio/file.h"

namespace tcio::delegate {

class Session {
 public:
  /// Delegate count a config resolves to on a `comm_size`-rank session:
  /// `cfg.delegate_ranks` when positive, else the TCIO_DELEGATES environment
  /// variable, clamped to [0, min(64, comm_size - 1)] (the dead-set bitmap
  /// is one word, and at least one client must remain). A negative config
  /// value disables delegates even when the environment sets them.
  static int effectiveDelegates(const core::TcioConfig& cfg, int comm_size);

  /// Collective over `comm`: splits roles and creates the staging window
  /// (queue_capacity frames on delegates, nothing on clients). Every rank
  /// must construct the Session with an identical config.
  Session(mpi::Comm& comm, fs::Filesystem& fsys, core::TcioConfig cfg);

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  bool isDelegate() const { return comm_->rank() < num_delegates_; }
  int numDelegates() const { return num_delegates_; }
  int numClients() const { return comm_->size() - num_delegates_; }

  /// The session (full) communicator — descriptor/reply traffic runs here.
  mpi::Comm& comm() { return *comm_; }
  /// This rank's role communicator: the client communicator on clients (all
  /// DFile collectives run over it), the delegate communicator on delegates.
  mpi::Comm& roleComm() { return *role_comm_; }
  mpi::Comm& clientComm();

  fs::Filesystem& filesystem() { return *fsys_; }
  const core::TcioConfig& config() const { return cfg_; }
  mpi::Window& window() { return *window_; }
  Bytes frameBytes() const { return frame_bytes_; }
  std::int64_t queueCapacity() const { return cfg_.delegate.queue_capacity; }
  std::int64_t queueWatermark() const {
    return cfg_.delegate.queue_watermark > 0 ? cfg_.delegate.queue_watermark
                                             : cfg_.delegate.queue_capacity;
  }
  bool crashEnabled() const { return cfg_.crash.enabled; }

  // -- Shard routing (agreed dead set included) -------------------------------

  /// Natural shard owner of segment `g` (ignores deaths): g % D.
  int naturalOwnerOf(SegmentId g) const {
    return static_cast<int>(g % num_delegates_);
  }
  /// Current owner: the first live delegate scanning cyclically from the
  /// natural owner. Deterministic given the agreed dead set, so clients and
  /// delegates route identically without exchanging a map.
  int ownerOfSegment(SegmentId g) const;
  /// Adopter of dead delegate `d`: the next live delegate after it.
  int adopterOf(int d) const;

  bool isDead(int d) const { return dead_[static_cast<std::size_t>(d)]; }
  void markDead(int d) { dead_[static_cast<std::size_t>(d)] = true; }
  std::vector<int> liveDelegates() const;

  // -- Role bodies ------------------------------------------------------------

  /// Delegate ranks: run the request-queue server until the shutdown
  /// descriptor arrives. Returns normally after shutdown; a scheduled
  /// fail-stop crash also returns (the rank goes silent — fail-stop).
  void serve();

  /// Client ranks (collective over clientComm): barrier, shut the live
  /// delegates down, collect and merge their stats, and fold in the
  /// client-side counters. Safe to call once; returns the merged stats.
  const core::TcioDelegateStats& finish();
  const core::TcioDelegateStats& stats() const { return stats_; }

  // -- Client-side counters (bumped by Channel/DFile) -------------------------
  std::int64_t client_busy_retries = 0;
  std::int64_t client_deferred_resubmissions = 0;

 private:
  mpi::Comm* comm_;
  fs::Filesystem* fsys_;
  core::TcioConfig cfg_;
  int num_delegates_ = 0;
  Bytes frame_bytes_ = 0;
  std::unique_ptr<mpi::Comm> role_comm_;
  std::unique_ptr<mpi::Window> window_;
  std::vector<bool> dead_;
  bool finished_ = false;
  core::TcioDelegateStats stats_;
};

}  // namespace tcio::delegate
