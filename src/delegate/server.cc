#include "delegate/server.h"

#include <algorithm>
#include <cstring>

#include "check/checker.h"
#include "common/crc32.h"
#include "common/error.h"
#include "mpi/agreement.h"
#include "mpi/datatype.h"

namespace tcio::delegate {

namespace {
/// Virtual-time quantum for the nonblocking arrival probe (recvUntil with
/// deadline == now returns immediately; the poll value is never waited).
constexpr SimTime kProbePoll = 1.0e-9;
}  // namespace

Server::Server(Session& session)
    : s_(&session), comm_(&session.comm()),
      client_(session.filesystem(), session.comm().proc()),
      me_(session.comm().rank()) {
  const core::TcioConfig& cfg = s_->config();
  if (cfg.faults.enabled) client_.installFaultPlan(cfg.faults);
  client_.setRetryPolicy(cfg.retry);
  if (cfg.crash.enabled) {
    TCIO_CHECK_MSG(cfg.crash.journal,
                   "delegate crash tolerance requires journaling: adopted "
                   "shards are reconstructed exclusively from the WAL");
    crash_plan_ = std::make_unique<CrashPlan>(cfg.faults, me_);
  }
  integrity_on_ = core::integrityEnabled(cfg);
  corruption_ = std::make_unique<CorruptionPlan>(cfg.faults, me_);
  free_frames_.reserve(static_cast<std::size_t>(cfg.delegate.queue_capacity));
  for (std::int64_t i = cfg.delegate.queue_capacity - 1; i >= 0; --i) {
    free_frames_.push_back(i);
  }
}

void Server::run() {
  check::ScopedLabel phase(comm_->world().checker(), comm_->proc().rank(),
                           "delegate::Server::run");
  try {
    while (!shutdown_) {
      drainArrivals(/*block=*/!hasServiceable());
      if (hasServiceable()) serviceOne();
    }
  } catch (const RankCrashedError&) {
    // Fail-stop: the delegate goes silent. Clients detect the silence via
    // reply timeouts and run the adoption protocol.
  }
}

// -- Arrival side -------------------------------------------------------------

void Server::drainArrivals(bool block) {
  std::vector<std::byte> buf(
      static_cast<std::size_t>(maxRequestBytes(s_->config())));
  if (block) {
    const mpi::RecvStatus st = comm_->recv(
        buf.data(), static_cast<Bytes>(buf.size()), mpi::kAnySource, kReqTag);
    handleArrival(buf.data(), st.count);
  }
  for (;;) {
    mpi::RecvStatus st;
    const bool got = comm_->recvUntil(
        buf.data(), static_cast<Bytes>(buf.size()), mpi::kAnySource, kReqTag,
        comm_->proc().now(), kProbePoll, &st);
    if (!got) break;
    handleArrival(buf.data(), st.count);
  }
}

void Server::handleArrival(const std::byte* buf, Bytes received) {
  TCIO_CHECK(received >= static_cast<Bytes>(sizeof(RequestHeader)));
  Pending p;
  std::memcpy(&p.h, buf, sizeof(p.h));
  const std::byte* cursor = buf + sizeof(p.h);
  p.extents.resize(static_cast<std::size_t>(p.h.n_extents));
  if (p.h.n_extents > 0) {
    std::memcpy(p.extents.data(), cursor,
                static_cast<std::size_t>(p.h.n_extents) * sizeof(WireExtent));
    cursor += static_cast<std::size_t>(p.h.n_extents) * sizeof(WireExtent);
  }
  if (p.h.name_len > 0) {
    p.name.assign(reinterpret_cast<const char*>(cursor),
                  static_cast<std::size_t>(p.h.name_len));
  }

  switch (p.h.op) {
    case Op::kPutData: {
      // The payload for an admitted put is staged — mark it serviceable.
      auto& q = queues_[p.h.client];
      for (Pending& e : q) {
        if (e.h.op == Op::kPut && e.h.seq == p.h.seq) {
          e.ready = true;
          return;
        }
      }
      TCIO_CHECK_MSG(false, "kPutData for an unknown admitted put");
      return;
    }
    case Op::kGetAck:
      // aux carries the frame the client finished copying out of.
      freeFrame(p.h.aux);
      return;
    case Op::kPut:
    case Op::kGet:
      admitOrReject(std::move(p));
      return;
    default:
      // Control traffic bypasses admission and holds no frame.
      queues_[p.h.client].push_back(std::move(p));
      return;
  }
}

void Server::admitOrReject(Pending p) {
  if (data_queued_ >= s_->queueWatermark() || free_frames_.empty()) {
    ++stats_.rejections;
    reply(p.h.client, p.h.seq, ReplyKind::kBusy);
    return;
  }
  TCIO_CHECK_MSG(p.h.payload_bytes <= s_->frameBytes(),
                 "delegate request payload exceeds the staging frame");
  p.frame = free_frames_.back();
  free_frames_.pop_back();
  p.ready = p.h.op != Op::kPut;  // puts wait for the staged payload
  ++data_queued_;
  ++stats_.submissions;
  stats_.queue_high_watermark =
      std::max(stats_.queue_high_watermark, data_queued_);
  const std::int64_t frame = p.frame;
  const int client = p.h.client;
  const std::int64_t seq = p.h.seq;
  queues_[client].push_back(std::move(p));
  reply(client, seq, ReplyKind::kAccepted, frame);
}

void Server::reply(int client, std::int64_t seq, ReplyKind kind,
                   std::int64_t value, std::int64_t value2,
                   std::int32_t pad) {
  ReplyMsg r;
  r.kind = kind;
  r.pad = pad;
  r.seq = seq;
  r.value = value;
  r.value2 = value2;
  comm_->send(&r, sizeof(r), client, kRepTag);
}

// -- Service side -------------------------------------------------------------

bool Server::hasServiceable() const {
  for (const auto& [client, q] : queues_) {
    if (!q.empty() && q.front().ready) return true;
  }
  return false;
}

void Server::serviceOne() {
  // Round-robin over clients: one request per client per sweep, so a hot
  // client cannot monopolize the delegate.
  std::vector<int> clients;
  clients.reserve(queues_.size());
  for (const auto& [client, q] : queues_) {
    if (!q.empty()) clients.push_back(client);
  }
  if (clients.empty()) return;
  std::sort(clients.begin(), clients.end());
  auto it = std::lower_bound(clients.begin(), clients.end(), rr_next_);
  for (std::size_t i = 0; i < clients.size(); ++i) {
    if (it == clients.end()) it = clients.begin();
    const int c = *it++;
    std::deque<Pending>& q = queues_[c];
    if (!q.front().ready) continue;  // put awaiting its payload — skip client
    Pending p = std::move(q.front());
    q.pop_front();
    rr_next_ = c + 1;
    dispatch(p);
    return;
  }
}

void Server::dispatch(Pending& p) {
  const SimTime t0 = comm_->proc().now();
  try {
    switch (p.h.op) {
      case Op::kOpen: serveOpen(p); break;
      case Op::kPut: servePut(p); break;
      case Op::kGet: serveGet(p); break;
      case Op::kFlush: reply(p.h.client, p.h.seq, ReplyKind::kFlushDone); break;
      case Op::kClose: serveClose(p); break;
      case Op::kAdopt: serveAdopt(p); break;
      case Op::kShutdown: serveShutdown(p); break;
      default: TCIO_CHECK_MSG(false, "unexpected op in the service queue");
    }
  } catch (const RankCrashedError&) {
    throw;  // fail-stop — never turn a crash into an error reply
  } catch (const std::exception& e) {
    // Local failure (e.g. retry-exhausted transient): typed error travels to
    // the requesting client, which rethrows it. The delegate keeps serving.
    mpi::CapturedError err;
    err.capture(e);
    std::string text = err.what.substr(0, 400);
    std::vector<std::byte> msg(sizeof(ReplyMsg) + text.size());
    ReplyMsg r;
    r.kind = ReplyKind::kError;
    r.seq = p.h.seq;
    r.value = err.code;
    r.value2 = static_cast<std::int64_t>(text.size());
    std::memcpy(msg.data(), &r, sizeof(r));
    std::memcpy(msg.data() + sizeof(r), text.data(), text.size());
    comm_->send(msg.data(), static_cast<Bytes>(msg.size()), p.h.client,
                kRepTag);
    if (p.frame >= 0) {
      freeFrame(p.frame);
      --data_queued_;
    }
  }
  stats_.service_time += comm_->proc().now() - t0;
}

Server::FileState& Server::fileFor(std::uint64_t key) {
  const auto it = files_.find(key);
  TCIO_CHECK_MSG(it != files_.end(), "delegate request for an unopened file");
  return it->second;
}

Server::SegBuf& Server::segBuf(FileState& f, SegmentId g) {
  SegBuf& sb = f.segs[g];
  if (sb.data.empty()) {
    sb.data.assign(static_cast<std::size_t>(s_->config().segment_size),
                   std::byte{0});
  }
  return sb;
}

void Server::noteAdoptedSegment(FileState& f, SegmentId g) {
  if (s_->naturalOwnerOf(g) == me_) return;
  if (check::Checker* ck = comm_->world().checker()) {
    comm_->proc().atomic([&] { ck->noteRemap(f.name, g, me_); });
  }
}

void Server::serveOpen(Pending& p) {
  FileState& f = files_[p.h.file_key];
  if (f.drained) f = FileState{};  // churn reopen: fresh session state
  if (f.opens == 0) {
    TCIO_CHECK(!p.name.empty());
    f.name = p.name;
    f.fsfile = client_.open(f.name, static_cast<unsigned>(p.h.aux));
    if (check::Checker* ck = comm_->world().checker()) {
      comm_->proc().atomic([&] {
        ck->registerFile(f.name, s_->numDelegates(),
                         s_->config().segment_size,
                         s_->config().segments_per_rank);
      });
    }
  } else {
    TCIO_CHECK_MSG(f.name == p.name, "file-key collision between names");
  }
  ++f.opens;
  reply(p.h.client, p.h.seq, ReplyKind::kOpenDone);
}

void Server::servePut(Pending& p) {
  crashPoint(CrashPoint::kAtCollective);
  FileState& f = fileFor(p.h.file_key);
  TCIO_CHECK(!p.extents.empty());
  const SegmentId g = p.extents.front().seg;
  noteAdoptedSegment(f, g);
  crashPoint(CrashPoint::kMidRma);  // payload staged, nothing applied yet
  SegBuf& sb = segBuf(f, g);
  std::byte* src = frameData(p.frame);
  if (corruption_->fires(CorruptSite::kStagingFrame)) {
    corruption_->flipBit({src, static_cast<std::size_t>(p.h.payload_bytes)});
  }
  // Verify the frame crossing against the digests the client took at staging
  // time, before a byte is journaled or applied. A mismatch is repairable
  // without the WAL: the source rank still holds the pristine payload, so it
  // re-stages into the same frame and resends kPutData (once).
  if (integrity_on_) {
    bool clean = true;
    const std::byte* check = src;
    for (const WireExtent& e : p.extents) {
      const Bytes len = e.end - e.begin;
      if (e.has_crc != 0) {
        ++stats_.crc_checks;
        if (crc32({check, static_cast<std::size_t>(len)}) != e.crc) {
          ++stats_.crc_mismatches;
          clean = false;
        }
      }
      check += len;
    }
    chargeChecksum(p.h.payload_bytes);
    if (!clean) {
      if (p.retries >= 1) {
        ++stats_.unrepairable;
        throw IntegrityError("delegate " + std::to_string(me_) +
                             ": put frame corrupt after a client re-stage");
      }
      ++p.retries;
      const int client = p.h.client;
      const std::int64_t seq = p.h.seq;
      const std::int64_t frame = p.frame;
      p.ready = false;  // serviceable again when the re-staged kPutData lands
      queues_[client].push_front(std::move(p));
      reply(client, seq, ReplyKind::kPutRetry, frame);
      return;
    }
    if (p.retries > 0) ++stats_.repaired;
  }
  // WAL first: a record is journaled before its bytes move into the shard
  // buffer and strictly before the acknowledgement, so an acknowledged put
  // always survives this delegate's death. The integrity pipeline journals
  // too — the WAL doubles as the shard's repair source (DESIGN.md §11).
  const bool journaling =
      (s_->config().crash.enabled && s_->config().crash.journal) ||
      integrity_on_;
  if (journaling && f.journal == nullptr) {
    f.journal = std::make_unique<core::Journal>(
        client_, core::journalPath(f.name, me_));
  }
  if (journaling) f.journal->batchBegin();  // one device write per put
  Bytes total = 0;
  const std::byte* cursor = src;
  for (const WireExtent& e : p.extents) {
    TCIO_CHECK_MSG(e.seg == g, "one put must address a single segment");
    const Bytes len = e.end - e.begin;
    const std::span<const std::byte> payload{cursor,
                                             static_cast<std::size_t>(len)};
    if (journaling) {
      if (crash_plan_ != nullptr &&
          crash_plan_->fires(CrashPoint::kMidJournal)) {
        const std::int64_t frame_len = core::Journal::kHeaderBytes +
                                       static_cast<std::int64_t>(len);
        f.journal->append(g, e.begin, payload,
                          crash_plan_->tornBytes(frame_len));
        die();
      }
      f.journal->append(g, e.begin, payload);
    }
    std::memcpy(sb.data.data() + e.begin, cursor,
                static_cast<std::size_t>(len));
    if (integrity_on_ && e.has_crc != 0) {
      ledgerInsert(sb, e.begin, len, e.crc);
    }
    sb.extents.push_back({e.begin, e.end});
    ++sb.raw_extents;
    cursor += len;
    total += len;
  }
  TCIO_CHECK(total == p.h.payload_bytes);
  if (journaling) f.journal->batchEnd();
  comm_->chargeCopy(total);
  if (corruption_->fires(CorruptSite::kWindow)) {
    // Shard-buffer-at-rest flip, landing inside the extent just applied;
    // caught at the next ledger verification (get or drain) and healed by
    // WAL replay.
    const WireExtent& e = p.extents.front();
    corruption_->flipBit({sb.data.data() + e.begin,
                          static_cast<std::size_t>(e.end - e.begin)});
  }
  if (check::Checker* ck = comm_->world().checker()) {
    comm_->proc().atomic([&] {
      ck->onSegmentTransfer(f.name, g, me_, "delegate::Server::servePut");
      ck->noteDirty(f.name, g);
    });
  }
  freeFrame(p.frame);
  --data_queued_;
  p.frame = -1;  // released — dispatch's error path must not free it again
  reply(p.h.client, p.h.seq, ReplyKind::kPutDone);
}

void Server::loadSegment(FileState& f, SegmentId g, SegBuf& sb) {
  const Bytes seg_size = s_->config().segment_size;
  const Offset base = g * seg_size;
  const Bytes fsize = client_.size(f.fsfile);
  const Bytes n = std::min<Bytes>(seg_size, std::max<Bytes>(0, fsize - base));
  if (n > 0) {
    std::vector<std::byte> scratch(static_cast<std::size_t>(n));
    client_.pread(f.fsfile, base, scratch.data(), n);
    if (sb.extents.empty()) {
      std::memcpy(sb.data.data(), scratch.data(),
                  static_cast<std::size_t>(n));
    } else {
      // Dirty bytes win: copy the FS image only outside buffered extents.
      const std::vector<Extent> dirty = mpi::normalizeOverlapping(sb.extents);
      Offset at = 0;
      for (const Extent& d : dirty) {
        const Offset stop = std::min<Offset>(d.begin, n);
        if (at < stop) {
          std::memcpy(sb.data.data() + at, scratch.data() + at,
                      static_cast<std::size_t>(stop - at));
        }
        at = std::max<Offset>(at, d.end);
      }
      if (at < n) {
        std::memcpy(sb.data.data() + at, scratch.data() + at,
                    static_cast<std::size_t>(n - at));
      }
    }
  }
  sb.loaded = true;
}

void Server::serveGet(Pending& p) {
  crashPoint(CrashPoint::kAtCollective);
  FileState& f = fileFor(p.h.file_key);
  TCIO_CHECK(!p.extents.empty());
  const SegmentId g = p.extents.front().seg;
  SegBuf& sb = segBuf(f, g);
  if (!sb.loaded) loadSegment(f, g, sb);
  // Shard bytes are about to cross into the reply frame: re-verify the
  // segment's ledger first so corruption-at-rest never reaches a reader.
  if (integrity_on_) verifySegment(f, g, sb);
  std::byte* dst = frameData(p.frame);
  Bytes total = 0;
  for (const WireExtent& e : p.extents) {
    TCIO_CHECK_MSG(e.seg == g, "one get must address a single segment");
    const Bytes len = e.end - e.begin;
    std::memcpy(dst + total, sb.data.data() + e.begin,
                static_cast<std::size_t>(len));
    total += len;
  }
  TCIO_CHECK(total == p.h.payload_bytes);
  comm_->chargeCopy(total);
  // Digest the staged reply so the client can verify its side of the RMA
  // frame crossing (pad == 1 flags a valid value2 CRC).
  std::int64_t reply_crc = 0;
  std::int32_t has_reply_crc = 0;
  if (integrity_on_) {
    reply_crc = crc32({dst, static_cast<std::size_t>(total)});
    has_reply_crc = 1;
    chargeChecksum(total);
  }
  --data_queued_;  // queue slot freed; the frame is held until kGetAck
  p.frame = -1;    // ownership moved to the client — the error path must
                   // neither free the frame nor re-drop data_queued_
  reply(p.h.client, p.h.seq, ReplyKind::kGetData, total, reply_crc,
        has_reply_crc);
}

void Server::serveClose(Pending& p) {
  FileState& f = fileFor(p.h.file_key);
  ++f.closes;
  f.closers.push_back({p.h.client, p.h.seq});
  if (f.closes < f.opens) return;  // reply deferred until the drain
  drainAndClose(f);
  const Bytes local_max = [&] {
    Bytes m = 0;
    for (const auto& [g, sb] : f.segs) {
      if (sb.extents.empty()) continue;
      const std::vector<Extent> merged = mpi::normalizeOverlapping(sb.extents);
      m = std::max<Bytes>(m, g * s_->config().segment_size +
                                 merged.back().end);
    }
    return m;
  }();
  for (const auto& [client, seq] : f.closers) {
    reply(client, seq, ReplyKind::kCloseDone, local_max);
  }
  f.closers.clear();
}

void Server::drainAndClose(FileState& f) {
  check::Checker* ck = comm_->world().checker();
  Bytes local_max = 0;
  for (auto& [g, sb] : f.segs) {
    if (sb.extents.empty()) continue;
    // Last crossing before the store: scrub the whole shard segment against
    // its ledger so corruption-at-rest never reaches an OST.
    if (integrity_on_) verifySegment(f, g, sb);
    const std::vector<Extent> merged = mpi::normalizeOverlapping(sb.extents);
    const Offset base = g * s_->config().segment_size;
    for (const Extent& run : merged) {
      crashPoint(CrashPoint::kMidClose);
      client_.pwrite(f.fsfile, base + run.begin, sb.data.data() + run.begin,
                     run.size());
      ++stats_.batches;
    }
    stats_.batched_extents += sb.raw_extents;
    local_max = std::max<Bytes>(local_max, base + merged.back().end);
    if (ck != nullptr) {
      comm_->proc().atomic(
          [&] { ck->onDrain(f.name, g, me_, "delegate::Server::drain"); });
    }
  }
  if (f.journal != nullptr) f.journal->commit();
  client_.close(f.fsfile);
  f.drained = true;
  if (ck != nullptr) {
    comm_->proc().atomic([&] { ck->onFileClosed(f.name, local_max, me_); });
  }
}

void Server::serveAdopt(Pending& p) {
  // Two passes: the whole verdict is marked dead before any adopterOf()
  // runs, so when adjacent delegates die in the same agreement round the
  // adopter scan skips both and the shard lands on a live delegate.
  // Interleaving mark and adopt would hand d's shard to the also-dead d+1.
  std::set<int> fresh;
  for (const WireExtent& e : p.extents) {
    const int dead = static_cast<int>(e.seg);
    if (dead == me_) die();  // peers agreed I'm dead: self-fence
    if (s_->isDead(dead)) continue;
    s_->markDead(dead);
    ++stats_.delegates_crashed;
    death_order_.push_back(dead);
    fresh.insert(dead);
  }
  // Chain scan: adopt every dead delegate whose shard currently falls to
  // this server and whose WAL it has not replayed yet — not just this
  // round's victims. When an ADOPTER dies (possibly mid-re-append, leaving a
  // torn copy in its own WAL), the delegates it had adopted re-route to the
  // next live adopter, which must replay their ORIGINAL journals: the dead
  // adopter's WAL alone cannot be trusted to carry the chain. Replay runs in
  // death order so a record's gen n+1 copy always lands after its original;
  // duplicate applications are byte-identical and therefore idempotent.
  for (const int dead : death_order_) {
    if (s_->adopterOf(dead) != me_) continue;
    if (my_adopted_.count(dead) != 0) continue;
    if (fresh.count(dead) == 0) ++stats_.shards_readopted;
    adoptShard(dead);
  }
  reply(p.h.client, p.h.seq, ReplyKind::kAdoptDone);
}

void Server::adoptShard(int dead) {
  ++stats_.shards_adopted;
  my_adopted_.insert(dead);
  check::Checker* ck = comm_->world().checker();
  for (auto& [key, f] : files_) {
    if (f.name.empty()) continue;
    if (ck != nullptr) {
      comm_->proc().atomic([&] { ck->noteDeath(f.name, dead); });
    }
    const core::Journal::Parsed parsed =
        core::Journal::readAndParse(client_, core::journalPath(f.name, dead));
    if (parsed.records.empty()) continue;
    if (!f.drained) {
      // Replay into the shard buffers; the coming drain writes them out.
      // Each record is re-appended to this delegate's own WAL (generation
      // bumped) so verifySegment's corruption repair can replay adopted
      // bytes from the local journal. Chain durability does NOT depend on
      // these copies: serveAdopt's death-order scan re-replays the original
      // owners' journals at the next adopter, so a death right here — torn
      // copy and all — loses nothing.
      if (f.journal == nullptr) {
        f.journal = std::make_unique<core::Journal>(
            client_, core::journalPath(f.name, me_));
      }
      f.journal->batchBegin();  // one device write for the adopted log
      for (const core::Journal::Record& r : parsed.records) {
        // Adopted copies (gen > 0) are not applied here: the death-order
        // chain scan replays the ORIGINAL owner's journal at whichever live
        // server that shard routes to, and applying the copy too would
        // double-drain the segment.
        if (r.gen > 0) continue;
        ++stats_.journal_records_replayed;
        if (crash_plan_ != nullptr &&
            crash_plan_->fires(CrashPoint::kMidRecovery)) {
          // Cascade: the adopter dies mid-re-append. The copy tears in this
          // WAL and the parse scan at the NEXT adopter drops it.
          const std::int64_t frame_len =
              core::Journal::kHeaderBytes +
              static_cast<std::int64_t>(r.payload.size());
          f.journal->append(r.seg, r.disp, r.payload,
                            crash_plan_->tornBytes(frame_len), r.gen + 1);
          die();
        }
        f.journal->append(r.seg, r.disp, r.payload, /*torn_prefix=*/-1,
                          r.gen + 1);
        SegBuf& sb = segBuf(f, r.seg);
        std::memcpy(sb.data.data() + r.disp, r.payload.data(),
                    r.payload.size());
        if (integrity_on_) {
          ledgerInsert(sb, r.disp, static_cast<Bytes>(r.payload.size()),
                       crc32(r.payload));
        }
        sb.extents.push_back(
            {r.disp, r.disp + static_cast<Offset>(r.payload.size())});
        ++sb.raw_extents;
        if (ck != nullptr) {
          comm_->proc().atomic([&] {
            ck->noteRemap(f.name, r.seg, me_);
            ck->noteDirty(f.name, r.seg);
          });
        }
      }
      f.journal->batchEnd();
    } else {
      // The file already drained here: write the dead shard's journaled
      // bytes straight to the file (merged runs, like a drain would).
      fs::FsFile ff = client_.open(f.name, fs::kWrite);
      std::map<SegmentId, std::pair<std::vector<std::byte>,
                                    std::vector<Extent>>> segs;
      for (const core::Journal::Record& r : parsed.records) {
        if (r.gen > 0) continue;  // copies: the chain scan replays originals
        ++stats_.journal_records_replayed;
        auto& [data, exts] = segs[r.seg];
        if (data.empty()) {
          data.assign(static_cast<std::size_t>(s_->config().segment_size),
                      std::byte{0});
        }
        std::memcpy(data.data() + r.disp, r.payload.data(),
                    r.payload.size());
        exts.push_back({r.disp, r.disp + static_cast<Offset>(
                                             r.payload.size())});
      }
      for (const auto& [g, rec] : segs) {
        const Offset base = g * s_->config().segment_size;
        for (const Extent& run : mpi::normalizeOverlapping(rec.second)) {
          client_.pwrite(ff, base + run.begin, rec.first.data() + run.begin,
                         run.size());
          ++stats_.batches;
        }
        if (ck != nullptr) {
          comm_->proc().atomic([&] {
            ck->noteRemap(f.name, g, me_);
            ck->noteDirty(f.name, g);
            ck->onDrain(f.name, g, me_, "delegate::Server::adopt");
          });
        }
      }
      client_.close(ff);
    }
  }
}

void Server::serveShutdown(Pending& p) {
  stats_.fs_transient_faults = client_.retryStats().transient_faults;
  stats_.fs_retries = client_.retryStats().retries;
  std::vector<std::byte> msg(sizeof(ReplyMsg) +
                             sizeof(core::TcioDelegateStats));
  ReplyMsg r;
  r.kind = ReplyKind::kShutdownDone;
  r.seq = p.h.seq;
  std::memcpy(msg.data(), &r, sizeof(r));
  std::memcpy(msg.data() + sizeof(r), &stats_, sizeof(stats_));
  comm_->send(msg.data(), static_cast<Bytes>(msg.size()), p.h.client,
              kRepTag);
  shutdown_ = true;
}

// -- End-to-end integrity at the delegate (DESIGN.md §11) ---------------------

void Server::chargeChecksum(Bytes n) {
  comm_->proc().advance(static_cast<double>(n) /
                        s_->config().integrity.checksum_bandwidth);
}

void Server::ledgerInsert(SegBuf& sb, Offset disp, Bytes len,
                          std::uint32_t crc) {
  const Offset end = disp + len;
  // Evict any run whose envelope the new extent overlaps: last writer wins,
  // and a run's streamed CRC cannot survive a partial rewrite anyway.
  for (auto it = sb.ledger.begin(); it != sb.ledger.end();) {
    const Offset b = it->first;
    const LedgerEntry& ent = it->second;
    const Offset ent_end =
        b + static_cast<Offset>(ent.stride) * (ent.count - 1) + ent.len;
    if (b < end && disp < ent_end) {
      it = sb.ledger.erase(it);
    } else {
      ++it;
    }
  }
  // Coalesce with the predecessor run when the geometry fits exactly — the
  // delegate-side mirror of File::digestLevel1: a contiguous neighbour
  // extends a single piece, an equal-length piece at a constant stride joins
  // the run, and the CRC streams over the just-applied (verified-clean)
  // shard bytes. Must run after the extent's memcpy into sb.data.
  const auto up = sb.ledger.upper_bound(disp);
  if (up != sb.ledger.begin()) {
    const auto prev = std::prev(up);
    LedgerEntry& run = prev->second;
    const std::span<const std::byte> bytes{sb.data.data() + disp,
                                           static_cast<std::size_t>(len)};
    if (run.count == 1 && run.stride == 0 &&
        disp == prev->first + static_cast<Offset>(run.len)) {
      run.len += len;
      run.crc = crc32(bytes, run.crc);
      return;
    }
    if (len == run.len) {
      if (run.count == 1 && disp > prev->first &&
          disp - prev->first <= 0xffffffff) {
        run.stride = static_cast<std::uint32_t>(disp - prev->first);
        run.count = 2;
        run.crc = crc32(bytes, run.crc);
        return;
      }
      if (run.count >= 2 &&
          disp == prev->first + static_cast<Offset>(run.stride) *
                                    static_cast<Offset>(run.count)) {
        ++run.count;
        run.crc = crc32(bytes, run.crc);
        return;
      }
    }
  }
  sb.ledger[disp] = {len, /*stride=*/0, /*count=*/1, crc};
}

void Server::verifySegment(FileState& f, SegmentId g, SegBuf& sb) {
  if (sb.ledger.empty()) return;
  const auto clean = [&](bool count) {
    bool ok = true;
    Bytes checked = 0;
    for (const auto& [disp, ent] : sb.ledger) {
      if (count) ++stats_.crc_checks;
      // Re-stream the CRC across the run's pieces in the order it was built.
      std::uint32_t acc = 0;
      for (std::uint32_t k = 0; k < ent.count; ++k) {
        const Offset piece = disp + static_cast<Offset>(ent.stride) * k;
        acc = crc32({sb.data.data() + piece,
                     static_cast<std::size_t>(ent.len)},
                    acc);
        checked += ent.len;
      }
      if (acc != ent.crc) {
        if (count) ++stats_.crc_mismatches;
        ok = false;
      }
    }
    chargeChecksum(checked);
    return ok;
  };
  if (clean(/*count=*/true)) return;
  // Repair from this delegate's WAL: with integrity on, every acknowledged
  // put was journaled first, so replaying the segment's records in append
  // order reconstructs exactly the bytes the ledger digests were taken over.
  if (f.journal == nullptr) {
    ++stats_.unrepairable;
    throw IntegrityError("delegate " + std::to_string(me_) + ": segment " +
                         std::to_string(g) + " corrupt with no WAL to replay");
  }
  const core::Journal::Parsed parsed =
      core::Journal::readAndParse(client_, core::journalPath(f.name, me_));
  for (const core::Journal::Record& r : parsed.records) {
    if (r.seg != g) continue;
    std::memcpy(sb.data.data() + r.disp, r.payload.data(), r.payload.size());
  }
  if (!clean(/*count=*/false)) {
    ++stats_.unrepairable;
    throw IntegrityError("delegate " + std::to_string(me_) + ": segment " +
                         std::to_string(g) + " still corrupt after WAL replay");
  }
  ++stats_.repaired;
}

std::byte* Server::frameData(std::int64_t frame) {
  TCIO_CHECK(frame >= 0 && frame < s_->queueCapacity());
  return s_->window().localData() + frame * s_->frameBytes();
}

void Server::freeFrame(std::int64_t frame) {
  TCIO_CHECK(frame >= 0);
  free_frames_.push_back(frame);
}

void Server::crashPoint(CrashPoint point) {
  if (crash_plan_ != nullptr && crash_plan_->fires(point)) die();
}

void Server::die() {
  throw RankCrashedError("delegate " + std::to_string(me_) +
                             " hit its scheduled fail-stop crash",
                         me_);
}

}  // namespace tcio::delegate
