#include "delegate/session.h"

#include <algorithm>
#include <cstring>

#include "common/env.h"
#include "common/error.h"
#include "delegate/protocol.h"
#include "delegate/server.h"

namespace tcio::delegate {

int Session::effectiveDelegates(const core::TcioConfig& cfg, int comm_size) {
  if (cfg.delegate_ranks < 0) return 0;  // explicit opt-out beats the env
  std::int64_t d = cfg.delegate_ranks > 0
                       ? cfg.delegate_ranks
                       : envInt64("TCIO_DELEGATES", 0);
  const std::int64_t cap = std::min<std::int64_t>(64, comm_size - 1);
  return static_cast<int>(std::clamp<std::int64_t>(d, 0, cap));
}

Session::Session(mpi::Comm& comm, fs::Filesystem& fsys, core::TcioConfig cfg)
    : comm_(&comm), fsys_(&fsys), cfg_(std::move(cfg)) {
  num_delegates_ = effectiveDelegates(cfg_, comm.size());
  TCIO_CHECK_MSG(num_delegates_ > 0,
                 "delegate::Session needs delegate_ranks > 0 (or "
                 "TCIO_DELEGATES) and at least one client rank");
  TCIO_CHECK_MSG(!(cfg_.crash.enabled && cfg_.node_aggregation),
                 "delegate mode: node-forwarding and crash tolerance cannot "
                 "be combined (forwarded puts are attributed to the leader, "
                 "so clients cannot resubmit them after a delegate death)");
  frame_bytes_ = cfg_.delegate.frame_bytes > 0 ? cfg_.delegate.frame_bytes
                                               : cfg_.segment_size;
  dead_.assign(static_cast<std::size_t>(num_delegates_), false);
  // Both collectives below must run on every session rank in this order.
  role_comm_ = std::make_unique<mpi::Comm>(
      comm.split(isDelegate() ? 0 : 1, /*key=*/0));
  const Bytes local = isDelegate()
                          ? cfg_.delegate.queue_capacity * frame_bytes_
                          : 0;
  window_ = std::make_unique<mpi::Window>(mpi::Window::create(comm, local));
}

mpi::Comm& Session::clientComm() {
  TCIO_CHECK_MSG(!isDelegate(), "clientComm() called on a delegate rank");
  return *role_comm_;
}

int Session::ownerOfSegment(SegmentId g) const {
  int d = naturalOwnerOf(g);
  for (int i = 0; i < num_delegates_; ++i) {
    const int cand = (d + i) % num_delegates_;
    if (!dead_[static_cast<std::size_t>(cand)]) return cand;
  }
  TCIO_CHECK_MSG(false, "every delegate is dead");
  return -1;
}

int Session::adopterOf(int d) const {
  for (int i = 1; i <= num_delegates_; ++i) {
    const int cand = (d + i) % num_delegates_;
    if (!dead_[static_cast<std::size_t>(cand)]) return cand;
  }
  TCIO_CHECK_MSG(false, "every delegate is dead");
  return -1;
}

std::vector<int> Session::liveDelegates() const {
  std::vector<int> live;
  for (int d = 0; d < num_delegates_; ++d) {
    if (!dead_[static_cast<std::size_t>(d)]) live.push_back(d);
  }
  return live;
}

void Session::serve() {
  TCIO_CHECK(isDelegate());
  Server server(*this);
  server.run();
}

const core::TcioDelegateStats& Session::finish() {
  TCIO_CHECK(!isDelegate());
  if (finished_) return stats_;
  finished_ = true;
  mpi::Comm& cc = clientComm();
  cc.barrier();  // every client is done with its DFiles

  core::TcioDelegateStats merged;
  if (cc.rank() == 0) {
    // Shut down each live delegate and collect its stats blob. With crash
    // tolerance a delegate may die between the last data op and here; a
    // timeout marks it dead and its counters die with it (fail-stop).
    std::vector<std::byte> buf(static_cast<std::size_t>(maxReplyBytes()));
    for (int d = 0; d < num_delegates_; ++d) {
      if (isDead(d)) continue;
      RequestHeader h;
      h.op = Op::kShutdown;
      h.client = comm_->rank();
      comm_->send(&h, sizeof(h), d, kReqTag);
      mpi::RecvStatus st;
      bool got;
      if (crashEnabled()) {
        got = comm_->recvUntil(buf.data(), static_cast<Bytes>(buf.size()), d,
                               kRepTag,
                               comm_->proc().now() + cfg_.crash.liveness_window,
                               cfg_.crash.liveness_poll, &st);
      } else {
        st = comm_->recv(buf.data(), static_cast<Bytes>(buf.size()), d,
                         kRepTag);
        got = true;
      }
      if (!got) {
        markDead(d);
        continue;
      }
      ReplyMsg r;
      std::memcpy(&r, buf.data(), sizeof(r));
      TCIO_CHECK(r.kind == ReplyKind::kShutdownDone);
      TCIO_CHECK(st.count >=
                 static_cast<Bytes>(sizeof(r) +
                                    sizeof(core::TcioDelegateStats)));
      core::TcioDelegateStats blob;
      std::memcpy(&blob, buf.data() + sizeof(r), sizeof(blob));
      merged.merge(blob);
    }
  }
  cc.bcast(&merged, sizeof(merged), /*root=*/0);

  // Dead-set agreement may be per-client partial at this point only on
  // ranks that never talked to the dead delegate; the bitmap was agreed at
  // the last collective resolve, so just count local knowledge.
  std::int64_t dead_count = 0;
  for (int d = 0; d < num_delegates_; ++d) dead_count += isDead(d) ? 1 : 0;
  std::int64_t client_counters[3] = {client_busy_retries,
                                     client_deferred_resubmissions,
                                     dead_count};
  cc.allreduce(client_counters, 2, mpi::ReduceOp::kSum);
  cc.allreduce(&client_counters[2], 1, mpi::ReduceOp::kMax);
  merged.busy_retries += client_counters[0];
  merged.deferred_resubmissions += client_counters[1];
  merged.delegates_crashed = client_counters[2];
  stats_ = merged;
  return stats_;
}

}  // namespace tcio::delegate
