#include "delegate/client.h"

#include <algorithm>
#include <cstring>

#include "common/crc32.h"
#include "common/error.h"
#include "mpi/agreement.h"
#include "mpi/datatype.h"
#include "sim/backoff.h"

namespace tcio::delegate {

namespace {

/// Admission livelock guard: a queue this persistently full means the
/// session is misconfigured (watermark 0, or a wedged delegate).
constexpr int kMaxBusyAttempts = 1 << 20;

std::uint64_t bit(int d) { return std::uint64_t{1} << d; }

}  // namespace

Channel::Channel(Session& session)
    : s_(&session), comm_(&session.comm()),
      integrity_on_(core::integrityEnabled(session.config())) {
  TCIO_CHECK_MSG(!s_->isDelegate(), "Channel runs on client ranks only");
  // Busy-retry backoff: start well under a service quantum and cap at a few
  // simulated milliseconds so a drained queue is re-probed promptly.
  busy_policy_.max_attempts = kMaxBusyAttempts;
  busy_policy_.base_backoff = 50.0e-6;
  busy_policy_.backoff_multiplier = 2.0;
  busy_policy_.max_backoff = 5.0e-3;
  busy_policy_.jitter_fraction = 0.5;
}

// -- Wire helpers -------------------------------------------------------------

void Channel::sendDescriptor(int delegate, const RequestHeader& h,
                             const std::vector<WireExtent>& extents,
                             const std::string& name) {
  std::vector<std::byte> msg(sizeof(h) +
                             extents.size() * sizeof(WireExtent) +
                             name.size());
  std::memcpy(msg.data(), &h, sizeof(h));
  std::byte* cursor = msg.data() + sizeof(h);
  if (!extents.empty()) {
    std::memcpy(cursor, extents.data(), extents.size() * sizeof(WireExtent));
    cursor += extents.size() * sizeof(WireExtent);
  }
  if (!name.empty()) std::memcpy(cursor, name.data(), name.size());
  comm_->send(msg.data(), static_cast<Bytes>(msg.size()), delegate, kReqTag);
}

bool Channel::awaitReply(int delegate, std::int64_t seq, ReplyMsg* out,
                         std::vector<std::byte>* extra) {
  const auto take = [&](const std::vector<std::byte>& msg) {
    std::memcpy(out, msg.data(), sizeof(*out));
    if (extra != nullptr) {
      extra->assign(msg.begin() + sizeof(*out), msg.end());
    }
  };
  std::deque<std::vector<std::byte>>& stash = stash_[delegate];
  for (auto it = stash.begin(); it != stash.end(); ++it) {
    ReplyMsg r;
    std::memcpy(&r, it->data(), sizeof(r));
    if (r.seq == seq) {
      take(*it);
      stash.erase(it);
      return true;
    }
  }
  std::vector<std::byte> buf(static_cast<std::size_t>(maxReplyBytes()));
  for (;;) {
    mpi::RecvStatus st;
    if (s_->crashEnabled()) {
      const bool got = comm_->recvUntil(
          buf.data(), static_cast<Bytes>(buf.size()), delegate, kRepTag,
          comm_->proc().now() + s_->config().crash.liveness_window,
          s_->config().crash.liveness_poll, &st);
      if (!got) {
        suspect(delegate);
        return false;
      }
    } else {
      st = comm_->recv(buf.data(), static_cast<Bytes>(buf.size()), delegate,
                       kRepTag);
    }
    ReplyMsg r;
    std::memcpy(&r, buf.data(), sizeof(r));
    if (r.kind == ReplyKind::kError && r.seq == seq) {
      const std::string text(
          reinterpret_cast<const char*>(buf.data() + sizeof(r)),
          static_cast<std::size_t>(r.value2));
      mpi::throwTyped(static_cast<std::int32_t>(r.value), text);
    }
    if (r.seq == seq) {
      take({buf.begin(), buf.begin() + st.count});
      return true;
    }
    stash.emplace_back(buf.begin(), buf.begin() + st.count);
  }
}

void Channel::suspect(int delegate) { suspected_ |= bit(delegate); }

// -- Open ---------------------------------------------------------------------

void Channel::open(const std::string& name, unsigned flags) {
  const std::uint64_t key = fileKey(name);
  std::vector<std::pair<int, std::int64_t>> outstanding;
  for (const int d : s_->liveDelegates()) {
    RequestHeader h;
    h.op = Op::kOpen;
    h.client = comm_->rank();
    h.seq = next_seq_++;
    h.file_key = key;
    h.name_len = static_cast<std::int32_t>(name.size());
    h.aux = static_cast<std::int64_t>(flags);
    sendDescriptor(d, h, {}, name);
    outstanding.emplace_back(d, h.seq);
  }
  for (const auto& [d, seq] : outstanding) {
    ReplyMsg r;
    TCIO_CHECK_MSG(awaitReply(d, seq, &r),
                   "delegate died during open — open before injecting "
                   "crashes (crash points fire on data ops)");
    TCIO_CHECK(r.kind == ReplyKind::kOpenDone);
  }
}

// -- Puts ---------------------------------------------------------------------

std::int64_t Channel::postPut(std::uint64_t key,
                              std::vector<WireExtent> extents,
                              std::vector<std::byte> payload) {
  TCIO_CHECK(!extents.empty());
  PendingOp op;
  op.op = Op::kPut;
  op.key = key;
  op.owner = s_->ownerOfSegment(extents.front().seg);
  op.payload_bytes = static_cast<Bytes>(payload.size());
  op.extents = std::move(extents);
  op.payload = std::move(payload);
  // Digest each extent at staging time: the CRC rides the descriptor so the
  // delegate can verify the RMA frame crossing against the source bytes.
  if (integrity_on_) {
    const std::byte* cursor = op.payload.data();
    for (WireExtent& e : op.extents) {
      const Bytes len = e.end - e.begin;
      e.crc = crc32({cursor, static_cast<std::size_t>(len)});
      e.has_crc = 1;
      cursor += len;
    }
  }
  op.deferred = (suspected_ & bit(op.owner)) != 0;
  const std::int64_t seq = next_seq_++;
  if (!op.deferred) {
    RequestHeader h;
    h.op = Op::kPut;
    h.client = comm_->rank();
    h.seq = seq;
    h.file_key = key;
    h.payload_bytes = op.payload_bytes;
    h.n_extents = static_cast<std::int32_t>(op.extents.size());
    sendDescriptor(op.owner, h, op.extents);
  }
  pending_.emplace(seq, std::move(op));
  return seq;
}

bool Channel::awaitAdmission(PendingOp& op, std::int64_t seq,
                             std::int64_t* frame) {
  for (int attempt = 1;; ++attempt) {
    ReplyMsg r;
    if (!awaitReply(op.owner, seq, &r)) return false;
    if (r.kind == ReplyKind::kAccepted) {
      *frame = r.value;
      return true;
    }
    TCIO_CHECK(r.kind == ReplyKind::kBusy);
    if (attempt >= busy_policy_.max_attempts) {
      throw DelegateBusyError("delegate admission retried " +
                                  std::to_string(attempt) +
                                  " times without a free queue slot",
                              op.owner);
    }
    ++s_->client_busy_retries;
    comm_->proc().advance(
        sim::backoffDelay(busy_policy_, attempt, comm_->proc().rng()));
    RequestHeader h;
    h.op = op.op;
    h.client = comm_->rank();
    h.seq = seq;
    h.file_key = op.key;
    h.payload_bytes = op.payload_bytes;
    h.n_extents = static_cast<std::int32_t>(op.extents.size());
    sendDescriptor(op.owner, h, op.extents);
  }
}

bool Channel::finishPut(std::int64_t seq) {
  const auto it = pending_.find(seq);
  TCIO_CHECK(it != pending_.end());
  PendingOp op = std::move(it->second);
  pending_.erase(it);
  if (op.deferred || (suspected_ & bit(op.owner)) != 0) {
    op.deferred = true;
    deferred_.push_back(std::move(op));
    return false;
  }
  std::int64_t frame = -1;
  if (!awaitAdmission(op, seq, &frame)) {
    op.deferred = true;
    deferred_.push_back(std::move(op));
    return false;
  }
  // Stage the payload into the granted frame with one passive-target epoch,
  // then tell the delegate the bytes are in place.
  mpi::Window& w = s_->window();
  w.lock(mpi::LockType::kShared, op.owner);
  w.put(op.owner, frame * s_->frameBytes(), op.payload.data(),
        op.payload_bytes);
  w.unlock(op.owner);
  RequestHeader h;
  h.op = Op::kPutData;
  h.client = comm_->rank();
  h.seq = seq;
  h.file_key = op.key;
  sendDescriptor(op.owner, h, {});
  ReplyMsg r;
  for (;;) {
    if (!awaitReply(op.owner, seq, &r)) {
      // Acknowledgement lost to a death. The put may or may not have been
      // journaled; resubmitting is idempotent either way.
      op.deferred = true;
      deferred_.push_back(std::move(op));
      return false;
    }
    if (r.kind != ReplyKind::kPutRetry) break;
    // The delegate found the staged frame corrupt (a bit flipped across the
    // RMA crossing). This client still holds the pristine payload: re-stage
    // it into the same frame (r.value) and resend kPutData.
    w.lock(mpi::LockType::kShared, op.owner);
    w.put(op.owner, r.value * s_->frameBytes(), op.payload.data(),
          op.payload_bytes);
    w.unlock(op.owner);
    sendDescriptor(op.owner, h, {});
  }
  TCIO_CHECK(r.kind == ReplyKind::kPutDone);
  return true;
}

void Channel::put(std::uint64_t key, std::vector<WireExtent> extents,
                  std::vector<std::byte> payload) {
  // Chunk on the frame size and the descriptor extent cap; each chunk is one
  // admission-controlled request.
  const Bytes frame_bytes = s_->frameBytes();
  const std::int64_t max_extents = s_->config().delegate.max_wire_extents;
  std::vector<WireExtent> chunk;
  Bytes chunk_bytes = 0;
  Bytes consumed = 0;
  const auto flush_chunk = [&] {
    if (chunk.empty()) return;
    std::vector<std::byte> slice(
        payload.begin() + consumed, payload.begin() + consumed + chunk_bytes);
    consumed += chunk_bytes;
    finishPut(postPut(key, std::move(chunk), std::move(slice)));
    chunk.clear();
    chunk_bytes = 0;
  };
  for (const WireExtent& e : extents) {
    const Bytes len = e.end - e.begin;
    TCIO_CHECK_MSG(len <= frame_bytes,
                   "one extent must fit the staging frame — split it");
    if (!chunk.empty() &&
        (chunk_bytes + len > frame_bytes ||
         static_cast<std::int64_t>(chunk.size()) >= max_extents)) {
      flush_chunk();
    }
    chunk.push_back(e);
    chunk_bytes += len;
  }
  flush_chunk();
}

// -- Gets ---------------------------------------------------------------------

std::int64_t Channel::postGet(std::uint64_t key,
                              std::vector<WireExtent> extents,
                              Bytes payload_bytes) {
  TCIO_CHECK(!extents.empty());
  PendingOp op;
  op.op = Op::kGet;
  op.key = key;
  op.owner = s_->ownerOfSegment(extents.front().seg);
  op.payload_bytes = payload_bytes;
  op.extents = std::move(extents);
  TCIO_CHECK_MSG((suspected_ & bit(op.owner)) == 0,
                 "reading from a crashed delegate is not supported — "
                 "resolve failures (flush) before reading");
  const std::int64_t seq = next_seq_++;
  RequestHeader h;
  h.op = Op::kGet;
  h.client = comm_->rank();
  h.seq = seq;
  h.file_key = key;
  h.payload_bytes = payload_bytes;
  h.n_extents = static_cast<std::int32_t>(op.extents.size());
  sendDescriptor(op.owner, h, op.extents);
  pending_.emplace(seq, std::move(op));
  return seq;
}

void Channel::finishGet(std::int64_t seq, std::byte* out) {
  const auto it = pending_.find(seq);
  TCIO_CHECK(it != pending_.end());
  PendingOp op = std::move(it->second);
  pending_.erase(it);
  std::int64_t frame = -1;
  TCIO_CHECK_MSG(awaitAdmission(op, seq, &frame),
                 "delegate died while serving a get");
  ReplyMsg r;
  TCIO_CHECK_MSG(awaitReply(op.owner, seq, &r),
                 "delegate died while serving a get");
  TCIO_CHECK(r.kind == ReplyKind::kGetData);
  TCIO_CHECK(r.value == op.payload_bytes);
  mpi::Window& w = s_->window();
  w.lock(mpi::LockType::kShared, op.owner);
  w.get(op.owner, frame * s_->frameBytes(), out, op.payload_bytes);
  w.unlock(op.owner);
  if (r.pad != 0) {
    // The delegate digested the staged reply (value2): verify our side of
    // the RMA crossing before the bytes reach the user buffer. One re-read
    // absorbs an in-flight flip — the frame is still held until kGetAck.
    const std::span<const std::byte> got{
        out, static_cast<std::size_t>(op.payload_bytes)};
    if (crc32(got) != static_cast<std::uint32_t>(r.value2)) {
      w.lock(mpi::LockType::kShared, op.owner);
      w.get(op.owner, frame * s_->frameBytes(), out, op.payload_bytes);
      w.unlock(op.owner);
      if (crc32(got) != static_cast<std::uint32_t>(r.value2)) {
        throw IntegrityError(
            "delegate get reply failed its frame CRC after a re-read");
      }
    }
  }
  RequestHeader h;
  h.op = Op::kGetAck;
  h.client = comm_->rank();
  h.seq = seq;
  h.file_key = op.key;
  h.aux = frame;
  sendDescriptor(op.owner, h, {});
}

void Channel::get(std::uint64_t key, const std::vector<WireExtent>& extents,
                  std::byte* out) {
  const Bytes frame_bytes = s_->frameBytes();
  const std::int64_t max_extents = s_->config().delegate.max_wire_extents;
  std::vector<WireExtent> chunk;
  Bytes chunk_bytes = 0;
  Bytes consumed = 0;
  const auto flush_chunk = [&] {
    if (chunk.empty()) return;
    const Bytes bytes = chunk_bytes;
    finishGet(postGet(key, std::move(chunk), bytes), out + consumed);
    consumed += bytes;
    chunk.clear();
    chunk_bytes = 0;
  };
  for (const WireExtent& e : extents) {
    const Bytes len = e.end - e.begin;
    TCIO_CHECK_MSG(len <= frame_bytes,
                   "one extent must fit the staging frame — split it");
    if (!chunk.empty() &&
        (chunk_bytes + len > frame_bytes ||
         static_cast<std::int64_t>(chunk.size()) >= max_extents)) {
      flush_chunk();
    }
    chunk.push_back(e);
    chunk_bytes += len;
  }
  flush_chunk();
}

// -- Flush / close ------------------------------------------------------------

void Channel::flushDelegates(std::uint64_t key) {
  std::vector<std::pair<int, std::int64_t>> outstanding;
  for (const int d : s_->liveDelegates()) {
    if ((suspected_ & bit(d)) != 0) continue;
    RequestHeader h;
    h.op = Op::kFlush;
    h.client = comm_->rank();
    h.seq = next_seq_++;
    h.file_key = key;
    sendDescriptor(d, h, {});
    outstanding.emplace_back(d, h.seq);
  }
  for (const auto& [d, seq] : outstanding) {
    ReplyMsg r;
    if (!awaitReply(d, seq, &r)) continue;  // suspected; resolved by caller
    TCIO_CHECK(r.kind == ReplyKind::kFlushDone);
  }
}

Bytes Channel::closeFile(std::uint64_t key) {
  std::vector<std::pair<int, std::int64_t>> outstanding;
  for (const int d : s_->liveDelegates()) {
    if ((suspected_ & bit(d)) != 0) continue;
    RequestHeader h;
    h.op = Op::kClose;
    h.client = comm_->rank();
    h.seq = next_seq_++;
    h.file_key = key;
    sendDescriptor(d, h, {});
    outstanding.emplace_back(d, h.seq);
  }
  Bytes remote_max = 0;
  for (const auto& [d, seq] : outstanding) {
    ReplyMsg r;
    if (!awaitReply(d, seq, &r)) continue;  // died mid-drain; adopter covers
    TCIO_CHECK(r.kind == ReplyKind::kCloseDone);
    remote_max = std::max<Bytes>(remote_max, r.value);
  }
  return remote_max;
}

// -- Crash protocol -----------------------------------------------------------

void Channel::resolveFailures() {
  if (!s_->crashEnabled()) return;
  mpi::Comm& cc = s_->clientComm();
  for (;;) {
    std::uint64_t sus = suspected_;
    cc.allreduce(&sus, 1, mpi::ReduceOp::kBitOr);
    const std::uint64_t fresh = sus & ~agreed_dead_;
    if (fresh == 0) break;
    agreed_dead_ |= fresh;
    suspected_ |= fresh;
    for (int d = 0; d < s_->numDelegates(); ++d) {
      if ((fresh & bit(d)) != 0) s_->markDead(d);
    }
    if (cc.rank() == 0) {
      // Tell every delegate the verdict — the dead list rides in the extent
      // slots. Suspects get it too (a falsely-suspected delegate must
      // self-fence); only confirmed-live delegates owe a kAdoptDone.
      std::vector<WireExtent> dead_list;
      for (int d = 0; d < s_->numDelegates(); ++d) {
        if ((fresh & bit(d)) != 0) dead_list.push_back({d, 0, 0});
      }
      std::vector<std::pair<int, std::int64_t>> outstanding;
      for (int d = 0; d < s_->numDelegates(); ++d) {
        RequestHeader h;
        h.op = Op::kAdopt;
        h.client = comm_->rank();
        h.seq = next_seq_++;
        h.n_extents = static_cast<std::int32_t>(dead_list.size());
        sendDescriptor(d, h, dead_list);
        if ((agreed_dead_ & bit(d)) == 0) outstanding.emplace_back(d, h.seq);
      }
      for (const auto& [d, seq] : outstanding) {
        ReplyMsg r;
        if (!awaitReply(d, seq, &r)) continue;  // next round agrees on it
        TCIO_CHECK(r.kind == ReplyKind::kAdoptDone);
      }
    }
    // Adoption (journal replay) must be complete everywhere before deferred
    // puts reach the new owners, or the replay could clobber fresher bytes.
    cc.barrier();
    resubmitDeferred();
  }
}

void Channel::resubmitDeferred() {
  std::vector<PendingOp> work = std::move(deferred_);
  deferred_.clear();
  for (PendingOp& op : work) {
    TCIO_CHECK(op.op == Op::kPut);
    ++s_->client_deferred_resubmissions;
    finishPut(postPut(op.key, std::move(op.extents), std::move(op.payload)));
  }
}

// -- DFile --------------------------------------------------------------------

DFile::DFile(Channel& ch, std::string name, unsigned flags)
    : ch_(&ch), s_(&ch.session()), name_(std::move(name)),
      key_(fileKey(name_)),
      forwarding_(s_->config().node_aggregation) {
  if (forwarding_) {
    node_comm_ = std::make_unique<mpi::Comm>(
        s_->clientComm().splitByNode(/*key=*/0));
  }
  ch_->open(name_, flags);
}

void DFile::writeAt(Offset off, std::span<const std::byte> data) {
  TCIO_CHECK(!closed_);
  const Bytes seg_size = s_->config().segment_size;
  local_max_ = std::max<Bytes>(local_max_,
                               off + static_cast<Bytes>(data.size()));
  Offset pos = off;
  std::size_t done = 0;
  while (done < data.size()) {
    const SegmentId g = pos / seg_size;
    const Offset in_seg = pos - g * seg_size;
    const Bytes take = std::min<Bytes>(
        seg_size - in_seg, static_cast<Bytes>(data.size() - done));
    putSpan(g, in_seg, data.subspan(done, static_cast<std::size_t>(take)));
    pos += take;
    done += static_cast<std::size_t>(take);
  }
}

void DFile::putSpan(SegmentId g, Offset begin_in_seg,
                    std::span<const std::byte> bytes) {
  const Offset end_in_seg = begin_in_seg + static_cast<Bytes>(bytes.size());
  if (forwarding_) {
    StagedSeg& ss = staged_[g];
    if (ss.data.empty()) {
      ss.data.assign(static_cast<std::size_t>(s_->config().segment_size),
                     std::byte{0});
    }
    std::memcpy(ss.data.data() + begin_in_seg, bytes.data(), bytes.size());
    ss.extents.push_back({begin_in_seg, end_in_seg});
    return;
  }
  ch_->put(key_, {{g, begin_in_seg, end_in_seg}},
           {bytes.begin(), bytes.end()});
}

void DFile::readAt(Offset off, std::span<std::byte> out) {
  TCIO_CHECK(!closed_);
  TCIO_CHECK_MSG(staged_.empty(),
                 "forwarding mode: flush() before readAt — staged writes "
                 "are not visible to the delegates yet");
  const Bytes seg_size = s_->config().segment_size;
  Offset pos = off;
  std::size_t done = 0;
  while (done < out.size()) {
    const SegmentId g = pos / seg_size;
    const Offset in_seg = pos - g * seg_size;
    const Bytes take = std::min<Bytes>(
        seg_size - in_seg, static_cast<Bytes>(out.size() - done));
    ch_->get(key_, {{g, in_seg, in_seg + take}}, out.data() + done);
    pos += take;
    done += static_cast<std::size_t>(take);
  }
}

void DFile::flush() {
  TCIO_CHECK(!closed_);
  if (forwarding_) {
    funnelToLeader();
    return;
  }
  ch_->resolveFailures();
  ch_->flushDelegates(key_);
  ch_->resolveFailures();
}

void DFile::funnelToLeader() {
  mpi::Comm& node = *node_comm_;
  const Bytes seg_size = s_->config().segment_size;
  const bool integrity_on = core::integrityEnabled(s_->config());
  // One message per merged run: [seg][begin][end][crc][payload]; seg -1 ends
  // the stream (crc is 0 with integrity off). The leader overlays peers' runs
  // onto its own staging and then submits one coalesced put stream per
  // segment.
  if (node.rank() != 0) {
    for (auto& [g, ss] : staged_) {
      for (const Extent& run : mpi::normalizeOverlapping(ss.extents)) {
        std::vector<std::byte> msg(4 * sizeof(std::int64_t) +
                                   static_cast<std::size_t>(run.size()));
        const std::int64_t head[4] = {
            g, run.begin, run.end,
            integrity_on
                ? crc32({ss.data.data() + run.begin,
                         static_cast<std::size_t>(run.size())})
                : 0};
        std::memcpy(msg.data(), head, sizeof(head));
        std::memcpy(msg.data() + sizeof(head), ss.data.data() + run.begin,
                    static_cast<std::size_t>(run.size()));
        node.send(msg.data(), static_cast<Bytes>(msg.size()), 0, kFunnelTag);
      }
    }
    const std::int64_t fin[4] = {-1, 0, 0, 0};
    node.send(fin, sizeof(fin), 0, kFunnelTag);
    staged_.clear();
  } else {
    std::vector<std::byte> buf(4 * sizeof(std::int64_t) +
                               static_cast<std::size_t>(seg_size));
    for (int peer = 1; peer < node.size(); ++peer) {
      for (;;) {
        const mpi::RecvStatus st = node.recv(
            buf.data(), static_cast<Bytes>(buf.size()), peer, kFunnelTag);
        std::int64_t head[4];
        std::memcpy(head, buf.data(), sizeof(head));
        if (head[0] < 0) break;
        StagedSeg& ss = staged_[head[0]];
        if (ss.data.empty()) {
          ss.data.assign(static_cast<std::size_t>(seg_size), std::byte{0});
        }
        const Bytes len = head[2] - head[1];
        TCIO_CHECK(st.count == static_cast<Bytes>(sizeof(head)) + len);
        // Intra-node crossing: the funnel hop is verified before the run is
        // overlaid. A mismatch has no repair source once the peer's staging
        // is cleared, so it surfaces — silent propagation is the one wrong
        // move (DESIGN.md §11).
        if (integrity_on &&
            crc32({buf.data() + sizeof(head),
                   static_cast<std::size_t>(len)}) !=
                static_cast<std::uint32_t>(head[3])) {
          throw IntegrityError("node-funnel run failed its CRC at the leader");
        }
        std::memcpy(ss.data.data() + head[1], buf.data() + sizeof(head),
                    static_cast<std::size_t>(len));
        ss.extents.push_back({head[1], head[2]});
      }
    }
    for (auto& [g, ss] : staged_) {
      std::vector<WireExtent> extents;
      std::vector<std::byte> payload;
      for (const Extent& run : mpi::normalizeOverlapping(ss.extents)) {
        extents.push_back({g, run.begin, run.end});
        payload.insert(payload.end(), ss.data.begin() + run.begin,
                       ss.data.begin() + run.end);
      }
      ch_->put(key_, std::move(extents), std::move(payload));
    }
    staged_.clear();
  }
  node.barrier();
}

Bytes DFile::close() {
  TCIO_CHECK(!closed_);
  flush();
  closed_ = true;
  const Bytes remote_max = ch_->closeFile(key_);
  ch_->resolveFailures();
  Bytes size = std::max<Bytes>(local_max_, remote_max);
  s_->clientComm().allreduce(&size, 1, mpi::ReduceOp::kMax);
  return size;
}

}  // namespace tcio::delegate
