// The delegate request-queue server core (DESIGN.md §10).
//
// One Server runs on each delegate rank of a Session. The loop is a classic
// asynchronous request-queue server:
//
//   * arrivals — descriptor messages are drained from the network (a
//     blocking receive only when there is nothing serviceable, nonblocking
//     probes otherwise) and pass *admission control*: a data request is
//     admitted only while the total queued count is below the watermark and
//     a staging frame is free; otherwise the client gets an immediate kBusy
//     (DelegateBusyError) and retries with simulated-time backoff. Control
//     requests (open/flush/close/adopt/shutdown) bypass admission — the
//     watermark's headroom exists exactly so control traffic cannot be
//     starved by a put storm.
//   * service — queued requests are served with per-client round-robin
//     fairness: one request per client per sweep, so a hot client cannot
//     monopolize the delegate.
//   * drain — the last close of a file writes the shard out with OST
//     submission batching: adjacent extents of each segment are coalesced
//     (mpi::normalizeOverlapping) into one pwrite per maximal run.
//
// Crash tolerance reuses the TCIO machinery: each put is journaled
// (tcio/journal WAL) *before* it is acknowledged, so a delegate death loses
// no acknowledged byte — survivors adopt the orphaned shard and replay the
// journal, while clients resubmit whatever was never acknowledged.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/fault.h"
#include "common/types.h"
#include "delegate/protocol.h"
#include "delegate/session.h"
#include "fs/client.h"
#include "tcio/journal.h"

namespace tcio::delegate {

class Server {
 public:
  explicit Server(Session& session);

  /// Serves until the shutdown descriptor (or a scheduled fail-stop crash,
  /// which returns silently — the rank just goes quiet).
  void run();

  const core::TcioDelegateStats& stats() const { return stats_; }

 private:
  /// One admitted (or control) request waiting for service.
  struct Pending {
    RequestHeader h;
    std::vector<WireExtent> extents;
    std::string name;        // kOpen only
    std::int64_t frame = -1; // staging frame held by this request (-1 none)
    bool ready = true;       // kPut flips true when kPutData arrives
    int retries = 0;         // kPutRetry rounds already spent on this put
  };

  /// One digest the shard ledger holds — a *run* of `count` equal-length
  /// pieces at a constant `stride` from the keyed displacement (count == 1,
  /// stride == 0: a single extent). Mirrors File::digestLevel1's coalescing
  /// so fine-grained interleaved put streams (Fig. 5 patterns funneled
  /// through a delegate) don't cost one ledger entry per element. `crc`
  /// streams across the pieces in ascending order (integrity pipeline only).
  struct LedgerEntry {
    Bytes len = 0;             // bytes per piece
    std::uint32_t stride = 0;  // piece-to-piece displacement (0: single)
    std::uint32_t count = 1;   // pieces in the run
    std::uint32_t crc = 0;     // streamed across the pieces
  };

  /// Per-segment shard buffer (the delegate-owned slice of level 2).
  struct SegBuf {
    std::vector<std::byte> data;
    std::vector<Extent> extents;   // raw dirty extents, merged at drain
    std::int64_t raw_extents = 0;  // pre-merge count (batching stats)
    bool loaded = false;           // clean bytes faulted in from the FS
    /// Verified per-extent digests keyed by displacement; last writer wins
    /// (overlapped entries are dropped on insert). Empty with integrity off.
    std::map<Offset, LedgerEntry> ledger;
  };

  struct FileState {
    std::string name;
    fs::FsFile fsfile;
    std::unique_ptr<core::Journal> journal;
    std::map<SegmentId, SegBuf> segs;
    std::int64_t opens = 0;
    std::int64_t closes = 0;
    /// (client, seq) pairs whose kCloseDone is deferred until the drain.
    std::vector<std::pair<int, std::int64_t>> closers;
    bool drained = false;
  };

  // Arrival side.
  void drainArrivals(bool block);
  void handleArrival(const std::byte* buf, Bytes received);
  void admitOrReject(Pending p);
  void reply(int client, std::int64_t seq, ReplyKind kind,
             std::int64_t value = 0, std::int64_t value2 = 0,
             std::int32_t pad = 0);

  // Service side.
  bool hasServiceable() const;
  void serviceOne();
  void dispatch(Pending& p);
  void serveOpen(Pending& p);
  void servePut(Pending& p);
  void serveGet(Pending& p);
  void serveClose(Pending& p);
  void serveAdopt(Pending& p);
  void serveShutdown(Pending& p);
  void drainAndClose(FileState& f);
  void adoptShard(int dead);

  FileState& fileFor(std::uint64_t key);
  SegBuf& segBuf(FileState& f, SegmentId g);
  /// Faults the FS contents of segment `g` into `sb` (dirty bytes win).
  void loadSegment(FileState& f, SegmentId g, SegBuf& sb);
  std::byte* frameData(std::int64_t frame);
  void freeFrame(std::int64_t frame);
  [[noreturn]] void die();
  void crashPoint(CrashPoint point);
  /// Lazily registers the takeover remap for a segment this delegate serves
  /// but does not naturally own (checker integration).
  void noteAdoptedSegment(FileState& f, SegmentId g);

  // End-to-end integrity at the delegate (DESIGN.md §11).
  /// Records a verified extent digest; overlapped older entries are erased.
  void ledgerInsert(SegBuf& sb, Offset disp, Bytes len, std::uint32_t crc);
  /// Re-verifies every ledgered digest of `g`; on mismatch replays this
  /// delegate's WAL for the segment and re-verifies. Throws IntegrityError
  /// when no journal exists or the replayed bytes still mismatch.
  void verifySegment(FileState& f, SegmentId g, SegBuf& sb);
  /// Charges digest throughput (IntegrityConfig::checksum_bandwidth).
  void chargeChecksum(Bytes n);

  Session* s_;
  mpi::Comm* comm_;
  fs::FsClient client_;
  std::unique_ptr<CrashPlan> crash_plan_;
  std::unique_ptr<CorruptionPlan> corruption_;
  bool integrity_on_ = false;
  int me_;  // delegate index == session rank

  /// Agreed delegate deaths, oldest first. Replaying adopted WALs in death
  /// order keeps cascaded recovery deterministic: a record's re-appended
  /// copy (gen n+1) always lands after its original in every survivor's
  /// replay, so last-writer-wins resolves identically everywhere.
  std::vector<int> death_order_;
  /// Dead delegates whose journal this server has already replayed — the
  /// chain scan in serveAdopt() is re-entrant across agreement rounds.
  std::set<int> my_adopted_;
  std::map<std::uint64_t, FileState> files_;
  std::map<int, std::deque<Pending>> queues_;
  std::int64_t data_queued_ = 0;
  std::vector<std::int64_t> free_frames_;
  int rr_next_ = 0;  // round-robin cursor (client rank)
  bool shutdown_ = false;
  core::TcioDelegateStats stats_;
};

}  // namespace tcio::delegate
