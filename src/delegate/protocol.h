// Wire protocol of the I/O delegate request-queue server (DESIGN.md §10).
//
// Delegates and clients talk over two reserved user tags on the session's
// full communicator: descriptor messages (client -> delegate) on kReqTag and
// replies (delegate -> client) on kRepTag. Descriptors are small typed
// messages — a POD header, an extent list, and (for open) the file name —
// while bulk payload never rides the two-sided path: an admitted data
// request is assigned a staging *frame* in the delegate's RMA window and the
// payload moves with one passive-target put/get epoch. That split is what
// lets a delegate admit-or-reject thousands of clients per virtual second
// without copying a byte for the rejected ones.
#pragma once

#include <cstdint>
#include <string>

#include "common/types.h"
#include "tcio/config.h"

namespace tcio::delegate {

/// Client -> delegate descriptors.
inline constexpr int kReqTag = 7601;
/// Delegate -> client replies.
inline constexpr int kRepTag = 7602;
/// Client -> node-leader staged-write funnel (forwarding mode).
inline constexpr int kFunnelTag = 7603;

enum class Op : std::int32_t {
  kOpen = 1,   // open `name` at this delegate (aux = fs::OpenFlags)
  kPut = 2,    // write extents of one segment; payload follows via RMA
  kPutData = 3,  // payload is staged in the granted frame — service it
  kGet = 4,    // read extents of one segment into a frame
  kGetAck = 5,   // client copied the frame out — free it
  kFlush = 6,  // per-client queue barrier: reply once my earlier work is done
  kClose = 7,  // close; the last close drains the shard and answers everyone
  kAdopt = 8,  // dead-delegate verdict: extents[i].seg list the dead indices
  kShutdown = 9,  // session teardown (client leader only)
};

enum class ReplyKind : std::int32_t {
  kAccepted = 1,  // admitted; value = staging frame index
  kBusy = 2,      // admission refused -> DelegateBusyError at the client
  kOpenDone = 3,
  kPutDone = 4,
  kGetData = 5,   // payload staged in the frame; value = payload bytes
  kFlushDone = 6,
  kCloseDone = 7,  // value = delegate-local max written file extent
  kAdoptDone = 8,
  kShutdownDone = 9,  // a TcioDelegateStats blob follows the header
  kError = 10,        // value = mpi::CapturedError code; message text follows
  kPutRetry = 11,     // frame CRC mismatch on arrival; re-stage the payload
};

/// One in-segment byte range [begin, end) of global segment `seg`. With the
/// integrity pipeline on (TcioConfig::integrity) a put extent also carries
/// the CRC32 of its payload bytes, computed at client staging time, so the
/// delegate can verify the RMA frame crossing before it copies a byte.
struct WireExtent {
  std::int64_t seg = 0;
  std::int64_t begin = 0;
  std::int64_t end = 0;
  std::uint32_t crc = 0;
  std::uint32_t has_crc = 0;  // 1 = `crc` covers [begin, end)'s payload
};

/// Fixed-size head of every descriptor message. `n_extents` WireExtents and
/// `name_len` name characters follow in the same message.
struct RequestHeader {
  Op op = Op::kOpen;
  std::int32_t client = -1;  // requester's rank on the session communicator
  std::int64_t seq = 0;      // per-client sequence number (echoed in replies)
  std::uint64_t file_key = 0;  // fileKey(name) for every op after kOpen
  std::int64_t payload_bytes = 0;
  std::int32_t n_extents = 0;
  std::int32_t name_len = 0;
  std::int64_t aux = 0;  // kOpen: fs::OpenFlags
};

/// Fixed-size head of every reply. kShutdownDone appends a TcioDelegateStats
/// blob; kError appends `value2` bytes of message text.
struct ReplyMsg {
  ReplyKind kind = ReplyKind::kError;
  std::int32_t pad = 0;
  std::int64_t seq = 0;
  std::int64_t value = 0;
  std::int64_t value2 = 0;
};

/// FNV-1a of the file name: the session-wide key every post-open descriptor
/// carries instead of the name string.
inline std::uint64_t fileKey(const std::string& name) {
  std::uint64_t h = 1469598103934665603ULL;
  for (const char c : name) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

/// Upper bound of one descriptor message given the config (recv capacity).
inline Bytes maxRequestBytes(const core::TcioConfig& cfg) {
  return static_cast<Bytes>(sizeof(RequestHeader)) +
         cfg.delegate.max_wire_extents *
             static_cast<Bytes>(sizeof(WireExtent)) +
         256;
}

/// Upper bound of one reply message (header + stats blob or error text;
/// senders truncate to fit).
inline Bytes maxReplyBytes() {
  return static_cast<Bytes>(sizeof(ReplyMsg)) + 512;
}

}  // namespace tcio::delegate
