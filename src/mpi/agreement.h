// Collective error agreement.
//
// A fault that strikes one rank inside a collective I/O phase must not leave
// the job half-alive: if rank 3 aborts with an OST error while everyone else
// proceeds into the next barrier, the survivors deadlock. The protocol here
// turns a *local* failure into a *collective* outcome — after an aligned
// agreement point, either every rank continues or every rank throws the same
// typed error.
//
// Usage pattern (see core::File for the call sites):
//
//   CapturedError err;
//   try { /* LOCAL work only — no collectives inside! */ }
//   catch (const std::exception& e) { err.capture(e); }
//   agreeOnError(comm, err);   // aligned point: all ranks call this
//
// The try block must not contain collective calls: a rank that skips a
// collective desynchronizes the per-rank collective tag counters and the
// survivors hang. Capture around local/one-sided work, agree at the next
// point where every rank is guaranteed to arrive.
#pragma once

#include <cstdint>
#include <string>

#include "mpi/comm.h"

namespace tcio::mpi {

/// A locally caught failure, classified for cross-rank reduction. Higher
/// codes win the max-reduce, so permanent failures dominate transient ones
/// when different ranks fail differently in the same phase.
struct CapturedError {
  enum Code : std::int32_t {
    kNone = 0,
    kGeneric = 1,         // tcio::Error or any std::exception
    kFs = 2,              // generic FsError
    kTransientFs = 3,     // retryable EIO
    kRetryExhausted = 4,  // transient fault survived every retry attempt
    kNoSpace = 5,         // ENOSPC
    kFileNotFound = 6,
    kOstFailed = 7,     // permanent OST death
    kRankCrashed = 8,   // fail-stop peer crash (liveness protocol verdict)
    kOutOfMemory = 9,   // budget exceeded — a config error
    kIntegrity = 10,    // unrepairable silent corruption — always wins
  };

  std::int32_t code = kNone;
  std::string what;

  bool set() const { return code != kNone; }
  /// Classifies `e` (most-derived error type first) and stores its message.
  void capture(const std::exception& e);
};

/// The agreement point: max-reduces the local error class over `comm`. When
/// no rank failed, returns immediately (one allreduce of a single int32).
/// Otherwise the lowest rank holding the winning class broadcasts its
/// message and *every* rank throws the same typed error — including ranks
/// that failed locally with a lesser error, so the collective state machine
/// stays in lockstep. Must be called by all ranks of `comm` at an aligned
/// program point.
void agreeOnError(Comm& comm, const CapturedError& local);

/// Rethrows the typed error for an agreed code. Exposed for layers that
/// piggyback the code on an existing collective (the node-aggregation round
/// loop) instead of paying agreeOnError's dedicated reduction.
[[noreturn]] void throwTyped(std::int32_t code, const std::string& what);

}  // namespace tcio::mpi
