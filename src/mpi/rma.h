// MPI-2 one-sided communication: windows, passive-target lock/unlock,
// put/get, and indexed (MPI_Type_indexed-style) coalesced transfers.
//
// TCIO's level-2 buffers are windows. The paper's key point — one-sided
// transfers let each process move data end-to-end without a matching call on
// the peer — is modeled faithfully: put/get charge the network between origin
// and target and copy real bytes into/out of the target's window memory, with
// no target-side rank participation. Passive-target synchronization uses a
// lock-request protocol (queueing at the target, grant/release control
// messages), so lock contention costs real simulated time.
#pragma once

#include <functional>
#include <span>
#include <type_traits>
#include <unordered_map>

#include "common/types.h"
#include "mpi/comm.h"

namespace tcio::mpi {

enum class LockType { kExclusive, kShared };

/// Per-rank handle on a collectively created RMA window.
class Window {
 public:
  /// Collective: every rank contributes `local_size` bytes of window memory.
  /// Must be called by all ranks in the same program order.
  static Window create(Comm& comm, Bytes local_size);

  /// This rank's window memory.
  std::byte* localData();
  Bytes localSize() const;

  /// Non-collective, local-only resize of this rank's window memory
  /// (existing bytes are preserved; growth is zero-filled). Legal because
  /// every RMA access bounds-checks the *target's* current size at access
  /// time inside the origin's atomic section — there is no cached remote
  /// size to invalidate. Callers that change the window's layout (TCIO's
  /// takeover-capacity growth) must themselves guarantee no peer addresses
  /// the old layout after the resize; TCIO does so by growing every
  /// survivor inside the same agreed recovery step.
  void resizeLocal(Bytes new_size);

  /// Acquire the (window, target) lock. Blocks until granted; charges the
  /// request/grant control round-trip.
  void lock(LockType type, Rank target);

  /// Release the lock; blocks until all epoch transfers completed at the
  /// target (MPI_Win_unlock semantics).
  void unlock(Rank target);

  /// Contiguous put/get inside a lock epoch on `target`.
  void put(Rank target, Offset target_disp, const void* src, Bytes n);
  void get(Rank target, Offset target_disp, void* dst, Bytes n);

  /// One coalesced transfer of several disjoint blocks (the paper's
  /// MPI_Type_indexed + single one-sided call optimization): one network
  /// message carrying the sum of the block sizes.
  struct PutBlock {
    Offset target_disp = 0;
    const void* src = nullptr;
    Bytes len = 0;
  };
  void putIndexed(Rank target, std::span<const PutBlock> blocks);

  struct GetBlock {
    Offset target_disp = 0;
    void* dst = nullptr;
    Bytes len = 0;
  };
  void getIndexed(Rank target, std::span<const GetBlock> blocks);

  /// MPI_Accumulate: element-wise combine of `count` values of T into the
  /// target window at byte displacement `target_disp`, inside a lock epoch.
  /// Unlike put, concurrent accumulates to the same location are
  /// well-defined element-wise (MPI semantics), which is why shared-lock
  /// reductions are legal.
  enum class AccumulateOp { kSum, kMax, kMin, kReplace };
  template <typename T>
  void accumulate(Rank target, Offset target_disp, const T* src,
                  std::int64_t count, AccumulateOp op) {
    static_assert(std::is_arithmetic_v<T>);
    accumulateBytes(target, target_disp, src,
                    count * static_cast<Bytes>(sizeof(T)),
                    [op, count](std::byte* acc_raw, const std::byte* in_raw) {
                      auto* acc = reinterpret_cast<T*>(acc_raw);
                      const auto* in = reinterpret_cast<const T*>(in_raw);
                      for (std::int64_t i = 0; i < count; ++i) {
                        switch (op) {
                          case AccumulateOp::kSum: acc[i] += in[i]; break;
                          case AccumulateOp::kMax:
                            acc[i] = acc[i] < in[i] ? in[i] : acc[i];
                            break;
                          case AccumulateOp::kMin:
                            acc[i] = in[i] < acc[i] ? in[i] : acc[i];
                            break;
                          case AccumulateOp::kReplace: acc[i] = in[i]; break;
                        }
                      }
                    });
  }

  /// Collective fence (MPI_Win_fence): barrier + epoch close. Provided for
  /// completeness and the one-sided-vs-fence ablation.
  void fence();

  // Stats for tests/benches.
  std::int64_t lockAcquisitions() const { return lock_count_; }
  std::int64_t oneSidedMessages() const { return rma_messages_; }

 private:
  Window(Comm& comm, detail::WinState& state) : comm_(&comm), state_(&state) {}

  void accumulateBytes(
      Rank target, Offset target_disp, const void* src, Bytes n,
      const std::function<void(std::byte*, const std::byte*)>& combine);

  void requireLocked(Rank target) const;
  detail::TargetLock& targetLock(Rank target);

  Comm* comm_;
  detail::WinState* state_;
  /// Targets this rank currently holds a lock on, with the max delivery time
  /// of epoch transfers (unlock must wait for them).
  struct Epoch {
    LockType type = LockType::kExclusive;
    SimTime last_delivery = 0;
  };
  std::unordered_map<Rank, Epoch> held_;
  std::int64_t lock_count_ = 0;
  std::int64_t rma_messages_ = 0;
};

}  // namespace tcio::mpi
