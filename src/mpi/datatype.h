// MPI derived datatypes with eager flattening.
//
// A `Datatype` describes a (possibly non-contiguous) byte layout. Internally
// every type is canonicalized at construction into a sorted, merged list of
// byte extents relative to offset 0 — the representation the I/O layers
// actually need (file views, request lists, RMA transfer plans). This keeps
// constructors honest MPI equivalents (contiguous / vector / indexed /
// hindexed / struct) while making `flatten()` a cheap copy.
//
// Conventions: lower bound is always 0 and extent is the last mapped byte
// (no LB/UB markers); `size()` is the payload byte count.
#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/error.h"
#include "common/types.h"

namespace tcio::mpi {

/// Immutable, cheaply copyable datatype handle (shared internals).
class Datatype {
 public:
  /// Default-constructed handle is invalid; assign from a factory.
  Datatype() = default;

  // -- Basic types ----------------------------------------------------------
  static Datatype byte() { return basic(1, "byte"); }
  static Datatype char8() { return basic(1, "char"); }
  static Datatype int16() { return basic(2, "int16"); }
  static Datatype int32() { return basic(4, "int32"); }
  static Datatype int64() { return basic(8, "int64"); }
  static Datatype float32() { return basic(4, "float32"); }
  static Datatype float64() { return basic(8, "float64"); }

  // -- Constructors mirroring MPI_Type_* ------------------------------------

  /// `count` consecutive copies of `base` (MPI_Type_contiguous).
  static Datatype contiguous(std::int64_t count, const Datatype& base);

  /// `count` blocks of `blocklen` base elements, block starts separated by
  /// `stride` base *elements* (MPI_Type_vector).
  static Datatype vector(std::int64_t count, std::int64_t blocklen,
                         std::int64_t stride, const Datatype& base);

  /// Blocks of base elements at element displacements (MPI_Type_indexed).
  static Datatype indexed(std::span<const std::int64_t> blocklens,
                          std::span<const std::int64_t> displs,
                          const Datatype& base);

  /// Blocks of raw bytes at byte displacements (MPI_Type_create_hindexed
  /// over MPI_BYTE).
  static Datatype hindexed(std::span<const Bytes> blocklens,
                           std::span<const Offset> byte_displs);

  /// Heterogeneous struct: per-field block length (elements of types[i]) at
  /// byte displacements (MPI_Type_create_struct).
  static Datatype structType(std::span<const std::int64_t> blocklens,
                             std::span<const Offset> byte_displs,
                             std::span<const Datatype> types);

  /// Marks the type ready for use (MPI_Type_commit). Factories return
  /// uncommitted types; using an uncommitted type in a file view throws.
  Datatype& commit() {
    state_->committed = true;
    return *this;
  }

  bool valid() const { return state_ != nullptr; }
  bool committed() const { return state_ != nullptr && state_->committed; }

  /// Payload bytes per instance of the type.
  Bytes size() const { return state_->size; }

  /// Distance from byte 0 to one-past the last mapped byte.
  Bytes extent() const { return state_->extent; }

  /// True when the payload occupies one contiguous run starting at 0.
  bool isContiguous() const {
    return state_->segments.size() == 1 && state_->segments[0].begin == 0;
  }

  /// Number of maximal contiguous runs.
  std::size_t segmentCount() const { return state_->segments.size(); }

  /// The canonical layout: sorted, merged byte extents relative to 0.
  const std::vector<Extent>& segments() const { return state_->segments; }

  /// Appends this type's extents, for `count` consecutive instances placed
  /// at byte offset `base` (instance i at base + i*extent()), to `out`.
  /// Adjacent runs are merged with the tail of `out`.
  void flatten(Offset base, std::int64_t count, std::vector<Extent>& out) const;

  const std::string& name() const { return state_->name; }

 private:
  struct State {
    std::vector<Extent> segments;  // sorted, non-overlapping, merged
    Bytes size = 0;
    Bytes extent = 0;
    bool committed = false;
    std::string name;
  };

  static Datatype basic(Bytes n, const char* name);
  static Datatype fromSegments(std::vector<Extent> segs, std::string name);

  std::shared_ptr<const State> stateChecked() const;
  std::shared_ptr<State> state_;
};

/// Normalizes a list of extents: sorts by begin, merges adjacent runs,
/// rejects overlap (datatype layouts may not map a byte twice).
std::vector<Extent> normalizeExtents(std::vector<Extent> extents);

/// Coverage union: sorts and merges possibly-overlapping extents (rewriting
/// the same byte is legal for access-pattern bookkeeping).
std::vector<Extent> normalizeOverlapping(std::vector<Extent> extents);

}  // namespace tcio::mpi
