#include "mpi/runtime.h"

namespace tcio::mpi {

JobResult runJob(JobConfig cfg, const std::function<void(Comm&)>& body) {
  return runJob(std::move(cfg),
                [&body](Comm& comm, World&) { body(comm); });
}

JobResult runJob(JobConfig cfg,
                 const std::function<void(Comm&, World&)>& body) {
  cfg.net.num_ranks = cfg.num_ranks;
  sim::Engine::Config ecfg;
  ecfg.num_ranks = cfg.num_ranks;
  ecfg.seed = cfg.seed;
  sim::Engine engine(ecfg);
  net::Network network(cfg.net);
  World world(engine, network, cfg.mpi);
  if (cfg.memory_budget_per_rank > 0) {
    for (Rank r = 0; r < cfg.num_ranks; ++r) {
      world.memory(r).setBudget(cfg.memory_budget_per_rank);
    }
  }
  engine.run([&](sim::Proc& proc) {
    Comm comm(world, proc);
    body(comm, world);
  });
  JobResult res;
  res.makespan = engine.makespan();
  res.engine_events = engine.eventCount();
  res.network_messages = network.messageCount();
  res.network_bytes = network.bytesMoved();
  return res;
}

}  // namespace tcio::mpi
