#include "mpi/rma.h"

#include <algorithm>
#include <cstring>

namespace tcio::mpi {

namespace {

/// Grants as many queued requests as the lock state allows; `t` is the
/// virtual time the lock became available at the target. Must run inside an
/// atomic section of the granting rank.
void processQueueLocked(World& world, sim::Proc& p, detail::TargetLock& tl,
                        Rank world_target, SimTime t) {
  while (!tl.queue.empty()) {
    detail::LockRequest& head = *tl.queue.front();
    if (head.exclusive) {
      if (tl.exclusive_held || tl.shared_holders > 0) return;
      tl.exclusive_held = true;
      tl.holders.push_back(head.origin);
      const SimTime grant = std::max(t, head.arrived);
      const SimTime reply =
          world.network().control(grant, world_target, head.origin).delivered;
      p.complete(head.ev, reply);
      tl.queue.pop_front();
      return;  // exclusive blocks everything behind it
    }
    // Shared: grant the whole consecutive run of shared requests.
    if (tl.exclusive_held) return;
    ++tl.shared_holders;
    tl.holders.push_back(head.origin);
    const SimTime grant = std::max(t, head.arrived);
    const SimTime reply =
        world.network().control(grant, world_target, head.origin).delivered;
    p.complete(head.ev, reply);
    tl.queue.pop_front();
  }
}

}  // namespace

Window Window::create(Comm& comm, Bytes local_size) {
  TCIO_CHECK(local_size >= 0);
  // Window sizes may legitimately differ per rank; only the call position
  // is part of the matching signature.
  comm.checkCollective(check::CollOp::kWinCreate, -1, check::kUncheckedBytes,
                       "Window::create");
  const std::size_t seq = comm.nextWindowSeq();
  sim::Proc& p = comm.proc();
  detail::WinState* ws = nullptr;
  p.atomic([&] {
    ws = &comm.world().windowAt(comm.context(), seq, comm.size());
    ws->mem[static_cast<std::size_t>(comm.rank())].resize(
        static_cast<std::size_t>(local_size));
    ++ws->registered;
  });
  comm.memory().allocate(local_size, "RMA window (level-2 buffer)");
  comm.barrier();  // all ranks registered before any access
  return Window(comm, *ws);
}

std::byte* Window::localData() {
  return state_->mem[static_cast<std::size_t>(comm_->rank())].data();
}

Bytes Window::localSize() const {
  return static_cast<Bytes>(
      state_->mem[static_cast<std::size_t>(comm_->rank())].size());
}

void Window::resizeLocal(Bytes new_size) {
  TCIO_CHECK(new_size >= 0);
  const Bytes old_size = localSize();
  if (new_size == old_size) return;
  comm_->proc().atomic([&] {
    state_->mem[static_cast<std::size_t>(comm_->rank())].resize(
        static_cast<std::size_t>(new_size));
  });
  if (new_size > old_size) {
    comm_->memory().allocate(new_size - old_size, "RMA window growth");
  } else {
    comm_->memory().release(old_size - new_size);
  }
}

detail::TargetLock& Window::targetLock(Rank target) {
  TCIO_CHECK_MSG(target >= 0 && target < comm_->size(),
                 "lock target out of range");
  return state_->locks[static_cast<std::size_t>(target)];
}

void Window::lock(LockType type, Rank target) {
  TCIO_CHECK_MSG(held_.find(target) == held_.end(),
                 "lock already held on this target");
  sim::Proc& p = comm_->proc();
  World& world = comm_->world();
  check::Checker* ck = world.checker();
  const Rank tgt_world = comm_->worldRank(target);
  auto req = std::make_shared<detail::LockRequest>();
  req->origin = p.rank();  // world rank, for the grant reply
  req->exclusive = (type == LockType::kExclusive);
  p.atomic([&] {
    const SimTime arrived =
        world.network().control(p.now(), p.rank(), tgt_world).delivered +
        world.config().lock_processing;
    req->arrived = arrived;
    detail::TargetLock& tl = targetLock(target);
    const bool free_now =
        tl.queue.empty() && !tl.exclusive_held &&
        (!req->exclusive || tl.shared_holders == 0);
    if (free_now) {
      if (req->exclusive) {
        tl.exclusive_held = true;
      } else {
        ++tl.shared_holders;
      }
      tl.holders.push_back(p.rank());
      const SimTime reply =
          world.network().control(arrived, tgt_world, p.rank()).delivered;
      p.complete(req->ev, reply);
    } else {
      tl.queue.push_back(req);
      if (ck != nullptr) {
        // Wait-for edges: the current holders plus every request queued
        // ahead of ours. Re-evaluated at cycle-search time so a handoff
        // (holder unlocks, grant goes to an earlier request) never leaves a
        // stale edge.
        detail::TargetLock* tlp = &tl;
        ck->beginWait(p.rank(),
                      [tlp, req] {
                        std::vector<Rank> t = tlp->holders;
                        for (const auto& q : tlp->queue) {
                          if (q.get() == req.get()) break;
                          t.push_back(q->origin);
                        }
                        return t;
                      },
                      &req->ev, "MPI_Win_lock");
      }
    }
  });
  p.wait(req->ev, "MPI_Win_lock");
  if (ck != nullptr) {
    p.atomic([&] {
      ck->endWait(p.rank());
      ck->onEpochOpen(state_, p.rank(), tgt_world, req->exclusive,
                      "MPI_Win_lock");
    });
  }
  held_[target] = Epoch{type, 0.0};
  ++lock_count_;
}

void Window::unlock(Rank target) {
  auto it = held_.find(target);
  TCIO_CHECK_MSG(it != held_.end(), "unlock without a held lock");
  const Epoch epoch = it->second;
  held_.erase(it);
  sim::Proc& p = comm_->proc();
  World& world = comm_->world();
  check::Checker* ck = world.checker();
  const Rank tgt_world = comm_->worldRank(target);
  SimTime ack = 0;
  p.atomic([&] {
    // Close the checker epoch before any queued grant can open the next one
    // (the source-buffer CRC re-check runs here).
    if (ck != nullptr) {
      ck->onEpochClose(state_, p.rank(), tgt_world, "MPI_Win_unlock");
    }
    // MPI_Win_unlock returns after every epoch transfer completed at the
    // target; the release control message leaves after the last delivery.
    const SimTime t = std::max(p.now(), epoch.last_delivery);
    const SimTime release_arrived =
        world.network().control(t, p.rank(), tgt_world).delivered +
        world.config().lock_processing;
    detail::TargetLock& tl = targetLock(target);
    if (epoch.type == LockType::kExclusive) {
      TCIO_CHECK(tl.exclusive_held);
      tl.exclusive_held = false;
    } else {
      TCIO_CHECK(tl.shared_holders > 0);
      --tl.shared_holders;
    }
    const auto hit =
        std::find(tl.holders.begin(), tl.holders.end(), p.rank());
    TCIO_CHECK(hit != tl.holders.end());
    tl.holders.erase(hit);
    processQueueLocked(world, p, tl, tgt_world, release_arrived);
    ack = world.network()
              .control(release_arrived, tgt_world, p.rank())
              .delivered;
  });
  p.advanceTo(ack);
}

void Window::requireLocked(Rank target) const {
  if (held_.find(target) != held_.end()) return;
  if (check::Checker* ck = comm_->world().checker()) {
    ck->failOutsideEpoch(comm_->proc().rank(), comm_->worldRank(target),
                         "Window::requireLocked");
  }
  TCIO_CHECK_MSG(false, "one-sided access outside a lock epoch");
}

void Window::put(Rank target, Offset target_disp, const void* src, Bytes n) {
  const PutBlock b{target_disp, src, n};
  putIndexed(target, std::span<const PutBlock>(&b, 1));
}

void Window::get(Rank target, Offset target_disp, void* dst, Bytes n) {
  const GetBlock b{target_disp, dst, n};
  getIndexed(target, std::span<const GetBlock>(&b, 1));
}

void Window::putIndexed(Rank target, std::span<const PutBlock> blocks) {
  requireLocked(target);
  sim::Proc& p = comm_->proc();
  World& world = comm_->world();
  Bytes total = 0;
  for (const PutBlock& b : blocks) total += b.len;
  comm_->chargeCopy(total);  // datatype pack
  SimTime free_at = 0;
  p.atomic([&] {
    if (check::Checker* ck = world.checker()) {
      std::vector<check::Checker::PutBlockRef> refs;
      refs.reserve(blocks.size());
      for (const PutBlock& b : blocks) {
        refs.push_back({b.target_disp, b.len, b.src});
      }
      ck->onPut(state_, p.rank(), comm_->worldRank(target), refs, "MPI_Put");
    }
    const net::TransferTimes times = world.network().transfer(
        p.now(), p.rank(), comm_->worldRank(target), total, /*rdma=*/true);
    auto& mem = state_->mem[static_cast<std::size_t>(target)];
    for (const PutBlock& b : blocks) {
      TCIO_CHECK_MSG(b.target_disp >= 0 &&
                         b.target_disp + b.len <=
                             static_cast<Bytes>(mem.size()),
                     "put outside window bounds");
      if (b.len > 0) {
        std::memcpy(mem.data() + b.target_disp, b.src,
                    static_cast<std::size_t>(b.len));
      }
    }
    held_[target].last_delivery =
        std::max(held_[target].last_delivery, times.delivered);
    free_at = times.sender_free;
  });
  ++rma_messages_;
  p.advanceTo(free_at);
}

void Window::getIndexed(Rank target, std::span<const GetBlock> blocks) {
  requireLocked(target);
  sim::Proc& p = comm_->proc();
  World& world = comm_->world();
  Bytes total = 0;
  for (const GetBlock& b : blocks) total += b.len;
  SimTime delivered = 0;
  p.atomic([&] {
    // The get request travels to the target, then data streams back.
    const SimTime req_arrived =
        world.network()
            .control(p.now(), p.rank(), comm_->worldRank(target))
            .delivered;
    const net::TransferTimes times = world.network().transfer(
        req_arrived, comm_->worldRank(target), p.rank(), total, /*rdma=*/true);
    const auto& mem = state_->mem[static_cast<std::size_t>(target)];
    for (const GetBlock& b : blocks) {
      TCIO_CHECK_MSG(b.target_disp >= 0 &&
                         b.target_disp + b.len <=
                             static_cast<Bytes>(mem.size()),
                     "get outside window bounds");
      if (b.len > 0) {
        std::memcpy(b.dst, mem.data() + b.target_disp,
                    static_cast<std::size_t>(b.len));
      }
    }
    delivered = times.delivered;
  });
  ++rma_messages_;
  comm_->chargeCopy(total);  // datatype unpack
  p.advanceTo(delivered);
}

void Window::accumulateBytes(
    Rank target, Offset target_disp, const void* src, Bytes n,
    const std::function<void(std::byte*, const std::byte*)>& combine) {
  requireLocked(target);
  sim::Proc& p = comm_->proc();
  World& world = comm_->world();
  comm_->chargeCopy(n);  // pack + target-side combine cost
  SimTime free_at = 0;
  p.atomic([&] {
    const net::TransferTimes times = world.network().transfer(
        p.now(), p.rank(), comm_->worldRank(target), n, /*rdma=*/true);
    auto& mem = state_->mem[static_cast<std::size_t>(target)];
    TCIO_CHECK_MSG(target_disp >= 0 &&
                       target_disp + n <= static_cast<Bytes>(mem.size()),
                   "accumulate outside window bounds");
    combine(mem.data() + target_disp, static_cast<const std::byte*>(src));
    held_[target].last_delivery =
        std::max(held_[target].last_delivery, times.delivered);
    free_at = times.sender_free;
  });
  ++rma_messages_;
  p.advanceTo(free_at);
}

void Window::fence() {
  TCIO_CHECK_MSG(held_.empty(), "fence with passive locks held");
  comm_->barrier();
}

}  // namespace tcio::mpi
