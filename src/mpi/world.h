// Shared state of the simulated MPI job: mailboxes, RMA windows, per-rank
// memory budgets, and the network the job runs on.
//
// One `World` exists per simulated job. All mutation happens inside
// Proc::atomic() sections (enforced by the engine's active-rank discipline).
#pragma once

#include <cstddef>
#include <deque>
#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "check/checker.h"
#include "common/memory_tracker.h"
#include "common/types.h"
#include "net/network.h"
#include "sim/engine.h"
#include "sim/trace.h"

namespace tcio::mpi {

/// Wildcards for point-to-point matching (MPI_ANY_SOURCE / MPI_ANY_TAG).
constexpr Rank kAnySource = -1;
constexpr int kAnyTag = -1;

/// Tags >= kInternalTagBase are reserved for collectives and window setup.
constexpr int kInternalTagBase = 1 << 28;

/// Cost knobs of the MPI layer itself (on top of the raw network).
struct MpiConfig {
  /// Bandwidth of local pack/unpack and buffer copies, bytes/s.
  double memcpy_bandwidth = 6.0e9;
  /// CPU time to process a lock/unlock request at the target.
  SimTime lock_processing = 0.5e-6;
};

namespace detail {

/// A message that arrived before a matching receive was posted.
struct Envelope {
  Rank src = -1;  // rank within the communicator's group
  int tag = 0;
  int context = 0;  // communicator context id — isolates communicators
  std::vector<std::byte> data;
  SimTime delivered = 0;
};

/// A receive posted before its message arrived.
struct PendingRecv {
  Rank want_src = kAnySource;
  int want_tag = kAnyTag;
  int context = 0;
  std::byte* buf = nullptr;
  Bytes capacity = 0;
  // Filled by the matching send:
  Rank src = -1;
  int tag = 0;
  Bytes received = 0;
  sim::Event ev;
};

struct Mailbox {
  std::deque<Envelope> unexpected;
  std::deque<std::shared_ptr<PendingRecv>> posted;
};

/// One exclusive/shared lock queue per (window, target rank).
struct LockRequest {
  Rank origin = -1;
  bool exclusive = false;
  SimTime arrived = 0;
  sim::Event ev;
};

struct TargetLock {
  int shared_holders = 0;
  bool exclusive_held = false;
  std::deque<std::shared_ptr<LockRequest>> queue;
  /// World ranks currently granted this lock (maintained for the checker's
  /// wait-for-graph edges; cheap enough to track unconditionally).
  std::vector<Rank> holders;
};

/// Shared state of one RMA window across all ranks.
struct WinState {
  std::vector<std::vector<std::byte>> mem;  // per rank
  std::vector<TargetLock> locks;            // per target rank
  int registered = 0;                        // ranks that completed create
};

}  // namespace detail

/// Shared state container. Construct once, then hand to per-rank `Comm`s.
class World {
 public:
  World(sim::Engine& engine, net::Network& network, MpiConfig cfg = {})
      : engine_(engine),
        network_(network),
        cfg_(cfg),
        mailboxes_(static_cast<std::size_t>(engine.numRanks())),
        memory_(static_cast<std::size_t>(engine.numRanks())) {
    if (check::Checker::enabled()) {
      checker_ = std::make_unique<check::Checker>(engine.numRanks());
    }
  }

  World(const World&) = delete;
  World& operator=(const World&) = delete;

  sim::Engine& engine() { return engine_; }
  net::Network& network() { return network_; }
  const MpiConfig& config() const { return cfg_; }
  int numRanks() const { return engine_.numRanks(); }

  detail::Mailbox& mailbox(Rank dst) {
    return mailboxes_[static_cast<std::size_t>(dst)];
  }

  /// Per-rank simulated memory budget (unlimited unless a bench sets one).
  MemoryTracker& memory(Rank r) { return memory_[static_cast<std::size_t>(r)]; }

  /// Window registry: windows are created collectively in program order
  /// within a communicator, so (context, seq) identifies one window across
  /// its group. `group_size` ranks contribute memory.
  detail::WinState& windowAt(int context, std::size_t seq, int group_size) {
    auto& slot = windows_[{context, seq}];
    if (slot == nullptr) {
      slot = std::make_unique<detail::WinState>();
      slot->mem.resize(static_cast<std::size_t>(group_size));
      slot->locks.resize(static_cast<std::size_t>(group_size));
    }
    return *slot;
  }

  /// Allocates `n` fresh communicator context ids (called by one rank of a
  /// splitting communicator inside an atomic section; the value is then
  /// broadcast to the group).
  int allocateContexts(int n) {
    const int base = next_context_;
    next_context_ += n;
    return base;
  }

  /// Optional event trace shared by all layers.
  sim::Trace& trace() { return trace_; }

  /// Runtime correctness checker; null unless TCIO_CHECK is enabled. Every
  /// hook call is guarded by this null check, so the disabled cost is one
  /// load + branch per call site.
  check::Checker* checker() { return checker_.get(); }

 private:
  sim::Engine& engine_;
  net::Network& network_;
  MpiConfig cfg_;
  std::vector<detail::Mailbox> mailboxes_;
  std::vector<MemoryTracker> memory_;
  std::map<std::pair<int, std::size_t>, std::unique_ptr<detail::WinState>>
      windows_;
  int next_context_ = 1;  // 0 is COMM_WORLD
  sim::Trace trace_;
  std::unique_ptr<check::Checker> checker_;
};

}  // namespace tcio::mpi
