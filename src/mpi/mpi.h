// Umbrella header for the simulated MPI substrate.
#pragma once

#include "mpi/comm.h"      // IWYU pragma: export
#include "mpi/datatype.h"  // IWYU pragma: export
#include "mpi/request.h"   // IWYU pragma: export
#include "mpi/rma.h"       // IWYU pragma: export
#include "mpi/runtime.h"   // IWYU pragma: export
#include "mpi/world.h"     // IWYU pragma: export
