#include "mpi/comm.h"

#include <algorithm>
#include <cstring>
#include <tuple>

namespace tcio::mpi {

namespace {

bool matches(const detail::PendingRecv& pr, Rank src, int tag, int context) {
  return pr.context == context &&
         (pr.want_src == kAnySource || pr.want_src == src) &&
         (pr.want_tag == kAnyTag || pr.want_tag == tag);
}

}  // namespace

// -- Point-to-point (core logic runs inside atomic sections) -----------------

namespace {

/// Send logic; requires the caller to be inside an atomic section.
/// `src` is the sender's rank within the communicator identified by
/// `context`; `world_src`/`world_dst` address the physical network.
/// Returns the time the sender's CPU is free.
SimTime sendLocked(World& world, sim::Proc& proc, int context, Rank src,
                   Rank world_src, Rank world_dst, int tag, const void* buf,
                   Bytes n) {
  TCIO_CHECK_MSG(world_dst >= 0 && world_dst < world.numRanks(),
                 "send to invalid rank");
  TCIO_CHECK(n >= 0);
  const net::TransferTimes times =
      world.network().transfer(proc.now(), world_src, world_dst, n);
  detail::Mailbox& mb = world.mailbox(world_dst);
  // Try to match an already-posted receive (FIFO order, MPI matching rules).
  for (auto it = mb.posted.begin(); it != mb.posted.end(); ++it) {
    detail::PendingRecv& pr = **it;
    if (!matches(pr, src, tag, context)) continue;
    TCIO_CHECK_MSG(n <= pr.capacity, "message truncation in recv");
    if (n > 0) std::memcpy(pr.buf, buf, static_cast<std::size_t>(n));
    pr.src = src;
    pr.tag = tag;
    pr.received = n;
    proc.complete(pr.ev, times.delivered);
    mb.posted.erase(it);
    return times.sender_free;
  }
  // No receiver yet: stash as an unexpected message.
  detail::Envelope env;
  env.src = src;
  env.tag = tag;
  env.context = context;
  env.delivered = times.delivered;
  if (n > 0) {
    env.data.assign(static_cast<const std::byte*>(buf),
                    static_cast<const std::byte*>(buf) + n);
  }
  mb.unexpected.push_back(std::move(env));
  return times.sender_free;
}

/// Receive-posting logic; requires an atomic section. Returns true when an
/// unexpected message matched immediately (pr filled, event completed).
bool postRecvLocked(World& world, sim::Proc& proc, Rank world_dst,
                    std::shared_ptr<detail::PendingRecv> pr) {
  detail::Mailbox& mb = world.mailbox(world_dst);
  for (auto it = mb.unexpected.begin(); it != mb.unexpected.end(); ++it) {
    if (it->context != pr->context ||
        (pr->want_src != kAnySource && pr->want_src != it->src) ||
        (pr->want_tag != kAnyTag && pr->want_tag != it->tag)) {
      continue;
    }
    const Bytes n = static_cast<Bytes>(it->data.size());
    TCIO_CHECK_MSG(n <= pr->capacity, "message truncation in recv");
    if (n > 0) std::memcpy(pr->buf, it->data.data(), it->data.size());
    pr->src = it->src;
    pr->tag = it->tag;
    pr->received = n;
    proc.complete(pr->ev, it->delivered);
    mb.unexpected.erase(it);
    return true;
  }
  mb.posted.push_back(std::move(pr));
  return false;
}

}  // namespace

void Comm::send(const void* buf, Bytes n, Rank dst, int tag) {
  sim::Proc& p = *proc_;
  const SimTime free_at = p.atomic([&] {
    return sendLocked(*world_, p, context_, rank_, p.rank(), worldRank(dst),
                      tag, buf, n);
  });
  p.advanceTo(free_at);
}

RecvStatus Comm::recv(void* buf, Bytes capacity, Rank src, int tag) {
  Request req = irecv(buf, capacity, src, tag);
  return wait(req);
}

Request Comm::isend(const void* buf, Bytes n, Rank dst, int tag) {
  sim::Proc& p = *proc_;
  auto st = std::make_shared<detail::ReqState>();
  p.atomic([&] {
    const SimTime free_at = sendLocked(*world_, p, context_, rank_, p.rank(),
                                       worldRank(dst), tag, buf, n);
    p.complete(st->ev, free_at);
  });
  return Request(std::move(st));
}

Request Comm::irecv(void* buf, Bytes capacity, Rank src, int tag) {
  sim::Proc& p = *proc_;
  auto st = std::make_shared<detail::ReqState>();
  st->recv = std::make_shared<detail::PendingRecv>();
  st->recv->want_src = src;
  st->recv->want_tag = tag;
  st->recv->context = context_;
  st->recv->buf = static_cast<std::byte*>(buf);
  st->recv->capacity = capacity;
  auto& pr_ev_owner = st->recv;  // keep alive until matched
  p.atomic([&] {
    if (postRecvLocked(*world_, p, p.rank(), pr_ev_owner)) {
      p.complete(st->ev, pr_ev_owner->ev.time());
    }
  });
  return Request(std::move(st));
}

bool Comm::recvUntil(void* buf, Bytes capacity, Rank src, int tag,
                     SimTime deadline, SimTime poll, RecvStatus* out) {
  TCIO_CHECK_MSG(poll > 0, "recvUntil needs a positive poll quantum");
  sim::Proc& p = *proc_;
  auto pr = std::make_shared<detail::PendingRecv>();
  pr->want_src = src;
  pr->want_tag = tag;
  pr->context = context_;
  pr->buf = static_cast<std::byte*>(buf);
  pr->capacity = capacity;
  p.atomic([&] { postRecvLocked(*world_, p, p.rank(), pr); });
  // Poll the completion event in virtual-time steps instead of blocking:
  // a blocking wait on a message from a crashed rank would trip the
  // engine's deadlock detector; this failure-detector loop gives up at the
  // deadline instead. Polls are atomic sections, so the schedule stays in
  // global virtual-time order (deterministic).
  for (;;) {
    const bool ready = p.atomic([&] { return pr->ev.ready(); });
    if (ready) {
      p.advanceTo(pr->ev.time());
      if (out != nullptr) *out = {pr->src, pr->tag, pr->received};
      return true;
    }
    if (p.now() >= deadline) break;
    p.advance(std::min(poll, deadline - p.now()));
  }
  // Timed out. Cancel the posted receive under the same atomic that takes
  // the final look — otherwise a late sender could memcpy into a buffer the
  // caller is about to abandon.
  const bool matched_late = p.atomic([&] {
    if (pr->ev.ready()) return true;
    detail::Mailbox& mb = world_->mailbox(p.rank());
    for (auto it = mb.posted.begin(); it != mb.posted.end(); ++it) {
      if (it->get() == pr.get()) {
        mb.posted.erase(it);
        return false;
      }
    }
    TCIO_CHECK_MSG(false, "recvUntil: pending receive neither ready nor posted");
    return false;
  });
  if (matched_late) {
    p.advanceTo(pr->ev.time());
    if (out != nullptr) *out = {pr->src, pr->tag, pr->received};
    return true;
  }
  return false;
}

RecvStatus Comm::wait(Request& req) { return waitInternal(req, true); }

RecvStatus Comm::waitInternal(Request& req, bool track_wait) {
  TCIO_CHECK_MSG(req.valid(), "wait on an empty Request");
  detail::ReqState& st = *req.state_;
  if (st.recv != nullptr) {
    // Wait on the underlying receive event (the request-level event is only
    // completed for immediate matches).
    check::Checker* ck = world_->checker();
    const bool track =
        track_wait && ck != nullptr && st.recv->want_src != kAnySource;
    if (track) {
      // Sends are eager/buffered, so a blocked receive means the peer never
      // sent: a cycle of blocked receives is a true deadlock.
      const Rank target = worldRank(st.recv->want_src);
      proc_->atomic([&] {
        // The closure keeps the receive state alive so the checker's stored
        // event pointer can never dangle.
        ck->beginWait(proc_->rank(),
                      [target, keep = st.recv] {
                        return std::vector<Rank>{target};
                      },
                      &st.recv->ev, "MPI_Recv");
      });
    }
    proc_->wait(st.recv->ev, "MPI_Recv");
    if (track) {
      proc_->atomic([&] { ck->endWait(proc_->rank()); });
    }
    RecvStatus status{st.recv->src, st.recv->tag, st.recv->received};
    req.state_.reset();
    return status;
  }
  proc_->wait(st.ev, "MPI_Send");
  req.state_.reset();
  return {};
}

void Comm::waitAll(std::span<Request> reqs) {
  // Model the whole set as ONE AND-wait in the deadlock checker: the rank is
  // blocked only while some leg is pending, and only pending legs are
  // wait-for edges. Registering each wait() separately would claim we block
  // on legs whose message already arrived and false-cycle e.g. a client
  // blocked on a delegate reply plus an already-satisfied collective leg.
  check::Checker* ck = world_->checker();
  bool tracked = false;
  if (ck != nullptr) {
    std::vector<check::Checker::WaitEdge> edges;
    for (Request& r : reqs) {
      if (!r.valid() || r.state_->recv == nullptr) continue;
      const auto& pr = r.state_->recv;
      if (pr->want_src == kAnySource) continue;
      edges.push_back({worldRank(pr->want_src), &pr->ev, pr});
    }
    if (!edges.empty()) {
      tracked = true;
      proc_->atomic([&] {
        ck->beginWaitAll(proc_->rank(), std::move(edges), "MPI_Waitall");
      });
    }
  }
  for (Request& r : reqs) {
    if (r.valid()) waitInternal(r, false);
  }
  if (tracked) {
    proc_->atomic([&] { ck->endWait(proc_->rank()); });
  }
}

// -- Communicator management --------------------------------------------------

Comm Comm::split(int color, int key) {
  const int P = size();
  // Gather (color, key) from every rank of this communicator.
  struct Entry {
    int color;
    int key;
    Rank rank;  // rank within the parent communicator
  };
  const Entry mine{color, key, rank_};
  std::vector<Entry> all(static_cast<std::size_t>(P));
  allgather(&mine, sizeof(Entry), all.data());
  // Distinct colors, sorted, define the new context ids deterministically.
  std::vector<int> colors;
  for (const Entry& e : all) colors.push_back(e.color);
  std::sort(colors.begin(), colors.end());
  colors.erase(std::unique(colors.begin(), colors.end()), colors.end());
  // Rank 0 of the parent allocates one context per color and broadcasts.
  int base = 0;
  if (rank_ == 0) {
    proc_->atomic([&] {
      base = world_->allocateContexts(static_cast<int>(colors.size()));
    });
  }
  bcast(&base, sizeof(base), 0);
  const auto color_index = static_cast<int>(
      std::lower_bound(colors.begin(), colors.end(), color) - colors.begin());
  // Members of my color, ordered by (key, parent rank), as world ranks.
  std::vector<Entry> members;
  for (const Entry& e : all) {
    if (e.color == color) members.push_back(e);
  }
  std::sort(members.begin(), members.end(), [](const Entry& a, const Entry& b) {
    return std::tie(a.key, a.rank) < std::tie(b.key, b.rank);
  });
  std::vector<Rank> group;
  Rank my_new_rank = -1;
  for (std::size_t i = 0; i < members.size(); ++i) {
    group.push_back(worldRank(members[i].rank));
    if (members[i].rank == rank_) my_new_rank = static_cast<Rank>(i);
  }
  TCIO_CHECK(my_new_rank >= 0);
  if (check::Checker* ck = world_->checker()) {
    proc_->atomic([&] {
      ck->registerComm(base + color_index, static_cast<int>(members.size()));
    });
  }
  return Comm(*world_, *proc_, std::move(group), my_new_rank,
              base + color_index);
}

Comm Comm::shrink(const std::vector<Rank>& survivors, int context) const {
  TCIO_CHECK_MSG(!survivors.empty(), "shrink to an empty communicator");
  std::vector<Rank> group;
  group.reserve(survivors.size());
  Rank my_new_rank = -1;
  Rank prev = -1;
  for (std::size_t i = 0; i < survivors.size(); ++i) {
    const Rank r = survivors[i];
    TCIO_CHECK_MSG(r > prev && r >= 0 && r < size_,
                   "shrink survivors must be ascending ranks of this comm");
    prev = r;
    group.push_back(worldRank(r));
    if (r == rank_) my_new_rank = static_cast<Rank>(i);
  }
  TCIO_CHECK_MSG(my_new_rank >= 0, "shrink caller must be a survivor");
  if (check::Checker* ck = world_->checker()) {
    proc_->atomic([&] {
      ck->registerComm(context, static_cast<int>(group.size()));
    });
  }
  return Comm(*world_, *proc_, std::move(group), my_new_rank, context);
}

int Comm::nodeOf(Rank r) const {
  return world_->network().nodeOf(worldRank(r));
}

Comm Comm::splitByNode(int key) { return split(nodeOf(rank_), key); }

// -- Collectives --------------------------------------------------------------

void Comm::checkCollective(check::CollOp op, Rank root, Bytes bytes,
                           const char* site) {
  check::Checker* ck = world_->checker();
  if (ck == nullptr) return;
  proc_->atomic([&] {
    ck->onCollective(context_, rank_, proc_->rank(), op, root, bytes, site);
  });
}

void Comm::barrier() {
  checkCollective(check::CollOp::kBarrier, -1, check::kUncheckedBytes,
                  "Comm::barrier");
  const int P = size();
  const int tag = nextCollectiveTag();
  int round = 0;
  for (int step = 1; step < P; step <<= 1, ++round) {
    const Rank dst = (rank_ + step) % P;
    const Rank src = (rank_ - step % P + P) % P;
    Request s = isend(nullptr, 0, dst, tag + round);
    recv(nullptr, 0, src, tag + round);
    wait(s);
  }
}

void Comm::bcast(void* buf, Bytes n, Rank root) {
  checkCollective(check::CollOp::kBcast, root, n, "Comm::bcast");
  const int P = size();
  if (P == 1) return;
  const int tag = nextCollectiveTag();
  const int vr = (rank_ - root + P) % P;
  int mask = 1;
  while (mask < P) {
    if ((vr & mask) != 0) {
      const Rank src = ((vr - mask) + root) % P;
      recv(buf, n, src, tag);
      break;
    }
    mask <<= 1;
  }
  mask >>= 1;
  while (mask > 0) {
    if (vr + mask < P) {
      const Rank dst = ((vr + mask) + root) % P;
      send(buf, n, dst, tag);
    }
    mask >>= 1;
  }
}

void Comm::reduceBytes(void* data, Bytes n,
                       const std::function<void(void*, const void*)>& combine,
                       Rank root) {
  checkCollective(check::CollOp::kReduce, root, n, "Comm::reduce");
  const int P = size();
  if (P == 1) return;
  const int tag = nextCollectiveTag();
  std::vector<std::byte> scratch(static_cast<std::size_t>(n));
  // Binomial reduce along virtual ranks rooted at `root`.
  const int vr = (rank_ - root + P) % P;
  int mask = 1;
  while (mask < P) {
    if ((vr & mask) == 0) {
      const int vpeer = vr | mask;
      if (vpeer < P) {
        recv(scratch.data(), n, (vpeer + root) % P, tag);
        combine(data, scratch.data());
        chargeCopy(n);
      }
    } else {
      const int vpeer = vr & ~mask;
      send(data, n, (vpeer + root) % P, tag);
      break;
    }
    mask <<= 1;
  }
}

void Comm::allreduceBytes(
    void* data, Bytes n,
    const std::function<void(void*, const void*)>& combine) {
  reduceBytes(data, n, combine, /*root=*/0);
  bcast(data, n, /*root=*/0);
}

void Comm::gather(const void* mine, Bytes per, void* out, Rank root) {
  checkCollective(check::CollOp::kGather, root, per, "Comm::gather");
  const int tag = nextCollectiveTag();
  if (rank_ == root) {
    auto* dst = static_cast<std::byte*>(out);
    std::memcpy(dst + static_cast<std::size_t>(rank_) * per, mine,
                static_cast<std::size_t>(per));
    chargeCopy(per);
    for (int r = 0; r < size(); ++r) {
      if (r == root) continue;
      recv(dst + static_cast<std::size_t>(r) * per, per, r, tag);
    }
  } else {
    send(mine, per, root, tag);
  }
}

void Comm::scatter(const void* in, Bytes per, void* mine, Rank root) {
  checkCollective(check::CollOp::kScatter, root, per, "Comm::scatter");
  const int tag = nextCollectiveTag();
  if (rank_ == root) {
    const auto* src = static_cast<const std::byte*>(in);
    std::vector<Request> reqs;
    for (int r = 0; r < size(); ++r) {
      if (r == root) continue;
      reqs.push_back(
          isend(src + static_cast<std::size_t>(r) * per, per, r, tag));
    }
    std::memcpy(mine, src + static_cast<std::size_t>(root) * per,
                static_cast<std::size_t>(per));
    chargeCopy(per);
    waitAll(reqs);
  } else {
    recv(mine, per, root, tag);
  }
}

RecvStatus Comm::sendrecv(const void* sendbuf, Bytes send_n, Rank dst,
                          int send_tag, void* recvbuf, Bytes recv_cap,
                          Rank src, int recv_tag) {
  Request s = isend(sendbuf, send_n, dst, send_tag);
  const RecvStatus st = recv(recvbuf, recv_cap, src, recv_tag);
  wait(s);
  return st;
}

void Comm::sendTyped(const void* buf, std::int64_t count,
                     const mpi::Datatype& type, Rank dst, int tag) {
  TCIO_CHECK_MSG(type.valid(), "sendTyped with invalid datatype");
  std::vector<Extent> layout;
  type.flatten(0, count, layout);
  std::vector<std::byte> packed;
  packed.reserve(static_cast<std::size_t>(count * type.size()));
  const auto* base = static_cast<const std::byte*>(buf);
  for (const Extent& e : layout) {
    packed.insert(packed.end(), base + e.begin, base + e.end);
  }
  chargeCopy(static_cast<Bytes>(packed.size()));
  send(packed.data(), static_cast<Bytes>(packed.size()), dst, tag);
}

RecvStatus Comm::recvTyped(void* buf, std::int64_t count,
                           const mpi::Datatype& type, Rank src, int tag) {
  TCIO_CHECK_MSG(type.valid(), "recvTyped with invalid datatype");
  std::vector<Extent> layout;
  type.flatten(0, count, layout);
  const Bytes total = count * type.size();
  std::vector<std::byte> packed(static_cast<std::size_t>(total));
  const RecvStatus st = recv(packed.data(), total, src, tag);
  TCIO_CHECK_MSG(st.count == total, "recvTyped: short message");
  auto* base = static_cast<std::byte*>(buf);
  Offset cursor = 0;
  for (const Extent& e : layout) {
    std::memcpy(base + e.begin, packed.data() + cursor,
                static_cast<std::size_t>(e.size()));
    cursor += e.size();
  }
  chargeCopy(total);
  return st;
}

void Comm::allgather(const void* mine, Bytes per, void* out) {
  checkCollective(check::CollOp::kAllgather, -1, per, "Comm::allgather");
  const int P = size();
  auto* dst = static_cast<std::byte*>(out);
  std::memcpy(dst + static_cast<std::size_t>(rank_) * per, mine,
              static_cast<std::size_t>(per));
  chargeCopy(per);
  if (P == 1) return;
  const int tag = nextCollectiveTag();
  const Rank right = (rank_ + 1) % P;
  const Rank left = (rank_ - 1 + P) % P;
  int cur = rank_;  // block we forward next
  for (int step = 0; step < P - 1; ++step) {
    const int incoming = (cur - 1 + P) % P;
    Request s = isend(dst + static_cast<std::size_t>(cur) * per, per, right,
                      tag + (step % 32));
    recv(dst + static_cast<std::size_t>(incoming) * per, per, left,
         tag + (step % 32));
    wait(s);
    cur = incoming;
  }
}

void Comm::allgatherv(const void* mine, Bytes n,
                      std::vector<std::vector<std::byte>>& out) {
  const int P = size();
  std::vector<Bytes> counts(static_cast<std::size_t>(P), 0);
  allgather(&n, sizeof(Bytes), counts.data());
  out.assign(static_cast<std::size_t>(P), {});
  for (int r = 0; r < P; ++r) {
    auto& buf = out[static_cast<std::size_t>(r)];
    buf.resize(static_cast<std::size_t>(counts[static_cast<std::size_t>(r)]));
    if (r == rank_ && n > 0) {
      std::memcpy(buf.data(), mine, static_cast<std::size_t>(n));
      chargeCopy(n);
    }
    if (!buf.empty()) bcast(buf.data(), static_cast<Bytes>(buf.size()), r);
  }
}

void Comm::alltoallv(const void* sendbuf, std::span<const Bytes> sendcounts,
                     std::span<const Offset> senddispls, void* recvbuf,
                     std::span<const Bytes> recvcounts,
                     std::span<const Offset> recvdispls) {
  // Per-peer counts legitimately differ across ranks; only the op kind and
  // call position are part of the matching signature.
  checkCollective(check::CollOp::kAlltoallv, -1, check::kUncheckedBytes,
                  "Comm::alltoallv");
  const int P = size();
  TCIO_CHECK(static_cast<int>(sendcounts.size()) == P);
  TCIO_CHECK(static_cast<int>(recvcounts.size()) == P);
  const auto* sbase = static_cast<const std::byte*>(sendbuf);
  auto* rbase = static_cast<std::byte*>(recvbuf);
  const int tag = nextCollectiveTag();
  sim::Proc& p = *proc_;

  // Self-exchange is a local copy.
  const auto self = static_cast<std::size_t>(rank_);
  if (sendcounts[self] > 0) {
    TCIO_CHECK(sendcounts[self] == recvcounts[self]);
    std::memcpy(rbase + recvdispls[self], sbase + senddispls[self],
                static_cast<std::size_t>(sendcounts[self]));
    chargeCopy(sendcounts[self]);
  }

  // Post every receive, then every send, in one atomic section each — this
  // is the synchronized burst the two-phase exchange creates in practice.
  std::vector<std::shared_ptr<detail::PendingRecv>> pending;
  pending.reserve(static_cast<std::size_t>(P));
  p.atomic([&] {
    for (int r = 0; r < P; ++r) {
      if (r == rank_ || recvcounts[static_cast<std::size_t>(r)] == 0) continue;
      auto pr = std::make_shared<detail::PendingRecv>();
      pr->want_src = r;
      pr->want_tag = tag;
      pr->context = context_;
      pr->buf = rbase + recvdispls[static_cast<std::size_t>(r)];
      pr->capacity = recvcounts[static_cast<std::size_t>(r)];
      if (!postRecvLocked(*world_, p, p.rank(), pr)) {
        // keep handle to wait on; matched ones are already complete
      }
      pending.push_back(std::move(pr));
    }
  });
  SimTime free_at = p.now();
  p.atomic([&] {
    for (int r = 0; r < P; ++r) {
      if (r == rank_ || sendcounts[static_cast<std::size_t>(r)] == 0) continue;
      const SimTime f = sendLocked(
          *world_, p, context_, rank_, p.rank(), worldRank(r), tag,
          sbase + senddispls[static_cast<std::size_t>(r)],
          sendcounts[static_cast<std::size_t>(r)]);
      free_at = std::max(free_at, f);
    }
  });
  p.advanceTo(free_at);
  check::Checker* ck = world_->checker();
  for (auto& pr : pending) {
    if (ck != nullptr) {
      const Rank target = worldRank(pr->want_src);
      p.atomic([&] {
        ck->beginWait(p.rank(),
                      [target, keep = pr] {
                        return std::vector<Rank>{target};
                      },
                      &pr->ev, "MPI_Alltoallv");
      });
    }
    p.wait(pr->ev, "MPI_Alltoallv");
    if (ck != nullptr) {
      p.atomic([&] { ck->endWait(p.rank()); });
    }
  }
}

}  // namespace tcio::mpi
