// Job launcher: wires Engine + Network + World together and runs an SPMD
// body, mirroring mpirun. Most tests, examples, and benches start here.
#pragma once

#include <functional>

#include "mpi/comm.h"
#include "mpi/world.h"
#include "net/network.h"
#include "sim/engine.h"

namespace tcio::mpi {

/// Aggregate configuration for a simulated job.
struct JobConfig {
  int num_ranks = 1;
  std::uint64_t seed = 1;
  net::NetworkConfig net;     // num_ranks is filled in automatically
  MpiConfig mpi;
  /// Per-rank memory budget; 0 = unlimited.
  Bytes memory_budget_per_rank = 0;
};

/// Result of a run, for benches.
struct JobResult {
  SimTime makespan = 0;
  std::int64_t engine_events = 0;
  std::int64_t network_messages = 0;
  Bytes network_bytes = 0;
};

/// Runs `body(comm)` on every rank of a fresh simulated job.
/// Exceptions thrown by any rank propagate to the caller.
JobResult runJob(JobConfig cfg, const std::function<void(Comm&)>& body);

/// Overload giving the body access to the World (for FS attachment etc.).
JobResult runJob(JobConfig cfg,
                 const std::function<void(Comm&, World&)>& body);

}  // namespace tcio::mpi
