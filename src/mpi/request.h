// Nonblocking-operation handles (MPI_Request analogue).
#pragma once

#include <memory>

#include "common/types.h"
#include "sim/engine.h"

namespace tcio::mpi {

/// Completion info of a receive (MPI_Status analogue).
struct RecvStatus {
  Rank source = -1;
  int tag = 0;
  Bytes count = 0;
};

namespace detail {
struct PendingRecv;

struct ReqState {
  sim::Event ev;
  /// Set for receives; null for sends.
  std::shared_ptr<PendingRecv> recv;
};
}  // namespace detail

/// Movable handle for an in-flight isend/irecv. `Comm::wait`/`waitAll`
/// complete it and (for receives) report the matched status.
class Request {
 public:
  Request() = default;

  bool valid() const { return state_ != nullptr; }

 private:
  friend class Comm;
  explicit Request(std::shared_ptr<detail::ReqState> st)
      : state_(std::move(st)) {}
  std::shared_ptr<detail::ReqState> state_;
};

}  // namespace tcio::mpi
