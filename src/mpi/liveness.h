// Liveness-tracking collective agreement (fail-stop failure detection).
//
// `agreeOnError` (agreement.h) assumes every rank keeps calling collectives;
// a fail-stop crash strands the survivors in the allreduce. This module
// generalizes the agreement point into an epoch'd two-round protocol with a
// virtual-time timeout, modeled on the eventual-consensus shape of
// ULFM's MPI_Comm_agree:
//
//   Round 1 (vote):    every rank sends its local error class to every peer
//                      and collects votes until `window` elapses on its own
//                      virtual clock. A peer whose vote never arrives is
//                      *suspected*.
//   Round 2 (verdict): every rank broadcasts its suspicion bitmap plus its
//                      local error; the union of all received suspicion sets
//                      is the agreed dead set. A live rank that finds itself
//                      in the union was too slow for the collective window —
//                      it self-fences (reports itself dead and withdraws) so
//                      the survivors' view stays consistent.
//
// Messages ride a reserved internal tag block (disjoint from collective
// tags), so stale traffic from a rank that died mid-collective can never
// alias a liveness message. Determinism: every send/receive/poll happens in
// global virtual-time order (Proc::atomic gating), so the same seed and
// crash schedule yield the same verdict on every run.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"
#include "mpi/agreement.h"
#include "mpi/comm.h"

namespace tcio::mpi {

/// Result of one liveness agreement epoch.
struct LivenessOutcome {
  /// Ranks of the agreement communicator declared dead this epoch
  /// (ascending). Empty when everyone showed up.
  std::vector<Rank> dead;
  /// True when *this* rank was declared dead by its peers (it missed the
  /// collective window but is actually alive). The caller must self-fence:
  /// stop participating in collectives on this communicator.
  bool self_dead = false;
  /// Max-reduced CapturedError::Code over every collected vote/verdict.
  std::int32_t code = CapturedError::kNone;
  /// Error message of the lowest rank holding the winning code.
  std::string what;

  /// Survivors of `comm_size` ranks after removing `dead` (ascending).
  std::vector<Rank> survivors(int comm_size) const;
};

/// One agreement epoch over `comm`. All *live* ranks of `comm` must call it
/// with the same `epoch`; crashed ranks are exactly the ones that don't.
/// `window` is the virtual-time budget each round waits for a peer before
/// suspecting it (must exceed the worst-case skew between ranks at the
/// agreement point); `poll` is the failure-detector poll quantum.
/// Suspicion sets are word-vector bitmaps, so any communicator size works;
/// verdict messages carry ceil(P/64) bitmap words after a fixed header.
LivenessOutcome agreeWithLiveness(Comm& comm, const CapturedError& local,
                                  int epoch, SimTime window, SimTime poll);

}  // namespace tcio::mpi
