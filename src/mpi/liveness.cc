#include "mpi/liveness.h"

#include <algorithm>
#include <cstring>

#include "common/error.h"
#include "mpi/world.h"

namespace tcio::mpi {

namespace {

/// Liveness tags live above the collective tag block (which tops out at
/// kInternalTagBase + 2^22 - 1): base + 2^23 + epoch*4 + round.
constexpr int kLivenessTagBase = kInternalTagBase + (1 << 23);

int livenessTag(int epoch, int round) {
  return kLivenessTagBase + (epoch % (1 << 20)) * 4 + round;
}

struct VoteMsg {
  std::int32_t epoch = 0;
  std::int32_t code = 0;
};

/// Fixed-size header of a verdict message; `words` 64-bit suspicion bitmap
/// words follow on the wire (word r/64, bit r%64 set = sender suspects rank
/// r). Every rank derives the same word count from the communicator size, so
/// the wire size is deterministic.
struct VerdictHeader {
  std::int32_t epoch = 0;
  std::int32_t code = 0;
  std::int32_t words = 0;
  char what[160] = {};
};

void setBit(std::vector<std::uint64_t>& bits, Rank r) {
  bits[static_cast<std::size_t>(r) >> 6] |= std::uint64_t{1} << (r & 63);
}

bool testBit(const std::vector<std::uint64_t>& bits, Rank r) {
  return ((bits[static_cast<std::size_t>(r) >> 6] >> (r & 63)) & 1) != 0;
}

}  // namespace

std::vector<Rank> LivenessOutcome::survivors(int comm_size) const {
  std::vector<Rank> out;
  out.reserve(static_cast<std::size_t>(comm_size));
  std::size_t di = 0;
  for (Rank r = 0; r < comm_size; ++r) {
    if (di < dead.size() && dead[di] == r) {
      ++di;
      continue;
    }
    out.push_back(r);
  }
  return out;
}

LivenessOutcome agreeWithLiveness(Comm& comm, const CapturedError& local,
                                  int epoch, SimTime window, SimTime poll) {
  const int P = comm.size();
  const Rank me = comm.rank();
  TCIO_CHECK_MSG(window > 0 && poll > 0, "liveness window/poll must be > 0");
  /// Suspicion bitmap width in 64-bit words (any communicator size).
  const std::size_t kWords = static_cast<std::size_t>(P + 63) / 64;

  LivenessOutcome out;
  out.code = local.code;
  std::int32_t best_code = local.code;
  Rank best_owner = me;
  std::string best_what = local.what;

  // -- Round 1: vote ----------------------------------------------------------
  const int tag_vote = livenessTag(epoch, 0);
  VoteMsg vote{static_cast<std::int32_t>(epoch), local.code};
  {
    std::vector<Request> sends;
    sends.reserve(static_cast<std::size_t>(P));
    for (Rank r = 0; r < P; ++r) {
      if (r == me) continue;
      sends.push_back(comm.isend(&vote, sizeof(vote), r, tag_vote));
    }
    comm.waitAll(sends);
  }
  std::vector<std::uint64_t> suspects(kWords, 0);
  const SimTime vote_deadline = comm.proc().now() + window;
  for (Rank r = 0; r < P; ++r) {
    if (r == me) continue;
    VoteMsg in;
    if (comm.recvUntil(&in, sizeof(in), r, tag_vote, vote_deadline, poll)) {
      TCIO_CHECK_MSG(in.epoch == epoch, "liveness vote from a stale epoch");
      if (in.code > best_code || (in.code == best_code && r < best_owner)) {
        // Round-1 votes carry no message; remember the owner so a round-2
        // verdict from the same rank can fill it in.
        best_code = std::max(best_code, in.code);
        if (in.code > out.code) out.code = in.code;
      }
    } else {
      setBit(suspects, r);
    }
  }

  // -- Round 2: verdict -------------------------------------------------------
  // A verdict is a fixed header followed by the word-vector suspicion
  // bitmap, so any communicator size works (the bitmap was a single
  // uint64_t — and the protocol P <= 64 — before).
  const int tag_verdict = livenessTag(epoch, 1);
  const std::size_t msg_size =
      sizeof(VerdictHeader) + kWords * sizeof(std::uint64_t);
  std::vector<std::byte> verdict(msg_size);
  {
    VerdictHeader hdr;
    hdr.epoch = static_cast<std::int32_t>(epoch);
    hdr.code = local.code;
    hdr.words = static_cast<std::int32_t>(kWords);
    std::strncpy(hdr.what, local.what.c_str(), sizeof(hdr.what) - 1);
    std::memcpy(verdict.data(), &hdr, sizeof(hdr));
    std::memcpy(verdict.data() + sizeof(hdr), suspects.data(),
                kWords * sizeof(std::uint64_t));
  }
  {
    std::vector<Request> sends;
    sends.reserve(static_cast<std::size_t>(P));
    for (Rank r = 0; r < P; ++r) {
      if (r == me) continue;
      sends.push_back(comm.isend(verdict.data(),
                                 static_cast<Bytes>(msg_size), r,
                                 tag_verdict));
    }
    comm.waitAll(sends);
  }
  best_code = local.code;
  best_owner = me;
  best_what = local.what;
  std::vector<std::uint64_t> dead_bits = suspects;
  std::vector<std::byte> in(msg_size);
  std::vector<std::uint64_t> in_bits(kWords);
  const SimTime verdict_deadline = comm.proc().now() + window;
  for (Rank r = 0; r < P; ++r) {
    if (r == me) continue;
    if (comm.recvUntil(in.data(), static_cast<Bytes>(msg_size), r,
                       tag_verdict, verdict_deadline, poll)) {
      VerdictHeader hdr;
      std::memcpy(&hdr, in.data(), sizeof(hdr));
      TCIO_CHECK_MSG(hdr.epoch == epoch, "liveness verdict from a stale epoch");
      TCIO_CHECK_MSG(hdr.words == static_cast<std::int32_t>(kWords),
                     "liveness verdict bitmap width mismatch");
      std::memcpy(in_bits.data(), in.data() + sizeof(hdr),
                  kWords * sizeof(std::uint64_t));
      for (std::size_t w = 0; w < kWords; ++w) dead_bits[w] |= in_bits[w];
      if (hdr.code > best_code || (hdr.code == best_code && r < best_owner)) {
        best_code = hdr.code;
        best_owner = r;
        hdr.what[sizeof(hdr.what) - 1] = '\0';
        best_what = hdr.what;
      }
    } else {
      // Died between the rounds (or was suspected by everyone): no verdict.
      setBit(dead_bits, r);
    }
  }

  out.code = best_code;
  out.what = best_what;
  out.self_dead = testBit(dead_bits, me);
  for (Rank r = 0; r < P; ++r) {
    if (testBit(dead_bits, r)) out.dead.push_back(r);
  }
  return out;
}

}  // namespace tcio::mpi
