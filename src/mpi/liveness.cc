#include "mpi/liveness.h"

#include <algorithm>
#include <cstring>

#include "common/error.h"
#include "mpi/world.h"

namespace tcio::mpi {

namespace {

/// Liveness tags live above the collective tag block (which tops out at
/// kInternalTagBase + 2^22 - 1): base + 2^23 + epoch*4 + round.
constexpr int kLivenessTagBase = kInternalTagBase + (1 << 23);

int livenessTag(int epoch, int round) {
  return kLivenessTagBase + (epoch % (1 << 20)) * 4 + round;
}

struct VoteMsg {
  std::int32_t epoch = 0;
  std::int32_t code = 0;
};

struct VerdictMsg {
  std::int32_t epoch = 0;
  std::int32_t code = 0;
  std::uint64_t suspects = 0;  // bit r set = sender suspects rank r
  char what[160] = {};
};

}  // namespace

std::vector<Rank> LivenessOutcome::survivors(int comm_size) const {
  std::vector<Rank> out;
  out.reserve(static_cast<std::size_t>(comm_size));
  std::size_t di = 0;
  for (Rank r = 0; r < comm_size; ++r) {
    if (di < dead.size() && dead[di] == r) {
      ++di;
      continue;
    }
    out.push_back(r);
  }
  return out;
}

LivenessOutcome agreeWithLiveness(Comm& comm, const CapturedError& local,
                                  int epoch, SimTime window, SimTime poll) {
  const int P = comm.size();
  const Rank me = comm.rank();
  TCIO_CHECK_MSG(P <= 64, "liveness agreement supports at most 64 ranks");
  TCIO_CHECK_MSG(window > 0 && poll > 0, "liveness window/poll must be > 0");

  LivenessOutcome out;
  out.code = local.code;
  std::int32_t best_code = local.code;
  Rank best_owner = me;
  std::string best_what = local.what;

  // -- Round 1: vote ----------------------------------------------------------
  const int tag_vote = livenessTag(epoch, 0);
  VoteMsg vote{static_cast<std::int32_t>(epoch), local.code};
  {
    std::vector<Request> sends;
    sends.reserve(static_cast<std::size_t>(P));
    for (Rank r = 0; r < P; ++r) {
      if (r == me) continue;
      sends.push_back(comm.isend(&vote, sizeof(vote), r, tag_vote));
    }
    comm.waitAll(sends);
  }
  std::uint64_t suspects = 0;
  const SimTime vote_deadline = comm.proc().now() + window;
  for (Rank r = 0; r < P; ++r) {
    if (r == me) continue;
    VoteMsg in;
    if (comm.recvUntil(&in, sizeof(in), r, tag_vote, vote_deadline, poll)) {
      TCIO_CHECK_MSG(in.epoch == epoch, "liveness vote from a stale epoch");
      if (in.code > best_code || (in.code == best_code && r < best_owner)) {
        // Round-1 votes carry no message; remember the owner so a round-2
        // verdict from the same rank can fill it in.
        best_code = std::max(best_code, in.code);
        if (in.code > out.code) out.code = in.code;
      }
    } else {
      suspects |= std::uint64_t{1} << r;
    }
  }

  // -- Round 2: verdict -------------------------------------------------------
  const int tag_verdict = livenessTag(epoch, 1);
  VerdictMsg verdict;
  verdict.epoch = static_cast<std::int32_t>(epoch);
  verdict.code = local.code;
  verdict.suspects = suspects;
  std::strncpy(verdict.what, local.what.c_str(), sizeof(verdict.what) - 1);
  {
    std::vector<Request> sends;
    sends.reserve(static_cast<std::size_t>(P));
    for (Rank r = 0; r < P; ++r) {
      if (r == me) continue;
      sends.push_back(comm.isend(&verdict, sizeof(verdict), r, tag_verdict));
    }
    comm.waitAll(sends);
  }
  best_code = local.code;
  best_owner = me;
  best_what = local.what;
  std::uint64_t dead_bits = suspects;
  const SimTime verdict_deadline = comm.proc().now() + window;
  for (Rank r = 0; r < P; ++r) {
    if (r == me) continue;
    VerdictMsg in;
    if (comm.recvUntil(&in, sizeof(in), r, tag_verdict, verdict_deadline,
                       poll)) {
      TCIO_CHECK_MSG(in.epoch == epoch, "liveness verdict from a stale epoch");
      dead_bits |= in.suspects;
      if (in.code > best_code || (in.code == best_code && r < best_owner)) {
        best_code = in.code;
        best_owner = r;
        in.what[sizeof(in.what) - 1] = '\0';
        best_what = in.what;
      }
    } else {
      // Died between the rounds (or was suspected by everyone): no verdict.
      dead_bits |= std::uint64_t{1} << r;
    }
  }

  out.code = best_code;
  out.what = best_what;
  out.self_dead = (dead_bits & (std::uint64_t{1} << me)) != 0;
  for (Rank r = 0; r < P; ++r) {
    if ((dead_bits & (std::uint64_t{1} << r)) != 0) out.dead.push_back(r);
  }
  return out;
}

}  // namespace tcio::mpi
