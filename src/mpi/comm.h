// Per-rank communicator facade: point-to-point messaging and collectives
// over the simulated network.
//
// Collectives are implemented on top of the same p2p primitives real MPI
// libraries use (dissemination barrier, binomial broadcast/reduce, ring
// allgather, fully-posted alltoallv), so their simulated cost scales the way
// the paper's arguments require (log P control collectives, bursty all-to-all
// data exchange).
#pragma once

#include <cstring>
#include <functional>
#include <span>
#include <vector>

#include "common/error.h"
#include "common/types.h"
#include "mpi/datatype.h"
#include "mpi/request.h"
#include "mpi/world.h"
#include "sim/engine.h"

namespace tcio::mpi {

enum class ReduceOp { kSum, kMax, kMin, kBitOr };

/// One rank's handle on a communicator. The constructor builds COMM_WORLD;
/// `split` derives sub-communicators (MPI_Comm_split semantics). Cheap to
/// pass by reference through the I/O stack.
class Comm {
 public:
  Comm(World& world, sim::Proc& proc)
      : world_(&world), proc_(&proc), rank_(proc.rank()),
        size_(world.numRanks()) {}

  /// This rank's id within the communicator.
  Rank rank() const { return rank_; }
  int size() const { return size_; }
  /// Communicator context id (0 = COMM_WORLD).
  int context() const { return context_; }

  /// Simulation-global rank of communicator rank `r`.
  Rank worldRank(Rank r) const {
    TCIO_CHECK(r >= 0 && r < size_);
    return group_.empty() ? r : group_[static_cast<std::size_t>(r)];
  }

  sim::Proc& proc() { return *proc_; }
  World& world() { return *world_; }

  /// Per-rank simulated memory budget.
  MemoryTracker& memory() { return world_->memory(proc_->rank()); }

  /// Collective MPI_Comm_split: ranks passing the same `color` form a new
  /// communicator, ordered by (key, old rank). Every rank of this
  /// communicator must call it.
  Comm split(int color, int key);

  /// Collective MPI_Comm_split_type(MPI_COMM_TYPE_SHARED): ranks hosted on
  /// the same physical node (per the network topology) form a new
  /// communicator, ordered by (key, old rank).
  Comm splitByNode(int key);

  /// Physical node hosting communicator rank `r` (topology query, no cost).
  int nodeOf(Rank r) const;

  // -- Point-to-point --------------------------------------------------------

  /// Blocking standard-mode send (buffered semantics: returns once the NIC
  /// accepted the message).
  void send(const void* buf, Bytes n, Rank dst, int tag);

  /// Blocking receive. `src` may be kAnySource, `tag` may be kAnyTag.
  RecvStatus recv(void* buf, Bytes capacity, Rank src, int tag);

  /// Nonblocking variants.
  Request isend(const void* buf, Bytes n, Rank dst, int tag);
  Request irecv(void* buf, Bytes capacity, Rank src, int tag);

  /// Receive with a virtual-time deadline: blocks until a matching message
  /// arrives or this rank's clock reaches `deadline`. On success returns
  /// true and fills `out` like recv; on timeout returns false after
  /// cancelling the posted receive (no dangling buffer is left behind).
  /// Polls in `poll`-sized virtual-time steps — the liveness protocol's
  /// failure-detector primitive.
  bool recvUntil(void* buf, Bytes capacity, Rank src, int tag,
                 SimTime deadline, SimTime poll, RecvStatus* out = nullptr);

  /// Combined send+receive without deadlock (MPI_Sendrecv).
  RecvStatus sendrecv(const void* sendbuf, Bytes send_n, Rank dst,
                      int send_tag, void* recvbuf, Bytes recv_cap, Rank src,
                      int recv_tag);

  /// Typed send/recv: packs `count` instances of a (possibly
  /// non-contiguous) datatype from user memory, charging pack time
  /// (MPI_Send with a derived datatype).
  void sendTyped(const void* buf, std::int64_t count,
                 const mpi::Datatype& type, Rank dst, int tag);
  RecvStatus recvTyped(void* buf, std::int64_t count,
                       const mpi::Datatype& type, Rank src, int tag);

  /// Completes one request; returns the receive status (zeros for sends).
  RecvStatus wait(Request& req);
  void waitAll(std::span<Request> reqs);

  // -- Collectives -----------------------------------------------------------

  /// Dissemination barrier: ceil(log2 P) zero-byte exchange rounds.
  void barrier();

  /// Binomial-tree broadcast of `n` bytes from `root`.
  void bcast(void* buf, Bytes n, Rank root);

  /// Binomial reduce to `root` + binomial broadcast (works for any P).
  /// `combine(acc, in)` folds `count` elements of T.
  template <typename T>
  void allreduce(T* data, std::int64_t count, ReduceOp op) {
    allreduceBytes(data, count * static_cast<Bytes>(sizeof(T)),
                   [op, count](void* acc, const void* in) {
                     combineTyped<T>(static_cast<T*>(acc),
                                     static_cast<const T*>(in), count, op);
                   });
  }

  /// Binomial reduce of `count` T elements to `root`.
  template <typename T>
  void reduce(T* data, std::int64_t count, ReduceOp op, Rank root) {
    reduceBytes(data, count * static_cast<Bytes>(sizeof(T)),
                [op, count](void* acc, const void* in) {
                  combineTyped<T>(static_cast<T*>(acc),
                                  static_cast<const T*>(in), count, op);
                },
                root);
  }

  /// Gather `per` bytes from every rank to `root`'s `out` (rank order).
  void gather(const void* mine, Bytes per, void* out, Rank root);

  /// Scatter `per` bytes per rank from `root`'s `in` to every rank.
  void scatter(const void* in, Bytes per, void* mine, Rank root);

  /// Ring allgather: every rank contributes `per` bytes; `out` receives
  /// P*per bytes ordered by rank.
  void allgather(const void* mine, Bytes per, void* out);

  /// Variable-size allgather: every rank contributes `n` bytes; `out[r]`
  /// receives rank r's contribution (implemented as a count allgather plus
  /// one broadcast per rank — log P rounds each).
  void allgatherv(const void* mine, Bytes n,
                  std::vector<std::vector<std::byte>>& out);

  /// Fully-posted all-to-all exchange with per-peer counts: the access
  /// pattern of ROMIO's two-phase data exchange (irecv all, isend all,
  /// waitall) — deliberately bursty.
  /// send/recv displacements are byte offsets into the respective buffers.
  void alltoallv(const void* sendbuf, std::span<const Bytes> sendcounts,
                 std::span<const Offset> senddispls, void* recvbuf,
                 std::span<const Bytes> recvcounts,
                 std::span<const Offset> recvdispls);

  /// Checker hook: records and cross-verifies this rank's next collective
  /// call on this communicator (see check/checker.h). Public so sibling
  /// layers (RMA window creation, error agreement) can label their own
  /// collective points. No-op when the checker is disabled.
  void checkCollective(check::CollOp op, Rank root, Bytes bytes,
                       const char* site);

  /// Charge local memory-copy time for `n` bytes (pack/unpack costs).
  void chargeCopy(Bytes n) {
    proc_->advance(static_cast<double>(n) / world_->config().memcpy_bandwidth);
  }

  /// Next internal tag block for a collective operation (per-rank counter;
  /// MPI semantics require identical collective call order on all ranks).
  int nextCollectiveTag() {
    const int seq = coll_seq_++;
    return kInternalTagBase + (seq % (1 << 16)) * 64;
  }

  /// Number of window-create calls so far (identifies windows collectively).
  std::size_t nextWindowSeq() { return win_seq_++; }

  /// Reserve a block of `n` consecutive context ids. NOT collective: exactly
  /// one rank calls it and broadcasts the base over an existing channel.
  /// Used to pre-allocate shrink contexts while every rank is still alive.
  int reserveContexts(int n) { return world_->allocateContexts(n); }

  /// Build the communicator of `survivors` (ranks of *this* communicator,
  /// ascending, must include the caller) on the pre-reserved `context`.
  /// NOT collective over this comm — dead ranks never call it; every
  /// survivor must call it with identical arguments (the liveness protocol
  /// guarantees an identical dead set). Collective-tag and window counters
  /// start fresh, so survivors stay in lockstep on the new comm.
  Comm shrink(const std::vector<Rank>& survivors, int context) const;

 private:
  void reduceBytes(void* data, Bytes n,
                   const std::function<void(void*, const void*)>& combine,
                   Rank root);

  /// wait() body; `track` controls per-request deadlock-checker registration
  /// (waitAll registers one AND-wait for the whole set instead).
  RecvStatus waitInternal(Request& req, bool track);

  /// Sub-communicator constructor (used by split).
  Comm(World& world, sim::Proc& proc, std::vector<Rank> group, Rank rank,
       int context)
      : world_(&world), proc_(&proc), rank_(rank),
        size_(static_cast<int>(group.size())), context_(context),
        group_(std::move(group)) {}

  void allreduceBytes(void* data, Bytes n,
                      const std::function<void(void*, const void*)>& combine);

  template <typename T>
  static void combineTyped(T* acc, const T* in, std::int64_t count,
                           ReduceOp op) {
    for (std::int64_t i = 0; i < count; ++i) {
      switch (op) {
        case ReduceOp::kSum: acc[i] = acc[i] + in[i]; break;
        case ReduceOp::kMax: acc[i] = acc[i] < in[i] ? in[i] : acc[i]; break;
        case ReduceOp::kMin: acc[i] = in[i] < acc[i] ? in[i] : acc[i]; break;
        case ReduceOp::kBitOr:
          if constexpr (std::is_integral_v<T>) {
            acc[i] = acc[i] | in[i];
          } else {
            throw MpiError("kBitOr requires an integral type");
          }
          break;
      }
    }
  }

  World* world_;
  sim::Proc* proc_;
  Rank rank_;
  int size_;
  int context_ = 0;
  /// Communicator rank -> world rank; empty means identity (COMM_WORLD).
  std::vector<Rank> group_;
  int coll_seq_ = 0;
  std::size_t win_seq_ = 0;
};

}  // namespace tcio::mpi
