#include "mpi/agreement.h"

#include "common/error.h"

namespace tcio::mpi {

void CapturedError::capture(const std::exception& e) {
  what = e.what();
  if (dynamic_cast<const IntegrityError*>(&e) != nullptr) {
    code = kIntegrity;
  } else if (dynamic_cast<const RankCrashedError*>(&e) != nullptr) {
    code = kRankCrashed;
  } else if (dynamic_cast<const OstFailedError*>(&e) != nullptr) {
    code = kOstFailed;
  } else if (dynamic_cast<const NoSpaceError*>(&e) != nullptr) {
    code = kNoSpace;
  } else if (dynamic_cast<const FileNotFound*>(&e) != nullptr) {
    code = kFileNotFound;
  } else if (dynamic_cast<const RetryExhaustedError*>(&e) != nullptr) {
    code = kRetryExhausted;
  } else if (dynamic_cast<const TransientFsError*>(&e) != nullptr) {
    code = kTransientFs;
  } else if (dynamic_cast<const FsError*>(&e) != nullptr) {
    code = kFs;
  } else if (dynamic_cast<const OutOfMemoryBudget*>(&e) != nullptr) {
    code = kOutOfMemory;
  } else {
    code = kGeneric;
  }
}

void agreeOnError(Comm& comm, const CapturedError& local) {
  // Label the agreement point itself, so a rank that skips it (or reaches a
  // different collective) is diagnosed against "agreeOnError" rather than
  // one of the allreduces it is built from.
  comm.checkCollective(check::CollOp::kAgree, -1, check::kUncheckedBytes,
                       "agreeOnError");
  std::int32_t code = local.code;
  comm.allreduce(&code, 1, ReduceOp::kMax);
  if (code == CapturedError::kNone) return;  // fast path: nobody failed

  // The lowest rank that holds the winning class owns the message.
  std::int32_t owner =
      local.code == code ? static_cast<std::int32_t>(comm.rank())
                         : static_cast<std::int32_t>(comm.size());
  comm.allreduce(&owner, 1, ReduceOp::kMin);

  std::int64_t len =
      comm.rank() == owner ? static_cast<std::int64_t>(local.what.size()) : 0;
  comm.bcast(&len, static_cast<Bytes>(sizeof(len)), owner);
  std::string what(static_cast<std::size_t>(len), '\0');
  if (comm.rank() == owner) what = local.what;
  if (len > 0) comm.bcast(what.data(), len, owner);

  throwTyped(code, what);
}

void throwTyped(std::int32_t code, const std::string& what) {
  switch (code) {
    case CapturedError::kIntegrity:
      throw IntegrityError(what);
    case CapturedError::kRankCrashed:
      throw RankCrashedError(what, /*crashed_rank=*/-1);
    case CapturedError::kOstFailed:
      throw OstFailedError(what, /*failed_ost=*/-1);
    case CapturedError::kNoSpace:
      throw NoSpaceError(what);
    case CapturedError::kFileNotFound:
      throw FileNotFound(FileNotFound::Formatted{}, what);
    case CapturedError::kRetryExhausted:
      throw RetryExhaustedError(what, /*attempts_made=*/0);
    case CapturedError::kTransientFs:
      throw TransientFsError(what);
    case CapturedError::kFs:
      throw FsError(what);
    case CapturedError::kOutOfMemory:
      throw OutOfMemoryBudget(what, /*requested=*/0, /*available=*/0);
    default:
      throw Error(what);
  }
}

}  // namespace tcio::mpi
