#include "mpi/datatype.h"

#include <algorithm>

namespace tcio::mpi {

std::vector<Extent> normalizeExtents(std::vector<Extent> extents) {
  std::erase_if(extents, [](const Extent& e) { return e.empty(); });
  std::sort(extents.begin(), extents.end(),
            [](const Extent& a, const Extent& b) { return a.begin < b.begin; });
  std::vector<Extent> out;
  out.reserve(extents.size());
  for (const Extent& e : extents) {
    if (!out.empty() && e.begin <= out.back().end) {
      TCIO_CHECK_MSG(e.begin == out.back().end,
                     "overlapping byte runs in datatype layout");
      out.back().end = std::max(out.back().end, e.end);
    } else {
      out.push_back(e);
    }
  }
  return out;
}

std::vector<Extent> normalizeOverlapping(std::vector<Extent> extents) {
  std::erase_if(extents, [](const Extent& e) { return e.empty(); });
  std::sort(extents.begin(), extents.end(),
            [](const Extent& a, const Extent& b) { return a.begin < b.begin; });
  std::vector<Extent> out;
  out.reserve(extents.size());
  for (const Extent& e : extents) {
    if (!out.empty() && e.begin <= out.back().end) {
      out.back().end = std::max(out.back().end, e.end);
    } else {
      out.push_back(e);
    }
  }
  return out;
}

Datatype Datatype::basic(Bytes n, const char* name) {
  return fromSegments({Extent{0, n}}, name);
}

Datatype Datatype::fromSegments(std::vector<Extent> segs, std::string name) {
  auto st = std::make_shared<State>();
  st->segments = normalizeExtents(std::move(segs));
  for (const Extent& e : st->segments) {
    TCIO_CHECK_MSG(e.begin >= 0, "negative displacements are not supported");
    st->size += e.size();
    st->extent = std::max(st->extent, e.end);
  }
  st->name = std::move(name);
  Datatype t;
  t.state_ = std::move(st);
  return t;
}

Datatype Datatype::contiguous(std::int64_t count, const Datatype& base) {
  TCIO_CHECK(count >= 0);
  TCIO_CHECK_MSG(base.valid(), "contiguous() on invalid base type");
  std::vector<Extent> segs;
  const Bytes ext = base.extent();
  segs.reserve(base.segments().size() * static_cast<std::size_t>(count));
  for (std::int64_t i = 0; i < count; ++i) {
    for (const Extent& e : base.segments()) {
      segs.push_back({e.begin + i * ext, e.end + i * ext});
    }
  }
  return fromSegments(std::move(segs),
                      "contig(" + std::to_string(count) + "," + base.name() +
                          ")");
}

Datatype Datatype::vector(std::int64_t count, std::int64_t blocklen,
                          std::int64_t stride, const Datatype& base) {
  TCIO_CHECK(count >= 0 && blocklen >= 0);
  TCIO_CHECK_MSG(stride >= blocklen,
                 "vector() with stride < blocklen would overlap");
  TCIO_CHECK_MSG(base.valid(), "vector() on invalid base type");
  std::vector<Extent> segs;
  const Bytes ext = base.extent();
  for (std::int64_t i = 0; i < count; ++i) {
    const Offset block_base = i * stride * ext;
    for (std::int64_t j = 0; j < blocklen; ++j) {
      for (const Extent& e : base.segments()) {
        segs.push_back({block_base + j * ext + e.begin,
                        block_base + j * ext + e.end});
      }
    }
  }
  return fromSegments(std::move(segs),
                      "vector(" + std::to_string(count) + "," +
                          std::to_string(blocklen) + "," +
                          std::to_string(stride) + "," + base.name() + ")");
}

Datatype Datatype::indexed(std::span<const std::int64_t> blocklens,
                           std::span<const std::int64_t> displs,
                           const Datatype& base) {
  TCIO_CHECK(blocklens.size() == displs.size());
  TCIO_CHECK_MSG(base.valid(), "indexed() on invalid base type");
  std::vector<Extent> segs;
  const Bytes ext = base.extent();
  for (std::size_t k = 0; k < blocklens.size(); ++k) {
    const Offset block_base = displs[k] * ext;
    for (std::int64_t j = 0; j < blocklens[k]; ++j) {
      for (const Extent& e : base.segments()) {
        segs.push_back({block_base + j * ext + e.begin,
                        block_base + j * ext + e.end});
      }
    }
  }
  return fromSegments(std::move(segs),
                      "indexed(" + std::to_string(blocklens.size()) + "," +
                          base.name() + ")");
}

Datatype Datatype::hindexed(std::span<const Bytes> blocklens,
                            std::span<const Offset> byte_displs) {
  TCIO_CHECK(blocklens.size() == byte_displs.size());
  std::vector<Extent> segs;
  segs.reserve(blocklens.size());
  for (std::size_t k = 0; k < blocklens.size(); ++k) {
    segs.push_back({byte_displs[k], byte_displs[k] + blocklens[k]});
  }
  return fromSegments(std::move(segs),
                      "hindexed(" + std::to_string(blocklens.size()) + ")");
}

Datatype Datatype::structType(std::span<const std::int64_t> blocklens,
                              std::span<const Offset> byte_displs,
                              std::span<const Datatype> types) {
  TCIO_CHECK(blocklens.size() == byte_displs.size());
  TCIO_CHECK(blocklens.size() == types.size());
  std::vector<Extent> segs;
  for (std::size_t k = 0; k < blocklens.size(); ++k) {
    TCIO_CHECK_MSG(types[k].valid(), "structType() with invalid member");
    const Bytes ext = types[k].extent();
    for (std::int64_t j = 0; j < blocklens[k]; ++j) {
      for (const Extent& e : types[k].segments()) {
        segs.push_back({byte_displs[k] + j * ext + e.begin,
                        byte_displs[k] + j * ext + e.end});
      }
    }
  }
  return fromSegments(std::move(segs),
                      "struct(" + std::to_string(blocklens.size()) + ")");
}

void Datatype::flatten(Offset base, std::int64_t count,
                       std::vector<Extent>& out) const {
  TCIO_CHECK_MSG(valid(), "flatten() on invalid datatype");
  const Bytes ext = extent();
  for (std::int64_t i = 0; i < count; ++i) {
    const Offset inst = base + i * ext;
    for (const Extent& e : state_->segments) {
      const Extent shifted{inst + e.begin, inst + e.end};
      if (!out.empty() && out.back().end == shifted.begin) {
        out.back().end = shifted.end;  // merge adjacent runs
      } else {
        out.push_back(shifted);
      }
    }
  }
}

}  // namespace tcio::mpi
