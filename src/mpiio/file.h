// MPI-IO file handle: collective open/close, file views, independent
// read/write (with optional data sieving for non-contiguous views), and
// two-phase collective read_all/write_all (the OCIO baseline).
#pragma once

#include <string>

#include <memory>

#include "fs/client.h"
#include "mpi/comm.h"
#include "mpiio/twophase.h"
#include "mpiio/view.h"
#include "mpiio/viewbased.h"

namespace tcio::io {

struct MpioConfig {
  /// Data sieving for independent non-contiguous accesses (ROMIO-style
  /// read-modify-write through a sieve buffer).
  bool enable_data_sieving = true;
  /// Maximum file span covered by one sieve window.
  Bytes sieve_buffer = 512_KiB;
  /// Collective buffering: number of aggregator ranks for the two-phase
  /// collectives (0 = every rank, the paper's OCIO behaviour).
  int cb_nodes = 0;
  /// View-based collective I/O (Blas et al., CCGRID'08): exchange views
  /// once at setView (which becomes a collective call) and move only
  /// payload in each collective. Requires full-view accesses at offset 0
  /// with the same size on every rank.
  bool view_based = false;
};

/// One rank's handle on a shared MPI-IO file. All collective members must be
/// called by every rank of the communicator in the same order.
class MpioFile {
 public:
  /// Collective open; `flags` are fs::OpenFlags. Creation/truncation is
  /// applied once (by rank 0) before the others open.
  static MpioFile open(mpi::Comm& comm, fs::Filesystem& fsys,
                       const std::string& name, unsigned flags,
                       MpioConfig cfg = {});

  /// MPI_File_set_view. Independent (no synchronization) in two-phase
  /// mode; COLLECTIVE when view_based is enabled (the views are exchanged
  /// here, so all ranks must call together).
  void setView(Offset disp, const mpi::Datatype& etype,
               const mpi::Datatype& filetype);

  /// Resets to the identity view with displacement 0.
  void clearView();
  const FileView& view() const { return view_; }

  // -- Independent I/O (view-relative byte offsets) -------------------------

  void writeAt(Offset view_off, const void* buf, Bytes n);
  void readAt(Offset view_off, void* buf, Bytes n);

  // -- Collective I/O (two-phase) --------------------------------------------

  /// MPI_File_write_all: collectively writes each rank's `n` view-payload
  /// bytes starting at its view offset `view_off`.
  TwoPhaseStats writeAtAll(Offset view_off, const void* buf, Bytes n);
  TwoPhaseStats readAtAll(Offset view_off, void* buf, Bytes n);

  // -- Split collectives (MPI_File_write_all_begin / _end) -------------------
  // The begin call registers the request locally and returns immediately;
  // the matching end call runs the collective. The buffer must stay valid
  // in between (MPI split-collective semantics); one split collective may
  // be outstanding per file.

  void writeAtAllBegin(Offset view_off, const void* buf, Bytes n);
  TwoPhaseStats writeAtAllEnd();
  void readAtAllBegin(Offset view_off, void* buf, Bytes n);
  TwoPhaseStats readAtAllEnd();

  /// Collective close.
  void close();

  /// Physical file size (bytes), a cheap metadata query.
  Bytes size() const;

  mpi::Comm& comm() { return *comm_; }

 private:
  MpioFile(mpi::Comm& comm, fs::Filesystem& fsys, fs::FsFile file,
           MpioConfig cfg)
      : comm_(&comm), client_(fsys, comm.proc()), file_(file), cfg_(cfg) {}

  CollectiveRequest makeRequest(Offset view_off, const void* buf,
                                Bytes n) const;

  mpi::Comm* comm_;
  mutable fs::FsClient client_;
  fs::FsFile file_;
  MpioConfig cfg_;
  FileView view_;

  struct PendingSplit {
    bool active = false;
    bool is_write = false;
    Offset view_off = 0;
    void* buf = nullptr;
    Bytes n = 0;
  };
  PendingSplit split_;
  /// Populated by setView when view_based is on.
  std::shared_ptr<const ViewCache> view_cache_;
};

/// Parses an MPI_Info-style hint string ("cb_nodes=4;romio_ds_write=disable;
/// sieve_buffer=1048576") into an MpioConfig. Unknown keys throw.
MpioConfig parseHints(const std::string& hints, MpioConfig base = {});

}  // namespace tcio::io
