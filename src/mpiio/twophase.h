// Two-phase collective I/O — the paper's OCIO baseline, implemented the way
// the paper describes ROMIO's behaviour:
//
//   write: allreduce the aggregate file domain [min, max); split it into P
//   equal disjoint regions, one aggregator (= temporary buffer) per process;
//   shuffle application data to aggregators with a fully-posted nonblocking
//   all-to-all; each aggregator issues large contiguous writes for its
//   region. Reads run the same protocol in reverse (aggregators act as I/O
//   delegators).
//
// Faithfulness notes (see DESIGN.md):
//   * every process is an aggregator, and the aggregator buffers its whole
//     file domain — this is the memory behaviour that makes the paper's
//     48 GB configuration fail, and it is charged against the per-rank
//     memory budget;
//   * holes in a write domain are handled by writing only the covered runs
//     (no read-modify-write), which is byte-equivalent for non-overlapping
//     workloads.
#pragma once

#include <span>
#include <vector>

#include "common/types.h"
#include "fs/client.h"
#include "mpi/comm.h"

namespace tcio::io {

/// One process's contribution to a collective operation: its view-mapped
/// absolute extents (sorted) and, for writes, the matching payload in
/// payload order.
struct CollectiveRequest {
  std::vector<Extent> extents;
  /// Write: source payload bytes (extent order). Read: destination.
  std::byte* payload = nullptr;
};

/// Statistics of one collective call (for tests and the paper's arguments).
struct TwoPhaseStats {
  Bytes aggregator_buffer = 0;  // temporary buffer charged on this rank
  std::int64_t fs_requests = 0;
};

/// Collective write: all ranks must call together. `file` is this rank's
/// open FS handle on the shared file.
///
/// `cb_nodes` enables collective buffering (the extension the paper's
/// related-work section describes and its experiments disable): only
/// `cb_nodes` evenly spread ranks act as aggregators, reducing file-system
/// contention at the price of larger per-aggregator buffers. 0 = every
/// rank aggregates (the paper's OCIO behaviour).
TwoPhaseStats twoPhaseWrite(mpi::Comm& comm, fs::FsClient& fs,
                            fs::FsFile& file, const CollectiveRequest& req,
                            int cb_nodes = 0);

/// Collective read.
TwoPhaseStats twoPhaseRead(mpi::Comm& comm, fs::FsClient& fs,
                           fs::FsFile& file, const CollectiveRequest& req,
                           int cb_nodes = 0);

}  // namespace tcio::io
