// Aggregator file-domain partitioning shared by the two-phase (OCIO) and
// view-based collective implementations: the aggregate file range [lo, hi)
// is split into equal regions, one per aggregator, with aggregators spread
// evenly across the communicator when collective buffering restricts their
// count.
#pragma once

#include <algorithm>

#include "common/error.h"
#include "common/types.h"

namespace tcio::io {

struct Domain {
  Offset lo = 0;
  Offset hi = 0;
  Bytes per_agg = 0;  // aggregator region size
  int num_agg = 0;    // number of aggregators
  int stride = 1;     // communicator-rank spacing between aggregators

  /// Builds the partition for [lo, hi) over P ranks with `cb_nodes`
  /// aggregators (0 = every rank aggregates).
  static Domain partition(Offset lo, Offset hi, int P, int cb_nodes) {
    TCIO_CHECK(hi > lo);
    Domain d;
    d.lo = lo;
    d.hi = hi;
    d.num_agg = (cb_nodes > 0 && cb_nodes < P) ? cb_nodes : P;
    d.stride = P / d.num_agg;
    d.per_agg = (hi - lo + d.num_agg - 1) / d.num_agg;
    return d;
  }

  /// Index of the aggregator owning `off`.
  int aggregatorOf(Offset off) const {
    return static_cast<int>((off - lo) / per_agg);
  }
  /// Communicator rank of aggregator index `i`.
  int aggRank(int i) const { return i * stride; }
  /// Aggregator index of rank `r`, or -1 when `r` does not aggregate.
  int aggIndexOf(int r) const {
    return (r % stride == 0 && r / stride < num_agg) ? r / stride : -1;
  }
  Extent regionOf(int agg_index) const {
    if (agg_index < 0) return {0, 0};
    const Offset b = lo + static_cast<Offset>(agg_index) * per_agg;
    return {std::min(b, hi), std::min(b + per_agg, hi)};
  }
};

}  // namespace tcio::io
