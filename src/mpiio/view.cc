#include "mpiio/view.h"

#include "common/error.h"

namespace tcio::io {

FileView::FileView(Offset disp, mpi::Datatype etype, mpi::Datatype filetype)
    : disp_(disp), etype_(std::move(etype)), filetype_(std::move(filetype)) {
  TCIO_CHECK_MSG(disp_ >= 0, "negative view displacement");
  TCIO_CHECK_MSG(etype_.valid() && filetype_.valid(),
                 "view requires valid etype and filetype");
  TCIO_CHECK_MSG(etype_.committed() && filetype_.committed(),
                 "view requires committed datatypes (MPI_Type_commit)");
  TCIO_CHECK_MSG(etype_.size() > 0, "zero-size etype");
  TCIO_CHECK_MSG(filetype_.size() > 0, "zero-size filetype");
  TCIO_CHECK_MSG(filetype_.size() % etype_.size() == 0,
                 "filetype must be a multiple of etype");
}

Bytes FileView::tilePayload() const {
  TCIO_CHECK_MSG(!isIdentity(), "tilePayload on identity view");
  return filetype_.size();
}

std::vector<Extent> mapTiledExtents(Offset disp,
                                    std::span<const Extent> segments,
                                    Bytes tile_payload, Bytes tile_extent,
                                    Offset view_off, Bytes n) {
  TCIO_CHECK(view_off >= 0 && n >= 0);
  TCIO_CHECK(tile_payload > 0);
  std::vector<Extent> out;
  if (n == 0) return out;
  std::int64_t tile_idx = view_off / tile_payload;
  Bytes skip = view_off % tile_payload;  // payload bytes to skip in the tile
  Bytes remaining = n;
  while (remaining > 0) {
    const Offset tile_base = disp + tile_idx * tile_extent;
    for (const Extent& seg : segments) {
      if (remaining == 0) break;
      Offset b = seg.begin;
      Bytes len = seg.size();
      if (skip > 0) {
        if (skip >= len) {
          skip -= len;
          continue;
        }
        b += skip;
        len -= skip;
        skip = 0;
      }
      const Bytes take = std::min(len, remaining);
      const Extent abs{tile_base + b, tile_base + b + take};
      if (!out.empty() && out.back().end == abs.begin) {
        out.back().end = abs.end;
      } else {
        out.push_back(abs);
      }
      remaining -= take;
    }
    ++tile_idx;
  }
  return out;
}

std::vector<Extent> FileView::mapExtents(Offset view_off, Bytes n) const {
  TCIO_CHECK(view_off >= 0 && n >= 0);
  if (n == 0) return {};
  if (isIdentity()) {
    return {{disp_ + view_off, disp_ + view_off + n}};
  }
  return mapTiledExtents(disp_, filetype_.segments(), filetype_.size(),
                         filetype_.extent(), view_off, n);
}

}  // namespace tcio::io
