// MPI-IO file views (MPI_File_set_view analogue).
//
// A view is (displacement, etype, filetype): the filetype tiles the file
// from `disp`, and only the bytes mapped by the filetype's segments are
// visible. View-relative positions address the visible payload linearly;
// `mapExtents` translates a payload range into absolute file extents.
#pragma once

#include <span>
#include <vector>

#include "common/types.h"
#include "mpi/datatype.h"

namespace tcio::io {

/// Core tiling computation: maps the view-relative payload range
/// [view_off, view_off + n) to absolute file extents given a raw tile
/// description (segment list, payload bytes per tile, tile extent) placed at
/// `disp`. Exposed so remotely cached views (view-based collective I/O) can
/// be evaluated without rebuilding Datatype objects.
std::vector<Extent> mapTiledExtents(Offset disp,
                                    std::span<const Extent> segments,
                                    Bytes tile_payload, Bytes tile_extent,
                                    Offset view_off, Bytes n);

/// Immutable view descriptor. Default-constructed = identity view (the whole
/// file, byte for byte).
class FileView {
 public:
  FileView() = default;

  /// `etype` and `filetype` must be committed; filetype must be a whole
  /// multiple of etypes (checked by size divisibility, as MPI requires).
  FileView(Offset disp, mpi::Datatype etype, mpi::Datatype filetype);

  bool isIdentity() const { return !filetype_.valid(); }

  Offset displacement() const { return disp_; }
  const mpi::Datatype& etype() const { return etype_; }
  const mpi::Datatype& filetype() const { return filetype_; }

  /// Bytes of payload per filetype tile (== whole file for identity views).
  Bytes tilePayload() const;

  /// Maps the view-relative payload range [view_off, view_off + n) to
  /// absolute file extents, ordered by payload position, adjacent runs
  /// merged.
  std::vector<Extent> mapExtents(Offset view_off, Bytes n) const;

 private:
  Offset disp_ = 0;
  mpi::Datatype etype_;
  mpi::Datatype filetype_;
};

}  // namespace tcio::io
