#include "mpiio/viewbased.h"

#include <cstring>
#include <limits>

#include "common/memory_tracker.h"
#include "mpiio/domain.h"

namespace tcio::io {

namespace {

/// Wire format: [identity u64][disp][tile_payload][tile_extent][nsegs][segs].
std::vector<std::byte> serializeView(const FileView& v) {
  std::vector<std::byte> out;
  auto put = [&out](const void* p, std::size_t n) {
    const auto* b = static_cast<const std::byte*>(p);
    out.insert(out.end(), b, b + n);
  };
  const std::int64_t identity = v.isIdentity() ? 1 : 0;
  const Offset disp = v.displacement();
  put(&identity, 8);
  put(&disp, 8);
  if (identity != 0) return out;
  const Bytes tile_payload = v.filetype().size();
  const Bytes tile_extent = v.filetype().extent();
  const auto& segs = v.filetype().segments();
  const std::int64_t nsegs = static_cast<std::int64_t>(segs.size());
  put(&tile_payload, 8);
  put(&tile_extent, 8);
  put(&nsegs, 8);
  put(segs.data(), segs.size() * sizeof(Extent));
  return out;
}

CachedView deserializeView(const std::vector<std::byte>& in) {
  CachedView v;
  const std::byte* p = in.data();
  auto take = [&p](void* dst, std::size_t n) {
    std::memcpy(dst, p, n);
    p += n;
  };
  std::int64_t identity = 0;
  take(&identity, 8);
  take(&v.disp, 8);
  v.identity = identity != 0;
  if (v.identity) return v;
  std::int64_t nsegs = 0;
  take(&v.tile_payload, 8);
  take(&v.tile_extent, 8);
  take(&nsegs, 8);
  v.segments.resize(static_cast<std::size_t>(nsegs));
  take(v.segments.data(), static_cast<std::size_t>(nsegs) * sizeof(Extent));
  return v;
}

/// Splits `extents` (ascending) by aggregator region, invoking
/// fn(agg_index, piece) in payload order.
template <typename F>
void forEachPiece(const Domain& dom, const std::vector<Extent>& extents,
                  F&& fn) {
  for (const Extent& e : extents) {
    Offset cur = e.begin;
    while (cur < e.end) {
      const int agg = dom.aggregatorOf(cur);
      const Offset piece_end = std::min(e.end, dom.regionOf(agg).end);
      fn(agg, Extent{cur, piece_end});
      cur = piece_end;
    }
  }
}

/// Verifies all ranks pass the same payload size (cheap sanity allreduce).
void checkUniformSize(mpi::Comm& comm, Bytes n) {
  std::int64_t minmax[2] = {-n, n};
  comm.allreduce(minmax, 2, mpi::ReduceOp::kMax);
  TCIO_CHECK_MSG(-minmax[0] == n && minmax[1] == n,
                 "view-based collective requires the same payload size on "
                 "every rank");
}

Domain domainFromCache(mpi::Comm& comm, const ViewCache& cache, Bytes n,
                       int cb_nodes) {
  Offset lo = std::numeric_limits<Offset>::max();
  Offset hi = 0;
  for (int r = 0; r < comm.size(); ++r) {
    const auto ext = cache.extentsOf(r, n);
    if (ext.empty()) continue;
    lo = std::min(lo, ext.front().begin);
    hi = std::max(hi, ext.back().end);
  }
  TCIO_CHECK_MSG(hi > lo, "view-based collective with empty views");
  return Domain::partition(lo, hi, comm.size(), cb_nodes);
}

}  // namespace

ViewCache ViewCache::exchange(mpi::Comm& comm, const FileView& mine) {
  const std::vector<std::byte> wire = serializeView(mine);
  std::vector<std::vector<std::byte>> all;
  comm.allgatherv(wire.data(), static_cast<Bytes>(wire.size()), all);
  ViewCache cache;
  cache.views_.reserve(all.size());
  for (const auto& buf : all) {
    cache.views_.push_back(deserializeView(buf));
  }
  return cache;
}

std::vector<Extent> ViewCache::extentsOf(int rank, Bytes n) const {
  const CachedView& v = of(rank);
  if (n == 0) return {};
  if (v.identity) return {{v.disp, v.disp + n}};
  return mapTiledExtents(v.disp, v.segments, v.tile_payload, v.tile_extent,
                         /*view_off=*/0, n);
}

TwoPhaseStats viewBasedWrite(mpi::Comm& comm, fs::FsClient& fs,
                             fs::FsFile& file, const ViewCache& cache,
                             const std::byte* payload, Bytes n,
                             int cb_nodes) {
  TCIO_CHECK(cache.size() == comm.size());
  TwoPhaseStats stats;
  checkUniformSize(comm, n);
  const int P = comm.size();
  const Domain dom = domainFromCache(comm, cache, n, cb_nodes);

  // Stage my payload per destination aggregator — counts are derivable on
  // BOTH sides from the cached views, so this is the only exchange.
  const auto sp = static_cast<std::size_t>(P);
  std::vector<std::vector<std::byte>> send(sp);
  {
    const std::byte* cursor = payload;
    forEachPiece(dom, cache.extentsOf(comm.rank(), n),
                 [&](int agg, const Extent& piece) {
                   auto& buf = send[static_cast<std::size_t>(dom.aggRank(agg))];
                   buf.insert(buf.end(), cursor, cursor + piece.size());
                   cursor += piece.size();
                 });
    comm.chargeCopy(static_cast<Bytes>(cursor - payload));
  }
  std::vector<Bytes> scounts(sp, 0), rcounts(sp, 0);
  std::vector<Offset> sdispls(sp, 0), rdispls(sp, 0);
  Bytes stot = 0;
  for (std::size_t i = 0; i < sp; ++i) {
    scounts[i] = static_cast<Bytes>(send[i].size());
    sdispls[i] = stot;
    stot += scounts[i];
  }
  // Receive counts: bytes of each source's view inside my region.
  const int my_agg = dom.aggIndexOf(comm.rank());
  const Extent region = dom.regionOf(my_agg);
  Bytes rtot = 0;
  if (my_agg >= 0) {
    for (int src = 0; src < P; ++src) {
      Bytes cnt = 0;
      for (const Extent& e : cache.extentsOf(src, n)) {
        cnt += intersect(e, region).size();
      }
      rcounts[static_cast<std::size_t>(src)] = cnt;
      rdispls[static_cast<std::size_t>(src)] = rtot;
      rtot += cnt;
    }
  }
  std::vector<std::byte> sendbuf;
  sendbuf.reserve(static_cast<std::size_t>(stot));
  for (const auto& v : send) sendbuf.insert(sendbuf.end(), v.begin(), v.end());
  std::vector<std::byte> recv(static_cast<std::size_t>(rtot));
  comm.alltoallv(sendbuf.data(), scounts, sdispls, recv.data(), rcounts,
                 rdispls);

  // Assemble and write my region.
  stats.aggregator_buffer = region.size();
  ScopedAllocation charge(comm.memory(), region.size(),
                          "view-based aggregator buffer");
  std::vector<std::byte> buffer(static_cast<std::size_t>(region.size()));
  std::vector<Extent> covered;
  if (my_agg >= 0) {
    for (int src = 0; src < P; ++src) {
      const std::byte* cursor =
          recv.data() + rdispls[static_cast<std::size_t>(src)];
      for (const Extent& e : cache.extentsOf(src, n)) {
        const Extent piece = intersect(e, region);
        if (piece.empty()) continue;
        std::memcpy(buffer.data() + (piece.begin - region.begin), cursor,
                    static_cast<std::size_t>(piece.size()));
        cursor += piece.size();
        covered.push_back(piece);
      }
    }
    comm.chargeCopy(rtot);
    for (const Extent& run : mpi::normalizeOverlapping(std::move(covered))) {
      fs.pwrite(file, run.begin, buffer.data() + (run.begin - region.begin),
                run.size());
      ++stats.fs_requests;
    }
  }
  return stats;
}

TwoPhaseStats viewBasedRead(mpi::Comm& comm, fs::FsClient& fs,
                            fs::FsFile& file, const ViewCache& cache,
                            std::byte* payload, Bytes n, int cb_nodes) {
  TCIO_CHECK(cache.size() == comm.size());
  TwoPhaseStats stats;
  checkUniformSize(comm, n);
  const int P = comm.size();
  const Domain dom = domainFromCache(comm, cache, n, cb_nodes);
  const auto sp = static_cast<std::size_t>(P);

  // Aggregators load the union of all views inside their region, then ship
  // each requester its bytes; both sides derive all counts locally.
  const int my_agg = dom.aggIndexOf(comm.rank());
  const Extent region = dom.regionOf(my_agg);
  stats.aggregator_buffer = region.size();
  ScopedAllocation charge(comm.memory(), region.size(),
                          "view-based aggregator buffer");
  std::vector<std::byte> buffer(static_cast<std::size_t>(region.size()));
  std::vector<std::vector<std::byte>> replies(sp);
  if (my_agg >= 0) {
    std::vector<Extent> covered;
    for (int src = 0; src < P; ++src) {
      for (const Extent& e : cache.extentsOf(src, n)) {
        const Extent piece = intersect(e, region);
        if (!piece.empty()) covered.push_back(piece);
      }
    }
    for (const Extent& run : mpi::normalizeOverlapping(std::move(covered))) {
      fs.pread(file, run.begin, buffer.data() + (run.begin - region.begin),
               run.size());
      ++stats.fs_requests;
    }
    Bytes served = 0;
    for (int src = 0; src < P; ++src) {
      for (const Extent& e : cache.extentsOf(src, n)) {
        const Extent piece = intersect(e, region);
        if (piece.empty()) continue;
        const std::byte* from = buffer.data() + (piece.begin - region.begin);
        auto& rep = replies[static_cast<std::size_t>(src)];
        rep.insert(rep.end(), from, from + piece.size());
        served += piece.size();
      }
    }
    comm.chargeCopy(served);
  }
  std::vector<Bytes> scounts(sp, 0), rcounts(sp, 0);
  std::vector<Offset> sdispls(sp, 0), rdispls(sp, 0);
  Bytes stot = 0, rtot = 0;
  for (std::size_t i = 0; i < sp; ++i) {
    scounts[i] = static_cast<Bytes>(replies[i].size());
    sdispls[i] = stot;
    stot += scounts[i];
  }
  // My receive counts: my view's bytes inside each aggregator's region.
  const auto my_extents = cache.extentsOf(comm.rank(), n);
  for (int agg = 0; agg < dom.num_agg; ++agg) {
    Bytes cnt = 0;
    for (const Extent& e : my_extents) {
      cnt += intersect(e, dom.regionOf(agg)).size();
    }
    const auto r = static_cast<std::size_t>(dom.aggRank(agg));
    rcounts[r] = cnt;
  }
  for (std::size_t i = 0; i < sp; ++i) {
    rdispls[i] = rtot;
    rtot += rcounts[i];
  }
  std::vector<std::byte> sendbuf;
  sendbuf.reserve(static_cast<std::size_t>(stot));
  for (const auto& v : replies) sendbuf.insert(sendbuf.end(), v.begin(), v.end());
  std::vector<std::byte> recv(static_cast<std::size_t>(rtot));
  comm.alltoallv(sendbuf.data(), scounts, sdispls, recv.data(), rcounts,
                 rdispls);

  // Scatter into the payload in view order.
  std::vector<Offset> cursor(rdispls.begin(), rdispls.end());
  std::byte* out = payload;
  forEachPiece(dom, my_extents, [&](int agg, const Extent& piece) {
    const auto r = static_cast<std::size_t>(dom.aggRank(agg));
    std::memcpy(out, recv.data() + cursor[r],
                static_cast<std::size_t>(piece.size()));
    cursor[r] += piece.size();
    out += piece.size();
  });
  comm.chargeCopy(static_cast<Bytes>(out - payload));
  return stats;
}

}  // namespace tcio::io
