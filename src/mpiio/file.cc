#include "mpiio/file.h"

#include <algorithm>
#include <cstring>
#include <vector>

namespace tcio::io {

MpioFile MpioFile::open(mpi::Comm& comm, fs::Filesystem& fsys,
                        const std::string& name, unsigned flags,
                        MpioConfig cfg) {
  // Rank 0 performs creation/truncation; everyone else opens the existing
  // file afterwards so a reopen cannot clobber freshly written data.
  fs::FsClient bootstrap(fsys, comm.proc());
  fs::FsFile handle;
  if (comm.rank() == 0) {
    handle = bootstrap.open(name, flags);
    comm.barrier();
  } else {
    comm.barrier();
    handle = bootstrap.open(name, flags & ~(fs::kCreate | fs::kTruncate));
  }
  return MpioFile(comm, fsys, handle, cfg);
}

void MpioFile::setView(Offset disp, const mpi::Datatype& etype,
                       const mpi::Datatype& filetype) {
  view_ = FileView(disp, etype, filetype);
  if (cfg_.view_based) {
    view_cache_ =
        std::make_shared<const ViewCache>(ViewCache::exchange(*comm_, view_));
  }
}

void MpioFile::clearView() { view_ = FileView(); }

CollectiveRequest MpioFile::makeRequest(Offset view_off, const void* buf,
                                        Bytes n) const {
  CollectiveRequest req;
  req.extents = view_.mapExtents(view_off, n);
  req.payload = static_cast<std::byte*>(const_cast<void*>(buf));
  return req;
}

void MpioFile::writeAt(Offset view_off, const void* buf, Bytes n) {
  const std::vector<Extent> extents = view_.mapExtents(view_off, n);
  const auto* src = static_cast<const std::byte*>(buf);
  if (extents.size() <= 1 || !cfg_.enable_data_sieving) {
    for (const Extent& e : extents) {
      client_.pwrite(file_, e.begin, src, e.size());
      src += e.size();
    }
    return;
  }
  // Write data sieving: cover runs of extents with sieve windows, read the
  // window, overlay the pieces, write the whole window back.
  std::size_t i = 0;
  while (i < extents.size()) {
    const Offset wbegin = extents[i].begin;
    std::size_t j = i;
    Offset wend = extents[i].end;
    while (j + 1 < extents.size() &&
           extents[j + 1].end - wbegin <= cfg_.sieve_buffer) {
      ++j;
      wend = extents[j].end;
    }
    std::vector<std::byte> window(static_cast<std::size_t>(wend - wbegin));
    client_.pread(file_, wbegin, window.data(), wend - wbegin);
    for (std::size_t k = i; k <= j; ++k) {
      std::memcpy(window.data() + (extents[k].begin - wbegin), src,
                  static_cast<std::size_t>(extents[k].size()));
      src += extents[k].size();
    }
    comm_->chargeCopy(wend - wbegin);
    client_.pwrite(file_, wbegin, window.data(), wend - wbegin);
    i = j + 1;
  }
}

void MpioFile::readAt(Offset view_off, void* buf, Bytes n) {
  const std::vector<Extent> extents = view_.mapExtents(view_off, n);
  auto* dst = static_cast<std::byte*>(buf);
  if (extents.size() <= 1 || !cfg_.enable_data_sieving) {
    for (const Extent& e : extents) {
      client_.pread(file_, e.begin, dst, e.size());
      dst += e.size();
    }
    return;
  }
  std::size_t i = 0;
  while (i < extents.size()) {
    const Offset wbegin = extents[i].begin;
    std::size_t j = i;
    Offset wend = extents[i].end;
    while (j + 1 < extents.size() &&
           extents[j + 1].end - wbegin <= cfg_.sieve_buffer) {
      ++j;
      wend = extents[j].end;
    }
    std::vector<std::byte> window(static_cast<std::size_t>(wend - wbegin));
    client_.pread(file_, wbegin, window.data(), wend - wbegin);
    for (std::size_t k = i; k <= j; ++k) {
      std::memcpy(dst, window.data() + (extents[k].begin - wbegin),
                  static_cast<std::size_t>(extents[k].size()));
      dst += extents[k].size();
    }
    comm_->chargeCopy(wend - wbegin);
    i = j + 1;
  }
}

TwoPhaseStats MpioFile::writeAtAll(Offset view_off, const void* buf, Bytes n) {
  if (cfg_.view_based) {
    TCIO_CHECK_MSG(view_cache_ != nullptr,
                   "view-based collective requires a prior setView");
    TCIO_CHECK_MSG(view_off == 0,
                   "view-based collective supports full-view accesses only");
    return viewBasedWrite(*comm_, client_, file_, *view_cache_,
                          static_cast<const std::byte*>(buf), n,
                          cfg_.cb_nodes);
  }
  return twoPhaseWrite(*comm_, client_, file_, makeRequest(view_off, buf, n),
                       cfg_.cb_nodes);
}

TwoPhaseStats MpioFile::readAtAll(Offset view_off, void* buf, Bytes n) {
  if (cfg_.view_based) {
    TCIO_CHECK_MSG(view_cache_ != nullptr,
                   "view-based collective requires a prior setView");
    TCIO_CHECK_MSG(view_off == 0,
                   "view-based collective supports full-view accesses only");
    return viewBasedRead(*comm_, client_, file_, *view_cache_,
                         static_cast<std::byte*>(buf), n, cfg_.cb_nodes);
  }
  return twoPhaseRead(*comm_, client_, file_, makeRequest(view_off, buf, n),
                      cfg_.cb_nodes);
}

void MpioFile::writeAtAllBegin(Offset view_off, const void* buf, Bytes n) {
  TCIO_CHECK_MSG(!split_.active,
                 "a split collective is already outstanding on this file");
  split_ = {true, true, view_off, const_cast<void*>(buf), n};
}

TwoPhaseStats MpioFile::writeAtAllEnd() {
  TCIO_CHECK_MSG(split_.active && split_.is_write,
                 "writeAtAllEnd without a matching begin");
  const PendingSplit s = split_;
  split_ = {};
  return writeAtAll(s.view_off, s.buf, s.n);
}

void MpioFile::readAtAllBegin(Offset view_off, void* buf, Bytes n) {
  TCIO_CHECK_MSG(!split_.active,
                 "a split collective is already outstanding on this file");
  split_ = {true, false, view_off, buf, n};
}

TwoPhaseStats MpioFile::readAtAllEnd() {
  TCIO_CHECK_MSG(split_.active && !split_.is_write,
                 "readAtAllEnd without a matching begin");
  const PendingSplit s = split_;
  split_ = {};
  return readAtAll(s.view_off, s.buf, s.n);
}

MpioConfig parseHints(const std::string& hints, MpioConfig base) {
  MpioConfig cfg = base;
  std::size_t pos = 0;
  while (pos < hints.size()) {
    const std::size_t end = std::min(hints.find(';', pos), hints.size());
    const std::string item = hints.substr(pos, end - pos);
    pos = end + 1;
    if (item.empty()) continue;
    const std::size_t eq = item.find('=');
    TCIO_CHECK_MSG(eq != std::string::npos, "malformed hint: " + item);
    const std::string key = item.substr(0, eq);
    const std::string value = item.substr(eq + 1);
    if (key == "cb_nodes") {
      cfg.cb_nodes = std::stoi(value);
    } else if (key == "sieve_buffer" || key == "ind_rd_buffer_size") {
      cfg.sieve_buffer = std::stoll(value);
    } else if (key == "romio_ds_write" || key == "romio_ds_read" ||
               key == "data_sieving") {
      TCIO_CHECK_MSG(value == "enable" || value == "disable" ||
                         value == "automatic",
                     "bad data-sieving hint value: " + value);
      if (value != "automatic") cfg.enable_data_sieving = (value == "enable");
    } else {
      throw Error("unknown MPI-IO hint: " + key);
    }
  }
  return cfg;
}

void MpioFile::close() {
  comm_->barrier();
  client_.close(file_);
}

Bytes MpioFile::size() const { return client_.size(file_); }

}  // namespace tcio::io
