#include "mpiio/twophase.h"

#include <algorithm>
#include <cstring>
#include <limits>

#include "common/error.h"
#include "common/memory_tracker.h"
#include "mpi/datatype.h"
#include "mpiio/domain.h"

namespace tcio::io {

namespace {

/// Wire format of one access block in the metadata exchange.
struct BlockMeta {
  Offset off = 0;
  Bytes len = 0;
};
static_assert(sizeof(BlockMeta) == 16);

// Domain partitioning shared with the view-based path lives in domain.h.

/// Allreduce of the aggregate file domain; returns false when no rank has
/// any data (nothing to do, but every rank took part in the collective).
bool computeDomain(mpi::Comm& comm, const CollectiveRequest& req,
                   int cb_nodes, Domain& out) {
  std::int64_t minmax[2];  // {-min, max} so one kMax allreduce handles both
  if (req.extents.empty()) {
    minmax[0] = std::numeric_limits<std::int64_t>::min();
    minmax[1] = std::numeric_limits<std::int64_t>::min();
  } else {
    minmax[0] = -req.extents.front().begin;
    minmax[1] = req.extents.back().end;
  }
  comm.allreduce(minmax, 2, mpi::ReduceOp::kMax);
  if (minmax[1] == std::numeric_limits<std::int64_t>::min()) return false;
  out = Domain::partition(-minmax[0], minmax[1], comm.size(), cb_nodes);
  return true;
}

/// Per-destination split of this rank's request: block metadata plus (for
/// writes) staged payload bytes, both in ascending offset order.
struct SplitRequest {
  std::vector<std::vector<BlockMeta>> meta;       // [dst]
  std::vector<std::vector<std::byte>> payload;    // [dst], writes only
};

SplitRequest splitByAggregator(mpi::Comm& comm, const Domain& dom,
                               const CollectiveRequest& req,
                               bool stage_payload) {
  const int P = comm.size();
  SplitRequest split;
  split.meta.resize(static_cast<std::size_t>(P));
  split.payload.resize(static_cast<std::size_t>(P));
  const std::byte* cursor = req.payload;
  for (const Extent& e : req.extents) {
    Offset cur = e.begin;
    while (cur < e.end) {
      const int agg = dom.aggregatorOf(cur);
      TCIO_CHECK(agg >= 0 && agg < dom.num_agg);
      const int dst = dom.aggRank(agg);
      TCIO_CHECK(dst >= 0 && dst < P);
      const Offset region_end = dom.regionOf(agg).end;
      const Offset piece_end = std::min(e.end, region_end);
      const Bytes len = piece_end - cur;
      split.meta[static_cast<std::size_t>(dst)].push_back({cur, len});
      if (stage_payload) {
        auto& pay = split.payload[static_cast<std::size_t>(dst)];
        pay.insert(pay.end(), cursor, cursor + len);
      }
      if (cursor != nullptr) cursor += len;
      cur = piece_end;
    }
  }
  return split;
}

/// Exchanges per-destination byte counts, then the variable-size buffers.
/// Returns the received bytes per source plus their starting displacements.
struct Exchanged {
  std::vector<std::byte> data;
  std::vector<Bytes> counts;    // per source
  std::vector<Offset> displs;   // per source
};

Exchanged exchangeWithPeers(mpi::Comm& comm,
                   const std::vector<std::vector<std::byte>>& per_dst) {
  const int P = comm.size();
  const auto sp = static_cast<std::size_t>(P);
  // Step 1: counts.
  std::vector<Bytes> scounts(sp), rcounts(sp);
  std::vector<Offset> sdispls(sp), rdispls(sp);
  std::vector<Bytes> size_s(sp), size_r(sp);
  for (std::size_t i = 0; i < sp; ++i) {
    size_s[i] = static_cast<Bytes>(per_dst[i].size());
    scounts[i] = sizeof(Bytes);
    rcounts[i] = sizeof(Bytes);
    sdispls[i] = static_cast<Offset>(i * sizeof(Bytes));
    rdispls[i] = static_cast<Offset>(i * sizeof(Bytes));
  }
  comm.alltoallv(size_s.data(), scounts, sdispls, size_r.data(), rcounts,
                 rdispls);
  // Step 2: the payload itself.
  Bytes send_total = 0, recv_total = 0;
  std::vector<std::byte> sendbuf;
  for (std::size_t i = 0; i < sp; ++i) {
    scounts[i] = size_s[i];
    sdispls[i] = send_total;
    send_total += size_s[i];
    rcounts[i] = size_r[i];
    rdispls[i] = recv_total;
    recv_total += size_r[i];
  }
  sendbuf.reserve(static_cast<std::size_t>(send_total));
  for (const auto& v : per_dst) sendbuf.insert(sendbuf.end(), v.begin(), v.end());
  Exchanged out;
  out.data.resize(static_cast<std::size_t>(recv_total));
  out.counts = std::move(rcounts);
  out.displs = std::move(rdispls);
  comm.alltoallv(sendbuf.data(), scounts, sdispls, out.data.data(),
                 out.counts, out.displs);
  return out;
}

std::vector<std::vector<std::byte>> metaToBytes(
    const std::vector<std::vector<BlockMeta>>& meta) {
  std::vector<std::vector<std::byte>> out(meta.size());
  for (std::size_t i = 0; i < meta.size(); ++i) {
    out[i].resize(meta[i].size() * sizeof(BlockMeta));
    if (!meta[i].empty()) {
      std::memcpy(out[i].data(), meta[i].data(), out[i].size());
    }
  }
  return out;
}

/// Union of received block extents, merged (overlap tolerated: concurrent
/// writers to the same byte are a user race, last-writer-wins here).
std::vector<Extent> coverage(const Exchanged& meta, int P) {
  std::vector<Extent> runs;
  for (int src = 0; src < P; ++src) {
    const auto* blocks = reinterpret_cast<const BlockMeta*>(
        meta.data.data() + meta.displs[static_cast<std::size_t>(src)]);
    const std::size_t n =
        static_cast<std::size_t>(meta.counts[static_cast<std::size_t>(src)]) /
        sizeof(BlockMeta);
    for (std::size_t i = 0; i < n; ++i) {
      runs.push_back({blocks[i].off, blocks[i].off + blocks[i].len});
    }
  }
  return mpi::normalizeOverlapping(std::move(runs));
}

}  // namespace

TwoPhaseStats twoPhaseWrite(mpi::Comm& comm, fs::FsClient& fs,
                            fs::FsFile& file, const CollectiveRequest& req,
                            int cb_nodes) {
  TwoPhaseStats stats;
  Domain dom;
  if (!computeDomain(comm, req, cb_nodes, dom)) return stats;
  const int P = comm.size();

  // Phase 1: shuffle data to aggregators.
  SplitRequest split =
      splitByAggregator(comm, dom, req, /*stage_payload=*/true);
  Bytes staged = 0;
  for (const auto& v : split.payload) staged += static_cast<Bytes>(v.size());
  comm.chargeCopy(staged);
  const Exchanged meta = exchangeWithPeers(comm, metaToBytes(split.meta));
  const Exchanged payload = exchangeWithPeers(comm, split.payload);

  // Phase 2: this rank, if an aggregator, assembles its region, writes it.
  const Extent region = dom.regionOf(dom.aggIndexOf(comm.rank()));
  const Bytes region_size = region.size();
  stats.aggregator_buffer = region_size;
  ScopedAllocation charge(comm.memory(), region_size,
                          "OCIO aggregator (temporary) buffer");
  std::vector<std::byte> buffer(static_cast<std::size_t>(region_size));
  Bytes overlaid = 0;
  for (int src = 0; src < P; ++src) {
    const auto s = static_cast<std::size_t>(src);
    const auto* blocks =
        reinterpret_cast<const BlockMeta*>(meta.data.data() + meta.displs[s]);
    const std::size_t nblocks =
        static_cast<std::size_t>(meta.counts[s]) / sizeof(BlockMeta);
    const std::byte* src_payload = payload.data.data() + payload.displs[s];
    for (std::size_t i = 0; i < nblocks; ++i) {
      TCIO_CHECK(blocks[i].off >= region.begin &&
                 blocks[i].off + blocks[i].len <= region.end);
      std::memcpy(buffer.data() + (blocks[i].off - region.begin), src_payload,
                  static_cast<std::size_t>(blocks[i].len));
      src_payload += blocks[i].len;
      overlaid += blocks[i].len;
    }
  }
  comm.chargeCopy(overlaid);

  for (const Extent& run : coverage(meta, P)) {
    fs.pwrite(file, run.begin, buffer.data() + (run.begin - region.begin),
              run.size());
    ++stats.fs_requests;
  }
  return stats;
}

TwoPhaseStats twoPhaseRead(mpi::Comm& comm, fs::FsClient& fs,
                           fs::FsFile& file, const CollectiveRequest& req,
                           int cb_nodes) {
  TwoPhaseStats stats;
  Domain dom;
  if (!computeDomain(comm, req, cb_nodes, dom)) return stats;
  const int P = comm.size();

  // Requests travel to aggregators.
  SplitRequest split =
      splitByAggregator(comm, dom, req, /*stage_payload=*/false);
  const Exchanged meta = exchangeWithPeers(comm, metaToBytes(split.meta));

  // Aggregator loads the union of requested runs in its region.
  const Extent region = dom.regionOf(dom.aggIndexOf(comm.rank()));
  const Bytes region_size = region.size();
  stats.aggregator_buffer = region_size;
  ScopedAllocation charge(comm.memory(), region_size,
                          "OCIO aggregator (temporary) buffer");
  std::vector<std::byte> buffer(static_cast<std::size_t>(region_size));
  for (const Extent& run : coverage(meta, P)) {
    fs.pread(file, run.begin, buffer.data() + (run.begin - region.begin),
             run.size());
    ++stats.fs_requests;
  }

  // Serve each requester its blocks, in its request order.
  std::vector<std::vector<std::byte>> replies(static_cast<std::size_t>(P));
  Bytes served = 0;
  for (int src = 0; src < P; ++src) {
    const auto s = static_cast<std::size_t>(src);
    const auto* blocks =
        reinterpret_cast<const BlockMeta*>(meta.data.data() + meta.displs[s]);
    const std::size_t nblocks =
        static_cast<std::size_t>(meta.counts[s]) / sizeof(BlockMeta);
    for (std::size_t i = 0; i < nblocks; ++i) {
      const std::byte* from = buffer.data() + (blocks[i].off - region.begin);
      replies[s].insert(replies[s].end(), from, from + blocks[i].len);
      served += blocks[i].len;
    }
  }
  comm.chargeCopy(served);
  const Exchanged back = exchangeWithPeers(comm, replies);

  // Scatter received bytes into the caller's payload, extent order. Pieces
  // from aggregator j arrive in the same ascending-offset order we asked in.
  std::vector<Offset> src_cursor(back.displs.begin(), back.displs.end());
  std::byte* out = req.payload;
  for (const Extent& e : req.extents) {
    Offset cur = e.begin;
    while (cur < e.end) {
      const int agg = dom.aggregatorOf(cur);
      const auto src_rank = static_cast<std::size_t>(dom.aggRank(agg));
      const Offset piece_end = std::min(e.end, dom.regionOf(agg).end);
      const Bytes len = piece_end - cur;
      std::memcpy(out, back.data.data() + src_cursor[src_rank],
                  static_cast<std::size_t>(len));
      src_cursor[src_rank] += len;
      out += len;
      cur = piece_end;
    }
  }
  comm.chargeCopy(static_cast<Bytes>(out - req.payload));
  return stats;
}

}  // namespace tcio::io
