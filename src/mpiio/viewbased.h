// View-based collective I/O (J. Blas, Isaila, Singh, Carretero — CCGRID'08;
// the paper's related work §II).
//
// The insight: with two-phase I/O, every collective call re-transmits block
// metadata (offset/length lists) to the aggregators. But the access pattern
// is fully determined by the *file views*, which rarely change — so exchange
// each rank's view once, when it is set, and let every collective call move
// payload only. Aggregators reconstruct everyone's block lists locally from
// the cached views.
//
// Scope: full-view accesses from view offset 0 with the same payload size on
// every rank (the checkpoint pattern view-based I/O targets); a cheap
// min/max allreduce verifies the size agreement.
#pragma once

#include <vector>

#include "common/types.h"
#include "fs/client.h"
#include "mpi/comm.h"
#include "mpiio/twophase.h"
#include "mpiio/view.h"

namespace tcio::io {

/// One rank's view, in wire form (identity views have no segments).
struct CachedView {
  bool identity = false;
  Offset disp = 0;
  Bytes tile_payload = 0;
  Bytes tile_extent = 0;
  std::vector<Extent> segments;
};

/// All ranks' views, exchanged once (the view-based metadata exchange).
class ViewCache {
 public:
  /// Collective: every rank contributes its current view.
  static ViewCache exchange(mpi::Comm& comm, const FileView& mine);

  int size() const { return static_cast<int>(views_.size()); }
  const CachedView& of(int rank) const {
    return views_[static_cast<std::size_t>(rank)];
  }

  /// Absolute extents of rank `r` accessing `n` payload bytes from view
  /// offset 0 (computed locally — no communication).
  std::vector<Extent> extentsOf(int rank, Bytes n) const;

 private:
  std::vector<CachedView> views_;
};

/// Collective write of each rank's `n` payload bytes through its cached
/// view. Exactly one alltoallv of payload (plus a 16-byte sanity allreduce)
/// — no per-call metadata exchange.
TwoPhaseStats viewBasedWrite(mpi::Comm& comm, fs::FsClient& fs,
                             fs::FsFile& file, const ViewCache& cache,
                             const std::byte* payload, Bytes n,
                             int cb_nodes = 0);

/// Collective read counterpart.
TwoPhaseStats viewBasedRead(mpi::Comm& comm, fs::FsClient& fs,
                            fs::FsFile& file, const ViewCache& cache,
                            std::byte* payload, Bytes n, int cb_nodes = 0);

}  // namespace tcio::io
