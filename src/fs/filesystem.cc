#include "fs/filesystem.h"

#include <algorithm>

#include "common/crc32.h"
#include "common/env.h"

namespace tcio::fs {

Filesystem::Filesystem(FsConfig cfg) : cfg_(cfg), mds_(1.0) {
  TCIO_CHECK(cfg_.num_osts >= 1);
  TCIO_CHECK(cfg_.stripe_size > 0);
  TCIO_CHECK(cfg_.default_stripe_count >= 1 &&
             cfg_.default_stripe_count <= cfg_.num_osts);
  TCIO_CHECK(cfg_.page_size > 0);
  TCIO_CHECK(cfg_.checksum_bandwidth > 0);
  integrity_ = cfg_.integrity > 0 ||
               (cfg_.integrity == 0 && envInt64("TCIO_INTEGRITY", 0) > 0);
  osts_.reserve(static_cast<std::size_t>(cfg_.num_osts));
  caches_.reserve(static_cast<std::size_t>(cfg_.num_osts));
  for (int i = 0; i < cfg_.num_osts; ++i) {
    osts_.emplace_back(1.0);  // duration-priced FCFS queue
    caches_.emplace_back(cfg_.cache_capacity_per_ost);
  }
}

Filesystem::Inode& Filesystem::inodeAt(int inode) {
  TCIO_CHECK_MSG(inode >= 0 && inode < static_cast<int>(inodes_.size()),
                 "invalid inode");
  return *inodes_[static_cast<std::size_t>(inode)];
}

const Filesystem::Inode& Filesystem::inodeAt(int inode) const {
  TCIO_CHECK_MSG(inode >= 0 && inode < static_cast<int>(inodes_.size()),
                 "invalid inode");
  return *inodes_[static_cast<std::size_t>(inode)];
}

Filesystem::OpenResult Filesystem::open(int client, SimTime t,
                                        const std::string& name,
                                        unsigned flags, int stripe_count) {
  ++ops_by_client_[client];
  ++stats_.opens;
  maybeMdsFault(FaultPlan::MdsVerb::kOpen, name);
  const auto it = names_.find(name);
  int inode;
  if (it == names_.end()) {
    if ((flags & kCreate) == 0) {
      throw FileNotFound(name);
    }
    auto ino = std::make_unique<Inode>();
    ino->name = name;
    ino->locks = std::make_unique<LockManager>(cfg_);
    ino->stripe_count =
        stripe_count > 0 ? std::min(stripe_count, cfg_.num_osts)
                         : cfg_.default_stripe_count;
    ino->start_ost = next_start_ost_;
    next_start_ost_ = (next_start_ost_ + ino->stripe_count) % cfg_.num_osts;
    inode = static_cast<int>(inodes_.size());
    inodes_.push_back(std::move(ino));
    names_[name] = inode;
  } else {
    inode = it->second;
    if ((flags & kTruncate) != 0) {
      inodeAt(inode).store.clear();
      inodeAt(inode).locks = std::make_unique<LockManager>(cfg_);
    }
  }
  const SimTime done =
      mds_.serveDuration(t + cfg_.rpc_latency, cfg_.mds_open) +
      cfg_.rpc_latency;
  return {inode, done};
}

template <typename F>
void Filesystem::forEachOstRun(const Inode& ino, Offset off, Bytes n,
                               F&& fn) const {
  if (n <= 0) return;
  if (ino.stripe_count == 1) {
    fn(ostOf(ino, off), off, n);
    return;
  }
  Offset cur = off;
  const Offset end = off + n;
  int run_ost = ostOf(ino, cur);
  Offset run_begin = cur;
  while (cur < end) {
    const Offset chunk_end =
        std::min(end, (cur / cfg_.stripe_size + 1) * cfg_.stripe_size);
    const int ost = ostOf(ino, cur);
    if (ost != run_ost) {
      fn(run_ost, run_begin, cur - run_begin);
      run_ost = ost;
      run_begin = cur;
    }
    cur = chunk_end;
  }
  fn(run_ost, run_begin, cur - run_begin);
}

SimTime Filesystem::write(int client, SimTime t, int inode, Offset off,
                          std::span<const std::byte> data) {
  Inode& ino = inodeAt(inode);
  const Bytes n = static_cast<Bytes>(data.size());
  if (n == 0) return t;
  ++ops_by_client_[client];
  if (plan_ != nullptr && plan_->consumeOneShotWrite()) {
    throw TransientFsError("injected write fault on " + ino.name);
  }
  SimTime done = maybeRebalance(t, ino);
  forEachOstRun(ino, off, n, [&](int ost, Offset roff, Bytes rlen) {
    ++stats_.write_requests;
    maybeFault(FaultPlan::FsVerb::kWrite, ost, t, ino);
    stats_.bytes_written += rlen;
    const LockManager::Cost lock = ino.locks->acquireWrite(client, roff, rlen);
    SimTime duration = cfg_.ost_request_overhead + lock.delay +
                       static_cast<double>(rlen) / cfg_.ost_write_bandwidth;
    if (cfg_.small_write_penalty > 0 &&
        (roff % cfg_.page_size != 0 || rlen < cfg_.page_size)) {
      duration += cfg_.small_write_penalty;  // page read-modify-write
    }
    if (plan_ != nullptr) duration *= plan_->serviceMultiplier(ost);
    const SimTime end =
        osts_[static_cast<std::size_t>(ost)].serveDuration(
            t + cfg_.rpc_latency, duration) +
        cfg_.rpc_latency;
    caches_[static_cast<std::size_t>(ost)].insert(inode, roff, rlen);
    if (trace_ != nullptr) trace_->record(client, t, end, "fs.write", rlen);
    done = std::max(done, end);
  });
  ino.store.write(off, data);
  if (integrity_) {
    digestPages(ino, off, n);
    // Digest pass over the acknowledged bytes (hardware-folded CRC; the
    // replica mirror is asynchronous and charges nothing in the foreground).
    done += static_cast<double>(n) / cfg_.checksum_bandwidth;
  }
  if (plan_ != nullptr &&
      plan_->corruption().fires(CorruptSite::kStoredBlock)) {
    // Silent media corruption of an already-acknowledged block: flips a bit
    // in the primary store only, after the digests were taken, so the next
    // verified read sees bytes that disagree with their recorded CRC.
    flipStoredBit(ino, off, n);
  }
  return done;
}

SimTime Filesystem::read(int client, SimTime t, int inode, Offset off,
                         std::span<std::byte> out) {
  Inode& ino = inodeAt(inode);
  const Bytes n = static_cast<Bytes>(out.size());
  if (n == 0) return t;
  ++ops_by_client_[client];
  SimTime done = maybeRebalance(t, ino);
  forEachOstRun(ino, off, n, [&](int ost, Offset roff, Bytes rlen) {
    ++stats_.read_requests;
    maybeFault(FaultPlan::FsVerb::kRead, ost, t, ino);
    stats_.bytes_read += rlen;
    auto& cache = caches_[static_cast<std::size_t>(ost)];
    const Bytes resident = cache.residentBytes(inode, roff, rlen);
    stats_.bytes_read_from_cache += resident;
    const LockManager::Cost lock = ino.locks->acquireRead(client, roff, rlen);
    const SimTime base_overhead = resident == rlen
                                      ? cfg_.cache_hit_overhead
                                      : cfg_.ost_request_overhead;
    const SimTime duration =
        (base_overhead + lock.delay +
         static_cast<double>(resident) / cfg_.cache_read_bandwidth +
         static_cast<double>(rlen - resident) / cfg_.ost_read_bandwidth) *
        (plan_ != nullptr ? plan_->serviceMultiplier(ost) : 1.0);
    const SimTime end =
        osts_[static_cast<std::size_t>(ost)].serveDuration(
            t + cfg_.rpc_latency, duration) +
        cfg_.rpc_latency;
    cache.insert(inode, roff, rlen);  // disk reads populate the cache too
    if (trace_ != nullptr) trace_->record(client, t, end, "fs.read", rlen);
    done = std::max(done, end);
  });
  if (integrity_) {
    verifyPages(ino, off, n);
    done += static_cast<double>(n) / cfg_.checksum_bandwidth;
  }
  ino.store.read(off, out);
  return done;
}

SimTime Filesystem::close(int client, SimTime t, int inode) {
  ++ops_by_client_[client];
  Inode& ino = inodeAt(inode);  // validity check
  maybeMdsFault(FaultPlan::MdsVerb::kClose, ino.name);
  return mds_.serveDuration(t + cfg_.rpc_latency, cfg_.mds_open / 4) +
         cfg_.rpc_latency;
}

SimTime Filesystem::journalWrite(int client, SimTime t, int inode, Offset off,
                                 std::span<const std::byte> data) {
  Inode& ino = inodeAt(inode);
  const Bytes n = static_cast<Bytes>(data.size());
  if (n == 0) return t;
  ++ops_by_client_[client];
  ++stats_.journal_writes;
  stats_.journal_bytes += n;
  const SimTime end =
      t + cfg_.journal_latency + static_cast<double>(n) / cfg_.journal_bandwidth;
  if (trace_ != nullptr) trace_->record(client, t, end, "fs.journal", n);
  ino.store.write(off, data);
  if (plan_ != nullptr &&
      plan_->corruption().fires(CorruptSite::kJournalBody)) {
    // The journal device is never page-digested or replicated: a bit flip in
    // a committed record survives to replay, where the record's own frame
    // CRC catches it and the record is dropped.
    flipStoredBit(ino, off, n);
  }
  return end;
}

Bytes Filesystem::fileSize(int inode) const { return inodeAt(inode).store.size(); }

bool Filesystem::exists(const std::string& name) const {
  return names_.find(name) != names_.end();
}

void Filesystem::peek(const std::string& name, Offset off,
                      std::span<std::byte> out) const {
  const auto it = names_.find(name);
  TCIO_CHECK_MSG(it != names_.end(), "peek: no such file: " + name);
  inodeAt(it->second).store.read(off, out);
}

Bytes Filesystem::peekSize(const std::string& name) const {
  const auto it = names_.find(name);
  TCIO_CHECK_MSG(it != names_.end(), "peekSize: no such file: " + name);
  return inodeAt(it->second).store.size();
}

void Filesystem::installFaultPlan(const FaultConfig& cfg) {
  if (plan_ != nullptr) return;  // first installation wins (shared schedule)
  plan_ = std::make_unique<FaultPlan>(cfg, FaultPlan::kFsSalt);
}

FaultPlan& Filesystem::ensureFaultPlan() {
  if (plan_ == nullptr) {
    plan_ = std::make_unique<FaultPlan>(FaultConfig{}, FaultPlan::kFsSalt);
  }
  return *plan_;
}

void Filesystem::maybeFault(FaultPlan::FsVerb verb, int ost, SimTime t,
                            const Inode& ino) {
  if (plan_ == nullptr) return;
  switch (plan_->nextFsRequest(verb, ost, t)) {
    case FaultPlan::FsOutcome::kNone:
      return;
    case FaultPlan::FsOutcome::kTransient:
      throw TransientFsError("transient fault on " + ino.name + " (ost " +
                             std::to_string(ost) + ")");
    case FaultPlan::FsOutcome::kNoSpace:
      throw NoSpaceError("no space left on ost " + std::to_string(ost) +
                         " writing " + ino.name);
    case FaultPlan::FsOutcome::kOstFailed:
      throw OstFailedError("ost " + std::to_string(ost) +
                               " failed permanently serving " + ino.name,
                           ost);
  }
}

void Filesystem::maybeMdsFault(FaultPlan::MdsVerb verb,
                               const std::string& name) {
  if (plan_ == nullptr) return;
  if (!plan_->nextMdsOp(verb)) return;
  throw TransientFsError(
      std::string("mds ") +
      (verb == FaultPlan::MdsVerb::kOpen ? "open" : "close") +
      " fault on " + name);
}

SimTime Filesystem::maybeRebalance(SimTime t, Inode& ino) {
  if (plan_ == nullptr || ino.remap.empty() || !plan_->ostRecovered()) {
    return t;
  }
  // The failed OST came back: drop every remap override whose home
  // (striping-layout) OST is the recovered one, so reads and writes route
  // there again. Chunks whose data only exists on the remap target keep the
  // override — the store holds one logical copy, so in this model a restripe
  // is purely a layout update.
  const int recovered = plan_->config().fail_ost;
  std::int64_t moved = 0;
  for (auto it = ino.remap.begin(); it != ino.remap.end();) {
    const std::int64_t chunk = it->first;
    const int home =
        (ino.start_ost + static_cast<int>(chunk % ino.stripe_count)) %
        cfg_.num_osts;
    if (home == recovered) {
      it = ino.remap.erase(it);
      ++moved;
    } else {
      ++it;
    }
  }
  if (moved == 0) return t;
  stats_.chunks_rebalanced += moved;
  // Layout update: one MDS op, like the failover restripe that created it.
  return mds_.serveDuration(t + cfg_.rpc_latency, cfg_.mds_open) +
         cfg_.rpc_latency;
}

Filesystem::RemapResult Filesystem::remapChunks(int client, SimTime t,
                                                int inode, Offset off,
                                                Bytes n) {
  (void)client;
  RemapResult res{0, t};
  Inode& ino = inodeAt(inode);
  if (plan_ == nullptr || n <= 0) return res;
  const std::int64_t first = off / cfg_.stripe_size;
  const std::int64_t last = (off + n - 1) / cfg_.stripe_size;
  for (std::int64_t chunk = first; chunk <= last; ++chunk) {
    if (!plan_->ostFailed(ostOf(ino, chunk * cfg_.stripe_size))) continue;
    int target = -1;
    for (int probe = 0; probe < cfg_.num_osts; ++probe) {
      const int ost = (next_remap_ost_ + probe) % cfg_.num_osts;
      if (!plan_->ostFailed(ost)) {
        target = ost;
        next_remap_ost_ = (ost + 1) % cfg_.num_osts;
        break;
      }
    }
    if (target < 0) return res;  // no survivors; caller surfaces the error
    ino.remap[chunk] = target;
    ++res.remapped;
    ++stats_.chunks_remapped;
  }
  if (res.remapped > 0) {
    // The restripe is an MDS-side layout update: one metadata op.
    res.done = mds_.serveDuration(t + cfg_.rpc_latency, cfg_.mds_open) +
               cfg_.rpc_latency;
  }
  return res;
}

void Filesystem::digestPages(Inode& ino, Offset off, Bytes n) {
  const Bytes page = cfg_.page_size;
  const std::int64_t first = off / page;
  const std::int64_t last = (off + n - 1) / page;
  std::vector<std::byte> buf(static_cast<std::size_t>(page));
  for (std::int64_t p = first; p <= last; ++p) {
    // Full-page digests: the store reads holes and past-EOF bytes as zeros,
    // so a digest taken before the file grows stays valid afterwards.
    ino.store.read(p * page, buf);
    ino.page_crc[p] = crc32(buf);
    if (cfg_.integrity_replicas) ino.replica.write(p * page, buf);
  }
}

void Filesystem::verifyPages(Inode& ino, Offset off, Bytes n) {
  if (ino.page_crc.empty()) return;  // never-digested file (journal inode)
  const Bytes page = cfg_.page_size;
  const std::int64_t first = off / page;
  const std::int64_t last = (off + n - 1) / page;
  std::vector<std::byte> buf(static_cast<std::size_t>(page));
  for (std::int64_t p = first; p <= last; ++p) {
    const auto it = ino.page_crc.find(p);
    if (it == ino.page_crc.end()) continue;  // page never written
    ++stats_.integrity_page_checks;
    ino.store.read(p * page, buf);
    if (crc32(buf) == it->second) continue;
    ++stats_.integrity_page_mismatches;
    if (cfg_.integrity_replicas) {
      ino.replica.read(p * page, buf);
      if (crc32(buf) == it->second) {
        // Read-repair: the replica still matches the recorded digest — heal
        // the primary copy and serve the read from the repaired bytes.
        ino.store.write(p * page, buf);
        ++stats_.integrity_pages_repaired;
        continue;
      }
    }
    throw IntegrityError("stored-block corruption on " + ino.name + " page " +
                         std::to_string(p) +
                         (cfg_.integrity_replicas
                              ? ": replica also fails its digest"
                              : ": no replica configured"));
  }
}

void Filesystem::flipStoredBit(Inode& ino, Offset off, Bytes n) {
  std::vector<std::byte> buf(static_cast<std::size_t>(n));
  ino.store.read(off, buf);
  if (plan_->corruption().flipBit(buf) < 0) return;
  ino.store.write(off, buf);
  ++stats_.corruptions_injected;
}

std::int64_t Filesystem::revocations(const std::string& name) const {
  const auto it = names_.find(name);
  TCIO_CHECK_MSG(it != names_.end(), "revocations: no such file: " + name);
  return inodeAt(it->second).locks->revocations();
}

}  // namespace tcio::fs
