#include "fs/cache.h"

#include <algorithm>

namespace tcio::fs {

void ServerCache::insert(std::int64_t file, Offset off, Bytes n) {
  if (capacity_ <= 0 || n <= 0) return;
  // Charge only the not-yet-resident portion.
  const Bytes fresh = n - residentBytes(file, off, n);
  if (fresh > 0) {
    used_ += fresh;
    fifo_.push_back({file, Extent{off, off + n}});
  }
  // Merge into the interval map.
  IntervalMap& im = files_[file];
  Offset begin = off, end = off + n;
  auto it = im.lower_bound(begin);
  if (it != im.begin()) {
    auto prev = std::prev(it);
    if (prev->second >= begin) {
      begin = prev->first;
      end = std::max(end, prev->second);
      it = im.erase(prev);
    }
  }
  while (it != im.end() && it->first <= end) {
    end = std::max(end, it->second);
    it = im.erase(it);
  }
  im[begin] = end;
  evictUntilFits();
}

Bytes ServerCache::residentBytes(std::int64_t file, Offset off, Bytes n) const {
  if (capacity_ <= 0 || n <= 0) return 0;
  const auto fit = files_.find(file);
  if (fit == files_.end()) return 0;
  const IntervalMap& im = fit->second;
  Bytes resident = 0;
  auto it = im.upper_bound(off);
  if (it != im.begin()) --it;
  for (; it != im.end() && it->first < off + n; ++it) {
    const Offset b = std::max(it->first, off);
    const Offset e = std::min(it->second, off + n);
    if (e > b) resident += e - b;
  }
  return resident;
}

void ServerCache::evictUntilFits() {
  while (used_ > capacity_ && !fifo_.empty()) {
    const auto [file, ext] = fifo_.front();
    fifo_.pop_front();
    auto fit = files_.find(file);
    if (fit == files_.end()) continue;
    IntervalMap& im = fit->second;
    // Remove [ext.begin, ext.end) from the interval map, counting what was
    // actually resident (later inserts may have merged or re-covered it).
    auto it = im.upper_bound(ext.begin);
    if (it != im.begin()) --it;
    while (it != im.end() && it->first < ext.end) {
      const Offset b = it->first, e = it->second;
      const Offset rb = std::max(b, ext.begin);
      const Offset re = std::min(e, ext.end);
      if (re <= rb) {
        ++it;
        continue;
      }
      used_ -= re - rb;
      it = im.erase(it);
      if (b < rb) im[b] = rb;
      if (re < e) it = im.insert({re, e}).first;
    }
    if (im.empty()) files_.erase(fit);
  }
}

}  // namespace tcio::fs
