// The simulated parallel file system: MDS + OSTs + lock manager + caches,
// storing real bytes. Shared by all ranks; every costed operation must run
// inside a Proc::atomic() section (the FsClient facade does that).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/error.h"
#include "common/fault.h"
#include "common/types.h"
#include "fs/cache.h"
#include "fs/config.h"
#include "fs/lock_manager.h"
#include "fs/store.h"
#include "sim/timeline.h"
#include "sim/trace.h"

namespace tcio::fs {

/// Open flags (POSIX-flavoured bitmask).
enum OpenFlags : unsigned {
  kRead = 1u << 0,
  kWrite = 1u << 1,
  kCreate = 1u << 2,
  kTruncate = 1u << 3,
};

/// Aggregate statistics for benches and tests.
struct FsStats {
  std::int64_t write_requests = 0;
  std::int64_t read_requests = 0;
  Bytes bytes_written = 0;
  Bytes bytes_read = 0;
  Bytes bytes_read_from_cache = 0;
  std::int64_t lock_revocations = 0;
  std::int64_t lock_grants = 0;
  std::int64_t opens = 0;
  /// Injected-fault accounting (0 when no FaultPlan is installed).
  std::int64_t transient_faults_injected = 0;
  std::int64_t no_space_faults_injected = 0;
  std::int64_t mds_faults_injected = 0;
  std::int64_t chunks_remapped = 0;
  /// Chunks moved back to their home OST after it recovered.
  std::int64_t chunks_rebalanced = 0;
  /// Journal-device accounting (write-ahead log appends).
  std::int64_t journal_writes = 0;
  Bytes journal_bytes = 0;
  /// Stored-block checksum domain (0 unless FsConfig::integrity resolves on).
  std::int64_t integrity_page_checks = 0;
  std::int64_t integrity_page_mismatches = 0;
  std::int64_t integrity_pages_repaired = 0;
  /// Seeded silent corruptions actually injected (kStoredBlock/kJournalBody).
  std::int64_t corruptions_injected = 0;
};

/// Shared file system state + cost model.
class Filesystem {
 public:
  explicit Filesystem(FsConfig cfg);

  const FsConfig& config() const { return cfg_; }

  // All of the following return the virtual completion time and must be
  // called inside an atomic section. `client` identifies the calling rank
  // for lock ownership purposes; `t` is the caller's current virtual time.

  /// Opens (optionally creating/truncating) a file; returns its inode.
  struct OpenResult {
    int inode = -1;
    SimTime done = 0;
  };
  OpenResult open(int client, SimTime t, const std::string& name,
                  unsigned flags, int stripe_count = 0);

  SimTime write(int client, SimTime t, int inode, Offset off,
                std::span<const std::byte> data);
  SimTime read(int client, SimTime t, int inode, Offset off,
               std::span<std::byte> out);
  SimTime close(int client, SimTime t, int inode);

  /// Write-ahead journal append: sequential write to the journal device
  /// (FsConfig::journal_bandwidth), bypassing OST queues, extent locks, and
  /// OST fault injection — the model is a node-local intent log whose bytes
  /// stay globally readable after a crash (peek / read serve recovery).
  SimTime journalWrite(int client, SimTime t, int inode, Offset off,
                       std::span<const std::byte> data);

  /// File size in bytes (costless metadata peek for the layers above).
  Bytes fileSize(int inode) const;

  // -- Test/verification helpers (no cost, no locking semantics) -----------
  bool exists(const std::string& name) const;
  /// Reads file contents directly from the store.
  void peek(const std::string& name, Offset off, std::span<std::byte> out) const;
  Bytes peekSize(const std::string& name) const;

  /// Snapshot of counters (lock stats aggregated over all files).
  FsStats stats() const {
    FsStats s = stats_;
    for (const auto& ip : inodes_) {
      s.lock_revocations += ip->locks->revocations();
      s.lock_grants += ip->locks->grants();
    }
    if (plan_ != nullptr) {
      s.transient_faults_injected = plan_->transientFaultsInjected();
      s.no_space_faults_injected = plan_->noSpaceFaultsInjected();
      s.mds_faults_injected = plan_->mdsFaultsInjected();
    }
    return s;
  }
  /// Lock revocations of one file (ping-pong metric).
  std::int64_t revocations(const std::string& name) const;

  /// Costed FS calls (open/write/read/close/journal) per calling rank.
  /// Evidence for delegate mode: the key set is exactly the ranks that ever
  /// touched the file system. Verification helpers (peek/exists) don't count.
  const std::map<int, std::int64_t>& opsByClient() const {
    return ops_by_client_;
  }

  // -- Fault injection ------------------------------------------------------

  /// Installs a seeded fault plan (see common/fault.h). First installation
  /// wins; later calls are ignored so that ranks racing through a collective
  /// open share one schedule. Must be called inside an atomic section.
  void installFaultPlan(const FaultConfig& cfg);
  const FaultPlan* faultPlan() const { return plan_.get(); }

  /// Legacy single-shot injector: the N-th subsequent write *call* throws
  /// TransientFsError (a FsError). Kept as a shim over the FaultPlan.
  void injectWriteFault(std::int64_t after_requests) {
    ensureFaultPlan().scheduleOneShotWrite(after_requests);
  }

  /// Remaps chunks of [off, off+n) whose OST has permanently failed to
  /// surviving OSTs, round-robin (models an MDS failover restripe; charged
  /// as one MDS op when anything moved). Returns how many chunks moved —
  /// 0 either when nothing in range is on a failed OST or when no OST
  /// survives (the caller should then surface the original error).
  struct RemapResult {
    std::int64_t remapped = 0;
    SimTime done = 0;
  };
  RemapResult remapChunks(int client, SimTime t, int inode, Offset off,
                          Bytes n);

  /// Optional event trace: every OST request is recorded as "fs.write" /
  /// "fs.read" with the requesting client as the rank (not owned).
  void setTrace(sim::Trace* trace) { trace_ = trace; }

 private:
  struct Inode {
    std::string name;
    SparseStore store;
    std::unique_ptr<LockManager> locks;
    int stripe_count = 1;
    int start_ost = 0;
    /// Degraded-mode overrides: chunk index -> surviving OST. Populated by
    /// remapChunks() after a permanent OST failure; empty in healthy runs.
    std::map<std::int64_t, int> remap;
    /// Stored-block checksum domain: CRC32 per FsConfig::page_size page,
    /// recorded at write acknowledgement, verified on every read. Journal
    /// inodes never appear here (journalWrite maintains no digests).
    std::map<std::int64_t, std::uint32_t> page_crc;
    /// Mirrored replica of every digested page (read-repair source).
    SparseStore replica;
  };

  /// OST serving [off, off+len) of a file (remap overrides striping).
  int ostOf(const Inode& ino, Offset off) const {
    const std::int64_t chunk = off / cfg_.stripe_size;
    if (!ino.remap.empty()) {
      const auto it = ino.remap.find(chunk);
      if (it != ino.remap.end()) return it->second;
    }
    return (ino.start_ost + static_cast<int>(chunk % ino.stripe_count)) %
           cfg_.num_osts;
  }

  FaultPlan& ensureFaultPlan();

  /// Consults the plan for one OST request and throws the scheduled typed
  /// error, if any. No-op without a plan.
  void maybeFault(FaultPlan::FsVerb verb, int ost, SimTime t,
                  const Inode& ino);

  /// Consults the plan for one MDS RPC; throws TransientFsError when the
  /// RPC faults (FsClient's open/close retry loops absorb it).
  void maybeMdsFault(FaultPlan::MdsVerb verb, const std::string& name);

  /// True when the stored-block checksum domain is active (resolved once in
  /// the constructor from FsConfig::integrity and TCIO_INTEGRITY).
  bool integrityOn() const { return integrity_; }

  /// Moves remapped chunks back to their home OST once it has recovered
  /// (FaultPlan::ostRecovered). Called lazily from the costed paths; charges
  /// one MDS op when anything moved and returns its completion time (or `t`).
  SimTime maybeRebalance(SimTime t, Inode& ino);

  Inode& inodeAt(int inode);
  const Inode& inodeAt(int inode) const;

  /// Re-digests (and mirrors) every page overlapping [off, off+n).
  void digestPages(Inode& ino, Offset off, Bytes n);
  /// Verifies every digested page overlapping [off, off+n); read-repairs a
  /// mismatching page from the replica (healing the primary) or throws
  /// IntegrityError when no intact copy survives.
  void verifyPages(Inode& ino, Offset off, Bytes n);
  /// Flips one seeded bit of the primary store inside [off, off+n)
  /// (injection helper — bypasses digests and the replica by design).
  void flipStoredBit(Inode& ino, Offset off, Bytes n);

  /// Splits [off, off+n) into maximal runs served by a single OST and calls
  /// fn(ost, run_off, run_len) for each.
  template <typename F>
  void forEachOstRun(const Inode& ino, Offset off, Bytes n, F&& fn) const;

  FsConfig cfg_;
  std::map<std::string, int> names_;
  std::vector<std::unique_ptr<Inode>> inodes_;
  sim::Timeline mds_;
  std::vector<sim::Timeline> osts_;
  std::vector<ServerCache> caches_;
  int next_start_ost_ = 0;
  int next_remap_ost_ = 0;
  bool integrity_ = false;
  FsStats stats_;
  std::map<int, std::int64_t> ops_by_client_;
  std::unique_ptr<FaultPlan> plan_;
  sim::Trace* trace_ = nullptr;
};

}  // namespace tcio::fs
