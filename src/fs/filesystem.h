// The simulated parallel file system: MDS + OSTs + lock manager + caches,
// storing real bytes. Shared by all ranks; every costed operation must run
// inside a Proc::atomic() section (the FsClient facade does that).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/error.h"
#include "common/types.h"
#include "fs/cache.h"
#include "fs/config.h"
#include "fs/lock_manager.h"
#include "fs/store.h"
#include "sim/timeline.h"
#include "sim/trace.h"

namespace tcio::fs {

/// Open flags (POSIX-flavoured bitmask).
enum OpenFlags : unsigned {
  kRead = 1u << 0,
  kWrite = 1u << 1,
  kCreate = 1u << 2,
  kTruncate = 1u << 3,
};

/// Aggregate statistics for benches and tests.
struct FsStats {
  std::int64_t write_requests = 0;
  std::int64_t read_requests = 0;
  Bytes bytes_written = 0;
  Bytes bytes_read = 0;
  Bytes bytes_read_from_cache = 0;
  std::int64_t lock_revocations = 0;
  std::int64_t lock_grants = 0;
  std::int64_t opens = 0;
};

/// Shared file system state + cost model.
class Filesystem {
 public:
  explicit Filesystem(FsConfig cfg);

  const FsConfig& config() const { return cfg_; }

  // All of the following return the virtual completion time and must be
  // called inside an atomic section. `client` identifies the calling rank
  // for lock ownership purposes; `t` is the caller's current virtual time.

  /// Opens (optionally creating/truncating) a file; returns its inode.
  struct OpenResult {
    int inode = -1;
    SimTime done = 0;
  };
  OpenResult open(int client, SimTime t, const std::string& name,
                  unsigned flags, int stripe_count = 0);

  SimTime write(int client, SimTime t, int inode, Offset off,
                std::span<const std::byte> data);
  SimTime read(int client, SimTime t, int inode, Offset off,
               std::span<std::byte> out);
  SimTime close(int client, SimTime t, int inode);

  /// File size in bytes (costless metadata peek for the layers above).
  Bytes fileSize(int inode) const;

  // -- Test/verification helpers (no cost, no locking semantics) -----------
  bool exists(const std::string& name) const;
  /// Reads file contents directly from the store.
  void peek(const std::string& name, Offset off, std::span<std::byte> out) const;
  Bytes peekSize(const std::string& name) const;
  /// Corrupts one stored byte (fault-injection for integrity tests).
  void pokeByte(const std::string& name, Offset off, std::byte value);

  /// Snapshot of counters (lock stats aggregated over all files).
  FsStats stats() const {
    FsStats s = stats_;
    for (const auto& ip : inodes_) {
      s.lock_revocations += ip->locks->revocations();
      s.lock_grants += ip->locks->grants();
    }
    return s;
  }
  /// Lock revocations of one file (ping-pong metric).
  std::int64_t revocations(const std::string& name) const;

  /// Failure injection: the N-th subsequent write request throws FsError.
  void injectWriteFault(std::int64_t after_requests) {
    write_fault_in_ = after_requests;
  }

  /// Optional event trace: every OST request is recorded as "fs.write" /
  /// "fs.read" with the requesting client as the rank (not owned).
  void setTrace(sim::Trace* trace) { trace_ = trace; }

 private:
  struct Inode {
    std::string name;
    SparseStore store;
    std::unique_ptr<LockManager> locks;
    int stripe_count = 1;
    int start_ost = 0;
  };

  /// OST serving [off, off+len) of a file.
  int ostOf(const Inode& ino, Offset off) const {
    const std::int64_t chunk = off / cfg_.stripe_size;
    return (ino.start_ost + static_cast<int>(chunk % ino.stripe_count)) %
           cfg_.num_osts;
  }

  Inode& inodeAt(int inode);
  const Inode& inodeAt(int inode) const;

  /// Splits [off, off+n) into maximal runs served by a single OST and calls
  /// fn(ost, run_off, run_len) for each.
  template <typename F>
  void forEachOstRun(const Inode& ino, Offset off, Bytes n, F&& fn) const;

  FsConfig cfg_;
  std::map<std::string, int> names_;
  std::vector<std::unique_ptr<Inode>> inodes_;
  sim::Timeline mds_;
  std::vector<sim::Timeline> osts_;
  std::vector<ServerCache> caches_;
  int next_start_ost_ = 0;
  FsStats stats_;
  std::int64_t write_fault_in_ = -1;
  sim::Trace* trace_ = nullptr;
};

}  // namespace tcio::fs
