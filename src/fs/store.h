// Sparse byte store backing simulated files.
//
// Stores real data so every layer above can be verified end-to-end. Pages
// are allocated lazily; holes read back as zero (POSIX semantics).
#pragma once

#include <cstring>
#include <map>
#include <span>
#include <vector>

#include "common/error.h"
#include "common/types.h"

namespace tcio::fs {

/// Page-granular sparse storage for one file's contents.
class SparseStore {
 public:
  static constexpr Bytes kPageSize = 64_KiB;

  void write(Offset off, std::span<const std::byte> data);
  void read(Offset off, std::span<std::byte> out) const;

  /// Highest written offset + 1 (0 for an empty file).
  Bytes size() const { return size_; }

  /// Drops all contents (truncate to zero).
  void clear() {
    pages_.clear();
    size_ = 0;
  }

  /// Bytes of actually allocated pages (for memory accounting in tests).
  Bytes allocatedBytes() const {
    return static_cast<Bytes>(pages_.size()) * kPageSize;
  }

 private:
  std::map<std::int64_t, std::vector<std::byte>> pages_;
  Bytes size_ = 0;
};

}  // namespace tcio::fs
