#include "fs/lock_manager.h"

#include <algorithm>

namespace tcio::fs {

LockManager::Cost LockManager::acquireWrite(int client, Offset off, Bytes n) {
  Cost cost;
  const std::int64_t first = off / cfg_->stripe_size;
  const std::int64_t last = (off + n - 1) / cfg_->stripe_size;
  for (std::int64_t u = first; u <= last; ++u) {
    Unit& un = units_[u];
    if (un.write_owner == client && un.read_holders.empty()) {
      continue;  // already own it exclusively — free
    }
    if (un.write_owner != -1 && un.write_owner != client) {
      cost.delay += cfg_->lock_revoke;  // call back the previous writer
      cost.revoked = true;
      ++revocations_;
    }
    // Readers must be called back too (one aggregate revoke charge).
    if (!un.read_holders.empty() &&
        !(un.read_holders.size() == 1 && un.read_holders[0] == client)) {
      cost.delay += cfg_->lock_revoke;
      cost.revoked = true;
      ++revocations_;
    }
    un.read_holders.clear();
    un.write_owner = client;
    cost.delay += cfg_->lock_grant;
    ++grants_;
  }
  return cost;
}

LockManager::Cost LockManager::acquireRead(int client, Offset off, Bytes n) {
  Cost cost;
  if (n <= 0) return cost;
  const std::int64_t first = off / cfg_->stripe_size;
  const std::int64_t last = (off + n - 1) / cfg_->stripe_size;
  for (std::int64_t u = first; u <= last; ++u) {
    Unit& un = units_[u];
    if (un.write_owner != -1 && un.write_owner != client) {
      // Flush the writer's dirty data and downgrade its lock.
      cost.delay += cfg_->lock_revoke;
      cost.revoked = true;
      ++revocations_;
      un.write_owner = -1;
    }
    const bool already =
        std::find(un.read_holders.begin(), un.read_holders.end(), client) !=
        un.read_holders.end();
    if (!already) {
      un.read_holders.push_back(client);
      cost.delay += cfg_->lock_grant;
      ++grants_;
    }
  }
  return cost;
}

}  // namespace tcio::fs
