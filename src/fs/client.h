// Per-rank POSIX-like client for the simulated file system. Wraps every
// Filesystem call in a Proc::atomic() section and advances the caller's
// clock to the operation's completion time — this is the "vanilla" I/O path
// the paper's MPI-IO baseline bottoms out in.
#pragma once

#include <span>
#include <string>

#include "fs/filesystem.h"
#include "sim/engine.h"

namespace tcio::fs {

/// Handle on an open simulated file.
class FsFile {
 public:
  FsFile() = default;
  /// True once the handle refers to an open inode. A successful
  /// FsClient::open always returns a valid handle — open failures are
  /// reported by throwing (FileNotFound and friends), never by handing back
  /// an invalid handle — so valid() can only be false for a
  /// default-constructed or already-closed FsFile.
  bool valid() const { return inode_ >= 0; }
  int inode() const { return inode_; }

 private:
  friend class FsClient;
  FsFile(int inode, unsigned flags) : inode_(inode), flags_(flags) {}
  int inode_ = -1;
  unsigned flags_ = 0;
};

/// One rank's view of the file system.
class FsClient {
 public:
  /// Per-client retry accounting (surfaced through TcioStats::degraded).
  struct RetryStats {
    std::int64_t transient_faults = 0;  // TransientFsErrors this rank saw
    std::int64_t retries = 0;           // backoff-then-retry cycles
    std::int64_t giveups = 0;           // retry budget exhausted, error rose
  };

  FsClient(Filesystem& fs, sim::Proc& proc)
      : fs_(&fs), proc_(&proc), client_(proc.rank()) {}

  /// Opens `name` with OpenFlags; `stripe_count` 0 = file system default.
  /// Throws FileNotFound when `name` does not exist and kCreate is unset.
  /// Transient MDS faults are absorbed by the retry policy like pwrite's.
  FsFile open(const std::string& name, unsigned flags, int stripe_count = 0);

  /// pwrite/pread absorb TransientFsError up to the retry policy's attempt
  /// budget, charging a jittered exponential backoff to this rank's virtual
  /// clock between attempts. Permanent fault classes (NoSpaceError,
  /// OstFailedError) are never retried and surface immediately. When a
  /// multi-attempt retry budget is exhausted, the typed
  /// `RetryExhaustedError` (a TransientFsError) rises, carrying the attempt
  /// count; with retry disabled (max_attempts == 1) the original error
  /// surfaces unchanged.
  void pwrite(FsFile& f, Offset off, const void* data, Bytes n);
  void pread(FsFile& f, Offset off, void* out, Bytes n);

  /// Write-ahead journal append (see Filesystem::journalWrite): sequential
  /// write to the journal device, no OST queues/locks/fault injection.
  void appendJournal(FsFile& f, Offset off, const void* data, Bytes n);

  /// Current file size (cheap metadata query).
  Bytes size(const FsFile& f) const;

  void close(FsFile& f);

  /// Degraded mode: remap failed-OST chunks of [off, off+n) to surviving
  /// OSTs. Returns the number of chunks moved (0 = nothing remappable).
  std::int64_t remapFailedChunks(FsFile& f, Offset off, Bytes n);

  /// Installs the shared fault plan (first caller wins, see Filesystem).
  void installFaultPlan(const FaultConfig& cfg);

  void setRetryPolicy(const RetryPolicy& policy) { retry_ = policy; }
  const RetryPolicy& retryPolicy() const { return retry_; }
  const RetryStats& retryStats() const { return retry_stats_; }

  Filesystem& filesystem() { return *fs_; }

 private:
  Filesystem* fs_;
  sim::Proc* proc_;
  int client_;
  RetryPolicy retry_;
  RetryStats retry_stats_;
};

}  // namespace tcio::fs
