// Per-rank POSIX-like client for the simulated file system. Wraps every
// Filesystem call in a Proc::atomic() section and advances the caller's
// clock to the operation's completion time — this is the "vanilla" I/O path
// the paper's MPI-IO baseline bottoms out in.
#pragma once

#include <span>
#include <string>

#include "fs/filesystem.h"
#include "sim/engine.h"

namespace tcio::fs {

/// Handle on an open simulated file.
class FsFile {
 public:
  FsFile() = default;
  bool valid() const { return inode_ >= 0; }
  int inode() const { return inode_; }

 private:
  friend class FsClient;
  FsFile(int inode, unsigned flags) : inode_(inode), flags_(flags) {}
  int inode_ = -1;
  unsigned flags_ = 0;
};

/// One rank's view of the file system.
class FsClient {
 public:
  FsClient(Filesystem& fs, sim::Proc& proc)
      : fs_(&fs), proc_(&proc), client_(proc.rank()) {}

  /// Opens `name` with OpenFlags; `stripe_count` 0 = file system default.
  FsFile open(const std::string& name, unsigned flags, int stripe_count = 0);

  void pwrite(FsFile& f, Offset off, const void* data, Bytes n);
  void pread(FsFile& f, Offset off, void* out, Bytes n);

  /// Current file size (cheap metadata query).
  Bytes size(const FsFile& f) const;

  void close(FsFile& f);

  Filesystem& filesystem() { return *fs_; }

 private:
  Filesystem* fs_;
  sim::Proc* proc_;
  int client_;
};

}  // namespace tcio::fs
