// Per-OST server-side write-back cache.
//
// Writes land in server memory and are cached; reads of cached extents are
// served at memory speed instead of disk speed. This models the asymmetry
// the paper's experiments show (read throughput well above the disk write
// ceiling for write-then-restart workloads). FIFO eviction bounded by a
// per-OST byte capacity.
#pragma once

#include <cstdint>
#include <deque>
#include <map>

#include "common/types.h"

namespace tcio::fs {

/// Interval cache keyed by (file id, byte range). FIFO eviction.
class ServerCache {
 public:
  /// `capacity` <= 0 disables the cache entirely.
  explicit ServerCache(Bytes capacity) : capacity_(capacity) {}

  /// Record that [off, off+n) of file `file` is now cache-resident.
  void insert(std::int64_t file, Offset off, Bytes n);

  /// Bytes of [off, off+n) currently resident.
  Bytes residentBytes(std::int64_t file, Offset off, Bytes n) const;

  Bytes usedBytes() const { return used_; }

 private:
  using IntervalMap = std::map<Offset, Offset>;  // begin -> end, disjoint

  void evictUntilFits();

  Bytes capacity_;
  Bytes used_ = 0;
  std::map<std::int64_t, IntervalMap> files_;
  std::deque<std::pair<std::int64_t, Extent>> fifo_;
};

}  // namespace tcio::fs
