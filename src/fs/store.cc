#include "fs/store.h"

#include <algorithm>

namespace tcio::fs {

void SparseStore::write(Offset off, std::span<const std::byte> data) {
  TCIO_CHECK(off >= 0);
  Offset cur = off;
  std::size_t consumed = 0;
  while (consumed < data.size()) {
    const std::int64_t page = cur / kPageSize;
    const Offset in_page = cur % kPageSize;
    const std::size_t n = std::min<std::size_t>(
        data.size() - consumed, static_cast<std::size_t>(kPageSize - in_page));
    auto& storage = pages_[page];
    if (storage.empty()) storage.resize(static_cast<std::size_t>(kPageSize));
    std::memcpy(storage.data() + in_page, data.data() + consumed, n);
    consumed += n;
    cur += static_cast<Offset>(n);
  }
  size_ = std::max(size_, off + static_cast<Bytes>(data.size()));
}

void SparseStore::read(Offset off, std::span<std::byte> out) const {
  TCIO_CHECK(off >= 0);
  Offset cur = off;
  std::size_t produced = 0;
  while (produced < out.size()) {
    const std::int64_t page = cur / kPageSize;
    const Offset in_page = cur % kPageSize;
    const std::size_t n = std::min<std::size_t>(
        out.size() - produced, static_cast<std::size_t>(kPageSize - in_page));
    const auto it = pages_.find(page);
    if (it == pages_.end()) {
      std::memset(out.data() + produced, 0, n);
    } else {
      std::memcpy(out.data() + produced, it->second.data() + in_page, n);
    }
    produced += n;
    cur += static_cast<Offset>(n);
  }
}

}  // namespace tcio::fs
