// Distributed lock manager (Lustre LDLM analogue).
//
// Extent locks at stripe granularity: each lock unit of a file is owned by
// at most one client at a time (writer locks; concurrent readers share).
// A write into a unit owned by another client triggers a revoke — callback
// to the owner plus dirty-data flush — which is where the "interleaved small
// writes from many processes" pattern loses its performance: ownership
// ping-pongs on every access. Collective I/O wins precisely by making each
// unit's traffic come from one process.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "common/types.h"
#include "fs/config.h"

namespace tcio::fs {

/// Per-file lock table. Time costs are returned, not charged — the
/// filesystem facade folds them into request service time.
class LockManager {
 public:
  explicit LockManager(const FsConfig& cfg) : cfg_(&cfg) {}

  struct Cost {
    SimTime delay = 0;       // grant / revoke latency to add to the request
    bool revoked = false;    // a conflicting owner was revoked
  };

  /// Acquire write ownership of every lock unit intersecting [off, off+n)
  /// for `client`. Returns the summed cost.
  Cost acquireWrite(int client, Offset off, Bytes n);

  /// Acquire read access; conflicts only with a different writing owner.
  Cost acquireRead(int client, Offset off, Bytes n);

  /// Number of revocations so far (lock ping-pong metric).
  std::int64_t revocations() const { return revocations_; }
  std::int64_t grants() const { return grants_; }

 private:
  struct Unit {
    int write_owner = -1;            // client id, -1 = none
    std::vector<int> read_holders;   // client ids with read locks
  };

  Unit& unit(Offset off) { return units_[off / cfg_->stripe_size]; }

  const FsConfig* cfg_;
  std::map<std::int64_t, Unit> units_;
  std::int64_t revocations_ = 0;
  std::int64_t grants_ = 0;
};

}  // namespace tcio::fs
