// Parallel file system model parameters.
//
// Defaults approximate the paper's Lonestar/Lustre deployment: 30 OSTs,
// 1 MiB stripes, one OST per file by default, extent locks at stripe
// granularity. Bandwidths and overheads are calibration constants; the
// benches only rely on their ratios (see EXPERIMENTS.md).
#pragma once

#include "common/types.h"

namespace tcio::fs {

struct FsConfig {
  /// Number of object storage targets.
  int num_osts = 30;
  /// Stripe size; also the extent-lock granularity.
  Bytes stripe_size = 1_MiB;
  /// OSTs a newly created file is striped over (Lonestar default: 1).
  int default_stripe_count = 1;

  /// Sustained per-OST write bandwidth to disk, bytes/s.
  double ost_write_bandwidth = 500.0e6;
  /// Sustained per-OST read bandwidth from disk, bytes/s.
  double ost_read_bandwidth = 1.2e9;
  /// Per-request service overhead (seek + RPC handling) at an OST.
  SimTime ost_request_overhead = 0.4e-3;
  /// Per-request overhead when a read is fully served from the server
  /// cache (no media access — RPC handling only).
  SimTime cache_hit_overhead = 30.0e-6;

  /// Extra cost of a write that is smaller than a page or not page-aligned
  /// (server-side read-modify-write of the page). 0 disables.
  Bytes page_size = 4096;
  SimTime small_write_penalty = 0.0;
  /// Client<->server RPC latency (one way).
  SimTime rpc_latency = 30.0e-6;

  /// Server-side write-back cache: reads of recently written extents are
  /// served at this rate instead of the disk rate.
  double cache_read_bandwidth = 4.0e9;
  /// Cache capacity per OST, bytes (0 disables the cache).
  Bytes cache_capacity_per_ost = 256_MiB;

  /// Extent-lock manager: cost of granting a fresh lock.
  SimTime lock_grant = 50.0e-6;
  /// Cost of revoking a conflicting client's lock (callback + dirty flush).
  SimTime lock_revoke = 0.6e-3;

  /// Metadata server: cost of an open/create or close.
  SimTime mds_open = 1.0e-3;

  /// Write-ahead journal device: sequential append bandwidth and per-record
  /// latency. Journal appends bypass the OST queues and extent locks — the
  /// model is a node-local intent log (NVMe / flash tier) whose contents
  /// remain globally readable for crash recovery. Sized so that journaling
  /// every level-2 flush costs well under the striped OST write path.
  double journal_bandwidth = 2.0e9;
  SimTime journal_latency = 20.0e-6;

  /// Stored-block checksum domain (DESIGN.md §11): tri-state. > 0 forces
  /// per-page digests + read-verify on; 0 defers to the TCIO_INTEGRITY
  /// environment variable; < 0 pins it off regardless of the environment.
  int integrity = 0;
  /// Mirror every acknowledged data page to a replica store (modelled as an
  /// asynchronous mirror — no extra foreground cost) so a failed page
  /// verify can be read-repaired. Off: a stored-block corruption is
  /// unrepairable and surfaces as a typed IntegrityError. The journal
  /// device is never replicated or page-digested — its records carry their
  /// own frame CRCs and replay drops what fails them.
  bool integrity_replicas = true;
  /// Per-byte digest/verify throughput. Hardware-folded CRC32 (PCLMUL
  /// class) runs near memory speed and overlaps the copy pass that is
  /// already charged, so only the residual per-byte cost appears here.
  double checksum_bandwidth = 50.0e9;
};

}  // namespace tcio::fs
