#include "fs/client.h"

#include <string>

#include "sim/backoff.h"

namespace tcio::fs {

namespace {

/// Exhausted multi-attempt budgets surface as the typed RetryExhaustedError;
/// with retry disabled (max_attempts == 1) the original error is preserved.
[[noreturn]] void giveUp(const char* op, const TransientFsError& e,
                         int attempts, int max_attempts) {
  if (max_attempts > 1) {
    throw RetryExhaustedError(std::string(op) + ": retry budget exhausted (" +
                                  std::to_string(attempts) + " attempts): " +
                                  e.what(),
                              attempts);
  }
  throw;
}

}  // namespace

FsFile FsClient::open(const std::string& name, unsigned flags,
                      int stripe_count) {
  for (int attempt = 1;; ++attempt) {
    try {
      Filesystem::OpenResult res;
      proc_->atomic([&] {
        res = fs_->open(client_, proc_->now(), name, flags, stripe_count);
      });
      proc_->advanceTo(res.done);
      return FsFile(res.inode, flags);
    } catch (const TransientFsError& e) {
      // Transient MDS faults only — FileNotFound is not a TransientFsError
      // and surfaces immediately.
      ++retry_stats_.transient_faults;
      if (attempt >= retry_.max_attempts) {
        ++retry_stats_.giveups;
        giveUp("open", e, attempt, retry_.max_attempts);
      }
      ++retry_stats_.retries;
      proc_->advance(sim::backoffDelay(retry_, attempt, proc_->rng()));
    }
  }
}

void FsClient::pwrite(FsFile& f, Offset off, const void* data, Bytes n) {
  TCIO_CHECK_MSG(f.valid(), "pwrite on closed file");
  TCIO_CHECK_MSG((f.flags_ & kWrite) != 0, "pwrite on read-only handle");
  const auto* p = static_cast<const std::byte*>(data);
  for (int attempt = 1;; ++attempt) {
    try {
      SimTime done = 0;
      proc_->atomic([&] {
        done = fs_->write(client_, proc_->now(), f.inode_,
                          off, {p, static_cast<std::size_t>(n)});
      });
      proc_->advanceTo(done);
      return;
    } catch (const TransientFsError& e) {
      ++retry_stats_.transient_faults;
      if (attempt >= retry_.max_attempts) {
        ++retry_stats_.giveups;
        giveUp("pwrite", e, attempt, retry_.max_attempts);
      }
      ++retry_stats_.retries;
      proc_->advance(sim::backoffDelay(retry_, attempt, proc_->rng()));
    }
  }
}

void FsClient::pread(FsFile& f, Offset off, void* out, Bytes n) {
  TCIO_CHECK_MSG(f.valid(), "pread on closed file");
  TCIO_CHECK_MSG((f.flags_ & kRead) != 0, "pread on write-only handle");
  auto* p = static_cast<std::byte*>(out);
  for (int attempt = 1;; ++attempt) {
    try {
      SimTime done = 0;
      proc_->atomic([&] {
        done = fs_->read(client_, proc_->now(), f.inode_,
                         off, {p, static_cast<std::size_t>(n)});
      });
      proc_->advanceTo(done);
      return;
    } catch (const TransientFsError& e) {
      ++retry_stats_.transient_faults;
      if (attempt >= retry_.max_attempts) {
        ++retry_stats_.giveups;
        giveUp("pread", e, attempt, retry_.max_attempts);
      }
      ++retry_stats_.retries;
      proc_->advance(sim::backoffDelay(retry_, attempt, proc_->rng()));
    }
  }
}

void FsClient::appendJournal(FsFile& f, Offset off, const void* data,
                             Bytes n) {
  TCIO_CHECK_MSG(f.valid(), "appendJournal on closed file");
  TCIO_CHECK_MSG((f.flags_ & kWrite) != 0, "appendJournal on read-only handle");
  const auto* p = static_cast<const std::byte*>(data);
  SimTime done = 0;
  proc_->atomic([&] {
    done = fs_->journalWrite(client_, proc_->now(), f.inode_, off,
                             {p, static_cast<std::size_t>(n)});
  });
  proc_->advanceTo(done);
}

Bytes FsClient::size(const FsFile& f) const {
  TCIO_CHECK_MSG(f.valid(), "size on closed file");
  Bytes n = 0;
  proc_->atomic([&] { n = fs_->fileSize(f.inode_); });
  return n;
}

std::int64_t FsClient::remapFailedChunks(FsFile& f, Offset off, Bytes n) {
  TCIO_CHECK_MSG(f.valid(), "remapFailedChunks on closed file");
  Filesystem::RemapResult res;
  proc_->atomic([&] {
    res = fs_->remapChunks(client_, proc_->now(), f.inode_, off, n);
  });
  if (res.remapped > 0) proc_->advanceTo(res.done);
  return res.remapped;
}

void FsClient::installFaultPlan(const FaultConfig& cfg) {
  proc_->atomic([&] { fs_->installFaultPlan(cfg); });
}

void FsClient::close(FsFile& f) {
  TCIO_CHECK_MSG(f.valid(), "double close");
  for (int attempt = 1;; ++attempt) {
    try {
      SimTime done = 0;
      proc_->atomic([&] {
        done = fs_->close(client_, proc_->now(), f.inode_);
      });
      proc_->advanceTo(done);
      f.inode_ = -1;
      return;
    } catch (const TransientFsError& e) {
      ++retry_stats_.transient_faults;
      if (attempt >= retry_.max_attempts) {
        ++retry_stats_.giveups;
        giveUp("close", e, attempt, retry_.max_attempts);
      }
      ++retry_stats_.retries;
      proc_->advance(sim::backoffDelay(retry_, attempt, proc_->rng()));
    }
  }
}

}  // namespace tcio::fs
