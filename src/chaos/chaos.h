// Composed chaos harness (DESIGN.md §8.2).
//
// The fault-injection layers below (common/fault.h) are each deterministic
// on their own; what the matrix tests cannot cover is their *composition* —
// a straggling OST stretching collective skew while two ranks die in
// different rounds, a third dies inside the recovery replay of the first,
// and transient EIO noise forces retry loops under all of it. The chaos
// harness closes that gap:
//
//   * a `ChaosPlan` is one fully-specified composed schedule (crash arms,
//     corruption arms, FS fault rates, straggler, exchange mode), drawn from
//     a seeded stream by makeChaosPlan() with geometric inter-arrival gaps
//     between crash rounds — and round-trippable through a compact string
//     (ChaosPlan::str / parse) so a red seed is a one-line reproducer;
//   * runChaos() executes the plan against a fault-free SHADOW run of the
//     same workload and checks an invariant oracle: survivor regions must be
//     byte-identical to the shadow, crashed-rank regions must hold either
//     the value the workload wrote or zero (no silent corruption), stats
//     must conserve (agreed deaths never exceed real deaths, every agreed
//     death's segments are taken over, integrity never reports unrepairable
//     loss), and the whole run must reproduce bit-exactly from its seed;
//   * minimizeChaos() greedily shrinks a failing plan — dropping crash and
//     corruption arms, bisecting crash ordinals, zeroing rates, stripping
//     the straggler — to a minimal schedule that still fails, which is what
//     gets printed on a red seed.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/fault.h"
#include "common/types.h"

namespace tcio::chaos {

/// Distribution knobs for makeChaosPlan(). The defaults keep every drawn
/// plan inside the envelope the recovery machinery guarantees to survive
/// (journaling on, transients under the retry budget, straggler skew under
/// the liveness window), so a red seed is a real bug, not a mis-tuned plan.
struct ChaosKnobs {
  int ranks = 12;
  int ranks_per_node = 4;
  Bytes segment_size = 512;
  std::int64_t segments_per_rank = 2;
  /// Write rounds; each ends in a collective flush (close is round `rounds`).
  int rounds = 5;
  /// Crash arms are drawn with geometric inter-arrival gaps of this mean (in
  /// collective rounds) until the round horizon or this cap is hit.
  int max_crashes = 4;
  double crash_mean_gap = 1.5;
  /// One drawn crash is retargeted to CrashPoint::kMidRecovery when at least
  /// two fire, so cascades land inside recovery itself.
  bool allow_mid_recovery = true;
  /// Per-request transient EIO rates are drawn uniformly from [0, max].
  double transient_rate_max = 0.12;
  /// Probability of a straggling OST (service-time multiplier, not an
  /// error); the multiplier stays far under the liveness window.
  double straggler_chance = 0.35;
  double straggler_multiplier = 4.0;
  /// Probability of drawing node aggregation for the exchange path.
  double node_agg_chance = 0.35;
  /// Arm the end-to-end integrity pipeline and draw silent bit-flips
  /// (staging-frame and window sites — the domains integrity repairs before
  /// any byte reaches the store).
  bool integrity = false;
  double corruption_chance = 0.6;
  int max_corruptions = 2;
};

/// One fully-specified composed fault schedule. Everything runChaos() needs
/// is in here (plus the workload shape), so plans serialize losslessly.
struct ChaosPlan {
  std::uint64_t seed = 1;
  int ranks = 12;
  int ranks_per_node = 4;
  Bytes segment_size = 512;
  std::int64_t segments_per_rank = 2;
  int rounds = 5;
  bool node_agg = false;
  bool integrity = false;
  double fs_transient_write_rate = 0.0;
  double fs_transient_read_rate = 0.0;
  int straggler_ost = -1;
  double straggler_multiplier = 1.0;
  std::vector<CrashSchedule> crashes;
  std::vector<CorruptionSchedule> corruptions;

  /// Compact one-line form, e.g.
  ///   "chaos1 seed=7 ranks=12 rpn=4 seg=512 spr=2 rounds=5 nodeagg=0
  ///    integ=1 eiow=0.05 eior=0 strag=1:4 crash=3@coll.2,5@recovery.0
  ///    corrupt=2@window.0"
  /// parse(str()) reproduces the plan exactly (rates print round-trippably).
  std::string str() const;
  static ChaosPlan parse(const std::string& s);
};

/// Draws one composed plan from `seed`. Same (knobs, seed) -> same plan.
ChaosPlan makeChaosPlan(const ChaosKnobs& knobs, std::uint64_t seed);

/// What the oracle concluded about one plan's execution.
struct ChaosOutcome {
  bool ok = true;
  /// First violated invariant, human-readable; empty when ok.
  std::string failure;
  // Observability for soak logs and conservation asserts in tests.
  int ranks_crashed = 0;               // ranks that actually died
  std::int64_t segments_taken_over = 0;  // summed over survivors
  std::int64_t window_remaps = 0;        // takeover-capacity growth rounds
  std::int64_t journal_records_replayed = 0;
  std::int64_t crc_mismatches = 0;       // integrity runs only
};

/// Runs the plan's workload three times — fault-free shadow, faulty, faulty
/// again — and checks the invariant oracle (see file comment). Never throws
/// on an oracle violation; the verdict is in the returned outcome.
ChaosOutcome runChaos(const ChaosPlan& plan);

/// Greedy schedule minimizer: repeatedly tries dropping one crash arm, one
/// corruption arm, or one scalar fault class (transient rates, straggler,
/// node aggregation, integrity+corruption) and keeps any mutation for which
/// `fails` still returns true, until no single deletion preserves the
/// failure. Surviving crash arms additionally have their `after` ordinal
/// bisected to the smallest still-failing value, so a printed red plan says
/// "the 2nd collective" rather than whatever large ordinal the draw landed
/// on. `fails(plan)` must be true on entry.
ChaosPlan minimizeChaos(const ChaosPlan& plan,
                        const std::function<bool(const ChaosPlan&)>& fails);

}  // namespace tcio::chaos
