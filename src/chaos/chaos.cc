#include "chaos/chaos.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <sstream>

#include "common/error.h"
#include "common/rng.h"
#include "mpi/agreement.h"
#include "mpi/runtime.h"
#include "tcio/file.h"

namespace tcio::chaos {

namespace {

constexpr std::uint64_t kChaosSalt = 0x6368616f73ULL;  // "chaos"

const char* pointName(CrashPoint p) {
  switch (p) {
    case CrashPoint::kAtCollective: return "coll";
    case CrashPoint::kMidRma: return "rma";
    case CrashPoint::kMidJournal: return "journal";
    case CrashPoint::kMidClose: return "close";
    case CrashPoint::kMidRecovery: return "recovery";
  }
  return "?";
}

CrashPoint parsePoint(const std::string& s) {
  if (s == "coll") return CrashPoint::kAtCollective;
  if (s == "rma") return CrashPoint::kMidRma;
  if (s == "journal") return CrashPoint::kMidJournal;
  if (s == "close") return CrashPoint::kMidClose;
  if (s == "recovery") return CrashPoint::kMidRecovery;
  TCIO_CHECK_MSG(false, "unknown crash point in chaos plan string");
  return CrashPoint::kAtCollective;
}

const char* siteName(CorruptSite s) {
  switch (s) {
    case CorruptSite::kStagingFrame: return "frame";
    case CorruptSite::kWindow: return "window";
    case CorruptSite::kStoredBlock: return "stored";
    case CorruptSite::kJournalBody: return "jbody";
  }
  return "?";
}

CorruptSite parseSite(const std::string& s) {
  if (s == "frame") return CorruptSite::kStagingFrame;
  if (s == "window") return CorruptSite::kWindow;
  if (s == "stored") return CorruptSite::kStoredBlock;
  if (s == "jbody") return CorruptSite::kJournalBody;
  TCIO_CHECK_MSG(false, "unknown corruption site in chaos plan string");
  return CorruptSite::kStagingFrame;
}

std::string fmtRate(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

/// The workload's value model: one fixed byte per offset, written exactly
/// once, so a crashed rank's region can be attributed byte-by-byte (the
/// round value or zero — anything else is silent corruption).
std::byte expectedByte(const ChaosPlan& plan, Offset off) {
  return static_cast<std::byte>(
      (off * 13 + off / plan.segment_size + 7) % 251 + 1);
}

/// Everything one execution of the plan's workload produced, reduced to a
/// comparable fingerprint (the determinism invariant is `a == b`).
struct RunFingerprint {
  std::vector<std::int32_t> outcome;  // CapturedError code per rank
  Bytes file_size = 0;
  std::vector<std::byte> contents;
  SimTime makespan = 0;
  std::vector<std::int64_t> stats_flat;          // per-rank, concatenated
  std::vector<core::TcioStats> per_rank_stats;   // for conservation checks
};

void flattenInto(const core::TcioStats& s, std::vector<std::int64_t>* out) {
  out->push_back(s.writes);
  out->push_back(s.level1_flushes);
  out->push_back(s.bytes_written);
  out->push_back(s.node_exchanges);
  out->push_back(s.degraded.ranks_crashed);
  out->push_back(s.degraded.segments_taken_over);
  out->push_back(s.degraded.journal_records_replayed);
  out->push_back(s.degraded.journal_bytes_replayed);
  out->push_back(s.degraded.journal_torn_records);
  out->push_back(s.degraded.unjournaled_segments_lost);
  out->push_back(s.degraded.window_remaps);
  out->push_back(s.degraded.fs_transient_faults);
  out->push_back(s.degraded.fs_retries);
  out->push_back(s.integrity.crc_checks);
  out->push_back(s.integrity.crc_mismatches);
  out->push_back(s.integrity.repaired);
  out->push_back(s.integrity.unrepairable);
}

core::TcioConfig chaosConfig(const ChaosPlan& plan, bool faulty) {
  core::TcioConfig cfg;
  cfg.segment_size = plan.segment_size;
  cfg.segments_per_rank = plan.segments_per_rank;
  cfg.use_onesided = true;
  cfg.lazy_reads = true;
  cfg.node_aggregation = plan.node_agg;
  cfg.crash.enabled = true;  // shadow runs the same protocol, unarmed
  cfg.crash.journal = true;
  // A straggling OST stretches collective skew; keep the failure detector's
  // window comfortably above it so chaos never manufactures false deaths.
  cfg.crash.liveness_window = 500.0e-3;
  // Pin integrity explicitly (never defer to TCIO_INTEGRITY): the oracle
  // compares faulty vs shadow runs, which must agree on the pipeline.
  cfg.integrity.enabled = plan.integrity ? 1 : -1;
  cfg.retry.max_attempts = 8;  // absorb drawn transient rates
  cfg.faults.seed = plan.seed;
  if (!faulty) return cfg;
  cfg.faults.crashes = plan.crashes;
  cfg.faults.corruptions = plan.corruptions;
  cfg.faults.fs_transient_write_rate = plan.fs_transient_write_rate;
  cfg.faults.fs_transient_read_rate = plan.fs_transient_read_rate;
  if (plan.straggler_ost >= 0) {
    cfg.faults.straggler_ost = plan.straggler_ost;
    cfg.faults.straggler_multiplier = plan.straggler_multiplier;
  }
  cfg.faults.enabled = plan.fs_transient_write_rate > 0 ||
                       plan.fs_transient_read_rate > 0 ||
                       plan.straggler_ost >= 0;
  return cfg;
}

RunFingerprint runOnce(const ChaosPlan& plan, bool faulty) {
  const Bytes region = plan.segment_size * plan.segments_per_rank;

  fs::FsConfig fcfg;
  fcfg.num_osts = 3;
  fcfg.stripe_size = plan.segment_size;
  fcfg.default_stripe_count = 3;
  fs::Filesystem fsys(fcfg);

  mpi::JobConfig jc;
  jc.num_ranks = plan.ranks;
  jc.net.ranks_per_node = plan.ranks_per_node;
  jc.seed = plan.seed;

  const core::TcioConfig cfg = chaosConfig(plan, faulty);

  RunFingerprint fp;
  fp.outcome.assign(static_cast<std::size_t>(plan.ranks), 0);
  fp.per_rank_stats.resize(static_cast<std::size_t>(plan.ranks));
  const mpi::JobResult jr = mpi::runJob(jc, [&](mpi::Comm& comm) {
    const int r = comm.rank();
    mpi::CapturedError err;
    core::File f(comm, fsys, "chaos.dat", fs::kWrite | fs::kCreate, cfg);
    try {
      const Offset begin = r * region;
      std::vector<std::byte> buf;
      for (int round = 0; round < plan.rounds; ++round) {
        // Round k writes slice k of this rank's private region in small
        // chunks, then flushes collectively — so every byte is journaled
        // one round after it is written and each crash round has a
        // well-defined durable prefix.
        const Offset lo = begin + region * round / plan.rounds;
        const Offset hi = begin + region * (round + 1) / plan.rounds;
        constexpr Bytes kChunk = 128;
        for (Offset cur = lo; cur < hi;) {
          const Bytes n = std::min<Bytes>(kChunk, hi - cur);
          buf.resize(static_cast<std::size_t>(n));
          for (Bytes i = 0; i < n; ++i) {
            buf[static_cast<std::size_t>(i)] = expectedByte(plan, cur + i);
          }
          f.writeAt(cur, buf.data(), n);
          cur += n;
        }
        f.flush();
      }
      f.close();
    } catch (const std::exception& e) {
      err.capture(e);
    }
    fp.outcome[static_cast<std::size_t>(r)] = err.code;
    fp.per_rank_stats[static_cast<std::size_t>(r)] = f.stats();
  });
  fp.makespan = jr.makespan;
  for (const core::TcioStats& s : fp.per_rank_stats) {
    flattenInto(s, &fp.stats_flat);
  }
  fp.file_size = fsys.peekSize("chaos.dat");
  fp.contents.resize(static_cast<std::size_t>(fp.file_size));
  if (fp.file_size > 0) fsys.peek("chaos.dat", 0, fp.contents);
  return fp;
}

}  // namespace

std::string ChaosPlan::str() const {
  std::ostringstream os;
  os << "chaos1 seed=" << seed << " ranks=" << ranks
     << " rpn=" << ranks_per_node << " seg=" << segment_size
     << " spr=" << segments_per_rank << " rounds=" << rounds
     << " nodeagg=" << (node_agg ? 1 : 0) << " integ=" << (integrity ? 1 : 0)
     << " eiow=" << fmtRate(fs_transient_write_rate)
     << " eior=" << fmtRate(fs_transient_read_rate);
  if (straggler_ost >= 0) {
    os << " strag=" << straggler_ost << ":" << fmtRate(straggler_multiplier);
  }
  if (!crashes.empty()) {
    os << " crash=";
    for (std::size_t i = 0; i < crashes.size(); ++i) {
      if (i > 0) os << ",";
      os << crashes[i].rank << "@" << pointName(crashes[i].point) << "."
         << crashes[i].after;
    }
  }
  if (!corruptions.empty()) {
    os << " corrupt=";
    for (std::size_t i = 0; i < corruptions.size(); ++i) {
      if (i > 0) os << ",";
      os << corruptions[i].rank << "@" << siteName(corruptions[i].site) << "."
         << corruptions[i].after;
    }
  }
  return os.str();
}

ChaosPlan ChaosPlan::parse(const std::string& s) {
  ChaosPlan p;
  std::istringstream is(s);
  std::string tok;
  is >> tok;
  TCIO_CHECK_MSG(tok == "chaos1", "not a chaos plan string (missing header)");
  const auto splitList = [](const std::string& v) {
    std::vector<std::string> out;
    std::size_t at = 0;
    while (at <= v.size()) {
      const std::size_t comma = v.find(',', at);
      out.push_back(v.substr(at, comma - at));
      if (comma == std::string::npos) break;
      at = comma + 1;
    }
    return out;
  };
  // One "rank@name.after" element of a crash/corrupt list.
  const auto splitArm = [](const std::string& e, Rank* rank,
                           std::string* name, std::int64_t* after) {
    const std::size_t amp = e.find('@');
    const std::size_t dot = e.rfind('.');
    TCIO_CHECK_MSG(amp != std::string::npos && dot != std::string::npos &&
                       dot > amp,
                   "malformed arm in chaos plan string");
    *rank = static_cast<Rank>(std::stoll(e.substr(0, amp)));
    *name = e.substr(amp + 1, dot - amp - 1);
    *after = std::stoll(e.substr(dot + 1));
  };
  while (is >> tok) {
    const std::size_t eq = tok.find('=');
    TCIO_CHECK_MSG(eq != std::string::npos, "malformed chaos plan token");
    const std::string key = tok.substr(0, eq);
    const std::string val = tok.substr(eq + 1);
    if (key == "seed") {
      p.seed = static_cast<std::uint64_t>(std::stoull(val));
    } else if (key == "ranks") {
      p.ranks = static_cast<int>(std::stoll(val));
    } else if (key == "rpn") {
      p.ranks_per_node = static_cast<int>(std::stoll(val));
    } else if (key == "seg") {
      p.segment_size = std::stoll(val);
    } else if (key == "spr") {
      p.segments_per_rank = std::stoll(val);
    } else if (key == "rounds") {
      p.rounds = static_cast<int>(std::stoll(val));
    } else if (key == "nodeagg") {
      p.node_agg = std::stoll(val) != 0;
    } else if (key == "integ") {
      p.integrity = std::stoll(val) != 0;
    } else if (key == "eiow") {
      p.fs_transient_write_rate = std::stod(val);
    } else if (key == "eior") {
      p.fs_transient_read_rate = std::stod(val);
    } else if (key == "strag") {
      const std::size_t colon = val.find(':');
      TCIO_CHECK_MSG(colon != std::string::npos, "malformed strag token");
      p.straggler_ost = static_cast<int>(std::stoll(val.substr(0, colon)));
      p.straggler_multiplier = std::stod(val.substr(colon + 1));
    } else if (key == "crash") {
      for (const std::string& e : splitList(val)) {
        CrashSchedule c;
        std::string name;
        splitArm(e, &c.rank, &name, &c.after);
        c.point = parsePoint(name);
        p.crashes.push_back(c);
      }
    } else if (key == "corrupt") {
      for (const std::string& e : splitList(val)) {
        CorruptionSchedule c;
        std::string name;
        splitArm(e, &c.rank, &name, &c.after);
        c.site = parseSite(name);
        p.corruptions.push_back(c);
      }
    } else {
      TCIO_CHECK_MSG(false, "unknown key in chaos plan string");
    }
  }
  return p;
}

ChaosPlan makeChaosPlan(const ChaosKnobs& knobs, std::uint64_t seed) {
  ChaosPlan p;
  p.seed = seed;
  p.ranks = knobs.ranks;
  p.ranks_per_node = knobs.ranks_per_node;
  p.segment_size = knobs.segment_size;
  p.segments_per_rank = knobs.segments_per_rank;
  p.rounds = knobs.rounds;
  p.integrity = knobs.integrity;
  Rng rng(seed ^ kChaosSalt);
  p.node_agg = rng.uniform() < knobs.node_agg_chance;
  if (rng.uniform() < 0.7) {
    p.fs_transient_write_rate = rng.uniform() * knobs.transient_rate_max;
  }
  if (rng.uniform() < 0.5) {
    p.fs_transient_read_rate = rng.uniform() * knobs.transient_rate_max;
  }
  if (rng.uniform() < knobs.straggler_chance) {
    p.straggler_ost = static_cast<int>(rng.uniformInt(0, 2));
    p.straggler_multiplier = knobs.straggler_multiplier;
  }
  // Crash arms at geometric inter-arrival gaps over the collective rounds
  // (flush rounds 0..rounds-1; `rounds` is the close). Victims are distinct
  // and capped below half the job so survivors always exist.
  const int max_crashes =
      std::min(knobs.max_crashes, std::max(1, knobs.ranks / 2 - 1));
  std::vector<bool> used(static_cast<std::size_t>(knobs.ranks), false);
  const auto drawGap = [&] {
    double u = rng.uniform();
    if (u > 0.999) u = 0.999;
    return 1 + static_cast<std::int64_t>(
                   std::floor(-std::log(1.0 - u) * knobs.crash_mean_gap));
  };
  std::int64_t at = drawGap() - 1;
  while (at <= knobs.rounds &&
         static_cast<int>(p.crashes.size()) < max_crashes) {
    Rank victim = static_cast<Rank>(rng.uniformInt(0, knobs.ranks - 1));
    for (int tries = 0; used[static_cast<std::size_t>(victim)] && tries < 64;
         ++tries) {
      victim = static_cast<Rank>(rng.uniformInt(0, knobs.ranks - 1));
    }
    if (used[static_cast<std::size_t>(victim)]) break;
    used[static_cast<std::size_t>(victim)] = true;
    CrashSchedule c;
    c.rank = victim;
    const double u = rng.uniform();
    if (u < 0.45) {
      c.point = CrashPoint::kAtCollective;
      c.after = at;
    } else if (u < 0.65) {
      c.point = CrashPoint::kMidRma;
      c.after = rng.uniformInt(0, std::max<std::int64_t>(0, at));
    } else if (u < 0.8) {
      c.point = CrashPoint::kMidJournal;
      c.after = rng.uniformInt(0, 1);
    } else {
      c.point = CrashPoint::kMidClose;
      c.after = rng.uniformInt(0, knobs.segments_per_rank - 1);
    }
    p.crashes.push_back(c);
    at += drawGap();
  }
  if (knobs.allow_mid_recovery && p.crashes.size() >= 2) {
    // Cascade: the LAST drawn victim dies inside recovery replay instead —
    // it only fires if that rank actually adopts segments from an earlier
    // death, which is exactly the in-flight-recovery window we want hit.
    p.crashes.back().point = CrashPoint::kMidRecovery;
    p.crashes.back().after = 0;
  }
  if (knobs.integrity) {
    const int n_corrupt =
        rng.uniform() < knobs.corruption_chance
            ? static_cast<int>(rng.uniformInt(1, knobs.max_corruptions))
            : 0;
    for (int i = 0; i < n_corrupt; ++i) {
      CorruptionSchedule c;
      // Only the sites integrity repairs before bytes reach the store: the
      // oracle demands byte parity, so unrepairable domains stay out.
      c.site = rng.uniform() < 0.5 ? CorruptSite::kStagingFrame
                                   : CorruptSite::kWindow;
      c.rank = static_cast<Rank>(rng.uniformInt(0, knobs.ranks - 1));
      c.after = rng.uniformInt(0, 2);
      p.corruptions.push_back(c);
    }
  }
  return p;
}

ChaosOutcome runChaos(const ChaosPlan& plan) {
  const Bytes region = plan.segment_size * plan.segments_per_rank;
  const Bytes total = region * plan.ranks;
  ChaosOutcome out;
  const auto fail = [&](const std::string& m) {
    if (out.ok) {
      out.ok = false;
      out.failure = m;
    }
  };

  // Shadow: the same workload and exchange config with every fault class
  // stripped. It must be perfect — it is the parity reference.
  const RunFingerprint shadow = runOnce(plan, /*faulty=*/false);
  for (int r = 0; r < plan.ranks; ++r) {
    if (shadow.outcome[static_cast<std::size_t>(r)] != 0) {
      fail("shadow run failed on rank " + std::to_string(r));
    }
  }
  if (shadow.file_size != total) fail("shadow run produced a short file");
  for (Offset off = 0; out.ok && off < total; ++off) {
    if (shadow.contents[static_cast<std::size_t>(off)] !=
        expectedByte(plan, off)) {
      fail("shadow byte mismatch at offset " + std::to_string(off));
    }
  }
  if (!out.ok) return out;

  const RunFingerprint a = runOnce(plan, /*faulty=*/true);

  // Invariant 1 — outcomes: a rank either completed cleanly or died at a
  // SCHEDULED crash; any other error on any rank is a verdict.
  std::vector<bool> dead(static_cast<std::size_t>(plan.ranks), false);
  for (int r = 0; r < plan.ranks; ++r) {
    const std::int32_t code = a.outcome[static_cast<std::size_t>(r)];
    if (code == mpi::CapturedError::kRankCrashed) {
      dead[static_cast<std::size_t>(r)] = true;
      ++out.ranks_crashed;
      const bool scheduled =
          std::any_of(plan.crashes.begin(), plan.crashes.end(),
                      [&](const CrashSchedule& c) { return c.rank == r; });
      if (!scheduled) {
        fail("rank " + std::to_string(r) + " died without a scheduled crash");
      }
    } else if (code != 0) {
      fail("rank " + std::to_string(r) +
           " failed with error code " + std::to_string(code));
    }
  }

  // Invariant 2 — byte attribution vs the shadow: survivor regions exactly;
  // crashed regions hold the written value or zero, never garbage.
  if (a.file_size > total) fail("faulty run overgrew the file");
  for (Offset off = 0; out.ok && off < total; ++off) {
    const std::byte v = off < static_cast<Offset>(a.file_size)
                            ? a.contents[static_cast<std::size_t>(off)]
                            : std::byte{0};
    const int writer = static_cast<int>(off / region);
    if (!dead[static_cast<std::size_t>(writer)]) {
      if (v != shadow.contents[static_cast<std::size_t>(off)]) {
        fail("survivor byte lost/corrupt at offset " + std::to_string(off) +
             " (writer rank " + std::to_string(writer) + ")");
      }
    } else if (v != expectedByte(plan, off) && v != std::byte{0}) {
      fail("silent corruption in crashed rank " + std::to_string(writer) +
           "'s region at offset " + std::to_string(off));
    }
  }

  // Invariant 3 — stats conservation.
  std::int64_t max_agreed = 0;
  std::int64_t unrepairable = 0;
  for (int r = 0; r < plan.ranks; ++r) {
    const core::TcioStats& s = a.per_rank_stats[static_cast<std::size_t>(r)];
    if (dead[static_cast<std::size_t>(r)]) continue;
    max_agreed = std::max(max_agreed, s.degraded.ranks_crashed);
    out.segments_taken_over += s.degraded.segments_taken_over;
    out.window_remaps += s.degraded.window_remaps;
    out.journal_records_replayed += s.degraded.journal_records_replayed;
    out.crc_mismatches += s.integrity.crc_mismatches;
    unrepairable += s.integrity.unrepairable;
    if (s.bytes_written != region) {
      fail("survivor rank " + std::to_string(r) +
           " wrote " + std::to_string(s.bytes_written) + " bytes, expected " +
           std::to_string(region));
    }
  }
  if (max_agreed > out.ranks_crashed) {
    fail("survivors agreed on more deaths than actually happened");
  }
  if (out.segments_taken_over < max_agreed * plan.segments_per_rank) {
    fail("takeover leak: " + std::to_string(max_agreed) +
         " agreed deaths but only " + std::to_string(out.segments_taken_over) +
         " segments taken over");
  }
  if (plan.integrity && unrepairable != 0) {
    fail("integrity reported unrepairable corruption under chaos");
  }

  // Invariant 4 — seed-exact determinism: the identical plan replays to the
  // identical fingerprint, outcome codes through makespan through stats.
  const RunFingerprint b = runOnce(plan, /*faulty=*/true);
  if (a.outcome != b.outcome || a.file_size != b.file_size ||
      a.contents != b.contents || a.makespan != b.makespan ||
      a.stats_flat != b.stats_flat) {
    fail("nondeterministic replay: two runs of the same plan diverged");
  }
  return out;
}

ChaosPlan minimizeChaos(const ChaosPlan& plan,
                        const std::function<bool(const ChaosPlan&)>& fails) {
  TCIO_CHECK_MSG(fails(plan), "minimizeChaos needs a failing plan");
  ChaosPlan cur = plan;
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t i = 0; i < cur.crashes.size(); ++i) {
      ChaosPlan t = cur;
      t.crashes.erase(t.crashes.begin() + static_cast<std::ptrdiff_t>(i));
      if (fails(t)) {
        cur = std::move(t);
        changed = true;
        break;
      }
    }
    if (changed) continue;
    for (std::size_t i = 0; i < cur.corruptions.size(); ++i) {
      ChaosPlan t = cur;
      t.corruptions.erase(t.corruptions.begin() +
                          static_cast<std::ptrdiff_t>(i));
      if (fails(t)) {
        cur = std::move(t);
        changed = true;
        break;
      }
    }
    if (changed) continue;
    // Crash ordinals: bisect each surviving arm's `after` down to the
    // smallest ordinal that still fails. Arm drops run first so only
    // culprit arms get polished; a lowered ordinal can unlock further
    // drops, so any shrink re-enters the greedy loop. The loop invariant
    // keeps `hi` on a failing value, so non-monotone predicates still
    // converge to *a* failing ordinal (greedy, like the drops above).
    for (std::size_t i = 0; !changed && i < cur.crashes.size(); ++i) {
      std::int64_t lo = 0;
      std::int64_t hi = cur.crashes[i].after;
      if (hi == 0) continue;
      while (lo < hi) {
        const std::int64_t mid = lo + (hi - lo) / 2;
        ChaosPlan t = cur;
        t.crashes[i].after = mid;
        if (fails(t)) {
          hi = mid;
        } else {
          lo = mid + 1;
        }
      }
      if (hi < cur.crashes[i].after) {
        cur.crashes[i].after = hi;
        changed = true;
      }
    }
    if (changed) continue;
    // Scalar fault classes, one deletion at a time. Dropping integrity also
    // drops the corruption arms: a window flip with no pipeline to repair it
    // is EXPECTED data loss, and minimizing into that would swap the real
    // failure for a trivial one.
    const auto tryMutation = [&](const std::function<void(ChaosPlan&)>& mut) {
      ChaosPlan t = cur;
      mut(t);
      if (fails(t)) {
        cur = std::move(t);
        changed = true;
      }
    };
    if (cur.fs_transient_write_rate > 0) {
      tryMutation([](ChaosPlan& t) { t.fs_transient_write_rate = 0; });
    }
    if (!changed && cur.fs_transient_read_rate > 0) {
      tryMutation([](ChaosPlan& t) { t.fs_transient_read_rate = 0; });
    }
    if (!changed && cur.straggler_ost >= 0) {
      tryMutation([](ChaosPlan& t) {
        t.straggler_ost = -1;
        t.straggler_multiplier = 1.0;
      });
    }
    if (!changed && cur.node_agg) {
      tryMutation([](ChaosPlan& t) { t.node_agg = false; });
    }
    if (!changed && cur.integrity) {
      tryMutation([](ChaosPlan& t) {
        t.integrity = false;
        t.corruptions.clear();
      });
    }
  }
  return cur;
}

}  // namespace tcio::chaos
