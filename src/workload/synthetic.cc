#include "workload/synthetic.h"

#include <cstring>
#include <numeric>

#include "common/error.h"
#include "common/memory_tracker.h"
#include "mpiio/file.h"
#include "tcio/file.h"

namespace tcio::workload {

namespace {

Bytes blockSize(const BenchmarkConfig& cfg) {
  Bytes sum = 0;
  for (Bytes s : cfg.array_elem_sizes) sum += s;
  return sum * cfg.size_access;
}

std::byte elementByte(int rank, std::size_t array, std::int64_t element,
                      Bytes byte_in_elem) {
  return static_cast<std::byte>(
      (rank * 131 + static_cast<std::int64_t>(array) * 17 + element * 7 +
       byte_in_elem * 3) %
      251);
}

/// Fills this rank's in-memory arrays (application data, charged to the
/// memory budget by the caller).
std::vector<std::vector<std::byte>> makeArrays(int rank,
                                               const BenchmarkConfig& cfg) {
  std::vector<std::vector<std::byte>> arrays;
  arrays.reserve(cfg.array_elem_sizes.size());
  for (std::size_t j = 0; j < cfg.array_elem_sizes.size(); ++j) {
    const Bytes esize = cfg.array_elem_sizes[j];
    std::vector<std::byte> a(
        static_cast<std::size_t>(cfg.len_array * esize));
    for (std::int64_t i = 0; i < cfg.len_array; ++i) {
      for (Bytes b = 0; b < esize; ++b) {
        a[static_cast<std::size_t>(i * esize + b)] =
            elementByte(rank, j, i, b);
      }
    }
    arrays.push_back(std::move(a));
  }
  return arrays;
}

Bytes arraysBytes(const BenchmarkConfig& cfg) {
  Bytes total = 0;
  for (Bytes s : cfg.array_elem_sizes) total += s * cfg.len_array;
  return total;
}

core::TcioConfig sizedTcio(const BenchmarkConfig& cfg, int P) {
  // Size the level-2 buffer to exactly the file domain / P — the paper's
  // setting ("the size of the level-2 buffer equals the size of the
  // temporary buffer in OCIO").
  core::TcioConfig t = cfg.tcio;
  const Bytes file_size = totalFileSize(cfg, P);
  t.segments_per_rank = std::max<std::int64_t>(
      1, (file_size + t.segment_size * P - 1) / (t.segment_size * P));
  return t;
}

// Programming-effort markers: the three write implementations below are
// bracketed so measureProgrammingEffort() reports their true source spans.

constexpr int kOcioWriteBegin = __LINE__ + 1;
void ocioWrite(mpi::Comm& comm, fs::Filesystem& fsys,
               const BenchmarkConfig& cfg,
               const std::vector<std::vector<std::byte>>& arrays) {
  const int P = comm.size();
  const Bytes block = blockSize(cfg);
  // 1. Create an application-level buffer and combine the arrays into it in
  //    round-robin fashion (Program 2, steps 1-2).
  const Bytes buf_bytes = arraysBytes(cfg);
  ScopedAllocation charge(comm.memory(), buf_bytes,
                          "OCIO application-level combine buffer");
  std::vector<std::byte> buffer(static_cast<std::size_t>(buf_bytes));
  Bytes cursor = 0;
  for (std::int64_t i = 0; i < cfg.len_array; i += cfg.size_access) {
    for (std::size_t j = 0; j < arrays.size(); ++j) {
      const Bytes n = cfg.array_elem_sizes[j] * cfg.size_access;
      std::memcpy(buffer.data() + cursor,
                  arrays[j].data() + i * cfg.array_elem_sizes[j],
                  static_cast<std::size_t>(n));
      cursor += n;
    }
  }
  comm.chargeCopy(buf_bytes);
  // 2. Open, describe the access pattern with derived datatypes, set the
  //    file view (steps 3-10).
  io::MpioFile f = io::MpioFile::open(comm, fsys, cfg.file_name,
                                      fs::kWrite | fs::kCreate);
  auto etype = mpi::Datatype::contiguous(block, mpi::Datatype::byte()).commit();
  auto filetype = mpi::Datatype::vector(cfg.len_array / cfg.size_access, 1, P,
                                        etype)
                      .commit();
  f.setView(comm.rank() * block, etype, filetype);
  // 3. One collective write of the whole buffer, then close (steps 11-13).
  f.writeAtAll(0, buffer.data(), buf_bytes);
  f.close();
}
constexpr int kOcioWriteEnd = __LINE__ - 1;

constexpr int kTcioWriteBegin = __LINE__ + 1;
void tcioWrite(mpi::Comm& comm, fs::Filesystem& fsys,
               const BenchmarkConfig& cfg,
               const std::vector<std::vector<std::byte>>& arrays) {
  const Bytes block = blockSize(cfg);
  core::File f(comm, fsys, cfg.file_name, fs::kWrite | fs::kCreate,
               sizedTcio(cfg, comm.size()));
  for (std::int64_t i = 0; i < cfg.len_array; i += cfg.size_access) {
    Offset pos = comm.rank() * block + (i / cfg.size_access) *
                                           static_cast<Offset>(block) *
                                           comm.size();
    for (std::size_t j = 0; j < arrays.size(); ++j) {
      const Bytes n = cfg.array_elem_sizes[j] * cfg.size_access;
      f.writeAt(pos, arrays[j].data() + i * cfg.array_elem_sizes[j], n);
      pos += n;
    }
  }
  f.close();
}
constexpr int kTcioWriteEnd = __LINE__ - 1;

constexpr int kMpiioWriteBegin = __LINE__ + 1;
void mpiioWrite(mpi::Comm& comm, fs::Filesystem& fsys,
                const BenchmarkConfig& cfg,
                const std::vector<std::vector<std::byte>>& arrays) {
  const Bytes block = blockSize(cfg);
  io::MpioFile f = io::MpioFile::open(comm, fsys, cfg.file_name,
                                      fs::kWrite | fs::kCreate);
  for (std::int64_t i = 0; i < cfg.len_array; i += cfg.size_access) {
    Offset pos = comm.rank() * block + (i / cfg.size_access) *
                                           static_cast<Offset>(block) *
                                           comm.size();
    for (std::size_t j = 0; j < arrays.size(); ++j) {
      const Bytes n = cfg.array_elem_sizes[j] * cfg.size_access;
      f.writeAt(pos, arrays[j].data() + i * cfg.array_elem_sizes[j], n);
      pos += n;
    }
  }
  f.close();
}
constexpr int kMpiioWriteEnd = __LINE__ - 1;

void verifyArrays(int rank, const BenchmarkConfig& cfg,
                  const std::vector<std::vector<std::byte>>& arrays) {
  for (std::size_t j = 0; j < arrays.size(); ++j) {
    const Bytes esize = cfg.array_elem_sizes[j];
    for (std::int64_t i = 0; i < cfg.len_array; ++i) {
      for (Bytes b = 0; b < esize; ++b) {
        const std::byte want = elementByte(rank, j, i, b);
        const std::byte got =
            arrays[j][static_cast<std::size_t>(i * esize + b)];
        TCIO_CHECK_MSG(got == want,
                       "synthetic benchmark verification failed (rank " +
                           std::to_string(rank) + ", array " +
                           std::to_string(j) + ", element " +
                           std::to_string(i) + ")");
      }
    }
  }
}

void ocioRead(mpi::Comm& comm, fs::Filesystem& fsys,
              const BenchmarkConfig& cfg,
              std::vector<std::vector<std::byte>>& arrays) {
  const int P = comm.size();
  const Bytes block = blockSize(cfg);
  const Bytes buf_bytes = arraysBytes(cfg);
  ScopedAllocation charge(comm.memory(), buf_bytes,
                          "OCIO application-level combine buffer");
  std::vector<std::byte> buffer(static_cast<std::size_t>(buf_bytes));
  io::MpioFile f = io::MpioFile::open(comm, fsys, cfg.file_name, fs::kRead);
  auto etype = mpi::Datatype::contiguous(block, mpi::Datatype::byte()).commit();
  auto filetype = mpi::Datatype::vector(cfg.len_array / cfg.size_access, 1, P,
                                        etype)
                      .commit();
  f.setView(comm.rank() * block, etype, filetype);
  f.readAtAll(0, buffer.data(), buf_bytes);
  f.close();
  // Scatter the combined buffer back into the arrays.
  Bytes cursor = 0;
  for (std::int64_t i = 0; i < cfg.len_array; i += cfg.size_access) {
    for (std::size_t j = 0; j < arrays.size(); ++j) {
      const Bytes n = cfg.array_elem_sizes[j] * cfg.size_access;
      std::memcpy(arrays[j].data() + i * cfg.array_elem_sizes[j],
                  buffer.data() + cursor, static_cast<std::size_t>(n));
      cursor += n;
    }
  }
  comm.chargeCopy(buf_bytes);
}

void tcioRead(mpi::Comm& comm, fs::Filesystem& fsys,
              const BenchmarkConfig& cfg,
              std::vector<std::vector<std::byte>>& arrays) {
  const Bytes block = blockSize(cfg);
  core::File f(comm, fsys, cfg.file_name, fs::kRead,
               sizedTcio(cfg, comm.size()));
  for (std::int64_t i = 0; i < cfg.len_array; i += cfg.size_access) {
    Offset pos = comm.rank() * block + (i / cfg.size_access) *
                                           static_cast<Offset>(block) *
                                           comm.size();
    for (std::size_t j = 0; j < arrays.size(); ++j) {
      const Bytes n = cfg.array_elem_sizes[j] * cfg.size_access;
      f.readAt(pos, arrays[j].data() + i * cfg.array_elem_sizes[j], n);
      pos += n;
    }
  }
  f.fetch();
  f.close();
}

void mpiioRead(mpi::Comm& comm, fs::Filesystem& fsys,
               const BenchmarkConfig& cfg,
               std::vector<std::vector<std::byte>>& arrays) {
  const Bytes block = blockSize(cfg);
  io::MpioFile f = io::MpioFile::open(comm, fsys, cfg.file_name, fs::kRead);
  for (std::int64_t i = 0; i < cfg.len_array; i += cfg.size_access) {
    Offset pos = comm.rank() * block + (i / cfg.size_access) *
                                           static_cast<Offset>(block) *
                                           comm.size();
    for (std::size_t j = 0; j < arrays.size(); ++j) {
      const Bytes n = cfg.array_elem_sizes[j] * cfg.size_access;
      f.readAt(pos, arrays[j].data() + i * cfg.array_elem_sizes[j], n);
      pos += n;
    }
  }
  f.close();
}

/// Aggregate phase makespan: barrier, run, barrier, max over ranks.
template <typename Body>
PhaseResult timedPhase(mpi::Comm& comm, const BenchmarkConfig& cfg,
                       const Body& body) {
  comm.barrier();
  const SimTime t0 = comm.proc().now();
  body();
  comm.barrier();
  double elapsed = comm.proc().now() - t0;
  comm.allreduce(&elapsed, 1, mpi::ReduceOp::kMax);
  PhaseResult res;
  res.seconds = elapsed;
  res.file_size = totalFileSize(cfg, comm.size());
  res.throughput_mbps =
      elapsed > 0 ? static_cast<double>(res.file_size) / elapsed / 1e6 : 0;
  return res;
}

}  // namespace

std::vector<Bytes> parseTypeArray(const std::string& spec) {
  std::vector<Bytes> sizes;
  for (std::size_t i = 0; i < spec.size(); ++i) {
    const char c = spec[i];
    if (c == ',' || c == ' ') continue;
    switch (c) {
      case 'c': sizes.push_back(1); break;
      case 's': sizes.push_back(2); break;
      case 'i': sizes.push_back(4); break;
      case 'f': sizes.push_back(4); break;
      case 'd': sizes.push_back(8); break;
      default:
        throw Error(std::string("unknown TYPEarray code '") + c +
                    "' (expected c, s, i, f, or d)");
    }
  }
  TCIO_CHECK_MSG(!sizes.empty(), "empty TYPEarray specification");
  return sizes;
}

Bytes totalFileSize(const BenchmarkConfig& cfg, int num_ranks) {
  return arraysBytes(cfg) * num_ranks;
}

std::byte expectedByte(const BenchmarkConfig& cfg, int num_ranks, Offset off) {
  const Bytes block = blockSize(cfg);
  const std::int64_t round = off / (block * num_ranks);
  const Offset within = off % (block * num_ranks);
  const int rank = static_cast<int>(within / block);
  Offset in_block = within % block;
  for (std::size_t j = 0; j < cfg.array_elem_sizes.size(); ++j) {
    const Bytes n = cfg.array_elem_sizes[j] * cfg.size_access;
    if (in_block < n) {
      const std::int64_t elem =
          round * cfg.size_access + in_block / cfg.array_elem_sizes[j];
      const Bytes b = in_block % cfg.array_elem_sizes[j];
      return elementByte(rank, j, elem, b);
    }
    in_block -= n;
  }
  TCIO_CHECK_MSG(false, "expectedByte: offset beyond block layout");
  return std::byte{0};
}

PhaseResult runWritePhase(mpi::Comm& comm, fs::Filesystem& fsys,
                          const BenchmarkConfig& cfg) {
  TCIO_CHECK_MSG(cfg.len_array % cfg.size_access == 0,
                 "LENarray must be a multiple of SIZEaccess");
  // Application data, charged against the per-rank budget in every method.
  ScopedAllocation app_charge(comm.memory(), arraysBytes(cfg),
                              "application arrays");
  const auto arrays = makeArrays(comm.rank(), cfg);
  return timedPhase(comm, cfg, [&] {
    switch (cfg.method) {
      case Method::kOcio: ocioWrite(comm, fsys, cfg, arrays); break;
      case Method::kTcio: tcioWrite(comm, fsys, cfg, arrays); break;
      case Method::kMpiio: mpiioWrite(comm, fsys, cfg, arrays); break;
    }
  });
}

PhaseResult runReadPhase(mpi::Comm& comm, fs::Filesystem& fsys,
                         const BenchmarkConfig& cfg) {
  TCIO_CHECK_MSG(cfg.len_array % cfg.size_access == 0,
                 "LENarray must be a multiple of SIZEaccess");
  ScopedAllocation app_charge(comm.memory(), arraysBytes(cfg),
                              "application arrays");
  std::vector<std::vector<std::byte>> arrays(cfg.array_elem_sizes.size());
  for (std::size_t j = 0; j < arrays.size(); ++j) {
    arrays[j].resize(
        static_cast<std::size_t>(cfg.len_array * cfg.array_elem_sizes[j]));
  }
  const PhaseResult res = timedPhase(comm, cfg, [&] {
    switch (cfg.method) {
      case Method::kOcio: ocioRead(comm, fsys, cfg, arrays); break;
      case Method::kTcio: tcioRead(comm, fsys, cfg, arrays); break;
      case Method::kMpiio: mpiioRead(comm, fsys, cfg, arrays); break;
    }
  });
  verifyArrays(comm.rank(), cfg, arrays);
  return res;
}

EffortReport measureProgrammingEffort() {
  EffortReport r;
  r.ocio_lines = kOcioWriteEnd - kOcioWriteBegin + 1;
  r.tcio_lines = kTcioWriteEnd - kTcioWriteBegin + 1;
  r.mpiio_lines = kMpiioWriteEnd - kMpiioWriteBegin + 1;
  // Distinct I/O-stack API entry points each program needs (paper §V.B.1):
  // OCIO: open, Type_contiguous, Type_commit, Type_vector, Type_commit,
  //       set_view, write_all, close, plus buffer create/fill/release.
  r.ocio_api_calls = 11;
  // TCIO: open, write_at, close.
  r.tcio_api_calls = 3;
  return r;
}

}  // namespace tcio::workload
