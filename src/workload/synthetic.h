// The paper's synthetic benchmark (§V.B, Table I): NUMarray in-memory arrays
// of mixed element types per process, interleaved round-robin into a shared
// file, SIZEaccess elements per I/O call.
//
// Three method implementations, exactly as the paper compares them:
//   * OCIO  — Program 2: combine into an application-level buffer, define a
//             derived-datatype file view, one collective MPI-IO call;
//   * TCIO  — Program 3: per-datum POSIX-like tcio calls, no buffers, no
//             views;
//   * MPIIO — vanilla independent MPI-IO, one call per datum.
//
// Data values are a deterministic function of (rank, array, element) so
// every run can be verified byte-for-byte against expectedFileContents().
#pragma once

#include <string>
#include <vector>

#include "common/types.h"
#include "fs/filesystem.h"
#include "mpi/comm.h"
#include "tcio/config.h"

namespace tcio::workload {

enum class Method { kOcio, kTcio, kMpiio };

/// Table I configuration parameters.
struct BenchmarkConfig {
  Method method = Method::kTcio;
  /// NUMarray and TYPEarray: element size in bytes per array
  /// (c=1, s=2, i=4, f=4, d=8). Default "i,d" as in Table II.
  std::vector<Bytes> array_elem_sizes = {4, 8};
  /// LENarray: elements per array (per process).
  std::int64_t len_array = 1024;
  /// SIZEaccess: elements per I/O call.
  std::int64_t size_access = 1;
  /// TCIO parameters (used when method == kTcio).
  core::TcioConfig tcio;
  /// File name inside the simulated FS.
  std::string file_name = "synthetic.dat";
};

/// Phase timings measured across barriers (aggregate makespan of the phase).
struct PhaseResult {
  SimTime seconds = 0;
  Bytes file_size = 0;
  double throughput_mbps = 0;  // file_size / seconds / 1e6
};

/// Collective: every rank writes its arrays with the configured method.
/// Includes open and close (TCIO data reaches the file system at close).
PhaseResult runWritePhase(mpi::Comm& comm, fs::Filesystem& fsys,
                          const BenchmarkConfig& cfg);

/// Collective: every rank reads its arrays back and verifies them.
PhaseResult runReadPhase(mpi::Comm& comm, fs::Filesystem& fsys,
                         const BenchmarkConfig& cfg);

/// Parses a Table I TYPEarray string ("i,d", "c,s,i,f,d") into element
/// sizes: c=1, s=2, i=4, f=4, d=8. Throws on unknown type codes.
std::vector<Bytes> parseTypeArray(const std::string& spec);

/// Total bytes the benchmark writes (the shared file size).
Bytes totalFileSize(const BenchmarkConfig& cfg, int num_ranks);

/// The deterministic byte at file offset `off` (for verification).
std::byte expectedByte(const BenchmarkConfig& cfg, int num_ranks, Offset off);

/// Source-line counts of the three method implementations in this file's
/// .cc — measured, not estimated (programming-effort comparison).
struct EffortReport {
  int ocio_lines = 0;
  int tcio_lines = 0;
  int mpiio_lines = 0;
  int ocio_api_calls = 0;   // distinct I/O-stack API calls Program 2 needs
  int tcio_api_calls = 0;   // distinct calls Program 3 needs
};
EffortReport measureProgrammingEffort();

}  // namespace tcio::workload
