#include "workload/churn.h"

#include <vector>

#include "delegate/client.h"
#include "delegate/session.h"

namespace tcio::workload {

std::byte churnByte(int round, int client, int block, std::int64_t i) {
  const std::uint64_t h = static_cast<std::uint64_t>(round) * 1000003ULL +
                          static_cast<std::uint64_t>(client) * 8191ULL +
                          static_cast<std::uint64_t>(block) * 131ULL +
                          static_cast<std::uint64_t>(i);
  return static_cast<std::byte>(h * 2654435761ULL >> 24);
}

std::string churnFileName(const ChurnConfig& cfg, int round) {
  return cfg.file_stem + "." + std::to_string(round);
}

namespace {

std::vector<std::byte> blockPayload(const ChurnConfig& cfg, int round,
                                    int client, int block) {
  std::vector<std::byte> data(static_cast<std::size_t>(cfg.block_bytes));
  for (std::int64_t i = 0; i < cfg.block_bytes; ++i) {
    data[static_cast<std::size_t>(i)] = churnByte(round, client, block, i);
  }
  return data;
}

ChurnResult churnBaseline(mpi::Comm& comm, fs::Filesystem& fsys,
                          const ChurnConfig& cfg) {
  ChurnResult res;
  comm.barrier();
  const SimTime t0 = comm.proc().now();
  for (int r = 0; r < cfg.rounds; ++r) {
    core::File f(comm, fsys, churnFileName(cfg, r),
                 fs::kWrite | fs::kCreate | fs::kTruncate, cfg.tcio);
    for (int b = 0; b < cfg.blocks_per_round; ++b) {
      const std::vector<std::byte> data =
          blockPayload(cfg, r, comm.rank(), b);
      const Offset off =
          (static_cast<Offset>(comm.rank()) * cfg.blocks_per_round + b) *
          cfg.block_bytes;
      f.writeAt(off, data.data(), cfg.block_bytes);
      res.bytes_written += cfg.block_bytes;
    }
    f.close();
    ++res.files;
  }
  comm.barrier();
  res.seconds = comm.proc().now() - t0;
  comm.allreduce(&res.bytes_written, 1, mpi::ReduceOp::kSum);
  return res;
}

ChurnResult churnDelegated(mpi::Comm& comm, fs::Filesystem& fsys,
                           ChurnConfig cfg) {
  ChurnResult res;
  delegate::Session session(comm, fsys, cfg.tcio);
  comm.barrier();
  const SimTime t0 = comm.proc().now();
  if (session.isDelegate()) {
    session.serve();
  } else {
    delegate::Channel ch(session);
    const int client = session.clientComm().rank();
    for (int r = 0; r < cfg.rounds; ++r) {
      delegate::DFile f(ch, churnFileName(cfg, r),
                        fs::kWrite | fs::kCreate | fs::kTruncate);
      for (int b = 0; b < cfg.blocks_per_round; ++b) {
        const std::vector<std::byte> data = blockPayload(cfg, r, client, b);
        const Offset off =
            (static_cast<Offset>(client) * cfg.blocks_per_round + b) *
            cfg.block_bytes;
        f.writeAt(off, data);
        res.bytes_written += cfg.block_bytes;
      }
      f.close();
      ++res.files;
    }
    res.delegate = session.finish();
  }
  comm.barrier();
  res.seconds = comm.proc().now() - t0;
  // Every rank reports the aggregate payload and the merged delegate
  // counters (rank 0 is a delegate, so benches need them session-wide).
  comm.allreduce(&res.bytes_written, 1, mpi::ReduceOp::kSum);
  comm.bcast(&res.delegate, sizeof(res.delegate),
             /*root=*/session.numDelegates());
  return res;
}

}  // namespace

ChurnResult runChurn(mpi::Comm& comm, fs::Filesystem& fsys, ChurnConfig cfg) {
  const int d = delegate::Session::effectiveDelegates(cfg.tcio, comm.size());
  if (d > 0) {
    cfg.tcio.delegate_ranks = d;  // pin the env resolution for all ranks
    return churnDelegated(comm, fsys, cfg);
  }
  return churnBaseline(comm, fsys, cfg);
}

}  // namespace tcio::workload
