// Open/write/close churn: the metadata-heavy pattern that stresses a
// delegate's admission control (DESIGN.md §10). Every round, all clients
// collectively open one shared per-round file, write their interleaved
// blocks, and close it again — so the request queues absorb a full burst of
// opens, a storm of puts, and a synchronized drain, `rounds` times in a row.
// At scale (P >= 4096 clients against a handful of delegates) the put storm
// overruns the queue watermark and the kBusy/backoff admission path carries
// real traffic; the returned delegate stats expose exactly how much.
#pragma once

#include <string>

#include "common/types.h"
#include "fs/filesystem.h"
#include "mpi/comm.h"
#include "tcio/config.h"
#include "tcio/file.h"

namespace tcio::workload {

struct ChurnConfig {
  /// Open/write/close cycles (one shared file per round).
  int rounds = 4;
  /// Bytes each client writes per round, as `blocks_per_round` equal writes.
  Bytes block_bytes = 4096;
  int blocks_per_round = 1;
  core::TcioConfig tcio;
  std::string file_stem = "churn";
};

struct ChurnResult {
  SimTime seconds = 0;      // makespan of all rounds, across a barrier
  Bytes bytes_written = 0;  // aggregate payload (summed over all clients)
  std::int64_t files = 0;   // open/close cycles this rank performed
  /// Merged delegate-mode counters, identical on every rank (all zero on
  /// the baseline path).
  core::TcioDelegateStats delegate;
};

/// The deterministic byte every run writes at position `i` of client `c`'s
/// block `b` in round `r` — verification anchors for tests and benches.
std::byte churnByte(int round, int client, int block, std::int64_t i);

/// Name of round `r`'s shared file.
std::string churnFileName(const ChurnConfig& cfg, int round);

/// Collective over `comm`. When the config (or TCIO_DELEGATES) resolves to
/// D > 0, ranks 0..D-1 serve as I/O delegates and the rest run the churn as
/// delegate clients; with D == 0 every rank churns through core::File.
/// Layout: in round r, client c's block b occupies
/// [(c * blocks_per_round + b) * block_bytes, ...+block_bytes).
ChurnResult runChurn(mpi::Comm& comm, fs::Filesystem& fsys, ChurnConfig cfg);

}  // namespace tcio::workload
