#include "net/network.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace tcio::net {

namespace {
constexpr double kMinFabricRate = 1.0;  // avoid zero-rate timelines
}

Network::Network(const NetworkConfig& cfg)
    : cfg_(cfg),
      num_nodes_((cfg.num_ranks + cfg.ranks_per_node - 1) /
                 cfg.ranks_per_node),
      fabric_(std::max(kMinFabricRate,
                       cfg.nic_bandwidth * cfg.fabric_bisection_fraction *
                           static_cast<double>(
                               std::max(1, (cfg.num_ranks +
                                            cfg.ranks_per_node - 1) /
                                               cfg.ranks_per_node)))) {
  TCIO_CHECK(cfg_.num_ranks >= 1);
  TCIO_CHECK(cfg_.ranks_per_node >= 1);
  nic_out_.reserve(static_cast<std::size_t>(num_nodes_));
  nic_in_.reserve(static_cast<std::size_t>(num_nodes_));
  membus_.reserve(static_cast<std::size_t>(num_nodes_));
  const SimTime per_msg =
      cfg_.per_message_overhead + cfg_.per_message_overhead_unscaled;
  for (int i = 0; i < num_nodes_; ++i) {
    nic_out_.emplace_back(cfg_.nic_bandwidth, per_msg);
    nic_in_.emplace_back(cfg_.nic_bandwidth, per_msg);
    membus_.emplace_back(cfg_.membus_bandwidth, per_msg);
  }
  fabric_.setCongestion(cfg_.fabric_congestion_gamma,
                        cfg_.fabric_congestion_tau);
  jitter_rng_ = Rng(cfg_.jitter_seed);
  if (cfg_.faults.enabled) {
    fault_plan_ =
        std::make_unique<FaultPlan>(cfg_.faults, FaultPlan::kNetSalt);
  }
  if (cfg_.tx_queue_depth > 0) {
    in_flight_.resize(static_cast<std::size_t>(cfg_.num_ranks));
  }
}

SimTime Network::txPenalty(SimTime t, Rank src) {
  if (cfg_.tx_queue_depth <= 0) return 0;
  auto& q = in_flight_[static_cast<std::size_t>(src)];
  while (!q.empty() && q.front() <= t) q.pop_front();
  const auto overflow =
      static_cast<std::int64_t>(q.size()) - cfg_.tx_queue_depth;
  if (overflow <= 0) return 0;
  return cfg_.tx_overflow_penalty * static_cast<double>(overflow) /
         static_cast<double>(cfg_.tx_queue_depth);
}

void Network::txRecord(Rank src, SimTime delivered) {
  if (cfg_.tx_queue_depth <= 0) return;
  auto& q = in_flight_[static_cast<std::size_t>(src)];
  // Keep the deque sorted (deliveries of later posts can be earlier only by
  // jitter; insert near the back).
  auto it = q.end();
  while (it != q.begin() && *(it - 1) > delivered) --it;
  q.insert(it, delivered);
}

SimTime Network::drawJitter() {
  if (cfg_.jitter_mean <= 0) return 0;
  // Exponential deviate plus a rare heavy-tail hiccup.
  double j = -cfg_.jitter_mean * std::log(1.0 - jitter_rng_.uniform());
  if (cfg_.heavy_tail_prob > 0 &&
      jitter_rng_.uniform() < cfg_.heavy_tail_prob) {
    j += -cfg_.heavy_tail_mean * std::log(1.0 - jitter_rng_.uniform());
  }
  return j;
}

TransferTimes Network::transfer(SimTime t, Rank src, Rank dst, Bytes n,
                                bool rdma) {
  TCIO_CHECK(src >= 0 && src < cfg_.num_ranks);
  TCIO_CHECK(dst >= 0 && dst < cfg_.num_ranks);
  TCIO_CHECK(n >= 0);
  ++messages_;
  bytes_ += n;

  const int sn = nodeOf(src);
  const int dn = nodeOf(dst);

  if (sn == dn) {
    // Intra-node: shared-memory transport over the node's memory bus.
    ++intranode_messages_;
    intranode_bytes_ += n;
    auto& bus = membus_[static_cast<std::size_t>(sn)];
    SimTime done = bus.serve(t, n) + cfg_.intranode_latency + drawJitter();
    if (rdma && n > 0 && fault_plan_ != nullptr) {
      // Dropped payload: the DMA engine retransmits after a fixed delay.
      done += fault_plan_->nextRmaPayload();
    }
    if (trace_ != nullptr) {
      trace_->record(src, t, done, rdma ? "net.rdma" : "net.msg", n);
    }
    return {done, done};
  }

  // Control messages (lock requests/grants, barrier tokens) are CPU-side
  // sends of a few bytes: charge latency and noise but no DMA queueing.
  if (n == 0) {
    ++internode_control_messages_;
    const SimTime delivered = t + cfg_.internode_latency + drawJitter();
    return {t, delivered};
  }
  ++internode_payload_messages_;
  internode_bytes_ += n;

  // Outstanding-transmit overflow serializes on the sender's NIC: a burst
  // to P peers pays it back to back, and the penalty grows with the queue.
  SimTime start = t;
  const SimTime tx = rdma ? 0.0 : txPenalty(t, src);
  if (tx > 0) {
    start = nic_out_[static_cast<std::size_t>(sn)].serveDuration(start, tx);
  }
  // First contact between this node pair pays connection establishment.
  const std::uint64_t key =
      (static_cast<std::uint64_t>(std::min(sn, dn)) << 32) |
      static_cast<std::uint64_t>(std::max(sn, dn));
  if (connections_.insert(key).second) {
    start += cfg_.connection_setup;
  }

  // Pipeline: egress NIC -> fabric core -> ingress NIC, plus wire latency.
  const SimTime egress = nic_out_[static_cast<std::size_t>(sn)].serve(start, n);
  const SimTime core = fabric_.serve(egress, n);
  const SimTime ingress = nic_in_[static_cast<std::size_t>(dn)].serve(core, n);
  SimTime delivered = ingress + cfg_.internode_latency + drawJitter();
  if (rdma && fault_plan_ != nullptr) {
    // Dropped payload: the fabric retransmits after a fixed delay. The
    // transfer still completes — one-sided code degrades, never breaks.
    delivered += fault_plan_->nextRmaPayload();
  }
  if (!rdma) txRecord(src, delivered);
  if (trace_ != nullptr) {
    trace_->record(src, t, delivered, rdma ? "net.rdma" : "net.msg", n);
  }

  // The sender is free once its NIC accepted the message.
  return {egress, delivered};
}

}  // namespace tcio::net
