// Cluster network cost model.
//
// Models a Lonestar-like machine: multicore nodes (12 ranks/node by default)
// on an InfiniBand fat-tree. Three resource classes govern a transfer:
//   * the sender node's NIC egress queue,
//   * the shared fabric core (aggregate capacity with backlog congestion —
//     synchronized all-to-all bursts degrade, staggered traffic does not),
//   * the receiver node's NIC ingress queue.
// plus a fixed one-way latency and a per-message CPU overhead. Intra-node
// transfers bypass the NIC/fabric and use the node's memory bus instead.
//
// The first message between a pair of nodes additionally pays a connection
// setup cost (InfiniBand queue-pair establishment); OCIO-style all-to-all
// patterns touch O(P) peers per rank and feel this at scale.
//
// All methods must be called from inside Proc::atomic().
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <unordered_set>
#include <vector>

#include "common/fault.h"
#include "common/rng.h"
#include "common/types.h"
#include "sim/timeline.h"
#include "sim/trace.h"

namespace tcio::net {

/// Tunable model parameters. Defaults approximate the paper's testbed
/// (40 Gb/s IB fat-tree, 2×6-core nodes); see bench/calibration notes in
/// EXPERIMENTS.md.
struct NetworkConfig {
  int num_ranks = 1;
  int ranks_per_node = 12;

  /// Node NIC bandwidth, bytes/s (40 Gb/s ≈ 5 GB/s).
  double nic_bandwidth = 5.0e9;
  /// Per-message CPU/NIC processing overhead charged at each endpoint.
  SimTime per_message_overhead = 0.7e-6;
  /// Additional per-message overhead that calibrated benches keep OUTSIDE
  /// any geometric problem-size scaling. Benches that shrink payloads by a
  /// factor kScale often shrink per_message_overhead with them to keep the
  /// bandwidth and message-count cost classes in proportion — but a real
  /// NIC's per-message cost does not shrink with the payload, so a scaled
  /// overhead understates the savings of message-reducing optimizations
  /// (node aggregation, delegate batching). The effective per-message cost
  /// is per_message_overhead + per_message_overhead_unscaled; this term is
  /// simply never divided by the bench's scale factor. 0 (the default)
  /// preserves the historical single-term model.
  SimTime per_message_overhead_unscaled = 0.0;
  /// One-way wire latency between nodes.
  SimTime internode_latency = 2.0e-6;
  /// One-way latency within a node (shared-memory transport).
  SimTime intranode_latency = 0.4e-6;
  /// Node memory-bus bandwidth for intra-node transfers, bytes/s.
  double membus_bandwidth = 20.0e9;
  /// Fabric core capacity as a fraction of aggregate NIC bandwidth
  /// (bisection-limited fat-tree).
  double fabric_bisection_fraction = 0.7;
  /// Congestion severity of the fabric core (0 disables).
  double fabric_congestion_gamma = 0.08;
  /// Backlog scale at which congestion doubles service time.
  SimTime fabric_congestion_tau = 100.0e-6;
  /// One-time cost of establishing a connection between two nodes.
  SimTime connection_setup = 25.0e-6;

  /// Outstanding-transmit model (NIC TX queue / rendezvous flow control):
  /// a payload message posted while more than `tx_queue_depth` of the
  /// sender's messages are still in flight pays a penalty that grows with
  /// the overflow:  penalty = tx_overflow_penalty * overflow / depth,
  /// serialized on the sender's NIC. A fully-posted all-to-all (OCIO's
  /// exchange: P sends at one instant) drives the overflow to P and pays a
  /// quadratic aggregate cost; TCIO's one-epoch-at-a-time traffic keeps at
  /// most a couple of messages outstanding and never pays — the paper's
  /// "OCIO performs all the communication at the same time" argument.
  /// 0 disables.
  int tx_queue_depth = 0;
  SimTime tx_overflow_penalty = 0.2e-3;

  /// System noise ("production mode": other jobs share the machine). Each
  /// message draws an exponential jitter with this mean (0 disables), plus a
  /// rare heavy-tail event — an OS or fabric hiccup. Collectives amplify
  /// this noise (they wait for the slowest of P peers); staggered one-sided
  /// traffic absorbs it. Deterministic: drawn from a seeded stream in
  /// virtual-time order.
  SimTime jitter_mean = 0.0;
  double heavy_tail_prob = 0.0;
  SimTime heavy_tail_mean = 1.0e-3;
  std::uint64_t jitter_seed = 12345;

  /// Network-layer fault injection (rma_drop_* fields; see common/fault.h).
  /// When enabled, each RMA payload may be dropped by the fabric and
  /// hardware-retransmitted: delivery is delayed, never lost, and the drop
  /// is counted so TCIO's degradation ladder can react.
  FaultConfig faults;
};

/// Result of a transfer: when the sender's CPU is free to continue, and when
/// the payload is fully visible at the destination.
struct TransferTimes {
  SimTime sender_free = 0;
  SimTime delivered = 0;
};

/// Shared network state. One instance per simulated cluster; must only be
/// touched inside atomic sections.
class Network {
 public:
  explicit Network(const NetworkConfig& cfg);

  /// Charge an `n`-byte message from rank `src` to rank `dst` starting at
  /// virtual time `t`. `rdma` marks hardware-generated RMA data streams
  /// (put payloads, get replies): they bypass the software TX-queue model —
  /// the RDMA engine streams them without per-message send posting.
  TransferTimes transfer(SimTime t, Rank src, Rank dst, Bytes n,
                         bool rdma = false);

  /// A zero-payload control message (lock request/grant, barrier token...).
  TransferTimes control(SimTime t, Rank src, Rank dst) {
    return transfer(t, src, dst, 0);
  }

  /// Node hosting `rank`.
  int nodeOf(Rank r) const { return r / cfg_.ranks_per_node; }

  int numNodes() const { return num_nodes_; }
  const NetworkConfig& config() const { return cfg_; }

  /// Optional event trace: every payload transfer is recorded as
  /// "net.msg" / "net.rdma" (not owned; may be null).
  void setTrace(sim::Trace* trace) { trace_ = trace; }

  // Statistics for benches and tests.
  std::int64_t messageCount() const { return messages_; }
  Bytes bytesMoved() const { return bytes_; }
  /// Messages served by a node's memory bus (src and dst on the same node).
  std::int64_t intranodeMessageCount() const { return intranode_messages_; }
  Bytes intranodeBytes() const { return intranode_bytes_; }
  /// Payload messages that crossed the NIC/fabric (n > 0, different nodes).
  std::int64_t internodePayloadMessages() const {
    return internode_payload_messages_;
  }
  /// Zero-byte control messages (lock grants, barrier tokens) across nodes.
  std::int64_t internodeControlMessages() const {
    return internode_control_messages_;
  }
  Bytes internodeBytes() const { return internode_bytes_; }
  std::int64_t connectionsEstablished() const {
    return static_cast<std::int64_t>(connections_.size());
  }
  /// RMA payloads dropped (and retransmitted) by the injected fault plan.
  std::int64_t rmaDropCount() const {
    return fault_plan_ != nullptr ? fault_plan_->rmaDropsInjected() : 0;
  }
  const sim::Timeline& fabric() const { return fabric_; }

 private:
  SimTime drawJitter();
  /// Outstanding-transmit penalty for rank `src` posting at time `t`; also
  /// records the new message's delivery time afterwards via txRecord().
  SimTime txPenalty(SimTime t, Rank src);
  void txRecord(Rank src, SimTime delivered);

  NetworkConfig cfg_;
  int num_nodes_;
  sim::Trace* trace_ = nullptr;
  Rng jitter_rng_{0};
  std::unique_ptr<FaultPlan> fault_plan_;
  /// Per-rank delivery times of in-flight messages (pruned lazily).
  std::vector<std::deque<SimTime>> in_flight_;
  std::vector<sim::Timeline> nic_out_;
  std::vector<sim::Timeline> nic_in_;
  std::vector<sim::Timeline> membus_;
  sim::Timeline fabric_;
  std::unordered_set<std::uint64_t> connections_;
  std::int64_t messages_ = 0;
  Bytes bytes_ = 0;
  std::int64_t intranode_messages_ = 0;
  Bytes intranode_bytes_ = 0;
  std::int64_t internode_payload_messages_ = 0;
  std::int64_t internode_control_messages_ = 0;
  Bytes internode_bytes_ = 0;
};

}  // namespace tcio::net
