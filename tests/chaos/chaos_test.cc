// Composed chaos harness (src/chaos/): seeded soak of composed fault
// schedules against the invariant oracle, plan-string round trips, a
// directed cascade (a crash landing inside another crash's recovery), and
// the greedy schedule minimizer.
//
// Knobs: TCIO_CHAOS_SEEDS (seeds per soak leg), TCIO_CHAOS_SEED_BASE (first
// seed), TCIO_CHAOS_INTEGRITY (arm the checksum pipeline + silent flips).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>

#include "chaos/chaos.h"
#include "common/env.h"

namespace tcio::chaos {
namespace {

TEST(ChaosPlanTest, StringRoundTripsExactly) {
  ChaosKnobs k;
  k.integrity = true;  // exercise the corrupt= list too
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const ChaosPlan p = makeChaosPlan(k, seed);
    const ChaosPlan q = ChaosPlan::parse(p.str());
    EXPECT_EQ(p.str(), q.str()) << "seed " << seed;
    EXPECT_EQ(p.crashes.size(), q.crashes.size());
    EXPECT_EQ(p.corruptions.size(), q.corruptions.size());
    EXPECT_EQ(p.fs_transient_write_rate, q.fs_transient_write_rate);
  }
}

TEST(ChaosPlanTest, DrawIsDeterministicPerSeed) {
  const ChaosKnobs k;
  EXPECT_EQ(makeChaosPlan(k, 42).str(), makeChaosPlan(k, 42).str());
}

// Directed cascade: rank 1 dies entering flush round 1; rank 0 — always the
// first round-robin adopter — is scheduled to die inside its recovery
// replay of rank 1's orphaned segments (CrashPoint::kMidRecovery). The
// survivors must agree on the second death from within the first death's
// agreement loop, transitively reassign, and still close with every
// journaled byte intact.
TEST(ChaosOracleTest, CrashInsideRecoveryHoldsInvariants) {
  ChaosPlan p;
  p.seed = 5;
  p.ranks = 8;
  p.ranks_per_node = 4;
  p.segment_size = 512;
  p.segments_per_rank = 2;
  p.rounds = 4;
  p.crashes.push_back({1, CrashPoint::kAtCollective, 1});
  p.crashes.push_back({0, CrashPoint::kMidRecovery, 0});
  const ChaosOutcome o = runChaos(p);
  EXPECT_TRUE(o.ok) << o.failure;
  EXPECT_EQ(o.ranks_crashed, 2) << "the mid-recovery cascade did not fire";
  EXPECT_GE(o.segments_taken_over, 2 * p.segments_per_rank)
      << "transitive reassignment lost the dead adopter's orphans";
  EXPECT_GT(o.journal_records_replayed, 0);
}

// The full composition in one plan: straggler skew + transient EIO under
// retry + two crashes including a mid-recovery cascade + node aggregation.
TEST(ChaosOracleTest, FullCompositionHoldsInvariants) {
  ChaosPlan p;
  p.seed = 9;
  p.ranks = 8;
  p.ranks_per_node = 4;
  p.segment_size = 512;
  p.segments_per_rank = 2;
  p.rounds = 4;
  p.node_agg = true;
  p.fs_transient_write_rate = 0.08;
  p.straggler_ost = 0;
  p.straggler_multiplier = 4.0;
  p.crashes.push_back({3, CrashPoint::kAtCollective, 2});
  p.crashes.push_back({0, CrashPoint::kMidRecovery, 0});
  const ChaosOutcome o = runChaos(p);
  EXPECT_TRUE(o.ok) << o.failure;
  EXPECT_GE(o.ranks_crashed, 1);
}

// Seeded soak: N drawn plans, every invariant, integrity optionally armed.
// On a red seed the greedy minimizer shrinks the plan and the failure
// message carries both the original and the minimized reproducer string.
TEST(ChaosSoakTest, DrawnPlansHoldInvariants) {
  const std::int64_t seeds = envInt64("TCIO_CHAOS_SEEDS", 4);
  const std::int64_t base = envInt64("TCIO_CHAOS_SEED_BASE", 1);
  ChaosKnobs k;
  k.integrity = envInt64("TCIO_CHAOS_INTEGRITY", 0) > 0;
  int total_crashed = 0;
  for (std::int64_t s = base; s < base + seeds; ++s) {
    const ChaosPlan plan = makeChaosPlan(k, static_cast<std::uint64_t>(s));
    const ChaosOutcome o = runChaos(plan);
    if (!o.ok) {
      const ChaosPlan minimized = minimizeChaos(
          plan, [](const ChaosPlan& t) { return !runChaos(t).ok; });
      FAIL() << "chaos seed " << s << ": " << o.failure
             << "\n  plan:      " << plan.str()
             << "\n  minimized: " << minimized.str();
    }
    total_crashed += o.ranks_crashed;
  }
  // The knob envelope is tuned so a soak actually composes faults: across
  // the default seed range at least one drawn plan kills at least one rank.
  if (seeds >= 4 && base == 1) {
    EXPECT_GT(total_crashed, 0);
  }
}

// The minimizer itself, on a synthetic predicate (no simulation): failure
// is "a crash arm on rank 3 exists", so everything else must be stripped.
TEST(ChaosMinimizerTest, ShrinksToTheCulpritArm) {
  ChaosPlan p;
  p.fs_transient_write_rate = 0.1;
  p.fs_transient_read_rate = 0.05;
  p.straggler_ost = 1;
  p.straggler_multiplier = 4.0;
  p.node_agg = true;
  p.integrity = true;
  p.corruptions.push_back({2, CorruptSite::kWindow, 0});
  for (Rank r = 0; r < 5; ++r) {
    p.crashes.push_back({r, CrashPoint::kAtCollective, r});
  }
  const auto fails = [](const ChaosPlan& t) {
    return std::any_of(t.crashes.begin(), t.crashes.end(),
                       [](const CrashSchedule& c) { return c.rank == 3; });
  };
  const ChaosPlan m = minimizeChaos(p, fails);
  ASSERT_EQ(m.crashes.size(), 1u);
  EXPECT_EQ(m.crashes[0].rank, 3);
  EXPECT_TRUE(m.corruptions.empty());
  EXPECT_EQ(m.fs_transient_write_rate, 0.0);
  EXPECT_EQ(m.fs_transient_read_rate, 0.0);
  EXPECT_EQ(m.straggler_ost, -1);
  EXPECT_FALSE(m.node_agg);
  EXPECT_FALSE(m.integrity);
}

// Ordinal bisection: the failure needs rank 2 crashing at ordinal >= 5, so
// the minimizer must keep that arm, drop the other, and walk `after` down
// from the drawn 1000 to exactly 5.
TEST(ChaosMinimizerTest, BisectsTheCrashOrdinal) {
  ChaosPlan p;
  p.crashes.push_back({2, CrashPoint::kAtCollective, 1000});
  p.crashes.push_back({4, CrashPoint::kAtCollective, 7});
  int calls = 0;
  const auto fails = [&calls](const ChaosPlan& t) {
    ++calls;
    return std::any_of(t.crashes.begin(), t.crashes.end(),
                       [](const CrashSchedule& c) {
                         return c.rank == 2 && c.after >= 5;
                       });
  };
  const ChaosPlan m = minimizeChaos(p, fails);
  ASSERT_EQ(m.crashes.size(), 1u);
  EXPECT_EQ(m.crashes[0].rank, 2);
  EXPECT_EQ(m.crashes[0].after, 5);
  // ~log2(1000) probes plus the greedy drop passes — far under the linear
  // scan's ~1000.
  EXPECT_LT(calls, 60);
}

// Bisection must not converge on a non-failing ordinal when the predicate
// is non-monotone: failure only at the exact drawn ordinal.
TEST(ChaosMinimizerTest, OrdinalBisectionKeepsAFailingPlan) {
  ChaosPlan p;
  p.crashes.push_back({1, CrashPoint::kAtCollective, 9});
  const auto fails = [](const ChaosPlan& t) {
    return t.crashes.size() == 1 && t.crashes[0].after == 9;
  };
  const ChaosPlan m = minimizeChaos(p, fails);
  ASSERT_EQ(m.crashes.size(), 1u);
  EXPECT_EQ(m.crashes[0].after, 9);
  EXPECT_TRUE(fails(m));
}

}  // namespace
}  // namespace tcio::chaos
