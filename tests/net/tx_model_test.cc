// Unit tests for the outstanding-transmit (burst) model and noise.
#include <gtest/gtest.h>

#include <algorithm>

#include "net/network.h"

namespace tcio::net {
namespace {

NetworkConfig txCfg(int ranks) {
  NetworkConfig c;
  c.num_ranks = ranks;
  c.ranks_per_node = 1;  // everything inter-node
  c.nic_bandwidth = 1e9;
  c.per_message_overhead = 0;
  c.internode_latency = 1e-6;
  c.fabric_congestion_gamma = 0;
  c.connection_setup = 0;
  c.tx_queue_depth = 4;
  c.tx_overflow_penalty = 1e-3;
  return c;
}

TEST(TxModelTest, NoPenaltyUnderTheDepthLimit) {
  Network n(txCfg(16));
  SimTime last = 0;
  for (int i = 0; i < 4; ++i) {
    last = n.transfer(0.0, 0, i + 1, 100).delivered;
  }
  EXPECT_LT(last, 1e-4);  // bandwidth + latency only
}

TEST(TxModelTest, BurstBeyondDepthPaysGrowingPenalty) {
  Network n(txCfg(16));
  SimTime no_penalty_last = 0, burst_last = 0;
  {
    Network calm(txCfg(16));
    for (int i = 0; i < 12; ++i) {
      // Spaced-out messages never overflow.
      no_penalty_last =
          calm.transfer(i * 1.0, 0, (i % 15) + 1, 100).delivered - i * 1.0;
    }
  }
  for (int i = 0; i < 12; ++i) {
    burst_last = n.transfer(0.0, 0, (i % 15) + 1, 100).delivered;
  }
  EXPECT_GT(burst_last, no_penalty_last + 1e-3);
}

TEST(TxModelTest, PenaltyGrowsWithOverflow) {
  // Messages 5..N pay overflow/depth * penalty: deliveries accelerate apart.
  Network n(txCfg(32));
  std::vector<SimTime> deliveries;
  for (int i = 0; i < 20; ++i) {
    deliveries.push_back(n.transfer(0.0, 0, (i % 31) + 1, 10).delivered);
  }
  // Gap between consecutive deliveries in the overflowed tail grows.
  const SimTime early_gap = deliveries[6] - deliveries[5];
  const SimTime late_gap = deliveries[19] - deliveries[18];
  EXPECT_GT(late_gap, early_gap);
}

TEST(TxModelTest, RdmaTransfersExempt) {
  Network n(txCfg(16));
  SimTime last = 0;
  for (int i = 0; i < 20; ++i) {
    last = n.transfer(0.0, 0, (i % 15) + 1, 100, /*rdma=*/true).delivered;
  }
  EXPECT_LT(last, 1e-4);  // no penalty ever
}

TEST(TxModelTest, InFlightDrainsOverTime) {
  Network n(txCfg(16));
  for (int i = 0; i < 10; ++i) {
    n.transfer(0.0, 0, (i % 15) + 1, 100);
  }
  // Much later, the queue has drained: no penalty again.
  const auto t = n.transfer(10.0, 0, 1, 100);
  EXPECT_LT(t.delivered - 10.0, 1e-4);
}

TEST(TxModelTest, ControlMessagesBypassEverything) {
  Network n(txCfg(16));
  for (int i = 0; i < 50; ++i) {
    const auto t = n.control(0.0, 0, (i % 15) + 1);
    EXPECT_NEAR(t.delivered, 1e-6, 1e-9);
    EXPECT_DOUBLE_EQ(t.sender_free, 0.0);
  }
}

TEST(JitterTest, DeterministicGivenSeed) {
  NetworkConfig c = txCfg(4);
  c.jitter_mean = 2e-6;
  c.jitter_seed = 77;
  Network a(c), b(c);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.transfer(0.0, 0, 1, 100).delivered,
                     b.transfer(0.0, 0, 1, 100).delivered);
  }
}

TEST(JitterTest, DifferentSeedsDiffer) {
  NetworkConfig c1 = txCfg(4);
  c1.jitter_mean = 2e-6;
  c1.jitter_seed = 1;
  NetworkConfig c2 = c1;
  c2.jitter_seed = 2;
  Network a(c1), b(c2);
  bool differ = false;
  for (int i = 0; i < 20; ++i) {
    differ |= a.transfer(0.0, 0, 1, 100).delivered !=
              b.transfer(0.0, 0, 1, 100).delivered;
  }
  EXPECT_TRUE(differ);
}

TEST(JitterTest, HeavyTailEventsOccurAtExpectedRate) {
  NetworkConfig c = txCfg(2);
  c.jitter_mean = 1e-7;
  c.heavy_tail_prob = 0.05;
  c.heavy_tail_mean = 1e-3;
  Network n(c);
  int heavy = 0;
  const int total = 2000;
  for (int i = 0; i < total; ++i) {
    const SimTime base = i * 1.0;
    const SimTime extra = n.transfer(base, 0, 1, 1).delivered - base;
    if (extra > 1e-4) ++heavy;
  }
  // ~5% +- generous slack.
  EXPECT_GT(heavy, total * 0.02);
  EXPECT_LT(heavy, total * 0.10);
}

}  // namespace
}  // namespace tcio::net
