#include "net/network.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace tcio::net {
namespace {

NetworkConfig smallCfg(int ranks) {
  NetworkConfig c;
  c.num_ranks = ranks;
  c.ranks_per_node = 4;
  c.nic_bandwidth = 1e6;        // 1 MB/s for easy math
  c.per_message_overhead = 0;   // disabled unless a test enables it
  c.internode_latency = 1e-3;   // 1 ms
  c.intranode_latency = 1e-4;
  c.membus_bandwidth = 1e7;
  c.fabric_bisection_fraction = 1.0;
  c.fabric_congestion_gamma = 0;
  c.connection_setup = 0;
  return c;
}

TEST(NetworkTest, NodeMapping) {
  Network n(smallCfg(10));
  EXPECT_EQ(n.nodeOf(0), 0);
  EXPECT_EQ(n.nodeOf(3), 0);
  EXPECT_EQ(n.nodeOf(4), 1);
  EXPECT_EQ(n.numNodes(), 3);
}

TEST(NetworkTest, IntraNodeUsesMemoryBus) {
  Network n(smallCfg(8));
  // ranks 0 and 1 share node 0; 1e6 bytes over 1e7 B/s bus = 0.1 s + 1e-4.
  const auto t = n.transfer(0.0, 0, 1, 1'000'000);
  EXPECT_NEAR(t.delivered, 0.1 + 1e-4, 1e-9);
  EXPECT_DOUBLE_EQ(t.sender_free, t.delivered);
}

TEST(NetworkTest, InterNodeChargesNicFabricAndLatency) {
  Network n(smallCfg(8));
  // 1e6 bytes at 1 MB/s NIC: egress 1s; fabric rate = 2 nodes * 1e6 = 2e6 ->
  // +0.5s; ingress NIC +1s; +1 ms latency.
  const auto t = n.transfer(0.0, 0, 4, 1'000'000);
  EXPECT_NEAR(t.delivered, 1.0 + 0.5 + 1.0 + 1e-3, 1e-9);
  EXPECT_NEAR(t.sender_free, 1.0, 1e-9);  // free once egress NIC finished
}

TEST(NetworkTest, SenderNicSerializesBackToBackMessages) {
  Network n(smallCfg(8));
  const auto t1 = n.transfer(0.0, 0, 4, 1'000'000);
  const auto t2 = n.transfer(0.0, 0, 4, 1'000'000);
  EXPECT_GT(t2.sender_free, t1.sender_free);
  EXPECT_NEAR(t2.sender_free, 2.0, 1e-9);
}

TEST(NetworkTest, ConnectionSetupChargedOncePerNodePair) {
  auto cfg = smallCfg(8);
  cfg.connection_setup = 0.5;
  Network n(cfg);
  // Payload messages (control messages bypass connection setup entirely).
  const auto t1 = n.transfer(0.0, 0, 4, 1);
  const auto t2 = n.transfer(10.0, 1, 5, 1);  // same node pair (0,1)
  const auto t3 = n.transfer(20.0, 4, 0, 1);  // reverse direction, cached
  EXPECT_GT(t1.delivered, 0.5);
  EXPECT_LT(t2.delivered - 10.0, 0.5);
  EXPECT_LT(t3.delivered - 20.0, 0.5);
  EXPECT_EQ(n.connectionsEstablished(), 1);
}

TEST(NetworkTest, FabricCongestionPenalizesBursts) {
  auto cfg = smallCfg(64);
  cfg.fabric_congestion_gamma = 1.0;
  cfg.fabric_congestion_tau = 0.01;
  Network congested(cfg);
  Network calm(smallCfg(64));
  // A synchronized burst across many distinct node pairs piles backlog onto
  // the shared fabric (sources and destinations all distinct, so no NIC
  // queue hides the fabric).
  SimTime last_cong = 0, last_calm = 0;
  for (int src = 0; src < 28; src += 4) {
    for (int rep = 0; rep < 8; ++rep) {
      const int dst = 32 + src + (rep % 4);
      last_cong =
          std::max(last_cong,
                   congested.transfer(0.0, src, dst, 100'000).delivered);
      last_calm = std::max(
          last_calm, calm.transfer(0.0, src, dst, 100'000).delivered);
    }
  }
  EXPECT_GT(last_cong, last_calm);
}

TEST(NetworkTest, StatsAccumulate) {
  Network n(smallCfg(8));
  n.transfer(0.0, 0, 4, 100);
  n.transfer(0.0, 1, 5, 200);
  EXPECT_EQ(n.messageCount(), 2);
  EXPECT_EQ(n.bytesMoved(), 300);
}

TEST(NetworkTest, ZeroByteControlMessageCostsLatency) {
  Network n(smallCfg(8));
  const auto t = n.control(0.0, 0, 4);
  EXPECT_NEAR(t.delivered, 1e-3, 1e-9);
}

}  // namespace
}  // namespace tcio::net
