// Tests for the runtime correctness checker (src/check/): each seeded
// protocol violation must be caught with a rank-attributed diagnostic, and
// healthy runs must pass with the hook counters proving the verifiers
// actually ran.
#include "check/checker.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "mpi/comm.h"
#include "mpi/rma.h"
#include "mpi/runtime.h"

namespace tcio {
namespace {

using check::CheckFailure;
using check::Checker;
using mpi::Comm;
using mpi::LockType;
using mpi::Window;

// Enable the checker for this whole binary before the first World is built
// (Checker::enabled() caches the env var on first use).
const bool kCheckerEnabled = [] {
  ::setenv("TCIO_CHECK", "1", /*overwrite=*/1);
  return true;
}();

void expectContains(const std::string& msg, const std::string& needle) {
  EXPECT_NE(msg.find(needle), std::string::npos)
      << "diagnostic \"" << msg << "\" lacks \"" << needle << "\"";
}

// -- Collective matching ------------------------------------------------------

TEST(CheckerCollectiveTest, SkippedCollectiveDiagnosesDivergentRank) {
  mpi::JobConfig jc;
  jc.num_ranks = 4;
  try {
    mpi::runJob(jc, [&](Comm& comm) {
      if (comm.rank() != 2) comm.barrier();  // rank 2 skips the collective
      int x = 0;
      comm.bcast(&x, sizeof(x), 0);
    });
    FAIL() << "expected CheckFailure";
  } catch (const CheckFailure& e) {
    const std::string msg = e.what();
    expectContains(msg, "collective mismatch");
    expectContains(msg, "rank 2");
    expectContains(msg, "bcast");
    expectContains(msg, "barrier");
  }
}

TEST(CheckerCollectiveTest, RootMismatchCaught) {
  mpi::JobConfig jc;
  jc.num_ranks = 3;
  try {
    mpi::runJob(jc, [&](Comm& comm) {
      int x = 0;
      comm.bcast(&x, sizeof(x), comm.rank() == 1 ? 1 : 0);
    });
    FAIL() << "expected CheckFailure";
  } catch (const CheckFailure& e) {
    const std::string msg = e.what();
    expectContains(msg, "collective mismatch");
    expectContains(msg, "rank 1");
    expectContains(msg, "root=");
  }
}

TEST(CheckerCollectiveTest, HealthyCollectivesPassAndAreCounted) {
  mpi::JobConfig jc;
  jc.num_ranks = 4;
  mpi::runJob(jc, [&](Comm& comm, mpi::World& world) {
    std::int64_t v = comm.rank();
    comm.allreduce(&v, 1, mpi::ReduceOp::kSum);
    EXPECT_EQ(v, 0 + 1 + 2 + 3);
    comm.barrier();
    Comm sub = comm.split(comm.rank() % 2, 0);
    std::int64_t s = sub.rank();
    sub.allreduce(&s, 1, mpi::ReduceOp::kMax);
    comm.barrier();
    if (comm.rank() == 0) {
      Checker* ck = world.checker();
      ASSERT_NE(ck, nullptr);
      EXPECT_GT(ck->stats().collectives_checked, 0);
      EXPECT_EQ(ck->violations(), 0);
    }
  });
}

TEST(CheckerCollectiveTest, MatchingUserTagsPassAndAreCounted) {
  mpi::JobConfig jc;
  jc.num_ranks = 4;
  mpi::runJob(jc, [&](Comm& comm, mpi::World& world) {
    // Every rank stamps the same phase ordinal; the matcher verifies the
    // tag alongside the MPI signature and counts the comparison.
    for (std::int64_t phase = 0; phase < 3; ++phase) {
      check::ScopedUserTag tag(world.checker(), comm.rank(), phase);
      comm.barrier();
    }
    comm.barrier();  // untagged: matches anything, not counted
    if (comm.rank() == 0) {
      Checker* ck = world.checker();
      ASSERT_NE(ck, nullptr);
      // 3 tagged barriers, 3 verifying ranks each (the recorder records).
      EXPECT_EQ(ck->stats().tags_checked, 9);
      EXPECT_EQ(ck->violations(), 0);
    }
  });
}

TEST(CheckerCollectiveTest, UserTagMismatchDiagnosesDesyncedPhase) {
  mpi::JobConfig jc;
  jc.num_ranks = 3;
  try {
    mpi::runJob(jc, [&](Comm& comm, mpi::World& world) {
      // Rank 1 believes it is in a different application phase; the barrier
      // signatures (op/root/bytes) still line up, so only the tag catches it.
      const std::int64_t phase = comm.rank() == 1 ? 9002 : 7001;
      check::ScopedUserTag tag(world.checker(), comm.rank(), phase);
      comm.barrier();
    });
    FAIL() << "expected CheckFailure";
  } catch (const CheckFailure& e) {
    const std::string msg = e.what();
    expectContains(msg, "user tag mismatch");
    expectContains(msg, "barrier");
    expectContains(msg, "(actual)");
    expectContains(msg, "(expected)");
    // Both phases appear regardless of which rank recorded first.
    expectContains(msg, "7001");
    expectContains(msg, "9002");
  }
}

TEST(CheckerCollectiveTest, UntaggedRankMatchesAnyTag) {
  mpi::JobConfig jc;
  jc.num_ranks = 4;
  mpi::runJob(jc, [&](Comm& comm, mpi::World& world) {
    // Only even ranks are tagged: every pairing involves an untagged side
    // at least once, so nothing throws and the scoped tag restores cleanly.
    if (comm.rank() % 2 == 0) {
      check::ScopedUserTag tag(world.checker(), comm.rank(), 42);
      comm.barrier();
    } else {
      comm.barrier();
    }
    comm.barrier();
    if (comm.rank() == 0) {
      Checker* ck = world.checker();
      ASSERT_NE(ck, nullptr);
      EXPECT_EQ(ck->userTag(0), Checker::kNoUserTag);  // scope restored
      EXPECT_EQ(ck->violations(), 0);
    }
  });
}

// -- RMA epoch machine --------------------------------------------------------

TEST(CheckerRmaTest, PutOutsideEpochCaughtWithRank) {
  mpi::JobConfig jc;
  jc.num_ranks = 2;
  try {
    mpi::runJob(jc, [&](Comm& comm) {
      Window win = Window::create(comm, 64);
      if (comm.rank() == 1) {
        const int v = 7;
        win.put(0, 0, &v, sizeof(v));  // no lock epoch: must be rejected
      }
      comm.barrier();
    });
    FAIL() << "expected CheckFailure";
  } catch (const CheckFailure& e) {
    const std::string msg = e.what();
    expectContains(msg, "rank 1");
    expectContains(msg, "outside a lock epoch");
  }
}

TEST(CheckerRmaTest, SourceBufferReuseBeforeUnlockCaught) {
  mpi::JobConfig jc;
  jc.num_ranks = 2;
  try {
    mpi::runJob(jc, [&](Comm& comm) {
      Window win = Window::create(comm, 64);
      if (comm.rank() == 0) {
        std::int64_t v = 41;
        win.lock(LockType::kShared, 1);
        win.put(1, 0, &v, sizeof(v));
        v = 42;  // reuse before unlock: MPI forbids this
        win.unlock(1);
      }
    });
    FAIL() << "expected CheckFailure";
  } catch (const CheckFailure& e) {
    const std::string msg = e.what();
    expectContains(msg, "rank 0");
    expectContains(msg, "source");
    expectContains(msg, "before closing the epoch");
  }
}

TEST(CheckerRmaTest, ConflictingOverlappingPutsCaught) {
  mpi::JobConfig jc;
  jc.num_ranks = 3;
  try {
    mpi::runJob(jc, [&](Comm& comm) {
      Window win = Window::create(comm, 64);
      if (comm.rank() != 0) win.lock(LockType::kShared, 0);
      comm.barrier();  // both epochs on target 0 are open now
      if (comm.rank() != 0) {
        const std::int32_t v = comm.rank();  // differing payloads
        win.put(0, 0, &v, sizeof(v));
      }
      comm.barrier();  // keep both epochs open across both puts
      if (comm.rank() != 0) win.unlock(0);
      comm.barrier();
    });
    FAIL() << "expected CheckFailure";
  } catch (const CheckFailure& e) {
    const std::string msg = e.what();
    expectContains(msg, "conflicting overlapping RMA puts");
    expectContains(msg, "rank 1");
    expectContains(msg, "rank 2");
  }
}

TEST(CheckerRmaTest, IdenticalOverlappingPutsAreBenign) {
  mpi::JobConfig jc;
  jc.num_ranks = 3;
  mpi::runJob(jc, [&](Comm& comm, mpi::World& world) {
    Window win = Window::create(comm, 64);
    if (comm.rank() != 0) win.lock(LockType::kShared, 0);
    comm.barrier();
    if (comm.rank() != 0) {
      const std::int32_t v = 1;  // same payload from both origins
      win.put(0, 0, &v, sizeof(v));
    }
    comm.barrier();  // keep both epochs open across both puts
    if (comm.rank() != 0) win.unlock(0);
    comm.barrier();
    if (comm.rank() == 0) {
      EXPECT_GT(world.checker()->stats().benign_overlaps, 0);
      EXPECT_EQ(world.checker()->violations(), 0);
    }
  });
}

TEST(CheckerRmaTest, HealthyEpochsPassAndAreCounted) {
  mpi::JobConfig jc;
  jc.num_ranks = 2;
  mpi::runJob(jc, [&](Comm& comm, mpi::World& world) {
    Window win = Window::create(comm, 64);
    const Rank peer = 1 - comm.rank();
    std::int64_t v = comm.rank() + 100;
    win.lock(LockType::kExclusive, peer);
    win.put(peer, 0, &v, sizeof(v));
    win.unlock(peer);
    comm.barrier();
    std::int64_t got = 0;
    win.lock(LockType::kShared, comm.rank());
    win.get(comm.rank(), 0, &got, sizeof(got));
    win.unlock(comm.rank());
    EXPECT_EQ(got, peer + 100);
    comm.barrier();
    if (comm.rank() == 0) {
      EXPECT_GT(world.checker()->stats().epochs_opened, 0);
      EXPECT_GT(world.checker()->stats().puts_checked, 0);
      EXPECT_EQ(world.checker()->violations(), 0);
    }
  });
}

// -- Wait-for-graph deadlock detection ----------------------------------------

TEST(CheckerDeadlockTest, RecvCycleReportedInsteadOfEngineTimeout) {
  mpi::JobConfig jc;
  jc.num_ranks = 2;
  try {
    mpi::runJob(jc, [&](Comm& comm) {
      int x = 0;
      // Each rank receives from the other; nobody sends: a true deadlock.
      comm.recv(&x, sizeof(x), 1 - comm.rank(), /*tag=*/5);
    });
    FAIL() << "expected CheckFailure";
  } catch (const CheckFailure& e) {
    const std::string msg = e.what();
    expectContains(msg, "wait-for cycle");
    expectContains(msg, "rank 0");
    expectContains(msg, "rank 1");
    expectContains(msg, "MPI_Recv");
  }
}

TEST(CheckerDeadlockTest, WaitAllWithSatisfiablePartnerIsNotACycle) {
  // Regression: waitAll is an AND-wait. Rank 0 blocks on BOTH an isend to 1
  // and an irecv from 1 while rank 1 is still blocked receiving from 0 — a
  // per-request model would draw 0 -> 1 and 1 -> 0 and report a cycle, but
  // rank 0's in-flight isend satisfies rank 1, so the run must complete.
  mpi::JobConfig jc;
  jc.num_ranks = 2;
  mpi::runJob(jc, [&](Comm& comm) {
    int in = 0;
    int out = comm.rank() + 41;
    if (comm.rank() == 0) {
      std::vector<mpi::Request> reqs;
      reqs.push_back(comm.isend(&out, sizeof(out), 1, /*tag=*/9));
      reqs.push_back(comm.irecv(&in, sizeof(in), 1, /*tag=*/9));
      comm.waitAll(reqs);
      EXPECT_EQ(in, 42);
    } else {
      comm.recv(&in, sizeof(in), 0, /*tag=*/9);
      EXPECT_EQ(in, 41);
      comm.send(&out, sizeof(out), 0, /*tag=*/9);
    }
  });
}

TEST(CheckerDeadlockTest, WaitAllReceiveCycleStillCaught) {
  // A genuine AND-wait deadlock: each rank's waitAll contains an irecv the
  // other will never satisfy — the checker must name the cycle, not let the
  // engine time out.
  mpi::JobConfig jc;
  jc.num_ranks = 2;
  try {
    mpi::runJob(jc, [&](Comm& comm) {
      int x = 0;
      std::vector<mpi::Request> reqs;
      reqs.push_back(comm.irecv(&x, sizeof(x), 1 - comm.rank(), /*tag=*/6));
      comm.waitAll(reqs);
    });
    FAIL() << "expected CheckFailure";
  } catch (const CheckFailure& e) {
    const std::string msg = e.what();
    expectContains(msg, "wait-for cycle");
    expectContains(msg, "rank 0");
    expectContains(msg, "rank 1");
  }
}

// -- TCIO segment ownership (checker unit level) ------------------------------

TEST(CheckerOwnershipTest, TransferToNonOwnedSlotCaught) {
  Checker ck(2);
  ck.registerFile("f", /*num_ranks=*/2, /*segment_size=*/1024,
                  /*segments_per_rank=*/4);
  ck.onSegmentTransfer("f", /*g=*/2, /*dest=*/0, "test");  // 2 % 2 == 0: ok
  try {
    // Segment 3 belongs to rank 3 % 2 == 1; landing it on rank 0 is the
    // seeded "write to a non-owned slot" violation.
    ck.onSegmentTransfer("f", /*g=*/3, /*dest=*/0, "tests/flush");
    FAIL() << "expected CheckFailure";
  } catch (const CheckFailure& e) {
    const std::string msg = e.what();
    expectContains(msg, "segment 3");
    expectContains(msg, "rank 0");
    expectContains(msg, "owns it to rank 1");
    expectContains(msg, "tests/flush");
  }
}

TEST(CheckerOwnershipTest, TakeoverRemapChangesExpectedOwner) {
  Checker ck(4);
  ck.registerFile("f", 4, 1024, 4);
  ck.noteDeath("f", 1);
  ck.noteRemap("f", /*g=*/5, /*new_owner=*/2);  // 5 % 4 == 1 died
  ck.onSegmentTransfer("f", 5, 2, "replay");    // new owner: fine
  EXPECT_THROW(ck.onSegmentTransfer("f", 5, 1, "stale"), CheckFailure);
}

TEST(CheckerOwnershipTest, DoubleDrainCaught) {
  Checker ck(2);
  ck.registerFile("f", 2, 1024, 4);
  ck.noteDirty("f", 0);
  ck.onDrain("f", 0, 0, "close");
  try {
    ck.onDrain("f", 0, 0, "close");
    FAIL() << "expected CheckFailure";
  } catch (const CheckFailure& e) {
    expectContains(e.what(), "drained twice");
  }
}

TEST(CheckerOwnershipTest, MissingDrainFailsCoverageAtClose) {
  Checker ck(2);
  ck.registerFile("f", 2, 1024, 4);
  ck.registerFile("f", 2, 1024, 4);
  ck.noteDirty("f", 0);
  ck.noteDirty("f", 1);
  ck.onDrain("f", 0, 0, "close");
  ck.onFileClosed("f", /*final_size=*/2048, 0);
  try {
    ck.onFileClosed("f", /*final_size=*/2048, 1);  // segment 1 never drained
    FAIL() << "expected CheckFailure";
  } catch (const CheckFailure& e) {
    const std::string msg = e.what();
    expectContains(msg, "dirty segment 1");
    expectContains(msg, "never written back");
  }
}

TEST(CheckerOwnershipTest, TruncatedAndLostSegmentsAreExemptFromCoverage) {
  Checker ck(2);
  ck.registerFile("f", 2, 1024, 4);
  ck.registerFile("f", 2, 1024, 4);
  ck.noteDirty("f", 0);
  ck.noteDirty("f", 2);  // beyond final size: truncated away
  ck.noteDirty("f", 1);
  ck.noteSegmentLost("f", 1);  // journaling off, owner died
  ck.onDrain("f", 0, 0, "close");
  ck.onFileClosed("f", /*final_size=*/1024, 0);
  ck.onFileClosed("f", /*final_size=*/1024, 1);  // must not throw
  EXPECT_EQ(ck.violations(), 0);
}

}  // namespace
}  // namespace tcio
