// GREEN fixture: raii-temporary. Bound RAII objects and look-alike shapes
// the rule must leave alone.

namespace fixture {

void flushWithTag(Journal& j) {
  check::ScopedUserTag tag(kTagFlush);
  j.flush();
}

void guardedAppend(Journal& j, const Extent& e) {
  std::lock_guard<SpinLock> hold(mu_);
  j.append(e);
}

// Constructing a RAII value into a function argument is not an unbound
// expression statement.
void passTag(Journal& j) {
  record(check::ScopedUserTag{kTagFlush});
  j.flush();
}

}  // namespace fixture
