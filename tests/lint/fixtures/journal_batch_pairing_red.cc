// RED fixture: journal-batch-pairing. Batches opened without a batchEnd on
// every exit path — buffered frames never reach the device.

namespace fixture {

// No batchEnd anywhere: flagged at the batchBegin.
void unclosedBatch(Journal& j) {
  j.batchBegin();  // LINT-EXPECT[journal-batch-pairing]
  appendAll(j);
}

// Early return while the batch is open.
void earlyReturn(Journal& j, const Extent& e) {
  j.batchBegin();
  if (e.empty()) {
    return;  // LINT-EXPECT[journal-batch-pairing]
  }
  j.append(e);
  j.batchEnd();
}

// Throwing while the batch is open loses the buffered frames too.
void throwWhileOpen(Journal& j, const Extent& e) {
  j.batchBegin();
  if (!e.valid()) {
    throw BadExtent{};  // LINT-EXPECT[journal-batch-pairing]
  }
  j.append(e);
  j.batchEnd();
}

}  // namespace fixture
