// RED fixture: reduced reproduction of the PR 8 `~File` teardown bug,
// translated from member order to scope order (declaration order IS
// destruction order either way). The original: File's delegate client
// member held a pointer into the comm member declared *after* it, so
// member destruction tore down the comm while the client could still
// touch it. Scope version: a longer-lived aggregator retains the address
// of an inner-scope comm and is never told to let go before the comm dies.
#include <cstddef>

namespace fixture {

void teardownOrder(const Config& cfg) {
  DelegateClient agg(cfg);
  {
    sim::Comm comm(cfg.world_size);
    agg.attach(&comm);  // LINT-EXPECT[rma-source-lifetime]
    runEpoch(agg);
  }  // `comm` dies here; `agg` still holds its address
  agg.flush();
}

// Fixed shape (silent): release the retainer before the retained scope
// closes — the PR 8 fix, expressed as an explicit detach.
void teardownOrderFixed(const Config& cfg) {
  DelegateClient agg(cfg);
  {
    sim::Comm comm(cfg.world_size);
    agg.attach(&comm);
    runEpoch(agg);
    agg.detach();
  }
  agg.flush();
}

}  // namespace fixture
