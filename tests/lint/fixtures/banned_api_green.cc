// GREEN fixture: banned-api. The approved counterparts — virtual time and
// the simulated MPI layer — plus one reasoned waiver.

namespace fixture {

void approved(sim::Engine& eng, mpi::Comm& comm) {
  const sim::Time t0 = eng.now();
  comm.barrier();
  eng.advance(sim::micros(5));
  consume(t0);
}

// A justified waiver: operator-facing tooling may read the host clock when
// it carries a reasoned suppression.
long hostSeconds() {
  // NOLINT-TCIO(banned-api): bench harness reports host wall time to the operator
  return std::chrono::steady_clock::now().time_since_epoch().count();
}

}  // namespace fixture
