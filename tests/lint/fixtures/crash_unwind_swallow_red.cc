// RED fixture: crash-unwind-swallow. Broad catches that can eat a
// RankCrashedError: the crashed rank must keep unwinding or the survivors
// never agree on the death.

namespace fixture {

void swallowAll(sim::Comm& comm) {
  try {
    comm.allreduce(nullptr, 0);
  } catch (...) {  // LINT-EXPECT[crash-unwind-swallow]
    logWarn("allreduce failed");
  }
}

void swallowTyped(fs::FsClient& client) {
  try {
    client.flush();
  } catch (const std::exception& e) {  // LINT-EXPECT[crash-unwind-swallow]
    note(e);
  }
}

void countFailures(Journal& j) {
  try {
    j.commit();
  } catch (const Error&) {  // LINT-EXPECT[crash-unwind-swallow]
    bumpFailureStat();
  }
}

}  // namespace fixture
