// RED fixture: rma-source-lifetime. Never compiled — linted by
// lint_selftest, which requires exactly the findings annotated below.
#include <cstddef>
#include <vector>

namespace fixture {

// Direct shape: a block-local buffer feeds window.put and the scope ends
// with the passive-target epoch still open (unlock happens in the caller,
// after the buffer is gone).
void directPut(mpi::Window& window, Rank owner) {
  std::vector<std::byte> buf(512);
  fill(buf);
  window.put(owner, 0, buf.data(), 512);  // LINT-EXPECT[rma-source-lifetime]
}

// Inner-scope variant: the buffer dies at the `}` of the if-block, before
// the unlock that follows it.
void innerScope(mpi::Window& window, Rank owner, bool cold) {
  window.lock(mpi::LockType::kExclusive, owner);
  if (cold) {
    std::vector<std::byte> page(4096);
    window.put(owner, 0, page.data(), 4096);  // LINT-EXPECT[rma-source-lifetime]
  }
  window.unlock(owner);  // too late: `page` is already gone
}

// isend variant: the wire message is freed before anything waits on the
// request.
void asyncSend(mpi::Comm& comm, Rank peer) {
  std::vector<std::byte> msg(64);
  requests_.push_back(comm.isend(msg.data(), 64, peer, 7));  // LINT-EXPECT[rma-source-lifetime]
}

}  // namespace fixture
