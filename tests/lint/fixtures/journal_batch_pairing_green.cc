// GREEN fixture: journal-batch-pairing. Batches closed on every exit path,
// plus exit-domain shapes the rule must not confuse.

namespace fixture {

void batched(Journal& j, const std::vector<Extent>& es) {
  j.batchBegin();
  for (const auto& e : es) j.append(e);
  j.batchEnd();
}

// Returning before the batch opens is fine.
void guardedBegin(Journal& j, const std::vector<Extent>& es) {
  if (es.empty()) return;
  j.batchBegin();
  for (const auto& e : es) j.append(e);
  j.batchEnd();
}

// A return inside a lambda leaves the lambda, not the batching function.
void lambdaReturn(Journal& j, const std::vector<Extent>& es) {
  j.batchBegin();
  const auto keep = [](const Extent& e) {
    if (e.empty()) return false;
    return true;
  };
  for (const auto& e : es) {
    if (keep(e)) j.append(e);
  }
  j.batchEnd();
}

}  // namespace fixture
