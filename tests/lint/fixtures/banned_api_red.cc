// RED fixture: banned-api. Wall-clock reads, raw MPI, raw threading and
// real sleeps — all from a path outside src/sim and src/mpi.

namespace fixture {

void wallClock() {
  const auto t0 = std::chrono::steady_clock::now();  // LINT-EXPECT[banned-api]
  consume(t0);
}

double wallSeconds() {
  timeval tv;
  gettimeofday(&tv, nullptr);  // LINT-EXPECT[banned-api]
  return tv.tv_sec + tv.tv_usec * 1e-6;
}

void rawMpi(void* world) {
  MPI_Barrier(world);  // LINT-EXPECT[banned-api]
}

class Guarded {
  std::mutex mu_;  // LINT-EXPECT[banned-api]
};

void waitABit() {
  std::this_thread::sleep_for(pollInterval());  // LINT-EXPECT[banned-api]
}

}  // namespace fixture
