// GREEN fixture: rma-source-lifetime. Every shape here is sound; the rule
// must stay silent on all of them.
#include <cstddef>
#include <vector>

namespace fixture {

// Epoch closed in the same scope: the put source outlives the unlock.
void putThenUnlock(mpi::Window& window, Rank owner) {
  std::vector<std::byte> buf(512);
  window.lock(mpi::LockType::kExclusive, owner);
  window.put(owner, 0, buf.data(), 512);
  window.unlock(owner);
}

// The post-PR 5 ensureLoadedIndependent shape: the put source is
// caller-owned (a reference parameter), so its lifetime is the caller's
// problem — and the caller unlocks before it dies.
void callerOwnedScratch(mpi::Window& window, Rank owner,
                        std::vector<std::byte>& scratch) {
  scratch.assign(512, std::byte{0});
  window.put(owner, 0, scratch.data(), 512);
}

// isend completed by waitAll before the sources die.
void sendAllWait(mpi::Comm& comm, int peers) {
  std::vector<std::byte> msg(64);
  std::vector<mpi::Request> reqs;
  for (int p = 0; p < peers; ++p) {
    reqs.push_back(comm.isend(msg.data(), 64, p, 7));
  }
  comm.waitAll(reqs);
}

// A reference binding is not an owner: `blob` aliases storage owned by
// `frames`, which outlives the waitAll after the loop.
void referenceSources(mpi::Comm& comm,
                      std::vector<std::vector<std::byte>>& frames) {
  std::vector<mpi::Request> reqs;
  for (int p = 0; p < 4; ++p) {
    const auto& blob = frames[p];
    reqs.push_back(comm.isend(blob.data(), 8, p, 7));
  }
  comm.waitAll(reqs);
}

}  // namespace fixture
