// RED fixture: collective-divergence. Collectives reached on only one side
// of a rank-dependent branch.

namespace fixture {

// Leader-only barrier: ranks != 0 never arrive and the schedule hangs.
void leaderOnlyBarrier(mpi::Comm& comm) {
  if (comm.rank() == 0) {
    comm.barrier();  // LINT-EXPECT[collective-divergence]
  }
}

// Unbalanced cascade: the barrier matches across the branch, the bcast
// does not.
void unbalancedCascade(mpi::Comm& comm, Digest& d) {
  if (comm.isLeader()) {
    comm.bcast(&d, sizeof(d), 0);  // LINT-EXPECT[collective-divergence]
    comm.barrier();
  } else {
    comm.barrier();
  }
}

// The divergent call can sit on the else path too.
void elseOnly(mpi::Comm& comm, long* sum) {
  if (my_rank == 0) {
    drainQueue();
  } else {
    comm.allreduce(sum, 1);  // LINT-EXPECT[collective-divergence]
  }
}

}  // namespace fixture
