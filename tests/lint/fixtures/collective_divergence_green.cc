// GREEN fixture: collective-divergence. Rank-dependent branches that keep
// the collective schedule aligned, and branches the rule must not confuse
// with rank conditionals.

namespace fixture {

// Both paths take the same collective sequence.
void balanced(mpi::Comm& comm, Digest& d) {
  if (comm.rank() == 0) {
    fillDigest(&d);
    comm.bcast(&d, sizeof(d), 0);
  } else {
    comm.bcast(&d, sizeof(d), 0);
  }
}

// Not a rank conditional: every rank evaluates `cold` identically, so a
// collective inside is uniform.
void uniformCondition(mpi::Comm& comm, bool cold) {
  if (cold) {
    comm.barrier();
  }
}

// Rank-dependent local work with the collective outside the branch.
void leaderWork(mpi::Comm& comm) {
  if (comm.isLeader()) {
    drainQueue();
  }
  comm.barrier();
}

}  // namespace fixture
