// GREEN fixture: crash-unwind-swallow. Broad catches that visibly route
// the exception onward, typed-first chains, and narrow catches.

namespace fixture {

// Rethrow keeps the crash unwinding.
void rethrows(sim::Comm& comm) {
  try {
    comm.allreduce(nullptr, 0);
  } catch (...) {
    releaseQueueSlot();
    throw;
  }
}

// The collective error-agreement idiom: capture preserves kRankCrashed for
// agreeOnError.
void captures(sim::Comm& comm) {
  CapturedError err;
  try {
    comm.allreduce(nullptr, 0);
  } catch (const std::exception& e) {
    err = CapturedError::capture(e);
  }
  agreeOnError(comm, err);
}

// A typed RankCrashedError arm ahead of the broad arm routes the crash
// before the broad clause can see it.
void typedFirst(sim::Comm& comm) {
  try {
    comm.allreduce(nullptr, 0);
  } catch (const RankCrashedError&) {
    throw;
  } catch (const std::exception& e) {
    note(e);
  }
}

// Narrow catches of non-crash types are outside the rule entirely.
void narrow(fs::FsClient& client) {
  try {
    client.flush();
  } catch (const FileNotFound&) {
    // an absent WAL is normal on a cold start
  }
}

}  // namespace fixture
