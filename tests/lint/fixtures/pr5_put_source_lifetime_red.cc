// RED fixture: reduced reproduction of the PR 5 `ensureLoadedIndependent`
// bug. The original read pages into a function-local scratch vector, built
// an indexed-put block list pointing at scratch.data(), and queued the
// putIndexed — then returned with the passive-target epoch still open. The
// lock epoch closed in the caller, after scratch was destroyed, so the RMA
// engine read freed memory.
//
// The lifetime obligation flows through the container: scratch.data() is
// inserted into `blocks`, and `blocks` is what reaches the sink.
#include <cstddef>
#include <vector>

namespace fixture {

void ensureLoadedIndependent(mpi::Window* window, Rank owner,
                             std::int64_t off) {
  std::vector<std::byte> scratch(512);
  readPage(off, scratch);
  std::vector<mpi::IndexedBlock> blocks;
  blocks.push_back({0, scratch.data(), 512});
  window->putIndexed(owner, blocks);  // LINT-EXPECT[rma-source-lifetime]
  // Missing: window->unlock(owner) — it happens in the caller, after
  // `scratch` is gone.
}

}  // namespace fixture
