// RED fixture: raii-temporary. Unbound RAII temporaries destruct at the
// semicolon — the tag/lock covers nothing.

namespace fixture {

void flushWithTag(Journal& j) {
  check::ScopedUserTag{kTagFlush};  // LINT-EXPECT[raii-temporary]
  j.flush();
}

void guardedAppend(Journal& j, const Extent& e) {
  std::lock_guard<SpinLock>(mu_);  // LINT-EXPECT[raii-temporary]
  j.append(e);
}

void traceEpoch(sim::Engine& eng) {
  sim::ScopedTimeline{eng, "epoch"};  // LINT-EXPECT[raii-temporary]
  runEpoch(eng);
}

}  // namespace fixture
