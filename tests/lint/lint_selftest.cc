// Self-test for tcio-lint: every red fixture must produce exactly its
// annotated findings, every green fixture must be silent, the suppression
// grammar must be enforced, and the live src/ tree must sweep clean.
//
// TCIO_LINT_FIXTURE_DIR and TCIO_REPO_ROOT are injected by CMake.
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "lint/lint.h"

namespace tcio::lint {
namespace {

namespace fs = std::filesystem;

std::string slurp(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  EXPECT_TRUE(in.good()) << "cannot read " << p;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

std::vector<fs::path> fixtureFiles(std::string_view suffix) {
  std::vector<fs::path> out;
  for (const auto& entry : fs::directory_iterator(TCIO_LINT_FIXTURE_DIR)) {
    const std::string name = entry.path().filename().string();
    if (name.size() >= suffix.size() &&
        name.compare(name.size() - suffix.size(), suffix.size(),
                     suffix.data()) == 0) {
      out.push_back(entry.path());
    }
  }
  return out;
}

// --- Fixture corpus -------------------------------------------------------

TEST(Fixtures, EveryRedFixtureFlagsExactlyItsAnnotatedLines) {
  const std::vector<fs::path> reds = fixtureFiles("_red.cc");
  ASSERT_GE(reds.size(), 6u) << "fixture corpus missing red cases";
  for (const fs::path& p : reds) {
    const std::string content = slurp(p);
    ASSERT_NE(content.find("LINT-EXPECT["), std::string::npos)
        << p << " is a red fixture with no expectations";
    const ExpectResult r =
        checkExpectations(p.filename().string(), content);
    EXPECT_TRUE(r.ok) << p;
    for (const std::string& problem : r.problems) {
      ADD_FAILURE() << p.filename().string() << ": " << problem;
    }
  }
}

TEST(Fixtures, EveryGreenFixtureIsSilent) {
  const std::vector<fs::path> greens = fixtureFiles("_green.cc");
  ASSERT_GE(greens.size(), 6u) << "fixture corpus missing green cases";
  for (const fs::path& p : greens) {
    const std::string content = slurp(p);
    EXPECT_EQ(content.find("LINT-EXPECT["), std::string::npos)
        << p << " is green but carries expectations";
    for (const Finding& f :
         lintText(p.filename().string(), content)) {
      ADD_FAILURE() << p.filename().string() << ": unexpected " << f.str();
    }
  }
}

TEST(Fixtures, EveryRuleHasARedAndAGreenFixture) {
  // Each rule must be pinned from both sides: a case it flags and a
  // near-miss it stays silent on.
  std::string all_reds, all_greens;
  for (const fs::path& p : fixtureFiles("_red.cc")) all_reds += slurp(p);
  for (const fs::path& p : fixtureFiles("_green.cc")) {
    all_greens += slurp(p) + "\n// from: " + p.filename().string() + "\n";
  }
  for (const std::string& rule : ruleNames()) {
    EXPECT_NE(all_reds.find("LINT-EXPECT[" + rule + "]"), std::string::npos)
        << "no red fixture exercises rule " << rule;
  }
  // Green coverage is structural (one _green.cc per rule file name).
  for (const char* stem :
       {"rma_source_lifetime", "collective_divergence", "raii_temporary",
        "journal_batch_pairing", "crash_unwind_swallow", "banned_api"}) {
    EXPECT_NE(all_greens.find(std::string(stem) + "_green.cc"),
              std::string::npos)
        << "no green fixture for " << stem;
  }
}

// --- Suppression grammar ---------------------------------------------------

TEST(Suppression, ReasonedSuppressionSilencesItsLine) {
  const std::string src =
      "void f() {\n"
      "  gettimeofday(&tv, nullptr);  // NOLINT-TCIO(banned-api): host-facing"
      " bench output\n"
      "}\n";
  EXPECT_TRUE(lintText("src/tcio/x.cc", src).empty());
}

TEST(Suppression, SuppressionOnPrecedingLineCoversTheNextLine) {
  const std::string src =
      "void f() {\n"
      "  // NOLINT-TCIO(banned-api): host-facing bench output\n"
      "  gettimeofday(&tv, nullptr);\n"
      "}\n";
  EXPECT_TRUE(lintText("src/tcio/x.cc", src).empty());
}

TEST(Suppression, BareSuppressionWithoutReasonIsItselfAFinding) {
  const std::string src =
      "void f() {\n"
      "  gettimeofday(&tv, nullptr);  // NOLINT-TCIO(banned-api)\n"
      "}\n";
  const std::vector<Finding> fs = lintText("src/tcio/x.cc", src);
  bool meta = false;
  for (const Finding& f : fs) {
    if (f.rule == "lint-suppression") meta = true;
  }
  EXPECT_TRUE(meta) << "reason-less suppression must be reported";
}

TEST(Suppression, UnknownRuleNameIsReported) {
  const std::string src =
      "void f() {\n"
      "  int x = 0;  // NOLINT-TCIO(no-such-rule): whatever\n"
      "}\n";
  const std::vector<Finding> fs = lintText("src/tcio/x.cc", src);
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_EQ(fs[0].rule, "lint-suppression");
}

TEST(Suppression, WrongRuleDoesNotSilenceAnotherRulesFinding) {
  const std::string src =
      "void f() {\n"
      "  gettimeofday(&tv, nullptr);  // NOLINT-TCIO(raii-temporary): nope\n"
      "}\n";
  bool banned = false;
  for (const Finding& f : lintText("src/tcio/x.cc", src)) {
    if (f.rule == "banned-api") banned = true;
  }
  EXPECT_TRUE(banned);
}

// --- banned-api path carve-outs ---------------------------------------------

TEST(BannedApi, SimLayerMayUseRealThreadingPrimitives) {
  const std::string src =
      "void park() { std::mutex m; cv_.wait(lk); }\n";
  EXPECT_TRUE(lintText("src/sim/engine.cc", src).empty());
  EXPECT_FALSE(lintText("src/tcio/file.cc", src).empty());
}

TEST(BannedApi, MpiLayerMayNameRawMpiSymbols) {
  const std::string src = "void shim() { MPI_Barrier(world_); }\n";
  EXPECT_TRUE(lintText("src/mpi/comm.cc", src).empty());
  EXPECT_FALSE(lintText("src/delegate/server.cc", src).empty());
}

TEST(BannedApi, WallClockIsBannedEvenInsideSim) {
  const std::string src =
      "sim::Time now() { return std::chrono::steady_clock::now(); }\n";
  EXPECT_FALSE(lintText("src/sim/engine.cc", src).empty());
}

// --- Live-tree sweep ---------------------------------------------------------

TEST(Sweep, SrcTreeIsCleanUnderAllRules) {
  const fs::path root = TCIO_REPO_ROOT;
  const fs::path src = root / "src";
  ASSERT_TRUE(fs::exists(src)) << "repo root mislocated: " << root;
  int files = 0;
  std::vector<std::string> findings;
  for (const auto& entry : fs::recursive_directory_iterator(src)) {
    if (!entry.is_regular_file()) continue;
    const std::string ext = entry.path().extension().string();
    if (ext != ".cc" && ext != ".h" && ext != ".cpp" && ext != ".hpp") {
      continue;
    }
    ++files;
    const std::string display =
        fs::relative(entry.path(), root).generic_string();
    for (const Finding& f : lintFile(entry.path().string(), display)) {
      findings.push_back(f.str());
    }
  }
  EXPECT_GT(files, 50) << "sweep saw suspiciously few files";
  for (const std::string& f : findings) {
    ADD_FAILURE() << "unsuppressed finding in live tree: " << f;
  }
}

}  // namespace
}  // namespace tcio::lint
