#include "workload/synthetic.h"

#include <gtest/gtest.h>

#include "mpi/runtime.h"

namespace tcio::workload {
namespace {

fs::FsConfig fsCfg() {
  fs::FsConfig c;
  c.num_osts = 4;
  c.stripe_size = 4096;
  return c;
}

mpi::JobConfig job(int p) {
  mpi::JobConfig c;
  c.num_ranks = p;
  return c;
}

BenchmarkConfig baseCfg(Method m, std::int64_t len = 64) {
  BenchmarkConfig c;
  c.method = m;
  c.len_array = len;
  c.tcio.segment_size = 4096;
  c.tcio.segments_per_rank = 4;
  return c;
}

class MethodTest : public ::testing::TestWithParam<Method> {};
INSTANTIATE_TEST_SUITE_P(Methods, MethodTest,
                         ::testing::Values(Method::kOcio, Method::kTcio,
                                           Method::kMpiio));

TEST_P(MethodTest, FileContentsMatchExpectedBytes) {
  const BenchmarkConfig cfg = baseCfg(GetParam());
  fs::Filesystem fsys(fsCfg());
  const int P = 4;
  mpi::runJob(job(P), [&](mpi::Comm& comm) {
    const PhaseResult r = runWritePhase(comm, fsys, cfg);
    EXPECT_GT(r.seconds, 0);
    EXPECT_EQ(r.file_size, totalFileSize(cfg, P));
  });
  const Bytes size = fsys.peekSize(cfg.file_name);
  ASSERT_EQ(size, totalFileSize(cfg, P));
  std::vector<std::byte> contents(static_cast<std::size_t>(size));
  fsys.peek(cfg.file_name, 0, contents);
  for (Offset off = 0; off < size; ++off) {
    ASSERT_EQ(contents[static_cast<std::size_t>(off)],
              expectedByte(cfg, P, off))
        << "offset " << off;
  }
}

TEST_P(MethodTest, ReadPhaseVerifies) {
  const BenchmarkConfig cfg = baseCfg(GetParam());
  fs::Filesystem fsys(fsCfg());
  mpi::runJob(job(4), [&](mpi::Comm& comm) {
    runWritePhase(comm, fsys, cfg);
    const PhaseResult r = runReadPhase(comm, fsys, cfg);  // verifies inside
    EXPECT_GT(r.throughput_mbps, 0);
  });
}

TEST_P(MethodTest, SizeAccessGreaterThanOne) {
  BenchmarkConfig cfg = baseCfg(GetParam());
  cfg.size_access = 8;
  fs::Filesystem fsys(fsCfg());
  const int P = 2;
  mpi::runJob(job(P), [&](mpi::Comm& comm) {
    runWritePhase(comm, fsys, cfg);
    runReadPhase(comm, fsys, cfg);
  });
  std::vector<std::byte> contents(
      static_cast<std::size_t>(totalFileSize(cfg, P)));
  fsys.peek(cfg.file_name, 0, contents);
  for (Offset off = 0; off < static_cast<Offset>(contents.size()); ++off) {
    ASSERT_EQ(contents[static_cast<std::size_t>(off)],
              expectedByte(cfg, P, off));
  }
}

TEST(SyntheticTest, FiveTypeArrays) {
  // TYPEarray = "c,s,i,f,d".
  BenchmarkConfig cfg = baseCfg(Method::kTcio);
  cfg.array_elem_sizes = {1, 2, 4, 4, 8};
  fs::Filesystem fsys(fsCfg());
  const int P = 3;
  mpi::runJob(job(P), [&](mpi::Comm& comm) {
    runWritePhase(comm, fsys, cfg);
    runReadPhase(comm, fsys, cfg);
  });
  EXPECT_EQ(fsys.peekSize(cfg.file_name), totalFileSize(cfg, P));
}

TEST(SyntheticTest, MismatchedAccessSizeRejected) {
  BenchmarkConfig cfg = baseCfg(Method::kTcio, 10);
  cfg.size_access = 3;  // 10 % 3 != 0
  fs::Filesystem fsys(fsCfg());
  EXPECT_THROW(mpi::runJob(job(1),
                           [&](mpi::Comm& comm) {
                             runWritePhase(comm, fsys, cfg);
                           }),
               Error);
}

TEST(SyntheticTest, OcioRunsOutOfMemoryWhereTcioDoesNot) {
  // The Fig. 6/7 failure mode: arrays + combine buffer + aggregator buffer
  // exceed the budget for OCIO; TCIO (arrays + window + one segment) fits.
  const std::int64_t len = 1024;  // arrays: 12 KiB/rank; file 24 KiB (P=2)
  auto run = [&](Method m) {
    BenchmarkConfig cfg = baseCfg(m, len);
    cfg.tcio.segment_size = 1024;
    cfg.tcio.segments_per_rank = 12;
    mpi::JobConfig jc = job(2);
    jc.memory_budget_per_rank = 30 * 1024;  // 30 KiB
    fs::Filesystem fsys(fsCfg());
    mpi::runJob(jc, [&](mpi::Comm& comm) { runWritePhase(comm, fsys, cfg); });
  };
  EXPECT_THROW(run(Method::kOcio), OutOfMemoryBudget);
  EXPECT_NO_THROW(run(Method::kTcio));
}

TEST(SyntheticTest, EffortReportFavorsTcio) {
  const EffortReport r = measureProgrammingEffort();
  EXPECT_GT(r.ocio_lines, r.tcio_lines);
  EXPECT_GT(r.ocio_api_calls, r.tcio_api_calls);
  EXPECT_GT(r.tcio_lines, 0);
}

TEST(SyntheticTest, DeterministicAcrossRuns) {
  const BenchmarkConfig cfg = baseCfg(Method::kTcio);
  auto once = [&] {
    fs::Filesystem fsys(fsCfg());
    SimTime t = 0;
    mpi::runJob(job(4), [&](mpi::Comm& comm) {
      const PhaseResult r = runWritePhase(comm, fsys, cfg);
      if (comm.rank() == 0) t = r.seconds;
    });
    return t;
  };
  EXPECT_DOUBLE_EQ(once(), once());
}

}  // namespace
}  // namespace tcio::workload
