#include <gtest/gtest.h>

#include "workload/synthetic.h"

namespace tcio::workload {
namespace {

TEST(TypeArrayTest, PaperDefault) {
  EXPECT_EQ(parseTypeArray("i,d"), (std::vector<Bytes>{4, 8}));
}

TEST(TypeArrayTest, AllFiveCodes) {
  EXPECT_EQ(parseTypeArray("c,s,i,f,d"), (std::vector<Bytes>{1, 2, 4, 4, 8}));
}

TEST(TypeArrayTest, WhitespaceTolerated) {
  EXPECT_EQ(parseTypeArray("i, d"), (std::vector<Bytes>{4, 8}));
}

TEST(TypeArrayTest, SingleType) {
  EXPECT_EQ(parseTypeArray("d"), (std::vector<Bytes>{8}));
}

TEST(TypeArrayTest, UnknownCodeThrows) {
  EXPECT_THROW(parseTypeArray("i,x"), Error);
}

TEST(TypeArrayTest, EmptyThrows) {
  EXPECT_THROW(parseTypeArray(""), Error);
  EXPECT_THROW(parseTypeArray(","), Error);
}

TEST(TypeArrayTest, RoundTripsThroughBenchmarkConfig) {
  BenchmarkConfig cfg;
  cfg.array_elem_sizes = parseTypeArray("c,d");
  cfg.len_array = 10;
  EXPECT_EQ(totalFileSize(cfg, 4), 4 * 10 * 9);
}

}  // namespace
}  // namespace tcio::workload
