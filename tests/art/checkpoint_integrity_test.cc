// Checkpoint integrity (CRC) and the file-per-process (N-N) backend.
#include <gtest/gtest.h>

#include "art/checkpoint.h"
#include "mpi/runtime.h"

namespace tcio::art {
namespace {

fs::FsConfig fsCfg() {
  fs::FsConfig c;
  c.num_osts = 4;
  c.stripe_size = 4096;
  return c;
}

mpi::JobConfig job(int p) {
  mpi::JobConfig c;
  c.num_ranks = p;
  return c;
}

CheckpointConfig cpCfg(Backend b) {
  CheckpointConfig c;
  c.backend = b;
  c.tcio.segment_size = 4096;
  c.tcio.segments_per_rank = 8;
  return c;
}

std::vector<FttTree> makeTrees(int rank, int size, std::int64_t n) {
  std::vector<FttTree> trees;
  for (std::int64_t id : treesOfRank(n, rank, size)) {
    trees.push_back(generateTree(5, id, TreeGenConfig{}));
  }
  return trees;
}

TEST(FilePerProcessTest, DumpRestartRoundTrip) {
  fs::Filesystem fsys(fsCfg());
  const int P = 4;
  mpi::runJob(job(P), [&](mpi::Comm& comm) {
    const auto mine = makeTrees(comm.rank(), P, 10);
    dumpCheckpoint(comm, fsys, "nn.chk", mine, 10,
                   cpCfg(Backend::kFilePerProcess));
    const auto loaded =
        loadCheckpoint(comm, fsys, "nn.chk", cpCfg(Backend::kFilePerProcess));
    ASSERT_EQ(loaded.size(), mine.size());
    for (std::size_t i = 0; i < mine.size(); ++i) {
      EXPECT_EQ(loaded[i], mine[i]);
    }
  });
  // N files plus the meta file exist.
  EXPECT_TRUE(fsys.exists("nn.chk"));
  for (int r = 0; r < P; ++r) {
    EXPECT_TRUE(fsys.exists("nn.chk." + std::to_string(r)));
  }
}

TEST(FilePerProcessTest, RedecompositionAcrossRankCounts) {
  // Written by 6 ranks, restored by 3 — readers pull from foreign files.
  fs::Filesystem fsys(fsCfg());
  const std::int64_t ntrees = 9;
  mpi::runJob(job(6), [&](mpi::Comm& comm) {
    dumpCheckpoint(comm, fsys, "re.chk", makeTrees(comm.rank(), 6, ntrees),
                   ntrees, cpCfg(Backend::kFilePerProcess));
  });
  mpi::runJob(job(3), [&](mpi::Comm& comm) {
    const auto loaded =
        loadCheckpoint(comm, fsys, "re.chk", cpCfg(Backend::kFilePerProcess));
    const auto want_ids = treesOfRank(ntrees, comm.rank(), 3);
    ASSERT_EQ(loaded.size(), want_ids.size());
    for (std::size_t i = 0; i < loaded.size(); ++i) {
      const FttTree expect =
          generateTree(5, want_ids[i], TreeGenConfig{});
      EXPECT_EQ(loaded[i], expect);
    }
  });
}

class CrcBackendTest : public ::testing::TestWithParam<Backend> {};
INSTANTIATE_TEST_SUITE_P(Backends, CrcBackendTest,
                         ::testing::Values(Backend::kTcio,
                                           Backend::kVanillaMpiio,
                                           Backend::kFilePerProcess));

TEST_P(CrcBackendTest, CorruptionIsDetectedOnRestart) {
  const Backend backend = GetParam();
  const int P = 2;
  const std::int64_t ntrees = 4;
  auto dump = [&](fs::Filesystem& fsys) {
    mpi::runJob(job(P), [&](mpi::Comm& comm) {
      dumpCheckpoint(comm, fsys, "c.chk", makeTrees(comm.rank(), P, ntrees),
                     ntrees, cpCfg(backend));
    });
  };
  // Pin the stored-block checksum domain off: the corruption must survive to
  // restart so the checkpoint's own CRC catches it, not FS read-repair.
  fs::FsConfig fcfg = fsCfg();
  fcfg.integrity = -1;

  // Count the dump's write calls on a pristine file system (stripe count is
  // 1, so every call is exactly one OST request)...
  std::int64_t writes = 0;
  {
    fs::Filesystem clean(fcfg);
    dump(clean);
    writes = clean.stats().write_requests;
  }
  ASSERT_GT(writes, 0);

  // ...then repeat the dump with a seeded stored-block bit flip armed on the
  // final write — deep in the data region, inside CRC-covered tree payload.
  fs::Filesystem fsys(fcfg);
  FaultConfig faults;
  faults.seed = 20260809;
  faults.corruptions.push_back(
      {/*rank=*/-1, CorruptSite::kStoredBlock, /*after=*/writes - 1});
  fsys.installFaultPlan(faults);
  dump(fsys);
  EXPECT_EQ(fsys.stats().corruptions_injected, 1);

  EXPECT_THROW(
      mpi::runJob(job(P),
                  [&](mpi::Comm& comm) {
                    loadCheckpoint(comm, fsys, "c.chk", cpCfg(backend));
                  }),
      FsError);
}

TEST(FilePerProcessTest, AvoidsSharedFileContention) {
  // N-N writes have no shared-file lock traffic at all.
  fs::Filesystem fsys(fsCfg());
  const int P = 8;
  mpi::runJob(job(P), [&](mpi::Comm& comm) {
    dumpCheckpoint(comm, fsys, "nolock.chk",
                   makeTrees(comm.rank(), P, 16), 16,
                   cpCfg(Backend::kFilePerProcess));
  });
  for (int r = 0; r < P; ++r) {
    EXPECT_EQ(fsys.revocations("nolock.chk." + std::to_string(r)), 0);
  }
}

}  // namespace
}  // namespace tcio::art
