// Checkpoint integrity (CRC) and the file-per-process (N-N) backend.
#include <gtest/gtest.h>

#include "art/checkpoint.h"
#include "mpi/runtime.h"

namespace tcio::art {
namespace {

fs::FsConfig fsCfg() {
  fs::FsConfig c;
  c.num_osts = 4;
  c.stripe_size = 4096;
  return c;
}

mpi::JobConfig job(int p) {
  mpi::JobConfig c;
  c.num_ranks = p;
  return c;
}

CheckpointConfig cpCfg(Backend b) {
  CheckpointConfig c;
  c.backend = b;
  c.tcio.segment_size = 4096;
  c.tcio.segments_per_rank = 8;
  return c;
}

std::vector<FttTree> makeTrees(int rank, int size, std::int64_t n) {
  std::vector<FttTree> trees;
  for (std::int64_t id : treesOfRank(n, rank, size)) {
    trees.push_back(generateTree(5, id, TreeGenConfig{}));
  }
  return trees;
}

TEST(FilePerProcessTest, DumpRestartRoundTrip) {
  fs::Filesystem fsys(fsCfg());
  const int P = 4;
  mpi::runJob(job(P), [&](mpi::Comm& comm) {
    const auto mine = makeTrees(comm.rank(), P, 10);
    dumpCheckpoint(comm, fsys, "nn.chk", mine, 10,
                   cpCfg(Backend::kFilePerProcess));
    const auto loaded =
        loadCheckpoint(comm, fsys, "nn.chk", cpCfg(Backend::kFilePerProcess));
    ASSERT_EQ(loaded.size(), mine.size());
    for (std::size_t i = 0; i < mine.size(); ++i) {
      EXPECT_EQ(loaded[i], mine[i]);
    }
  });
  // N files plus the meta file exist.
  EXPECT_TRUE(fsys.exists("nn.chk"));
  for (int r = 0; r < P; ++r) {
    EXPECT_TRUE(fsys.exists("nn.chk." + std::to_string(r)));
  }
}

TEST(FilePerProcessTest, RedecompositionAcrossRankCounts) {
  // Written by 6 ranks, restored by 3 — readers pull from foreign files.
  fs::Filesystem fsys(fsCfg());
  const std::int64_t ntrees = 9;
  mpi::runJob(job(6), [&](mpi::Comm& comm) {
    dumpCheckpoint(comm, fsys, "re.chk", makeTrees(comm.rank(), 6, ntrees),
                   ntrees, cpCfg(Backend::kFilePerProcess));
  });
  mpi::runJob(job(3), [&](mpi::Comm& comm) {
    const auto loaded =
        loadCheckpoint(comm, fsys, "re.chk", cpCfg(Backend::kFilePerProcess));
    const auto want_ids = treesOfRank(ntrees, comm.rank(), 3);
    ASSERT_EQ(loaded.size(), want_ids.size());
    for (std::size_t i = 0; i < loaded.size(); ++i) {
      const FttTree expect =
          generateTree(5, want_ids[i], TreeGenConfig{});
      EXPECT_EQ(loaded[i], expect);
    }
  });
}

class CrcBackendTest : public ::testing::TestWithParam<Backend> {};
INSTANTIATE_TEST_SUITE_P(Backends, CrcBackendTest,
                         ::testing::Values(Backend::kTcio,
                                           Backend::kVanillaMpiio,
                                           Backend::kFilePerProcess));

TEST_P(CrcBackendTest, CorruptionIsDetectedOnRestart) {
  const Backend backend = GetParam();
  fs::Filesystem fsys(fsCfg());
  const int P = 2;
  const std::int64_t ntrees = 4;
  mpi::runJob(job(P), [&](mpi::Comm& comm) {
    dumpCheckpoint(comm, fsys, "c.chk", makeTrees(comm.rank(), P, ntrees),
                   ntrees, cpCfg(backend));
  });
  // Flip one payload byte near the end of the (largest) data region.
  const std::string victim =
      backend == Backend::kFilePerProcess ? "c.chk.0" : "c.chk";
  const Bytes size = fsys.peekSize(victim);
  std::byte original{};
  fsys.peek(victim, size - 16, {&original, 1});
  fsys.pokeByte(victim, size - 16, original ^ std::byte{0x40});

  EXPECT_THROW(
      mpi::runJob(job(P),
                  [&](mpi::Comm& comm) {
                    loadCheckpoint(comm, fsys, "c.chk", cpCfg(backend));
                  }),
      FsError);
}

TEST(FilePerProcessTest, AvoidsSharedFileContention) {
  // N-N writes have no shared-file lock traffic at all.
  fs::Filesystem fsys(fsCfg());
  const int P = 8;
  mpi::runJob(job(P), [&](mpi::Comm& comm) {
    dumpCheckpoint(comm, fsys, "nolock.chk",
                   makeTrees(comm.rank(), P, 16), 16,
                   cpCfg(Backend::kFilePerProcess));
  });
  for (int r = 0; r < P; ++r) {
    EXPECT_EQ(fsys.revocations("nolock.chk." + std::to_string(r)), 0);
  }
}

}  // namespace
}  // namespace tcio::art
