#include "art/ftt.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/error.h"

namespace tcio::art {
namespace {

TEST(FttTest, GenerationIsDeterministicPerId) {
  const TreeGenConfig cfg;
  const FttTree a = generateTree(5, 42, cfg);
  const FttTree b = generateTree(5, 42, cfg);
  EXPECT_EQ(a, b);
  const FttTree c = generateTree(5, 43, cfg);
  EXPECT_NE(a, c);
}

TEST(FttTest, TreesVaryInDepthAndSize) {
  const TreeGenConfig cfg;
  std::int64_t min_size = 1LL << 60, max_size = 0;
  for (int id = 0; id < 50; ++id) {
    const FttTree t = generateTree(5, id, cfg);
    const Bytes s = treeSerializedSize(t);
    min_size = std::min<std::int64_t>(min_size, s);
    max_size = std::max<std::int64_t>(max_size, s);
    EXPECT_GE(t.depth(), 1);
    EXPECT_LE(t.depth(), cfg.max_depth);
  }
  EXPECT_LT(min_size, max_size);  // dynamic structure => dynamic sizes
}

TEST(FttTest, ChildrenComeInEights) {
  const FttTree t = generateTree(7, 1, TreeGenConfig{});
  for (int l = 0; l + 1 < t.depth(); ++l) {
    std::int64_t refined = 0;
    for (auto f : t.levels[static_cast<std::size_t>(l)].refine) refined += f;
    EXPECT_EQ(t.levels[static_cast<std::size_t>(l) + 1].numCells(),
              refined * 8);
  }
}

TEST(FttTest, SerializedSizeMatchesArrayWalk) {
  const FttTree t = generateTree(5, 3, TreeGenConfig{});
  Bytes total = 0;
  std::int64_t arrays = 0;
  forEachArray(t, [&](const void*, Bytes n) {
    total += n;
    ++arrays;
  });
  EXPECT_EQ(total, treeSerializedSize(t));
  EXPECT_EQ(arrays, arrayCount(t));
}

TEST(FttTest, SerializeParseRoundTrip) {
  const FttTree t = generateTree(9, 17, TreeGenConfig{});
  std::vector<std::byte> blob;
  forEachArray(t, [&](const void* data, Bytes n) {
    const auto* p = static_cast<const std::byte*>(data);
    blob.insert(blob.end(), p, p + n);
  });
  const FttTree back = parseTree(blob.data(), static_cast<Bytes>(blob.size()));
  EXPECT_EQ(back, t);
}

TEST(FttTest, ParseRejectsTruncatedBlob) {
  const FttTree t = generateTree(5, 3, TreeGenConfig{});
  std::vector<std::byte> blob;
  forEachArray(t, [&](const void* data, Bytes n) {
    const auto* p = static_cast<const std::byte*>(data);
    blob.insert(blob.end(), p, p + n);
  });
  blob.resize(blob.size() / 2);
  EXPECT_THROW(parseTree(blob.data(), static_cast<Bytes>(blob.size())), Error);
}

TEST(FttTest, ParseRejectsBadMagic) {
  std::vector<std::byte> junk(64, std::byte{0x5A});
  EXPECT_THROW(parseTree(junk.data(), 64), Error);
}

TEST(FttTest, AdvanceKeepsTreeParsable) {
  TreeGenConfig cfg;
  FttTree t = generateTree(5, 8, cfg);
  Rng rng(1);
  for (int step = 0; step < 10; ++step) {
    advanceTree(t, rng, cfg);
    std::vector<std::byte> blob;
    forEachArray(t, [&](const void* data, Bytes n) {
      const auto* p = static_cast<const std::byte*>(data);
      blob.insert(blob.end(), p, p + n);
    });
    const FttTree back =
        parseTree(blob.data(), static_cast<Bytes>(blob.size()));
    EXPECT_EQ(back, t) << "step " << step;
  }
}

TEST(FttTest, GenerateWithCellsHitsTargetWithinAnOctet) {
  for (std::int64_t target : {1, 10, 100, 2048, 5000}) {
    const FttTree t = generateTreeWithCells(5, 1, 2, target);
    EXPECT_GE(t.totalCells(), target);
    EXPECT_LE(t.totalCells(), target + 7);
    EXPECT_EQ(validateTree(t), "");
  }
}

TEST(FttTest, GeneratedTreesSatisfyInvariants) {
  for (int id = 0; id < 30; ++id) {
    const FttTree t = generateTree(5, id, TreeGenConfig{});
    EXPECT_EQ(validateTree(t), "") << "tree " << id;
  }
}

TEST(FttTest, AdvancedTreesSatisfyInvariants) {
  TreeGenConfig cfg;
  FttTree t = generateTree(5, 3, cfg);
  Rng rng(9);
  for (int step = 0; step < 10; ++step) {
    advanceTree(t, rng, cfg);
    EXPECT_EQ(validateTree(t), "") << "step " << step;
  }
}

TEST(FttTest, ValidateDetectsViolations) {
  FttTree t = generateTreeWithCells(5, 0, 2, 100);
  FttTree broken = t;
  broken.levels[1].refine[0] = 2;  // non-boolean flag
  EXPECT_NE(validateTree(broken), "");
  broken = t;
  broken.levels.back().vars.pop_back();  // variable count mismatch
  EXPECT_NE(validateTree(broken), "");
  broken = t;
  broken.levels.back().refine.push_back(0);  // cell count mismatch
  EXPECT_NE(validateTree(broken), "");
}

TEST(FttTest, PaperShapeExampleHas129LikeStructure) {
  // A depth-6 2-variable tree in our format: 1 + 6*(2+2) = 25 on-disk
  // arrays (the paper counts per-cell-octet arrays separately and reaches
  // 129; the structure — many small arrays of mixed types, adjacent in the
  // file — is the same).
  FttTree t = generateTreeWithCells(5, 0, 2, 1 + 2 + 4 + 8 + 16 + 32);
  EXPECT_EQ(arrayCount(t), 1 + t.depth() * 4);
}

}  // namespace
}  // namespace tcio::art
