#include "art/checkpoint.h"

#include <gtest/gtest.h>

#include "fs/client.h"
#include "mpi/runtime.h"

namespace tcio::art {
namespace {

fs::FsConfig fsCfg() {
  fs::FsConfig c;
  c.num_osts = 4;
  c.stripe_size = 4096;
  return c;
}

mpi::JobConfig job(int p) {
  mpi::JobConfig c;
  c.num_ranks = p;
  return c;
}

CheckpointConfig cpCfg(Backend b) {
  CheckpointConfig c;
  c.backend = b;
  c.tcio.segment_size = 4096;
  c.tcio.segments_per_rank = 8;
  return c;
}

std::vector<FttTree> makeTrees(int rank, int size, std::int64_t num_trees) {
  std::vector<FttTree> trees;
  for (std::int64_t id : treesOfRank(num_trees, rank, size)) {
    trees.push_back(generateTree(5, id, TreeGenConfig{}));
  }
  return trees;
}

TEST(CheckpointTest, TreesOfRankRoundRobinPartition) {
  const auto r0 = treesOfRank(10, 0, 4);
  const auto r3 = treesOfRank(10, 3, 4);
  EXPECT_EQ(r0, (std::vector<std::int64_t>{0, 4, 8}));
  EXPECT_EQ(r3, (std::vector<std::int64_t>{3, 7}));
  // Partition covers everything exactly once.
  std::vector<bool> seen(10, false);
  for (int r = 0; r < 4; ++r) {
    for (auto id : treesOfRank(10, r, 4)) {
      EXPECT_FALSE(seen[static_cast<std::size_t>(id)]);
      seen[static_cast<std::size_t>(id)] = true;
    }
  }
  for (bool s : seen) EXPECT_TRUE(s);
}

class CheckpointBackendTest : public ::testing::TestWithParam<Backend> {};
INSTANTIATE_TEST_SUITE_P(Backends, CheckpointBackendTest,
                         ::testing::Values(Backend::kTcio,
                                           Backend::kVanillaMpiio));

TEST_P(CheckpointBackendTest, DumpThenRestartRoundTrips) {
  const Backend backend = GetParam();
  fs::Filesystem fsys(fsCfg());
  const int P = 4;
  const std::int64_t ntrees = 10;
  mpi::runJob(job(P), [&](mpi::Comm& comm) {
    const auto mine = makeTrees(comm.rank(), P, ntrees);
    dumpCheckpoint(comm, fsys, "art.chk", mine, ntrees, cpCfg(backend));
    const auto loaded = loadCheckpoint(comm, fsys, "art.chk", cpCfg(backend));
    ASSERT_EQ(loaded.size(), mine.size());
    for (std::size_t i = 0; i < mine.size(); ++i) {
      EXPECT_EQ(loaded[i], mine[i]) << "tree index " << i;
    }
  });
}

TEST(CheckpointTest, BackendsProduceIdenticalFiles) {
  const int P = 4;
  const std::int64_t ntrees = 8;
  auto runBackend = [&](Backend b, const char* name) {
    fs::Filesystem fsys(fsCfg());
    mpi::runJob(job(P), [&](mpi::Comm& comm) {
      dumpCheckpoint(comm, fsys, name, makeTrees(comm.rank(), P, ntrees),
                     ntrees, cpCfg(b));
    });
    std::vector<std::byte> contents(
        static_cast<std::size_t>(fsys.peekSize(name)));
    fsys.peek(name, 0, contents);
    return contents;
  };
  EXPECT_EQ(runBackend(Backend::kTcio, "a.chk"),
            runBackend(Backend::kVanillaMpiio, "b.chk"));
}

TEST(CheckpointTest, TcioIsFasterThanVanillaForManySmallArrays) {
  const int P = 4;
  const std::int64_t ntrees = 16;
  auto timeBackend = [&](Backend b) {
    fs::Filesystem fsys(fsCfg());
    SimTime t = 0;
    mpi::runJob(job(P), [&](mpi::Comm& comm) {
      dumpCheckpoint(comm, fsys, "t.chk", makeTrees(comm.rank(), P, ntrees),
                     ntrees, cpCfg(b));
      comm.barrier();
      if (comm.rank() == 0) t = comm.proc().now();
    });
    return t;
  };
  const SimTime tcio_t = timeBackend(Backend::kTcio);
  const SimTime vanilla_t = timeBackend(Backend::kVanillaMpiio);
  EXPECT_LT(tcio_t * 3, vanilla_t);  // the paper reports up to ~100x
}

TEST(CheckpointTest, RestartAfterSimulationStepsMatches) {
  // Dump, advance, dump again; the second snapshot must reflect the
  // advanced state (regression against stale level-2 contents).
  fs::Filesystem fsys(fsCfg());
  const int P = 2;
  const std::int64_t ntrees = 4;
  mpi::runJob(job(P), [&](mpi::Comm& comm) {
    auto mine = makeTrees(comm.rank(), P, ntrees);
    dumpCheckpoint(comm, fsys, "s0.chk", mine, ntrees, cpCfg(Backend::kTcio));
    Rng rng(static_cast<std::uint64_t>(comm.rank()) + 100);
    for (auto& t : mine) advanceTree(t, rng, TreeGenConfig{});
    dumpCheckpoint(comm, fsys, "s1.chk", mine, ntrees, cpCfg(Backend::kTcio));
    const auto loaded =
        loadCheckpoint(comm, fsys, "s1.chk", cpCfg(Backend::kTcio));
    ASSERT_EQ(loaded.size(), mine.size());
    for (std::size_t i = 0; i < mine.size(); ++i) {
      EXPECT_EQ(loaded[i], mine[i]);
    }
  });
}

TEST(CheckpointTest, EmptyCheckpointIsValid) {
  fs::Filesystem fsys(fsCfg());
  mpi::runJob(job(2), [&](mpi::Comm& comm) {
    dumpCheckpoint(comm, fsys, "empty.chk", {}, 0, cpCfg(Backend::kTcio));
    const auto loaded =
        loadCheckpoint(comm, fsys, "empty.chk", cpCfg(Backend::kTcio));
    EXPECT_TRUE(loaded.empty());
  });
}

TEST(CheckpointTest, LoadRejectsNonCheckpointFile) {
  fs::Filesystem fsys(fsCfg());
  EXPECT_THROW(
      mpi::runJob(job(1),
                  [&](mpi::Comm& comm) {
                    fs::FsClient fc(fsys, comm.proc());
                    fs::FsFile f = fc.open("junk.dat", fs::kWrite | fs::kCreate);
                    const std::int64_t garbage = 0x1234;
                    fc.pwrite(f, 0, &garbage, 8);
                    fc.pwrite(f, 8, &garbage, 8);
                    fc.close(f);
                    loadCheckpoint(comm, fsys, "junk.dat",
                                   cpCfg(Backend::kTcio));
                  }),
      Error);
}

}  // namespace
}  // namespace tcio::art
