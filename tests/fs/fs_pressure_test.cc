// Cache-pressure, metadata-serialization, and multi-file behaviour of the
// simulated file system.
#include <gtest/gtest.h>

#include <vector>

#include "fs/client.h"
#include "mpi/runtime.h"

namespace tcio::fs {
namespace {

mpi::JobConfig job(int p) {
  mpi::JobConfig c;
  c.num_ranks = p;
  return c;
}

TEST(FsPressureTest, CacheEvictionMakesOldReadsCold) {
  FsConfig cfg;
  cfg.num_osts = 1;
  cfg.stripe_size = 4096;
  cfg.cache_capacity_per_ost = 64 * 1024;  // tiny cache
  Filesystem fs(cfg);
  mpi::runJob(job(1), [&](mpi::Comm& comm) {
    FsClient fc(fs, comm.proc());
    FsFile f = fc.open("old.dat", kRead | kWrite | kCreate);
    std::vector<std::byte> first(32 * 1024, std::byte{1});
    fc.pwrite(f, 0, first.data(), static_cast<Bytes>(first.size()));
    // Write 4x the cache capacity elsewhere to evict the first region.
    std::vector<std::byte> filler(64 * 1024, std::byte{2});
    for (int i = 0; i < 4; ++i) {
      fc.pwrite(f, 100 * 1024 + i * 64 * 1024, filler.data(),
                static_cast<Bytes>(filler.size()));
    }
    fc.close(f);
  });
  const FsStats before = fs.stats();
  mpi::runJob(job(1), [&](mpi::Comm& comm) {
    FsClient fc(fs, comm.proc());
    FsFile f = fc.open("old.dat", kRead);
    std::vector<std::byte> buf(32 * 1024);
    fc.pread(f, 0, buf.data(), static_cast<Bytes>(buf.size()));
    for (auto b : buf) ASSERT_EQ(b, std::byte{1});  // data survives eviction
    fc.close(f);
  });
  const FsStats after = fs.stats();
  // The evicted region was read from disk, not cache.
  EXPECT_EQ(after.bytes_read_from_cache, before.bytes_read_from_cache);
  EXPECT_EQ(after.bytes_read - before.bytes_read, 32 * 1024);
}

TEST(FsPressureTest, MdsSerializesManyOpens) {
  FsConfig cfg;
  cfg.mds_open = 1e-3;
  Filesystem fs(cfg);
  SimTime t_many = 0;
  mpi::runJob(job(32), [&](mpi::Comm& comm) {
    FsClient fc(fs, comm.proc());
    comm.barrier();
    FsFile f = fc.open("shared.dat", kWrite | kCreate);
    comm.barrier();
    if (comm.rank() == 0) t_many = comm.proc().now();
    fc.close(f);
  });
  // 32 opens through one MDS at 1 ms each: at least ~32 ms of wall.
  EXPECT_GE(t_many, 32 * 1e-3);
}

TEST(FsPressureTest, ManyFilesSpreadOverOsts) {
  FsConfig cfg;
  cfg.num_osts = 8;
  Filesystem fs(cfg);
  mpi::runJob(job(8), [&](mpi::Comm& comm) {
    FsClient fc(fs, comm.proc());
    // Each rank creates its own file: start OSTs rotate round-robin, so
    // per-file traffic lands on different OSTs and overlaps.
    FsFile f = fc.open("file" + std::to_string(comm.rank()), kWrite | kCreate);
    std::vector<std::byte> buf(256 * 1024, std::byte{1});
    comm.barrier();
    const SimTime t0 = comm.proc().now();
    fc.pwrite(f, 0, buf.data(), static_cast<Bytes>(buf.size()));
    const SimTime dt = comm.proc().now() - t0;
    // No OST sharing: each write takes roughly the single-stream time.
    const double single = 256.0 * 1024 / cfg.ost_write_bandwidth;
    EXPECT_LT(dt, single * 3);
    fc.close(f);
  });
}

TEST(FsPressureTest, SharedFileSerializesOnOneOst) {
  FsConfig cfg;
  cfg.num_osts = 8;
  cfg.default_stripe_count = 1;
  Filesystem fs(cfg);
  SimTime last = 0;
  mpi::runJob(job(8), [&](mpi::Comm& comm) {
    FsClient fc(fs, comm.proc());
    FsFile f = fc.open("one.dat", kWrite | kCreate);
    std::vector<std::byte> buf(256 * 1024, std::byte{1});
    comm.barrier();
    const SimTime t0 = comm.proc().now();
    fc.pwrite(f, comm.rank() * 256 * 1024, buf.data(),
              static_cast<Bytes>(buf.size()));
    double dt = comm.proc().now() - t0;
    comm.allreduce(&dt, 1, mpi::ReduceOp::kMax);
    if (comm.rank() == 0) last = dt;
    fc.close(f);
  });
  // All eight writes behind one OST: the slowest waits ~8x a single write.
  const double single = 256.0 * 1024 / FsConfig{}.ost_write_bandwidth;
  EXPECT_GT(last, single * 6);
}

TEST(FsPressureTest, TruncateResetsLocksToo) {
  FsConfig cfg;
  Filesystem fs(cfg);
  mpi::runJob(job(2), [&](mpi::Comm& comm) {
    FsClient fc(fs, comm.proc());
    FsFile f = fc.open("t.dat", kWrite | kCreate);
    const std::int64_t v = comm.rank();
    fc.pwrite(f, comm.rank() * 8, &v, 8);  // both in one lock unit
    fc.close(f);
    comm.barrier();
    if (comm.rank() == 0) {
      FsFile g = fc.open("t.dat", kWrite | kTruncate);
      fc.pwrite(g, 0, &v, 8);
      fc.close(g);
    }
  });
  EXPECT_EQ(fs.peekSize("t.dat"), 8);
  EXPECT_EQ(fs.revocations("t.dat"), 0);  // fresh lock table post-truncate
}

}  // namespace
}  // namespace tcio::fs
