#include "fs/lock_manager.h"

#include <gtest/gtest.h>

namespace tcio::fs {
namespace {

FsConfig cfg() {
  FsConfig c;
  c.stripe_size = 100;
  c.lock_grant = 1.0;
  c.lock_revoke = 10.0;
  return c;
}

TEST(LockManagerTest, FirstWriteGrantsPerUnit) {
  const FsConfig c = cfg();
  LockManager lm(c);
  const auto cost = lm.acquireWrite(0, 0, 250);  // units 0,1,2
  EXPECT_FALSE(cost.revoked);
  EXPECT_DOUBLE_EQ(cost.delay, 3.0);
  EXPECT_EQ(lm.grants(), 3);
}

TEST(LockManagerTest, RepeatedWriteBySameOwnerIsFree) {
  const FsConfig c = cfg();
  LockManager lm(c);
  lm.acquireWrite(0, 0, 100);
  const auto cost = lm.acquireWrite(0, 10, 20);
  EXPECT_DOUBLE_EQ(cost.delay, 0.0);
}

TEST(LockManagerTest, WriteByOtherClientRevokes) {
  const FsConfig c = cfg();
  LockManager lm(c);
  lm.acquireWrite(0, 0, 100);
  const auto cost = lm.acquireWrite(1, 0, 100);
  EXPECT_TRUE(cost.revoked);
  EXPECT_DOUBLE_EQ(cost.delay, 11.0);  // revoke + grant
  EXPECT_EQ(lm.revocations(), 1);
}

TEST(LockManagerTest, PingPongCostsEveryTime) {
  const FsConfig c = cfg();
  LockManager lm(c);
  for (int i = 0; i < 10; ++i) {
    lm.acquireWrite(i % 2, 0, 50);
  }
  EXPECT_EQ(lm.revocations(), 9);
}

TEST(LockManagerTest, ReadersShare) {
  const FsConfig c = cfg();
  LockManager lm(c);
  const auto c1 = lm.acquireRead(0, 0, 100);
  const auto c2 = lm.acquireRead(1, 0, 100);
  EXPECT_FALSE(c1.revoked);
  EXPECT_FALSE(c2.revoked);
  const auto c3 = lm.acquireRead(0, 0, 100);  // already holds it
  EXPECT_DOUBLE_EQ(c3.delay, 0.0);
}

TEST(LockManagerTest, ReadAfterForeignWriteRevokesWriter) {
  const FsConfig c = cfg();
  LockManager lm(c);
  lm.acquireWrite(0, 0, 100);
  const auto cost = lm.acquireRead(1, 0, 100);
  EXPECT_TRUE(cost.revoked);
}

TEST(LockManagerTest, WriteAfterForeignReadsRevokesReaders) {
  const FsConfig c = cfg();
  LockManager lm(c);
  lm.acquireRead(1, 0, 100);
  lm.acquireRead(2, 0, 100);
  const auto cost = lm.acquireWrite(0, 0, 100);
  EXPECT_TRUE(cost.revoked);
}

TEST(LockManagerTest, DisjointUnitsDoNotConflict) {
  const FsConfig c = cfg();
  LockManager lm(c);
  lm.acquireWrite(0, 0, 100);
  const auto cost = lm.acquireWrite(1, 100, 100);  // next unit
  EXPECT_FALSE(cost.revoked);
}

}  // namespace
}  // namespace tcio::fs
