#include "fs/filesystem.h"

#include <gtest/gtest.h>

#include <vector>

#include "fs/client.h"
#include "mpi/runtime.h"

namespace tcio::fs {
namespace {

FsConfig testCfg() {
  FsConfig c;
  c.num_osts = 4;
  c.stripe_size = 1024;
  c.default_stripe_count = 1;
  return c;
}

mpi::JobConfig job(int p) {
  mpi::JobConfig c;
  c.num_ranks = p;
  return c;
}

TEST(FilesystemTest, CreateWriteReadBack) {
  Filesystem fs(testCfg());
  mpi::runJob(job(1), [&](mpi::Comm& comm) {
    FsClient fc(fs, comm.proc());
    FsFile f = fc.open("a.dat", kRead | kWrite | kCreate);
    const std::vector<int> data{10, 20, 30};
    fc.pwrite(f, 0, data.data(), 12);
    std::vector<int> out(3, 0);
    fc.pread(f, 0, out.data(), 12);
    EXPECT_EQ(out, data);
    EXPECT_EQ(fc.size(f), 12);
    fc.close(f);
    EXPECT_GT(comm.proc().now(), 0.0);  // I/O cost was charged
  });
  EXPECT_EQ(fs.peekSize("a.dat"), 12);
}

TEST(FilesystemTest, OpenMissingFileWithoutCreateFails) {
  Filesystem fs(testCfg());
  // Typed error: FileNotFound (a FsError subclass) carrying the path.
  try {
    mpi::runJob(job(1), [&](mpi::Comm& comm) {
      FsClient fc(fs, comm.proc());
      fc.open("nope.dat", kRead);
    });
    FAIL() << "open of a missing file without kCreate must throw";
  } catch (const FileNotFound& e) {
    EXPECT_EQ(e.path, "nope.dat");
    EXPECT_NE(std::string(e.what()).find("nope.dat"), std::string::npos);
  }
}

TEST(FilesystemTest, TruncateClearsContents) {
  Filesystem fs(testCfg());
  mpi::runJob(job(1), [&](mpi::Comm& comm) {
    FsClient fc(fs, comm.proc());
    FsFile f = fc.open("t.dat", kWrite | kCreate);
    const int v = 7;
    fc.pwrite(f, 0, &v, 4);
    fc.close(f);
    FsFile g = fc.open("t.dat", kRead | kWrite | kTruncate);
    EXPECT_EQ(fc.size(g), 0);
    fc.close(g);
  });
}

TEST(FilesystemTest, WrongModeRejected) {
  Filesystem fs(testCfg());
  EXPECT_THROW(mpi::runJob(job(1),
                           [&](mpi::Comm& comm) {
                             FsClient fc(fs, comm.proc());
                             FsFile f = fc.open("m.dat", kWrite | kCreate);
                             int v;
                             fc.pread(f, 0, &v, 4);
                           }),
               Error);
}

TEST(FilesystemTest, ConcurrentDisjointWritesAllLand) {
  Filesystem fs(testCfg());
  const int P = 8;
  mpi::runJob(job(P), [&](mpi::Comm& comm) {
    FsClient fc(fs, comm.proc());
    FsFile f = fc.open("shared.dat", kWrite | kCreate);
    comm.barrier();
    std::vector<std::byte> mine(64, static_cast<std::byte>(comm.rank() + 1));
    fc.pwrite(f, comm.rank() * 64, mine.data(), 64);
    comm.barrier();
    fc.close(f);
  });
  std::vector<std::byte> all(static_cast<std::size_t>(P) * 64);
  fs.peek("shared.dat", 0, all);
  for (int r = 0; r < P; ++r) {
    for (int i = 0; i < 64; ++i) {
      EXPECT_EQ(all[static_cast<std::size_t>(r * 64 + i)],
                static_cast<std::byte>(r + 1))
          << "rank " << r << " byte " << i;
    }
  }
}

TEST(FilesystemTest, InterleavedSmallWritesCauseLockPingPong) {
  Filesystem fs(testCfg());
  const int P = 4;
  mpi::runJob(job(P), [&](mpi::Comm& comm) {
    FsClient fc(fs, comm.proc());
    FsFile f = fc.open("ping.dat", kWrite | kCreate);
    comm.barrier();
    // All ranks repeatedly write inside the same 1 KiB lock unit.
    for (int i = 0; i < 5; ++i) {
      const int v = comm.rank();
      fc.pwrite(f, comm.rank() * 4 + i * 16, &v, 4);
    }
    fc.close(f);
  });
  EXPECT_GT(fs.revocations("ping.dat"), 5);
}

TEST(FilesystemTest, StripingSpreadsAcrossOsts) {
  // Large transfer with stripes big enough to amortize per-request overhead:
  // 4-way striping must beat a single OST.
  auto timeWrite = [](int stripe_count) {
    FsConfig c = testCfg();
    c.stripe_size = 256 * 1024;
    c.default_stripe_count = stripe_count;
    Filesystem fs(c);
    SimTime dt = 0;
    mpi::runJob(job(1), [&](mpi::Comm& comm) {
      FsClient fc(fs, comm.proc());
      FsFile f = fc.open("striped.dat", kWrite | kCreate);
      std::vector<std::byte> big(4 * 1024 * 1024, std::byte{5});
      const SimTime t0 = comm.proc().now();
      fc.pwrite(f, 0, big.data(), static_cast<Bytes>(big.size()));
      dt = comm.proc().now() - t0;
      fc.close(f);
    });
    // Data must round-trip correctly regardless of striping.
    std::vector<std::byte> out(4 * 1024 * 1024);
    fs.peek("striped.dat", 0, out);
    for (auto b : out) {
      if (b != std::byte{5}) ADD_FAILURE() << "corrupt stripe data";
    }
    return dt;
  };
  EXPECT_LT(timeWrite(4), timeWrite(1));
}

TEST(FilesystemTest, CachedReadFasterThanColdRead) {
  FsConfig c = testCfg();
  c.cache_capacity_per_ost = 1_MiB;
  Filesystem fs(c);
  SimTime warm = 0;
  mpi::runJob(job(1), [&](mpi::Comm& comm) {
    FsClient fc(fs, comm.proc());
    FsFile f = fc.open("c.dat", kRead | kWrite | kCreate);
    std::vector<std::byte> data(256 * 1024, std::byte{1});
    fc.pwrite(f, 0, data.data(), static_cast<Bytes>(data.size()));
    const SimTime t0 = comm.proc().now();
    fc.pread(f, 0, data.data(), static_cast<Bytes>(data.size()));
    warm = comm.proc().now() - t0;
    fc.close(f);
  });

  FsConfig nc = testCfg();
  nc.cache_capacity_per_ost = 0;  // cache disabled
  Filesystem fs2(nc);
  SimTime cold = 0;
  mpi::runJob(job(1), [&](mpi::Comm& comm) {
    FsClient fc(fs2, comm.proc());
    FsFile f = fc.open("c.dat", kRead | kWrite | kCreate);
    std::vector<std::byte> data(256 * 1024, std::byte{1});
    fc.pwrite(f, 0, data.data(), static_cast<Bytes>(data.size()));
    const SimTime t0 = comm.proc().now();
    fc.pread(f, 0, data.data(), static_cast<Bytes>(data.size()));
    cold = comm.proc().now() - t0;
    fc.close(f);
  });
  EXPECT_LT(warm, cold);
}

TEST(FilesystemTest, SmallWritesSlowerPerByteThanLargeWrites) {
  Filesystem fs(testCfg());
  SimTime small_time = 0, large_time = 0;
  mpi::runJob(job(1), [&](mpi::Comm& comm) {
    FsClient fc(fs, comm.proc());
    FsFile f = fc.open("s.dat", kWrite | kCreate);
    std::vector<std::byte> buf(64 * 1024, std::byte{2});
    SimTime t0 = comm.proc().now();
    for (int i = 0; i < 64; ++i) {
      fc.pwrite(f, i * 1024, buf.data(), 1024);
    }
    small_time = comm.proc().now() - t0;
    t0 = comm.proc().now();
    fc.pwrite(f, 0, buf.data(), 64 * 1024);
    large_time = comm.proc().now() - t0;
    fc.close(f);
  });
  EXPECT_GT(small_time, large_time * 5);
}

TEST(FilesystemTest, InjectedWriteFaultPropagates) {
  Filesystem fs(testCfg());
  fs.injectWriteFault(2);
  EXPECT_THROW(mpi::runJob(job(1),
                           [&](mpi::Comm& comm) {
                             FsClient fc(fs, comm.proc());
                             FsFile f = fc.open("fault.dat", kWrite | kCreate);
                             const int v = 1;
                             fc.pwrite(f, 0, &v, 4);
                             fc.pwrite(f, 4, &v, 4);
                             fc.pwrite(f, 8, &v, 4);  // third request faults
                           }),
               FsError);
}

TEST(FilesystemTest, InjectedWriteFaultIsTransientTyped) {
  Filesystem fs(testCfg());
  fs.injectWriteFault(0);
  mpi::runJob(job(1), [&](mpi::Comm& comm) {
    FsClient fc(fs, comm.proc());
    FsFile f = fc.open("typed.dat", kWrite | kCreate);
    const int v = 1;
    EXPECT_THROW(fc.pwrite(f, 0, &v, 4), TransientFsError);
    fc.pwrite(f, 0, &v, 4);  // one-shot: the retry goes through
    fc.close(f);
  });
}

TEST(FilesystemTest, RetryPolicyAbsorbsTransientFaults) {
  Filesystem fs(testCfg());
  fs.injectWriteFault(0);
  mpi::runJob(job(1), [&](mpi::Comm& comm) {
    FsClient fc(fs, comm.proc());
    RetryPolicy retry;
    retry.max_attempts = 3;
    fc.setRetryPolicy(retry);
    FsFile f = fc.open("retry.dat", kRead | kWrite | kCreate);
    const int v = 42;
    const SimTime before = comm.proc().now();
    fc.pwrite(f, 0, &v, 4);  // first attempt faults, retry succeeds
    EXPECT_GT(comm.proc().now(), before);  // backoff charged to sim time
    EXPECT_EQ(fc.retryStats().transient_faults, 1);
    EXPECT_EQ(fc.retryStats().retries, 1);
    EXPECT_EQ(fc.retryStats().giveups, 0);
    int out = 0;
    fc.pread(f, 0, &out, 4);
    EXPECT_EQ(out, 42);
    fc.close(f);
  });
}

TEST(FilesystemTest, PermanentOstFailureRemapsToSurvivors) {
  Filesystem fs(testCfg());
  FaultConfig fault;
  fault.enabled = true;
  fault.fail_ost = 0;
  fault.fail_ost_after_requests = 0;  // dead from the first request
  fs.installFaultPlan(fault);
  mpi::runJob(job(1), [&](mpi::Comm& comm) {
    FsClient fc(fs, comm.proc());
    // stripe over all 4 OSTs so offset 0 lands on the dead OST 0.
    FsFile f = fc.open("dead.dat", kRead | kWrite | kCreate,
                       /*stripe_count=*/4);
    std::vector<int> data(1024, 7);
    const Bytes n = static_cast<Bytes>(data.size() * sizeof(int));
    try {
      fc.pwrite(f, 0, data.data(), n);
      FAIL() << "write touching the dead OST must throw";
    } catch (const OstFailedError& e) {
      EXPECT_EQ(e.ost, 0);
    }
    // Degraded mode: remap the dead OST's chunks, then the write goes
    // through and reads back intact.
    EXPECT_GT(fc.remapFailedChunks(f, 0, n), 0);
    fc.pwrite(f, 0, data.data(), n);
    std::vector<int> out(data.size(), 0);
    fc.pread(f, 0, out.data(), n);
    EXPECT_EQ(out, data);
    fc.close(f);
  });
  EXPECT_GT(fs.stats().chunks_remapped, 0);
}

TEST(FilesystemTest, RecoveredOstRebalancesRemappedChunksHome) {
  Filesystem fs(testCfg());
  FaultConfig fault;
  fault.enabled = true;
  fault.fail_ost = 0;
  fault.fail_ost_after_requests = 0;     // dead from the first request
  fault.recover_ost_after_requests = 8;  // failover pair rejoins later
  fs.installFaultPlan(fault);
  mpi::runJob(job(1), [&](mpi::Comm& comm) {
    FsClient fc(fs, comm.proc());
    FsFile f = fc.open("reb.dat", kRead | kWrite | kCreate,
                       /*stripe_count=*/4);
    std::vector<int> data(1024, 7);
    const Bytes n = static_cast<Bytes>(data.size() * sizeof(int));
    EXPECT_THROW(fc.pwrite(f, 0, data.data(), n), OstFailedError);
    // Degraded mode while OST 0 is down: remap its chunks, write, read.
    EXPECT_GT(fc.remapFailedChunks(f, 0, n), 0);
    fc.pwrite(f, 0, data.data(), n);
    std::vector<int> out(data.size(), 0);
    // Keep issuing I/O until the request counter crosses the recovery
    // threshold; the first operation after that rebalances the remapped
    // chunks back to their home (striping-layout) OST.
    for (int i = 0; i < 8 && fs.stats().chunks_rebalanced == 0; ++i) {
      fc.pread(f, 0, out.data(), n);
    }
    EXPECT_GT(fs.stats().chunks_rebalanced, 0);
    // Contents survive the rebalance, and routing home is clean (no
    // OstFailedError now that the OST recovered).
    fc.pread(f, 0, out.data(), n);
    EXPECT_EQ(out, data);
    fc.close(f);
  });
  EXPECT_GT(fs.stats().chunks_remapped, 0);
}

TEST(FilesystemTest, StatsTrackRequests) {
  Filesystem fs(testCfg());
  mpi::runJob(job(1), [&](mpi::Comm& comm) {
    FsClient fc(fs, comm.proc());
    FsFile f = fc.open("st.dat", kRead | kWrite | kCreate);
    const int v = 9;
    fc.pwrite(f, 0, &v, 4);
    int out;
    fc.pread(f, 0, &out, 4);
    fc.close(f);
  });
  const FsStats s = fs.stats();
  EXPECT_EQ(s.write_requests, 1);
  EXPECT_EQ(s.read_requests, 1);
  EXPECT_EQ(s.bytes_written, 4);
  EXPECT_EQ(s.bytes_read, 4);
  EXPECT_EQ(s.opens, 1);
}

TEST(FilesystemTest, SharedFileManyClientsContendOnOneOst) {
  // With stripe_count=1 every client hits the same OST: aggregate write time
  // grows roughly linearly with client count.
  auto run = [](int P) {
    Filesystem fs(testCfg());
    SimTime makespan = 0;
    mpi::runJob(job(P), [&](mpi::Comm& comm) {
      FsClient fc(fs, comm.proc());
      FsFile f = fc.open("big.dat", kWrite | kCreate);
      comm.barrier();
      std::vector<std::byte> mine(128 * 1024, std::byte{1});
      fc.pwrite(f, comm.rank() * 128 * 1024, mine.data(),
                static_cast<Bytes>(mine.size()));
      comm.barrier();
      if (comm.rank() == 0) makespan = comm.proc().now();
    });
    return makespan;
  };
  const SimTime t2 = run(2);
  const SimTime t8 = run(8);
  EXPECT_GT(t8, t2 * 2.5);
}

}  // namespace
}  // namespace tcio::fs
