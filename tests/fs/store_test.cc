#include "fs/store.h"

#include <gtest/gtest.h>

#include <vector>

namespace tcio::fs {
namespace {

std::vector<std::byte> bytes(std::initializer_list<int> vals) {
  std::vector<std::byte> out;
  for (int v : vals) out.push_back(static_cast<std::byte>(v));
  return out;
}

TEST(SparseStoreTest, WriteReadRoundTrip) {
  SparseStore s;
  const auto data = bytes({1, 2, 3, 4, 5});
  s.write(100, data);
  std::vector<std::byte> out(5);
  s.read(100, out);
  EXPECT_EQ(out, data);
  EXPECT_EQ(s.size(), 105);
}

TEST(SparseStoreTest, HolesReadAsZero) {
  SparseStore s;
  s.write(1000, bytes({7}));
  std::vector<std::byte> out(3);
  s.read(500, out);
  EXPECT_EQ(out, bytes({0, 0, 0}));
}

TEST(SparseStoreTest, CrossPageBoundary) {
  SparseStore s;
  const Offset off = SparseStore::kPageSize - 2;
  s.write(off, bytes({1, 2, 3, 4}));
  std::vector<std::byte> out(4);
  s.read(off, out);
  EXPECT_EQ(out, bytes({1, 2, 3, 4}));
}

TEST(SparseStoreTest, OverwriteReplacesBytes) {
  SparseStore s;
  s.write(0, bytes({1, 1, 1, 1}));
  s.write(1, bytes({9, 9}));
  std::vector<std::byte> out(4);
  s.read(0, out);
  EXPECT_EQ(out, bytes({1, 9, 9, 1}));
}

TEST(SparseStoreTest, LargeMultiPageWrite) {
  SparseStore s;
  std::vector<std::byte> data(300'000);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::byte>(i % 251);
  }
  s.write(12345, data);
  std::vector<std::byte> out(data.size());
  s.read(12345, out);
  EXPECT_EQ(out, data);
}

TEST(SparseStoreTest, ClearResetsEverything) {
  SparseStore s;
  s.write(0, bytes({1, 2, 3}));
  s.clear();
  EXPECT_EQ(s.size(), 0);
  std::vector<std::byte> out(3);
  s.read(0, out);
  EXPECT_EQ(out, bytes({0, 0, 0}));
}

TEST(SparseStoreTest, AllocationIsLazyAndPageGranular) {
  SparseStore s;
  s.write(10 * SparseStore::kPageSize, bytes({1}));
  EXPECT_EQ(s.allocatedBytes(), SparseStore::kPageSize);
}

}  // namespace
}  // namespace tcio::fs
