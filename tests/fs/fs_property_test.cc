// Property tests of the file-system model: arbitrary write sequences match
// a reference byte array; costs are monotone and deterministic.
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "common/rng.h"
#include "fs/client.h"
#include "mpi/runtime.h"

namespace tcio::fs {
namespace {

mpi::JobConfig job(int p) {
  mpi::JobConfig c;
  c.num_ranks = p;
  return c;
}

class FsFuzzTest : public ::testing::TestWithParam<std::uint64_t> {};
INSTANTIATE_TEST_SUITE_P(Seeds, FsFuzzTest,
                         ::testing::Values(1u, 7u, 42u, 1234u));

TEST_P(FsFuzzTest, RandomWritesMatchReferenceModel) {
  const std::uint64_t seed = GetParam();
  FsConfig fcfg;
  fcfg.num_osts = 5;
  fcfg.stripe_size = 777;         // deliberately odd
  fcfg.default_stripe_count = 3;  // multi-OST striping
  Filesystem fs(fcfg);

  Rng rng(seed);
  std::map<Offset, std::byte> reference;
  struct Write {
    Offset off;
    std::vector<std::byte> data;
  };
  std::vector<Write> writes;
  for (int i = 0; i < 60; ++i) {
    const Offset off = rng.uniformInt(0, 50'000);
    const Bytes len = 1 + rng.uniformInt(0, 2000);
    Write w{off, {}};
    for (Bytes b = 0; b < len; ++b) {
      const auto v = static_cast<std::byte>(rng.uniformInt(1, 250));
      w.data.push_back(v);
      reference[off + b] = v;
    }
    writes.push_back(std::move(w));
  }

  mpi::runJob(job(1), [&](mpi::Comm& comm) {
    FsClient fc(fs, comm.proc());
    FsFile f = fc.open("fuzz.dat", kRead | kWrite | kCreate);
    SimTime last = comm.proc().now();
    for (const Write& w : writes) {
      fc.pwrite(f, w.off, w.data.data(), static_cast<Bytes>(w.data.size()));
      // Clock must advance monotonically with every request.
      EXPECT_GT(comm.proc().now(), last);
      last = comm.proc().now();
    }
    fc.close(f);
  });

  // Every written byte reads back; unwritten bytes are zero.
  const Bytes size = fs.peekSize("fuzz.dat");
  std::vector<std::byte> contents(static_cast<std::size_t>(size));
  fs.peek("fuzz.dat", 0, contents);
  for (Offset i = 0; i < size; ++i) {
    const auto it = reference.find(i);
    const std::byte want = it == reference.end() ? std::byte{0} : it->second;
    ASSERT_EQ(contents[static_cast<std::size_t>(i)], want) << "offset " << i;
  }
  EXPECT_EQ(size, reference.empty() ? 0 : reference.rbegin()->first + 1);
}

TEST(FsPropertyTest, CostScalesWithSize) {
  FsConfig fcfg;
  Filesystem fs(fcfg);
  std::vector<SimTime> times;
  mpi::runJob(job(1), [&](mpi::Comm& comm) {
    FsClient fc(fs, comm.proc());
    FsFile f = fc.open("scale.dat", kWrite | kCreate);
    for (Bytes n : {1_KiB, 64_KiB, 1_MiB, 8_MiB}) {
      std::vector<std::byte> buf(static_cast<std::size_t>(n), std::byte{1});
      const SimTime t0 = comm.proc().now();
      fc.pwrite(f, 0, buf.data(), n);
      times.push_back(comm.proc().now() - t0);
    }
    fc.close(f);
  });
  for (std::size_t i = 1; i < times.size(); ++i) {
    EXPECT_GT(times[i], times[i - 1]);
  }
  // Large writes approach bandwidth cost: 8 MiB at 500 MB/s ~ 16.8 ms.
  EXPECT_NEAR(times.back(), 8.0 * 1024 * 1024 / 500e6, 5e-3);
}

TEST(FsPropertyTest, StripeMappingCoversAllOstsEvenly) {
  // With stripe_count = num_osts, a long file touches every OST with equal
  // byte counts.
  FsConfig fcfg;
  fcfg.num_osts = 6;
  fcfg.stripe_size = 1024;
  fcfg.default_stripe_count = 6;
  Filesystem fs(fcfg);
  mpi::runJob(job(1), [&](mpi::Comm& comm) {
    FsClient fc(fs, comm.proc());
    FsFile f = fc.open("even.dat", kWrite | kCreate);
    std::vector<std::byte> buf(6 * 1024 * 4, std::byte{1});
    fc.pwrite(f, 0, buf.data(), static_cast<Bytes>(buf.size()));
    fc.close(f);
  });
  // 24 stripes over 6 OSTs -> each OST serves 4 requests (one per stripe).
  EXPECT_EQ(fs.stats().write_requests, 24);
}

TEST(FsPropertyTest, DeterministicCostsAcrossRuns) {
  auto once = [] {
    FsConfig fcfg;
    Filesystem fs(fcfg);
    SimTime t = 0;
    mpi::runJob(job(4), [&](mpi::Comm& comm) {
      FsClient fc(fs, comm.proc());
      FsFile f = fc.open("det.dat", kWrite | kCreate);
      std::vector<std::byte> buf(10'000, std::byte{2});
      fc.pwrite(f, comm.rank() * 10'000, buf.data(), 10'000);
      fc.close(f);
      comm.barrier();
      if (comm.rank() == 0) t = comm.proc().now();
    });
    return t;
  };
  const SimTime first = once();
  EXPECT_DOUBLE_EQ(once(), first);
}

TEST(FsPropertyTest, ReadWriteInterleavingKeepsDataConsistent) {
  Filesystem fs{FsConfig{}};
  mpi::runJob(job(2), [&](mpi::Comm& comm) {
    FsClient fc(fs, comm.proc());
    FsFile f = fc.open("rw.dat", kRead | kWrite | kCreate);
    comm.barrier();
    // Rank 0 writes generations into [0,8); rank 1 polls and must only ever
    // observe a value that was actually written.
    if (comm.rank() == 0) {
      for (std::int64_t gen = 1; gen <= 20; ++gen) {
        fc.pwrite(f, 0, &gen, 8);
      }
    } else {
      std::int64_t last = 0;
      for (int i = 0; i < 20; ++i) {
        std::int64_t v = -1;
        fc.pread(f, 0, &v, 8);
        EXPECT_GE(v, 0);
        EXPECT_LE(v, 20);
        EXPECT_GE(v, last);  // generations only move forward
        last = v;
      }
    }
    fc.close(f);
  });
}

}  // namespace
}  // namespace tcio::fs
