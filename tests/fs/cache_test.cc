#include "fs/cache.h"

#include <gtest/gtest.h>

namespace tcio::fs {
namespace {

TEST(ServerCacheTest, InsertThenFullyResident) {
  ServerCache c(1000);
  c.insert(1, 0, 100);
  EXPECT_EQ(c.residentBytes(1, 0, 100), 100);
  EXPECT_EQ(c.usedBytes(), 100);
}

TEST(ServerCacheTest, PartialOverlapCounted) {
  ServerCache c(1000);
  c.insert(1, 50, 100);
  EXPECT_EQ(c.residentBytes(1, 0, 100), 50);
  EXPECT_EQ(c.residentBytes(1, 100, 100), 50);
  EXPECT_EQ(c.residentBytes(1, 200, 100), 0);
}

TEST(ServerCacheTest, FilesAreIndependent) {
  ServerCache c(1000);
  c.insert(1, 0, 100);
  EXPECT_EQ(c.residentBytes(2, 0, 100), 0);
}

TEST(ServerCacheTest, AdjacentInsertsMerge) {
  ServerCache c(1000);
  c.insert(1, 0, 50);
  c.insert(1, 50, 50);
  EXPECT_EQ(c.residentBytes(1, 0, 100), 100);
  EXPECT_EQ(c.usedBytes(), 100);
}

TEST(ServerCacheTest, ReinsertDoesNotDoubleCount) {
  ServerCache c(1000);
  c.insert(1, 0, 100);
  c.insert(1, 20, 60);
  EXPECT_EQ(c.usedBytes(), 100);
}

TEST(ServerCacheTest, EvictionKeepsUsageUnderCapacity) {
  ServerCache c(250);
  c.insert(1, 0, 100);
  c.insert(1, 1000, 100);
  c.insert(1, 2000, 100);  // forces eviction of the oldest extent
  EXPECT_LE(c.usedBytes(), 250);
  EXPECT_EQ(c.residentBytes(1, 2000, 100), 100);  // newest survives
  EXPECT_EQ(c.residentBytes(1, 0, 100), 0);       // oldest evicted
}

TEST(ServerCacheTest, ZeroCapacityDisablesCache) {
  ServerCache c(0);
  c.insert(1, 0, 100);
  EXPECT_EQ(c.residentBytes(1, 0, 100), 0);
  EXPECT_EQ(c.usedBytes(), 0);
}

TEST(ServerCacheTest, OverlappingEvictionAccounting) {
  ServerCache c(150);
  c.insert(1, 0, 100);
  c.insert(1, 50, 100);  // merged to [0,150), used = 150
  EXPECT_EQ(c.usedBytes(), 150);
  c.insert(1, 500, 100);  // evicts until under 150
  EXPECT_LE(c.usedBytes(), 150);
  EXPECT_EQ(c.residentBytes(1, 500, 100), 100);
}

}  // namespace
}  // namespace tcio::fs
