// Unit tests for the liveness-tracking agreement protocol in isolation
// (no TCIO on top): all-live epochs agree on the max error class, a silent
// rank is unanimously declared dead, survivors can run further epochs on
// the shrunk membership, and verdicts are deterministic.
#include "mpi/liveness.h"

#include <gtest/gtest.h>

#include <array>
#include <vector>

#include "common/error.h"
#include "mpi/runtime.h"

namespace tcio::mpi {
namespace {

constexpr SimTime kWindow = 50.0e-3;
constexpr SimTime kPoll = 1.0e-3;

TEST(LivenessTest, AllLiveNoErrorAgreesClean) {
  mpi::JobConfig jc;
  jc.num_ranks = 5;
  runJob(jc, [&](Comm& comm) {
    const LivenessOutcome out =
        agreeWithLiveness(comm, CapturedError{}, /*epoch=*/0, kWindow, kPoll);
    EXPECT_TRUE(out.dead.empty());
    EXPECT_FALSE(out.self_dead);
    EXPECT_EQ(out.code, CapturedError::kNone);
  });
}

TEST(LivenessTest, AllLiveMaxErrorClassWins) {
  mpi::JobConfig jc;
  jc.num_ranks = 4;
  runJob(jc, [&](Comm& comm) {
    CapturedError err;
    if (comm.rank() == 1) {
      try {
        throw TransientFsError("slow disk");
      } catch (const std::exception& e) {
        err.capture(e);
      }
    }
    if (comm.rank() == 3) {
      try {
        throw NoSpaceError("ost 2 full");
      } catch (const std::exception& e) {
        err.capture(e);
      }
    }
    const LivenessOutcome out =
        agreeWithLiveness(comm, err, /*epoch=*/0, kWindow, kPoll);
    EXPECT_TRUE(out.dead.empty());
    // kNoSpace outranks kTransientFs; every rank sees the same winner.
    EXPECT_EQ(out.code, CapturedError::kNoSpace);
    EXPECT_NE(out.what.find("ost 2 full"), std::string::npos);
  });
}

TEST(LivenessTest, SilentRankUnanimouslyDeclaredDead) {
  mpi::JobConfig jc;
  jc.num_ranks = 6;
  std::array<std::vector<Rank>, 6> verdicts;
  runJob(jc, [&](Comm& comm) {
    if (comm.rank() == 2) return;  // fail-stop: never calls the agreement
    const LivenessOutcome out =
        agreeWithLiveness(comm, CapturedError{}, /*epoch=*/0, kWindow, kPoll);
    verdicts[static_cast<std::size_t>(comm.rank())] = out.dead;
    EXPECT_FALSE(out.self_dead);
    const std::vector<Rank> surv = out.survivors(comm.size());
    EXPECT_EQ(surv, (std::vector<Rank>{0, 1, 3, 4, 5}));
  });
  for (const int r : {0, 1, 3, 4, 5}) {
    EXPECT_EQ(verdicts[static_cast<std::size_t>(r)],
              (std::vector<Rank>{2}))
        << "rank " << r << " disagreed on the dead set";
  }
}

TEST(LivenessTest, SurvivorsContinueAcrossEpochsAndShrink) {
  mpi::JobConfig jc;
  jc.num_ranks = 5;
  runJob(jc, [&](Comm& comm) {
    const int ctx = [&] {
      int base = 0;
      if (comm.rank() == 0) base = comm.reserveContexts(1);
      comm.bcast(&base, sizeof(base), 0);
      return base;
    }();
    if (comm.rank() == 4) return;  // dies before epoch 0
    const LivenessOutcome e0 =
        agreeWithLiveness(comm, CapturedError{}, /*epoch=*/0, kWindow, kPoll);
    ASSERT_EQ(e0.dead, (std::vector<Rank>{4}));
    Comm shrunk = comm.shrink(e0.survivors(comm.size()), ctx);
    ASSERT_EQ(shrunk.size(), 4);
    // Epoch 1 on the shrunk communicator: everyone present, clean verdict.
    const LivenessOutcome e1 = agreeWithLiveness(shrunk, CapturedError{},
                                                 /*epoch=*/1, kWindow, kPoll);
    EXPECT_TRUE(e1.dead.empty());
    // The shrunk communicator supports plain collectives again.
    std::int64_t sum = shrunk.rank();
    shrunk.allreduce(&sum, 1, ReduceOp::kSum);
    EXPECT_EQ(sum, 0 + 1 + 2 + 3);
  });
}

TEST(LivenessTest, TwoSilentRanksBothDeclaredDead) {
  mpi::JobConfig jc;
  jc.num_ranks = 6;
  runJob(jc, [&](Comm& comm) {
    if (comm.rank() == 0 || comm.rank() == 5) return;
    const LivenessOutcome out =
        agreeWithLiveness(comm, CapturedError{}, /*epoch=*/0, kWindow, kPoll);
    EXPECT_EQ(out.dead, (std::vector<Rank>{0, 5}));
    EXPECT_FALSE(out.self_dead);
  });
}

TEST(LivenessTest, ManyRanksBeyondOneBitmapWord) {
  // 72 ranks need a two-word suspicion bitmap (the protocol was limited to
  // P <= 64 when verdicts carried a single uint64_t). A silent rank in the
  // second word's range must still be unanimously agreed dead, and the
  // survivors' shrunk communicator must run plain collectives.
  mpi::JobConfig jc;
  jc.num_ranks = 72;
  runJob(jc, [&](Comm& comm) {
    const int ctx = [&] {
      int base = 0;
      if (comm.rank() == 0) base = comm.reserveContexts(1);
      comm.bcast(&base, sizeof(base), 0);
      return base;
    }();
    if (comm.rank() == 70) return;  // fail-stop, bit 6 of word 1
    const LivenessOutcome out =
        agreeWithLiveness(comm, CapturedError{}, /*epoch=*/0, kWindow, kPoll);
    EXPECT_EQ(out.dead, (std::vector<Rank>{70}));
    EXPECT_FALSE(out.self_dead);
    Comm shrunk = comm.shrink(out.survivors(comm.size()), ctx);
    ASSERT_EQ(shrunk.size(), 71);
    std::int64_t sum = 1;
    shrunk.allreduce(&sum, 1, ReduceOp::kSum);
    EXPECT_EQ(sum, 71);
  });
}

TEST(LivenessTest, DeterministicVerdictAndTiming) {
  auto once = [] {
    mpi::JobConfig jc;
    jc.num_ranks = 6;
    SimTime t_after = 0;
    const JobResult jr = runJob(jc, [&](Comm& comm) {
      if (comm.rank() == 3) return;
      const LivenessOutcome out = agreeWithLiveness(
          comm, CapturedError{}, /*epoch=*/0, kWindow, kPoll);
      EXPECT_EQ(out.dead, (std::vector<Rank>{3}));
      if (comm.rank() == 0) t_after = comm.proc().now();
    });
    return std::pair(jr.makespan, t_after);
  };
  const auto a = once();
  const auto b = once();
  EXPECT_EQ(a.first, b.first);
  EXPECT_EQ(a.second, b.second);
}

}  // namespace
}  // namespace tcio::mpi
