#include "mpi/datatype.h"

#include <gtest/gtest.h>

#include <array>

namespace tcio::mpi {
namespace {

TEST(DatatypeTest, BasicSizes) {
  EXPECT_EQ(Datatype::byte().size(), 1);
  EXPECT_EQ(Datatype::int32().size(), 4);
  EXPECT_EQ(Datatype::float64().size(), 8);
  EXPECT_TRUE(Datatype::byte().isContiguous());
}

TEST(DatatypeTest, ContiguousMergesIntoOneRun) {
  const auto t = Datatype::contiguous(10, Datatype::int32());
  EXPECT_EQ(t.size(), 40);
  EXPECT_EQ(t.extent(), 40);
  EXPECT_EQ(t.segmentCount(), 1u);
  EXPECT_TRUE(t.isContiguous());
}

TEST(DatatypeTest, VectorLayout) {
  // 3 blocks of 2 int32, stride 4 elements: bytes [0,8) [16,24) [32,40).
  const auto t = Datatype::vector(3, 2, 4, Datatype::int32());
  EXPECT_EQ(t.size(), 24);
  EXPECT_EQ(t.extent(), 40);
  ASSERT_EQ(t.segmentCount(), 3u);
  EXPECT_EQ(t.segments()[0], (Extent{0, 8}));
  EXPECT_EQ(t.segments()[1], (Extent{16, 24}));
  EXPECT_EQ(t.segments()[2], (Extent{32, 40}));
}

TEST(DatatypeTest, VectorWithStrideEqualBlocklenIsContiguous) {
  const auto t = Datatype::vector(4, 2, 2, Datatype::byte());
  EXPECT_EQ(t.segmentCount(), 1u);
  EXPECT_EQ(t.size(), 8);
}

TEST(DatatypeTest, VectorStrideSmallerThanBlockRejected) {
  EXPECT_THROW(Datatype::vector(2, 3, 2, Datatype::byte()), Error);
}

TEST(DatatypeTest, IndexedLayout) {
  const std::array<std::int64_t, 2> lens{2, 1};
  const std::array<std::int64_t, 2> displs{0, 5};
  const auto t = Datatype::indexed(lens, displs, Datatype::float64());
  EXPECT_EQ(t.size(), 24);
  EXPECT_EQ(t.extent(), 48);
  ASSERT_EQ(t.segmentCount(), 2u);
  EXPECT_EQ(t.segments()[0], (Extent{0, 16}));
  EXPECT_EQ(t.segments()[1], (Extent{40, 48}));
}

TEST(DatatypeTest, HindexedBytes) {
  const std::array<Bytes, 2> lens{3, 4};
  const std::array<Offset, 2> displs{10, 20};
  const auto t = Datatype::hindexed(lens, displs);
  EXPECT_EQ(t.size(), 7);
  EXPECT_EQ(t.extent(), 24);
}

TEST(DatatypeTest, StructOfIntAndDouble) {
  // The paper's Fig. 2 etype: one int32 then one float64, packed.
  const std::array<std::int64_t, 2> lens{1, 1};
  const std::array<Offset, 2> displs{0, 4};
  const std::array<Datatype, 2> types{Datatype::int32(), Datatype::float64()};
  const auto t = Datatype::structType(lens, displs, types);
  EXPECT_EQ(t.size(), 12);
  EXPECT_EQ(t.extent(), 12);
  EXPECT_TRUE(t.isContiguous());
}

TEST(DatatypeTest, StructWithGap) {
  const std::array<std::int64_t, 2> lens{1, 1};
  const std::array<Offset, 2> displs{0, 8};
  const std::array<Datatype, 2> types{Datatype::int32(), Datatype::int32()};
  const auto t = Datatype::structType(lens, displs, types);
  EXPECT_EQ(t.size(), 8);
  EXPECT_EQ(t.extent(), 12);
  EXPECT_EQ(t.segmentCount(), 2u);
}

TEST(DatatypeTest, NestedVectorOfStruct) {
  const std::array<std::int64_t, 2> lens{1, 1};
  const std::array<Offset, 2> displs{0, 4};
  const std::array<Datatype, 2> types{Datatype::int32(), Datatype::float64()};
  const auto etype = Datatype::structType(lens, displs, types);
  // Fig. 2 filetype for P=2: vector with stride 2 etypes.
  const auto ftype = Datatype::vector(3, 1, 2, etype);
  EXPECT_EQ(ftype.size(), 36);
  EXPECT_EQ(ftype.extent(), 60);
  EXPECT_EQ(ftype.segmentCount(), 3u);
}

TEST(DatatypeTest, FlattenTilesByExtent) {
  const auto t = Datatype::vector(2, 1, 2, Datatype::byte());  // [0,1) [2,3)
  std::vector<Extent> out;
  t.flatten(100, 2, out);
  // Second instance starts at 100 + extent(3); its first run [103,104) is
  // adjacent to the first instance's tail [102,103) and merges.
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0], (Extent{100, 101}));
  EXPECT_EQ(out[1], (Extent{102, 104}));
  EXPECT_EQ(out[2], (Extent{105, 106}));
}

TEST(DatatypeTest, FlattenMergesAcrossInstances) {
  const auto t = Datatype::contiguous(4, Datatype::byte());
  std::vector<Extent> out;
  t.flatten(0, 3, out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], (Extent{0, 12}));
}

TEST(DatatypeTest, CommitFlag) {
  auto t = Datatype::int32();
  EXPECT_FALSE(t.committed());
  t.commit();
  EXPECT_TRUE(t.committed());
}

TEST(DatatypeTest, NormalizeExtentsSortsAndMerges) {
  auto out = normalizeExtents({{10, 20}, {0, 5}, {5, 10}, {30, 30}});
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], (Extent{0, 20}));
}

TEST(DatatypeTest, OverlappingLayoutRejected) {
  EXPECT_THROW(normalizeExtents({{0, 10}, {5, 15}}), Error);
}

}  // namespace
}  // namespace tcio::mpi
