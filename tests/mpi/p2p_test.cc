#include <gtest/gtest.h>

#include <cstring>
#include <numeric>
#include <vector>

#include "mpi/mpi.h"

namespace tcio::mpi {
namespace {

JobConfig cfg(int p) {
  JobConfig c;
  c.num_ranks = p;
  return c;
}

TEST(P2pTest, SendRecvMovesBytes) {
  runJob(cfg(2), [](Comm& comm) {
    if (comm.rank() == 0) {
      const std::vector<int> data{1, 2, 3, 4};
      comm.send(data.data(), 16, 1, 7);
    } else {
      std::vector<int> got(4, 0);
      const RecvStatus st = comm.recv(got.data(), 16, 0, 7);
      EXPECT_EQ(st.source, 0);
      EXPECT_EQ(st.tag, 7);
      EXPECT_EQ(st.count, 16);
      EXPECT_EQ(got, (std::vector<int>{1, 2, 3, 4}));
    }
  });
}

TEST(P2pTest, RecvBeforeSendBlocksUntilDelivery) {
  runJob(cfg(2), [](Comm& comm) {
    if (comm.rank() == 0) {
      double x = 3.5;
      comm.proc().advance(1.0);  // send late
      comm.send(&x, 8, 1, 0);
    } else {
      double x = 0;
      comm.recv(&x, 8, 0, 0);
      EXPECT_DOUBLE_EQ(x, 3.5);
      EXPECT_GT(comm.proc().now(), 1.0);  // waited for the late sender
    }
  });
}

TEST(P2pTest, UnexpectedMessageBuffered) {
  runJob(cfg(2), [](Comm& comm) {
    if (comm.rank() == 0) {
      int v = 42;
      comm.send(&v, 4, 1, 3);
    } else {
      comm.proc().advance(5.0);  // receive long after arrival
      int v = 0;
      comm.recv(&v, 4, 0, 3);
      EXPECT_EQ(v, 42);
      EXPECT_DOUBLE_EQ(comm.proc().now(), 5.0);  // no extra waiting
    }
  });
}

TEST(P2pTest, TagMatchingSelectsCorrectMessage) {
  runJob(cfg(2), [](Comm& comm) {
    if (comm.rank() == 0) {
      int a = 1, b = 2;
      comm.send(&a, 4, 1, 10);
      comm.send(&b, 4, 1, 20);
    } else {
      int v = 0;
      comm.recv(&v, 4, 0, 20);  // out of arrival order
      EXPECT_EQ(v, 2);
      comm.recv(&v, 4, 0, 10);
      EXPECT_EQ(v, 1);
    }
  });
}

TEST(P2pTest, AnySourceAnyTag) {
  runJob(cfg(3), [](Comm& comm) {
    if (comm.rank() != 0) {
      int v = comm.rank() * 100;
      comm.send(&v, 4, 0, comm.rank());
    } else {
      int seen = 0;
      for (int i = 0; i < 2; ++i) {
        int v = 0;
        const RecvStatus st = comm.recv(&v, 4, kAnySource, kAnyTag);
        EXPECT_EQ(v, st.source * 100);
        EXPECT_EQ(st.tag, st.source);
        seen += st.source;
      }
      EXPECT_EQ(seen, 3);  // ranks 1 and 2
    }
  });
}

TEST(P2pTest, FifoOrderPerPeerAndTag) {
  runJob(cfg(2), [](Comm& comm) {
    if (comm.rank() == 0) {
      for (int i = 0; i < 10; ++i) comm.send(&i, 4, 1, 0);
    } else {
      for (int i = 0; i < 10; ++i) {
        int v = -1;
        comm.recv(&v, 4, 0, 0);
        EXPECT_EQ(v, i);
      }
    }
  });
}

TEST(P2pTest, IsendIrecvWaitAll) {
  runJob(cfg(2), [](Comm& comm) {
    constexpr int kN = 8;
    if (comm.rank() == 0) {
      std::vector<int> bufs(kN);
      std::vector<Request> reqs;
      for (int i = 0; i < kN; ++i) {
        bufs[static_cast<size_t>(i)] = i * i;
        reqs.push_back(comm.isend(&bufs[static_cast<size_t>(i)], 4, 1, i));
      }
      comm.waitAll(reqs);
    } else {
      std::vector<int> got(kN, -1);
      std::vector<Request> reqs;
      for (int i = 0; i < kN; ++i) {
        reqs.push_back(comm.irecv(&got[static_cast<size_t>(i)], 4, 0, i));
      }
      comm.waitAll(reqs);
      for (int i = 0; i < kN; ++i) EXPECT_EQ(got[static_cast<size_t>(i)], i * i);
    }
  });
}

TEST(P2pTest, TruncationIsAnError) {
  EXPECT_THROW(runJob(cfg(2),
                      [](Comm& comm) {
                        if (comm.rank() == 0) {
                          std::vector<std::byte> big(100);
                          comm.send(big.data(), 100, 1, 0);
                        } else {
                          std::byte small[10];
                          comm.recv(small, 10, 0, 0);
                        }
                      }),
               Error);
}

TEST(P2pTest, MissingSenderDeadlocks) {
  EXPECT_THROW(runJob(cfg(2),
                      [](Comm& comm) {
                        int v;
                        if (comm.rank() == 1) comm.recv(&v, 4, 0, 0);
                      }),
               DeadlockError);
}

TEST(P2pTest, LargeMessageTakesLongerThanSmall) {
  SimTime small_t = 0, large_t = 0;
  runJob(cfg(2), [&](Comm& comm) {
    std::vector<std::byte> buf(1 << 20);
    if (comm.rank() == 0) {
      comm.send(buf.data(), 1024, 1, 0);
      comm.send(buf.data(), 1 << 20, 1, 1);
    } else {
      const SimTime t0 = comm.proc().now();
      comm.recv(buf.data(), 1 << 20, 0, 0);
      small_t = comm.proc().now() - t0;
      const SimTime t1 = comm.proc().now();
      comm.recv(buf.data(), 1 << 20, 0, 1);
      large_t = comm.proc().now() - t1;
    }
  });
  EXPECT_GT(large_t, small_t);
}

TEST(P2pTest, SelfSendViaBufferedSemantics) {
  runJob(cfg(1), [](Comm& comm) {
    int v = 5;
    comm.send(&v, 4, 0, 0);
    int got = 0;
    comm.recv(&got, 4, 0, 0);
    EXPECT_EQ(got, 5);
  });
}

}  // namespace
}  // namespace tcio::mpi
