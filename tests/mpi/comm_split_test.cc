#include <gtest/gtest.h>

#include <vector>

#include "mpi/mpi.h"

namespace tcio::mpi {
namespace {

JobConfig cfg(int p) {
  JobConfig c;
  c.num_ranks = p;
  return c;
}

TEST(CommSplitTest, EvenOddGroupsHaveCorrectRanksAndSizes) {
  runJob(cfg(8), [](Comm& world) {
    Comm sub = world.split(world.rank() % 2, world.rank());
    EXPECT_EQ(sub.size(), 4);
    EXPECT_EQ(sub.rank(), world.rank() / 2);
    EXPECT_NE(sub.context(), world.context());
    // World rank mapping: even group = {0,2,4,6}, odd = {1,3,5,7}.
    EXPECT_EQ(sub.worldRank(sub.rank()), world.rank());
    EXPECT_EQ(sub.worldRank(0), world.rank() % 2);
  });
}

TEST(CommSplitTest, KeyReversesOrder) {
  runJob(cfg(4), [](Comm& world) {
    Comm sub = world.split(0, -world.rank());  // all one color, reversed
    EXPECT_EQ(sub.size(), 4);
    EXPECT_EQ(sub.rank(), 3 - world.rank());
  });
}

TEST(CommSplitTest, SplitByNodeGroupsRanksSharingANode) {
  JobConfig c = cfg(8);
  c.net.ranks_per_node = 3;  // nodes {0,1,2} {3,4,5} {6,7}
  runJob(c, [](Comm& world) {
    Comm sub = world.splitByNode(world.rank());
    const int node = world.rank() / 3;
    EXPECT_EQ(world.nodeOf(world.rank()), node);
    EXPECT_EQ(sub.size(), node == 2 ? 2 : 3);
    EXPECT_EQ(sub.rank(), world.rank() % 3);
    EXPECT_EQ(sub.worldRank(0), node * 3);  // lowest rank of the node
  });
}

TEST(CommSplitTest, MessagingStaysInsideSubcommunicator) {
  runJob(cfg(4), [](Comm& world) {
    Comm sub = world.split(world.rank() % 2, world.rank());
    // Each subgroup does a ring send with the SAME tag; contexts must keep
    // the two rings separate.
    const int me = sub.rank();
    const int v = world.rank() * 10;
    Request s = sub.isend(&v, 4, (me + 1) % sub.size(), 99);
    int got = -1;
    sub.recv(&got, 4, (me + sub.size() - 1) % sub.size(), 99);
    sub.wait(s);
    // The neighbour in MY subgroup has a world rank of same parity.
    EXPECT_EQ(got % 20 / 10, world.rank() % 2);
  });
}

TEST(CommSplitTest, CollectivesOperatePerGroup) {
  runJob(cfg(8), [](Comm& world) {
    Comm sub = world.split(world.rank() < 3 ? 0 : 1, world.rank());
    std::int64_t v = 1;
    sub.allreduce(&v, 1, ReduceOp::kSum);
    EXPECT_EQ(v, world.rank() < 3 ? 3 : 5);
    // Bcast from subgroup root.
    int data = sub.rank() == 0 ? world.rank() : -1;
    sub.bcast(&data, 4, 0);
    EXPECT_EQ(data, world.rank() < 3 ? 0 : 3);
  });
}

TEST(CommSplitTest, BarrierOnlySynchronizesTheGroup) {
  runJob(cfg(4), [](Comm& world) {
    Comm sub = world.split(world.rank() / 2, world.rank());
    if (world.rank() >= 2) world.proc().advance(5.0);
    sub.barrier();
    if (world.rank() < 2) {
      // Group {0,1} must not have waited for the slow group {2,3}.
      EXPECT_LT(world.proc().now(), 5.0);
    }
  });
}

TEST(CommSplitTest, WindowsOnSubcommunicators) {
  runJob(cfg(4), [](Comm& world) {
    Comm sub = world.split(world.rank() % 2, world.rank());
    Window win = Window::create(sub, 16);
    // Sub-rank 0 of each group writes into sub-rank 1's window.
    if (sub.rank() == 0) {
      const std::int64_t v = 100 + world.rank();
      win.lock(LockType::kExclusive, 1);
      win.put(1, 0, &v, 8);
      win.unlock(1);
      sub.send(nullptr, 0, 1, 0);
    } else {
      sub.recv(nullptr, 0, 0, 0);
      std::int64_t got = 0;
      std::memcpy(&got, win.localData(), 8);
      // My group's sub-rank 0 has world rank = my parity.
      EXPECT_EQ(got, 100 + world.rank() % 2);
    }
  });
}

TEST(CommSplitTest, NestedSplit) {
  runJob(cfg(8), [](Comm& world) {
    Comm half = world.split(world.rank() / 4, world.rank());
    Comm quarter = half.split(half.rank() / 2, half.rank());
    EXPECT_EQ(quarter.size(), 2);
    std::int64_t v = world.rank();
    quarter.allreduce(&v, 1, ReduceOp::kSum);
    // Pairs: (0,1), (2,3), (4,5), (6,7).
    EXPECT_EQ(v, (world.rank() / 2) * 4 + 1);
  });
}

TEST(CommSplitTest, SingletonGroups) {
  runJob(cfg(3), [](Comm& world) {
    Comm solo = world.split(world.rank(), 0);  // every rank its own color
    EXPECT_EQ(solo.size(), 1);
    EXPECT_EQ(solo.rank(), 0);
    solo.barrier();  // must not deadlock
    std::int64_t v = 7;
    solo.allreduce(&v, 1, ReduceOp::kSum);
    EXPECT_EQ(v, 7);
  });
}

}  // namespace
}  // namespace tcio::mpi
