// Property fuzz for the datatype engine: random nested type trees must
// satisfy structural invariants, and flattening must match a slow reference
// evaluator that walks the constructor semantics directly.
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "common/rng.h"
#include "mpi/datatype.h"

namespace tcio::mpi {
namespace {

/// Reference model: a datatype as an explicit set of mapped bytes.
struct RefType {
  std::set<Offset> bytes;
  Bytes extent = 0;

  Bytes size() const { return static_cast<Bytes>(bytes.size()); }
};

RefType refBasic(Bytes n) {
  RefType r;
  for (Offset i = 0; i < n; ++i) r.bytes.insert(i);
  r.extent = n;
  return r;
}

RefType refContiguous(std::int64_t count, const RefType& base) {
  RefType r;
  for (std::int64_t i = 0; i < count; ++i) {
    for (Offset b : base.bytes) r.bytes.insert(i * base.extent + b);
  }
  r.extent = r.bytes.empty() ? 0 : *r.bytes.rbegin() + 1;
  return r;
}

RefType refVector(std::int64_t count, std::int64_t blocklen,
                  std::int64_t stride, const RefType& base) {
  RefType r;
  for (std::int64_t i = 0; i < count; ++i) {
    for (std::int64_t j = 0; j < blocklen; ++j) {
      for (Offset b : base.bytes) {
        r.bytes.insert((i * stride + j) * base.extent + b);
      }
    }
  }
  r.extent = r.bytes.empty() ? 0 : *r.bytes.rbegin() + 1;
  return r;
}

/// Builds a random (Datatype, RefType) pair of bounded depth.
std::pair<Datatype, RefType> randomType(Rng& rng, int depth) {
  if (depth == 0) {
    const Bytes sizes[] = {1, 2, 4, 8};
    const Bytes n = sizes[rng.uniformInt(0, 3)];
    Datatype t = n == 1   ? Datatype::byte()
                 : n == 2 ? Datatype::int16()
                 : n == 4 ? Datatype::int32()
                          : Datatype::int64();
    return {t, refBasic(n)};
  }
  auto [base, ref] = randomType(rng, depth - 1);
  if (rng.uniform() < 0.5) {
    const std::int64_t count = rng.uniformInt(1, 5);
    return {Datatype::contiguous(count, base), refContiguous(count, ref)};
  }
  const std::int64_t count = rng.uniformInt(1, 4);
  const std::int64_t blocklen = rng.uniformInt(1, 3);
  const std::int64_t stride = blocklen + rng.uniformInt(0, 3);
  return {Datatype::vector(count, blocklen, stride, base),
          refVector(count, blocklen, stride, ref)};
}

class DatatypeFuzzTest : public ::testing::TestWithParam<std::uint64_t> {};
INSTANTIATE_TEST_SUITE_P(Seeds, DatatypeFuzzTest,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u));

TEST_P(DatatypeFuzzTest, FlattenMatchesReferenceByteSet) {
  Rng rng(GetParam());
  for (int iter = 0; iter < 20; ++iter) {
    const auto [type, ref] = randomType(rng, static_cast<int>(rng.uniformInt(1, 3)));
    ASSERT_EQ(type.size(), ref.size());
    ASSERT_EQ(type.extent(), ref.extent);
    // Expand the canonical segments into a byte set.
    std::set<Offset> got;
    for (const Extent& e : type.segments()) {
      for (Offset b = e.begin; b < e.end; ++b) got.insert(b);
    }
    ASSERT_EQ(got, ref.bytes) << "iter " << iter << " type " << type.name();
  }
}

TEST_P(DatatypeFuzzTest, SegmentsAreCanonical) {
  Rng rng(GetParam() + 100);
  for (int iter = 0; iter < 20; ++iter) {
    const auto [type, ref] = randomType(rng, 2);
    (void)ref;
    const auto& segs = type.segments();
    for (std::size_t i = 0; i < segs.size(); ++i) {
      EXPECT_LT(segs[i].begin, segs[i].end);  // non-empty
      if (i > 0) {
        // Sorted with gaps (adjacent runs would have been merged).
        EXPECT_GT(segs[i].begin, segs[i - 1].end);
      }
    }
  }
}

TEST_P(DatatypeFuzzTest, FlattenTilesAreDisjointAndComplete) {
  Rng rng(GetParam() + 200);
  const auto [type, ref] = randomType(rng, 2);
  (void)ref;
  const std::int64_t count = 3;
  std::vector<Extent> flat;
  type.flatten(1000, count, flat);
  // Total bytes = count * size; runs sorted and non-overlapping.
  Bytes total = 0;
  for (std::size_t i = 0; i < flat.size(); ++i) {
    total += flat[i].size();
    if (i > 0) {
      EXPECT_GE(flat[i].begin, flat[i - 1].end);
    }
  }
  EXPECT_EQ(total, count * type.size());
  EXPECT_GE(flat.front().begin, 1000);
}

}  // namespace
}  // namespace tcio::mpi
