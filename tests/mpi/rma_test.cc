#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "mpi/mpi.h"

namespace tcio::mpi {
namespace {

JobConfig cfg(int p) {
  JobConfig c;
  c.num_ranks = p;
  return c;
}

TEST(RmaTest, PutIntoRemoteWindow) {
  runJob(cfg(2), [](Comm& comm) {
    Window win = Window::create(comm, 64);
    if (comm.rank() == 0) {
      const std::int64_t v = 0xDEADBEEF;
      win.lock(LockType::kExclusive, 1);
      win.put(1, 8, &v, 8);
      win.unlock(1);
      // Tell rank 1 the data is in place.
      comm.send(nullptr, 0, 1, 0);
    } else {
      comm.recv(nullptr, 0, 0, 0);
      std::int64_t got = 0;
      std::memcpy(&got, win.localData() + 8, 8);
      EXPECT_EQ(got, 0xDEADBEEF);
    }
  });
}

TEST(RmaTest, GetFromRemoteWindow) {
  runJob(cfg(2), [](Comm& comm) {
    Window win = Window::create(comm, 32);
    if (comm.rank() == 1) {
      const double v = 2.75;
      std::memcpy(win.localData(), &v, 8);
      comm.send(nullptr, 0, 0, 0);
      comm.recv(nullptr, 0, 0, 1);
    } else {
      comm.recv(nullptr, 0, 1, 0);
      double got = 0;
      win.lock(LockType::kShared, 1);
      win.get(1, 0, &got, 8);
      win.unlock(1);
      EXPECT_DOUBLE_EQ(got, 2.75);
      comm.send(nullptr, 0, 1, 1);
    }
  });
}

TEST(RmaTest, PutIndexedCoalescesBlocks) {
  runJob(cfg(2), [](Comm& comm) {
    Window win = Window::create(comm, 100);
    if (comm.rank() == 0) {
      const std::byte a[4] = {std::byte{1}, std::byte{2}, std::byte{3},
                              std::byte{4}};
      const std::byte b[2] = {std::byte{9}, std::byte{8}};
      const Window::PutBlock blocks[] = {{10, a, 4}, {50, b, 2}};
      win.lock(LockType::kExclusive, 1);
      win.putIndexed(1, blocks);
      win.unlock(1);
      EXPECT_EQ(win.oneSidedMessages(), 1);  // single coalesced message
      comm.send(nullptr, 0, 1, 0);
    } else {
      comm.recv(nullptr, 0, 0, 0);
      EXPECT_EQ(win.localData()[10], std::byte{1});
      EXPECT_EQ(win.localData()[13], std::byte{4});
      EXPECT_EQ(win.localData()[50], std::byte{9});
      EXPECT_EQ(win.localData()[51], std::byte{8});
    }
  });
}

TEST(RmaTest, GetIndexedGathersBlocks) {
  runJob(cfg(2), [](Comm& comm) {
    Window win = Window::create(comm, 16);
    for (int i = 0; i < 16; ++i) {
      win.localData()[i] = static_cast<std::byte>(comm.rank() * 16 + i);
    }
    comm.barrier();
    if (comm.rank() == 0) {
      std::byte x[2], y[3];
      const Window::GetBlock blocks[] = {{2, x, 2}, {10, y, 3}};
      win.lock(LockType::kShared, 1);
      win.getIndexed(1, blocks);
      win.unlock(1);
      EXPECT_EQ(x[0], std::byte{18});
      EXPECT_EQ(x[1], std::byte{19});
      EXPECT_EQ(y[2], std::byte{28});
    }
  });
}

TEST(RmaTest, ExclusiveLockSerializesCriticalSections) {
  // All ranks increment a counter in rank 0's window under an exclusive
  // lock; no increment may be lost.
  const int P = 8;
  runJob(cfg(P), [&](Comm& comm) {
    Window win = Window::create(comm, 8);
    if (comm.rank() == 0) {
      std::int64_t zero = 0;
      std::memcpy(win.localData(), &zero, 8);
    }
    comm.barrier();
    for (int iter = 0; iter < 4; ++iter) {
      std::int64_t v = 0;
      win.lock(LockType::kExclusive, 0);
      win.get(0, 0, &v, 8);
      ++v;
      win.put(0, 0, &v, 8);
      win.unlock(0);
    }
    comm.barrier();
    if (comm.rank() == 0) {
      std::int64_t v = 0;
      std::memcpy(&v, win.localData(), 8);
      EXPECT_EQ(v, P * 4);
    }
  });
}

TEST(RmaTest, SharedLocksCoexistExclusiveWaits) {
  runJob(cfg(3), [](Comm& comm) {
    Window win = Window::create(comm, 8);
    // Ranks 1 and 2 take shared locks on 0 and hold them while advancing
    // time; lock acquisition order is deterministic in virtual time, so we
    // simply assert the program completes (no deadlock) and data integrity.
    if (comm.rank() != 0) {
      win.lock(LockType::kShared, 0);
      double d = 0;
      win.get(0, 0, &d, 8);
      win.unlock(0);
    } else {
      win.lock(LockType::kExclusive, 0);
      const double v = 1.5;
      win.put(0, 0, &v, 8);
      win.unlock(0);
    }
  });
}

TEST(RmaTest, LockContentionCostsTime) {
  SimTime uncontended = 0, contended = 0;
  runJob(cfg(2), [&](Comm& comm) {
    Window win = Window::create(comm, 8);
    if (comm.rank() == 0) {
      const SimTime t0 = comm.proc().now();
      win.lock(LockType::kExclusive, 0);
      win.unlock(0);
      uncontended = comm.proc().now() - t0;
    }
  });
  runJob(cfg(2), [&](Comm& comm) {
    Window win = Window::create(comm, 8);
    if (comm.rank() == 0) {
      // Hold the lock for 1 simulated second.
      win.lock(LockType::kExclusive, 0);
      comm.proc().advance(1.0);
      win.unlock(0);
    } else {
      const SimTime t0 = comm.proc().now();
      win.lock(LockType::kExclusive, 0);
      win.unlock(0);
      contended = comm.proc().now() - t0;
    }
  });
  EXPECT_GT(contended, 0.9);
  EXPECT_LT(uncontended, 0.1);
}

TEST(RmaTest, AccessOutsideEpochRejected) {
  EXPECT_THROW(runJob(cfg(2),
                      [](Comm& comm) {
                        Window win = Window::create(comm, 8);
                        double v = 0;
                        win.put(1, 0, &v, 8);  // no lock held
                      }),
               Error);
}

TEST(RmaTest, PutOutsideWindowBoundsRejected) {
  EXPECT_THROW(runJob(cfg(2),
                      [](Comm& comm) {
                        Window win = Window::create(comm, 8);
                        if (comm.rank() == 0) {
                          double v = 0;
                          win.lock(LockType::kExclusive, 1);
                          win.put(1, 4, &v, 8);  // 4+8 > 8
                          win.unlock(1);
                        }
                      }),
               Error);
}

TEST(RmaTest, WindowMemoryChargedToBudget) {
  JobConfig c = cfg(2);
  c.memory_budget_per_rank = 100;
  EXPECT_THROW(runJob(c,
                      [](Comm& comm) {
                        Window win = Window::create(comm, 200);
                        (void)win;
                      }),
               OutOfMemoryBudget);
}

TEST(RmaTest, MultipleWindowsAreIndependent) {
  runJob(cfg(2), [](Comm& comm) {
    Window a = Window::create(comm, 8);
    Window b = Window::create(comm, 8);
    if (comm.rank() == 0) {
      const std::int32_t va = 1, vb = 2;
      a.lock(LockType::kExclusive, 1);
      a.put(1, 0, &va, 4);
      a.unlock(1);
      b.lock(LockType::kExclusive, 1);
      b.put(1, 0, &vb, 4);
      b.unlock(1);
      comm.send(nullptr, 0, 1, 0);
    } else {
      comm.recv(nullptr, 0, 0, 0);
      std::int32_t va = 0, vb = 0;
      std::memcpy(&va, a.localData(), 4);
      std::memcpy(&vb, b.localData(), 4);
      EXPECT_EQ(va, 1);
      EXPECT_EQ(vb, 2);
    }
  });
}

TEST(RmaTest, FenceSynchronizes) {
  runJob(cfg(4), [](Comm& comm) {
    Window win = Window::create(comm, 8);
    comm.proc().advance(static_cast<double>(comm.rank()));
    win.fence();
    EXPECT_GE(comm.proc().now(), 3.0);
  });
}

}  // namespace
}  // namespace tcio::mpi
