#include <gtest/gtest.h>

#include <cstring>

#include "mpi/mpi.h"

namespace tcio::mpi {
namespace {

JobConfig cfg(int p) {
  JobConfig c;
  c.num_ranks = p;
  return c;
}

TEST(AccumulateTest, SumFromAllRanksUnderSharedLocks) {
  const int P = 8;
  runJob(cfg(P), [&](Comm& comm) {
    Window win = Window::create(comm, 32);
    if (comm.rank() == 0) {
      std::int64_t zeros[4] = {};
      std::memcpy(win.localData(), zeros, 32);
    }
    comm.barrier();
    // Every rank accumulates its contribution; shared locks are legal for
    // accumulate (element-wise combining is well-defined).
    const std::int64_t mine[4] = {1, comm.rank(), comm.rank() * comm.rank(),
                                  -1};
    win.lock(LockType::kShared, 0);
    win.accumulate(0, 0, mine, 4, Window::AccumulateOp::kSum);
    win.unlock(0);
    comm.barrier();
    if (comm.rank() == 0) {
      std::int64_t got[4];
      std::memcpy(got, win.localData(), 32);
      EXPECT_EQ(got[0], P);
      EXPECT_EQ(got[1], P * (P - 1) / 2);
      std::int64_t sq = 0;
      for (int r = 0; r < P; ++r) sq += r * r;
      EXPECT_EQ(got[2], sq);
      EXPECT_EQ(got[3], -P);
    }
  });
}

TEST(AccumulateTest, MaxAndMin) {
  const int P = 5;
  runJob(cfg(P), [&](Comm& comm) {
    Window win = Window::create(comm, 16);
    if (comm.rank() == 0) {
      const double init[2] = {-1e300, 1e300};
      std::memcpy(win.localData(), init, 16);
    }
    comm.barrier();
    const double v = static_cast<double>(comm.rank());
    win.lock(LockType::kShared, 0);
    win.accumulate(0, 0, &v, 1, Window::AccumulateOp::kMax);
    win.accumulate(0, 8, &v, 1, Window::AccumulateOp::kMin);
    win.unlock(0);
    comm.barrier();
    if (comm.rank() == 0) {
      double got[2];
      std::memcpy(got, win.localData(), 16);
      EXPECT_DOUBLE_EQ(got[0], P - 1);
      EXPECT_DOUBLE_EQ(got[1], 0.0);
    }
  });
}

TEST(AccumulateTest, ReplaceActsLikePut) {
  runJob(cfg(2), [](Comm& comm) {
    Window win = Window::create(comm, 8);
    if (comm.rank() == 0) {
      const std::int64_t v = 42;
      win.lock(LockType::kExclusive, 1);
      win.accumulate(1, 0, &v, 1, Window::AccumulateOp::kReplace);
      win.unlock(1);
      comm.send(nullptr, 0, 1, 0);
    } else {
      comm.recv(nullptr, 0, 0, 0);
      std::int64_t got;
      std::memcpy(&got, win.localData(), 8);
      EXPECT_EQ(got, 42);
    }
  });
}

TEST(AccumulateTest, OutsideEpochRejected) {
  EXPECT_THROW(runJob(cfg(2),
                      [](Comm& comm) {
                        Window win = Window::create(comm, 8);
                        const std::int64_t v = 1;
                        win.accumulate(1, 0, &v, 1,
                                       Window::AccumulateOp::kSum);
                      }),
               Error);
}

TEST(AccumulateTest, OutOfBoundsRejected) {
  EXPECT_THROW(runJob(cfg(2),
                      [](Comm& comm) {
                        Window win = Window::create(comm, 8);
                        if (comm.rank() == 0) {
                          const std::int64_t v[2] = {1, 2};
                          win.lock(LockType::kShared, 1);
                          win.accumulate(1, 4, v, 2,
                                         Window::AccumulateOp::kSum);
                          win.unlock(1);
                        }
                      }),
               Error);
}

}  // namespace
}  // namespace tcio::mpi
