#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "mpi/mpi.h"

namespace tcio::mpi {
namespace {

JobConfig cfg(int p) {
  JobConfig c;
  c.num_ranks = p;
  return c;
}

class CollectivesTest : public ::testing::TestWithParam<int> {};

INSTANTIATE_TEST_SUITE_P(Sizes, CollectivesTest,
                         ::testing::Values(1, 2, 3, 4, 7, 8, 16, 33));

TEST_P(CollectivesTest, BarrierAlignsNoRankEscapesEarly) {
  const int P = GetParam();
  runJob(cfg(P), [&](Comm& comm) {
    // Rank r arrives at time r; after the barrier everyone must be at least
    // at the latest arrival time.
    comm.proc().advance(static_cast<double>(comm.rank()));
    comm.barrier();
    EXPECT_GE(comm.proc().now(), static_cast<double>(P - 1));
  });
}

TEST_P(CollectivesTest, BcastDeliversFromEveryRoot) {
  const int P = GetParam();
  runJob(cfg(P), [&](Comm& comm) {
    for (Rank root = 0; root < P; ++root) {
      std::vector<int> data(4, comm.rank() == root ? root * 11 : -1);
      comm.bcast(data.data(), 16, root);
      for (int v : data) EXPECT_EQ(v, root * 11);
    }
  });
}

TEST_P(CollectivesTest, AllreduceSum) {
  const int P = GetParam();
  runJob(cfg(P), [&](Comm& comm) {
    std::int64_t v = comm.rank() + 1;
    comm.allreduce(&v, 1, ReduceOp::kSum);
    EXPECT_EQ(v, static_cast<std::int64_t>(P) * (P + 1) / 2);
  });
}

TEST_P(CollectivesTest, AllreduceMinMaxVector) {
  const int P = GetParam();
  runJob(cfg(P), [&](Comm& comm) {
    std::int64_t mn[2] = {comm.rank(), 100 - comm.rank()};
    comm.allreduce(mn, 2, ReduceOp::kMin);
    EXPECT_EQ(mn[0], 0);
    EXPECT_EQ(mn[1], 100 - (P - 1));
    std::int64_t mx = comm.rank();
    comm.allreduce(&mx, 1, ReduceOp::kMax);
    EXPECT_EQ(mx, P - 1);
  });
}

TEST_P(CollectivesTest, AllreduceBitOrBitmap) {
  const int P = GetParam();
  runJob(cfg(P), [&](Comm& comm) {
    // Each rank sets its own bit; the union must have P bits set.
    std::uint64_t bits = 1ULL << (comm.rank() % 64);
    comm.allreduce(&bits, 1, ReduceOp::kBitOr);
    int popcount = 0;
    for (int i = 0; i < 64; ++i) popcount += (bits >> i) & 1;
    EXPECT_EQ(popcount, std::min(P, 64));
  });
}

TEST_P(CollectivesTest, AllgatherOrdersByRank) {
  const int P = GetParam();
  runJob(cfg(P), [&](Comm& comm) {
    const std::int64_t mine = comm.rank() * 7;
    std::vector<std::int64_t> all(static_cast<std::size_t>(P), -1);
    comm.allgather(&mine, 8, all.data());
    for (int r = 0; r < P; ++r) EXPECT_EQ(all[static_cast<std::size_t>(r)], r * 7);
  });
}

TEST_P(CollectivesTest, AlltoallvExchangesRankStampedBlocks) {
  const int P = GetParam();
  runJob(cfg(P), [&](Comm& comm) {
    // Rank r sends value r*P + dst to each dst.
    std::vector<std::int32_t> sbuf(static_cast<std::size_t>(P));
    std::vector<Bytes> scount(static_cast<std::size_t>(P), 4);
    std::vector<Offset> sdisp(static_cast<std::size_t>(P));
    std::vector<std::int32_t> rbuf(static_cast<std::size_t>(P), -1);
    std::vector<Bytes> rcount(static_cast<std::size_t>(P), 4);
    std::vector<Offset> rdisp(static_cast<std::size_t>(P));
    for (int d = 0; d < P; ++d) {
      sbuf[static_cast<std::size_t>(d)] = comm.rank() * P + d;
      sdisp[static_cast<std::size_t>(d)] = d * 4;
      rdisp[static_cast<std::size_t>(d)] = d * 4;
    }
    comm.alltoallv(sbuf.data(), scount, sdisp, rbuf.data(), rcount, rdisp);
    for (int s = 0; s < P; ++s) {
      EXPECT_EQ(rbuf[static_cast<std::size_t>(s)], s * P + comm.rank());
    }
  });
}

TEST(CollectivesVarTest, AlltoallvWithUnevenCounts) {
  // Rank r sends r+1 bytes of value r to every dst.
  const int P = 5;
  runJob(cfg(P), [&](Comm& comm) {
    const int r = comm.rank();
    std::vector<std::byte> sbuf(static_cast<std::size_t>((r + 1) * P),
                                static_cast<std::byte>(r));
    std::vector<Bytes> scount(static_cast<std::size_t>(P), r + 1);
    std::vector<Offset> sdisp(static_cast<std::size_t>(P));
    for (int d = 0; d < P; ++d) sdisp[static_cast<std::size_t>(d)] = d * (r + 1);
    Bytes total = 0;
    std::vector<Bytes> rcount(static_cast<std::size_t>(P));
    std::vector<Offset> rdisp(static_cast<std::size_t>(P));
    for (int s = 0; s < P; ++s) {
      rcount[static_cast<std::size_t>(s)] = s + 1;
      rdisp[static_cast<std::size_t>(s)] = total;
      total += s + 1;
    }
    std::vector<std::byte> rbuf(static_cast<std::size_t>(total));
    comm.alltoallv(sbuf.data(), scount, sdisp, rbuf.data(), rcount, rdisp);
    for (int s = 0; s < P; ++s) {
      for (Bytes i = 0; i < rcount[static_cast<std::size_t>(s)]; ++i) {
        EXPECT_EQ(rbuf[static_cast<std::size_t>(
                      rdisp[static_cast<std::size_t>(s)] + i)],
                  static_cast<std::byte>(s));
      }
    }
  });
}

TEST(CollectivesCostTest, BarrierCostGrowsLogarithmically) {
  auto barrier_time = [](int P) {
    SimTime t = 0;
    runJob(cfg(P), [&](Comm& comm) {
      comm.barrier();
      if (comm.rank() == 0) t = comm.proc().now();
    });
    return t;
  };
  const SimTime t16 = barrier_time(16);
  const SimTime t256 = barrier_time(256);
  EXPECT_GT(t256, t16);
  // log2(256)/log2(16) = 2; allow generous slack but reject linear growth.
  EXPECT_LT(t256, t16 * 6.0);
}

}  // namespace
}  // namespace tcio::mpi
