// Tests for the second batch of communication primitives: reduce-to-root,
// gather, scatter, sendrecv, and typed (derived-datatype) sends.
#include <gtest/gtest.h>

#include <array>
#include <numeric>
#include <vector>

#include "mpi/mpi.h"

namespace tcio::mpi {
namespace {

JobConfig cfg(int p) {
  JobConfig c;
  c.num_ranks = p;
  return c;
}

class Collectives2Test : public ::testing::TestWithParam<int> {};
INSTANTIATE_TEST_SUITE_P(Sizes, Collectives2Test,
                         ::testing::Values(1, 2, 3, 5, 8, 16));

TEST_P(Collectives2Test, ReduceToEveryRoot) {
  const int P = GetParam();
  runJob(cfg(P), [&](Comm& comm) {
    for (Rank root = 0; root < P; ++root) {
      std::int64_t v = comm.rank() + 1;
      comm.reduce(&v, 1, ReduceOp::kSum, root);
      if (comm.rank() == root) {
        EXPECT_EQ(v, static_cast<std::int64_t>(P) * (P + 1) / 2);
      }
    }
  });
}

TEST_P(Collectives2Test, GatherOrdersByRank) {
  const int P = GetParam();
  runJob(cfg(P), [&](Comm& comm) {
    const Rank root = P / 2;
    const std::int32_t mine = comm.rank() * 3 + 1;
    std::vector<std::int32_t> all(static_cast<std::size_t>(P), -1);
    comm.gather(&mine, 4, all.data(), root);
    if (comm.rank() == root) {
      for (int r = 0; r < P; ++r) {
        EXPECT_EQ(all[static_cast<std::size_t>(r)], r * 3 + 1);
      }
    }
  });
}

TEST_P(Collectives2Test, ScatterDistributesBlocks) {
  const int P = GetParam();
  runJob(cfg(P), [&](Comm& comm) {
    const Rank root = 0;
    std::vector<std::int64_t> blocks;
    if (comm.rank() == root) {
      blocks.resize(static_cast<std::size_t>(P));
      std::iota(blocks.begin(), blocks.end(), 100);
    }
    std::int64_t mine = -1;
    comm.scatter(blocks.data(), 8, &mine, root);
    EXPECT_EQ(mine, 100 + comm.rank());
  });
}

TEST_P(Collectives2Test, GatherInvertsScatter) {
  const int P = GetParam();
  runJob(cfg(P), [&](Comm& comm) {
    std::vector<double> data;
    if (comm.rank() == 0) {
      for (int i = 0; i < P; ++i) data.push_back(i * 1.5);
    }
    double mine = -1;
    comm.scatter(data.data(), 8, &mine, 0);
    std::vector<double> back(static_cast<std::size_t>(P), -1);
    comm.gather(&mine, 8, back.data(), 0);
    if (comm.rank() == 0) {
      for (int i = 0; i < P; ++i) {
        EXPECT_DOUBLE_EQ(back[static_cast<std::size_t>(i)], i * 1.5);
      }
    }
  });
}

TEST(Collectives2SingleTest, SendrecvRingRotation) {
  const int P = 6;
  runJob(cfg(P), [&](Comm& comm) {
    const int right = (comm.rank() + 1) % P;
    const int left = (comm.rank() - 1 + P) % P;
    std::int64_t out = comm.rank() * 7;
    std::int64_t in = -1;
    comm.sendrecv(&out, 8, right, 5, &in, 8, left, 5);
    EXPECT_EQ(in, left * 7);
  });
}

TEST(Collectives2SingleTest, SendrecvSelf) {
  runJob(cfg(1), [](Comm& comm) {
    int out = 9, in = 0;
    comm.sendrecv(&out, 4, 0, 1, &in, 4, 0, 1);
    EXPECT_EQ(in, 9);
  });
}

TEST(TypedSendTest, StridedColumnExchange) {
  // Send a "column" of a row-major 4x4 matrix using a vector datatype; the
  // receiver scatters it into its own matrix column.
  runJob(cfg(2), [](Comm& comm) {
    auto column =
        mpi::Datatype::vector(4, 1, 4, mpi::Datatype::int32()).commit();
    std::array<std::int32_t, 16> m{};
    if (comm.rank() == 0) {
      for (int i = 0; i < 16; ++i) m[static_cast<std::size_t>(i)] = i;
      comm.sendTyped(m.data() + 1, 1, column, 1, 0);  // column 1
    } else {
      comm.recvTyped(m.data() + 2, 1, column, 0, 0);  // into column 2
      EXPECT_EQ(m[2], 1);
      EXPECT_EQ(m[6], 5);
      EXPECT_EQ(m[10], 9);
      EXPECT_EQ(m[14], 13);
      EXPECT_EQ(m[0], 0);  // untouched
    }
  });
}

TEST(TypedSendTest, ContiguousTypeEquivalentToRawSend) {
  runJob(cfg(2), [](Comm& comm) {
    auto t = mpi::Datatype::contiguous(8, mpi::Datatype::float64()).commit();
    if (comm.rank() == 0) {
      std::vector<double> v(8);
      std::iota(v.begin(), v.end(), 0.5);
      comm.sendTyped(v.data(), 1, t, 1, 0);
    } else {
      std::vector<double> v(8, 0);
      const RecvStatus st = comm.recvTyped(v.data(), 1, t, 0, 0);
      EXPECT_EQ(st.count, 64);
      EXPECT_DOUBLE_EQ(v[7], 7.5);
    }
  });
}

TEST(TypedSendTest, GappedVectorLeavesHolesUntouched) {
  runJob(cfg(2), [](Comm& comm) {
    // vector(2, 1, 2): ints at elements 0 and 2, gap at element 1.
    auto gapped =
        mpi::Datatype::vector(2, 1, 2, mpi::Datatype::int32()).commit();
    if (comm.rank() == 0) {
      const std::int32_t src[3] = {10, -1, 20};  // -1 sits in the gap
      comm.sendTyped(src, 1, gapped, 1, 0);
    } else {
      std::int32_t dst[3] = {0, 7, 0};
      comm.recvTyped(dst, 1, gapped, 0, 0);
      EXPECT_EQ(dst[0], 10);
      EXPECT_EQ(dst[1], 7);  // gap untouched
      EXPECT_EQ(dst[2], 20);
    }
  });
}

TEST(Collectives2SingleTest, ReduceOnSubcommunicator) {
  runJob(cfg(8), [](Comm& world) {
    Comm sub = world.split(world.rank() % 2, world.rank());
    std::int64_t v = world.rank();
    sub.reduce(&v, 1, ReduceOp::kMax, 0);
    if (sub.rank() == 0) {
      EXPECT_EQ(v, world.rank() % 2 == 0 ? 6 : 7);
    }
  });
}

}  // namespace
}  // namespace tcio::mpi
